package pagoda_test

import (
	"fmt"

	"repro"
)

// ExampleSystem shows the smallest Pagoda program: spawn a narrow task,
// wait for it, read the stats. The simulation is deterministic, so the
// output is stable.
func ExampleSystem() {
	cfg := pagoda.DefaultConfig()
	cfg.GPU.NumSMMs = 2 // a small device keeps the example fast

	sys := pagoda.New(cfg)
	sum := 0
	sys.Run(func(h *pagoda.Host) {
		id := h.Spawn(pagoda.Task{
			Threads: 64,
			Kernel: func(tc *pagoda.TaskCtx) {
				tc.ForEachLane(func(tid int) { sum += tid }) // getTid()
				tc.Compute(100)
			},
		})
		h.Wait(id)
	})
	st := sys.Stats()
	fmt.Printf("completed %d task(s), sum of thread IDs = %d\n", st.Completed, sum)
	// Output: completed 1 task(s), sum of thread IDs = 2016
}

// ExampleHost_WaitAll shows bulk spawning with shared memory and
// sub-threadblock synchronization — the Table 1 GPU-side API.
func ExampleHost_WaitAll() {
	cfg := pagoda.DefaultConfig()
	cfg.GPU.NumSMMs = 2

	sys := pagoda.New(cfg)
	ran := 0
	sys.Run(func(h *pagoda.Host) {
		for i := 0; i < 10; i++ {
			h.Spawn(pagoda.Task{
				Threads:   128,
				SharedMem: 2048,
				Sync:      true,
				Kernel: func(tc *pagoda.TaskCtx) {
					buf := tc.Shared() // getSMPtr()
					buf[0] = 1
					tc.SyncBlock() // syncBlock()
					if tc.WarpInBlock() == 0 {
						ran++
					}
				},
			})
		}
		h.WaitAll()
	})
	fmt.Println("tasks ran:", ran)
	// Output: tasks ran: 10
}
