package pagoda

import (
	"strings"
	"testing"

	"repro/internal/gpu"
)

// smallConfig shrinks the device for fast tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.GPU.NumSMMs = 2
	return cfg
}

func TestSystemRoundTrip(t *testing.T) {
	sys := New(smallConfig())
	ran := 0
	end := sys.Run(func(h *Host) {
		id := h.Spawn(Task{
			Threads: 64,
			Kernel: func(tc *TaskCtx) {
				tc.ForEachLane(func(tid int) { ran++ })
				tc.Compute(100)
			},
		})
		h.Wait(id)
	})
	if ran != 64 {
		t.Fatalf("lanes ran = %d, want 64", ran)
	}
	if end <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	st := sys.Stats()
	if st.Completed != 1 || st.Spawned != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSpawnDefaults(t *testing.T) {
	sys := New(smallConfig())
	var threads, blocks int
	sys.Run(func(h *Host) {
		id := h.Spawn(Task{Kernel: func(tc *TaskCtx) {
			threads = tc.Threads()
			blocks = tc.Blocks()
		}})
		h.Wait(id)
	})
	if threads != 128 || blocks != 1 {
		t.Fatalf("defaults = %d threads x %d blocks, want 128 x 1", threads, blocks)
	}
}

func TestHostGoConcurrentSpawners(t *testing.T) {
	sys := New(smallConfig())
	count := 0
	sys.Run(func(h *Host) {
		done := 0
		for i := 0; i < 3; i++ {
			h.Go("spawner", func(sh *Host) {
				for j := 0; j < 20; j++ {
					sh.Spawn(Task{Threads: 32, Kernel: func(tc *TaskCtx) {
						tc.Compute(300)
						count++
					}})
				}
				done++
			})
		}
		for done < 3 {
			h.Sleep(10_000)
		}
		h.WaitAll()
	})
	if count != 60 {
		t.Fatalf("tasks ran = %d, want 60", count)
	}
	if st := sys.Stats(); st.Completed != 60 {
		t.Fatalf("Completed = %d, want 60", st.Completed)
	}
}

func TestCheckAndCopies(t *testing.T) {
	sys := New(smallConfig())
	sys.Run(func(h *Host) {
		h.CopyToDevice(64 * 1024)
		id := h.Spawn(Task{Threads: 32, Kernel: func(tc *TaskCtx) { tc.Compute(2_000_000) }})
		if h.Check(id) {
			t.Error("Check true immediately for a 2ms task")
		}
		h.Wait(id)
		if !h.Check(id) {
			t.Error("Check false after Wait")
		}
		h.CopyFromDevice(64 * 1024)
	})
}

func TestSharedMemoryAndSyncThroughFacade(t *testing.T) {
	sys := New(smallConfig())
	var smLen int
	phase := 0
	bad := 0
	sys.Run(func(h *Host) {
		id := h.Spawn(Task{
			Threads: 128, SharedMem: 4096, Sync: true,
			Kernel: func(tc *TaskCtx) {
				smLen = len(tc.Shared())
				tc.Compute(float64(100 * (tc.WarpInBlock() + 1)))
				phase++
				tc.SyncBlock()
				if phase != 4 {
					bad++
				}
			},
		})
		h.Wait(id)
	})
	if smLen != 4096 {
		t.Fatalf("Shared len = %d, want 4096", smLen)
	}
	if bad != 0 {
		t.Fatalf("%d warps crossed SyncBlock early", bad)
	}
}

func TestStatsString(t *testing.T) {
	sys := New(smallConfig())
	sys.Run(func(h *Host) {
		h.Spawn(Task{Threads: 32, Kernel: func(tc *TaskCtx) { tc.Compute(100) }})
		h.WaitAll()
	})
	s := sys.Stats().String()
	for _, want := range []string{"tasks 1/1 done", "avg latency", "occupancy"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Stats.String() = %q, missing %q", s, want)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	sys := New(smallConfig())
	sys.Run(func(h *Host) {
		t0 := h.Now()
		h.Sleep(12345)
		if h.Now()-t0 != 12345 {
			t.Errorf("Sleep advanced %v, want 12345", h.Now()-t0)
		}
	})
}

func TestCustomDeviceGeometry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GPU.NumSMMs = 1
	sys := New(cfg)
	if got := sys.Device.Cfg.NumSMMs; got != 1 {
		t.Fatalf("NumSMMs = %d", got)
	}
	// MasterKernel should own the whole 1-SMM device: 2 MTBs.
	if sys.Runtime.NumMTBs() != 2 {
		t.Fatalf("NumMTBs = %d, want 2", sys.Runtime.NumMTBs())
	}
	occ := gpu.TheoreticalOccupancy(sys.Device.Cfg, gpu.LaunchSpec{
		BlockThreads: 1024, SharedPerTB: 32 * 1024, RegsPerThread: 32,
	})
	if occ.Fraction != 1 {
		t.Fatalf("MasterKernel occupancy = %v", occ.Fraction)
	}
}
