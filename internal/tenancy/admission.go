package tenancy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/serve"
	"repro/internal/sim"
)

// Outcome records what the admission layer did with one task.
type Outcome int

const (
	// Pending means the task was never presented — a runner bug if it
	// survives to the end of a run.
	Pending Outcome = iota
	// Served: admitted and handed to the scheduler.
	Served
	// Shed: rejected at the door by the class token bucket — the tenant
	// exceeded its contracted rate.
	Shed
	// Evicted: passed policing (so it was admitted to the wait queue) but
	// discarded at its service instant because a more important class had
	// a stronger claim on the slot — the preemption path.
	Evicted
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Served:
		return "served"
	case Shed:
		return "shed"
	case Evicted:
		return "evicted"
	default:
		return "pending"
	}
}

// Admission policy kinds.
const (
	// AdmitNone passes every task through untouched — the no-isolation
	// baseline that shows what a misbehaving tenant does to its neighbors.
	AdmitNone = "none"
	// AdmitStrict is strict priority with contract policing: a class is
	// served only while no higher-priority class has waiting work, and the
	// backlog a class may occupy halves with each priority rank below the
	// top (limit >> rank).
	AdmitStrict = "strict"
	// AdmitWFQ is weighted-fair queueing with contract policing: work-
	// conserving below the backlog limit, and at saturation slots go to
	// the backlogged class with the smallest virtual finish time, so
	// admitted shares converge to the configured weights.
	AdmitWFQ = "wfq"
)

// Kinds lists the admission policies in sweep order.
func Kinds() []string { return []string{AdmitNone, AdmitStrict, AdmitWFQ} }

// Admission is a class-aware admission layer for one open-loop run. Plug
// its AdmitTask method into runners.OpenLoop.AdmitTask; construct a fresh
// value per run (it is stateful, like serve.TokenBucket).
//
// At each task's presentation instant the layer first polices the task's
// class against its contracted rate (a failed bucket check is a Shed — the
// task never enters the system), then runs the policy contest for the
// service slot (a lost contest is an Evicted — the task was queued and is
// discarded in favor of more important work). Decisions are keyed on the
// task index, never on call order: under Pagoda's multi-spawner host path
// presentations are not globally ordered, only nondecreasing per spawner.
type Admission struct {
	kind    string
	classes []Class
	limit   int
	buckets []*serve.TokenBucket // nil entries when policing is off

	classOf []int
	posOf   []int        // task index -> position within its class
	at      [][]sim.Time // per-class arrival instants, ascending
	seen    [][]bool     // per-class presentation marks, by position
	head    []int        // first unpresented position per class
	fin     []float64    // WFQ virtual finish time per class

	outcomes []Outcome
}

// NewAdmission builds the admission layer for one run over the merged
// arrival sequence (from Merge). limit bounds the admitted-but-uncompleted
// backlog for the strict and wfq policies; police enables the per-class
// token buckets at each class's contracted Rate/Burst (AdmitNone ignores
// both — it is the pure pass-through baseline).
func NewAdmission(kind string, classes []Class, arrivals []sim.Time, classOf []int, limit int, police bool) *Admission {
	if len(arrivals) != len(classOf) {
		panic(fmt.Sprintf("tenancy: %d arrivals, %d classOf", len(arrivals), len(classOf)))
	}
	switch kind {
	case AdmitNone:
		police = false
	case AdmitStrict, AdmitWFQ:
		if limit < 1 {
			panic(fmt.Sprintf("tenancy: %s admission needs a positive backlog limit, got %d", kind, limit))
		}
	default:
		panic(fmt.Sprintf("tenancy: unknown admission kind %q (have %v)", kind, Kinds()))
	}
	a := &Admission{
		kind:     kind,
		classes:  classes,
		limit:    limit,
		buckets:  make([]*serve.TokenBucket, len(classes)),
		classOf:  classOf,
		posOf:    make([]int, len(arrivals)),
		at:       make([][]sim.Time, len(classes)),
		seen:     make([][]bool, len(classes)),
		head:     make([]int, len(classes)),
		fin:      make([]float64, len(classes)),
		outcomes: make([]Outcome, len(arrivals)),
	}
	for ti, c := range classOf {
		if c < 0 || c >= len(classes) {
			panic(fmt.Sprintf("tenancy: task %d names class %d of %d", ti, c, len(classes)))
		}
		a.posOf[ti] = len(a.at[c])
		a.at[c] = append(a.at[c], arrivals[ti])
	}
	for c := range classes {
		if !sort.Float64sAreSorted(a.at[c]) {
			a.at[c] = sortedTimes(a.at[c])
		}
		a.seen[c] = make([]bool, len(a.at[c]))
		if police {
			a.buckets[c] = serve.NewTokenBucket(classes[c].Rate, classes[c].Burst)
		}
	}
	return a
}

// Name labels the layer for reports.
func (a *Admission) Name() string { return a.kind }

// Outcomes returns the per-task outcome vector (parallel to the merged task
// order). Valid after the run; tasks still Pending were never presented.
func (a *Admission) Outcomes() []Outcome { return a.outcomes }

// AdmitTask implements the runners.OpenLoop.AdmitTask contract: called
// exactly once per task at its presentation instant, with the global
// admitted-but-uncompleted backlog.
func (a *Admission) AdmitTask(ti int, now sim.Time, inFlight int) bool {
	c := a.classOf[ti]
	a.present(c, a.posOf[ti])
	if b := a.buckets[c]; b != nil && !b.Admit(now, inFlight) {
		a.outcomes[ti] = Shed
		return false
	}
	admit := true
	switch a.kind {
	case AdmitStrict:
		admit = a.admitStrict(c, now, inFlight)
	case AdmitWFQ:
		admit = a.admitWFQ(c, now, inFlight)
	}
	if !admit {
		a.outcomes[ti] = Evicted
		return false
	}
	a.outcomes[ti] = Served
	return true
}

// present marks one class position presented and advances the class's
// oldest-waiting head past every presented position.
func (a *Admission) present(c, pos int) {
	if a.seen[c][pos] {
		panic(fmt.Sprintf("tenancy: class %s position %d presented twice", a.classes[c].Name, pos))
	}
	a.seen[c][pos] = true
	for a.head[c] < len(a.seen[c]) && a.seen[c][a.head[c]] {
		a.head[c]++
	}
}

// waiting counts class c's tasks that have arrived by now but have not yet
// been presented. Every presented task has arrival <= its presentation
// instant (the runners sleep to the arrival first), so the count is exactly
// arrived-up-to-now minus presented.
func (a *Admission) waiting(c int, now sim.Time) int {
	arrived := sort.SearchFloat64s(a.at[c], math.Nextafter(now, math.Inf(1)))
	presented := 0
	for pos := 0; pos < arrived; pos++ {
		if a.seen[c][pos] {
			presented++
		}
	}
	return arrived - presented
}

// oldestWaiting returns the arrival instant of class c's oldest
// arrived-but-unpresented task, if any.
func (a *Admission) oldestWaiting(c int, now sim.Time) (sim.Time, bool) {
	if h := a.head[c]; h < len(a.at[c]) && a.at[c][h] <= now {
		return a.at[c][h], true
	}
	return 0, false
}

// admitStrict grants the slot only if no higher-priority class has waiting
// work and the backlog is within the class's rank-nested share of the
// limit: the top class may fill the whole limit, each rank below it half
// as much, so lower classes can never crowd the queue a premium burst will
// need.
func (a *Admission) admitStrict(c int, now sim.Time, inFlight int) bool {
	rank := 0
	for h := range a.classes {
		if a.classes[h].Priority <= a.classes[c].Priority {
			continue
		}
		rank++
		if a.waiting(h, now) > 0 {
			return false
		}
	}
	return inFlight < a.limit>>rank
}

// admitWFQ grants the slot work-conservingly below the backlog limit, and
// at saturation only to a class whose virtual finish time matches the
// minimum over the backlogged classes — the classic WFQ contest, which
// makes admitted shares track the weights. Either way the slot is refused
// outright when the SLO guard says a higher class is about to miss.
func (a *Admission) admitWFQ(c int, now sim.Time, inFlight int) bool {
	if a.sloGuard(c, now) {
		return false
	}
	if inFlight < a.limit {
		return true
	}
	minFin := a.fin[c]
	for h := range a.classes {
		if h != c && a.waiting(h, now) > 0 && a.fin[h] < minFin {
			minFin = a.fin[h]
		}
	}
	if a.fin[c] > minFin+1e-9 {
		return false
	}
	if a.fin[c] < minFin {
		a.fin[c] = minFin
	}
	a.fin[c] += 1 / a.classes[c].Weight
	return true
}

// sloGuard reports whether some class with higher priority than c has
// waiting work whose head-of-line age has burned more than half its SLO —
// the point where handing the slot to c instead would likely turn into a
// premium p99 miss. Preempting (evicting) the presented task here is what
// "a higher class would miss its SLO" costs the lower class.
func (a *Admission) sloGuard(c int, now sim.Time) bool {
	for h := range a.classes {
		if a.classes[h].Priority <= a.classes[c].Priority || a.classes[h].SLO <= 0 {
			continue
		}
		if at, ok := a.oldestWaiting(h, now); ok && now-at > a.classes[h].SLO/2 {
			return true
		}
	}
	return false
}
