// Package tenancy layers tenant classes over the open-loop serving model:
// several arrival streams — each with its own priority, fair-share weight,
// contracted rate and latency SLO — multiplexed onto one device through a
// class-aware admission layer.
//
// The package deliberately owns no scheduler. It composes with the existing
// seams: a Merge of per-class serve.Generator streams produces the single
// nondecreasing arrival sequence the runners consume, and an Admission value
// plugs into runners.OpenLoop.AdmitTask to police, prioritize and preempt at
// each task's presentation instant. Per-class outcomes are recorded so the
// conservation identities (offered = shed + admitted; admitted = served +
// evicted) are checkable after every run.
package tenancy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/serve"
	"repro/internal/sim"
)

// Class describes one tenant class: who it is, how important it is, what
// rate it contracted for, and what latency it was promised.
type Class struct {
	Name string

	// Priority orders classes for strict-priority admission and the SLO
	// guard: higher values are served first. Ties are legal but make the
	// strict policy treat the tied classes as peers.
	Priority int

	// Weight is the class's share under weighted-fair queueing. Must be
	// positive when a WFQ admission is built.
	Weight float64

	// Rate is the contracted sustained rate in tasks/second — what the
	// class's token bucket refills at. A misbehaving tenant offers more
	// than Rate; the bucket is how the system holds it to its contract.
	Rate float64

	// Burst is the token-bucket depth in tasks (values below one are
	// clamped by serve.NewTokenBucket).
	Burst float64

	// SLO is the class's p99 latency bound in cycles.
	SLO sim.Time

	// Gen produces the class's arrival stream. Its rate need not match the
	// contracted Rate — that mismatch is exactly what a misbehaving tenant
	// looks like.
	Gen serve.Generator
}

// Validate checks the class parameters and its generator.
func (c Class) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("tenancy: class has no name")
	}
	if c.Weight <= 0 || math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) {
		return fmt.Errorf("tenancy: class %s weight %v is not positive finite", c.Name, c.Weight)
	}
	if c.Rate <= 0 || math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("tenancy: class %s contracted rate %v is not positive finite", c.Name, c.Rate)
	}
	if c.SLO <= 0 || math.IsNaN(c.SLO) || math.IsInf(c.SLO, 0) {
		return fmt.Errorf("tenancy: class %s SLO %v is not positive finite", c.Name, c.SLO)
	}
	if c.Gen == nil {
		return fmt.Errorf("tenancy: class %s has no arrival generator", c.Name)
	}
	if err := c.Gen.Validate(); err != nil {
		return fmt.Errorf("tenancy: class %s: %w", c.Name, err)
	}
	return nil
}

// Merge interleaves the per-class arrival streams into the single
// nondecreasing sequence the open-loop runners consume: counts[c] arrivals
// are drawn from classes[c].Gen and merged by timestamp, ties broken by
// lower class index. It returns the merged arrival instants and, parallel to
// them, the class index of each task.
//
// With a single class Merge reduces to exactly that class's Gen.Times(n) —
// the property the harness pins to show the tenancy layer adds nothing when
// there is nothing to arbitrate.
func Merge(classes []Class, counts []int) (arrivals []sim.Time, classOf []int) {
	if len(counts) != len(classes) {
		panic(fmt.Sprintf("tenancy: %d counts for %d classes", len(counts), len(classes)))
	}
	total := 0
	streams := make([][]sim.Time, len(classes))
	for c, cl := range classes {
		if err := cl.Validate(); err != nil {
			panic(err.Error())
		}
		if counts[c] < 0 {
			panic(fmt.Sprintf("tenancy: class %s count %d is negative", cl.Name, counts[c]))
		}
		streams[c] = cl.Gen.Times(counts[c])
		total += counts[c]
	}
	arrivals = make([]sim.Time, 0, total)
	classOf = make([]int, 0, total)
	heads := make([]int, len(classes))
	for len(arrivals) < total {
		best := -1
		for c := range streams {
			if heads[c] >= len(streams[c]) {
				continue
			}
			if best < 0 || streams[c][heads[c]] < streams[best][heads[best]] {
				best = c
			}
		}
		arrivals = append(arrivals, streams[best][heads[best]])
		classOf = append(classOf, best)
		heads[best]++
	}
	return arrivals, classOf
}

// DefaultClasses returns the canonical tenant mix of the tenant_qos
// experiment: a latency-critical premium class on a diurnal curve, a
// standard class on plain Poisson traffic, and a throughput batch class
// whose flash crowd arrives mid-run. Extra classes beyond three are
// batch-like clones at ever lower priority.
//
// rate is the contracted tasks/second of each class; slo the premium p99
// bound in cycles (lower classes get progressively looser bounds); horizon
// the expected run length in cycles (it scales the diurnal period and the
// flash-crowd window so the shapes land inside the run). misbehave, when a
// valid index, makes that class offer 10x its contracted rate — the
// contract Rate stays unchanged, which is precisely the violation.
func DefaultClasses(n int, rate float64, slo, horizon sim.Time, seed int64, misbehave int) []Class {
	if n < 1 {
		n = 1
	}
	classes := make([]Class, 0, n)
	for i := 0; i < n; i++ {
		offered := rate
		if i == misbehave {
			offered = rate * 10
		}
		var cl Class
		switch i {
		case 0:
			// The honest diurnal peak (mean * 1.5) sits at 75% of the
			// contracted rate and the bucket holds 16 tokens, so policing
			// never sheds a well-behaved premium tenant — not even for the
			// Poisson fluctuations at the top of its day.
			cl = Class{Name: "premium", Priority: 2, Weight: 4, Rate: rate, Burst: 16, SLO: slo,
				Gen: serve.Diurnal{MeanRate: offered / 2, Swing: 0.5, Period: horizon, Seed: seed + 101}}
		case 1:
			cl = Class{Name: "standard", Priority: 1, Weight: 2, Rate: rate, Burst: 8, SLO: 4 * slo,
				Gen: serve.Poisson{Rate: offered, Seed: seed + 202}}
		default:
			name := "batch"
			if i > 2 {
				name = fmt.Sprintf("batch%d", i-1)
			}
			cl = Class{Name: name, Priority: 2 - i, Weight: 1, Rate: rate, Burst: 16, SLO: 16 * slo,
				Gen: serve.FlashCrowd{BaseRate: offered / 2, SpikeRate: offered * 4,
					SpikeAt: 0.4 * horizon, SpikeDur: 0.2 * horizon, Seed: seed + 303*int64(i)}}
		}
		classes = append(classes, cl)
	}
	return classes
}

// ClassStats is one class's slice of a run: the usual serve.Stats over the
// class's records judged against the class SLO, plus the admission-layer
// outcome split and the SLO-violation count.
type ClassStats struct {
	Class string
	serve.Stats

	// Shed counts arrivals rejected at the door by the class's token
	// bucket (contract policing). Evicted counts tasks that passed
	// policing but lost the admission contest to a more important class.
	// Stats.Dropped == Shed + Evicted.
	Shed    int
	Evicted int

	// Violations counts completed tasks over the class SLO
	// (Completed - SLOMet).
	Violations int
}

// SummarizeClasses splits one run's records by class and summarizes each
// against its own SLO. recs, classOf and outcomes are parallel to the merged
// task order.
func SummarizeClasses(classes []Class, classOf []int, recs []serve.Record, outcomes []Outcome) []ClassStats {
	if len(classOf) != len(recs) || len(outcomes) != len(recs) {
		panic(fmt.Sprintf("tenancy: %d records, %d classOf, %d outcomes", len(recs), len(classOf), len(outcomes)))
	}
	byClass := make([][]serve.Record, len(classes))
	out := make([]ClassStats, len(classes))
	for i, r := range recs {
		c := classOf[i]
		byClass[c] = append(byClass[c], r)
		switch outcomes[i] {
		case Shed:
			out[c].Shed++
		case Evicted:
			out[c].Evicted++
		}
	}
	for c := range classes {
		out[c].Class = classes[c].Name
		out[c].Stats = serve.Summarize(byClass[c], classes[c].SLO)
		out[c].Violations = out[c].Completed - out[c].SLOMet
	}
	return out
}

// sortedTimes returns a sorted copy (Merge already emits per-class
// subsequences in order, but Admission does not rely on that).
func sortedTimes(ts []sim.Time) []sim.Time {
	out := make([]sim.Time, len(ts))
	copy(out, ts)
	sort.Float64s(out)
	return out
}
