package tenancy

import (
	"math"
	"testing"

	"repro/internal/serve"
	"repro/internal/sim"
)

// testRand is a tiny deterministic PRNG for scrambled presentation orders
// (mirrors the xorshift the sim packages use; math/rand is banned here).
type testRand uint64

func (x *testRand) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = testRand(v)
	return v
}

func (x *testRand) intn(n int) int { return int(x.next() % uint64(n)) }

func twoClasses(slo sim.Time) []Class {
	return []Class{
		{Name: "hi", Priority: 1, Weight: 2, Rate: 1e4, Burst: 4, SLO: slo,
			Gen: serve.FixedRate{Rate: 1e4}},
		{Name: "lo", Priority: 0, Weight: 1, Rate: 1e4, Burst: 4, SLO: 4 * slo,
			Gen: serve.FixedRate{Rate: 1e4}},
	}
}

func TestMergeSingleClassReducesToGenerator(t *testing.T) {
	cl := []Class{{Name: "only", Priority: 0, Weight: 1, Rate: 2e4, Burst: 1, SLO: 1e6,
		Gen: serve.Poisson{Rate: 2e4, Seed: 7}}}
	arr, classOf := Merge(cl, []int{64})
	want := cl[0].Gen.Times(64)
	if len(arr) != 64 {
		t.Fatalf("merged %d arrivals, want 64", len(arr))
	}
	for i := range arr {
		if arr[i] != want[i] {
			t.Fatalf("arrival %d = %v, want %v (single class must reduce to Gen.Times)", i, arr[i], want[i])
		}
		if classOf[i] != 0 {
			t.Fatalf("classOf[%d] = %d, want 0", i, classOf[i])
		}
	}
}

func TestMergeInterleavesSortedWithStableTies(t *testing.T) {
	cl := twoClasses(1e6)
	// Identical fixed-rate streams: every instant ties, and the tie must go
	// to the lower class index.
	arr, classOf := Merge(cl, []int{8, 8})
	if len(arr) != 16 {
		t.Fatalf("merged %d arrivals, want 16", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatalf("merged arrivals decrease at %d: %v < %v", i, arr[i], arr[i-1])
		}
	}
	for i := 0; i < 16; i += 2 {
		if classOf[i] != 0 || classOf[i+1] != 1 {
			t.Fatalf("tie at pair %d broke to classes (%d,%d), want (0,1)", i/2, classOf[i], classOf[i+1])
		}
	}
	counts := make([]int, 2)
	for _, c := range classOf {
		counts[c]++
	}
	if counts[0] != 8 || counts[1] != 8 {
		t.Fatalf("per-class counts %v, want [8 8]", counts)
	}
}

// TestStrictNeverAdmitsLowerWhileHigherWaits drives the strict layer with a
// scrambled presentation order (the Pagoda multi-spawner shape) and checks
// the defining invariant at every step: a lower-class task is never served
// while any higher-class task has arrived but not been presented.
func TestStrictNeverAdmitsLowerWhileHigherWaits(t *testing.T) {
	cl := twoClasses(1e6)
	arr, classOf := Merge(cl, []int{40, 40})
	a := NewAdmission(AdmitStrict, cl, arr, classOf, 64, false)

	// Presentation order: a deterministic shuffle of the task indices,
	// presented at now = its arrival or later (we use the max arrival so
	// everything has "arrived" and waiting-work pressure is maximal).
	order := make([]int, len(arr))
	for i := range order {
		order[i] = i
	}
	rng := testRand(99)
	for i := len(order) - 1; i > 0; i-- {
		j := rng.intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	now := arr[len(arr)-1] + 1

	presented := make([]bool, len(arr))
	hiWaiting := func() int {
		n := 0
		for i := range arr {
			if classOf[i] == 0 && !presented[i] {
				n++
			}
		}
		return n
	}
	for _, ti := range order {
		wait := hiWaiting()
		got := a.AdmitTask(ti, now, 0)
		presented[ti] = true
		if classOf[ti] == 1 && wait > 0 && got {
			t.Fatalf("strict admitted lower-class task %d while %d higher-class tasks waited", ti, wait)
		}
		if classOf[ti] == 0 && !got {
			t.Fatalf("strict refused top-class task %d with an empty backlog", ti)
		}
	}
	for i, o := range a.Outcomes() {
		if o == Pending {
			t.Fatalf("task %d still pending after presentation", i)
		}
	}
}

// TestStrictRankNestedBacklog checks the inFlight half of the strict
// policy: the top class may fill the whole limit, the next rank half of it.
func TestStrictRankNestedBacklog(t *testing.T) {
	cl := twoClasses(1e6)
	arr, classOf := Merge(cl, []int{4, 4})
	a := NewAdmission(AdmitStrict, cl, arr, classOf, 8, false)
	now := arr[len(arr)-1] + 1

	// Present all hi tasks first so no higher-class work waits.
	for ti := range arr {
		if classOf[ti] == 0 {
			a.AdmitTask(ti, now, 0)
		}
	}
	var loTasks []int
	for ti := range arr {
		if classOf[ti] == 1 {
			loTasks = append(loTasks, ti)
		}
	}
	// Rank 1: threshold is limit>>1 = 4.
	if a.AdmitTask(loTasks[0], now, 3) != true {
		t.Fatalf("lower class refused below its backlog share")
	}
	if a.AdmitTask(loTasks[1], now, 4) != false {
		t.Fatalf("lower class admitted at its rank-nested threshold")
	}
	if a.Outcomes()[loTasks[1]] != Evicted {
		t.Fatalf("threshold refusal recorded as %v, want evicted", a.Outcomes()[loTasks[1]])
	}
}

// TestWFQSharesConvergeToWeights saturates a three-class WFQ layer with
// equal presentation rates and checks the admitted shares settle at the
// configured 4:2:1 weights. Priorities are equal so the SLO guard stays out
// of the picture and the fin contest alone decides.
func TestWFQSharesConvergeToWeights(t *testing.T) {
	per := 900
	cl := []Class{
		{Name: "a", Priority: 0, Weight: 4, Rate: 1e4, Burst: 1, SLO: 1e9, Gen: serve.FixedRate{Rate: 1e6}},
		{Name: "b", Priority: 0, Weight: 2, Rate: 1e4, Burst: 1, SLO: 1e9, Gen: serve.FixedRate{Rate: 1e6}},
		{Name: "c", Priority: 0, Weight: 1, Rate: 1e4, Burst: 1, SLO: 1e9, Gen: serve.FixedRate{Rate: 1e6}},
	}
	arr, classOf := Merge(cl, []int{per, per, per})
	limit := 32
	a := NewAdmission(AdmitWFQ, cl, arr, classOf, limit, false)
	now := arr[len(arr)-1] + 1

	// Round-robin presentation a,b,c,a,b,c... with the system pinned at
	// saturation (inFlight = limit): every slot is contested.
	byClass := make([][]int, 3)
	for ti, c := range classOf {
		byClass[c] = append(byClass[c], ti)
	}
	served := make([]int, 3)
	for i := 0; i < per; i++ {
		for c := 0; c < 3; c++ {
			if a.AdmitTask(byClass[c][i], now, limit) {
				served[c]++
			}
		}
	}
	total := served[0] + served[1] + served[2]
	if total == 0 {
		t.Fatalf("saturated WFQ served nothing")
	}
	weights := []float64{4, 2, 1}
	for c := range served {
		got := float64(served[c]) / float64(total)
		want := weights[c] / 7
		if math.Abs(got-want) > 0.05*want+0.01 {
			t.Fatalf("class %d share %.3f, want %.3f (served %v)", c, got, want, served)
		}
	}
}

// TestWFQWorkConservingBelowLimit: with free capacity and no SLO pressure,
// WFQ admits everything — fairness only bites at saturation.
func TestWFQWorkConservingBelowLimit(t *testing.T) {
	cl := twoClasses(1e15) // astronomically loose SLO: guard never fires
	arr, classOf := Merge(cl, []int{16, 16})
	a := NewAdmission(AdmitWFQ, cl, arr, classOf, 64, false)
	now := arr[len(arr)-1] + 1
	for ti := range arr {
		if !a.AdmitTask(ti, now, ti%8) {
			t.Fatalf("work-conserving WFQ refused task %d below the limit", ti)
		}
	}
}

// TestWFQSLOGuardPreempts: a lower-class task presented while a
// higher-class task has waited past half its SLO must be evicted, even
// with free capacity.
func TestWFQSLOGuardPreempts(t *testing.T) {
	slo := sim.Time(1e6)
	cl := twoClasses(slo)
	arr, classOf := Merge(cl, []int{4, 4})
	a := NewAdmission(AdmitWFQ, cl, arr, classOf, 64, false)

	// Find a lo task and an unpresented hi arrival; present the lo task at
	// an instant where the hi head-of-line age exceeds slo/2.
	hiOldest := sim.Time(math.Inf(1))
	for ti := range arr {
		if classOf[ti] == 0 && arr[ti] < hiOldest {
			hiOldest = arr[ti]
		}
	}
	var lo int
	for ti := range arr {
		if classOf[ti] == 1 {
			lo = ti
		}
	}
	now := hiOldest + slo // age = slo > slo/2
	if a.AdmitTask(lo, now, 0) {
		t.Fatalf("WFQ admitted a lower-class task while a higher class aged past half its SLO")
	}
	if a.Outcomes()[lo] != Evicted {
		t.Fatalf("SLO-guard preemption recorded as %v, want evicted", a.Outcomes()[lo])
	}
}

// TestConservation presents every task exactly once under each policy, with
// policing on, and checks the admission-layer books balance: offered =
// shed + evicted + served, AdmitTask's return value matches the recorded
// outcome, and nothing stays pending.
func TestConservation(t *testing.T) {
	for _, kind := range Kinds() {
		cl := twoClasses(1e6)
		// Over-offer both classes (FixedRate 1e4 arrivals against a token
		// bucket refilling at 1e4/s admits early bursts then sheds).
		cl[0].Rate, cl[1].Rate = 2e3, 2e3
		arr, classOf := Merge(cl, []int{60, 60})
		a := NewAdmission(kind, cl, arr, classOf, 8, true)

		served, shed, evicted := 0, 0, 0
		rng := testRand(5)
		inFlight := 0
		for ti := range arr {
			got := a.AdmitTask(ti, arr[ti], inFlight)
			switch o := a.Outcomes()[ti]; o {
			case Served:
				served++
				inFlight++
				if !got {
					t.Fatalf("%s: task %d refused but recorded served", kind, ti)
				}
			case Shed:
				shed++
				if got {
					t.Fatalf("%s: task %d admitted but recorded shed", kind, ti)
				}
			case Evicted:
				evicted++
				if got {
					t.Fatalf("%s: task %d admitted but recorded evicted", kind, ti)
				}
			default:
				t.Fatalf("%s: task %d outcome %v after presentation", kind, ti, o)
			}
			if inFlight > 0 && rng.intn(2) == 0 {
				inFlight-- // a completion
			}
		}
		if served+shed+evicted != len(arr) {
			t.Fatalf("%s: %d served + %d shed + %d evicted != %d offered", kind, served, shed, evicted, len(arr))
		}
		if kind == AdmitNone && (shed != 0 || evicted != 0) {
			t.Fatalf("none policy shed %d / evicted %d tasks", shed, evicted)
		}
		if kind != AdmitNone && shed == 0 {
			t.Fatalf("%s: policing on and over-offered, but nothing was shed", kind)
		}
	}
}

func TestSummarizeClassesSplitsOutcomes(t *testing.T) {
	cl := twoClasses(1000)
	recs := []serve.Record{
		{Submit: 0, Start: 10, Done: 500},  // hi, within SLO
		{Submit: 0, Start: 10, Done: 2000}, // hi, SLO violation
		{Dropped: true},                    // hi, shed
		{Submit: 5, Start: 20, Done: 900},  // lo, within its 4x SLO
		{Dropped: true},                    // lo, evicted
	}
	classOf := []int{0, 0, 0, 1, 1}
	outcomes := []Outcome{Served, Served, Shed, Served, Evicted}
	st := SummarizeClasses(cl, classOf, recs, outcomes)
	if len(st) != 2 {
		t.Fatalf("got %d class summaries, want 2", len(st))
	}
	hi, lo := st[0], st[1]
	if hi.Class != "hi" || hi.Offered != 3 || hi.Completed != 2 || hi.Shed != 1 || hi.Evicted != 0 {
		t.Fatalf("hi summary off: %+v", hi)
	}
	if hi.Violations != 1 {
		t.Fatalf("hi violations = %d, want 1", hi.Violations)
	}
	if lo.Offered != 2 || lo.Shed != 0 || lo.Evicted != 1 || lo.Violations != 0 {
		t.Fatalf("lo summary off: %+v", lo)
	}
	if hi.Dropped != hi.Shed+hi.Evicted || lo.Dropped != lo.Shed+lo.Evicted {
		t.Fatalf("dropped != shed + evicted: hi %+v lo %+v", hi, lo)
	}
}

func TestDefaultClasses(t *testing.T) {
	horizon := sim.Time(50e6)
	cls := DefaultClasses(3, 20e3, 1e6, horizon, 1, 1)
	if len(cls) != 3 {
		t.Fatalf("got %d classes, want 3", len(cls))
	}
	names := []string{"premium", "standard", "batch"}
	for i, c := range cls {
		if c.Name != names[i] {
			t.Errorf("class %d named %s, want %s", i, c.Name, names[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("class %s invalid: %v", c.Name, err)
		}
		if i > 0 && cls[i-1].Priority <= c.Priority {
			t.Errorf("priorities not strictly decreasing at %d", i)
		}
	}
	// The misbehaving class offers ~10x its contract: its arrival stream
	// covers the same span in a tenth of the tasks' worth of time.
	honest := DefaultClasses(3, 20e3, 1e6, horizon, 1, -1)
	n := 200
	mis := cls[1].Gen.Times(n)
	ok := honest[1].Gen.Times(n)
	if mis[n-1] > ok[n-1]/5 {
		t.Errorf("misbehaving stream not ~10x faster: last arrivals %v vs %v", mis[n-1], ok[n-1])
	}
	if cls[1].Rate != honest[1].Rate {
		t.Errorf("misbehaving class changed its contracted rate")
	}
	// Extra classes extend the batch tier at decreasing priority.
	five := DefaultClasses(5, 20e3, 1e6, horizon, 1, -1)
	if five[4].Name != "batch3" || five[4].Priority >= five[3].Priority {
		t.Errorf("extra classes malformed: %+v", five[4])
	}
}

func TestAdmissionRejectsBadConfig(t *testing.T) {
	cl := twoClasses(1e6)
	arr, classOf := Merge(cl, []int{2, 2})
	for _, fn := range []func(){
		func() { NewAdmission("bogus", cl, arr, classOf, 8, false) },
		func() { NewAdmission(AdmitStrict, cl, arr, classOf, 0, false) },
		func() { NewAdmission(AdmitWFQ, cl, arr[:3], classOf, 8, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad admission config did not panic")
				}
			}()
			fn()
		}()
	}
}
