// Package gpu models a CUDA-class GPU as a deterministic discrete-event
// simulation: streaming multiprocessors (SMMs) with a processor-sharing
// instruction-issue engine, fixed-latency memory operations, and a
// threadblock dispatcher that enforces CUDA occupancy rules (resident
// threadblock, thread, shared-memory and register limits).
//
// The default geometry mirrors the NVIDIA Maxwell Titan X used in the Pagoda
// paper (PPoPP'17): 24 SMMs, 64 warps per SMM, 96 KB shared memory and 64K
// registers per SMM, 4 warp-instructions issued per cycle per SMM.
//
// Time is measured in core clock cycles; at the Titan X's 1 GHz, one cycle is
// one nanosecond.
package gpu

// Config describes the simulated device geometry and latency model.
type Config struct {
	// Geometry.
	NumSMMs          int // streaming multiprocessors
	WarpsPerSMM      int // max resident warps per SMM
	ThreadsPerWarp   int // SIMT width
	MaxTBsPerSMM     int // max resident threadblocks per SMM
	MaxThreadsPerTB  int // CUDA limit (1024)
	SharedPerSMM     int // bytes of shared memory per SMM
	MaxSharedPerTB   int // bytes of shared memory one threadblock may request
	RegsPerSMM       int // 32-bit registers per SMM
	MaxRegsPerThread int // compiler cap (-maxrregcount upper bound)

	// Issue model.
	IssueWidth float64 // warp-instructions per cycle per SMM

	// Latency model, in cycles.
	GlobalLatency       float64 // global (device) memory access latency
	SharedLatency       float64 // shared memory access latency
	AtomicSharedLatency float64 // shared-memory atomic service time
	AtomicGlobalLatency float64 // global-memory atomic service time
	FenceCost           float64 // __threadfence()
	FenceBlockCost      float64 // __threadfence_block()
	BarrierCost         float64 // bar.sync arrival overhead

	// CoalesceBytes is the size of one memory transaction; a warp access of
	// n bytes issues ceil(n/CoalesceBytes) transactions.
	CoalesceBytes int

	// MemBandwidth is the device-memory bandwidth in bytes per cycle,
	// shared by all in-flight global accesses (Titan X: 336 GB/s ≈ 336
	// B/cycle at 1 GHz; ~300 effective). This is what makes on-chip data
	// reuse through shared memory pay off — without a bandwidth cap,
	// latency hiding would make redundant global traffic free.
	MemBandwidth float64

	// ClockGHz converts cycles to wall-clock time (1 cycle = 1/ClockGHz ns).
	ClockGHz float64
}

// TitanX returns the Maxwell Titan X geometry used throughout the paper.
func TitanX() Config {
	return Config{
		NumSMMs:             24,
		WarpsPerSMM:         64,
		ThreadsPerWarp:      32,
		MaxTBsPerSMM:        32,
		MaxThreadsPerTB:     1024,
		SharedPerSMM:        96 * 1024,
		MaxSharedPerTB:      48 * 1024,
		RegsPerSMM:          64 * 1024,
		MaxRegsPerThread:    255,
		IssueWidth:          4,
		GlobalLatency:       368,
		SharedLatency:       24,
		AtomicSharedLatency: 32,
		AtomicGlobalLatency: 220,
		FenceCost:           120,
		FenceBlockCost:      24,
		BarrierCost:         16,
		CoalesceBytes:       128,
		MemBandwidth:        300,
		ClockGHz:            1.0,
	}
}

// TeslaK40 returns the Kepler Tesla K40 geometry — the second architecture
// the paper validated the TaskTable's CPU/GPU visibility behaviour on
// ("extensive micro-benchmarking ... on two GPU architectures, Tesla K40 and
// Maxwell Titan X", §4.2).
func TeslaK40() Config {
	return Config{
		NumSMMs:             15, // SMX units
		WarpsPerSMM:         64,
		ThreadsPerWarp:      32,
		MaxTBsPerSMM:        16,
		MaxThreadsPerTB:     1024,
		SharedPerSMM:        48 * 1024,
		MaxSharedPerTB:      48 * 1024,
		RegsPerSMM:          64 * 1024,
		MaxRegsPerThread:    255,
		IssueWidth:          4,
		GlobalLatency:       430,
		SharedLatency:       28,
		AtomicSharedLatency: 40,
		AtomicGlobalLatency: 280,
		FenceCost:           140,
		FenceBlockCost:      28,
		BarrierCost:         18,
		CoalesceBytes:       128,
		MemBandwidth:        240, // 288 GB/s peak, ~240 effective at 0.745->1 GHz norm
		ClockGHz:            1.0,
	}
}

// MaxResidentThreads returns the per-SMM thread limit implied by the warp
// count.
func (c Config) MaxResidentThreads() int { return c.WarpsPerSMM * c.ThreadsPerWarp }

// TotalWarps returns the device-wide resident warp capacity (the occupancy
// denominator: 64 x #SMMs on the Titan X).
func (c Config) TotalWarps() int { return c.NumSMMs * c.WarpsPerSMM }

// CyclesToSeconds converts a cycle count to seconds of simulated wall time.
func (c Config) CyclesToSeconds(cycles float64) float64 {
	return cycles / (c.ClockGHz * 1e9)
}

// Validate panics if the configuration is internally inconsistent; it is
// called by NewDevice.
func (c Config) Validate() {
	switch {
	case c.NumSMMs <= 0, c.WarpsPerSMM <= 0, c.ThreadsPerWarp <= 0:
		panic("gpu: non-positive geometry")
	case c.IssueWidth <= 0:
		panic("gpu: non-positive issue width")
	case c.MaxThreadsPerTB > c.MaxResidentThreads():
		panic("gpu: threadblock larger than an SMM")
	case c.MaxSharedPerTB > c.SharedPerSMM:
		panic("gpu: per-TB shared memory exceeds SMM shared memory")
	case c.CoalesceBytes <= 0:
		panic("gpu: non-positive coalesce size")
	case c.MemBandwidth <= 0:
		panic("gpu: non-positive memory bandwidth")
	}
}
