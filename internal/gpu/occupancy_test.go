package gpu

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestPaperSection2Occupancy(t *testing.T) {
	cfg := TitanX()
	// "Consider a scenario of narrow tasks, where one task has 256 threads,
	// or 8 warps. If only one task is executed at a time, the occupancy would
	// be (8/(64x24))x100% = 0.52%."
	one := NarrowTaskOccupancy(cfg, 256, 1)
	if math.Abs(one*100-0.52) > 0.01 {
		t.Errorf("1 task occupancy = %.4f%%, paper says 0.52%%", one*100)
	}
	// "With HyperQ ... (8x32/(64x24))x100% = 16.67%."
	hq := NarrowTaskOccupancy(cfg, 256, 32)
	if math.Abs(hq*100-16.67) > 0.01 {
		t.Errorf("32 task occupancy = %.4f%%, paper says 16.67%%", hq*100)
	}
}

func TestNarrowTaskOccupancyCaps(t *testing.T) {
	cfg := TitanX()
	if got := NarrowTaskOccupancy(cfg, 1024, 10000); got != 1.0 {
		t.Errorf("occupancy should cap at 1.0, got %v", got)
	}
}

func TestMasterKernelIs100PercentOccupancy(t *testing.T) {
	// The Pagoda MasterKernel: 2 TBs/SMM x 1024 threads, 32KB shared, 32
	// regs/thread must achieve 100% occupancy (§4.1).
	cfg := TitanX()
	occ := TheoreticalOccupancy(cfg, LaunchSpec{
		BlockThreads: 1024, SharedPerTB: 32 * 1024, RegsPerThread: 32,
	})
	if occ.TBsPerSMM != 2 {
		t.Fatalf("TBsPerSMM = %d, want 2", occ.TBsPerSMM)
	}
	if occ.Fraction != 1.0 {
		t.Fatalf("Fraction = %v, want 1.0", occ.Fraction)
	}
}

func TestOccupancyLimitedByThreads(t *testing.T) {
	cfg := TitanX()
	occ := TheoreticalOccupancy(cfg, LaunchSpec{BlockThreads: 1024, RegsPerThread: 32})
	if occ.TBsPerSMM != 2 || occ.LimitedBy != "thread slots" {
		t.Fatalf("occ = %+v, want 2 TBs limited by thread slots", occ)
	}
}

func TestOccupancyLimitedBySharedMem(t *testing.T) {
	cfg := TitanX()
	occ := TheoreticalOccupancy(cfg, LaunchSpec{
		BlockThreads: 64, SharedPerTB: 24 * 1024, RegsPerThread: 32,
	})
	// 96KB / 24KB = 4 TBs, 8 warps => 12.5%.
	if occ.TBsPerSMM != 4 || occ.LimitedBy != "shared memory" {
		t.Fatalf("occ = %+v, want 4 TBs limited by shared memory", occ)
	}
	if math.Abs(occ.Fraction-8.0/64.0) > 1e-9 {
		t.Fatalf("Fraction = %v, want 0.125", occ.Fraction)
	}
}

func TestOccupancyLimitedByRegisters(t *testing.T) {
	cfg := TitanX()
	occ := TheoreticalOccupancy(cfg, LaunchSpec{BlockThreads: 256, RegsPerThread: 128})
	// regs/TB = 128*256 = 32768; 65536/32768 = 2 TBs (vs 8 by threads).
	if occ.TBsPerSMM != 2 || occ.LimitedBy != "registers" {
		t.Fatalf("occ = %+v, want 2 TBs limited by registers", occ)
	}
}

func TestOccupancyTBSlotLimit(t *testing.T) {
	cfg := TitanX()
	occ := TheoreticalOccupancy(cfg, LaunchSpec{BlockThreads: 32, RegsPerThread: 16})
	if occ.TBsPerSMM != 32 || occ.LimitedBy != "threadblock slots" {
		t.Fatalf("occ = %+v, want 32 TBs limited by TB slots", occ)
	}
	if math.Abs(occ.Fraction-0.5) > 1e-9 {
		t.Fatalf("Fraction = %v: 32 single-warp TBs should give 50%%", occ.Fraction)
	}
}

func TestBarrierReuseGenerations(t *testing.T) {
	eng := sim.New()
	b := NewBarrier(eng, 2)
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		eng.Spawn("w", func(p *sim.Proc) {
			for round := 0; round < 3; round++ {
				p.Sleep(sim.Time(10 * (i + 1)))
				b.Arrive(p)
				order = append(order, round)
			}
		})
	}
	eng.Run()
	// Rounds must be in non-decreasing pairs: 0,0,1,1,2,2.
	want := []int{0, 0, 1, 1, 2, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("barrier rounds = %v, want %v", order, want)
		}
	}
}

func TestBarrierResetPanicsWhileInUse(t *testing.T) {
	eng := sim.New()
	b := NewBarrier(eng, 2)
	eng.Spawn("w", func(p *sim.Proc) { b.Arrive(p) })
	eng.Spawn("resetter", func(p *sim.Proc) {
		p.Sleep(1)
		defer func() {
			if recover() == nil {
				t.Error("Reset on in-use barrier did not panic")
			}
		}()
		b.Reset(3)
	})
	eng.RunUntil(10)
}

func TestAtomicSiteSerializes(t *testing.T) {
	eng := sim.New()
	site := NewAtomicSite(eng, 100)
	var finish []sim.Time
	for i := 0; i < 4; i++ {
		eng.Spawn("a", func(p *sim.Proc) {
			site.Do(p)
			finish = append(finish, eng.Now())
		})
	}
	eng.Run()
	want := []sim.Time{100, 200, 300, 400}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times = %v, want %v (FIFO serialization)", finish, want)
		}
	}
	if site.Ops != 4 {
		t.Errorf("Ops = %d, want 4", site.Ops)
	}
}
