package gpu

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// runPS runs n concurrent acquirers of `work` each on a PS resource of the
// given width and returns each one's completion time.
func runPS(width float64, works []float64) []sim.Time {
	eng := sim.New()
	r := newPSResource(eng, width)
	done := make([]sim.Time, len(works))
	for i, w := range works {
		i, w := i, w
		eng.Spawn("acq", func(p *sim.Proc) {
			r.Acquire(p, w)
			done[i] = eng.Now()
		})
	}
	eng.Run()
	return done
}

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

func TestPSSingleRequestFullRate(t *testing.T) {
	done := runPS(4, []float64{100})
	// A lone warp issues at rate 1, never faster.
	approx(t, done[0], 100, 1e-6, "single request")
}

func TestPSUpToWidthNoSlowdown(t *testing.T) {
	done := runPS(4, []float64{100, 100, 100, 100})
	for i, d := range done {
		approx(t, d, 100, 1e-6, "request under width")
		_ = i
	}
}

func TestPSOversubscribedSharesEqually(t *testing.T) {
	// 8 equal requests on width 4: each progresses at rate 0.5.
	done := runPS(4, []float64{100, 100, 100, 100, 100, 100, 100, 100})
	for _, d := range done {
		approx(t, d, 200, 1e-6, "oversubscribed request")
	}
}

func TestPSShortRequestFreesBandwidth(t *testing.T) {
	// Two requests, width 1: rate 0.5 each. The short one (10) finishes at
	// t=20; the long one then runs at rate 1: 100-10=90 remaining, done 110.
	done := runPS(1, []float64{10, 100})
	approx(t, done[0], 20, 1e-6, "short request")
	approx(t, done[1], 110, 1e-6, "long request")
}

func TestPSLateArrival(t *testing.T) {
	eng := sim.New()
	r := newPSResource(eng, 1)
	var t1, t2 sim.Time
	eng.Spawn("a", func(p *sim.Proc) {
		r.Acquire(p, 100)
		t1 = eng.Now()
	})
	eng.Spawn("b", func(p *sim.Proc) {
		p.Sleep(50)
		r.Acquire(p, 100)
		t2 = eng.Now()
	})
	eng.Run()
	// a runs alone 0-50 (50 done), then shares: both at rate 0.5.
	// a needs 50 more => done at 150. b then runs alone: 50 done at t=150,
	// 50 remaining at rate 1 => done at 200.
	approx(t, t1, 150, 1e-6, "first request")
	approx(t, t2, 200, 1e-6, "second request")
}

func TestPSZeroWorkImmediate(t *testing.T) {
	eng := sim.New()
	r := newPSResource(eng, 4)
	ran := false
	eng.Spawn("z", func(p *sim.Proc) {
		r.Acquire(p, 0)
		ran = true
		if eng.Now() != 0 {
			t.Errorf("zero work advanced time to %v", eng.Now())
		}
	})
	eng.Run()
	if !ran {
		t.Fatal("proc never ran")
	}
}

func TestPSBusyIntegral(t *testing.T) {
	eng := sim.New()
	r := newPSResource(eng, 4)
	eng.Spawn("a", func(p *sim.Proc) { r.Acquire(p, 100) })
	eng.Run()
	r.Poke()
	// One warp for 100 cycles: busy integral 100 (1 slot), util = 100/(4*100).
	approx(t, r.BusyIntegral(), 100, 1e-6, "busy integral")
	approx(t, r.QueueIntegral(), 100, 1e-6, "queue integral")
}

func TestPSManyStaggered(t *testing.T) {
	// Throughput conservation: total work delivered equals sum of works, and
	// last completion >= total/width.
	works := make([]float64, 40)
	var total float64
	for i := range works {
		works[i] = float64(10 + i*3)
		total += works[i]
	}
	done := runPS(4, works)
	var last sim.Time
	for _, d := range done {
		if d > last {
			last = d
		}
	}
	if last < total/4-1e-6 {
		t.Fatalf("finished faster than capacity allows: last=%v, lower bound=%v", last, total/4)
	}
	// The tail (fewer than `width` requests left, each capped at rate 1)
	// keeps the resource from being perfectly work-conserving, but the
	// overshoot is bounded by the longest request.
	longest := works[len(works)-1]
	if last > total/4+longest {
		t.Fatalf("tail overshoot too large: last=%v, bound=%v", last, total/4+longest)
	}
}
