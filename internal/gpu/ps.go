package gpu

import (
	"math"

	"repro/internal/sim"
)

// psEps absorbs floating-point drift when deciding that a processor-sharing
// request has completed.
const psEps = 1e-6

// psResource is an egalitarian processor-sharing resource: n concurrent
// requests each progress at rate min(1, width/n) work units per cycle. It
// models an SMM's instruction-issue bandwidth: a lone warp cannot exceed one
// instruction per cycle, and more than `width` ready warps share the issue
// slots equally.
//
// Completion times are maintained with an event-driven schedule: whenever the
// active set changes, accumulated progress is settled and the completion
// timer is re-armed for the earliest finisher.
type psResource struct {
	eng   *sim.Engine
	width float64
	// reqs holds in-service requests by value; completion compacts in place
	// and reuses the backing array, so steady-state Acquire never allocates.
	reqs  []psReq
	last  sim.Time
	timer *sim.Timer

	// busyIntegral accumulates min(n, width) dt — issue slots in use — and
	// weightedQueue accumulates n dt, for utilization metrics.
	busyIntegral  float64
	queueIntegral float64
}

type psReq struct {
	remaining float64
	proc      *sim.Proc
}

func newPSResource(eng *sim.Engine, width float64) *psResource {
	r := &psResource{eng: eng, width: width, last: eng.Now()}
	r.timer = sim.NewTimer(eng, r.onTimer)
	return r
}

func (r *psResource) rate() float64 {
	n := len(r.reqs)
	if n == 0 {
		return 0
	}
	return math.Min(1, r.width/float64(n))
}

// settle accrues progress for the interval since the last state change.
func (r *psResource) settle() {
	now := r.eng.Now()
	dt := now - r.last
	if dt > 0 {
		rt := r.rate()
		n := float64(len(r.reqs))
		for i := range r.reqs {
			r.reqs[i].remaining -= dt * rt
		}
		r.busyIntegral += dt * math.Min(n, r.width)
		r.queueIntegral += dt * n
	}
	r.last = now
}

// rearm schedules the completion timer for the earliest-finishing request.
func (r *psResource) rearm() {
	if len(r.reqs) == 0 {
		r.timer.Stop()
		return
	}
	minRem := math.Inf(1)
	for i := range r.reqs {
		if r.reqs[i].remaining < minRem {
			minRem = r.reqs[i].remaining
		}
	}
	if minRem < 0 {
		minRem = 0
	}
	d := minRem / r.rate()
	if now := r.eng.Now(); now+d == now {
		// See bwResource.rearm: a delay below the clock's current float64
		// ulp would re-fire at this instant forever without draining; step
		// to the next representable instant so the request completes.
		r.timer.ResetAt(math.Nextafter(now, math.Inf(1)))
		return
	}
	r.timer.Reset(d)
}

func (r *psResource) onTimer() {
	r.settle()
	kept := r.reqs[:0]
	for i := range r.reqs {
		if r.reqs[i].remaining <= psEps {
			r.reqs[i].proc.Wakeup()
		} else {
			kept = append(kept, r.reqs[i])
		}
	}
	r.reqs = kept
	r.rearm()
}

// Acquire blocks p until `work` issue-cycles of service have been delivered
// under processor sharing. work <= 0 returns immediately.
func (r *psResource) Acquire(p *sim.Proc, work float64) {
	if work <= 0 {
		return
	}
	r.settle()
	r.reqs = append(r.reqs, psReq{remaining: work, proc: p})
	r.rearm()
	p.Block()
}

// Active returns the number of in-service requests (ready warps).
func (r *psResource) Active() int { return len(r.reqs) }

// BusyIntegral returns issue-slot-cycles consumed so far; divide by
// width*elapsed for utilization. The caller should settle first via Poke.
func (r *psResource) BusyIntegral() float64 { return r.busyIntegral }

// QueueIntegral returns ready-warp-cycles accumulated so far.
func (r *psResource) QueueIntegral() float64 { return r.queueIntegral }

// Poke settles accounting up to the current instant (for metric snapshots).
func (r *psResource) Poke() { r.settle(); r.rearm() }
