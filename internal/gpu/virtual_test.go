package gpu

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestInvalidOccupancyInputs pins the degenerate-input fix: zero-thread
// blocks and zero-warp geometries used to panic (division by zero) or return
// Fraction NaN. They must instead report a zero Occupancy with LimitedBy
// "invalid spec".
func TestInvalidOccupancyInputs(t *testing.T) {
	valid := TitanX()
	noWarps := valid
	noWarps.WarpsPerSMM = 0
	noSIMT := valid
	noSIMT.ThreadsPerWarp = 0
	cases := []struct {
		name string
		cfg  Config
		spec LaunchSpec
	}{
		{"zero BlockThreads", valid, LaunchSpec{BlockThreads: 0, RegsPerThread: 32}},
		{"negative BlockThreads", valid, LaunchSpec{BlockThreads: -64, RegsPerThread: 32}},
		{"zero WarpsPerSMM", noWarps, LaunchSpec{BlockThreads: 128, RegsPerThread: 32}},
		{"zero ThreadsPerWarp", noSIMT, LaunchSpec{BlockThreads: 128, RegsPerThread: 32}},
		{"negative RegsPerThread", valid, LaunchSpec{BlockThreads: 128, RegsPerThread: -8}},
		{"zero config", Config{}, LaunchSpec{BlockThreads: 128}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			occ := TheoreticalOccupancy(c.cfg, c.spec)
			if occ.TBsPerSMM != 0 || occ.WarpsPerSMM != 0 || occ.Fraction != 0 {
				t.Errorf("occ = %+v, want zero occupancy", occ)
			}
			if math.IsNaN(occ.Fraction) {
				t.Errorf("Fraction is NaN")
			}
			if occ.LimitedBy != "invalid spec" {
				t.Errorf("LimitedBy = %q, want %q", occ.LimitedBy, "invalid spec")
			}
			vocc := VirtualOccupancy(c.cfg, c.spec, DefaultOversub())
			if vocc != occ {
				t.Errorf("VirtualOccupancy = %+v, want %+v on invalid input", vocc, occ)
			}
		})
	}
}

// TestNarrowTaskOccupancyDegenerate pins the same fix for the §2 helper: a
// zero-warp config or non-positive task shape returns 0, never NaN.
func TestNarrowTaskOccupancyDegenerate(t *testing.T) {
	noWarps := TitanX()
	noWarps.WarpsPerSMM = 0
	cases := []struct {
		name           string
		cfg            Config
		threads, tasks int
	}{
		{"zero config", Config{}, 256, 32},
		{"zero WarpsPerSMM", noWarps, 256, 32},
		{"zero threads", TitanX(), 0, 32},
		{"zero concurrent", TitanX(), 256, 0},
		{"negative threads", TitanX(), -1, 32},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := NarrowTaskOccupancy(c.cfg, c.threads, c.tasks)
			if got != 0 || math.IsNaN(got) {
				t.Errorf("NarrowTaskOccupancy = %v, want 0", got)
			}
		})
	}
}

// TestVirtualOccupancyReducesAtUnity is the acceptance pin: with all factors
// at 1.0 (or the zero Oversub) VirtualOccupancy must equal
// TheoreticalOccupancy exactly, field for field, across representative specs.
func TestVirtualOccupancyReducesAtUnity(t *testing.T) {
	cfg := TitanX()
	specs := []LaunchSpec{
		{BlockThreads: 1024, SharedPerTB: 32 * 1024, RegsPerThread: 32}, // MasterKernel
		{BlockThreads: 1024, RegsPerThread: 32},                         // thread-slot bound
		{BlockThreads: 64, SharedPerTB: 24 * 1024, RegsPerThread: 32},   // shared bound
		{BlockThreads: 256, RegsPerThread: 128},                         // register bound
		{BlockThreads: 32, RegsPerThread: 16},                           // TB-slot bound
		{BlockThreads: 128, RegsPerThread: 32},                          // the narrow-task shape
	}
	for _, ov := range []Oversub{{}, UniformOversub(1.0)} {
		if ov.Enabled() {
			t.Fatalf("Oversub %+v reports Enabled, want disabled at unity", ov)
		}
		for _, spec := range specs {
			want := TheoreticalOccupancy(cfg, spec)
			got := VirtualOccupancy(cfg, spec, ov)
			if got != want {
				t.Errorf("spec %+v: VirtualOccupancy(%+v) = %+v, want TheoreticalOccupancy %+v",
					spec, ov, got, want)
			}
		}
	}
}

// TestVirtualOccupancyOversubscribes checks the model's point: scaling the
// capacities admits more threadblocks, and the Fraction denominator stays
// physical so oversubscription is visible as Fraction > 1.
func TestVirtualOccupancyOversubscribes(t *testing.T) {
	cfg := TitanX()
	// Shared-memory-bound spec: physically 4 TBs (96KB/24KB), 12.5% occupancy.
	spec := LaunchSpec{BlockThreads: 64, SharedPerTB: 24 * 1024, RegsPerThread: 32}
	occ := VirtualOccupancy(cfg, spec, UniformOversub(2.0))
	if occ.TBsPerSMM != 8 || occ.LimitedBy != "shared memory" {
		t.Fatalf("occ = %+v, want 8 TBs still limited by shared memory at 2x", occ)
	}
	if math.Abs(occ.Fraction-16.0/64.0) > 1e-9 {
		t.Fatalf("Fraction = %v, want 0.25", occ.Fraction)
	}

	// Thread-slot-bound spec at 1.5x: 2048*1.5/1024 = 3 TBs, 96 warps > the
	// physical 64 contexts — Fraction exceeds 1.
	wide := LaunchSpec{BlockThreads: 1024, RegsPerThread: 16}
	occ = VirtualOccupancy(cfg, wide, UniformOversub(1.5))
	if occ.TBsPerSMM != 3 || occ.WarpsPerSMM != 96 {
		t.Fatalf("occ = %+v, want 3 TBs / 96 warps at 1.5x", occ)
	}
	if math.Abs(occ.Fraction-1.5) > 1e-9 {
		t.Fatalf("Fraction = %v, want 1.5 (resident contexts / physical)", occ.Fraction)
	}
}

// TestVirtualizeAdmitsPastPhysicalAndChargesSpill runs a real device: a
// latency-bound kernel whose blocks each claim 48KB shared memory fits 2 per
// SMM physically; at 2x shared oversubscription all 4 are admitted at once
// and the coordinator charges spill for the overflow. Because the warps
// spend their time stalled on global memory (idle issue slots), the extra
// residency hides latency and the oversubscribed run finishes strictly
// earlier despite the spill price; the ledger records the spilled bytes.
func TestVirtualizeAdmitsPastPhysicalAndChargesSpill(t *testing.T) {
	cfg := TitanX()
	cfg.NumSMMs = 1
	run := func(ov Oversub) (sim.Time, *Coordinator) {
		eng := sim.New()
		dev := NewDevice(eng, cfg)
		var co *Coordinator
		if ov.Enabled() {
			co = dev.Virtualize(ov)
		}
		spec := LaunchSpec{
			Name: "sh", GridDim: 4, BlockThreads: 64, SharedPerTB: 48 * 1024,
			RegsPerThread: 32,
			Fn: func(ctx *Ctx) {
				for i := 0; i < 256; i++ { // pointer-chase: latency-bound
					ctx.GlobalRead(4)
				}
			},
		}
		k := dev.Launch(spec)
		eng.Run()
		return k.EndTime, co
	}
	baseEnd, _ := run(Oversub{})
	virtEnd, co := run(Oversub{SharedMem: 2.0, SpillCyclesPerKB: DefaultSpillCyclesPerKB})
	if virtEnd >= baseEnd {
		t.Errorf("virtualized end %v not earlier than static end %v", virtEnd, baseEnd)
	}
	if co.SpilledTBs != 2 {
		t.Errorf("SpilledTBs = %d, want 2 (blocks 3 and 4 overflow the 96KB SMM)", co.SpilledTBs)
	}
	if want := 2 * 48 * 1024; co.SpillBytes != want {
		t.Errorf("SpillBytes = %d, want %d", co.SpillBytes, want)
	}
	if co.SpillCycles <= 0 {
		t.Errorf("SpillCycles = %v, want > 0", co.SpillCycles)
	}
}

// TestVirtualizeAtUnityIsInert pins that installing a coordinator with
// factors <= 1 changes nothing: admission stays physical and no spill is
// ever charged.
func TestVirtualizeAtUnityIsInert(t *testing.T) {
	cfg := TitanX()
	cfg.NumSMMs = 2
	run := func(virtualize bool) sim.Time {
		eng := sim.New()
		dev := NewDevice(eng, cfg)
		var co *Coordinator
		if virtualize {
			co = dev.Virtualize(UniformOversub(1.0))
		}
		k := dev.Launch(LaunchSpec{
			Name: "u", GridDim: 16, BlockThreads: 128, RegsPerThread: 32,
			Fn: func(ctx *Ctx) { ctx.Compute(5_000) },
		})
		eng.Run()
		if virtualize && (co.SpilledTBs != 0 || co.SpillBytes != 0 || co.SpillCycles != 0) {
			t.Errorf("unity coordinator charged spill: %+v", co)
		}
		return k.EndTime
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("unity-virtualized end %v != static end %v", b, a)
	}
}
