package gpu

import (
	"repro/internal/sim"
)

// Ctx is the per-warp device execution context handed to a KernelFunc. It
// plays the role of the CUDA built-ins (threadIdx/blockIdx/blockDim) plus the
// cost-charging API of the simulator.
//
// A kernel function runs warp-synchronously: it is invoked once per warp and
// iterates over its 32 lanes with ForEachLane when it needs per-thread
// behaviour.
type Ctx struct {
	dev  *Device
	smm  *SMM
	proc *sim.Proc

	BlockIdx    int // blockIdx.x
	GridDim     int // gridDim.x
	BlockDim    int // blockDim.x (threads per block)
	WarpInBlock int // warp index within the block
	Args        any // kernel arguments

	// TidBase overrides the default global-thread-id origin. The CUDA layer
	// leaves it zero; the Pagoda MasterKernel sets it so that tasks see task-
	// relative thread IDs regardless of which executor warps they landed on.
	TidBase int

	blockBar *Barrier
}

// Proc exposes the underlying simulation process (for runtime systems built
// on top of raw warps, e.g. Pagoda's MasterKernel).
func (c *Ctx) Proc() *sim.Proc { return c.proc }

// Device returns the device this warp runs on.
func (c *Ctx) Device() *Device { return c.dev }

// SMM returns the multiprocessor this warp is resident on.
func (c *Ctx) SMM() *SMM { return c.smm }

// Now returns the current simulated time in cycles.
func (c *Ctx) Now() sim.Time { return c.dev.Eng.Now() }

// WarpSize returns the SIMT width (32).
func (c *Ctx) WarpSize() int { return c.dev.Cfg.ThreadsPerWarp }

// LaneBase returns the global thread id of lane 0 of this warp.
func (c *Ctx) LaneBase() int {
	return c.TidBase + c.BlockIdx*c.BlockDim + c.WarpInBlock*c.dev.Cfg.ThreadsPerWarp
}

// ActiveLanes returns how many lanes of this warp map to real threads (the
// last warp of a block may be partial).
func (c *Ctx) ActiveLanes() int {
	remaining := c.BlockDim - c.WarpInBlock*c.dev.Cfg.ThreadsPerWarp
	if remaining >= c.dev.Cfg.ThreadsPerWarp {
		return c.dev.Cfg.ThreadsPerWarp
	}
	if remaining < 0 {
		return 0
	}
	return remaining
}

// ForEachLane invokes fn for every active lane with that lane's global
// thread id (getTid() in the Pagoda API). It charges no simulated time;
// charge compute costs separately.
func (c *Ctx) ForEachLane(fn func(tid int)) {
	base := c.LaneBase()
	for l := 0; l < c.ActiveLanes(); l++ {
		fn(base + l)
	}
}

// --- cost-charging operations ---

// Compute charges `cycles` of instruction issue under processor sharing with
// the other ready warps on this SMM.
func (c *Ctx) Compute(cycles float64) {
	c.smm.issue.Acquire(c.proc, cycles)
}

// transactions returns the number of coalesced memory transactions for a
// warp-wide access of n bytes.
func (c *Ctx) transactions(n int) float64 {
	cb := c.dev.Cfg.CoalesceBytes
	t := (n + cb - 1) / cb
	if t < 1 {
		t = 1
	}
	return float64(t)
}

// GlobalRead models a warp-wide coalesced read of n bytes from device
// memory: issue cost proportional to transactions, the bandwidth-shared
// transfer, then the memory latency with the warp descheduled (so other
// warps can hide it).
func (c *Ctx) GlobalRead(n int) {
	c.Compute(c.transactions(n))
	c.dev.membw.Acquire(c.proc, n)
	c.proc.Sleep(c.dev.Cfg.GlobalLatency)
}

// GlobalWrite models a warp-wide coalesced write of n bytes. Writes retire
// through the store queue: issue and bandwidth cost, plus a small depart
// latency.
func (c *Ctx) GlobalWrite(n int) {
	c.Compute(c.transactions(n))
	c.dev.membw.Acquire(c.proc, n)
	c.proc.Sleep(c.dev.Cfg.GlobalLatency / 8)
}

// SharedRead models a warp-wide shared-memory read of n bytes.
func (c *Ctx) SharedRead(n int) {
	c.Compute(c.transactions(n))
	c.proc.Sleep(c.dev.Cfg.SharedLatency)
}

// SharedWrite models a warp-wide shared-memory write of n bytes.
func (c *Ctx) SharedWrite(n int) {
	c.Compute(c.transactions(n))
	c.proc.Sleep(c.dev.Cfg.SharedLatency / 2)
}

// AtomicShared performs one shared-memory atomic through the given site,
// serializing with other warps using the same site.
func (c *Ctx) AtomicShared(site *AtomicSite) {
	c.Compute(1)
	site.Do(c.proc)
}

// AtomicGlobal performs one global-memory atomic through the given site.
func (c *Ctx) AtomicGlobal(site *AtomicSite) {
	c.Compute(1)
	site.Do(c.proc)
}

// Threadfence charges the cost of __threadfence() (device-wide visibility).
func (c *Ctx) Threadfence() {
	c.Compute(1)
	c.proc.Sleep(c.dev.Cfg.FenceCost)
}

// ThreadfenceBlock charges the cost of __threadfence_block().
func (c *Ctx) ThreadfenceBlock() {
	c.Compute(1)
	c.proc.Sleep(c.dev.Cfg.FenceBlockCost)
}

// SyncBlock is __syncthreads(): synchronizes all warps of the CUDA
// threadblock. Panics when used from a runtime (like Pagoda's MasterKernel)
// whose blocks must not block-sync; such runtimes provide their own
// sub-threadblock barriers.
func (c *Ctx) SyncBlock() {
	if c.blockBar == nil {
		if c.BlockDim <= c.dev.Cfg.ThreadsPerWarp {
			return // single-warp block: lockstep already synchronizes
		}
		panic("gpu: SyncBlock on a block without a barrier")
	}
	c.Compute(c.dev.Cfg.BarrierCost)
	c.blockBar.Arrive(c.proc)
}

// NamedBarrier synchronizes on an explicitly managed barrier (PTX bar.sync
// with a barrier ID), used by Pagoda's sub-threadblock synchronization.
func (c *Ctx) NamedBarrier(b *Barrier) {
	c.Compute(c.dev.Cfg.BarrierCost)
	b.Arrive(c.proc)
}

// WarpVoteAll models the _all() warp vote: lockstep lanes need only a couple
// of cycles.
func (c *Ctx) WarpVoteAll() { c.Compute(2) }

// Sleep parks the warp for the given number of cycles without consuming
// issue bandwidth (used for modelled waits such as poll back-off).
func (c *Ctx) Sleep(cycles float64) { c.proc.Sleep(cycles) }
