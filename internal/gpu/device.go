package gpu

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// KernelFunc is device code, invoked once per warp. Lane-level work is
// expressed through the Ctx helpers; simulated cost is charged through the
// Ctx op methods (Compute, GlobalRead, ...).
type KernelFunc func(ctx *Ctx)

// LaunchSpec describes a kernel launch (grid, block shape, resources).
type LaunchSpec struct {
	Name          string
	GridDim       int // number of threadblocks
	BlockThreads  int // threads per threadblock (<= 1024)
	SharedPerTB   int // bytes of shared memory per threadblock
	RegsPerThread int // register budget per thread (occupancy input)
	Fn            KernelFunc
	Args          any
}

// WarpsPerTB returns the number of warps a threadblock occupies.
func (s LaunchSpec) WarpsPerTB(cfg Config) int {
	return (s.BlockThreads + cfg.ThreadsPerWarp - 1) / cfg.ThreadsPerWarp
}

// Kernel is an in-flight (or finished) kernel launch.
type Kernel struct {
	Spec     LaunchSpec
	dev      *Device
	tbsDone  int
	finished bool
	doneSig  sim.Signal
	onDone   []func()

	StartTime sim.Time // first threadblock dispatched
	EndTime   sim.Time // last threadblock completed
	started   bool
}

// Finished reports whether all threadblocks have completed.
func (k *Kernel) Finished() bool { return k.finished }

// WaitDone parks p until the kernel finishes.
func (k *Kernel) WaitDone(p *sim.Proc) {
	for !k.finished {
		k.doneSig.Wait(p)
	}
}

// OnDone registers fn to run (on the event loop) when the kernel finishes.
// If the kernel already finished, fn runs immediately.
func (k *Kernel) OnDone(fn func()) {
	if k.finished {
		fn()
		return
	}
	k.onDone = append(k.onDone, fn)
}

// threadBlock is one block of a kernel pending dispatch or resident on an
// SMM.
type threadBlock struct {
	kernel     *Kernel
	blockIdx   int
	smm        *SMM
	warpsLeft  int
	barrier    *Barrier
	placedAt   sim.Time
	spillDelay sim.Time // coordinator swap-in cost before warps may execute
}

// SMM is one streaming multiprocessor: an issue engine plus resource
// accounting for resident threadblocks.
type SMM struct {
	dev *Device
	ID  int

	issue *psResource

	residentTBs     int
	residentThreads int
	residentWarps   int
	usedShared      int
	usedRegs        int

	// warpIntegral accumulates residentWarps dt for occupancy metrics.
	warpIntegral float64
	lastWarpUpd  sim.Time
}

func (m *SMM) settleWarps() {
	now := m.dev.Eng.Now()
	m.warpIntegral += float64(m.residentWarps) * (now - m.lastWarpUpd)
	m.lastWarpUpd = now
}

// fits reports whether a threadblock of the given spec can be placed now.
// The capacities are the device's admission caps: physical by default,
// oversubscribed when a virtualization coordinator is installed.
func (m *SMM) fits(spec LaunchSpec) bool {
	cfg := m.dev.Cfg
	caps := m.dev.caps
	warps := spec.WarpsPerTB(cfg)
	regs := spec.RegsPerThread * warps * cfg.ThreadsPerWarp
	return m.residentTBs+1 <= caps.tbs &&
		m.residentThreads+spec.BlockThreads <= caps.threads &&
		m.residentWarps+warps <= caps.warps &&
		m.usedShared+spec.SharedPerTB <= caps.shared &&
		m.usedRegs+regs <= caps.regs
}

func (m *SMM) place(tb *threadBlock) {
	cfg := m.dev.Cfg
	spec := tb.kernel.Spec
	warps := spec.WarpsPerTB(cfg)
	m.settleWarps()
	m.residentTBs++
	m.residentThreads += spec.BlockThreads
	m.residentWarps += warps
	m.usedShared += spec.SharedPerTB
	m.usedRegs += spec.RegsPerThread * warps * cfg.ThreadsPerWarp
	tb.smm = m
	if v := m.dev.Virt; v != nil {
		tb.spillDelay = v.admit(m, spec, warps)
	}
}

func (m *SMM) release(tb *threadBlock) {
	cfg := m.dev.Cfg
	spec := tb.kernel.Spec
	warps := spec.WarpsPerTB(cfg)
	m.settleWarps()
	m.residentTBs--
	m.residentThreads -= spec.BlockThreads
	m.residentWarps -= warps
	m.usedShared -= spec.SharedPerTB
	m.usedRegs -= spec.RegsPerThread * warps * cfg.ThreadsPerWarp
}

// FreeWarps returns the number of warp slots currently unoccupied.
func (m *SMM) FreeWarps() int { return m.dev.Cfg.WarpsPerSMM - m.residentWarps }

// ResidentWarps returns the warps currently resident.
func (m *SMM) ResidentWarps() int { return m.residentWarps }

// Device is the simulated GPU.
type Device struct {
	Eng  *sim.Engine
	Cfg  Config
	SMMs []*SMM

	pending []*threadBlock // FIFO dispatch queue (head-of-line blocking, as in CUDA)

	membw *bwResource // device-memory bandwidth, shared by all global accesses

	// Trace, when set, records kernel and threadblock spans.
	Trace *trace.Tracer

	// Virt, when non-nil, is the Zorua-style virtualization coordinator:
	// threadblocks are admitted against its oversubscribed capacities and
	// charged its spill cost. Nil means static (physical) admission.
	Virt *Coordinator

	// caps are the admission capacities tryDispatch enforces — physical
	// unless Virtualize has installed a coordinator.
	caps occCaps

	createdAt sim.Time
}

// NewDevice builds a device on the given engine.
func NewDevice(eng *sim.Engine, cfg Config) *Device {
	cfg.Validate()
	d := &Device{Eng: eng, Cfg: cfg, caps: physCaps(cfg), createdAt: eng.Now()}
	d.membw = newBWResource(eng, cfg.MemBandwidth)
	d.SMMs = make([]*SMM, cfg.NumSMMs)
	for i := range d.SMMs {
		d.SMMs[i] = &SMM{
			dev:         d,
			ID:          i,
			issue:       newPSResource(eng, cfg.IssueWidth),
			lastWarpUpd: eng.Now(),
		}
	}
	return d
}

// Virtualize installs a dynamic-resource virtualization coordinator:
// subsequent threadblock dispatch admits against the oversubscribed
// capacities and pays the coordinator's spill cost whenever live demand
// exceeds physical capacity. With factors <= 1 this is a no-op (admission
// stays physical). It returns the coordinator for spill accounting.
func (d *Device) Virtualize(ov Oversub) *Coordinator {
	d.Virt = NewCoordinator(d.Cfg, ov)
	d.caps = d.Virt.caps
	return d.Virt
}

// Launch validates the spec and enqueues the kernel's threadblocks for
// dispatch. It returns immediately (launch overhead and stream ordering are
// the CUDA layer's concern).
func (d *Device) Launch(spec LaunchSpec) *Kernel {
	if spec.GridDim <= 0 || spec.BlockThreads <= 0 {
		panic(fmt.Sprintf("gpu: invalid launch %q: grid=%d block=%d", spec.Name, spec.GridDim, spec.BlockThreads))
	}
	if spec.BlockThreads > d.Cfg.MaxThreadsPerTB {
		panic(fmt.Sprintf("gpu: launch %q: %d threads/TB exceeds limit %d", spec.Name, spec.BlockThreads, d.Cfg.MaxThreadsPerTB))
	}
	if spec.SharedPerTB > d.Cfg.MaxSharedPerTB {
		panic(fmt.Sprintf("gpu: launch %q: %d B shared/TB exceeds limit %d", spec.Name, spec.SharedPerTB, d.Cfg.MaxSharedPerTB))
	}
	if spec.RegsPerThread <= 0 {
		spec.RegsPerThread = 32
	}
	if spec.RegsPerThread > d.Cfg.MaxRegsPerThread {
		spec.RegsPerThread = d.Cfg.MaxRegsPerThread
	}
	k := &Kernel{Spec: spec, dev: d}
	warpsPerTB := spec.WarpsPerTB(d.Cfg)
	for b := 0; b < spec.GridDim; b++ {
		tb := &threadBlock{kernel: k, blockIdx: b, warpsLeft: warpsPerTB}
		if spec.BlockThreads > d.Cfg.ThreadsPerWarp {
			tb.barrier = NewBarrier(d.Eng, warpsPerTB)
		}
		d.pending = append(d.pending, tb)
	}
	d.tryDispatch()
	return k
}

// tryDispatch places queued threadblocks in FIFO order until the head no
// longer fits anywhere (head-of-line blocking, matching the hardware
// threadblock scheduler the paper contrasts with warp-level scheduling).
func (d *Device) tryDispatch() {
	for len(d.pending) > 0 {
		tb := d.pending[0]
		smm := d.pickSMM(tb.kernel.Spec)
		if smm == nil {
			return
		}
		d.pending = d.pending[1:]
		smm.place(tb)
		tb.placedAt = d.Eng.Now()
		k := tb.kernel
		if !k.started {
			k.started = true
			k.StartTime = d.Eng.Now()
		}
		d.startWarps(tb)
	}
}

// pickSMM returns the SMM with the most free warp slots that fits the spec,
// or nil. Ties break toward the lowest ID for determinism.
func (d *Device) pickSMM(spec LaunchSpec) *SMM {
	var best *SMM
	for _, m := range d.SMMs {
		if !m.fits(spec) {
			continue
		}
		if best == nil || m.FreeWarps() > best.FreeWarps() {
			best = m
		}
	}
	return best
}

// startWarps spawns one simulation process per warp of the threadblock.
func (d *Device) startWarps(tb *threadBlock) {
	spec := tb.kernel.Spec
	warps := spec.WarpsPerTB(d.Cfg)
	for w := 0; w < warps; w++ {
		w := w
		name := fmt.Sprintf("%s/tb%d/w%d", spec.Name, tb.blockIdx, w)
		d.Eng.Spawn(name, func(p *sim.Proc) {
			if tb.spillDelay > 0 {
				p.Sleep(tb.spillDelay)
			}
			ctx := &Ctx{
				dev:         d,
				smm:         tb.smm,
				proc:        p,
				BlockIdx:    tb.blockIdx,
				GridDim:     spec.GridDim,
				BlockDim:    spec.BlockThreads,
				WarpInBlock: w,
				Args:        spec.Args,
				blockBar:    tb.barrier,
			}
			spec.Fn(ctx)
			d.warpDone(tb)
		})
	}
}

func (d *Device) warpDone(tb *threadBlock) {
	tb.warpsLeft--
	if tb.warpsLeft > 0 {
		return
	}
	tb.smm.release(tb)
	k := tb.kernel
	if d.Trace.Enabled() {
		d.Trace.Add(trace.Span{
			Name: fmt.Sprintf("%s/tb%d", k.Spec.Name, tb.blockIdx), Cat: "threadblock",
			Track: fmt.Sprintf("SMM%02d", tb.smm.ID), Start: tb.placedAt, End: d.Eng.Now(),
		})
	}
	k.tbsDone++
	if k.tbsDone == k.Spec.GridDim {
		k.finished = true
		k.EndTime = d.Eng.Now()
		if d.Trace.Enabled() {
			d.Trace.Add(trace.Span{
				Name: k.Spec.Name, Cat: "kernel", Track: "kernels",
				Start: k.StartTime, End: k.EndTime,
			})
		}
		k.doneSig.Broadcast()
		for _, fn := range k.onDone {
			fn()
		}
		k.onDone = nil
	}
	d.tryDispatch()
}

// PendingTBs returns the number of threadblocks awaiting dispatch.
func (d *Device) PendingTBs() int { return len(d.pending) }
