package gpu

import "repro/internal/sim"

// This file models Zorua-style dynamic resource virtualization (Vijaykumar
// et al., "Zorua: A Holistic Approach to Resource Virtualization in GPUs",
// MICRO'16; arXiv 1802.02573 / 1805.02498) as a counterpoint to Pagoda's
// static warp-level reservation. Zorua decouples the resources a threadblock
// is *allocated* from the physical capacity behind them: a runtime
// coordinator admits threadblocks against oversubscribed (virtual) budgets
// and dynamically spills the overflow to a backing store, paying a swap cost
// when live demand exceeds what the hardware actually has.

// DefaultSpillCyclesPerKB prices moving 1 KB of oversubscribed state between
// the register file / shared memory and the backing store: one global
// round-trip (~2x368 cycles latency) amortized over a ~300 B/cycle pipe lands
// in the mid-hundreds of cycles per KB.
const DefaultSpillCyclesPerKB = 512.0

// Oversub holds the per-resource oversubscription factors of the virtualized
// occupancy model. Each factor multiplies the physical per-SMM capacity when
// the coordinator admits threadblocks; values <= 1 (including the zero value)
// leave that resource at its physical size, so the zero Oversub is exactly
// the static hardware model.
type Oversub struct {
	TBSlots     float64 // threadblock slots per SMM
	ThreadSlots float64 // thread/warp contexts per SMM
	Registers   float64 // register file
	SharedMem   float64 // shared memory

	// SpillCyclesPerKB is the cycle cost charged to a threadblock per KB of
	// register/shared state it was admitted beyond physical capacity.
	SpillCyclesPerKB float64
}

// Enabled reports whether any resource is actually oversubscribed.
func (o Oversub) Enabled() bool {
	return o.TBSlots > 1 || o.ThreadSlots > 1 || o.Registers > 1 || o.SharedMem > 1
}

// UniformOversub oversubscribes every virtualized resource by the same
// factor, with the default spill price.
func UniformOversub(f float64) Oversub {
	return Oversub{
		TBSlots:          f,
		ThreadSlots:      f,
		Registers:        f,
		SharedMem:        f,
		SpillCyclesPerKB: DefaultSpillCyclesPerKB,
	}
}

// DefaultOversub is the zorua scheme's default operating point: 1.5x on
// every virtualized resource, matching the moderate-oversubscription regime
// the Zorua papers evaluate.
func DefaultOversub() Oversub { return UniformOversub(1.5) }

func scaleCap(phys int, f float64) int {
	if f <= 1 {
		return phys
	}
	return int(float64(phys) * f)
}

// caps returns the virtual per-SMM capacities: physical scaled by the
// factors. ThreadSlots scales both the thread and warp-context limits (they
// are two views of the same execution contexts).
func (o Oversub) caps(cfg Config) occCaps {
	p := physCaps(cfg)
	return occCaps{
		tbs:     scaleCap(p.tbs, o.TBSlots),
		threads: scaleCap(p.threads, o.ThreadSlots),
		warps:   scaleCap(p.warps, o.ThreadSlots),
		shared:  scaleCap(p.shared, o.SharedMem),
		regs:    scaleCap(p.regs, o.Registers),
	}
}

// VirtualOccupancy computes the occupancy of the spec when threadblocks are
// admitted against the oversubscribed capacities instead of the physical
// ones. With all factors <= 1 it reduces exactly to TheoreticalOccupancy.
// Fraction keeps the physical warp capacity as its denominator, so values
// above 1 mean more contexts are live than the hardware natively holds —
// the coordinator time-multiplexes them at the spill price.
func VirtualOccupancy(cfg Config, spec LaunchSpec, ov Oversub) Occupancy {
	return occupancyAgainst(cfg, spec, ov.caps(cfg))
}

// Coordinator is the runtime piece of the virtualization model: it owns the
// virtual capacities the dispatcher admits against and accounts the spill
// traffic generated when live demand exceeds physical capacity. Install one
// on a Device with Virtualize.
type Coordinator struct {
	ov   Oversub
	caps occCaps

	// SpilledTBs counts threadblocks admitted past physical capacity.
	SpilledTBs int
	// SpillBytes is the total register+shared state moved to the backing
	// store on their behalf.
	SpillBytes int
	// SpillCycles is the total swap delay charged, in cycles.
	SpillCycles float64
}

// NewCoordinator builds a coordinator for the given geometry and factors.
func NewCoordinator(cfg Config, ov Oversub) *Coordinator {
	return &Coordinator{ov: ov, caps: ov.caps(cfg)}
}

// Oversub returns the factors the coordinator was built with.
func (c *Coordinator) Oversub() Oversub { return c.ov }

// admit accounts one threadblock's placement on an SMM whose usage counters
// already include it, returning the swap delay its warps must pay before
// executing: SpillCyclesPerKB per KB of register/shared state beyond the
// physical capacity attributable to this threadblock.
func (c *Coordinator) admit(m *SMM, spec LaunchSpec, warps int) sim.Time {
	cfg := m.dev.Cfg
	regs := spec.RegsPerThread * warps * cfg.ThreadsPerWarp
	bytes := 4*overflow(m.usedRegs, cfg.RegsPerSMM, regs) +
		overflow(m.usedShared, cfg.SharedPerSMM, spec.SharedPerTB)
	if bytes == 0 {
		return 0
	}
	c.SpilledTBs++
	c.SpillBytes += bytes
	d := sim.Time(c.ov.SpillCyclesPerKB * float64(bytes) / 1024)
	c.SpillCycles += float64(d)
	return d
}

// overflow returns how much of a newcomer's demand `take` lies beyond the
// physical capacity `phys`, given post-placement usage `used`.
func overflow(used, phys, take int) int {
	over := used - phys
	if over <= 0 {
		return 0
	}
	if over > take {
		over = take
	}
	return over
}
