package gpu

import "repro/internal/sim"

// Barrier is a reusable rendezvous for a fixed number of warps, modelling
// both __syncthreads() (one barrier per threadblock) and PTX named barriers
// (bar.sync with an ID, as used by Pagoda's syncBlock()). Reuse across
// generations is safe: a generation counter prevents a fast warp from racing
// through two phases while a slow one is still waking.
type Barrier struct {
	eng     *sim.Engine
	need    int
	arrived int
	gen     uint64
	sig     sim.Signal
}

// NewBarrier creates a barrier for `need` participating warps.
func NewBarrier(eng *sim.Engine, need int) *Barrier {
	if need <= 0 {
		panic("gpu: barrier needs at least one participant")
	}
	return &Barrier{eng: eng, need: need}
}

// Reset changes the participant count. Only legal while no warp is waiting
// (Pagoda recycles the 16 named-barrier IDs between tasks).
func (b *Barrier) Reset(need int) {
	if b.arrived != 0 || b.sig.Waiting() != 0 {
		panic("gpu: Reset on a barrier in use")
	}
	if need <= 0 {
		panic("gpu: barrier needs at least one participant")
	}
	b.need = need
}

// Need returns the participant count.
func (b *Barrier) Need() int { return b.need }

// Arrive blocks p until all participants of the current generation arrive.
func (b *Barrier) Arrive(p *sim.Proc) {
	b.arrived++
	if b.arrived == b.need {
		b.arrived = 0
		b.gen++
		b.sig.Broadcast()
		return
	}
	gen := b.gen
	for b.gen == gen {
		b.sig.Wait(p)
	}
}

// AtomicSite serializes atomic operations targeting one memory location (or
// one contended line, e.g. a queue head pointer). Each operation occupies the
// site for `service` cycles; concurrent requests queue FIFO, which is exactly
// the contention the paper attributes to single-queue task schedulers.
type AtomicSite struct {
	eng     *sim.Engine
	service sim.Time
	busy    bool
	queue   sim.Signal
	// Ops counts completed operations (diagnostics).
	Ops int
}

// NewAtomicSite creates a site with the given per-operation service time.
func NewAtomicSite(eng *sim.Engine, service sim.Time) *AtomicSite {
	return &AtomicSite{eng: eng, service: service}
}

// Do performs one atomic operation, blocking p for queueing plus service
// time.
func (s *AtomicSite) Do(p *sim.Proc) {
	for s.busy {
		s.queue.Wait(p)
	}
	s.busy = true
	p.Sleep(s.service)
	s.busy = false
	s.Ops++
	s.queue.Pulse()
}
