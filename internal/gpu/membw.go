package gpu

import (
	"math"

	"repro/internal/sim"
)

// bwResource models device-memory bandwidth: n concurrent transfers share
// `rate` bytes per cycle equally, with no per-flow cap (unlike the issue
// engine's psResource, a single access may consume the full bandwidth).
type bwResource struct {
	eng  *sim.Engine
	rate float64 // bytes per cycle
	// reqs holds in-flight transfers by value; completion compacts in place
	// and reuses the backing array, so steady-state Acquire never allocates.
	reqs  []bwReq
	last  sim.Time
	timer *sim.Timer

	// bytesIntegral accumulates delivered bytes (metrics).
	bytesIntegral float64
}

type bwReq struct {
	remaining float64
	proc      *sim.Proc
}

func newBWResource(eng *sim.Engine, rate float64) *bwResource {
	r := &bwResource{eng: eng, rate: rate, last: eng.Now()}
	r.timer = sim.NewTimer(eng, r.onTimer)
	return r
}

func (r *bwResource) perFlow() float64 {
	if len(r.reqs) == 0 {
		return 0
	}
	return r.rate / float64(len(r.reqs))
}

func (r *bwResource) settle() {
	now := r.eng.Now()
	dt := now - r.last
	if dt > 0 && len(r.reqs) > 0 {
		pf := r.perFlow()
		for i := range r.reqs {
			r.reqs[i].remaining -= dt * pf
		}
		r.bytesIntegral += dt * r.rate
	}
	r.last = now
}

func (r *bwResource) rearm() {
	if len(r.reqs) == 0 {
		r.timer.Stop()
		return
	}
	minRem := math.Inf(1)
	for i := range r.reqs {
		if r.reqs[i].remaining < minRem {
			minRem = r.reqs[i].remaining
		}
	}
	if minRem < 0 {
		minRem = 0
	}
	d := minRem / r.perFlow()
	if now := r.eng.Now(); now+d == now {
		// Far into a run the clock's float64 ulp exceeds tiny residual
		// delays: the timer would re-fire at the same instant forever
		// (settle sees dt=0 and drains nothing). Fire at the next
		// representable instant instead; one step's drain exceeds the
		// residue, so the flow completes there.
		r.timer.ResetAt(math.Nextafter(now, math.Inf(1)))
		return
	}
	r.timer.Reset(d)
}

func (r *bwResource) onTimer() {
	r.settle()
	kept := r.reqs[:0]
	for i := range r.reqs {
		if r.reqs[i].remaining <= 1e-6 {
			r.reqs[i].proc.Wakeup()
		} else {
			kept = append(kept, r.reqs[i])
		}
	}
	r.reqs = kept
	r.rearm()
}

// Acquire blocks p until `bytes` of bandwidth have been delivered.
func (r *bwResource) Acquire(p *sim.Proc, bytes int) {
	if bytes <= 0 {
		return
	}
	r.settle()
	r.reqs = append(r.reqs, bwReq{remaining: float64(bytes), proc: p})
	r.rearm()
	p.Block()
}

// InFlight returns the number of transfers currently sharing the bandwidth.
func (r *bwResource) InFlight() int { return len(r.reqs) }
