package gpu

import (
	"testing"

	"repro/internal/sim"
)

// runWarpOp times a single-warp kernel body on a 1-SMM device.
func runWarpOp(fn func(c *Ctx)) sim.Time {
	eng := sim.New()
	cfg := TitanX()
	cfg.NumSMMs = 1
	dev := NewDevice(eng, cfg)
	dev.Launch(LaunchSpec{Name: "op", GridDim: 1, BlockThreads: 32, Fn: fn})
	return eng.Run()
}

func TestGlobalReadCost(t *testing.T) {
	cfg := TitanX()
	// One coalesced 128-byte read: 1 issue cycle + bandwidth share + global
	// latency.
	got := runWarpOp(func(c *Ctx) { c.GlobalRead(128) })
	want := 1 + 128/cfg.MemBandwidth + cfg.GlobalLatency
	approx(t, got, want, 1e-6, "GlobalRead(128)")
	// 1024 bytes = 8 transactions.
	got = runWarpOp(func(c *Ctx) { c.GlobalRead(1024) })
	approx(t, got, 8+1024/cfg.MemBandwidth+cfg.GlobalLatency, 1e-6, "GlobalRead(1024)")
}

func TestMemBandwidthShared(t *testing.T) {
	// Two SMMs streaming concurrently share the device bandwidth: twice the
	// data takes roughly twice as long as one warp's worth, not the same.
	run := func(warps int) sim.Time {
		eng := sim.New()
		cfg := TitanX()
		cfg.NumSMMs = 2
		dev := NewDevice(eng, cfg)
		dev.Launch(LaunchSpec{
			Name: "stream", GridDim: warps, BlockThreads: 32,
			Fn: func(c *Ctx) {
				for i := 0; i < 20; i++ {
					c.GlobalRead(1 << 17) // 128 KB per op: bandwidth-dominated
				}
			},
		})
		return eng.Run()
	}
	one, eight := run(1), run(8)
	// The aggregate can never beat the bandwidth floor: total bytes / rate.
	floor := float64(8*20*(1<<17)) / TitanX().MemBandwidth
	if eight < floor {
		t.Fatalf("8 streaming warps finished in %v, below the bandwidth floor %v", eight, floor)
	}
	if eight < one*2 {
		t.Fatalf("bandwidth not shared: 1 warp %v, 8 warps %v", one, eight)
	}
}

func TestGlobalWriteCheaperThanRead(t *testing.T) {
	r := runWarpOp(func(c *Ctx) { c.GlobalRead(128) })
	w := runWarpOp(func(c *Ctx) { c.GlobalWrite(128) })
	if w >= r {
		t.Fatalf("write (%v) should retire faster than read (%v)", w, r)
	}
}

func TestSharedFasterThanGlobal(t *testing.T) {
	g := runWarpOp(func(c *Ctx) { c.GlobalRead(128) })
	s := runWarpOp(func(c *Ctx) { c.SharedRead(128) })
	if s >= g/3 {
		t.Fatalf("shared read (%v) not much faster than global (%v)", s, g)
	}
}

func TestFenceCosts(t *testing.T) {
	dev := runWarpOp(func(c *Ctx) { c.Threadfence() })
	blk := runWarpOp(func(c *Ctx) { c.ThreadfenceBlock() })
	if blk >= dev {
		t.Fatalf("block fence (%v) should be cheaper than device fence (%v)", blk, dev)
	}
}

func TestWarpVoteCheap(t *testing.T) {
	v := runWarpOp(func(c *Ctx) { c.WarpVoteAll() })
	if v > 5 {
		t.Fatalf("warp vote cost %v, want a couple of cycles", v)
	}
}

func TestCtxGeometry(t *testing.T) {
	eng := sim.New()
	cfg := TitanX()
	cfg.NumSMMs = 1
	dev := NewDevice(eng, cfg)
	type rec struct{ block, warp, base, lanes int }
	var recs []rec
	dev.Launch(LaunchSpec{
		Name: "geom", GridDim: 2, BlockThreads: 96, // 3 warps per block
		Fn: func(c *Ctx) {
			recs = append(recs, rec{c.BlockIdx, c.WarpInBlock, c.LaneBase(), c.ActiveLanes()})
		},
	})
	eng.Run()
	if len(recs) != 6 {
		t.Fatalf("ran %d warps, want 6", len(recs))
	}
	for _, r := range recs {
		wantBase := r.block*96 + r.warp*32
		if r.base != wantBase {
			t.Errorf("block %d warp %d: LaneBase = %d, want %d", r.block, r.warp, r.base, wantBase)
		}
		if r.lanes != 32 {
			t.Errorf("full warp has %d active lanes", r.lanes)
		}
	}
}

func TestTidBaseOffset(t *testing.T) {
	eng := sim.New()
	cfg := TitanX()
	cfg.NumSMMs = 1
	dev := NewDevice(eng, cfg)
	var tids []int
	dev.Launch(LaunchSpec{
		Name: "tidbase", GridDim: 1, BlockThreads: 32,
		Fn: func(c *Ctx) {
			c.TidBase = 1000
			c.ForEachLane(func(tid int) { tids = append(tids, tid) })
		},
	})
	eng.Run()
	if tids[0] != 1000 || tids[31] != 1031 {
		t.Fatalf("tids = [%d..%d], want [1000..1031]", tids[0], tids[31])
	}
}

func TestSleepConsumesNoIssue(t *testing.T) {
	eng := sim.New()
	cfg := TitanX()
	cfg.NumSMMs = 1
	dev := NewDevice(eng, cfg)
	dev.Launch(LaunchSpec{
		Name: "sleep", GridDim: 1, BlockThreads: 32,
		Fn: func(c *Ctx) { c.Sleep(1000) },
	})
	eng.Run()
	m := dev.Metrics()
	if m.IssueUtil > 0.001 {
		t.Fatalf("Sleep consumed issue bandwidth: util=%v", m.IssueUtil)
	}
}

func BenchmarkKernelLaunchExec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		cfg := TitanX()
		cfg.NumSMMs = 4
		dev := NewDevice(eng, cfg)
		dev.Launch(LaunchSpec{
			Name: "bench", GridDim: 64, BlockThreads: 128,
			Fn: func(c *Ctx) {
				for j := 0; j < 10; j++ {
					c.GlobalRead(512)
					c.Compute(200)
				}
			},
		})
		eng.Run()
	}
}

func BenchmarkPSResource(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		r := newPSResource(eng, 4)
		for w := 0; w < 64; w++ {
			eng.Spawn("w", func(p *sim.Proc) {
				for k := 0; k < 20; k++ {
					r.Acquire(p, 100)
					p.Sleep(50)
				}
			})
		}
		eng.Run()
	}
}
