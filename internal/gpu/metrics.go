package gpu

import "repro/internal/sim"

// Metrics is a point-in-time snapshot of device utilization since device
// creation (or the last ResetMetrics).
type Metrics struct {
	Elapsed       sim.Time // cycles covered by this snapshot
	IssueUtil     float64  // fraction of issue slots busy, device-wide
	AvgOccupancy  float64  // mean resident warps / total warp capacity
	AvgReadyWarps float64  // mean warps contending for issue, device-wide
	ResidentWarps int      // instantaneous resident warps
}

// Metrics gathers a utilization snapshot across all SMMs.
func (d *Device) Metrics() Metrics {
	now := d.Eng.Now()
	elapsed := now - d.createdAt
	m := Metrics{Elapsed: elapsed}
	if elapsed <= 0 {
		return m
	}
	var busy, queue, warpInt float64
	for _, s := range d.SMMs {
		s.issue.Poke()
		s.settleWarps()
		busy += s.issue.BusyIntegral()
		queue += s.issue.QueueIntegral()
		warpInt += s.warpIntegral
		m.ResidentWarps += s.residentWarps
	}
	totalIssue := d.Cfg.IssueWidth * elapsed * float64(d.Cfg.NumSMMs)
	m.IssueUtil = busy / totalIssue
	m.AvgReadyWarps = queue / (elapsed * float64(d.Cfg.NumSMMs))
	m.AvgOccupancy = warpInt / (elapsed * float64(d.Cfg.TotalWarps()))
	return m
}

// ResetMetrics restarts the utilization accounting window at the current
// time.
func (d *Device) ResetMetrics() {
	now := d.Eng.Now()
	d.createdAt = now
	for _, s := range d.SMMs {
		s.issue.Poke()
		s.issue.busyIntegral = 0
		s.issue.queueIntegral = 0
		s.settleWarps()
		s.warpIntegral = 0
	}
}
