package gpu

// Occupancy holds the static occupancy analysis for a launch spec — the
// arithmetic of §2 of the paper.
type Occupancy struct {
	TBsPerSMM   int     // resident threadblocks per SMM
	WarpsPerSMM int     // resident warps per SMM
	Fraction    float64 // resident warps / physical max warps; may exceed 1 under virtualization
	LimitedBy   string  // which resource capped the threadblock count
}

// occCaps are the per-SMM capacities an occupancy computation (and the
// threadblock dispatcher) admits against. TheoreticalOccupancy uses the
// physical capacities; VirtualOccupancy scales them by the Oversub factors.
type occCaps struct {
	tbs     int // threadblock slots
	threads int // resident thread slots
	warps   int // warp contexts
	shared  int // shared-memory bytes
	regs    int // 32-bit registers
}

func physCaps(cfg Config) occCaps {
	return occCaps{
		tbs:     cfg.MaxTBsPerSMM,
		threads: cfg.MaxResidentThreads(),
		warps:   cfg.WarpsPerSMM,
		shared:  cfg.SharedPerSMM,
		regs:    cfg.RegsPerSMM,
	}
}

// invalidOccupancy is the answer for degenerate configs or specs (zero-thread
// blocks, zero-warp geometries): no residency, no NaNs, no panics.
func invalidOccupancy() Occupancy { return Occupancy{LimitedBy: "invalid spec"} }

// occupancyAgainst applies the CUDA occupancy rules — threadblock slots,
// thread slots, shared memory and registers — against the given capacities.
func occupancyAgainst(cfg Config, spec LaunchSpec, caps occCaps) Occupancy {
	if spec.BlockThreads <= 0 || cfg.ThreadsPerWarp <= 0 || cfg.WarpsPerSMM <= 0 || caps.warps <= 0 {
		return invalidOccupancy()
	}
	warpsPerTB := spec.WarpsPerTB(cfg)
	regsPerTB := spec.RegsPerThread * warpsPerTB * cfg.ThreadsPerWarp
	if regsPerTB == 0 {
		regsPerTB = 32 * warpsPerTB * cfg.ThreadsPerWarp
	}
	if regsPerTB <= 0 {
		return invalidOccupancy()
	}

	limit := caps.tbs
	by := "threadblock slots"
	if l := caps.threads / spec.BlockThreads; l < limit {
		limit, by = l, "thread slots"
	}
	if spec.SharedPerTB > 0 {
		if l := caps.shared / spec.SharedPerTB; l < limit {
			limit, by = l, "shared memory"
		}
	}
	if l := caps.regs / regsPerTB; l < limit {
		limit, by = l, "registers"
	}
	if limit < 0 {
		limit = 0
	}
	warps := limit * warpsPerTB
	if warps > caps.warps {
		warps = caps.warps
	}
	return Occupancy{
		TBsPerSMM:   limit,
		WarpsPerSMM: warps,
		Fraction:    float64(warps) / float64(cfg.WarpsPerSMM),
		LimitedBy:   by,
	}
}

// TheoreticalOccupancy computes how many threadblocks of the given spec fit
// on one SMM and the resulting occupancy fraction, applying the CUDA
// occupancy rules: threadblock slots, thread slots, shared memory and
// registers. Degenerate inputs (zero-thread blocks, zero-warp geometries)
// return a zero Occupancy with LimitedBy "invalid spec".
func TheoreticalOccupancy(cfg Config, spec LaunchSpec) Occupancy {
	return occupancyAgainst(cfg, spec, physCaps(cfg))
}

// NarrowTaskOccupancy reproduces the motivating §2 computation: the device
// occupancy when `concurrent` narrow tasks of `threads` threads each run at
// once (e.g. 1 task of 256 threads = 0.52%, 32 tasks = 16.67% on the Titan
// X). Degenerate inputs return 0.
func NarrowTaskOccupancy(cfg Config, threads, concurrent int) float64 {
	if threads <= 0 || concurrent <= 0 || cfg.ThreadsPerWarp <= 0 || cfg.TotalWarps() <= 0 {
		return 0
	}
	warpsPerTask := (threads + cfg.ThreadsPerWarp - 1) / cfg.ThreadsPerWarp
	resident := warpsPerTask * concurrent
	max := cfg.TotalWarps()
	if resident > max {
		resident = max
	}
	return float64(resident) / float64(max)
}
