package gpu

// Occupancy holds the static occupancy analysis for a launch spec — the
// arithmetic of §2 of the paper.
type Occupancy struct {
	TBsPerSMM   int     // resident threadblocks per SMM
	WarpsPerSMM int     // resident warps per SMM
	Fraction    float64 // resident warps / max warps, in [0,1]
	LimitedBy   string  // which resource capped the threadblock count
}

// TheoreticalOccupancy computes how many threadblocks of the given spec fit
// on one SMM and the resulting occupancy fraction, applying the CUDA
// occupancy rules: threadblock slots, thread slots, shared memory and
// registers.
func TheoreticalOccupancy(cfg Config, spec LaunchSpec) Occupancy {
	warpsPerTB := spec.WarpsPerTB(cfg)
	regsPerTB := spec.RegsPerThread * warpsPerTB * cfg.ThreadsPerWarp
	if regsPerTB == 0 {
		regsPerTB = 32 * warpsPerTB * cfg.ThreadsPerWarp
	}

	limit := cfg.MaxTBsPerSMM
	by := "threadblock slots"
	if l := cfg.MaxResidentThreads() / spec.BlockThreads; l < limit {
		limit, by = l, "thread slots"
	}
	if spec.SharedPerTB > 0 {
		if l := cfg.SharedPerSMM / spec.SharedPerTB; l < limit {
			limit, by = l, "shared memory"
		}
	}
	if l := cfg.RegsPerSMM / regsPerTB; l < limit {
		limit, by = l, "registers"
	}
	if limit < 0 {
		limit = 0
	}
	warps := limit * warpsPerTB
	if warps > cfg.WarpsPerSMM {
		warps = cfg.WarpsPerSMM
	}
	return Occupancy{
		TBsPerSMM:   limit,
		WarpsPerSMM: warps,
		Fraction:    float64(warps) / float64(cfg.WarpsPerSMM),
		LimitedBy:   by,
	}
}

// NarrowTaskOccupancy reproduces the motivating §2 computation: the device
// occupancy when `concurrent` narrow tasks of `threads` threads each run at
// once (e.g. 1 task of 256 threads = 0.52%, 32 tasks = 16.67% on the Titan
// X).
func NarrowTaskOccupancy(cfg Config, threads, concurrent int) float64 {
	warpsPerTask := (threads + cfg.ThreadsPerWarp - 1) / cfg.ThreadsPerWarp
	resident := warpsPerTask * concurrent
	max := cfg.TotalWarps()
	if resident > max {
		resident = max
	}
	return float64(resident) / float64(max)
}
