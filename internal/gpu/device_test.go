package gpu

import (
	"testing"

	"repro/internal/sim"
)

func testCfg() Config {
	cfg := TitanX()
	cfg.NumSMMs = 2 // small device keeps dispatch arithmetic visible
	return cfg
}

func TestKernelRunsAllWarps(t *testing.T) {
	eng := sim.New()
	dev := NewDevice(eng, testCfg())
	var lanes []int
	k := dev.Launch(LaunchSpec{
		Name: "count", GridDim: 3, BlockThreads: 64,
		Fn: func(c *Ctx) {
			c.Compute(10)
			c.ForEachLane(func(tid int) { lanes = append(lanes, tid) })
		},
	})
	eng.Run()
	if !k.Finished() {
		t.Fatal("kernel did not finish")
	}
	if len(lanes) != 3*64 {
		t.Fatalf("saw %d lane executions, want %d", len(lanes), 3*64)
	}
	seen := map[int]bool{}
	for _, tid := range lanes {
		if tid < 0 || tid >= 192 || seen[tid] {
			t.Fatalf("bad or duplicate tid %d", tid)
		}
		seen[tid] = true
	}
}

func TestPartialWarp(t *testing.T) {
	eng := sim.New()
	dev := NewDevice(eng, testCfg())
	var count int
	dev.Launch(LaunchSpec{
		Name: "partial", GridDim: 1, BlockThreads: 40, // 2 warps: 32 + 8 lanes
		Fn: func(c *Ctx) {
			c.ForEachLane(func(int) { count++ })
		},
	})
	eng.Run()
	if count != 40 {
		t.Fatalf("active lanes = %d, want 40", count)
	}
}

func TestThreadLimitBlocksDispatch(t *testing.T) {
	cfg := testCfg()
	cfg.NumSMMs = 1
	eng := sim.New()
	dev := NewDevice(eng, cfg)
	// Each TB = 1024 threads; 1 SMM holds 2 (2048 threads). Launch 3.
	var running, maxRunning int
	dev.Launch(LaunchSpec{
		Name: "big", GridDim: 3, BlockThreads: 1024,
		Fn: func(c *Ctx) {
			if c.WarpInBlock == 0 {
				running++
				if running > maxRunning {
					maxRunning = running
				}
			}
			c.Compute(100)
			if c.WarpInBlock == 0 {
				running--
			}
		},
	})
	eng.Run()
	if maxRunning != 2 {
		t.Fatalf("max concurrent TBs = %d, want 2 (2048-thread SMM limit)", maxRunning)
	}
}

func TestTBSlotLimit(t *testing.T) {
	cfg := testCfg()
	cfg.NumSMMs = 1
	eng := sim.New()
	dev := NewDevice(eng, cfg)
	// 64 tiny TBs of 32 threads: only 32 TBs may be resident per SMM even
	// though threads (64*32=2048) would fit.
	var resident, maxResident int
	dev.Launch(LaunchSpec{
		Name: "tiny", GridDim: 64, BlockThreads: 32,
		Fn: func(c *Ctx) {
			resident++
			if resident > maxResident {
				maxResident = resident
			}
			c.Compute(50)
			resident--
		},
	})
	eng.Run()
	if maxResident != 32 {
		t.Fatalf("max resident TBs = %d, want 32", maxResident)
	}
}

func TestSharedMemLimit(t *testing.T) {
	cfg := testCfg()
	cfg.NumSMMs = 1
	eng := sim.New()
	dev := NewDevice(eng, cfg)
	// 48KB shared per TB on a 96KB SMM: two resident at a time.
	var resident, maxResident int
	dev.Launch(LaunchSpec{
		Name: "smem", GridDim: 5, BlockThreads: 32, SharedPerTB: 48 * 1024,
		Fn: func(c *Ctx) {
			resident++
			if resident > maxResident {
				maxResident = resident
			}
			c.Compute(10)
			resident--
		},
	})
	eng.Run()
	if maxResident != 2 {
		t.Fatalf("max resident TBs = %d, want 2 (shared-memory limit)", maxResident)
	}
}

func TestRegisterLimit(t *testing.T) {
	cfg := testCfg()
	cfg.NumSMMs = 1
	eng := sim.New()
	dev := NewDevice(eng, cfg)
	// 255 regs * 256 threads = 65280 regs per TB; 64K regs/SMM => 1 resident.
	var resident, maxResident int
	dev.Launch(LaunchSpec{
		Name: "regs", GridDim: 3, BlockThreads: 256, RegsPerThread: 255,
		Fn: func(c *Ctx) {
			if c.WarpInBlock == 0 {
				resident++
				if resident > maxResident {
					maxResident = resident
				}
			}
			c.Compute(10)
			if c.WarpInBlock == 0 {
				resident--
			}
		},
	})
	eng.Run()
	if maxResident != 1 {
		t.Fatalf("max resident TBs = %d, want 1 (register limit)", maxResident)
	}
}

func TestSyncBlock(t *testing.T) {
	eng := sim.New()
	dev := NewDevice(eng, testCfg())
	// 4 warps; warp w computes 10*(w+1) cycles then syncs. After the barrier
	// every warp must observe phase counters from all warps.
	const warps = 4
	phase1 := 0
	errs := 0
	dev.Launch(LaunchSpec{
		Name: "sync", GridDim: 1, BlockThreads: warps * 32,
		Fn: func(c *Ctx) {
			c.Compute(float64(10 * (c.WarpInBlock + 1)))
			phase1++
			c.SyncBlock()
			if phase1 != warps {
				errs++
			}
		},
	})
	eng.Run()
	if errs != 0 {
		t.Fatalf("%d warps crossed the barrier before all arrived", errs)
	}
}

func TestSyncBlockSingleWarpNoop(t *testing.T) {
	eng := sim.New()
	dev := NewDevice(eng, testCfg())
	dev.Launch(LaunchSpec{
		Name: "single", GridDim: 1, BlockThreads: 32,
		Fn: func(c *Ctx) { c.SyncBlock() }, // must not panic or hang
	})
	eng.Run()
}

func TestLatencyHiding(t *testing.T) {
	// The same total work with 1 warp vs 16 warps: many warps overlap global
	// latency, so total time shrinks dramatically. This is the core
	// underutilization mechanism the paper targets.
	run := func(warps int) sim.Time {
		eng := sim.New()
		cfg := testCfg()
		cfg.NumSMMs = 1
		dev := NewDevice(eng, cfg)
		dev.Launch(LaunchSpec{
			Name: "mem", GridDim: warps, BlockThreads: 32,
			Fn: func(c *Ctx) {
				for i := 0; i < 50; i++ {
					c.GlobalRead(128)
					c.Compute(20)
				}
			},
		})
		return eng.Run()
	}
	t1 := run(1)
	t16 := run(16)
	// 16x the work; if latency were not hidden it would take 16x as long.
	if t16 > t1*4 {
		t.Fatalf("no latency hiding: 1 warp %v, 16 warps %v", t1, t16)
	}
}

func TestKernelWaitDoneAndOnDone(t *testing.T) {
	eng := sim.New()
	dev := NewDevice(eng, testCfg())
	k := dev.Launch(LaunchSpec{
		Name: "k", GridDim: 1, BlockThreads: 32,
		Fn: func(c *Ctx) { c.Compute(500) },
	})
	var cbTime, waitTime sim.Time
	k.OnDone(func() { cbTime = eng.Now() })
	eng.Spawn("waiter", func(p *sim.Proc) {
		k.WaitDone(p)
		waitTime = eng.Now()
	})
	eng.Run()
	if cbTime != 500 || waitTime != 500 {
		t.Fatalf("cb=%v wait=%v, want 500", cbTime, waitTime)
	}
	// OnDone after completion fires immediately.
	fired := false
	k.OnDone(func() { fired = true })
	if !fired {
		t.Fatal("OnDone on finished kernel did not fire")
	}
}

func TestMetricsOccupancy(t *testing.T) {
	cfg := testCfg()
	cfg.NumSMMs = 1
	eng := sim.New()
	dev := NewDevice(eng, cfg)
	// 32 warps resident for the whole run on a 64-warp SMM => ~50% occupancy.
	dev.Launch(LaunchSpec{
		Name: "occ", GridDim: 1, BlockThreads: 1024,
		Fn: func(c *Ctx) { c.Compute(1000) },
	})
	eng.Run()
	m := dev.Metrics()
	if m.AvgOccupancy < 0.45 || m.AvgOccupancy > 0.55 {
		t.Fatalf("AvgOccupancy = %v, want ~0.5", m.AvgOccupancy)
	}
	if m.ResidentWarps != 0 {
		t.Errorf("ResidentWarps = %d after completion, want 0", m.ResidentWarps)
	}
}

func TestLaunchValidation(t *testing.T) {
	eng := sim.New()
	dev := NewDevice(eng, testCfg())
	for _, spec := range []LaunchSpec{
		{Name: "zero-grid", GridDim: 0, BlockThreads: 32},
		{Name: "fat-block", GridDim: 1, BlockThreads: 2048},
		{Name: "fat-smem", GridDim: 1, BlockThreads: 32, SharedPerTB: 64 * 1024},
	} {
		spec := spec
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("launch %q did not panic", spec.Name)
				}
			}()
			spec.Fn = func(*Ctx) {}
			dev.Launch(spec)
		}()
	}
}

func TestDispatchBalancesAcrossSMMs(t *testing.T) {
	cfg := testCfg() // 2 SMMs
	eng := sim.New()
	dev := NewDevice(eng, cfg)
	smms := map[int]int{}
	dev.Launch(LaunchSpec{
		Name: "bal", GridDim: 8, BlockThreads: 256,
		Fn: func(c *Ctx) {
			if c.WarpInBlock == 0 {
				smms[c.SMM().ID]++
			}
			c.Compute(100)
		},
	})
	eng.Run()
	if smms[0] != 4 || smms[1] != 4 {
		t.Fatalf("TB distribution = %v, want 4 per SMM", smms)
	}
}

func TestResetMetrics(t *testing.T) {
	eng := sim.New()
	cfg := testCfg()
	cfg.NumSMMs = 1
	dev := NewDevice(eng, cfg)
	dev.Launch(LaunchSpec{Name: "m1", GridDim: 1, BlockThreads: 1024,
		Fn: func(c *Ctx) { c.Compute(1000) }})
	eng.Run()
	if m := dev.Metrics(); m.AvgOccupancy < 0.4 {
		t.Fatalf("pre-reset occupancy %v", m.AvgOccupancy)
	}
	dev.ResetMetrics()
	// An idle window after reset: occupancy and utilization drop to zero.
	eng.Schedule(5000, func() {})
	eng.Run()
	m := dev.Metrics()
	if m.AvgOccupancy != 0 || m.IssueUtil != 0 {
		t.Fatalf("post-reset metrics not clean: %+v", m)
	}
	if m.Elapsed != 5000 {
		t.Fatalf("post-reset window = %v, want 5000", m.Elapsed)
	}
}
