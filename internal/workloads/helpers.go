package workloads

import (
	"fmt"
	"math"
)

// pickThreads selects a task's thread count. Regular runs use the requested
// (or default) count; irregular runs (§6.3) size the thread count to the
// task's work, clamped to the paper's 32..256 range and rounded to warps —
// "the runtime schemes of Pagoda/CUDA-HyperQ allow for dynamic thread count
// selection, based on the size of the irregular task".
func (o Options) pickThreads(def, units, baseUnits int) int {
	if !o.Irregular {
		return o.threads(def)
	}
	t := def
	if baseUnits > 0 {
		t = int(float64(def) * float64(units) / float64(baseUnits))
	}
	t = (t + 31) / 32 * 32
	if t < 32 {
		t = 32
	}
	if t > 256 {
		t = 256
	}
	return t
}

// irregularThreads draws a thread count independent of size (used by
// benchmarks whose irregularity is computational, not size-based).
func (o Options) irregularThreads(rng *xorshift, def int) int {
	if !o.Irregular {
		return o.threads(def)
	}
	return 32 << uint(rng.intn(4)) // 32, 64, 128, 256
}

func approxEqual32(name string, got, want []float32, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		d := math.Abs(float64(got[i] - want[i]))
		scale := math.Max(1, math.Abs(float64(want[i])))
		if d/scale > tol {
			return fmt.Errorf("%s: element %d: got %v, want %v", name, i, got[i], want[i])
		}
	}
	return nil
}

func approxEqual64(name string, got, want []float64, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		d := math.Abs(got[i] - want[i])
		scale := math.Max(1, math.Abs(want[i]))
		if d/scale > tol {
			return fmt.Errorf("%s: element %d: got %v, want %v", name, i, got[i], want[i])
		}
	}
	return nil
}

func equalU64(name string, got, want []uint64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s: word %d: got %#x, want %#x", name, i, got[i], want[i])
		}
	}
	return nil
}

func equalInts(name string, got, want []int) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s: element %d: got %d, want %d", name, i, got[i], want[i])
		}
	}
	return nil
}
