package workloads

// Image convolution (CONV): 5x5 stencil over a dim x dim float32 image, one
// image per task ("Convolution filters are used in blur and edge detection
// mechanisms; each filter operation represents a task", Table 4). Default
// input 128x128 per Table 3.

// conv5x5Kernel is a normalized blur stencil.
var conv5x5Kernel = func() [25]float32 {
	var k [25]float32
	weights := [5]float32{1, 4, 6, 4, 1}
	var sum float32
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			k[y*5+x] = weights[y] * weights[x]
			sum += k[y*5+x]
		}
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}()

// convRef computes the reference convolution with clamped borders.
func convRef(in []float32, dim int) []float32 {
	out := make([]float32, dim*dim)
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v >= dim {
			return dim - 1
		}
		return v
	}
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			var acc float32
			for ky := -2; ky <= 2; ky++ {
				for kx := -2; kx <= 2; kx++ {
					acc += in[clamp(y+ky)*dim+clamp(x+kx)] * conv5x5Kernel[(ky+2)*5+(kx+2)]
				}
			}
			out[y*dim+x] = acc
		}
	}
	return out
}

// convPixel computes one output pixel (shared by device and CPU paths).
func convPixel(in []float32, dim, idx int) float32 {
	y, x := idx/dim, idx%dim
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v >= dim {
			return dim - 1
		}
		return v
	}
	var acc float32
	for ky := -2; ky <= 2; ky++ {
		for kx := -2; kx <= 2; kx++ {
			acc += in[clamp(y+ky)*dim+clamp(x+kx)] * conv5x5Kernel[(ky+2)*5+(kx+2)]
		}
	}
	return acc
}

// Convolution returns the CONV benchmark.
func Convolution() Benchmark {
	return Benchmark{
		Name:           "CONV",
		Full:           "Image Convolution (CUDA SDK)",
		DefaultThreads: 128,
		DefaultTasks:   32 * 1024,
		Make:           makeConv,
	}
}

func makeConv(opt Options) []TaskDef {
	rng := newRand(opt.Seed)
	threads := opt.threads(128)
	tasks := make([]TaskDef, opt.Tasks)
	for i := range tasks {
		dim := 128
		if opt.InputSize > 0 {
			dim = opt.InputSize
		}
		if opt.Irregular {
			dim = 1 << uint(rng.rangeInt(5, 8)) // 32..256 per side
		}
		pixels := dim * dim

		var in, out, want []float32
		if opt.Verify {
			in = make([]float32, pixels)
			out = make([]float32, pixels)
			for p := range in {
				in[p] = float32(rng.float01())
			}
			want = convRef(in, dim)
		}

		t := TaskDef{
			Name:      "CONV",
			Threads:   opt.pickThreads(threads, pixels, 128*128),
			Blocks:    1,
			ArgBytes:  48,
			Regs:      25,
			InBytes:   pixels * 4,
			OutBytes:  pixels * 4,
			CPUCycles: float64(pixels) * convCPUCyclesPerPixel,
		}
		t.Kernel = func(c DeviceCtx) {
			if in != nil {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, pixels, tid)
					for p := lo; p < hi; p++ {
						out[p] = convPixel(in, dim, p)
					}
				})
			}
			chargeWarp(c, pixels, convCyclesPerPixel, pixels*4, pixels*4, 4)
		}
		if opt.Verify {
			t.CPURun = func() {
				for p := 0; p < pixels; p++ {
					out[p] = convPixel(in, dim, p)
				}
			}
			t.Check = func() error {
				return approxEqual32("CONV", out, want, 1e-4)
			}
		}
		tasks[i] = t
	}
	return tasks
}
