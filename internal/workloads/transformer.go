package workloads

import "math"

// ML inference microkernels (not part of the paper's Table 3): a
// transformer-layer task (XFMR) and a GEMM-chain MLP task (GEMM), the
// narrow-task shapes of production ML serving ("Analyzing Machine Learning
// Workloads Using a Detailed GPU Simulator", arXiv 1811.08933). One task is
// one request's worth of inference — a single layer over a short token
// sequence — so a serving experiment can offer millions of them per second
// against tenant SLOs. Cost charging follows the costs.go methodology: the
// GEMM stages share MM's per-MAC price, softmax pays a per-element
// transcendental price, and every stage streams its operands through
// chargeWarp at segmentCycles granularity.

// xfmrDModel is the model width d; xfmrFFN the feed-forward hidden width.
// Table-style defaults: d=64, ffn=4d, seq=16 tokens per request.
const (
	xfmrDModel = 64
	xfmrFFN    = 4 * xfmrDModel
	xfmrSeq    = 16
)

// gemmRow computes out = x[row]·W + nothing, for row-major x (·×k), W (k×n).
func gemmRow(x []float32, w []float32, row, k, n int, out []float32) {
	for j := 0; j < n; j++ {
		var acc float32
		for p := 0; p < k; p++ {
			acc += x[row*k+p] * w[p*n+j]
		}
		out[row*n+j] = acc
	}
}

// softmaxRow normalizes s[row*n : row*n+n] in place with the max-subtract
// stabilization every inference kernel uses.
func softmaxRow(s []float32, row, n int) {
	base := row * n
	max := s[base]
	for j := 1; j < n; j++ {
		if s[base+j] > max {
			max = s[base+j]
		}
	}
	var sum float32
	for j := 0; j < n; j++ {
		e := float32(math.Exp(float64(s[base+j] - max)))
		s[base+j] = e
		sum += e
	}
	for j := 0; j < n; j++ {
		s[base+j] /= sum
	}
}

// reluRows applies max(0, x) to rows [lo, hi) of a row-major s×n matrix.
func reluRows(x []float32, lo, hi, n int) {
	for i := lo * n; i < hi*n; i++ {
		if x[i] < 0 {
			x[i] = 0
		}
	}
}

// xfmrRef runs one single-head transformer layer on the host: attention
// (Q/K/V projections, scaled dot-product scores, softmax, context, output
// projection) followed by the two-matmul feed-forward block with ReLU.
func xfmrRef(x, wq, wk, wv, wo, w1, w2 []float32, s, d, f int) []float32 {
	q := make([]float32, s*d)
	k := make([]float32, s*d)
	v := make([]float32, s*d)
	for i := 0; i < s; i++ {
		gemmRow(x, wq, i, d, d, q)
		gemmRow(x, wk, i, d, d, k)
		gemmRow(x, wv, i, d, d, v)
	}
	scale := float32(1 / math.Sqrt(float64(d)))
	att := make([]float32, s*s)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			var acc float32
			for p := 0; p < d; p++ {
				acc += q[i*d+p] * k[j*d+p]
			}
			att[i*s+j] = acc * scale
		}
		softmaxRow(att, i, s)
	}
	ctx := make([]float32, s*d)
	for i := 0; i < s; i++ {
		gemmRow(att, v, i, s, d, ctx)
	}
	out := make([]float32, s*d)
	for i := 0; i < s; i++ {
		gemmRow(ctx, wo, i, d, d, out)
	}
	hid := make([]float32, s*f)
	for i := 0; i < s; i++ {
		gemmRow(out, w1, i, d, f, hid)
	}
	reluRows(hid, 0, s, f)
	ffn := make([]float32, s*d)
	for i := 0; i < s; i++ {
		gemmRow(hid, w2, i, f, d, ffn)
	}
	return ffn
}

// xfmrMACs returns the layer's multiply-add count: Q/K/V projections,
// scores, context, output projection and the two FFN matmuls.
func xfmrMACs(s, d, f int) int {
	return 3*s*d*d + s*s*d + s*s*d + s*d*d + 2*s*d*f
}

// randMat fills an n-element float32 slice with values in (-scale, scale).
func randMat(rng *xorshift, n int, scale float64) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = float32((rng.float01()*2 - 1) * scale)
	}
	return m
}

// TransformerLayer returns the XFMR benchmark: one single-head transformer
// layer per task over a short token sequence.
func TransformerLayer() Benchmark {
	return Benchmark{
		Name:           "XFMR",
		Full:           "Transformer layer inference (attention + softmax + FFN)",
		DefaultThreads: 128,
		DefaultTasks:   32 * 1024,
		NeedsSync:      true,
		Make:           makeXFMR,
	}
}

func makeXFMR(opt Options) []TaskDef {
	rng := newRand(opt.Seed)
	threads := opt.threads(128)
	d, f := xfmrDModel, xfmrFFN
	tasks := make([]TaskDef, opt.Tasks)
	for i := range tasks {
		s := xfmrSeq
		if opt.InputSize > 0 {
			s = opt.InputSize
		}
		if opt.Irregular {
			s = 8 << uint(rng.rangeInt(0, 2)) // 8..32 tokens per request
		}
		macs := xfmrMACs(s, d, f)

		var x, wq, wk, wv, wo, w1, w2, out, want []float32
		if opt.Verify {
			scale := 1 / math.Sqrt(float64(d))
			x = randMat(rng, s*d, 1)
			wq = randMat(rng, d*d, scale)
			wk = randMat(rng, d*d, scale)
			wv = randMat(rng, d*d, scale)
			wo = randMat(rng, d*d, scale)
			w1 = randMat(rng, d*f, scale)
			w2 = randMat(rng, f*d, scale)
			out = make([]float32, s*d)
			want = xfmrRef(x, wq, wk, wv, wo, w1, w2, s, d, f)
		}

		t := TaskDef{
			Name:      "XFMR",
			Threads:   opt.pickThreads(threads, s*d, xfmrSeq*d),
			Blocks:    1,
			Sync:      true,
			ArgBytes:  72,
			Regs:      32,
			InBytes:   s * d * 4, // per-request activations; weights are resident
			OutBytes:  s * d * 4,
			CPUCycles: float64(macs)*xfmrCPUCyclesPerMAC + float64(s*s)*softmaxCPUCyclesPerElem,
		}
		t.Kernel = func(c DeviceCtx) {
			verify := x != nil
			var q, k, v, att, ctx, o, hid []float32
			if verify {
				q = make([]float32, s*d)
				k = make([]float32, s*d)
				v = make([]float32, s*d)
				att = make([]float32, s*s)
				ctx = make([]float32, s*d)
				o = make([]float32, s*d)
				hid = make([]float32, s*f)
			}
			// Q/K/V projections: read the request activations plus the three
			// resident projection matrices.
			if verify {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, s, tid)
					for i := lo; i < hi; i++ {
						gemmRow(x, wq, i, d, d, q)
						gemmRow(x, wk, i, d, d, k)
						gemmRow(x, wv, i, d, d, v)
					}
				})
			}
			chargeWarp(c, 3*s*d*d, xfmrCyclesPerMAC, s*d*4+3*d*d*4, 3*s*d*4, 2)
			c.SyncBlock()
			// Scaled dot-product scores + softmax, one row per token.
			if verify {
				scale := float32(1 / math.Sqrt(float64(d)))
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, s, tid)
					for i := lo; i < hi; i++ {
						for j := 0; j < s; j++ {
							var acc float32
							for p := 0; p < d; p++ {
								acc += q[i*d+p] * k[j*d+p]
							}
							att[i*s+j] = acc * scale
						}
						softmaxRow(att, i, s)
					}
				})
			}
			chargeWarp(c, s*s*d, xfmrCyclesPerMAC, 2*s*d*4, s*s*4, 1)
			chargeWarp(c, s*s, softmaxCyclesPerElem, s*s*4, s*s*4, 1)
			c.SyncBlock()
			// Context and output projection.
			if verify {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, s, tid)
					for i := lo; i < hi; i++ {
						gemmRow(att, v, i, s, d, ctx)
						gemmRow(ctx, wo, i, d, d, o)
					}
				})
			}
			chargeWarp(c, s*s*d+s*d*d, xfmrCyclesPerMAC, s*s*4+s*d*4+d*d*4, s*d*4, 1)
			c.SyncBlock()
			// Feed-forward block: two matmuls through the resident FFN
			// weights with ReLU between — the chain's heavy half.
			if verify {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, s, tid)
					for i := lo; i < hi; i++ {
						gemmRow(o, w1, i, d, f, hid)
					}
					reluRows(hid, lo, hi, f)
				})
				c.SyncBlock()
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, s, tid)
					for i := lo; i < hi; i++ {
						gemmRow(hid, w2, i, f, d, out)
					}
				})
			} else {
				c.SyncBlock()
			}
			chargeWarp(c, 2*s*d*f, xfmrCyclesPerMAC, 2*d*f*4+s*d*4, s*d*4, 2)
			c.SyncBlock()
		}
		if opt.Verify {
			t.CPURun = func() { copy(out, xfmrRef(x, wq, wk, wv, wo, w1, w2, s, d, f)) }
			t.Check = func() error { return approxEqual32("XFMR", out, want, 1e-2) }
		}
		tasks[i] = t
	}
	return tasks
}

// gemmChainDims are the MLP chain's layer widths: a batch of token rows
// passes 64 -> 128 -> 128 -> 64 with ReLU between layers.
var gemmChainDims = [4]int{64, 128, 128, 64}

// gemmChainRef runs the host reference: out = relu(relu(x·W0)·W1)·W2.
func gemmChainRef(x []float32, ws [3][]float32, m int) []float32 {
	cur := x
	for l := 0; l < 3; l++ {
		k, n := gemmChainDims[l], gemmChainDims[l+1]
		next := make([]float32, m*n)
		for i := 0; i < m; i++ {
			gemmRow(cur, ws[l], i, k, n, next)
		}
		if l < 2 {
			reluRows(next, 0, m, n)
		}
		cur = next
	}
	return cur
}

// gemmChainMACs returns the chain's multiply-add count for an m-row batch.
func gemmChainMACs(m int) int {
	macs := 0
	for l := 0; l < 3; l++ {
		macs += m * gemmChainDims[l] * gemmChainDims[l+1]
	}
	return macs
}

// GEMMChain returns the GEMM benchmark: a three-layer MLP inference chain
// per task (small GEMMs back to back, the non-attention half of ML serving).
func GEMMChain() Benchmark {
	return Benchmark{
		Name:           "GEMM",
		Full:           "GEMM-chain MLP inference (3 layers, ReLU)",
		DefaultThreads: 128,
		DefaultTasks:   32 * 1024,
		NeedsSync:      true,
		Make:           makeGEMMChain,
	}
}

func makeGEMMChain(opt Options) []TaskDef {
	rng := newRand(opt.Seed)
	threads := opt.threads(128)
	tasks := make([]TaskDef, opt.Tasks)
	for i := range tasks {
		m := xfmrSeq // batch rows per request
		if opt.InputSize > 0 {
			m = opt.InputSize
		}
		if opt.Irregular {
			m = 8 << uint(rng.rangeInt(0, 2)) // 8..32 rows
		}
		macs := gemmChainMACs(m)

		var x []float32
		var ws [3][]float32
		var out, want []float32
		if opt.Verify {
			x = randMat(rng, m*gemmChainDims[0], 1)
			for l := 0; l < 3; l++ {
				ws[l] = randMat(rng, gemmChainDims[l]*gemmChainDims[l+1], 1/math.Sqrt(float64(gemmChainDims[l])))
			}
			out = make([]float32, m*gemmChainDims[3])
			want = gemmChainRef(x, ws, m)
		}

		t := TaskDef{
			Name:      "GEMM",
			Threads:   opt.pickThreads(threads, m*gemmChainDims[0], xfmrSeq*gemmChainDims[0]),
			Blocks:    1,
			Sync:      true,
			ArgBytes:  48,
			Regs:      30,
			InBytes:   m * gemmChainDims[0] * 4,
			OutBytes:  m * gemmChainDims[3] * 4,
			CPUCycles: float64(macs) * xfmrCPUCyclesPerMAC,
		}
		t.Kernel = func(c DeviceCtx) {
			verify := x != nil
			var acts [4][]float32
			if verify {
				acts[0] = x
				for l := 1; l < 4; l++ {
					acts[l] = make([]float32, m*gemmChainDims[l])
				}
			}
			for l := 0; l < 3; l++ {
				k, n := gemmChainDims[l], gemmChainDims[l+1]
				if verify {
					l := l
					c.ForEachLane(func(tid int) {
						lo, hi := laneUnits(c, m, tid)
						for i := lo; i < hi; i++ {
							gemmRow(acts[l], ws[l], i, k, n, acts[l+1])
						}
						if l < 2 {
							reluRows(acts[l+1], lo, hi, n)
						}
					})
				}
				chargeWarp(c, m*k*n, xfmrCyclesPerMAC, m*k*4+k*n*4, m*n*4, 1)
				c.SyncBlock()
			}
			if verify {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, m, tid)
					copy(out[lo*gemmChainDims[3]:hi*gemmChainDims[3]], acts[3][lo*gemmChainDims[3]:hi*gemmChainDims[3]])
				})
			}
		}
		if opt.Verify {
			t.CPURun = func() { copy(out, gemmChainRef(x, ws, m)) }
			t.Check = func() error { return approxEqual32("GEMM", out, want, 1e-2) }
		}
		tasks[i] = t
	}
	return tasks
}
