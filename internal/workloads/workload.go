// Package workloads implements the eight benchmarks of the Pagoda paper
// (Table 3/4): Mandelbrot (MB), FilterBank (FB), BeamFormer (BF), Image
// Convolution (CONV), DCT8x8 (DCT), MatrixMul (MM), Sparse LU Decomposition
// (SLUD) and 3DES, plus the Multi-Programmed Environment (MPE) mix.
//
// Each benchmark produces a stream of narrow tasks. Kernels are written
// against the scheduler-neutral DeviceCtx interface so the same kernel code
// runs under Pagoda, CUDA-HyperQ, GeMTC and static fusion. Kernels do two
// things:
//
//   - charge simulated cycles/bytes through the DeviceCtx cost ops, scaled by
//     the task's input size and thread count ("the amount of work per task
//     remains constant in all thread configurations", Fig. 7); and
//   - optionally perform the real computation on Go slices (Options.Verify),
//     validated against the host reference implementations in tests.
package workloads

import "fmt"

// DeviceCtx is the device-side API a task kernel needs. core.TaskCtx
// satisfies it directly; the baseline executors provide adapters.
type DeviceCtx interface {
	// Geometry.
	Threads() int     // threads per threadblock
	Blocks() int      // threadblocks in the task
	BlockIdx() int    // this warp's threadblock
	WarpInBlock() int // warp index within the threadblock
	ForEachLane(fn func(tid int))

	// Cost charging.
	Compute(cycles float64)
	GlobalRead(bytes int)
	GlobalWrite(bytes int)
	SharedRead(bytes int)
	SharedWrite(bytes int)

	// CUDA functionality.
	SyncBlock()
	HasShared() bool
	Shared() []byte

	Args() any
}

// TaskDef is one narrow task instance.
type TaskDef struct {
	Name   string
	Kernel func(DeviceCtx)

	Threads   int // threads per threadblock
	Blocks    int
	SharedMem int // bytes per threadblock
	Sync      bool
	ArgBytes  int
	// Regs is the kernel's register count per thread (Table 3's "Default
	// Register Count"); baselines launch with it, while Pagoda caps all task
	// kernels at 32 via -maxrregcount.
	Regs int

	InBytes  int // host->device input copy for this task
	OutBytes int // device->host output copy

	// CPUCycles is the task's cost on one CPU core (PThreads baseline).
	CPUCycles float64
	// CPURun optionally performs the real computation for the CPU baseline.
	CPURun func()
	// Check verifies results after the run (Options.Verify only).
	Check func() error
}

// Options parameterizes task-set generation.
type Options struct {
	Tasks   int
	Threads int // threads per threadblock (0 = benchmark default)
	// Verify enables real computation and Check functions. Timing-only runs
	// (Verify=false) charge identical simulated costs.
	Verify bool
	// Irregular draws input sizes pseudo-randomly (the §6.3 experiment);
	// otherwise every task gets the Table 3 input size.
	Irregular bool
	// UseShared selects the shared-memory kernel variants (DCT, MM).
	UseShared bool
	// InputSize overrides the Table 3 per-task input edge length (Fig. 8
	// sweeps 16..256 for MM and CONV). 0 keeps the default.
	InputSize int
	Seed      int64
}

func (o Options) threads(def int) int {
	if o.Threads > 0 {
		return o.Threads
	}
	return def
}

// Benchmark describes one paper workload.
type Benchmark struct {
	Name           string // Table 3 abbreviation
	Full           string
	DefaultThreads int
	SupportsShared bool // "May benefit from Shared Memory"
	NeedsSync      bool // "Requires threadblock synchronization"
	Irregular      bool // irregular task type per Table 3
	DefaultTasks   int
	Make           func(opt Options) []TaskDef
}

// All returns the eight Table 3 benchmarks in paper order.
func All() []Benchmark {
	return []Benchmark{
		Mandelbrot(),
		FilterBank(),
		BeamFormer(),
		Convolution(),
		DCT8x8(),
		MatrixMul(),
		SparseLU(),
		TripleDESBench(),
	}
}

// ML returns the ML inference microkernels (transformer layer and GEMM
// chain). They are listed separately from All() — which stays the paper's
// Table 3 set — and are reachable through ByName like every other benchmark.
func ML() []Benchmark {
	return []Benchmark{
		TransformerLayer(),
		GEMMChain(),
	}
}

// ByName looks a benchmark up by its Table 3 abbreviation (MB, FB, BF, CONV,
// DCT, MM, SLUD, 3DES), MPE, or an ML microkernel name (XFMR, GEMM).
func ByName(name string) (Benchmark, error) {
	if name == "MPE" {
		return MPEBench(), nil
	}
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	for _, b := range ML() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// xorshift is a tiny deterministic PRNG for input-size draws; math/rand would
// work too, but this keeps task generation identical across Go versions.
type xorshift uint64

func newRand(seed int64) *xorshift {
	x := xorshift(uint64(seed)*2685821657736338717 + 0x9E3779B97F4A7C15)
	if x == 0 {
		x = 0x2545F4914F6CDD1D
	}
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// intn returns a deterministic value in [0, n).
func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// rangeInt returns a value in [lo, hi].
func (x *xorshift) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + x.intn(hi-lo+1)
}

// float01 returns a float in [0,1).
func (x *xorshift) float01() float64 { return float64(x.next()>>11) / (1 << 53) }

// ceilDiv is a small helper shared by the kernels.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
