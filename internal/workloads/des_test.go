package workloads

import (
	"testing"
	"testing/quick"
)

func TestDESClassicVector(t *testing.T) {
	// The canonical worked example (used in countless DES walkthroughs):
	// key 133457799BBCDFF1, plaintext 0123456789ABCDEF.
	got := DESEncryptBlock(0x0123456789ABCDEF, 0x133457799BBCDFF1)
	if got != 0x85E813540F0AB405 {
		t.Fatalf("DES encrypt = %#016x, want 85E813540F0AB405", got)
	}
}

func TestDESFIPSVectors(t *testing.T) {
	// Vectors from the NBS/NIST validation suite.
	cases := []struct{ key, pt, ct uint64 }{
		{0x0101010101010101, 0x8000000000000000, 0x95F8A5E5DD31D900},
		{0x0101010101010101, 0x4000000000000000, 0xDD7F121CA5015619},
		{0x0101010101010101, 0x2000000000000000, 0x2E8653104F3834EA},
		{0x8001010101010101, 0x0000000000000000, 0x95A8D72813DAA94D},
		{0x7CA110454A1A6E57, 0x01A1D6D039776742, 0x690F5B0D9A26939B},
		{0x0131D9619DC1376E, 0x5CD54CA83DEF57DA, 0x7A389D10354BD271},
	}
	for _, c := range cases {
		if got := DESEncryptBlock(c.pt, c.key); got != c.ct {
			t.Errorf("E(%#x, key %#x) = %#x, want %#x", c.pt, c.key, got, c.ct)
		}
		if got := DESDecryptBlock(c.ct, c.key); got != c.pt {
			t.Errorf("D(%#x, key %#x) = %#x, want %#x", c.ct, c.key, got, c.pt)
		}
	}
}

func TestDESRoundTripProperty(t *testing.T) {
	check := func(block, key uint64) bool {
		return DESDecryptBlock(DESEncryptBlock(block, key), key) == block
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTripleDESDegeneratesToDES(t *testing.T) {
	// With K1 = K2 = K3, EDE3 equals single DES.
	key := uint64(0x0123456789ABCDEF)
	td := NewTripleDES(key, key, key)
	pt := uint64(0x4E6F772069732074)
	if td.EncryptBlock(pt) != DESEncryptBlock(pt, key) {
		t.Fatal("EDE3 with equal keys != single DES")
	}
}

func TestTripleDESKnownVector(t *testing.T) {
	// NIST SP 800-20 style 3-key vector: keys of example TDEA publications.
	td := NewTripleDES(0x0123456789ABCDEF, 0x23456789ABCDEF01, 0x456789ABCDEF0123)
	pt := uint64(0x5468652071756663) // "The qufc"
	ct := td.EncryptBlock(pt)
	if td.DecryptBlock(ct) != pt {
		t.Fatal("EDE3 round trip failed")
	}
	if ct == pt {
		t.Fatal("ciphertext equals plaintext")
	}
}

func TestTripleDESRoundTripProperty(t *testing.T) {
	td := NewTripleDES(0x0123456789ABCDEF, 0xFEDCBA9876543210, 0x89ABCDEF01234567)
	check := func(b uint64) bool { return td.DecryptBlock(td.EncryptBlock(b)) == b }
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketEncryptDecrypt(t *testing.T) {
	td := NewTripleDES(1, 2, 3)
	rng := newRand(7)
	pkt := make([]uint64, 256)
	orig := make([]uint64, 256)
	for i := range pkt {
		pkt[i] = rng.next()
		orig[i] = pkt[i]
	}
	td.EncryptPacket(pkt)
	same := 0
	for i := range pkt {
		if pkt[i] == orig[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d blocks unchanged by encryption", same)
	}
	td.DecryptPacket(pkt)
	if err := equalU64("packet", pkt, orig); err != nil {
		t.Fatal(err)
	}
}

func TestDESKeyScheduleShape(t *testing.T) {
	ks := DESKeySchedule(0x133457799BBCDFF1)
	for r, k := range ks {
		if k >= 1<<48 {
			t.Fatalf("round key %d exceeds 48 bits: %#x", r, k)
		}
	}
	// First round key from the classic walkthrough: 000110110000001011101111111111000111000001110010b.
	if ks[0] != 0x1B02EFFC7072 {
		t.Fatalf("K1 = %#x, want 0x1B02EFFC7072", ks[0])
	}
}

func TestNetbenchPacketDistribution(t *testing.T) {
	rng := newRand(42)
	sizes := map[int]int{}
	for i := 0; i < 10000; i++ {
		b := netbenchPacketBytes(rng)
		if b < 2048 || b > 65536 {
			t.Fatalf("packet size %d outside the paper's 2K-64K range", b)
		}
		if b%8 != 0 {
			t.Fatalf("packet size %d not 8-byte aligned", b)
		}
		sizes[b]++
	}
	if len(sizes) < 5 {
		t.Fatalf("packet sizes not varied: %v", sizes)
	}
}
