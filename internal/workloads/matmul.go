package workloads

// MatrixMul (MM): small dense matrix multiplications, one per task,
// "refactored from the NVIDIA SDK samples ... to simulate the behaviour seen
// in an earthquake engineering simulator" (Table 4). Table 3: 64x64 matrices,
// benefits from shared memory, requires threadblock synchronization.

// mmRef computes C = A x B for n x n float32 matrices.
func mmRef(a, b []float32, n int) []float32 {
	c := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			av := a[i*n+k]
			if av == 0 {
				continue
			}
			row := b[k*n:]
			out := c[i*n:]
			for j := 0; j < n; j++ {
				out[j] += av * row[j]
			}
		}
	}
	return c
}

// MatrixMul returns the MM benchmark.
func MatrixMul() Benchmark {
	return Benchmark{
		Name:           "MM",
		Full:           "MatrixMul (CUDA SDK)",
		DefaultThreads: 256,
		DefaultTasks:   32 * 1024,
		SupportsShared: true,
		NeedsSync:      true,
		Make:           makeMM,
	}
}

func makeMM(opt Options) []TaskDef {
	rng := newRand(opt.Seed)
	threads := opt.threads(256)
	tasks := make([]TaskDef, opt.Tasks)
	for i := range tasks {
		n := 64
		if opt.InputSize > 0 {
			n = opt.InputSize
		}
		if opt.Irregular {
			n = 8 << uint(rng.rangeInt(2, 5)) // 32..256
		}
		elems := n * n

		var a, b, out, want []float32
		if opt.Verify {
			a = make([]float32, elems)
			b = make([]float32, elems)
			out = make([]float32, elems)
			for p := 0; p < elems; p++ {
				a[p] = float32(rng.float01()*2 - 1)
				b[p] = float32(rng.float01()*2 - 1)
			}
			want = mmRef(a, b, n)
		}

		sharedMem := 0
		if opt.UseShared {
			// Two 16x16 float tiles, as in the SDK kernel.
			sharedMem = 2 * 16 * 16 * 4
		}

		t := TaskDef{
			Name:      "MM",
			Threads:   opt.pickThreads(threads, elems, 64*64),
			Blocks:    1,
			SharedMem: sharedMem,
			Sync:      true,
			ArgBytes:  56,
			Regs:      30,
			InBytes:   2 * elems * 4,
			OutBytes:  elems * 4,
			CPUCycles: float64(elems) * float64(n) * mmCPUCyclesPerMAC,
		}
		useShared := opt.UseShared
		t.Kernel = func(c DeviceCtx) {
			if a != nil {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, elems, tid)
					for p := lo; p < hi; p++ {
						i, j := p/n, p%n
						var acc float32
						for k := 0; k < n; k++ {
							acc += a[i*n+k] * b[k*n+j]
						}
						out[p] = acc
					}
				})
			}
			macs := elems * n
			if useShared && c.HasShared() {
				// Tiled multiply: each input element is read from global
				// memory n/16 times instead of n times.
				tiles := ceilDiv(n, 16)
				for t := 0; t < tiles; t++ {
					c.SharedWrite(2 * 16 * 16 * 4)
					c.SyncBlock()
					chargeWarp(c, macs/tiles, mmCyclesPerMAC, 2*elems*4/tiles/4, 0, 1)
					c.SharedRead(2 * 16 * 16 * 4)
					c.SyncBlock()
				}
				c.GlobalWrite(elems * 4 / (ceilDiv(c.Threads(), 32) * c.Blocks()))
			} else {
				// Naive: every k-step re-streams operand rows from global
				// memory with little reuse — the cache catches ~8 of every n
				// passes over the inputs. This redundant traffic (and its
				// issue cost) is exactly what the tiled variant eliminates.
				passes := n / 8
				if passes < 1 {
					passes = 1
				}
				chargeWarp(c, macs, mmCyclesPerMAC, 2*elems*4*passes, elems*4, 6)
				c.SyncBlock()
			}
		}
		if opt.Verify {
			t.CPURun = func() { copy(out, mmRef(a, b, n)) }
			t.Check = func() error { return approxEqual32("MM", out, want, 1e-2) }
		}
		tasks[i] = t
	}
	return tasks
}
