package workloads

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/sim"
)

func TestMLBenchmarksListed(t *testing.T) {
	names := []string{"XFMR", "GEMM"}
	ml := ML()
	if len(ml) != len(names) {
		t.Fatalf("ML() returned %d benchmarks, want %d", len(ml), len(names))
	}
	for i, b := range ml {
		if b.Name != names[i] {
			t.Errorf("ML()[%d] = %s, want %s", i, b.Name, names[i])
		}
		if _, err := ByName(b.Name); err != nil {
			t.Errorf("ByName(%s): %v", b.Name, err)
		}
	}
	// All() stays the Table 3 set: the ML kernels must not leak into it.
	for _, b := range All() {
		for _, name := range names {
			if b.Name == name {
				t.Errorf("ML benchmark %s leaked into All()", name)
			}
		}
	}
}

func TestSoftmaxRowNormalizes(t *testing.T) {
	s := []float32{1, 2, 3, 4, 1000, 1001, 1002, 1003}
	softmaxRow(s, 0, 4)
	softmaxRow(s, 1, 4) // large magnitudes: max-subtract must not overflow
	for row := 0; row < 2; row++ {
		var sum float64
		for j := 0; j < 4; j++ {
			v := float64(s[row*4+j])
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("softmax row %d element %d = %v", row, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("softmax row %d sums to %v, want 1", row, sum)
		}
		// Monotone inputs give monotone probabilities.
		for j := 1; j < 4; j++ {
			if s[row*4+j] <= s[row*4+j-1] {
				t.Fatalf("softmax row %d not monotone at %d", row, j)
			}
		}
	}
}

func TestXfmrRefUniformAttention(t *testing.T) {
	// With zero Q/K projections the attention scores are all zero, softmax
	// becomes uniform, and the context is the mean of the V rows — an exact
	// closed form for the attention half of the reference.
	s, d, f := 4, 8, 16
	x := make([]float32, s*d)
	rng := newRand(9)
	for i := range x {
		x[i] = float32(rng.float01()*2 - 1)
	}
	zero := make([]float32, d*d)
	id := make([]float32, d*d)
	for i := 0; i < d; i++ {
		id[i*d+i] = 1
	}
	// wv = wo = identity, w1 picks the first d columns, w2 its transpose:
	// the FFN halves cancel for non-negative inputs.
	w1 := make([]float32, d*f)
	w2 := make([]float32, f*d)
	for i := 0; i < d; i++ {
		w1[i*f+i] = 1
		w2[i*d+i] = 1
	}
	got := xfmrRef(x, zero, zero, id, id, w1, w2, s, d, f)
	mean := make([]float32, d)
	for j := 0; j < d; j++ {
		var acc float32
		for i := 0; i < s; i++ {
			acc += x[i*d+j]
		}
		mean[j] = acc / float32(s)
	}
	for i := 0; i < s; i++ {
		for j := 0; j < d; j++ {
			want := mean[j]
			if want < 0 {
				want = 0 // the identity FFN keeps only the ReLU-positive part
			}
			if math.Abs(float64(got[i*d+j]-want)) > 1e-5 {
				t.Fatalf("row %d col %d: got %v, want %v", i, j, got[i*d+j], want)
			}
		}
	}
}

func TestGemmChainRefIdentity(t *testing.T) {
	// Identity-embedded weights pass non-negative inputs through unchanged.
	m := 4
	x := make([]float32, m*gemmChainDims[0])
	rng := newRand(3)
	for i := range x {
		x[i] = float32(rng.float01()) // non-negative: ReLU transparent
	}
	var ws [3][]float32
	for l := 0; l < 3; l++ {
		k, n := gemmChainDims[l], gemmChainDims[l+1]
		ws[l] = make([]float32, k*n)
		for i := 0; i < k && i < n; i++ {
			ws[l][i*n+i] = 1
		}
	}
	got := gemmChainRef(x, ws, m)
	for i := 0; i < m; i++ {
		for j := 0; j < gemmChainDims[3]; j++ {
			if math.Abs(float64(got[i*gemmChainDims[3]+j]-x[i*gemmChainDims[0]+j])) > 1e-6 {
				t.Fatalf("chain altered element (%d,%d)", i, j)
			}
		}
	}
}

// TestMLVerifyModeThroughPagoda runs both ML benchmarks end-to-end through
// the real Pagoda runtime in verify mode, like TestVerifyModeThroughPagoda
// does for the Table 3 set: scheduler, barriers and the staged row-parallel
// kernels all in one.
func TestMLVerifyModeThroughPagoda(t *testing.T) {
	for _, b := range ML() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			eng := sim.New()
			gcfg := gpu.TitanX()
			gcfg.NumSMMs = 2
			dev := gpu.NewDevice(eng, gcfg)
			bus := pcie.New(eng, pcie.Default())
			ctx := cuda.NewContext(eng, dev, bus, cuda.DefaultConfig())
			rt := core.NewRuntime(ctx, core.DefaultConfig())

			tasks := b.Make(Options{Tasks: 8, Verify: true, Seed: 3})
			eng.Spawn("host", func(p *sim.Proc) {
				for i := range tasks {
					td := tasks[i]
					rt.TaskSpawn(p, core.TaskSpec{
						Threads:   td.Threads,
						Blocks:    td.Blocks,
						SharedMem: td.SharedMem,
						Sync:      td.Sync,
						ArgBytes:  td.ArgBytes,
						Kernel:    func(tc *core.TaskCtx) { td.Kernel(tc) },
					})
				}
				rt.WaitAll(p)
				rt.Shutdown(p)
			})
			eng.Run()

			for i, td := range tasks {
				if td.Check == nil {
					t.Fatalf("task %d has no Check in verify mode", i)
				}
				if err := td.Check(); err != nil {
					t.Fatalf("task %d: %v", i, err)
				}
			}
		})
	}
}

func TestMLCPURunMatchesCheck(t *testing.T) {
	for _, b := range ML() {
		for i, td := range b.Make(Options{Tasks: 4, Verify: true, Seed: 5}) {
			if td.CPURun == nil {
				t.Fatalf("%s task %d has no CPURun in verify mode", b.Name, i)
			}
			td.CPURun()
			if err := td.Check(); err != nil {
				t.Errorf("%s task %d: %v", b.Name, i, err)
			}
		}
	}
}

func TestMLGenerationProperties(t *testing.T) {
	for _, b := range ML() {
		tasks := b.Make(Options{Tasks: 16, Seed: 1})
		if len(tasks) != 16 {
			t.Fatalf("%s: Make produced %d tasks, want 16", b.Name, len(tasks))
		}
		for i, td := range tasks {
			if td.Kernel == nil || td.CPUCycles <= 0 || td.InBytes <= 0 || td.OutBytes <= 0 {
				t.Errorf("%s task %d is malformed: %+v", b.Name, i, td)
			}
			if !td.Sync {
				t.Errorf("%s task %d must require barriers (staged kernel)", b.Name, i)
			}
		}
		// Irregular mode varies request sizes.
		irr := b.Make(Options{Tasks: 64, Irregular: true, Seed: 9})
		sizes := map[int]bool{}
		for _, td := range irr {
			sizes[td.InBytes] = true
		}
		if len(sizes) < 2 {
			t.Errorf("%s: irregular mode produced only %d distinct input sizes", b.Name, len(sizes))
		}
		// Deterministic generation.
		a := b.Make(Options{Tasks: 10, Irregular: true, Seed: 77})
		c := b.Make(Options{Tasks: 10, Irregular: true, Seed: 77})
		for i := range a {
			if a[i].InBytes != c[i].InBytes || a[i].Threads != c[i].Threads || a[i].CPUCycles != c[i].CPUCycles {
				t.Errorf("%s: task %d differs across identical seeds", b.Name, i)
			}
		}
	}
}
