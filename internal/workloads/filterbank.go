package workloads

// FilterBank (FB): the StreamIt filter bank of Fig. 1c — convolve the input
// with H, down-sample, up-sample, convolve with F. "Multiple radios generate
// signals, processing each of them represents a task." Table 3: signals of
// width 2K, requires threadblock synchronization (between the pipeline
// stages).

const fbDownFactor = 4

// fbStage computes out[i] = sum_k in[i-k] * taps[k] (causal FIR, zero-padded
// history), the paper's "if ((tid-k) > 0) Vect_H[tid] += r[tid-k]*H[k]".
func fbStage(in, taps []float32, out []float32) {
	for i := range out {
		var acc float32
		for k := 0; k < len(taps); k++ {
			if i-k >= 0 {
				acc += in[i-k] * taps[k]
			}
		}
		out[i] = acc
	}
}

// fbRef runs the full pipeline on one signal.
func fbRef(sig, h, f []float32) []float32 {
	n := len(sig)
	vh := make([]float32, n)
	fbStage(sig, h, vh)
	// Down-sample then up-sample with zero stuffing.
	vu := make([]float32, n)
	for i := 0; i < n; i += fbDownFactor {
		vu[i] = vh[i]
	}
	out := make([]float32, n)
	fbStage(vu, f, out)
	return out
}

// FilterBank returns the FB benchmark.
func FilterBank() Benchmark {
	return Benchmark{
		Name:           "FB",
		Full:           "FilterBank (StreamIt)",
		DefaultThreads: 256,
		DefaultTasks:   32 * 1024,
		NeedsSync:      true,
		Make:           makeFB,
	}
}

func makeFB(opt Options) []TaskDef {
	rng := newRand(opt.Seed)
	threads := opt.threads(256)
	tasks := make([]TaskDef, opt.Tasks)

	// The filter taps are shared across all radios.
	h := make([]float32, fbTaps)
	f := make([]float32, fbTaps)
	for k := range h {
		h[k] = float32(rng.float01()*2 - 1)
		f[k] = float32(rng.float01()*2 - 1)
	}

	for i := range tasks {
		width := 2048
		if opt.InputSize > 0 {
			width = opt.InputSize
		}
		if opt.Irregular {
			width = 256 << uint(rng.rangeInt(1, 4)) // 512..4096
		}

		var sig, out, want, vh, vu []float32
		if opt.Verify {
			sig = make([]float32, width)
			for p := range sig {
				sig[p] = float32(rng.float01()*2 - 1)
			}
			out = make([]float32, width)
			// Stage intermediates are task-scoped: warps exchange them
			// across the syncBlock barriers.
			vh = make([]float32, width)
			vu = make([]float32, width)
			want = fbRef(sig, h, f)
		}

		// Work: two FIR stages of width*taps MACs plus the resampling pass.
		units := 2*width*fbTaps + width

		t := TaskDef{
			Name:      "FB",
			Threads:   opt.pickThreads(threads, width, 2048),
			Blocks:    1,
			Sync:      true,
			ArgBytes:  64,
			Regs:      21,
			InBytes:   width * 4,
			OutBytes:  width * 4,
			CPUCycles: float64(units) * fbCPUCyclesPerTap,
		}
		t.Kernel = func(c DeviceCtx) {
			// Stage 1: convolve H.
			if sig != nil {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, width, tid)
					for p := lo; p < hi; p++ {
						var acc float32
						for k := 0; k < fbTaps; k++ {
							if p-k >= 0 {
								acc += sig[p-k] * h[k]
							}
						}
						vh[p] = acc
					}
				})
			}
			chargeWarp(c, width*fbTaps, fbCyclesPerTap, width*4, 0, 2)
			c.SyncBlock()
			// Stage 2: down/up sample.
			if sig != nil {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, width, tid)
					for p := lo; p < hi; p++ {
						if p%fbDownFactor == 0 {
							vu[p] = vh[p]
						}
					}
				})
			}
			chargeWarp(c, width, 1.0, 0, 0, 1)
			c.SyncBlock()
			// Stage 3: convolve F.
			if sig != nil {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, width, tid)
					for p := lo; p < hi; p++ {
						var acc float32
						for k := 0; k < fbTaps; k++ {
							if p-k >= 0 {
								acc += vu[p-k] * f[k]
							}
						}
						out[p] = acc
					}
				})
			}
			chargeWarp(c, width*fbTaps, fbCyclesPerTap, 0, width*4, 2)
		}
		if opt.Verify {
			t.CPURun = func() { copy(out, fbRef(sig, h, f)) }
			t.Check = func() error { return approxEqual32("FB", out, want, 1e-3) }
		}
		tasks[i] = t
	}
	return tasks
}
