package workloads

import "math"

// DCT8x8 (DCT): the CUDA SDK 8x8 discrete cosine transform applied to every
// 8x8 block of a dim x dim image; one image per task ("online surveillance
// systems gather image streams from multiple cameras ... processing each
// image represents a narrow task"). Table 3: 128x128 images, benefits from
// shared memory, requires threadblock synchronization.

// dctCoeff is the 8x8 DCT-II coefficient matrix C (out = C * X * C^T).
var dctCoeff = func() [64]float32 {
	var c [64]float32
	for k := 0; k < 8; k++ {
		a := math.Sqrt(0.25)
		if k == 0 {
			a = math.Sqrt(0.125)
		}
		for n := 0; n < 8; n++ {
			c[k*8+n] = float32(a * math.Cos(math.Pi*float64(2*n+1)*float64(k)/16))
		}
	}
	return c
}()

// dct8x8Block transforms one 8x8 block: out = C * X * C^T.
func dct8x8Block(in []float32, stride int, out []float32) {
	var tmp [64]float32
	// tmp = C * X
	for k := 0; k < 8; k++ {
		for x := 0; x < 8; x++ {
			var acc float32
			for n := 0; n < 8; n++ {
				acc += dctCoeff[k*8+n] * in[n*stride+x]
			}
			tmp[k*8+x] = acc
		}
	}
	// out = tmp * C^T
	for k := 0; k < 8; k++ {
		for l := 0; l < 8; l++ {
			var acc float32
			for x := 0; x < 8; x++ {
				acc += tmp[k*8+x] * dctCoeff[l*8+x]
			}
			out[k*8+l] = acc
		}
	}
}

// dctRef transforms every 8x8 block of a dim x dim image.
func dctRef(in []float32, dim int) []float32 {
	out := make([]float32, dim*dim)
	var block [64]float32
	for by := 0; by < dim; by += 8 {
		for bx := 0; bx < dim; bx += 8 {
			dct8x8Block(in[by*dim+bx:], dim, block[:])
			for y := 0; y < 8; y++ {
				copy(out[(by+y)*dim+bx:(by+y)*dim+bx+8], block[y*8:y*8+8])
			}
		}
	}
	return out
}

// DCT8x8 returns the DCT benchmark.
func DCT8x8() Benchmark {
	return Benchmark{
		Name:           "DCT",
		Full:           "DCT8x8 (CUDA SDK)",
		DefaultThreads: 64,
		DefaultTasks:   32 * 1024,
		SupportsShared: true,
		NeedsSync:      true,
		Make:           makeDCT,
	}
}

func makeDCT(opt Options) []TaskDef {
	rng := newRand(opt.Seed)
	threads := opt.threads(64)
	tasks := make([]TaskDef, opt.Tasks)
	for i := range tasks {
		dim := 128
		if opt.InputSize > 0 {
			dim = opt.InputSize
		}
		if opt.Irregular {
			dim = 8 << uint(rng.rangeInt(2, 5)) // 32..256
		}
		pixels := dim * dim
		blocks8 := (dim / 8) * (dim / 8)

		var in, out, want []float32
		if opt.Verify {
			in = make([]float32, pixels)
			out = make([]float32, pixels)
			for p := range in {
				in[p] = float32(rng.float01()*255 - 128)
			}
			want = dctRef(in, dim)
		}

		sharedMem := 0
		if opt.UseShared {
			// Stage a tile of 8x8 blocks in shared memory, as the SDK kernel
			// does: one row of blocks (dim x 8 floats), capped to the arena.
			sharedMem = dim * 8 * 4
			if sharedMem > 16*1024 {
				sharedMem = 16 * 1024
			}
		}

		t := TaskDef{
			Name:      "DCT",
			Threads:   opt.pickThreads(threads, pixels, 128*128),
			Blocks:    1,
			SharedMem: sharedMem,
			Sync:      true,
			ArgBytes:  48,
			Regs:      33,
			InBytes:   pixels * 4,
			OutBytes:  pixels * 4,
			CPUCycles: float64(pixels) * dctCPUCyclesPerPixel,
		}
		useShared := opt.UseShared
		t.Kernel = func(c DeviceCtx) {
			if in != nil {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, blocks8, tid)
					bw := dim / 8
					var blk [64]float32
					for b := lo; b < hi; b++ {
						by, bx := (b/bw)*8, (b%bw)*8
						dct8x8Block(in[by*dim+bx:], dim, blk[:])
						for y := 0; y < 8; y++ {
							copy(out[(by+y)*dim+bx:(by+y)*dim+bx+8], blk[y*8:y*8+8])
						}
					}
				})
			}
			if useShared && c.HasShared() {
				// Stage rows through shared memory: pay shared traffic but
				// halve the global read volume (the SDK optimization).
				c.SharedWrite(len(c.Shared()) / 4)
				chargeWarp(c, pixels, dctCyclesPerPixel*0.7, pixels*2, pixels*4, 4)
				c.SyncBlock()
				c.SharedRead(len(c.Shared()) / 4)
			} else {
				chargeWarp(c, pixels, dctCyclesPerPixel, pixels*4, pixels*4, 4)
				c.SyncBlock()
			}
		}
		if opt.Verify {
			t.CPURun = func() { copy(out, dctRef(in, dim)) }
			t.Check = func() error { return approxEqual32("DCT", out, want, 1e-3) }
		}
		tasks[i] = t
	}
	return tasks
}
