package workloads

// Cost model. Kernels charge simulated cycles through chargeWarp; the
// constants below set each benchmark's arithmetic intensity (GPU issue
// cycles per work unit per lane) and the CPU-side equivalent used by the
// PThreads baseline.
//
// The CPU constants fold in the superscalar/SIMD advantage of a Xeon core
// over a single GPU lane: regular streaming workloads vectorize well
// (cpuOps ~ gpu/5), while branchy, irregular ones (Mandelbrot, 3DES S-box
// lookups) do not (cpuOps ~ gpu/1.5). See DESIGN.md §4 on calibration and
// EXPERIMENTS.md for the resulting paper-vs-measured comparison.
const (
	// Mandelbrot: cycles per escape-loop iteration.
	mbCyclesPerIter    = 9.0
	mbCPUCyclesPerIter = 6.0
	mbMaxIter          = 256

	// FilterBank: cycles per filter tap per sample.
	fbTaps            = 32
	fbCyclesPerTap    = 2.2
	fbCPUCyclesPerTap = 1.8

	// BeamFormer: cycles per sample per beam accumulation.
	bfBeams           = 16
	bfCyclesPerMAC    = 2.0
	bfCPUCyclesPerMAC = 1.2

	// Convolution: cycles per pixel (5x5 stencil).
	convCyclesPerPixel    = 32.0
	convCPUCyclesPerPixel = 38.0

	// DCT8x8: cycles per pixel (two 8-tap passes).
	dctCyclesPerPixel    = 20.0
	dctCPUCyclesPerPixel = 21.0

	// MatrixMul: cycles per output element per K-step.
	mmCyclesPerMAC    = 1.1
	mmCPUCyclesPerMAC = 1.1

	// Sparse LU: cycles per element of a 32x32 block operation.
	sludCyclesPerUnit    = 24.0
	sludCPUCyclesPerUnit = 4.0

	// 3DES: cycles per 8-byte block (T-table style implementation).
	desCyclesPerBlock    = 260.0
	desCPUCyclesPerBlock = 480.0

	// Transformer layer (XFMR) and GEMM chain (GEMM): the attention and
	// feed-forward projections run on the same multiply-add engine as MM, so
	// they share its per-MAC cost; softmax pays a transcendental (exp) plus a
	// running max/sum per score element, which vectorizes poorly on the CPU.
	xfmrCyclesPerMAC        = 1.1
	xfmrCPUCyclesPerMAC     = 1.1
	softmaxCyclesPerElem    = 12.0
	softmaxCPUCyclesPerElem = 16.0
)

// segmentCycles is the compute run length between consecutive global memory
// accesses in a kernel's inner loop. Real narrow-task kernels touch memory
// every few hundred cycles, which is what makes warp occupancy matter: an
// SMM with few resident warps cannot hide the exposed latency. (Large values
// here would let even 2-3 warps saturate an SMM and erase the paper's
// HyperQ-underutilization effect.)
const segmentCycles = 400

// maxSegments bounds simulation event counts for very heavy tasks.
const maxSegments = 192

// chargeWarp charges one warp's share of a task's simulated cost: the
// per-thread work (lanes run in lockstep, so a warp's latency is one
// thread's work) interleaved with the warp's share of the task's global
// memory traffic at segmentCycles granularity.
func chargeWarp(c DeviceCtx, totalUnits int, cyclesPerUnit float64, rdBytes, wrBytes, chunks int) {
	threadsTotal := c.Threads() * c.Blocks()
	perThread := ceilDiv(totalUnits, threadsTotal)
	warps := ceilDiv(c.Threads(), 32) * c.Blocks()
	total := float64(perThread) * cyclesPerUnit
	if chunks < 1 {
		chunks = 1
	}
	if byLen := int(total / segmentCycles); byLen > chunks {
		chunks = byLen
	}
	if chunks > maxSegments {
		chunks = maxSegments
	}
	compute := total / float64(chunks)
	rd := rdBytes / warps / chunks
	for i := 0; i < chunks; i++ {
		if rd > 0 {
			c.GlobalRead(rd)
		} else {
			// Kernels stream their working set even when the task's input
			// copy is accounted elsewhere: charge a cached-line touch.
			c.GlobalRead(128)
		}
		c.Compute(compute)
	}
	if wr := wrBytes / warps; wr > 0 {
		c.GlobalWrite(wr)
	}
}

// laneUnits splits totalUnits across the task's threads and returns the
// half-open unit range [lo, hi) owned by thread tid of block blockIdx —
// the standard grid-stride ownership used by all verify-mode kernels.
func laneUnits(c DeviceCtx, totalUnits, tid int) (lo, hi int) {
	threadsTotal := c.Threads() * c.Blocks()
	global := c.BlockIdx()*c.Threads() + tid
	per := ceilDiv(totalUnits, threadsTotal)
	lo = global * per
	hi = lo + per
	if lo > totalUnits {
		lo = totalUnits
	}
	if hi > totalUnits {
		hi = totalUnits
	}
	return lo, hi
}
