package workloads

// Mandelbrot (MB): each task renders one 64x64 tile of the Mandelbrot set
// ("each pixel value of the image is calculated in parallel; however, the
// required computation per pixel is highly irregular", Table 4). The
// per-pixel escape iteration count varies with the tile's position, which is
// the source of the benchmark's irregularity.

// mbEscape returns the escape iteration for point (cr, ci).
func mbEscape(cr, ci float64, maxIter int) int {
	var zr, zi float64
	for it := 0; it < maxIter; it++ {
		zr2, zi2 := zr*zr, zi*zi
		if zr2+zi2 > 4 {
			return it
		}
		zr, zi = zr2-zi2+cr, 2*zr*zi+ci
	}
	return maxIter
}

// mbTile renders a dim x dim tile whose origin in the complex plane is
// (x0, y0) with the given pixel step, returning iteration counts.
func mbTile(x0, y0, step float64, dim, maxIter int) []int {
	out := make([]int, dim*dim)
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			out[y*dim+x] = mbEscape(x0+float64(x)*step, y0+float64(y)*step, maxIter)
		}
	}
	return out
}

// mbTileIters returns the total iteration count of a tile — the task's true
// work, used for cost charging and for the CPU baseline.
func mbTileIters(x0, y0, step float64, dim, maxIter int) int {
	total := 0
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			total += mbEscape(x0+float64(x)*step, y0+float64(y)*step, maxIter) + 1
		}
	}
	return total
}

// Mandelbrot returns the MB benchmark.
func Mandelbrot() Benchmark {
	return Benchmark{
		Name:           "MB",
		Full:           "Mandelbrot (Quinn)",
		DefaultThreads: 128,
		DefaultTasks:   32 * 1024,
		Irregular:      true,
		Make:           makeMB,
	}
}

func makeMB(opt Options) []TaskDef {
	rng := newRand(opt.Seed)
	threads := opt.threads(128)
	tasks := make([]TaskDef, opt.Tasks)
	for i := range tasks {
		dim := 64
		if opt.InputSize > 0 {
			dim = opt.InputSize
		}
		if opt.Irregular {
			dim = 16 << uint(rng.rangeInt(1, 3)) // 32..128
		}
		pixels := dim * dim

		// Tiles tile an interesting region around the set's boundary so the
		// per-tile work genuinely varies.
		x0 := -2.0 + 2.5*rng.float01()
		y0 := -1.25 + 2.5*rng.float01()
		step := 2.5 / 4096

		// True work: exact in verify mode; a cheap boundary-dependent
		// estimate otherwise (sampling one row keeps generation fast).
		var iters int
		if opt.Verify {
			iters = mbTileIters(x0, y0, step, dim, mbMaxIter)
		} else {
			row := mbTileIters(x0, y0, step*float64(dim), 8, mbMaxIter)
			iters = row * pixels / 64
		}

		var out, want []int
		if opt.Verify {
			out = make([]int, pixels)
			want = mbTile(x0, y0, step, dim, mbMaxIter)
		}

		t := TaskDef{
			Name:      "MB",
			Threads:   opt.pickThreads(threads, pixels, 64*64),
			Blocks:    1,
			ArgBytes:  48,
			Regs:      28,
			InBytes:   64, // tile descriptor only
			OutBytes:  pixels * 2,
			CPUCycles: float64(iters) * mbCPUCyclesPerIter,
		}
		t.Kernel = func(c DeviceCtx) {
			if out != nil {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, pixels, tid)
					for p := lo; p < hi; p++ {
						y, x := p/dim, p%dim
						out[p] = mbEscape(x0+float64(x)*step, y0+float64(y)*step, mbMaxIter)
					}
				})
			}
			// Work per lane is proportional to the tile's iteration count;
			// SIMT divergence inside the warp wastes lanes, captured by a
			// 1.6x divergence penalty on the irregular escape loop.
			chargeWarp(c, iters, mbCyclesPerIter*1.6, 64, pixels*2, 3)
		}
		if opt.Verify {
			t.CPURun = func() { copy(out, mbTile(x0, y0, step, dim, mbMaxIter)) }
			t.Check = func() error { return equalInts("MB", out, want) }
		}
		tasks[i] = t
	}
	return tasks
}
