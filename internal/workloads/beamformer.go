package workloads

// BeamFormer (BF): the StreamIt beam former — steer an antenna array by
// combining one input signal into several beams with per-beam complex
// weights. "Many independent signal beams receive inputs asynchronously;
// processing individual inputs generates a narrow task." Table 3: signals of
// width 2K, no shared memory, no sync.

// bfRef computes, for each beam b, out[b*n+i] = re(w_b) * sig[i] rotated by
// the beam's phase progression — a simplified narrowband beamformer with one
// multiply-accumulate pair per sample per beam.
func bfRef(sig []float32, wRe, wIm []float32, n int) []float32 {
	beams := len(wRe)
	out := make([]float32, beams*n)
	for b := 0; b < beams; b++ {
		for i := 0; i < n; i++ {
			// Complex rotate the real signal by the beam weight; the
			// imaginary partner sample is the neighbouring element.
			var prev float32
			if i > 0 {
				prev = sig[i-1]
			}
			out[b*n+i] = wRe[b]*sig[i] - wIm[b]*prev
		}
	}
	return out
}

// BeamFormer returns the BF benchmark.
func BeamFormer() Benchmark {
	return Benchmark{
		Name:           "BF",
		Full:           "BeamFormer (StreamIt)",
		DefaultThreads: 256,
		DefaultTasks:   32 * 1024,
		Make:           makeBF,
	}
}

func makeBF(opt Options) []TaskDef {
	rng := newRand(opt.Seed)
	threads := opt.threads(256)
	tasks := make([]TaskDef, opt.Tasks)

	wRe := make([]float32, bfBeams)
	wIm := make([]float32, bfBeams)
	for b := range wRe {
		wRe[b] = float32(rng.float01()*2 - 1)
		wIm[b] = float32(rng.float01()*2 - 1)
	}

	for i := range tasks {
		width := 2048
		if opt.InputSize > 0 {
			width = opt.InputSize
		}
		if opt.Irregular {
			width = 256 << uint(rng.rangeInt(1, 4))
		}
		units := width * bfBeams

		var sig, out, want []float32
		if opt.Verify {
			sig = make([]float32, width)
			for p := range sig {
				sig[p] = float32(rng.float01()*2 - 1)
			}
			out = make([]float32, units)
			want = bfRef(sig, wRe, wIm, width)
		}

		t := TaskDef{
			Name:      "BF",
			Threads:   opt.pickThreads(threads, width, 2048),
			Blocks:    1,
			ArgBytes:  64,
			Regs:      34,
			InBytes:   width * 4,
			OutBytes:  units * 4 / bfBeams, // beams are reduced before copy-out
			CPUCycles: float64(units) * bfCPUCyclesPerMAC * 2,
		}
		t.Kernel = func(c DeviceCtx) {
			if sig != nil {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, width, tid)
					for p := lo; p < hi; p++ {
						var prev float32
						if p > 0 {
							prev = sig[p-1]
						}
						for b := 0; b < bfBeams; b++ {
							out[b*width+p] = wRe[b]*sig[p] - wIm[b]*prev
						}
					}
				})
			}
			chargeWarp(c, units, bfCyclesPerMAC*2, width*4, width*4, 3)
		}
		if opt.Verify {
			t.CPURun = func() { copy(out, bfRef(sig, wRe, wIm, width)) }
			t.Check = func() error { return approxEqual32("BF", out, want, 1e-3) }
		}
		tasks[i] = t
	}
	return tasks
}
