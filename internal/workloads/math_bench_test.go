package workloads

import "testing"

// Microbenchmarks of the real per-task computations (the host reference
// implementations, which also run inside verify-mode kernels).

func BenchmarkDESBlock(b *testing.B) {
	ks := DESKeySchedule(0x133457799BBCDFF1)
	var x uint64 = 0x0123456789ABCDEF
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = desBlock(x, &ks, false)
	}
	_ = x
}

func Benchmark3DESPacket2K(b *testing.B) {
	td := NewTripleDES(1, 2, 3)
	pkt := make([]uint64, 256)
	for i := range pkt {
		pkt[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	b.SetBytes(2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		td.EncryptPacket(pkt)
	}
}

func BenchmarkDCT8x8Image128(b *testing.B) {
	rng := newRand(1)
	in := make([]float32, 128*128)
	for i := range in {
		in[i] = float32(rng.float01())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = dctRef(in, 128)
	}
}

func BenchmarkConv128(b *testing.B) {
	rng := newRand(2)
	in := make([]float32, 128*128)
	for i := range in {
		in[i] = float32(rng.float01())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = convRef(in, 128)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := newRand(3)
	a := make([]float32, 64*64)
	c := make([]float32, 64*64)
	for i := range a {
		a[i] = float32(rng.float01())
		c[i] = float32(rng.float01())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = mmRef(a, c, 64)
	}
}

func BenchmarkMandelbrotTile64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = mbTile(-0.75, 0.05, 2.5/4096, 64, mbMaxIter)
	}
}

func BenchmarkFilterBankSignal2K(b *testing.B) {
	rng := newRand(4)
	sig := make([]float32, 2048)
	h := make([]float32, fbTaps)
	f := make([]float32, fbTaps)
	for i := range sig {
		sig[i] = float32(rng.float01())
	}
	for i := range h {
		h[i], f[i] = float32(rng.float01()), float32(rng.float01())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fbRef(sig, h, f)
	}
}

func BenchmarkSparseLUBlockBMOD(b *testing.B) {
	rng := newRand(5)
	mk := func() []float64 {
		m := make([]float64, sludBS*sludBS)
		for i := range m {
			m[i] = rng.float01() + 1
		}
		return m
	}
	a, bb, c := mk(), mk(), mk()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sludBMODRef(a, bb, c)
	}
}

func BenchmarkTaskGeneration(b *testing.B) {
	for _, bench := range All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = bench.Make(Options{Tasks: 64, Seed: 1})
			}
		})
	}
}
