package workloads

import (
	"math"
	"testing"
)

func TestDCTCoeffOrthonormal(t *testing.T) {
	// C * C^T = I for the DCT-II matrix.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			var acc float64
			for k := 0; k < 8; k++ {
				acc += float64(dctCoeff[i*8+k]) * float64(dctCoeff[j*8+k])
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(acc-want) > 1e-5 {
				t.Fatalf("C*C^T[%d][%d] = %v, want %v", i, j, acc, want)
			}
		}
	}
}

func TestDCTConstantBlock(t *testing.T) {
	// A constant block has all energy in the DC coefficient: DC = 8 * v.
	in := make([]float32, 64)
	for i := range in {
		in[i] = 3
	}
	var out [64]float32
	dct8x8Block(in, 8, out[:])
	if math.Abs(float64(out[0])-24) > 1e-4 {
		t.Fatalf("DC = %v, want 24", out[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(float64(out[i])) > 1e-4 {
			t.Fatalf("AC coefficient %d = %v, want 0", i, out[i])
		}
	}
}

func TestDCTParseval(t *testing.T) {
	// Orthonormal transform preserves energy.
	rng := newRand(3)
	in := make([]float32, 64)
	var ein float64
	for i := range in {
		in[i] = float32(rng.float01()*2 - 1)
		ein += float64(in[i]) * float64(in[i])
	}
	var out [64]float32
	dct8x8Block(in, 8, out[:])
	var eout float64
	for _, v := range out {
		eout += float64(v) * float64(v)
	}
	if math.Abs(ein-eout)/ein > 1e-4 {
		t.Fatalf("energy in %v != out %v", ein, eout)
	}
}

func TestConvPreservesConstant(t *testing.T) {
	// The blur kernel is normalized: a constant image stays constant.
	dim := 16
	in := make([]float32, dim*dim)
	for i := range in {
		in[i] = 7
	}
	out := convRef(in, dim)
	for i, v := range out {
		if math.Abs(float64(v)-7) > 1e-4 {
			t.Fatalf("pixel %d = %v, want 7", i, v)
		}
	}
}

func TestConvImpulseSumsToOne(t *testing.T) {
	dim := 16
	in := make([]float32, dim*dim)
	in[8*dim+8] = 1
	out := convRef(in, dim)
	var sum float64
	for _, v := range out {
		if v < 0 {
			t.Fatalf("negative response %v from non-negative kernel", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("impulse response sums to %v, want 1", sum)
	}
}

func TestMMIdentity(t *testing.T) {
	n := 16
	a := make([]float32, n*n)
	id := make([]float32, n*n)
	rng := newRand(5)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
		for j := 0; j < n; j++ {
			a[i*n+j] = float32(rng.float01())
		}
	}
	got := mmRef(a, id, n)
	if err := approxEqual32("MM*I", got, a, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestMandelbrotKnownPoints(t *testing.T) {
	if mbEscape(0, 0, 64) != 64 {
		t.Error("origin must not escape")
	}
	if mbEscape(2, 2, 64) != 1 {
		t.Error("(2,2) must escape after one iteration")
	}
	if it := mbEscape(-0.75, 0.05, 64); it == 64 || it < 3 {
		t.Errorf("boundary point escaped after %d iterations; expected a mid-range count", it)
	}
}

func TestFilterBankImpulse(t *testing.T) {
	// An impulse through stage 1 reproduces the H taps.
	n := 64
	sig := make([]float32, n)
	sig[0] = 1
	h := make([]float32, fbTaps)
	for k := range h {
		h[k] = float32(k + 1)
	}
	out := make([]float32, n)
	fbStage(sig, h, out)
	for k := 0; k < fbTaps; k++ {
		if out[k] != h[k] {
			t.Fatalf("impulse response[%d] = %v, want %v", k, out[k], h[k])
		}
	}
	for k := fbTaps; k < n; k++ {
		if out[k] != 0 {
			t.Fatalf("tail[%d] = %v, want 0", k, out[k])
		}
	}
}

func TestBeamformerWeights(t *testing.T) {
	n := 32
	sig := make([]float32, n)
	for i := range sig {
		sig[i] = float32(i)
	}
	wRe := []float32{2}
	wIm := []float32{0}
	out := bfRef(sig, wRe, wIm, n)
	for i := range sig {
		if out[i] != 2*sig[i] {
			t.Fatalf("beam output[%d] = %v, want %v", i, out[i], 2*sig[i])
		}
	}
}

func TestSLUDFactorsMatrix(t *testing.T) {
	// Validate the full blocked algorithm: factor a dense 2x2-block matrix
	// with the block ops and compare L*U against the original.
	const nb = 2
	n := nb * sludBS
	rng := newRand(11)
	orig := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			orig[i*n+j] = rng.float01()
		}
		orig[i*n+i] += float64(n) // diagonal dominance: stable without pivoting
	}
	// Copy into blocks.
	blk := make([][][]float64, nb)
	for bi := 0; bi < nb; bi++ {
		blk[bi] = make([][]float64, nb)
		for bj := 0; bj < nb; bj++ {
			b := make([]float64, sludBS*sludBS)
			for y := 0; y < sludBS; y++ {
				for x := 0; x < sludBS; x++ {
					b[y*sludBS+x] = orig[(bi*sludBS+y)*n+bj*sludBS+x]
				}
			}
			blk[bi][bj] = b
		}
	}
	// Dense pattern plan.
	present := make([][]bool, nb)
	for i := range present {
		present[i] = make([]bool, nb)
		for j := range present[i] {
			present[i][j] = true
		}
	}
	for _, op := range sludPlan(nb, present) {
		switch op.kind {
		case sludLU0:
			sludLU0Ref(blk[op.k][op.k])
		case sludFWD:
			sludFWDRef(blk[op.k][op.k], blk[op.k][op.j])
		case sludBDIV:
			sludBDIVRef(blk[op.k][op.k], blk[op.i][op.k])
		case sludBMOD:
			sludBMODRef(blk[op.i][op.k], blk[op.k][op.j], blk[op.i][op.j])
		}
	}
	// Rebuild the packed LU and check L*U == orig.
	lu := make([]float64, n*n)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			for y := 0; y < sludBS; y++ {
				for x := 0; x < sludBS; x++ {
					lu[(bi*sludBS+y)*n+bj*sludBS+x] = blk[bi][bj][y*sludBS+x]
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				l := lu[i*n+k]
				if k == i {
					l = 1
				}
				acc += l * lu[k*n+j]
			}
			// When j < i the diagonal of L is not reached; handle directly:
			if math.Abs(acc-orig[i*n+j])/math.Max(1, math.Abs(orig[i*n+j])) > 1e-8 {
				t.Fatalf("LU[%d][%d]: got %v, want %v", i, j, acc, orig[i*n+j])
			}
		}
	}
}

func TestSLUDPlanHasFillIn(t *testing.T) {
	rng := newRand(1)
	nb := 16
	plan := sludPlan(nb, sludPattern(nb, 0.35, rng))
	kinds := map[sludOpKind]int{}
	for _, op := range plan {
		kinds[op.kind]++
	}
	if kinds[sludLU0] != nb {
		t.Fatalf("lu0 count = %d, want %d", kinds[sludLU0], nb)
	}
	for _, k := range []sludOpKind{sludFWD, sludBDIV, sludBMOD} {
		if kinds[k] == 0 {
			t.Fatalf("no %v tasks generated", k)
		}
	}
	// bmod dominates, as in BOTS.
	if kinds[sludBMOD] < kinds[sludFWD] {
		t.Fatalf("bmod (%d) should dominate fwd (%d)", kinds[sludBMOD], kinds[sludFWD])
	}
}

func TestSLUDTaskCountScales(t *testing.T) {
	small := makeSLUD(Options{Tasks: 500, Seed: 1})
	big := makeSLUD(Options{Tasks: 5000, Seed: 1})
	if len(small) != 500 {
		t.Fatalf("truncation failed: %d tasks", len(small))
	}
	if len(big) <= len(small) {
		t.Fatalf("plan did not grow: %d vs %d", len(big), len(small))
	}
}
