package workloads

import (
	"math"
	"testing"
)

// countingCtx is a pure mock DeviceCtx that tallies charged costs without a
// simulator — used to unit-test the cost model itself.
type countingCtx struct {
	threads, blocks, blockIdx, warpInBl int

	compute          float64
	rdBytes, wrBytes int
	rdOps, wrOps     int
	shRead, shWrite  int
	syncs            int
	shared           []byte
}

func (c *countingCtx) Threads() int     { return c.threads }
func (c *countingCtx) Blocks() int      { return c.blocks }
func (c *countingCtx) BlockIdx() int    { return c.blockIdx }
func (c *countingCtx) WarpInBlock() int { return c.warpInBl }
func (c *countingCtx) ForEachLane(fn func(int)) {
	base := c.warpInBl * 32
	for l := 0; l < 32 && base+l < c.threads; l++ {
		fn(base + l)
	}
}
func (c *countingCtx) Compute(v float64) { c.compute += v }
func (c *countingCtx) GlobalRead(n int)  { c.rdBytes += n; c.rdOps++ }
func (c *countingCtx) GlobalWrite(n int) { c.wrBytes += n; c.wrOps++ }
func (c *countingCtx) SharedRead(n int)  { c.shRead += n }
func (c *countingCtx) SharedWrite(n int) { c.shWrite += n }
func (c *countingCtx) SyncBlock()        { c.syncs++ }
func (c *countingCtx) HasShared() bool   { return len(c.shared) > 0 }
func (c *countingCtx) Shared() []byte    { return c.shared }
func (c *countingCtx) Args() any         { return nil }

var _ DeviceCtx = (*countingCtx)(nil)

// runAllWarps invokes the kernel for every warp of a 1-block task and
// returns the summed counters.
func runAllWarps(kernel func(DeviceCtx), threads int) *countingCtx {
	total := &countingCtx{threads: threads, blocks: 1}
	warps := ceilDiv(threads, 32)
	for w := 0; w < warps; w++ {
		c := &countingCtx{threads: threads, blocks: 1, warpInBl: w}
		kernel(c)
		total.compute += c.compute
		total.rdBytes += c.rdBytes
		total.wrBytes += c.wrBytes
		total.rdOps += c.rdOps
		total.wrOps += c.wrOps
		total.syncs += c.syncs
	}
	return total
}

func TestChargeWarpTotalComputeInvariant(t *testing.T) {
	// Total issue cycles charged across all warps is threads-invariant:
	// "the amount of work per task remains constant in all thread
	// configurations" (Fig. 7).
	const units = 16384
	const cyc = 4.0
	ref := -1.0
	for _, threads := range []int{32, 64, 128, 256, 512} {
		total := runAllWarps(func(c DeviceCtx) {
			chargeWarp(c, units, cyc, 0, 0, 1)
		}, threads)
		want := float64(units) * cyc / 32 // total lane-cycles / lanes per warp
		if math.Abs(total.compute-want)/want > 0.05 {
			t.Fatalf("threads=%d: total compute %v, want ~%v", threads, total.compute, want)
		}
		if ref < 0 {
			ref = total.compute
		} else if math.Abs(total.compute-ref)/ref > 0.05 {
			t.Fatalf("threads=%d: compute %v drifted from %v", threads, total.compute, ref)
		}
	}
}

func TestChargeWarpSegmentation(t *testing.T) {
	// Long compute must be split into ~segmentCycles chunks with a memory
	// access per chunk (the latency-hiding granularity), capped at
	// maxSegments.
	c := &countingCtx{threads: 32, blocks: 1}
	chargeWarp(c, 32*4000, 1.0, 0, 0, 1) // 4000 cycles per thread
	wantChunks := 4000 / segmentCycles
	if c.rdOps != wantChunks {
		t.Fatalf("rdOps = %d, want %d (one access per %d-cycle segment)", c.rdOps, wantChunks, segmentCycles)
	}
	// Cap check.
	c2 := &countingCtx{threads: 32, blocks: 1}
	chargeWarp(c2, 32*1_000_000, 1.0, 0, 0, 1)
	if c2.rdOps != maxSegments {
		t.Fatalf("rdOps = %d, want cap %d", c2.rdOps, maxSegments)
	}
}

func TestChargeWarpTrafficSplitAcrossWarps(t *testing.T) {
	const rd, wr = 64 * 1024, 16 * 1024
	total := runAllWarps(func(c DeviceCtx) {
		chargeWarp(c, 32*100, 1.0, rd, wr, 4)
	}, 128)
	// All warps together must account for roughly the task's traffic.
	if total.rdBytes < rd*9/10 || total.rdBytes > rd*11/10 {
		t.Fatalf("read traffic %d, want ~%d", total.rdBytes, rd)
	}
	if total.wrBytes < wr*9/10 || total.wrBytes > wr*11/10 {
		t.Fatalf("write traffic %d, want ~%d", total.wrBytes, wr)
	}
}

func TestLaneUnitsPartition(t *testing.T) {
	// Every unit is owned by exactly one (block, tid) pair.
	for _, tc := range []struct{ units, threads, blocks int }{
		{1000, 64, 1}, {1000, 128, 2}, {7, 32, 1}, {4096, 96, 3},
	} {
		owned := make([]int, tc.units)
		for b := 0; b < tc.blocks; b++ {
			c := &countingCtx{threads: tc.threads, blocks: tc.blocks, blockIdx: b}
			for tid := 0; tid < tc.threads; tid++ {
				lo, hi := laneUnits(c, tc.units, tid)
				for u := lo; u < hi; u++ {
					owned[u]++
				}
			}
		}
		for u, n := range owned {
			if n != 1 {
				t.Fatalf("units=%d threads=%d blocks=%d: unit %d owned %d times",
					tc.units, tc.threads, tc.blocks, u, n)
			}
		}
	}
}
