package workloads

// Sparse LU Decomposition (SLUD), from the Barcelona OpenMP Task Suite: a
// blocked sparse LU factorization using the multifrontal pattern. The matrix
// is an NB x NB grid of BS x BS blocks with a sparse block population; every
// block operation (lu0, fwd, bdiv, bmod) is one narrow task with a 32x32
// block input (Table 3). The task count is *not* known statically — it
// depends on the sparsity pattern as elimination proceeds — which is why the
// paper could not implement SLUD on GeMTC or static fusion.

const sludBS = 32 // block edge (Table 3: "32 x 32 matrix" per task)

type sludOpKind int

const (
	sludLU0  sludOpKind = iota // factor diagonal block
	sludFWD                    // forward solve a row block
	sludBDIV                   // divide a column block
	sludBMOD                   // update trailing block: C -= A*B
)

func (k sludOpKind) String() string {
	return [...]string{"lu0", "fwd", "bdiv", "bmod"}[k]
}

// sludLU0Ref factors a BS x BS block in place (no pivoting, as in BOTS).
func sludLU0Ref(a []float64) {
	for k := 0; k < sludBS; k++ {
		for i := k + 1; i < sludBS; i++ {
			a[i*sludBS+k] /= a[k*sludBS+k]
			for j := k + 1; j < sludBS; j++ {
				a[i*sludBS+j] -= a[i*sludBS+k] * a[k*sludBS+j]
			}
		}
	}
}

// sludFWDRef solves L * X = B for a row block (L unit lower from diag).
func sludFWDRef(diag, b []float64) {
	for k := 0; k < sludBS; k++ {
		for i := k + 1; i < sludBS; i++ {
			l := diag[i*sludBS+k]
			for j := 0; j < sludBS; j++ {
				b[i*sludBS+j] -= l * b[k*sludBS+j]
			}
		}
	}
}

// sludBDIVRef solves X * U = B for a column block.
func sludBDIVRef(diag, b []float64) {
	for k := 0; k < sludBS; k++ {
		d := diag[k*sludBS+k]
		for i := 0; i < sludBS; i++ {
			b[i*sludBS+k] /= d
			for j := k + 1; j < sludBS; j++ {
				b[i*sludBS+j] -= b[i*sludBS+k] * diag[k*sludBS+j]
			}
		}
	}
}

// sludBMODRef computes C -= A * B.
func sludBMODRef(a, b, c []float64) {
	for i := 0; i < sludBS; i++ {
		for k := 0; k < sludBS; k++ {
			av := a[i*sludBS+k]
			if av == 0 {
				continue
			}
			for j := 0; j < sludBS; j++ {
				c[i*sludBS+j] -= av * b[k*sludBS+j]
			}
		}
	}
}

// sludOpUnits returns each op's work in block elements processed.
func sludOpUnits(kind sludOpKind) int {
	switch kind {
	case sludLU0:
		return sludBS * sludBS * sludBS / 3
	case sludFWD, sludBDIV:
		return sludBS * sludBS * sludBS / 2
	default:
		return sludBS * sludBS * sludBS
	}
}

// sludPlanOp is one task in the elimination schedule.
type sludPlanOp struct {
	kind sludOpKind
	// block coordinates (diagnostics only).
	i, j, k int
}

// sludPlan generates the BOTS multifrontal task schedule for an NB x NB block
// matrix with the given sparsity pattern (true = block present). New blocks
// materialize as elimination proceeds (fill-in), so the op count is dynamic.
func sludPlan(nb int, present [][]bool) []sludPlanOp {
	var ops []sludPlanOp
	for k := 0; k < nb; k++ {
		ops = append(ops, sludPlanOp{sludLU0, k, k, k})
		for j := k + 1; j < nb; j++ {
			if present[k][j] {
				ops = append(ops, sludPlanOp{sludFWD, k, j, k})
			}
		}
		for i := k + 1; i < nb; i++ {
			if present[i][k] {
				ops = append(ops, sludPlanOp{sludBDIV, i, k, k})
			}
		}
		for i := k + 1; i < nb; i++ {
			if !present[i][k] {
				continue
			}
			for j := k + 1; j < nb; j++ {
				if !present[k][j] {
					continue
				}
				present[i][j] = true // fill-in
				ops = append(ops, sludPlanOp{sludBMOD, i, j, k})
			}
		}
	}
	return ops
}

// sludPattern builds the BOTS-style sparsity pattern.
func sludPattern(nb int, density float64, rng *xorshift) [][]bool {
	p := make([][]bool, nb)
	for i := range p {
		p[i] = make([]bool, nb)
		for j := range p[i] {
			p[i][j] = i == j || rng.float01() < density
		}
	}
	return p
}

// SparseLU returns the SLUD benchmark. Options.Tasks caps the op count (the
// plan is truncated or the matrix grown to approximate it); with the paper's
// configuration (~100 blocks, ~35% density) the plan reaches the 273K tasks
// of Table 3.
func SparseLU() Benchmark {
	return Benchmark{
		Name:           "SLUD",
		Full:           "Sparse LU Decomposition (BOTS)",
		DefaultThreads: 128,
		DefaultTasks:   273 * 1024,
		Irregular:      true,
		Make:           makeSLUD,
	}
}

func makeSLUD(opt Options) []TaskDef {
	rng := newRand(opt.Seed)
	threads := opt.threads(128)

	// Grow the block matrix until the schedule covers the requested count.
	nb := 8
	var plan []sludPlanOp
	for {
		plan = sludPlan(nb, sludPattern(nb, 0.35, newRand(opt.Seed+int64(nb))))
		if len(plan) >= opt.Tasks || nb >= 128 {
			break
		}
		nb += 8
	}
	if len(plan) > opt.Tasks {
		plan = plan[:opt.Tasks]
	}

	tasks := make([]TaskDef, len(plan))
	for i, op := range plan {
		units := sludOpUnits(op.kind)

		// Verify mode: run each block op on private random data against the
		// reference (the arithmetic is validated; the fill-in schedule itself
		// is validated by TestSLUDFactorsMatrix).
		var a, b, cblk, want []float64
		if opt.Verify {
			mk := func() []float64 {
				m := make([]float64, sludBS*sludBS)
				for p := range m {
					m[p] = rng.float01() + 0.5
				}
				for d := 0; d < sludBS; d++ {
					m[d*sludBS+d] += float64(sludBS) // diagonally dominant
				}
				return m
			}
			a, b = mk(), mk()
			cblk = mk()
			want = make([]float64, sludBS*sludBS)
			switch op.kind {
			case sludLU0:
				copy(want, cblk)
				sludLU0Ref(want)
			case sludFWD:
				copy(want, cblk)
				sludFWDRef(a, want)
			case sludBDIV:
				copy(want, cblk)
				sludBDIVRef(a, want)
			case sludBMOD:
				copy(want, cblk)
				sludBMODRef(a, b, want)
			}
		}

		kind := op.kind
		t := TaskDef{
			Name:      "SLUD-" + kind.String(),
			Threads:   opt.threads(threads),
			Blocks:    1,
			ArgBytes:  72,
			Regs:      17,
			InBytes:   sludBS * sludBS * 4, // fp32 transfer format
			OutBytes:  sludBS * sludBS * 4,
			CPUCycles: float64(units) * sludCPUCyclesPerUnit,
		}
		t.Kernel = func(c DeviceCtx) {
			if cblk != nil && c.BlockIdx() == 0 && c.WarpInBlock() == 0 {
				// Block ops have sequential dependencies across k-steps, so
				// the real math runs warp-0-side; cost is charged to all.
				switch kind {
				case sludLU0:
					sludLU0Ref(cblk)
				case sludFWD:
					sludFWDRef(a, cblk)
				case sludBDIV:
					sludBDIVRef(a, cblk)
				case sludBMOD:
					sludBMODRef(a, b, cblk)
				}
			}
			chargeWarp(c, units, sludCyclesPerUnit, sludBS*sludBS*8, sludBS*sludBS*8, 3)
		}
		if opt.Verify {
			t.CPURun = func() {
				tmp := make([]float64, len(cblk))
				copy(tmp, cblk)
				switch kind {
				case sludLU0:
					sludLU0Ref(tmp)
				case sludFWD:
					sludFWDRef(a, tmp)
				case sludBDIV:
					sludBDIVRef(a, tmp)
				case sludBMOD:
					sludBMODRef(a, b, tmp)
				}
				copy(cblk, tmp)
			}
			t.Check = func() error { return approxEqual64("SLUD-"+kind.String(), cblk, want, 1e-9) }
		}
		tasks[i] = t
	}
	return tasks
}
