package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/sim"
)

func TestAllBenchmarksListed(t *testing.T) {
	names := []string{"MB", "FB", "BF", "CONV", "DCT", "MM", "SLUD", "3DES"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() returned %d benchmarks, want %d", len(all), len(names))
	}
	for i, b := range all {
		if b.Name != names[i] {
			t.Errorf("All()[%d] = %s, want %s", i, b.Name, names[i])
		}
		if _, err := ByName(b.Name); err != nil {
			t.Errorf("ByName(%s): %v", b.Name, err)
		}
	}
	if _, err := ByName("MPE"); err != nil {
		t.Errorf("ByName(MPE): %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestTable3Characteristics(t *testing.T) {
	// Shared-memory and sync flags per Table 3.
	flags := map[string]struct{ shared, sync bool }{
		"MB": {false, false}, "FB": {false, true}, "BF": {false, false},
		"CONV": {false, false}, "DCT": {true, true}, "MM": {true, true},
		"SLUD": {false, false}, "3DES": {false, false},
	}
	for _, b := range All() {
		want := flags[b.Name]
		if b.SupportsShared != want.shared {
			t.Errorf("%s SupportsShared = %v, want %v", b.Name, b.SupportsShared, want.shared)
		}
		if b.NeedsSync != want.sync {
			t.Errorf("%s NeedsSync = %v, want %v", b.Name, b.NeedsSync, want.sync)
		}
	}
}

func TestMakeProducesRequestedTasks(t *testing.T) {
	for _, b := range All() {
		tasks := b.Make(Options{Tasks: 20, Seed: 1})
		if len(tasks) != 20 {
			t.Errorf("%s: Make produced %d tasks, want 20", b.Name, len(tasks))
		}
		for i, task := range tasks {
			if task.Kernel == nil {
				t.Fatalf("%s task %d has nil kernel", b.Name, i)
			}
			if task.Threads <= 0 || task.Threads > 992 {
				t.Errorf("%s task %d threads = %d", b.Name, i, task.Threads)
			}
			if task.CPUCycles <= 0 {
				t.Errorf("%s task %d has no CPU cost", b.Name, i)
			}
			if task.InBytes < 0 || task.OutBytes < 0 {
				t.Errorf("%s task %d negative copy sizes", b.Name, i)
			}
		}
	}
}

func TestThreadOverrideRespected(t *testing.T) {
	for _, b := range All() {
		for _, th := range []int{32, 64, 256} {
			tasks := b.Make(Options{Tasks: 3, Threads: th, Seed: 1})
			for _, task := range tasks {
				if task.Threads != th {
					t.Errorf("%s: threads = %d, want %d", b.Name, task.Threads, th)
				}
			}
		}
	}
}

func TestIrregularVariesWork(t *testing.T) {
	for _, name := range []string{"CONV", "MM", "FB", "3DES"} {
		b, _ := ByName(name)
		tasks := b.Make(Options{Tasks: 64, Irregular: true, Seed: 9})
		sizes := map[int]bool{}
		for _, task := range tasks {
			sizes[task.InBytes] = true
		}
		if len(sizes) < 3 {
			t.Errorf("%s: irregular mode produced only %d distinct input sizes", name, len(sizes))
		}
	}
}

func TestMPEInterleavesApplications(t *testing.T) {
	tasks := MPEBench().Make(Options{Tasks: 40, Seed: 2})
	if len(tasks) != 40 {
		t.Fatalf("MPE produced %d tasks, want 40", len(tasks))
	}
	// First four tasks are one from each application.
	kinds := map[string]bool{}
	for _, task := range tasks[:4] {
		kinds[task.Name] = true
	}
	if len(kinds) != 4 {
		t.Fatalf("MPE head = %v, want 4 distinct applications", kinds)
	}
}

// TestVerifyModeThroughPagoda runs every benchmark's tasks end-to-end through
// the real Pagoda runtime in verify mode and checks the computed results —
// the strongest correctness test in the package: scheduler, barriers, shared
// memory and kernels all in one.
func TestVerifyModeThroughPagoda(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			eng := sim.New()
			gcfg := gpu.TitanX()
			gcfg.NumSMMs = 2
			dev := gpu.NewDevice(eng, gcfg)
			bus := pcie.New(eng, pcie.Default())
			ctx := cuda.NewContext(eng, dev, bus, cuda.DefaultConfig())
			rt := core.NewRuntime(ctx, core.DefaultConfig())

			opts := Options{Tasks: 12, Verify: true, Seed: 3}
			if b.SupportsShared {
				opts.UseShared = true
			}
			if b.Name == "CONV" || b.Name == "DCT" {
				opts.InputSize = 32 // keep verify-mode math cheap
			}
			tasks := b.Make(opts)

			eng.Spawn("host", func(p *sim.Proc) {
				for i := range tasks {
					td := tasks[i]
					rt.TaskSpawn(p, core.TaskSpec{
						Threads:   td.Threads,
						Blocks:    td.Blocks,
						SharedMem: td.SharedMem,
						Sync:      td.Sync,
						ArgBytes:  td.ArgBytes,
						Kernel:    func(tc *core.TaskCtx) { td.Kernel(tc) },
					})
				}
				rt.WaitAll(p)
				rt.Shutdown(p)
			})
			eng.Run()

			for i, td := range tasks {
				if td.Check == nil {
					t.Fatalf("task %d has no Check in verify mode", i)
				}
				if err := td.Check(); err != nil {
					t.Fatalf("task %d: %v", i, err)
				}
			}
		})
	}
}

// TestCPURunMatchesCheck validates the CPU-baseline path computes the same
// results.
func TestCPURunMatchesCheck(t *testing.T) {
	for _, b := range All() {
		opts := Options{Tasks: 6, Verify: true, Seed: 4}
		if b.Name == "CONV" || b.Name == "DCT" {
			opts.InputSize = 32
		}
		for i, td := range b.Make(opts) {
			if td.CPURun == nil {
				t.Fatalf("%s task %d has no CPURun in verify mode", b.Name, i)
			}
			td.CPURun()
			if err := td.Check(); err != nil {
				t.Errorf("%s task %d: %v", b.Name, i, err)
			}
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	for _, b := range All() {
		a := b.Make(Options{Tasks: 10, Irregular: true, Seed: 77})
		c := b.Make(Options{Tasks: 10, Irregular: true, Seed: 77})
		for i := range a {
			if a[i].InBytes != c[i].InBytes || a[i].Threads != c[i].Threads || a[i].CPUCycles != c[i].CPUCycles {
				t.Errorf("%s: task %d differs across identical seeds", b.Name, i)
			}
		}
	}
}
