package workloads

// 3DES benchmark: "network routers encrypt multiple packets as they arrive,
// each of which is represented as a narrow task. We use NetBench to generate
// varied sizes of network packets" (Table 4). Table 3: packets sized 2K-64K,
// irregular.

// netbenchPacketBytes draws a packet size from a NetBench-like bimodal
// distribution over the paper's 2K..64K range: mostly small-to-medium
// packets with a heavy tail of maximum-size transfers.
func netbenchPacketBytes(rng *xorshift) int {
	switch rng.intn(10) {
	case 0, 1, 2, 3: // 40%: small bulk
		return 2048 << uint(rng.intn(2)) // 2K or 4K
	case 4, 5, 6: // 30%: medium
		return 8192 << uint(rng.intn(2)) // 8K or 16K
	default: // 30%: large
		return 32768 << uint(rng.intn(2)) // 32K or 64K
	}
}

// TripleDESBench returns the 3DES benchmark.
func TripleDESBench() Benchmark {
	return Benchmark{
		Name:           "3DES",
		Full:           "Triple-DES packet encryption (NIST FIPS 46-3)",
		DefaultThreads: 128,
		DefaultTasks:   32 * 1024,
		Irregular:      true,
		Make:           make3DES,
	}
}

func make3DES(opt Options) []TaskDef {
	rng := newRand(opt.Seed)
	threads := opt.threads(128)
	cipher := NewTripleDES(0x0123456789ABCDEF, 0x23456789ABCDEF01, 0x456789ABCDEF0123)

	tasks := make([]TaskDef, opt.Tasks)
	for i := range tasks {
		bytes := netbenchPacketBytes(rng)
		if opt.InputSize > 0 {
			bytes = opt.InputSize
		}
		blocks := bytes / 8

		var packet, want []uint64
		if opt.Verify {
			packet = make([]uint64, blocks)
			for p := range packet {
				packet[p] = rng.next()
			}
			want = make([]uint64, blocks)
			for p := range packet {
				want[p] = cipher.EncryptBlock(packet[p])
			}
		}

		t := TaskDef{
			Name:      "3DES",
			Threads:   opt.pickThreads(threads, blocks, 1024),
			Blocks:    1,
			ArgBytes:  64,
			Regs:      26,
			InBytes:   bytes,
			OutBytes:  bytes,
			CPUCycles: float64(blocks) * desCPUCyclesPerBlock,
		}
		t.Kernel = func(c DeviceCtx) {
			if packet != nil {
				c.ForEachLane(func(tid int) {
					lo, hi := laneUnits(c, blocks, tid)
					for p := lo; p < hi; p++ {
						packet[p] = cipher.EncryptBlock(packet[p])
					}
				})
			}
			// S-box lookups diverge across lanes; charge a divergence factor
			// on top of the per-block cost.
			chargeWarp(c, blocks, desCyclesPerBlock*1.3, bytes, bytes, 4)
		}
		if opt.Verify {
			t.CPURun = func() { cipher.EncryptPacket(packet) }
			t.Check = func() error { return equalU64("3DES", packet, want) }
		}
		tasks[i] = t
	}
	return tasks
}

// MPEBench returns the Multi-Programmed Environment benchmark of Table 4:
// equal parts 3DES and Mandelbrot (irregular computation), FilterBank
// (threadblock synchronization) and MatrixMul (shared memory), interleaved
// task-by-task as the applications generate work asynchronously.
func MPEBench() Benchmark {
	return Benchmark{
		Name:           "MPE",
		Full:           "Multi-Programmed Environment (3DES + MB + FB + MM)",
		DefaultThreads: 128,
		DefaultTasks:   32 * 1024,
		Irregular:      true,
		NeedsSync:      true,
		SupportsShared: true,
		Make:           makeMPE,
	}
}

func makeMPE(opt Options) []TaskDef {
	per := opt.Tasks / 4
	sub := opt
	sub.Tasks = per
	parts := [][]TaskDef{
		make3DES(sub),
		makeMB(sub),
		makeFB(sub),
		makeMM(sub),
	}
	// Interleave round-robin: the four applications spawn asynchronously.
	var out []TaskDef
	for i := 0; i < per; i++ {
		for _, p := range parts {
			out = append(out, p[i])
		}
	}
	return out
}
