// Package cluster is the fleet layer over the single-device serving stack:
// it models N GPUs (each with its own PCIe bus and execution-scheme instance)
// behind one front-end dispatcher, all simulated on a single discrete-event
// engine sharing one virtual clock. One engine — not one per device — is the
// load-bearing choice: every cross-node ordering question (which node was
// shorter when task 41 arrived?) is resolved in deterministic virtual time,
// so fleet runs stay bit-identical and race-free at any harness parallelism,
// the property Zorua-style decoupling of task placement from physical
// resources needs to be measurable at all.
//
// The package deliberately knows nothing about Pagoda, HyperQ or GeMTC: a
// node is anything implementing Node (internal/runners provides the three
// scheme-backed implementations), a Policy picks a node per arrival from the
// dispatcher-visible NodeViews, and per-node admission stays inside the node
// (reusing serve.Policy), exactly where the single-device open-loop runners
// consult it — which is what lets a 1-node fleet reproduce the single-device
// serving numbers bit for bit.
//
// Determinism rules: the only pseudo-randomness is the explicitly seeded
// xorshift behind PowerOfTwo (the randsource rule); policies break ties by
// lowest node index; no wall clock, map iteration or raw goroutines appear
// anywhere in the fleet path.
package cluster

import (
	"fmt"

	"repro/internal/sim"
)

// NodeView is one node's dispatcher-visible accounting at an instant. The
// counters are cumulative; policies work off the two derived quantities.
type NodeView struct {
	Routed  int // tasks the dispatcher handed to this node
	Started int // tasks handed on to the scheme's own spawn path
	Done    int // tasks completed by the scheme
	Dropped int // tasks rejected by the node's admission policy
}

// Outstanding returns the node's routed-but-unfinished task count — the load
// signal LeastOutstanding and PowerOfTwo balance on.
func (v NodeView) Outstanding() int { return v.Routed - v.Done - v.Dropped }

// Queued returns the tasks still waiting in the node's host-side inbox,
// before the scheme's spawn path has picked them up — the signal
// JoinShortestQueue balances on.
func (v NodeView) Queued() int { return v.Routed - v.Started - v.Dropped }

// Conserved reports whether the node's counters balance: everything routed
// was either completed or explicitly dropped. Only meaningful after a run
// has drained.
func (v NodeView) Conserved() bool { return v.Routed == v.Done+v.Dropped }

// A Node is one device (plus bus and scheme instance) behind the dispatcher.
// Implementations live in internal/runners; all methods are called under the
// engine baton, so plain fields need no locking.
type Node interface {
	Name() string

	// View returns the node's current accounting. The dispatcher reads every
	// node's view at each arrival instant and hands the slice to the policy.
	View() NodeView

	// Submit hands task ti to the node at p's current virtual time. It must
	// not block past the instant — nodes queue internally — so a saturated
	// node can never head-of-line-block dispatch to its siblings.
	Submit(p *sim.Proc, ti int)

	// Close signals that no further Submit calls will come; the node drains
	// its queue, waits out in-flight work and shuts its scheme down.
	Close()
}

// CheckConservation verifies submitted = done + dropped on every node and
// fleet-wide, returning a descriptive error naming the first leaking node.
// Experiments call it (and panic) before publishing numbers; tests assert it
// for every policy x backend combination.
func CheckConservation(views []NodeView, offered int) error {
	routed := 0
	for i, v := range views {
		if !v.Conserved() {
			return fmt.Errorf("cluster: node %d leaked tasks: routed %d, done %d, dropped %d",
				i, v.Routed, v.Done, v.Dropped)
		}
		routed += v.Routed
	}
	if routed != offered {
		return fmt.Errorf("cluster: fleet routed %d of %d offered tasks", routed, offered)
	}
	return nil
}

// WaitUntil sleeps p to the arrival instant and returns the Submit timestamp
// to record: the arrival time, clamped to the clock when the sleep target
// rounds a float ulp past it, so Submit <= service start always holds. (Same
// contract as the single-device open-loop runners.)
func WaitUntil(p *sim.Proc, at sim.Time) sim.Time {
	if at > p.Now() {
		p.Sleep(at - p.Now())
	}
	if p.Now() < at {
		return p.Now()
	}
	return at
}
