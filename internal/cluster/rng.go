package cluster

// xorshift is the fleet's seeded deterministic PRNG — the same generator
// internal/serve and internal/workloads use — so policy choices are identical
// across Go versions and runs (the randsource rule).
type xorshift uint64

func newRand(seed int64) *xorshift {
	x := xorshift(uint64(seed)*2685821657736338717 + 0x9E3779B97F4A7C15)
	if x == 0 {
		x = 0x2545F4914F6CDD1D
	}
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// intn returns a uniform draw from [0, n).
func (x *xorshift) intn(n int) int {
	if n <= 0 {
		panic("cluster: intn on a non-positive bound")
	}
	return int(x.next() % uint64(n))
}
