package cluster

import (
	"fmt"

	"repro/internal/serve"
	"repro/internal/sim"
)

// Dispatcher is the fleet's front end: one engine process that consumes an
// open-loop arrival stream and routes each task to a node under the
// configured Policy. Like the single-device runners' spawner threads it
// sleeps to each arrival instant; unlike them it never blocks on a node's
// spawn path (Submit queues), so routing decisions always happen at true
// arrival time with fresh NodeViews.
type Dispatcher struct {
	// Arrivals holds one nondecreasing virtual-cycle instant per task.
	Arrivals []sim.Time

	// Classes optionally gives each task a workload class for
	// class-affine policies; nil means every task is class 0.
	Classes []int

	// Policy picks the node per arrival; nil means round-robin.
	Policy Policy

	// Nodes is the fleet, in index order.
	Nodes []Node
}

// Validate panics on a malformed dispatcher: arrival count mismatch,
// decreasing arrivals, a Classes slice of the wrong length, or an empty
// fleet. Runners call it before spawning anything.
func (d Dispatcher) Validate(n int) {
	if len(d.Nodes) == 0 {
		panic("cluster: dispatcher with no nodes")
	}
	if len(d.Arrivals) != n {
		panic(fmt.Sprintf("cluster: %d arrivals for %d tasks", len(d.Arrivals), n))
	}
	if d.Classes != nil && len(d.Classes) != n {
		panic(fmt.Sprintf("cluster: %d classes for %d tasks", len(d.Classes), n))
	}
	for i := 1; i < n; i++ {
		if d.Arrivals[i] < d.Arrivals[i-1] {
			panic(fmt.Sprintf("cluster: arrivals decrease at %d: %v < %v", i, d.Arrivals[i], d.Arrivals[i-1]))
		}
	}
}

// A Fleet is a mutable node set — the elastic counterpart of the fixed
// Nodes slice. internal/autoscale provides the implementation; the
// dispatcher only ever sees the dispatchable subset.
type Fleet interface {
	// Snapshot returns the currently dispatchable nodes together with each
	// node's stable fleet-wide id (for per-node record attribution), in id
	// order. The slices may be reused across calls; callers consume them
	// before yielding the engine baton.
	Snapshot() ([]Node, []int)

	// CloseAll signals that no further Submit calls will come anywhere:
	// every remaining node drains and the fleet stops scaling.
	CloseAll()
}

// ElasticDispatcher routes an open-loop arrival stream over a mutable Fleet:
// the node set is re-snapshotted at every arrival instant, so tasks flow to
// nodes that finished warming and away from nodes that began draining
// without any coordination beyond the shared virtual clock. Routing and
// record-keeping match Dispatcher exactly — a Fleet whose snapshot never
// changes dispatches bit-identically to the fixed-slice path.
type ElasticDispatcher struct {
	// Arrivals holds one nondecreasing virtual-cycle instant per task.
	Arrivals []sim.Time

	// Classes optionally gives each task a workload class for
	// class-affine policies; nil means every task is class 0.
	Classes []int

	// Policy picks among the snapshot's nodes per arrival; nil means
	// round-robin. The policy sees only the dispatchable subset, in
	// id order, exactly as the fixed dispatcher shows its full slice.
	Policy Policy

	// Fleet supplies the dispatchable node set per arrival.
	Fleet Fleet
}

// Validate panics on a malformed elastic dispatcher: arrival count
// mismatch, decreasing arrivals, a Classes slice of the wrong length, a
// missing fleet, or a fleet with nothing dispatchable at start.
func (d ElasticDispatcher) Validate(n int) {
	if d.Fleet == nil {
		panic("cluster: elastic dispatcher with no fleet")
	}
	if nodes, _ := d.Fleet.Snapshot(); len(nodes) == 0 {
		panic("cluster: elastic dispatcher fleet has no dispatchable nodes")
	}
	if len(d.Arrivals) != n {
		panic(fmt.Sprintf("cluster: %d arrivals for %d tasks", len(d.Arrivals), n))
	}
	if d.Classes != nil && len(d.Classes) != n {
		panic(fmt.Sprintf("cluster: %d classes for %d tasks", len(d.Classes), n))
	}
	for i := 1; i < n; i++ {
		if d.Arrivals[i] < d.Arrivals[i-1] {
			panic(fmt.Sprintf("cluster: arrivals decrease at %d: %v < %v", i, d.Arrivals[i], d.Arrivals[i-1]))
		}
	}
}

// Spawn installs the elastic dispatcher as a front-end process on eng. For
// each task it writes the Submit instant into recs[ti] and the chosen node's
// stable fleet id into nodeOf[ti]. After the last arrival it closes the
// whole fleet so every node drains. The policy's pick indexes the snapshot;
// nodeOf records the underlying fleet id, which survives scale events.
func (d ElasticDispatcher) Spawn(eng *sim.Engine, recs []serve.Record, nodeOf []int) {
	d.Validate(len(recs))
	if len(nodeOf) != len(recs) {
		panic(fmt.Sprintf("cluster: %d node slots for %d records", len(nodeOf), len(recs)))
	}
	pol := d.Policy
	if pol == nil {
		pol = NewRoundRobin()
	}
	eng.Spawn("dispatcher", func(p *sim.Proc) {
		var views []NodeView
		for ti := range d.Arrivals {
			recs[ti].Submit = WaitUntil(p, d.Arrivals[ti])
			nodes, ids := d.Fleet.Snapshot()
			if len(nodes) == 0 {
				panic(fmt.Sprintf("cluster: fleet has no dispatchable nodes at task %d", ti))
			}
			views = views[:0]
			for _, nd := range nodes {
				views = append(views, nd.View())
			}
			t := Task{Index: ti}
			if d.Classes != nil {
				t.Class = d.Classes[ti]
			}
			n := pol.Pick(p.Now(), t, views)
			if n < 0 || n >= len(nodes) {
				panic(fmt.Sprintf("cluster: policy %s picked node %d of %d", pol.Name(), n, len(nodes)))
			}
			nodeOf[ti] = ids[n]
			nodes[n].Submit(p, ti)
		}
		d.Fleet.CloseAll()
	})
}

// Spawn installs the dispatcher as a front-end process on eng. For each task
// it writes the Submit instant into recs[ti] and the chosen node index into
// nodeOf[ti]; Start/Done/Dropped are the owning node's to fill. After the
// last arrival it closes every node so the fleet drains.
func (d Dispatcher) Spawn(eng *sim.Engine, recs []serve.Record, nodeOf []int) {
	d.Validate(len(recs))
	if len(nodeOf) != len(recs) {
		panic(fmt.Sprintf("cluster: %d node slots for %d records", len(nodeOf), len(recs)))
	}
	pol := d.Policy
	if pol == nil {
		pol = NewRoundRobin()
	}
	eng.Spawn("dispatcher", func(p *sim.Proc) {
		views := make([]NodeView, len(d.Nodes))
		for ti := range d.Arrivals {
			recs[ti].Submit = WaitUntil(p, d.Arrivals[ti])
			for i, nd := range d.Nodes {
				views[i] = nd.View()
			}
			t := Task{Index: ti}
			if d.Classes != nil {
				t.Class = d.Classes[ti]
			}
			n := pol.Pick(p.Now(), t, views)
			if n < 0 || n >= len(d.Nodes) {
				panic(fmt.Sprintf("cluster: policy %s picked node %d of %d", pol.Name(), n, len(d.Nodes)))
			}
			nodeOf[ti] = n
			d.Nodes[n].Submit(p, ti)
		}
		for _, nd := range d.Nodes {
			nd.Close()
		}
	})
}
