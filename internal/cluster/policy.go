package cluster

import (
	"fmt"

	"repro/internal/sim"
)

// Task is the arrival-time information a dispatch policy may inspect: the
// task's index in the run and its class (workload family), which
// ClassAffinity keys on. Class is 0 for single-workload runs.
type Task struct {
	Index int
	Class int
}

// A Policy picks the node for one arriving task from the fleet's current
// NodeViews. Policies may keep state (RoundRobin's cursor, PowerOfTwo's
// RNG); a fresh policy must be constructed per run, exactly like
// serve.Policy. Ties always break toward the lowest node index so choices
// are deterministic.
type Policy interface {
	Name() string
	Pick(now sim.Time, t Task, nodes []NodeView) int
}

// RoundRobin cycles through the nodes in index order regardless of their
// state — the baseline that needs no feedback signal, and the policy under
// which a 1-node fleet reproduces the single-device serving path.
type RoundRobin struct{ next int }

// NewRoundRobin returns a cursor starting at node 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (*RoundRobin) Name() string { return "rr" }

// Pick implements Policy.
func (p *RoundRobin) Pick(_ sim.Time, _ Task, nodes []NodeView) int {
	n := p.next % len(nodes)
	p.next++
	return n
}

// LeastOutstanding routes to the node with the fewest routed-but-unfinished
// tasks — the full-information load balancer (queued and in-service both
// count, so long-running service smears into the signal).
type LeastOutstanding struct{}

// Name implements Policy.
func (LeastOutstanding) Name() string { return "least" }

// Pick implements Policy.
func (LeastOutstanding) Pick(_ sim.Time, _ Task, nodes []NodeView) int {
	return argmin(nodes, NodeView.Outstanding)
}

// JoinShortestQueue routes to the node whose host-side inbox is shortest —
// the classic JSQ policy, blind to work already in service.
type JoinShortestQueue struct{}

// Name implements Policy.
func (JoinShortestQueue) Name() string { return "jsq" }

// Pick implements Policy.
func (JoinShortestQueue) Pick(_ sim.Time, _ Task, nodes []NodeView) int {
	return argmin(nodes, NodeView.Queued)
}

// PowerOfTwo samples two distinct nodes with the fleet's seeded RNG and
// routes to the less-loaded of the pair (lower index on ties) — the
// power-of-two-choices policy, which buys most of JSQ's balance with two
// probes instead of a full scan. With one node it degenerates to that node.
type PowerOfTwo struct{ rng *xorshift }

// NewPowerOfTwo returns a sampler seeded for one run. Identical seeds
// produce identical probe sequences, keeping fleet runs bit-deterministic.
func NewPowerOfTwo(seed int64) *PowerOfTwo { return &PowerOfTwo{rng: newRand(seed)} }

// Name implements Policy.
func (*PowerOfTwo) Name() string { return "p2c" }

// Pick implements Policy.
func (p *PowerOfTwo) Pick(_ sim.Time, _ Task, nodes []NodeView) int {
	if len(nodes) == 1 {
		return 0
	}
	a := p.rng.intn(len(nodes))
	b := p.rng.intn(len(nodes) - 1)
	if b >= a {
		b++ // second probe drawn from the remaining nodes, so a != b
	}
	if a > b {
		a, b = b, a // lower index wins ties
	}
	if nodes[b].Outstanding() < nodes[a].Outstanding() {
		return b
	}
	return a
}

// ClassAffinity pins each task class to a home node (class mod N), the
// locality-first policy: every task of a class lands where its kernel and
// working set are already resident. Spill, when positive, caps how deep the
// home inbox may grow before an arrival overflows to the least-outstanding
// node; 0 never spills, making single-class workloads the policy's worst
// case (the whole fleet collapses onto one node — the "where dispatch policy
// breaks scaling" point of the cluster_scaling experiment).
type ClassAffinity struct{ Spill int }

// Name implements Policy.
func (p ClassAffinity) Name() string {
	if p.Spill > 0 {
		return fmt.Sprintf("affinity+spill%d", p.Spill)
	}
	return "affinity"
}

// Pick implements Policy.
func (p ClassAffinity) Pick(_ sim.Time, t Task, nodes []NodeView) int {
	home := t.Class % len(nodes)
	if home < 0 {
		home += len(nodes)
	}
	if p.Spill > 0 && nodes[home].Queued() >= p.Spill {
		return argmin(nodes, NodeView.Queued)
	}
	return home
}

// PolicyNames lists the selectable policies in presentation order.
func PolicyNames() []string { return []string{"rr", "least", "jsq", "p2c", "affinity"} }

// NewPolicy returns a factory building a fresh policy per run for one of the
// names in PolicyNames (seed feeds PowerOfTwo's RNG; the rest ignore it).
func NewPolicy(name string, seed int64) (func() Policy, error) {
	switch name {
	case "rr":
		return func() Policy { return NewRoundRobin() }, nil
	case "least":
		return func() Policy { return LeastOutstanding{} }, nil
	case "jsq":
		return func() Policy { return JoinShortestQueue{} }, nil
	case "p2c":
		return func() Policy { return NewPowerOfTwo(seed) }, nil
	case "affinity":
		return func() Policy { return ClassAffinity{} }, nil
	default:
		return nil, fmt.Errorf("cluster: unknown dispatch policy %q (have %v)", name, PolicyNames())
	}
}

// argmin returns the index of the node minimizing metric, lowest index on
// ties — the deterministic tie-break every policy shares.
func argmin(nodes []NodeView, metric func(NodeView) int) int {
	best, bestV := 0, metric(nodes[0])
	for i := 1; i < len(nodes); i++ {
		if v := metric(nodes[i]); v < bestV {
			best, bestV = i, v
		}
	}
	return best
}
