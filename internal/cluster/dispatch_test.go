package cluster

import (
	"testing"

	"repro/internal/serve"
	"repro/internal/sim"
)

// fakeNode is an instantly-serving in-test Node: Submit completes the task on
// the spot (after an optional fixed service delay via deferred events would
// complicate ordering; instant service keeps routing the only variable).
type fakeNode struct {
	name    string
	view    NodeView
	order   []int // task indexes in submission order
	at      []sim.Time
	closed  bool
	pending int // tasks left artificially outstanding (never completed)
}

func (f *fakeNode) Name() string   { return f.name }
func (f *fakeNode) View() NodeView { return f.view }
func (f *fakeNode) Close()         { f.closed = true }

func (f *fakeNode) Submit(p *sim.Proc, ti int) {
	f.order = append(f.order, ti)
	f.at = append(f.at, p.Now())
	f.view.Routed++
	if f.pending > 0 {
		f.pending-- // leave outstanding to steer load-aware policies
		return
	}
	f.view.Started++
	f.view.Done++
}

func fleet(n int) ([]*fakeNode, []Node) {
	fakes := make([]*fakeNode, n)
	nodes := make([]Node, n)
	for i := range fakes {
		fakes[i] = &fakeNode{name: string(rune('a' + i))}
		nodes[i] = fakes[i]
	}
	return fakes, nodes
}

func runDispatch(t *testing.T, d Dispatcher, n int) ([]serve.Record, []int) {
	t.Helper()
	recs := make([]serve.Record, n)
	nodeOf := make([]int, n)
	eng := sim.New()
	d.Spawn(eng, recs, nodeOf)
	eng.Run()
	return recs, nodeOf
}

func TestDispatcherRoutesRoundRobinAtArrivalInstants(t *testing.T) {
	const n = 9
	arr := serve.FixedRate{Rate: 1e6}.Times(n)
	fakes, nodes := fleet(3)
	recs, nodeOf := runDispatch(t, Dispatcher{Arrivals: arr, Nodes: nodes}, n)

	for ti := 0; ti < n; ti++ {
		if nodeOf[ti] != ti%3 {
			t.Errorf("task %d routed to node %d, want %d", ti, nodeOf[ti], ti%3)
		}
		if recs[ti].Submit != arr[ti] {
			t.Errorf("task %d submit %v, want arrival %v", ti, recs[ti].Submit, arr[ti])
		}
	}
	for i, f := range fakes {
		if !f.closed {
			t.Errorf("node %d not closed after the last arrival", i)
		}
		if len(f.order) != 3 {
			t.Errorf("node %d received %d tasks, want 3", i, len(f.order))
		}
		for j, at := range f.at {
			if want := arr[f.order[j]]; at != want {
				t.Errorf("node %d submission %d at %v, want %v (no dispatch-side blocking)", i, j, at, want)
			}
		}
	}
	if err := CheckConservation([]NodeView{fakes[0].view, fakes[1].view, fakes[2].view}, n); err != nil {
		t.Errorf("conservation: %v", err)
	}
}

func TestDispatcherLeastOutstandingAvoidsStuckNode(t *testing.T) {
	const n = 12
	arr := serve.FixedRate{Rate: 1e6}.Times(n)
	fakes, nodes := fleet(2)
	fakes[0].pending = n // node 0 never completes anything
	_, nodeOf := runDispatch(t, Dispatcher{Arrivals: arr, Nodes: nodes, Policy: LeastOutstanding{}}, n)

	// First arrival ties (both idle) -> node 0; every later arrival must see
	// node 0's outstanding pile and go to node 1.
	if nodeOf[0] != 0 {
		t.Fatalf("first pick = node %d, want 0 (tie to lowest index)", nodeOf[0])
	}
	for ti := 1; ti < n; ti++ {
		if nodeOf[ti] != 1 {
			t.Errorf("task %d routed to stuck node", ti)
		}
	}
}

func TestDispatcherClassesReachAffinity(t *testing.T) {
	const n = 8
	arr := serve.FixedRate{Rate: 1e6}.Times(n)
	classes := []int{0, 1, 2, 3, 0, 1, 2, 3}
	_, nodes := fleet(4)
	_, nodeOf := runDispatch(t, Dispatcher{Arrivals: arr, Classes: classes, Nodes: nodes, Policy: ClassAffinity{}}, n)
	for ti, c := range classes {
		if nodeOf[ti] != c {
			t.Errorf("task %d class %d routed to node %d", ti, c, nodeOf[ti])
		}
	}
}

func TestDispatcherValidate(t *testing.T) {
	_, nodes := fleet(2)
	cases := []struct {
		name string
		d    Dispatcher
		n    int
	}{
		{"no nodes", Dispatcher{Arrivals: []sim.Time{1}}, 1},
		{"arrival count", Dispatcher{Arrivals: []sim.Time{1}, Nodes: nodes}, 2},
		{"decreasing", Dispatcher{Arrivals: []sim.Time{2, 1}, Nodes: nodes}, 2},
		{"classes len", Dispatcher{Arrivals: []sim.Time{1, 2}, Classes: []int{0}, Nodes: nodes}, 2},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Validate did not panic", c.name)
				}
			}()
			c.d.Validate(c.n)
		}()
	}
}
