package cluster

import (
	"testing"
)

func views(outstanding ...int) []NodeView {
	vs := make([]NodeView, len(outstanding))
	for i, o := range outstanding {
		vs[i] = NodeView{Routed: o} // nothing done/dropped: Outstanding == Queued == o
	}
	return vs
}

func TestNodeViewDerivedCounts(t *testing.T) {
	v := NodeView{Routed: 10, Started: 7, Done: 5, Dropped: 1}
	if got := v.Outstanding(); got != 4 {
		t.Errorf("Outstanding = %d, want 4", got)
	}
	if got := v.Queued(); got != 2 {
		t.Errorf("Queued = %d, want 2", got)
	}
	if v.Conserved() {
		t.Error("mid-run view reported conserved")
	}
	if done := (NodeView{Routed: 6, Done: 5, Dropped: 1}); !done.Conserved() {
		t.Error("drained view not conserved")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	vs := views(9, 0, 0) // load is ignored
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := p.Pick(0, Task{Index: i}, vs); got != w {
			t.Fatalf("pick %d = node %d, want %d", i, got, w)
		}
	}
}

func TestLeastOutstandingPrefersLightestLowestIndex(t *testing.T) {
	p := LeastOutstanding{}
	if got := p.Pick(0, Task{}, views(3, 1, 2)); got != 1 {
		t.Errorf("pick = %d, want 1", got)
	}
	// Ties break toward the lowest index.
	if got := p.Pick(0, Task{}, views(2, 1, 1)); got != 1 {
		t.Errorf("tie pick = %d, want 1", got)
	}
}

func TestJSQUsesQueueNotOutstanding(t *testing.T) {
	// Node 0: long queue, nothing in service. Node 1: short queue but lots in
	// service. JSQ must pick node 1; LeastOutstanding must pick node 0.
	vs := []NodeView{
		{Routed: 5, Started: 0, Done: 0}, // queued 5, outstanding 5
		{Routed: 9, Started: 8, Done: 0}, // queued 1, outstanding 9
	}
	if got := (JoinShortestQueue{}).Pick(0, Task{}, vs); got != 1 {
		t.Errorf("jsq pick = %d, want 1", got)
	}
	if got := (LeastOutstanding{}).Pick(0, Task{}, vs); got != 0 {
		t.Errorf("least pick = %d, want 0", got)
	}
}

func TestPowerOfTwoSeededDeterministicAndLoadAware(t *testing.T) {
	vs := views(0, 100, 100, 100) // node 0 always wins any probe pair containing it
	a, b := NewPowerOfTwo(7), NewPowerOfTwo(7)
	for i := 0; i < 64; i++ {
		pa, pb := a.Pick(0, Task{}, vs), b.Pick(0, Task{}, vs)
		if pa != pb {
			t.Fatalf("pick %d: same seed diverged: %d vs %d", i, pa, pb)
		}
		if pa < 0 || pa >= len(vs) {
			t.Fatalf("pick %d out of range: %d", i, pa)
		}
	}
	// Two idle nodes, two loaded: each idle node wins every pair it appears
	// in (ties between them break to node 0), node 2 wins only the {2,3}
	// pair, and node 3 — heaviest and highest-indexed — can never win.
	counts := make([]int, 4)
	p := NewPowerOfTwo(1)
	vs2 := views(0, 0, 100, 100)
	for i := 0; i < 4096; i++ {
		counts[p.Pick(0, Task{}, vs2)]++
	}
	for n, wantSome := range []bool{true, true, true, false} {
		if wantSome && counts[n] == 0 {
			t.Errorf("node %d never picked: %v", n, counts)
		}
		if !wantSome && counts[n] != 0 {
			t.Errorf("node %d picked %d times despite always losing its pairs", n, counts[n])
		}
	}
	if counts[0] <= counts[2] || counts[1] <= counts[2] {
		t.Errorf("idle nodes should dominate the loaded tail: %v", counts)
	}
	if got := NewPowerOfTwo(1).Pick(0, Task{}, views(5)); got != 0 {
		t.Errorf("single-node fleet pick = %d, want 0", got)
	}
}

func TestClassAffinityHomesAndSpills(t *testing.T) {
	pure := ClassAffinity{}
	vs := views(50, 0, 0, 0)
	for class := 0; class < 8; class++ {
		if got, want := pure.Pick(0, Task{Class: class}, vs), class%4; got != want {
			t.Errorf("class %d -> node %d, want %d", class, got, want)
		}
	}
	// With a spill bound, a deep home inbox overflows to the shortest queue.
	spill := ClassAffinity{Spill: 8}
	if got := spill.Pick(0, Task{Class: 0}, vs); got != 1 {
		t.Errorf("spill pick = %d, want 1", got)
	}
	if got := spill.Pick(0, Task{Class: 1}, vs); got != 1 {
		t.Errorf("under-bound home abandoned: pick = %d, want 1", got)
	}
}

func TestNewPolicyRegistry(t *testing.T) {
	for _, name := range PolicyNames() {
		mk, err := NewPolicy(name, 3)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		p := mk()
		if p.Name() != name {
			t.Errorf("NewPolicy(%q) built %q", name, p.Name())
		}
		if mk() == nil {
			t.Errorf("NewPolicy(%q) factory not reusable", name)
		}
	}
	if _, err := NewPolicy("bogus", 0); err == nil {
		t.Error("NewPolicy(bogus) did not fail")
	}
}
