package cuda

import "repro/internal/sim"

// Event is a CUDA event: recorded into a stream, it captures the simulated
// time when all prior work in that stream has completed
// (cudaEventRecord/cudaEventSynchronize/cudaEventElapsedTime).
type Event struct {
	recorded bool
	fired    bool
	at       sim.Time
	sig      sim.Signal
}

// NewEvent creates an unrecorded event (cudaEventCreate).
func (c *Context) NewEvent() *Event { return &Event{} }

// Record enqueues the event on the stream: it fires when every command
// enqueued before it has completed.
func (e *Event) Record(host *sim.Proc, s *Stream) {
	e.recorded = true
	e.fired = false
	s.enqueue(host, func(p *sim.Proc) {
		e.fired = true
		e.at = p.Now()
		e.sig.Broadcast()
	})
}

// Fired reports whether the event has completed (cudaEventQuery).
func (e *Event) Fired() bool { return e.fired }

// Synchronize blocks the host until the event fires
// (cudaEventSynchronize). Synchronizing an unrecorded event returns
// immediately, as CUDA does.
func (e *Event) Synchronize(host *sim.Proc) {
	if !e.recorded {
		return
	}
	for !e.fired {
		e.sig.Wait(host)
	}
}

// Time returns the simulated timestamp at which the event fired; only
// meaningful after it fired.
func (e *Event) Time() sim.Time { return e.at }

// ElapsedTime returns the cycles between two fired events
// (cudaEventElapsedTime, which reports milliseconds; callers convert).
func ElapsedTime(start, end *Event) sim.Time { return end.at - start.at }
