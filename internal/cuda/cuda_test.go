package cuda

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/sim"
)

func newCtx(smms int) (*sim.Engine, *Context) {
	eng := sim.New()
	cfg := gpu.TitanX()
	cfg.NumSMMs = smms
	dev := gpu.NewDevice(eng, cfg)
	bus := pcie.New(eng, pcie.Default())
	return eng, NewContext(eng, dev, bus, DefaultConfig())
}

func TestStreamFIFO(t *testing.T) {
	eng, ctx := newCtx(2)
	var order []string
	eng.Spawn("host", func(p *sim.Proc) {
		s := ctx.NewStream()
		s.MemcpyH2D(p, 1024, func() { order = append(order, "copy1") })
		s.Launch(p, gpu.LaunchSpec{
			Name: "k", GridDim: 1, BlockThreads: 32,
			Fn: func(c *gpu.Ctx) { c.Compute(100); order = append(order, "kernel") },
		})
		s.MemcpyD2H(p, 1024, func() { order = append(order, "copy2") })
		s.Sync(p)
		order = append(order, "sync")
	})
	eng.Run()
	want := []string{"copy1", "kernel", "copy2", "sync"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStreamsOverlap(t *testing.T) {
	eng, ctx := newCtx(2)
	var k1done, k2done sim.Time
	eng.Spawn("host", func(p *sim.Proc) {
		s1, s2 := ctx.NewStream(), ctx.NewStream()
		h1 := s1.Launch(p, gpu.LaunchSpec{Name: "k1", GridDim: 1, BlockThreads: 32,
			Fn: func(c *gpu.Ctx) { c.Compute(10000) }})
		h2 := s2.Launch(p, gpu.LaunchSpec{Name: "k2", GridDim: 1, BlockThreads: 32,
			Fn: func(c *gpu.Ctx) { c.Compute(10000) }})
		h1.Wait(p)
		k1done = eng.Now()
		h2.Wait(p)
		k2done = eng.Now()
	})
	eng.Run()
	// Different streams overlap: both finish ~together, not serialized.
	if k2done > k1done+6000 {
		t.Fatalf("streams serialized: k1=%v k2=%v", k1done, k2done)
	}
}

func TestHyperQLimit(t *testing.T) {
	eng, ctx := newCtx(24)
	running, maxRunning := 0, 0
	eng.Spawn("host", func(p *sim.Proc) {
		var handles []*KernelHandle
		for i := 0; i < 64; i++ {
			s := ctx.NewStream()
			handles = append(handles, s.Launch(p, gpu.LaunchSpec{
				Name: "nk", GridDim: 1, BlockThreads: 32,
				Fn: func(c *gpu.Ctx) {
					running++
					if running > maxRunning {
						maxRunning = running
					}
					c.Compute(500000) // long enough that all 64 launches pile up
					running--
				},
			}))
		}
		for _, h := range handles {
			h.Wait(p)
		}
	})
	eng.Run()
	if maxRunning > ctx.Cfg.MaxConnections {
		t.Fatalf("max concurrent kernels = %d, exceeds HyperQ limit %d", maxRunning, ctx.Cfg.MaxConnections)
	}
	if maxRunning < ctx.Cfg.MaxConnections/2 {
		t.Fatalf("max concurrent kernels = %d, expected rough saturation of %d connections", maxRunning, ctx.Cfg.MaxConnections)
	}
	if ctx.KernelsLaunched != 64 {
		t.Errorf("KernelsLaunched = %d, want 64", ctx.KernelsLaunched)
	}
}

func TestLaunchOverheadApplied(t *testing.T) {
	eng, ctx := newCtx(1)
	var done sim.Time
	eng.Spawn("host", func(p *sim.Proc) {
		s := ctx.NewStream()
		h := s.Launch(p, gpu.LaunchSpec{Name: "k", GridDim: 1, BlockThreads: 32,
			Fn: func(c *gpu.Ctx) { c.Compute(100) }})
		h.Wait(p)
		done = eng.Now()
	})
	eng.Run()
	min := ctx.Cfg.EnqueueCost + ctx.Cfg.LaunchOverhead + 100
	if done < min {
		t.Fatalf("kernel finished at %v, before overheads (%v) allow", done, min)
	}
}

func TestLaunchPersistentBypassesHyperQ(t *testing.T) {
	eng, ctx := newCtx(1)
	k := ctx.LaunchPersistent(gpu.LaunchSpec{
		Name: "daemon", GridDim: 2, BlockThreads: 1024, RegsPerThread: 32,
		Fn: func(c *gpu.Ctx) { c.Compute(1000) },
	})
	if ctx.ActiveKernelSlots() != ctx.Cfg.MaxConnections {
		t.Errorf("persistent launch consumed a HyperQ slot")
	}
	eng.Run()
	if !k.Finished() {
		t.Fatal("persistent kernel did not finish")
	}
}

func TestMemcpySyncTiming(t *testing.T) {
	eng, ctx := newCtx(1)
	var done sim.Time
	eng.Spawn("host", func(p *sim.Proc) {
		ctx.MemcpyH2DSync(p, 12000)
		done = eng.Now()
	})
	eng.Run()
	want := ctx.Bus.MinTransferTime(12000)
	if done != want {
		t.Fatalf("sync copy took %v, want %v", done, want)
	}
}

func TestStreamSyncIdempotentWhenIdle(t *testing.T) {
	eng, ctx := newCtx(1)
	eng.Spawn("host", func(p *sim.Proc) {
		s := ctx.NewStream()
		s.Sync(p) // no commands: returns immediately
		if eng.Now() != 0 {
			t.Errorf("Sync on idle stream advanced time to %v", eng.Now())
		}
	})
	eng.Run()
}

func TestManyStreamsDeterministic(t *testing.T) {
	run := func() sim.Time {
		eng, ctx := newCtx(4)
		eng.Spawn("host", func(p *sim.Proc) {
			var hs []*KernelHandle
			for i := 0; i < 40; i++ {
				s := ctx.NewStream()
				n := 100 + i*13
				hs = append(hs, s.Launch(p, gpu.LaunchSpec{
					Name: "k", GridDim: 1 + i%3, BlockThreads: 64,
					Fn: func(c *gpu.Ctx) { c.Compute(float64(n)); c.GlobalRead(256) },
				}))
			}
			for _, h := range hs {
				h.Wait(p)
			}
		})
		return eng.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
