package cuda

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
)

func TestMallocFree(t *testing.T) {
	_, ctx := newCtx(1)
	p1, err := ctx.Malloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ctx.Malloc(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("allocations alias")
	}
	info := ctx.MemGetInfo()
	if info.Live != 2 {
		t.Fatalf("Live = %d, want 2", info.Live)
	}
	// 1000 rounds to 1024 (256-byte alignment).
	if info.InUse != 1024+64*1024 {
		t.Fatalf("InUse = %d, want %d", info.InUse, 1024+64*1024)
	}
	if err := ctx.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(p2); err != nil {
		t.Fatal(err)
	}
	if got := ctx.MemGetInfo(); got.InUse != 0 || got.Live != 0 {
		t.Fatalf("leak after frees: %+v", got)
	}
}

func TestMallocOOM(t *testing.T) {
	_, ctx := newCtx(1)
	cap := ctx.MemGetInfo().Capacity
	p, err := ctx.Malloc(cap - 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Malloc(1 << 20); err == nil {
		t.Fatal("expected out-of-memory error")
	}
	if err := ctx.Free(p); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Malloc(1 << 20); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
}

func TestFreeInvalidPointer(t *testing.T) {
	_, ctx := newCtx(1)
	if err := ctx.Free(DevPtr(12345)); err == nil {
		t.Fatal("expected invalid-pointer error")
	}
}

func TestMallocNonPositive(t *testing.T) {
	_, ctx := newCtx(1)
	for _, n := range []int64{0, -5} {
		if _, err := ctx.Malloc(n); err == nil {
			t.Fatalf("Malloc(%d) succeeded", n)
		}
	}
}

func TestDoubleFree(t *testing.T) {
	_, ctx := newCtx(1)
	p, _ := ctx.Malloc(512)
	if err := ctx.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(p); err == nil {
		t.Fatal("double free succeeded")
	}
}

func TestEventTimesKernel(t *testing.T) {
	eng, ctx := newCtx(1)
	var elapsed sim.Time
	eng.Spawn("host", func(p *sim.Proc) {
		s := ctx.NewStream()
		start, end := ctx.NewEvent(), ctx.NewEvent()
		start.Record(p, s)
		s.Launch(p, gpu.LaunchSpec{Name: "k", GridDim: 1, BlockThreads: 32,
			Fn: func(c *gpu.Ctx) { c.Compute(10000) }})
		end.Record(p, s)
		end.Synchronize(p)
		if !start.Fired() || !end.Fired() {
			t.Error("events did not fire")
		}
		elapsed = ElapsedTime(start, end)
	})
	eng.Run()
	// The kernel's 10000 compute cycles plus launch overhead.
	if elapsed < 10000 || elapsed > 30000 {
		t.Fatalf("ElapsedTime = %v, want ~10000 + overheads", elapsed)
	}
}

func TestEventSynchronizeUnrecorded(t *testing.T) {
	eng, ctx := newCtx(1)
	eng.Spawn("host", func(p *sim.Proc) {
		e := ctx.NewEvent()
		e.Synchronize(p) // must not block
		if eng.Now() != 0 {
			t.Errorf("Synchronize on unrecorded event advanced time")
		}
	})
	eng.Run()
}

func TestEventOrderingAcrossCommands(t *testing.T) {
	eng, ctx := newCtx(1)
	eng.Spawn("host", func(p *sim.Proc) {
		s := ctx.NewStream()
		e := ctx.NewEvent()
		s.MemcpyH2D(p, 1<<20, nil) // ~95 us on the bus
		e.Record(p, s)
		e.Synchronize(p)
		if eng.Now() < ctx.Bus.MinTransferTime(1<<20) {
			t.Fatalf("event fired at %v, before the preceding copy could finish", eng.Now())
		}
	})
	eng.Run()
}
