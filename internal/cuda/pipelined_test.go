package cuda

import (
	"testing"

	"repro/internal/sim"
)

func TestPipelinedCopiesOverlapLatency(t *testing.T) {
	// N small pipelined copies cost ~N x issue-gap + one latency, not
	// N x latency: the property behind Pagoda's spawn rate (§4.2.1).
	run := func(pipelined bool, n int) sim.Time {
		eng, ctx := newCtx(1)
		eng.Spawn("host", func(p *sim.Proc) {
			s := ctx.NewStream()
			for i := 0; i < n; i++ {
				if pipelined {
					s.MemcpyH2DPipelined(p, 192, nil)
				} else {
					s.MemcpyH2D(p, 192, nil)
				}
			}
			s.Sync(p)
		})
		return eng.Run()
	}
	const n = 64
	plain := run(false, n)
	pipe := run(true, n)
	if pipe*3 > plain {
		t.Fatalf("pipelined copies too slow: pipelined=%v plain=%v", pipe, plain)
	}
}

func TestPipelinedDeliveryInIssueOrder(t *testing.T) {
	eng, ctx := newCtx(1)
	var order []int
	eng.Spawn("host", func(p *sim.Proc) {
		s := ctx.NewStream()
		// Vary sizes wildly: bandwidth sharing would complete small copies
		// first, but delivery must stay FIFO.
		sizes := []int{100000, 100, 50000, 10, 200000, 1000}
		for i, sz := range sizes {
			i := i
			s.MemcpyH2DPipelined(p, sz, func() { order = append(order, i) })
		}
		s.Sync(p)
	})
	eng.Run()
	if len(order) != 6 {
		t.Fatalf("deliveries = %v, want 6", order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order = %v, want FIFO", order)
		}
	}
}

func TestPipelinedSyncWaitsForDeliveries(t *testing.T) {
	eng, ctx := newCtx(1)
	delivered := false
	var syncTime sim.Time
	eng.Spawn("host", func(p *sim.Proc) {
		s := ctx.NewStream()
		s.MemcpyH2DPipelined(p, 1<<20, func() { delivered = true })
		s.Sync(p)
		if !delivered {
			t.Error("Sync returned before pipelined delivery")
		}
		syncTime = eng.Now()
	})
	eng.Run()
	min := ctx.Bus.MinTransferTime(1 << 20)
	if syncTime < min {
		t.Fatalf("Sync returned at %v, before the transfer could finish (%v)", syncTime, min)
	}
}

func TestPipelinedNilCallback(t *testing.T) {
	eng, ctx := newCtx(1)
	eng.Spawn("host", func(p *sim.Proc) {
		s := ctx.NewStream()
		s.MemcpyH2DPipelined(p, 128, nil) // must not panic
		s.Sync(p)
	})
	eng.Run()
}

func TestBusyReflectsPipelined(t *testing.T) {
	eng, ctx := newCtx(1)
	eng.Spawn("host", func(p *sim.Proc) {
		s := ctx.NewStream()
		if s.Busy() {
			t.Error("new stream is busy")
		}
		s.MemcpyH2DPipelined(p, 1<<16, nil)
		if !s.Busy() {
			t.Error("stream with in-flight pipelined copy not busy")
		}
		s.Sync(p)
		if s.Busy() {
			t.Error("stream busy after Sync")
		}
	})
	eng.Run()
}
