package cuda

import (
	"fmt"
	"sort"
)

// DevPtr is an opaque device-memory handle (the cudaMalloc return value).
// The simulator does not store data behind it — workloads keep their data in
// Go slices — but allocation sizes are tracked so out-of-memory behaviour
// and footprint accounting match a real 12 GB device.
type DevPtr int64

// span is a free region of device address space.
type span struct {
	base DevPtr
	size int64
}

// allocator is a first-fit free-list over the device address space: device
// allocators are coarse (256-byte alignment) and allocation itself is
// host-side bookkeeping, so a free list models cudaMalloc faithfully enough
// for footprint and OOM behaviour. Freed spans are coalesced with adjacent
// free spans and reused by later Mallocs, so alloc/free churn in a
// long-running service stays within a bounded address range instead of
// walking the bump pointer off the end of the device.
type allocator struct {
	capacity int64
	inUse    int64
	// next is the high-water bump pointer; allocations fall back to it when
	// no free span fits. Frees that touch it shrink it back down.
	next DevPtr
	// free holds reusable spans sorted by base, with no two adjacent
	// (coalescing merges neighbours on Free).
	free []span
	// live maps base -> size.
	live map[DevPtr]int64
	// frees counts released allocations (diagnostics).
	allocs, frees int
}

const devAlign = 256

// MemoryInfo reports the device-memory footprint (cudaMemGetInfo).
type MemoryInfo struct {
	Capacity int64
	InUse    int64
	Free     int64
	Live     int
	// HighWater is the top of the touched address range; bounded reuse keeps
	// it near InUse even under heavy Malloc/Free churn.
	HighWater int64
	// FreeSpans is the current fragmentation of the reuse list.
	FreeSpans int
}

// initAllocator sizes the heap; called lazily by Malloc.
func (c *Context) initAllocator() {
	if c.mem == nil {
		capacity := c.Cfg.DeviceMemBytes
		if capacity <= 0 {
			capacity = 12 << 30
		}
		c.mem = &allocator{
			capacity: capacity,
			next:     devAlign,
			live:     map[DevPtr]int64{},
		}
	}
}

// Malloc reserves n bytes of device memory (cudaMalloc). It returns an
// error when the device is exhausted, as cudaMalloc does.
func (c *Context) Malloc(n int64) (DevPtr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("cuda: Malloc(%d): non-positive size", n)
	}
	c.initAllocator()
	m := c.mem
	rounded := (n + devAlign - 1) / devAlign * devAlign
	if m.inUse+rounded > m.capacity {
		return 0, fmt.Errorf("cuda: out of device memory: %d requested, %d free",
			rounded, m.capacity-m.inUse)
	}
	p, ok := m.take(rounded)
	if !ok {
		return 0, fmt.Errorf("cuda: device address space exhausted (fragmentation): %d requested, %d free in %d spans",
			rounded, m.capacity-m.inUse, len(m.free))
	}
	m.live[p] = rounded
	m.inUse += rounded
	m.allocs++
	return p, nil
}

// take carves a block of `size` bytes, first-fit from the free list, falling
// back to the bump pointer.
func (m *allocator) take(size int64) (DevPtr, bool) {
	for i := range m.free {
		if m.free[i].size >= size {
			p := m.free[i].base
			if m.free[i].size == size {
				m.free = append(m.free[:i], m.free[i+1:]...)
			} else {
				m.free[i].base += DevPtr(size)
				m.free[i].size -= size
			}
			return p, true
		}
	}
	if int64(m.next)+size > devAlign+m.capacity {
		return 0, false
	}
	p := m.next
	m.next += DevPtr(size)
	return p, true
}

// Free releases a device allocation (cudaFree). Freeing an unknown pointer
// returns an error (cudaErrorInvalidDevicePointer). The released span is
// merged with adjacent free spans, and a span that reaches the high-water
// mark shrinks it, so churn does not grow the touched address range.
func (c *Context) Free(p DevPtr) error {
	c.initAllocator()
	m := c.mem
	sz, ok := m.live[p]
	if !ok {
		return fmt.Errorf("cuda: Free(%#x): not a live device pointer", int64(p))
	}
	delete(m.live, p)
	m.inUse -= sz
	m.frees++
	m.release(p, sz)
	return nil
}

// release inserts [base, base+size) into the sorted free list, coalescing
// with both neighbours at 256-byte alignment.
func (m *allocator) release(base DevPtr, size int64) {
	i := sort.Search(len(m.free), func(i int) bool { return m.free[i].base > base })
	// Merge with predecessor if contiguous.
	if i > 0 && m.free[i-1].base+DevPtr(m.free[i-1].size) == base {
		i--
		m.free[i].size += size
	} else {
		m.free = append(m.free, span{})
		copy(m.free[i+1:], m.free[i:])
		m.free[i] = span{base: base, size: size}
	}
	// Merge with successor if contiguous.
	if i+1 < len(m.free) && m.free[i].base+DevPtr(m.free[i].size) == m.free[i+1].base {
		m.free[i].size += m.free[i+1].size
		m.free = append(m.free[:i+1], m.free[i+2:]...)
	}
	// A span touching the bump pointer is returned to the untouched region.
	if m.free[i].base+DevPtr(m.free[i].size) == m.next {
		m.next = m.free[i].base
		m.free = m.free[:i]
	}
}

// MemGetInfo reports the footprint (cudaMemGetInfo).
func (c *Context) MemGetInfo() MemoryInfo {
	c.initAllocator()
	return MemoryInfo{
		Capacity:  c.mem.capacity,
		InUse:     c.mem.inUse,
		Free:      c.mem.capacity - c.mem.inUse,
		Live:      len(c.mem.live),
		HighWater: int64(c.mem.next) - devAlign,
		FreeSpans: len(c.mem.free),
	}
}
