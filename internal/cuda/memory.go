package cuda

import "fmt"

// DevPtr is an opaque device-memory handle (the cudaMalloc return value).
// The simulator does not store data behind it — workloads keep their data in
// Go slices — but allocation sizes are tracked so out-of-memory behaviour
// and footprint accounting match a real 12 GB device.
type DevPtr int64

// allocator is a simple first-fit free-list over the device address space:
// device allocators are coarse (256-byte alignment) and allocation itself is
// host-side bookkeeping, so a free list models cudaMalloc faithfully enough
// for footprint and OOM behaviour.
type allocator struct {
	capacity int64
	inUse    int64
	next     DevPtr
	// live maps base -> size.
	live map[DevPtr]int64
	// frees counts released allocations (diagnostics).
	allocs, frees int
}

const devAlign = 256

// MemoryInfo reports the device-memory footprint (cudaMemGetInfo).
type MemoryInfo struct {
	Capacity int64
	InUse    int64
	Free     int64
	Live     int
}

// initAllocator sizes the heap; called lazily by Malloc.
func (c *Context) initAllocator() {
	if c.mem == nil {
		capacity := c.Cfg.DeviceMemBytes
		if capacity <= 0 {
			capacity = 12 << 30
		}
		c.mem = &allocator{
			capacity: capacity,
			next:     devAlign,
			live:     map[DevPtr]int64{},
		}
	}
}

// Malloc reserves n bytes of device memory (cudaMalloc). It returns an
// error when the device is exhausted, as cudaMalloc does.
func (c *Context) Malloc(n int64) (DevPtr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("cuda: Malloc(%d): non-positive size", n)
	}
	c.initAllocator()
	rounded := (n + devAlign - 1) / devAlign * devAlign
	if c.mem.inUse+rounded > c.mem.capacity {
		return 0, fmt.Errorf("cuda: out of device memory: %d requested, %d free",
			rounded, c.mem.capacity-c.mem.inUse)
	}
	p := c.mem.next
	c.mem.next += DevPtr(rounded)
	c.mem.live[p] = rounded
	c.mem.inUse += rounded
	c.mem.allocs++
	return p, nil
}

// Free releases a device allocation (cudaFree). Freeing an unknown pointer
// returns an error (cudaErrorInvalidDevicePointer).
func (c *Context) Free(p DevPtr) error {
	c.initAllocator()
	sz, ok := c.mem.live[p]
	if !ok {
		return fmt.Errorf("cuda: Free(%#x): not a live device pointer", int64(p))
	}
	delete(c.mem.live, p)
	c.mem.inUse -= sz
	c.mem.frees++
	return nil
}

// MemGetInfo reports the footprint (cudaMemGetInfo).
func (c *Context) MemGetInfo() MemoryInfo {
	c.initAllocator()
	return MemoryInfo{
		Capacity: c.mem.capacity,
		InUse:    c.mem.inUse,
		Free:     c.mem.capacity - c.mem.inUse,
		Live:     len(c.mem.live),
	}
}
