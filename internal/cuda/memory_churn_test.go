package cuda

import "testing"

// TestMallocFreeChurnBounded is the regression test for the bump-pointer
// leak: Malloc used to carve every allocation from a monotonically growing
// `next` pointer and never reuse freed address space, so steady Malloc/Free
// churn in a long-running service walked off the 12 GB device while InUse
// stayed low. With free-list reuse the touched address range stays bounded
// by the peak working set across a million alloc/free cycles.
func TestMallocFreeChurnBounded(t *testing.T) {
	_, ctx := newCtx(1)
	sizes := []int64{300, 4 << 10, 1 << 20, 777, 64 << 10}
	const cycles = 1_000_000
	var peak int64
	for i := 0; i < cycles; i++ {
		n := sizes[i%len(sizes)]
		p, err := ctx.Malloc(n)
		if err != nil {
			t.Fatalf("cycle %d: Malloc(%d): %v", i, n, err)
		}
		if hw := ctx.MemGetInfo().HighWater; hw > peak {
			peak = hw
		}
		if err := ctx.Free(p); err != nil {
			t.Fatalf("cycle %d: Free: %v", i, err)
		}
	}
	info := ctx.MemGetInfo()
	if info.InUse != 0 || info.Live != 0 {
		t.Fatalf("leak after churn: %+v", info)
	}
	// The working set is a single live allocation (max 1 MiB); the touched
	// address range must stay within a small constant of that, nowhere near
	// the 12 GB capacity the bump pointer used to march across.
	const bound = 4 << 20
	if peak > bound {
		t.Fatalf("high-water mark reached %d bytes over %d alloc/free cycles, want <= %d (bounded reuse)",
			peak, cycles, bound)
	}
}

// TestMallocFreeChurnInterleaved keeps several allocations live while
// churning others, so the free list must actually be searched (first-fit)
// and coalesced rather than only shrinking the bump pointer.
func TestMallocFreeChurnInterleaved(t *testing.T) {
	_, ctx := newCtx(1)
	var held []DevPtr
	for i := 0; i < 8; i++ {
		p, err := ctx.Malloc(128 << 10)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, p)
	}
	// Free every other held block, punching holes below the high-water mark.
	for i := 0; i < len(held); i += 2 {
		if err := ctx.Free(held[i]); err != nil {
			t.Fatal(err)
		}
	}
	hw := ctx.MemGetInfo().HighWater
	// Churn allocations that fit in the holes: the high-water mark must not
	// move.
	for i := 0; i < 100_000; i++ {
		p, err := ctx.Malloc(128 << 10)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := ctx.Free(p); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if got := ctx.MemGetInfo().HighWater; got != hw {
		t.Fatalf("high-water mark grew from %d to %d while holes were reusable", hw, got)
	}
}

// TestFreeCoalescing frees three adjacent blocks in an order that exercises
// predecessor and successor merges, then reuses the merged span in one piece.
func TestFreeCoalescing(t *testing.T) {
	_, ctx := newCtx(1)
	a, _ := ctx.Malloc(4096)
	b, _ := ctx.Malloc(4096)
	c, _ := ctx.Malloc(4096)
	top, _ := ctx.Malloc(4096) // pins the bump pointer above c
	for _, p := range []DevPtr{a, c, b} { // b's free must merge both sides
		if err := ctx.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if spans := ctx.MemGetInfo().FreeSpans; spans != 1 {
		t.Fatalf("FreeSpans = %d after adjacent frees, want 1 (coalesced)", spans)
	}
	big, err := ctx.Malloc(3 * 4096)
	if err != nil {
		t.Fatalf("coalesced span not reusable: %v", err)
	}
	if big != a {
		t.Fatalf("coalesced allocation at %#x, want reuse of base %#x", int64(big), int64(a))
	}
	ctx.Free(big)
	ctx.Free(top)
	// Everything freed: spans collapse back into the bump region.
	info := ctx.MemGetInfo()
	if info.HighWater != 0 || info.FreeSpans != 0 {
		t.Fatalf("address space not fully reclaimed: %+v", info)
	}
}
