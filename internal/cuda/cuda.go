// Package cuda is a miniature CUDA runtime over the simulated device: it
// provides streams with FIFO semantics, asynchronous host<->device memory
// copies over the PCIe model, kernel launches with driver overhead, and the
// HyperQ concurrent-kernel limit (CUDA_DEVICE_MAX_CONNECTIONS).
//
// Host code runs as simulation processes (sim.Proc); the stream commands run
// on per-stream worker processes, so host enqueue is cheap and asynchronous
// exactly as in CUDA.
package cuda

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// Config holds runtime-layer parameters, in cycles.
type Config struct {
	// MaxConnections caps device-side kernel concurrency (HyperQ). The paper
	// sets CUDA_DEVICE_MAX_CONNECTIONS=32.
	MaxConnections int
	// LaunchOverhead is the driver + doorbell cost between a kernel reaching
	// the head of its stream and its threadblocks becoming dispatchable.
	LaunchOverhead sim.Time
	// EnqueueCost is the host-side cost of an async copy API call.
	EnqueueCost sim.Time
	// LaunchCPUCost is the host-side cost of cudaLaunchKernel — several
	// times an async-copy enqueue on real drivers, and the dominant
	// per-task cost when thousands of narrow kernels are launched (the
	// effect Pagoda's 1-memcpy taskSpawn avoids).
	LaunchCPUCost sim.Time
	// DeviceMemBytes sizes the device heap for Malloc/Free (12 GB on the
	// Titan X).
	DeviceMemBytes int64
	// CopyIssueGap is the minimum spacing between successive DMA transfers
	// issued by one stream. Unlike plain MemcpyH2D, pipelined copies overlap
	// their PCIe latency: the DMA engine issues the next transfer as soon as
	// the previous one is on the wire.
	CopyIssueGap sim.Time
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{
		MaxConnections: 32,
		LaunchOverhead: 4000, // ~4 us device-side launch-to-dispatch
		EnqueueCost:    600,  // ~0.6 us per async copy call
		LaunchCPUCost:  1600, // ~1.6 us host-side per kernel launch
		CopyIssueGap:   400,  // ~0.4 us between small pipelined DMA issues
		DeviceMemBytes: 12 << 30,
	}
}

// Context owns a device, a PCIe bus and the HyperQ connection pool.
type Context struct {
	Eng *sim.Engine
	Dev *gpu.Device
	Bus *pcie.Bus
	Cfg Config

	hyperQ  *sim.Sem
	streams []*Stream
	mem     *allocator

	// KernelsLaunched counts kernels that reached the device (diagnostics).
	KernelsLaunched int
}

// NewContext assembles a runtime over the given device and bus.
func NewContext(eng *sim.Engine, dev *gpu.Device, bus *pcie.Bus, cfg Config) *Context {
	if cfg.MaxConnections <= 0 {
		panic("cuda: MaxConnections must be positive")
	}
	return &Context{Eng: eng, Dev: dev, Bus: bus, Cfg: cfg, hyperQ: sim.NewSem(cfg.MaxConnections)}
}

// command is one queued stream operation.
type command func(p *sim.Proc)

// Stream is a CUDA stream: commands issued to it run FIFO, each completing
// before the next starts; commands in different streams may overlap.
type Stream struct {
	ctx      *Context
	id       int
	queue    []command
	notEmpty sim.Signal
	inFlight int // queued + running commands
	idleSig  sim.Signal

	// Pipelined-copy delivery ordering: completions are held back until all
	// earlier pipelined copies on this stream have delivered, preserving the
	// CUDA-stream FIFO guarantee while transfers overlap on the bus.
	issueSeq   int64
	deliverSeq int64
	held       map[int64]func()
	pipelined  int // issued but not yet delivered pipelined copies
}

// NewStream creates a stream and starts its worker process.
func (c *Context) NewStream() *Stream {
	s := &Stream{ctx: c, id: len(c.streams)}
	c.streams = append(c.streams, s)
	c.Eng.Spawn(fmt.Sprintf("stream%d", s.id), s.worker)
	return s
}

func (s *Stream) worker(p *sim.Proc) {
	for {
		for len(s.queue) == 0 {
			s.notEmpty.Wait(p)
		}
		cmd := s.queue[0]
		s.queue = s.queue[1:]
		cmd(p)
		s.inFlight--
		if s.inFlight == 0 {
			s.idleSig.Broadcast()
		}
	}
}

// enqueue appends a command, charging the host's enqueue cost to `host`.
func (s *Stream) enqueue(host *sim.Proc, cmd command) {
	host.Sleep(s.ctx.Cfg.EnqueueCost)
	s.queue = append(s.queue, cmd)
	s.inFlight++
	s.notEmpty.Broadcast()
}

// Sync blocks the host process until every command enqueued so far has
// completed (cudaStreamSynchronize), including pipelined copy deliveries.
func (s *Stream) Sync(host *sim.Proc) {
	for s.inFlight > 0 || s.pipelined > 0 {
		s.idleSig.Wait(host)
	}
}

// Busy reports whether the stream has queued or running commands.
func (s *Stream) Busy() bool { return s.inFlight > 0 || s.pipelined > 0 }

// MemcpyH2DPipelined enqueues a small host-to-device copy that overlaps its
// PCIe latency with later copies on the same stream: the stream only
// serializes the DMA issue gap, and completions are delivered strictly in
// issue order. This is the transfer mode behind Pagoda's one-memcpy-per-
// TaskTable-entry spawning (§4.2.1): back-to-back entry copies approach the
// DMA issue rate instead of paying the full bus latency each.
func (s *Stream) MemcpyH2DPipelined(host *sim.Proc, bytes int, onDone func()) {
	s.enqueue(host, func(p *sim.Proc) {
		seq := s.issueSeq
		s.issueSeq++
		s.pipelined++
		p.Sleep(s.ctx.Cfg.CopyIssueGap)
		s.ctx.Bus.TransferAsync(pcie.HostToDevice, bytes, func() {
			s.deliver(seq, onDone)
		})
	})
}

// deliver runs completion callbacks in issue order.
func (s *Stream) deliver(seq int64, fn func()) {
	if s.held == nil {
		s.held = make(map[int64]func())
	}
	if fn == nil {
		fn = func() {}
	}
	s.held[seq] = fn
	for {
		f, ok := s.held[s.deliverSeq]
		if !ok {
			return
		}
		delete(s.held, s.deliverSeq)
		s.deliverSeq++
		f()
		s.pipelined--
		if s.inFlight == 0 && s.pipelined == 0 {
			s.idleSig.Broadcast()
		}
	}
}

// MemcpyH2D enqueues an async host-to-device copy of `bytes`; onDone (may be
// nil) runs when the copy completes, before any later command in the stream
// starts. The callback is where callers flip device-visible state, giving
// exactly the CUDA-streams guarantee Pagoda's TaskTable relies on: data from
// an earlier copy is device-visible before a later copy's effects.
func (s *Stream) MemcpyH2D(host *sim.Proc, bytes int, onDone func()) {
	s.enqueue(host, func(p *sim.Proc) {
		s.ctx.Bus.Transfer(p, pcie.HostToDevice, bytes)
		if onDone != nil {
			onDone()
		}
	})
}

// MemcpyD2H enqueues an async device-to-host copy.
func (s *Stream) MemcpyD2H(host *sim.Proc, bytes int, onDone func()) {
	s.enqueue(host, func(p *sim.Proc) {
		s.ctx.Bus.Transfer(p, pcie.DeviceToHost, bytes)
		if onDone != nil {
			onDone()
		}
	})
}

// MemcpyH2DSync performs a synchronous copy from the host process.
func (c *Context) MemcpyH2DSync(host *sim.Proc, bytes int) {
	c.Bus.Transfer(host, pcie.HostToDevice, bytes)
}

// MemcpyD2HSync performs a synchronous copy to the host process.
func (c *Context) MemcpyD2HSync(host *sim.Proc, bytes int) {
	c.Bus.Transfer(host, pcie.DeviceToHost, bytes)
}

// KernelHandle tracks a kernel launched through a stream.
type KernelHandle struct {
	spec     gpu.LaunchSpec
	kernel   *gpu.Kernel // nil until dispatched
	finished bool
	doneSig  sim.Signal
}

// Finished reports completion.
func (h *KernelHandle) Finished() bool { return h.finished }

// Wait parks the host until the kernel completes (cudaEventSynchronize on a
// post-kernel event).
func (h *KernelHandle) Wait(host *sim.Proc) {
	for !h.finished {
		h.doneSig.Wait(host)
	}
}

// Kernel returns the device kernel once dispatched (nil before).
func (h *KernelHandle) Kernel() *gpu.Kernel { return h.kernel }

// Launch enqueues a kernel on the stream. The kernel consumes a HyperQ
// connection from launch overhead until completion; at most MaxConnections
// kernels are concurrently resident device-wide.
func (s *Stream) Launch(host *sim.Proc, spec gpu.LaunchSpec) *KernelHandle {
	return s.LaunchHooked(host, spec, nil)
}

// LaunchHooked is Launch with an observation hook: onDispatch (may be nil)
// runs at the virtual instant the kernel's threadblocks become dispatchable —
// after the stream reached it, a HyperQ connection was acquired and the
// launch overhead elapsed. Open-loop latency accounting uses it to split a
// task's submit-to-complete time into queue wait and service. The hook runs
// on the stream worker and must not block.
func (s *Stream) LaunchHooked(host *sim.Proc, spec gpu.LaunchSpec, onDispatch func()) *KernelHandle {
	h := &KernelHandle{spec: spec}
	c := s.ctx
	host.Sleep(c.Cfg.LaunchCPUCost - c.Cfg.EnqueueCost) // extra driver work vs a copy enqueue
	s.enqueue(host, func(p *sim.Proc) {
		c.hyperQ.Acquire(p)
		p.Sleep(c.Cfg.LaunchOverhead)
		h.kernel = c.Dev.Launch(spec)
		c.KernelsLaunched++
		if onDispatch != nil {
			onDispatch()
		}
		h.kernel.WaitDone(p)
		c.hyperQ.Release()
		h.finished = true
		h.doneSig.Broadcast()
	})
	return h
}

// LaunchPersistent dispatches a kernel directly to the device, bypassing
// streams and the HyperQ pool. This is how a daemon kernel such as Pagoda's
// MasterKernel takes ownership of the whole device.
func (c *Context) LaunchPersistent(spec gpu.LaunchSpec) *gpu.Kernel {
	c.KernelsLaunched++
	return c.Dev.Launch(spec)
}

// ActiveKernelSlots returns how many HyperQ connections are free
// (diagnostics).
func (c *Context) ActiveKernelSlots() int { return c.hyperQ.Available() }
