package autoscale

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// stubNode is a ledger-only cluster.Node for lifecycle tests: Submit routes,
// the test completes or drops tasks by mutating the view directly.
type stubNode struct {
	name   string
	view   cluster.NodeView
	closed bool
}

func (s *stubNode) Name() string              { return s.name }
func (s *stubNode) View() cluster.NodeView    { return s.view }
func (s *stubNode) Submit(_ *sim.Proc, _ int) { s.view.Routed++ }
func (s *stubNode) Close()                    { s.closed = true }

// stubFleet builds a fleet over stub nodes and returns both, with a small
// deterministic lifecycle configuration unless overridden.
func stubFleet(t *testing.T, eng *sim.Engine, cfg Config) (*Fleet, *[]*stubNode) {
	t.Helper()
	nodes := &[]*stubNode{}
	f, err := NewFleet(eng, cfg, func(id int) cluster.Node {
		s := &stubNode{name: "stub"}
		*nodes = append(*nodes, s)
		return s
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	return f, nodes
}

// TestPredictiveEWMAMonotoneConvergence is the estimator property from the
// issue: under a constant observed rate the EWMA approaches it monotonically
// from either side and never overshoots, so provisioning lead time comes
// from Headroom, not estimator ringing.
func TestPredictiveEWMAMonotoneConvergence(t *testing.T) {
	const target = 96e3
	for _, start := range []float64{0, 12e3, 200e3} {
		p := NewPredictive(0.25, 64e3, 1.0)
		p.Target(Signals{ArrivalRate: start, Provisioned: 1})
		prevGap := math.Abs(target - p.Estimate())
		lo, hi := math.Min(start, target), math.Max(start, target)
		for i := 0; i < 64; i++ {
			p.Target(Signals{ArrivalRate: target, Provisioned: 1})
			est := p.Estimate()
			if est < lo-1e-9 || est > hi+1e-9 {
				t.Fatalf("start %v step %d: estimate %v left [%v, %v]", start, i, est, lo, hi)
			}
			gap := math.Abs(target - est)
			if gap > prevGap+1e-9 {
				t.Fatalf("start %v step %d: gap grew %v -> %v", start, i, prevGap, gap)
			}
			if prevGap > 0 && gap >= prevGap && math.Abs(start-target) > 0 {
				t.Fatalf("start %v step %d: gap stalled at %v", start, i, gap)
			}
			prevGap = gap
		}
		if prevGap > 1e-3*target {
			t.Fatalf("start %v: estimate %v never converged to %v", start, p.Estimate(), target)
		}
	}
}

// TestPredictiveSeedsWithFirstObservation pins the cold-start rule: the
// first tick's rate is adopted wholesale, not blended with a zero prior.
func TestPredictiveSeedsWithFirstObservation(t *testing.T) {
	p := NewPredictive(0.1, 64e3, 1.0)
	p.Target(Signals{ArrivalRate: 48e3, Provisioned: 1})
	if p.Estimate() != 48e3 {
		t.Fatalf("estimate after first observation = %v, want 48000", p.Estimate())
	}
}

// TestReactiveHysteresisBandHoldsSteady is the no-flap property: every
// backlog strictly inside the (Low, High) per-node watermark band leaves the
// target at the current size, for any fleet size.
func TestReactiveHysteresisBandHoldsSteady(t *testing.T) {
	r := Reactive{High: 16, Low: 2, Step: 2}
	for prov := 1; prov <= 32; prov++ {
		for perNode := r.Low + 1; perNode < r.High; perNode++ {
			s := Signals{Provisioned: prov, Active: prov, Backlog: perNode * prov}
			if got := r.Target(s); got != prov {
				t.Fatalf("prov %d backlog/node %d: target %d, want hold at %d", prov, perNode, got, prov)
			}
		}
		if got := r.Target(Signals{Provisioned: prov, Active: prov, Backlog: r.High * prov}); got != prov+2 {
			t.Fatalf("prov %d at high watermark: target %d, want %d", prov, got, prov+2)
		}
		if got := r.Target(Signals{Provisioned: prov, Active: prov, Backlog: r.Low * prov}); got != prov-1 {
			t.Fatalf("prov %d at low watermark: target %d, want %d", prov, got, prov-1)
		}
	}
}

// TestReactiveSLOGuardsScaleIn: a healthy-looking backlog must not shrink
// the fleet while the rolling p99 is above the SLO.
func TestReactiveSLOGuardsScaleIn(t *testing.T) {
	r := Reactive{High: 16, Low: 2, SLO: 1000e3, Step: 1}
	s := Signals{Provisioned: 4, Active: 4, Backlog: 0, P99: 2000e3}
	if got := r.Target(s); got != 4 {
		t.Fatalf("target %d under burning p99, want hold at 4", got)
	}
	s.P99 = 500e3
	if got := r.Target(s); got != 3 {
		t.Fatalf("target %d with healthy p99, want scale-in to 3", got)
	}
}

// wildPolicy replays a fixed target sequence, including out-of-bounds
// values, to prove the fleet clamps whatever a policy asks for.
type wildPolicy struct {
	seq []int
	i   int
}

func (w *wildPolicy) Name() string { return "wild" }
func (w *wildPolicy) Target(Signals) int {
	v := w.seq[w.i%len(w.seq)]
	w.i++
	return v
}

// TestFleetBoundsNeverViolated is the bounds property: no matter what the
// policy demands (including negative and huge targets) the provisioned count
// stays inside [Min, Max] at every tick.
func TestFleetBoundsNeverViolated(t *testing.T) {
	eng := sim.New()
	cfg := Config{Min: 2, Max: 5, Interval: 100, Warmup: 150, Cooldown: 1,
		Policy: func() Policy { return &wildPolicy{seq: []int{100, -3, 4, 0, 7, 3, 1000, 2}} }}
	f, _ := stubFleet(t, eng, cfg)
	eng.Spawn("ctl", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			p.Sleep(cfg.Interval)
			f.Step(p.Now())
			prov, active := f.counts()
			if prov < cfg.Min || prov > cfg.Max {
				t.Errorf("tick %d: provisioned %d outside [%d, %d]", i, prov, cfg.Min, cfg.Max)
			}
			if active > prov {
				t.Errorf("tick %d: active %d exceeds provisioned %d", i, active, prov)
			}
		}
		f.CloseAll()
	})
	end := eng.Run()
	f.Finish(end)
	if o := f.Outcome(); o.Peak > cfg.Max {
		t.Errorf("outcome peak %d exceeds max %d", o.Peak, cfg.Max)
	}
}

// TestFleetNoFlapInsideBand drives a reactive fleet with a backlog pinned
// inside the hysteresis band and demands zero scale events end to end.
func TestFleetNoFlapInsideBand(t *testing.T) {
	eng := sim.New()
	cfg := Config{Min: 2, Max: 8, Interval: 100, Cooldown: 1,
		Policy: func() Policy { return Reactive{High: 16, Low: 2, Step: 1} }}
	f, nodes := stubFleet(t, eng, cfg)
	eng.Spawn("ctl", func(p *sim.Proc) {
		// Per-node backlog 8: inside (2, 16) on both nodes, forever.
		for _, s := range *nodes {
			s.view.Routed = 8
		}
		for i := 0; i < 64; i++ {
			p.Sleep(cfg.Interval)
			f.Step(p.Now())
		}
		f.CloseAll()
	})
	f.Finish(eng.Run())
	o := f.Outcome()
	if len(o.Events) != 0 || o.ScaleOuts != 0 || o.ScaleIns != 0 {
		t.Fatalf("fleet flapped inside the hysteresis band: %+v", o.Events)
	}
	if len(o.Nodes) != cfg.Min {
		t.Fatalf("%d nodes ever provisioned, want the initial %d", len(o.Nodes), cfg.Min)
	}
}

// TestFleetWarmupGatesDispatch: a scale-out node must be invisible to
// Snapshot until its warm-up elapses, and its span records the delay.
func TestFleetWarmupGatesDispatch(t *testing.T) {
	eng := sim.New()
	const warm = 350
	cfg := Config{Min: 1, Max: 2, Interval: 100, Warmup: warm, Cooldown: 1,
		Policy: func() Policy { return Reactive{High: 4, Low: 0, Step: 1} }}
	f, nodes := stubFleet(t, eng, cfg)
	eng.Spawn("ctl", func(p *sim.Proc) {
		(*nodes)[0].view.Routed = 64 // per-node backlog way past High
		var scaledAt sim.Time
		for i := 0; i < 12; i++ {
			p.Sleep(cfg.Interval)
			f.Step(p.Now())
			if ns, _ := f.Snapshot(); len(ns) == 2 {
				if p.Now()-scaledAt < warm {
					t.Errorf("node dispatchable %v cycles after provisioning, warm-up is %v", p.Now()-scaledAt, sim.Time(warm))
				}
				break
			}
			if scaledAt == 0 && len(f.nodes) == 2 {
				scaledAt = p.Now()
			}
		}
		f.CloseAll()
	})
	f.Finish(eng.Run())
	o := f.Outcome()
	if len(o.Nodes) != 2 || o.ScaleOuts != 1 {
		t.Fatalf("expected exactly one scale-out: %+v", o)
	}
	sp := o.Nodes[1]
	if sp.ActiveAt-sp.ProvisionedAt != warm {
		t.Errorf("span charges %v warm-up, want %v", sp.ActiveAt-sp.ProvisionedAt, sim.Time(warm))
	}
}

// TestFleetDrainRetiresOnlyWhenEmpty: a draining node with in-flight work
// survives (and keeps costing node-seconds) until its ledger balances.
func TestFleetDrainRetiresOnlyWhenEmpty(t *testing.T) {
	eng := sim.New()
	cfg := Config{Min: 1, Max: 2, Interval: 100, Cooldown: 1,
		Policy: func() Policy { return Reactive{High: 4, Low: 2, Step: 1} }}
	f, nodes := stubFleet(t, eng, cfg)
	eng.Spawn("ctl", func(p *sim.Proc) {
		(*nodes)[0].view.Routed = 64
		p.Sleep(cfg.Interval)
		f.Step(p.Now()) // scale out (no warm-up: node 1 active immediately)
		(*nodes)[0].view.Done = 64
		(*nodes)[1].view.Routed = 3 // in-flight work on the scale-in victim
		p.Sleep(cfg.Interval)
		f.Step(p.Now()) // scale in: node 1 drains
		if !(*nodes)[1].closed {
			t.Error("drained node was not closed")
		}
		if st := f.nodes[1].span.State; st != Draining {
			t.Errorf("victim state %v, want draining", st)
		}
		p.Sleep(cfg.Interval)
		f.Step(p.Now())
		if st := f.nodes[1].span.State; st != Draining {
			t.Errorf("victim retired with outstanding work (state %v)", st)
		}
		(*nodes)[1].view.Done = 3 // in-flight work finishes
		p.Sleep(cfg.Interval)
		f.Step(p.Now())
		if st := f.nodes[1].span.State; st != Retired {
			t.Errorf("victim state %v after drain completed, want retired", st)
		}
		f.CloseAll()
	})
	f.Finish(eng.Run())
	o := f.Outcome()
	if o.ScaleOuts != 1 || o.ScaleIns != 1 {
		t.Fatalf("events: %+v", o.Events)
	}
	sp := o.Nodes[1]
	if sp.RetiredAt <= sp.ClosedAt {
		t.Errorf("drain span empty: closed %v retired %v", sp.ClosedAt, sp.RetiredAt)
	}
}

// TestOutcomeCostLedger checks the node-seconds arithmetic on a hand-built
// outcome: 2 nodes x 1e9 cycles = 2 node-seconds; 4 node-seconds per Mtask
// at half a million served.
func TestOutcomeCostLedger(t *testing.T) {
	o := Outcome{NodeCycles: 2e9}
	if got := o.NodeSeconds(); got != 2 {
		t.Errorf("NodeSeconds = %v, want 2", got)
	}
	if got := o.NodeSecondsPerMTask(500_000); got != 4 {
		t.Errorf("NodeSecondsPerMTask(500k) = %v, want 4", got)
	}
	if got := o.NodeSecondsPerMTask(0); got != 0 {
		t.Errorf("NodeSecondsPerMTask(0) = %v, want 0", got)
	}
}

// TestConfigValidate enumerates the rejection paths.
func TestConfigValidate(t *testing.T) {
	pol := func() Policy { return Reactive{High: 4, Low: 1} }
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"min zero", Config{Min: 0, Max: 4, Policy: pol}, "not positive"},
		{"max below min", Config{Min: 4, Max: 2, Policy: pol}, "below min"},
		{"elastic without policy", Config{Min: 1, Max: 4}, "need a scaling policy"},
		{"negative warmup", Config{Min: 1, Max: 4, Policy: pol, Warmup: -1}, "warmup"},
		{"nan interval", Config{Min: 1, Max: 4, Policy: pol, Interval: math.NaN()}, "interval"},
		{"negative window", Config{Min: 1, Max: 4, Policy: pol, Window: -1}, "window"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	ok := Config{Min: 2, Max: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("fixed fleet without policy rejected: %v", err)
	}
	if ok.Enabled() {
		t.Error("min == max reported as elastic")
	}
	if !(&Config{Min: 1, Max: 2, Policy: pol}).Enabled() {
		t.Error("max > min reported as fixed")
	}
}

// TestNewPolicyFactory covers the registry: every listed name constructs,
// fresh state per call, unknown names fail with the valid list.
func TestNewPolicyFactory(t *testing.T) {
	for _, name := range PolicyNames() {
		mk, err := NewPolicy(name, DefaultTuning())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p1, p2 := mk(), mk()
		if p1.Name() != name {
			t.Errorf("policy %q reports name %q", name, p1.Name())
		}
		if name == "predictive" && p1 == p2 {
			// Stateful policies must not share their estimator across runs.
			t.Errorf("%s: factory returned shared state", name)
		}
	}
	if _, err := NewPolicy("nope", DefaultTuning()); err == nil || !strings.Contains(err.Error(), "reactive") {
		t.Errorf("unknown policy error %v should list valid names", err)
	}
}

// TestTuningAggressive pins the aggressiveness transform the experiment
// sweeps: tighter watermarks, bigger steps, lighter smoothing, more
// headroom — and alpha capped at 1.
func TestTuningAggressive(t *testing.T) {
	a := DefaultTuning().Aggressive()
	d := DefaultTuning()
	if a.High >= d.High || a.Step <= d.Step || a.Alpha <= d.Alpha || a.Headroom <= d.Headroom {
		t.Errorf("aggressive not strictly twitchier: %+v vs %+v", a, d)
	}
	if x := (Tuning{Alpha: 0.8}).Aggressive(); x.Alpha != 1 {
		t.Errorf("alpha not capped at 1: %v", x.Alpha)
	}
}
