// Package autoscale is the fleet-elasticity layer over internal/cluster: a
// policy-driven controller that grows and shrinks the node set a dispatcher
// routes over, entirely in virtual time on the shared simulation engine.
//
// The lifecycle model is the production one. A scale-out decision provisions
// a node that first pays a warm-up cost (GPU init plus first-batch latency,
// charged in sim time) before it accepts dispatch; a scale-in decision drains
// a node — it stops receiving, finishes its in-flight work, then retires.
// Every node ever provisioned keeps its conservation ledger, so the fleet
// invariant routed = done + dropped holds across node add and remove, and
// node-seconds accrue from provision to retirement — warm-up and drain are
// paid for, which is exactly what the cost-vs-SLO report prices.
//
// Determinism rules: the controller observes only node ledgers and the
// rolling completion window, both mutated under the engine baton; there is
// no wall clock, no map iteration and no unseeded randomness anywhere, so an
// elastic fleet run is as bit-reproducible as a fixed one.
package autoscale

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Default lifecycle parameters. Warm-up models GPU init plus the first
// batch's latency on a freshly provisioned device; the control interval and
// cooldown quantize how fast the fleet may react.
const (
	DefaultInterval = sim.Time(250e3)  // 250us control-loop period
	DefaultWarmup   = sim.Time(1e6)    // 1ms provision-to-dispatchable cost
	DefaultCooldown = sim.Time(1000e3) // 1ms between scale events
	DefaultWindow   = 128              // completions in the rolling p99 window
)

// Config parameterizes one elastic fleet. The zero value is not runnable;
// fill in at least the bounds and a policy factory, or keep Min == Max for a
// fixed fleet (Enabled returns false and runners fall back to the static
// dispatcher, bit-identical to the pre-autoscale cluster path).
type Config struct {
	Min, Max int // fleet bounds; active+warming never leaves [Min, Max]

	// Policy builds one fresh scaling policy per run (policies are
	// stateful — Predictive carries its EWMA). Required when Max > Min.
	Policy func() Policy

	// Interval is the control-loop period in cycles; 0 means
	// DefaultInterval. Signals, warm-up completion and drain retirement are
	// all observed at this granularity.
	Interval sim.Time

	// Warmup is the provision-to-dispatchable cost in cycles (GPU init +
	// first-batch latency); negative means 0... use >= 0. The initial Min
	// nodes are pre-provisioned before traffic and pay no warm-up.
	Warmup sim.Time

	// Cooldown is the minimum spacing between scale events in cycles; 0
	// means DefaultCooldown. It is the fleet-level hysteresis that keeps a
	// policy oscillating around a threshold from flapping nodes.
	Cooldown sim.Time

	// Window sizes the rolling completion window behind the p99 signal; 0
	// means DefaultWindow.
	Window int
}

// Enabled reports whether the config asks for actual elasticity: a nil
// config or one with Max == Min is a fixed fleet.
func (c *Config) Enabled() bool { return c != nil && c.Max > c.Min }

// Validate reports a descriptive error for bounds or lifecycle parameters
// that cannot run: Min < 1, Max < Min, a missing policy on an elastic
// config, or non-finite/negative times.
func (c Config) Validate() error {
	if c.Min < 1 {
		return fmt.Errorf("autoscale: min fleet size %d is not positive", c.Min)
	}
	if c.Max < c.Min {
		return fmt.Errorf("autoscale: max fleet size %d below min %d", c.Max, c.Min)
	}
	if c.Max > c.Min && c.Policy == nil {
		return fmt.Errorf("autoscale: elastic bounds %d..%d need a scaling policy", c.Min, c.Max)
	}
	for _, d := range []struct {
		what string
		v    sim.Time
	}{{"interval", c.Interval}, {"warmup", c.Warmup}, {"cooldown", c.Cooldown}} {
		if d.v < 0 || math.IsNaN(d.v) || math.IsInf(d.v, 0) {
			return fmt.Errorf("autoscale: %s %v is not a finite non-negative cycle count", d.what, d.v)
		}
	}
	if c.Window < 0 {
		return fmt.Errorf("autoscale: window %d is negative", c.Window)
	}
	return nil
}

func (c Config) fill() Config {
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	return c
}

// NodeState is one managed node's lifecycle phase.
type NodeState int

const (
	// Warming nodes are provisioned (and paying node-seconds) but not yet
	// dispatchable: the warm-up cost is still being charged.
	Warming NodeState = iota
	// Active nodes accept dispatch.
	Active
	// Draining nodes stopped receiving and are finishing in-flight work.
	Draining
	// Retired nodes have drained completely; their ledgers are frozen.
	Retired
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case Warming:
		return "warming"
	case Active:
		return "active"
	case Draining:
		return "draining"
	case Retired:
		return "retired"
	}
	return fmt.Sprintf("NodeState(%d)", int(s))
}

// Event is one scale decision: the fleet moved from From to To provisioned
// nodes at virtual instant At.
type Event struct {
	At     sim.Time
	From   int
	To     int
	Reason string
}

// NodeSpan is one managed node's lifecycle timeline, for reports and trace
// export. Once the run finished (Finish stamps stragglers) every node has
// ProvisionedAt <= ClosedAt <= RetiredAt; ActiveAt sits between Provisioned
// and Closed except for a node whose scale-out was canceled during warm-up —
// it never became dispatchable and its ActiveAt stays 0.
type NodeSpan struct {
	ID            int
	State         NodeState
	ProvisionedAt sim.Time // instant the node began costing node-seconds
	ActiveAt      sim.Time // instant it became dispatchable (warm-up done)
	ClosedAt      sim.Time // instant it stopped receiving (drain start)
	RetiredAt     sim.Time // instant its ledger balanced (drain complete)
}

// managed pairs a backend node with its lifecycle bookkeeping. warmDone is
// the warm-up deadline for a Warming node; the span's ActiveAt is stamped
// only if the node actually reaches Active.
type managed struct {
	n        cluster.Node
	span     NodeSpan
	warmDone sim.Time
}

// Fleet is the elastic node set: it implements cluster.Fleet for the
// dispatcher (Snapshot/CloseAll) and is stepped by a controller process at
// Config.Interval granularity. All methods run under the engine baton.
type Fleet struct {
	eng   *sim.Engine
	cfg   Config
	pol   Policy
	spawn func(id int) cluster.Node

	nodes []*managed

	closed      bool
	haveScaled  bool
	lastScaleAt sim.Time
	lastOffered int
	outs, ins   int
	peak        int
	events      []Event
	end         sim.Time

	// rolling completion-latency window behind the p99 signal
	win     []sim.Time
	winNext int
	winLen  int
	scratch []sim.Time

	// reused Snapshot buffers (the dispatcher consumes them synchronously)
	snapNodes []cluster.Node
	snapIDs   []int
}

// NewFleet validates cfg and provisions the initial Min nodes, immediately
// active: the starting fleet is pre-provisioned capacity, in place before
// traffic, so it pays no warm-up — which is also what makes a Min == Max
// fleet equivalent to the fixed cluster path. spawn builds one scheme-backed
// node (engine processes and all) per provisioned id; ids are dense and
// monotonic, so "node%02d" track names stay stable across scale events.
func NewFleet(eng *sim.Engine, cfg Config, spawn func(id int) cluster.Node) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.fill()
	f := &Fleet{
		eng:     eng,
		cfg:     cfg,
		spawn:   spawn,
		peak:    cfg.Min,
		win:     make([]sim.Time, cfg.Window),
		scratch: make([]sim.Time, 0, cfg.Window),
	}
	if cfg.Policy != nil {
		f.pol = cfg.Policy()
	}
	for i := 0; i < cfg.Min; i++ {
		f.provision(0, Active)
	}
	return f, nil
}

// provision creates one managed node in the given initial state at instant
// now and returns it.
func (f *Fleet) provision(now sim.Time, state NodeState) *managed {
	id := len(f.nodes)
	m := &managed{span: NodeSpan{ID: id, State: state, ProvisionedAt: now}}
	if state == Active {
		m.span.ActiveAt = now
	} else {
		m.warmDone = now + f.cfg.Warmup
	}
	m.n = f.spawn(id)
	f.nodes = append(f.nodes, m)
	return m
}

// Interval returns the filled control-loop period — what the controller
// process sleeps between Step calls.
func (f *Fleet) Interval() sim.Time { return f.cfg.Interval }

// Closed reports whether CloseAll has run (arrivals are over); the
// controller process exits on it.
func (f *Fleet) Closed() bool { return f.closed }

// Snapshot implements cluster.Fleet: the currently dispatchable nodes and
// their stable ids, in id order. The returned slices are reused across
// calls — the dispatcher consumes them before yielding the baton.
func (f *Fleet) Snapshot() ([]cluster.Node, []int) {
	f.snapNodes = f.snapNodes[:0]
	f.snapIDs = f.snapIDs[:0]
	for _, m := range f.nodes {
		if m.span.State == Active {
			f.snapNodes = append(f.snapNodes, m.n)
			f.snapIDs = append(f.snapIDs, m.span.ID)
		}
	}
	return f.snapNodes, f.snapIDs
}

// CloseAll implements cluster.Fleet: arrivals are over, every node not
// already draining or retired drains now. Scale decisions stop; remaining
// retirements are stamped by Finish.
func (f *Fleet) CloseAll() {
	f.closed = true
	now := f.eng.Now()
	for _, m := range f.nodes {
		if m.span.State == Warming || m.span.State == Active {
			m.span.State = Draining
			m.span.ClosedAt = now
			m.n.Close()
		}
	}
}

// NoteLatency feeds one completed task's submit-to-done latency into the
// rolling window behind the p99 signal. Runners call it from the node
// completion hook, under the engine baton.
func (f *Fleet) NoteLatency(lat sim.Time) {
	if len(f.win) == 0 {
		return
	}
	f.win[f.winNext] = lat
	f.winNext = (f.winNext + 1) % len(f.win)
	if f.winLen < len(f.win) {
		f.winLen++
	}
}

// rollingP99 returns the nearest-rank p99 over the window's current
// contents, 0 until anything has completed.
func (f *Fleet) rollingP99() sim.Time {
	if f.winLen == 0 {
		return 0
	}
	f.scratch = append(f.scratch[:0], f.win[:f.winLen]...)
	sort.Float64s(f.scratch)
	idx := int(math.Ceil(0.99 * float64(f.winLen)))
	if idx < 1 {
		idx = 1
	}
	return f.scratch[idx-1]
}

// counts returns the provisioned (warming+active) and active node counts.
func (f *Fleet) counts() (provisioned, active int) {
	for _, m := range f.nodes {
		switch m.span.State {
		case Warming:
			provisioned++
		case Active:
			provisioned++
			active++
		}
	}
	return
}

// signals assembles one tick's policy input from the node ledgers.
func (f *Fleet) signals(now sim.Time) Signals {
	s := Signals{Now: now, Interval: f.cfg.Interval, P99: f.rollingP99()}
	s.Provisioned, s.Active = f.counts()
	offered := 0
	for _, m := range f.nodes {
		v := m.n.View()
		offered += v.Routed
		if m.span.State == Active {
			s.Backlog += v.Outstanding()
		}
	}
	s.ArrivalRate = float64(offered-f.lastOffered) / (f.cfg.Interval / 1e9)
	f.lastOffered = offered
	return s
}

// Step advances the lifecycle one control tick: warm-ups that have elapsed
// come online, drains that have emptied retire, and — while arrivals are
// still flowing — the policy's clamped target is applied under cooldown
// hysteresis. Warm-up completion is observed at tick granularity, so a
// node's effective lead time rounds up to the next tick.
func (f *Fleet) Step(now sim.Time) {
	for _, m := range f.nodes {
		if m.span.State == Warming && now >= m.warmDone {
			// The span records the warm-up completion instant; dispatchability
			// is observed here, at the first tick past it.
			m.span.State = Active
			m.span.ActiveAt = m.warmDone
		}
	}
	for _, m := range f.nodes {
		if m.span.State == Draining && m.n.View().Outstanding() == 0 {
			m.span.State = Retired
			m.span.RetiredAt = now
		}
	}
	if f.closed || f.pol == nil {
		return
	}
	s := f.signals(now)
	target := f.pol.Target(s)
	if target < f.cfg.Min {
		target = f.cfg.Min
	}
	if target > f.cfg.Max {
		target = f.cfg.Max
	}
	if target == s.Provisioned {
		return
	}
	if f.haveScaled && now-f.lastScaleAt < f.cfg.Cooldown {
		return
	}
	if target > s.Provisioned {
		for i := s.Provisioned; i < target; i++ {
			state := Warming
			if f.cfg.Warmup == 0 {
				state = Active
			}
			f.provision(now, state)
		}
		f.outs++
		if target > f.peak {
			f.peak = target
		}
	} else {
		// Scale in youngest-first: the newest capacity is the burst capacity,
		// and retiring it keeps the long-lived low-id nodes' caches warm.
		rm := s.Provisioned - target
		for i := len(f.nodes) - 1; i >= 0 && rm > 0; i-- {
			m := f.nodes[i]
			if m.span.State == Active || m.span.State == Warming {
				m.span.State = Draining
				m.span.ClosedAt = now
				m.n.Close()
				rm--
			}
		}
		f.ins++
	}
	f.events = append(f.events, Event{At: now, From: s.Provisioned, To: target,
		Reason: f.pol.Name()})
	f.haveScaled = true
	f.lastScaleAt = now
}

// Finish freezes the lifecycle at the run's end instant: nodes still
// draining (or never closed) retire with the run itself, so every node has a
// complete provision-to-retire span for the cost ledger.
func (f *Fleet) Finish(end sim.Time) {
	f.end = end
	for _, m := range f.nodes {
		if m.span.State != Retired {
			if m.span.State != Draining {
				m.span.ClosedAt = end
			}
			m.span.State = Retired
			m.span.RetiredAt = end
		}
	}
}

// Views returns every managed node's conservation ledger in id order —
// including retired nodes, which is what keeps routed = done + dropped
// checkable across scale events.
func (f *Fleet) Views() []cluster.NodeView {
	out := make([]cluster.NodeView, len(f.nodes))
	for i, m := range f.nodes {
		out[i] = m.n.View()
	}
	return out
}

// Outcome is the autoscaler's run summary: the scale-event log, each node's
// lifecycle span, and the cost ledger the cost-vs-SLO report prices.
type Outcome struct {
	Events []Event
	Nodes  []NodeSpan

	// NodeCycles is the summed provision-to-retire extent over all nodes,
	// in virtual cycles — warm-up and drain time included.
	NodeCycles float64

	ScaleOuts, ScaleIns int
	Peak                int // highest provisioned count reached
}

// NodeSeconds converts the cost ledger to node-seconds of provisioned
// capacity (1 cycle = 1 ns).
func (o Outcome) NodeSeconds() float64 { return o.NodeCycles / 1e9 }

// NodeSecondsPerMTask is the cost headline: node-seconds spent per million
// tasks served. Zero served tasks yields 0 (an idle fleet has no unit cost
// worth comparing).
func (o Outcome) NodeSecondsPerMTask(served int) float64 {
	if served <= 0 {
		return 0
	}
	return o.NodeSeconds() / (float64(served) / 1e6)
}

// Outcome assembles the run summary; call after Finish.
func (f *Fleet) Outcome() Outcome {
	o := Outcome{
		Events:    append([]Event(nil), f.events...),
		Nodes:     make([]NodeSpan, len(f.nodes)),
		ScaleOuts: f.outs,
		ScaleIns:  f.ins,
		Peak:      f.peak,
	}
	for i, m := range f.nodes {
		o.Nodes[i] = m.span
		o.NodeCycles += m.span.RetiredAt - m.span.ProvisionedAt
	}
	return o
}
