package autoscale

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Signals is one control-loop tick's observation of the fleet — everything a
// scaling policy may look at. All fields derive from the simulation's own
// deterministic state (node ledgers and the rolling completion window), never
// from the host, so identical runs see identical signal sequences.
type Signals struct {
	Now      sim.Time // tick instant, virtual cycles
	Interval sim.Time // control-loop period, cycles

	Provisioned int // nodes paying for capacity: warming + active
	Active      int // nodes currently accepting dispatch

	// Backlog is the routed-but-unfinished task count across active nodes —
	// the queue-depth signal reactive scaling keys on.
	Backlog int

	// ArrivalRate is the offered rate observed over the last tick,
	// tasks/second — the raw input the predictive policy smooths.
	ArrivalRate float64

	// P99 is the rolling p99 latency over the most recent completions
	// (Config.Window of them); 0 until anything has completed.
	P99 sim.Time
}

// A Policy maps one tick's Signals to the desired provisioned-node count.
// The fleet clamps the target to [Min, Max] and applies cooldown hysteresis;
// the policy itself decides only how many nodes the load wants. Policies may
// keep state (Predictive's EWMA), so a fresh policy must be constructed per
// run — Config carries a factory, exactly like cluster.Policy.
type Policy interface {
	Name() string
	Target(s Signals) int
}

// Reactive scales on what is already hurting: per-node backlog beyond High
// (or rolling p99 beyond SLO) adds Step nodes, per-node backlog at or below
// Low retires one. Between the watermarks the policy holds the fleet steady —
// the hysteresis band that keeps a noisy signal from flapping the fleet.
type Reactive struct {
	High int      // scale out at per-node backlog >= High
	Low  int      // scale in at per-node backlog <= Low
	SLO  sim.Time // rolling-p99 scale-out trigger; 0 disables
	Step int      // nodes added per scale-out decision (0 means 1)
}

// Name implements Policy.
func (Reactive) Name() string { return "reactive" }

// Target implements Policy.
func (r Reactive) Target(s Signals) int {
	if s.Provisioned < 1 {
		return 1
	}
	step := r.Step
	if step < 1 {
		step = 1
	}
	perNode := float64(s.Backlog) / float64(s.Provisioned)
	if perNode >= float64(r.High) || (r.SLO > 0 && s.P99 > r.SLO && s.Backlog > s.Provisioned) {
		return s.Provisioned + step
	}
	// Never shrink while the tail is burning: the low-backlog signal alone
	// can look healthy right after a burst drained into slow service.
	if perNode <= float64(r.Low) && (r.SLO == 0 || s.P99 <= r.SLO) {
		return s.Provisioned - 1
	}
	return s.Provisioned
}

// Predictive provisions for where the arrival rate is heading rather than
// where the queue already is: an exponentially weighted moving average of the
// observed rate, divided by one node's provisioned capacity with a headroom
// margin. The EWMA is seeded with the first observation (no cold-start bias)
// and converges monotonically under a constant rate — pinned by property
// test — so warm-up lead time comes from Headroom, not estimator overshoot.
type Predictive struct {
	Alpha    float64 // EWMA gain per tick, in (0, 1]
	PerNode  float64 // tasks/second one node is provisioned for
	Headroom float64 // capacity margin multiplier, >= 1

	est  float64
	seen bool
}

// NewPredictive returns a fresh estimator for one run.
func NewPredictive(alpha, perNode, headroom float64) *Predictive {
	return &Predictive{Alpha: alpha, PerNode: perNode, Headroom: headroom}
}

// Name implements Policy.
func (*Predictive) Name() string { return "predictive" }

// Estimate returns the current EWMA arrival-rate estimate, tasks/second.
func (p *Predictive) Estimate() float64 { return p.est }

// Target implements Policy.
func (p *Predictive) Target(s Signals) int {
	if !p.seen {
		p.est, p.seen = s.ArrivalRate, true
	} else {
		p.est += p.Alpha * (s.ArrivalRate - p.est)
	}
	want := int(math.Ceil(p.est * p.Headroom / p.PerNode))
	if want < 1 {
		want = 1
	}
	return want
}

// Tuning bundles the signal thresholds the built-in policies are constructed
// from, so experiments can sweep "aggressiveness" as one knob instead of five.
type Tuning struct {
	High, Low int      // reactive per-node backlog watermarks
	SLO       sim.Time // reactive rolling-p99 trigger (0 disables)
	Step      int      // reactive scale-out step

	Alpha       float64 // predictive EWMA gain per tick
	PerNodeRate float64 // predictive per-node capacity, tasks/second
	Headroom    float64 // predictive capacity margin
}

// DefaultTuning is the gentle end of the sweep: wide watermarks, single-node
// steps, heavy smoothing. PerNodeRate matches the cluster_scaling headline
// (one node holds 64k tasks/s under the 1000us p99 SLO).
func DefaultTuning() Tuning {
	return Tuning{High: 16, Low: 2, SLO: 0, Step: 1,
		Alpha: 0.25, PerNodeRate: 64e3, Headroom: 1.25}
}

// Aggressive returns the tuning's twitchy variant: watermarks halved, step
// doubled, smoothing lightened — the fleet reacts sooner and harder, trading
// node-seconds for tail latency.
func (t Tuning) Aggressive() Tuning {
	t.High = (t.High + 1) / 2
	t.Step *= 2
	t.Alpha = math.Min(1, t.Alpha*2)
	t.Headroom += 0.25
	return t
}

// PolicyNames lists the selectable scaling policies in presentation order.
func PolicyNames() []string { return []string{"reactive", "predictive"} }

// NewPolicy returns a factory building a fresh policy per run for one of the
// names in PolicyNames, parameterized by tu.
func NewPolicy(name string, tu Tuning) (func() Policy, error) {
	switch name {
	case "reactive":
		return func() Policy {
			return Reactive{High: tu.High, Low: tu.Low, SLO: tu.SLO, Step: tu.Step}
		}, nil
	case "predictive":
		return func() Policy {
			return NewPredictive(tu.Alpha, tu.PerNodeRate, tu.Headroom)
		}, nil
	default:
		return nil, fmt.Errorf("autoscale: unknown scaling policy %q (have %v)", name, PolicyNames())
	}
}
