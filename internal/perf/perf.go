// Package perf is the machine-verified performance-baseline gate
// (ReFrame-style): the BENCH_*.json files at the repo root declare, per
// metric, the command that measures it, how to extract the number from that
// command's output, the baseline value, a tolerance band and a direction.
// cmd/pagodaperf re-runs the commands, compares, and fails on any drift past
// tolerance — so a hot-path regression breaks `make check` instead of
// silently rotting a changelog claim. An update mode ratchets the baselines
// with host/date/git-rev provenance.
//
// This package is deliberately outside the simulator's determinism scope: it
// measures the real host (wall clock, subprocesses), never simulated time.
package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Directions: whether a larger measured value is better or worse.
const (
	// Lower marks a metric where smaller is better (ns/op, allocs/op,
	// wall-clock seconds). A measurement above baseline*(1+tol) fails.
	Lower = "lower"
	// Higher marks a metric where larger is better (sustained capacity).
	// A measurement below baseline*(1-tol) fails.
	Higher = "higher"
)

// Extraction kinds: how a metric's number is pulled out of its command.
const (
	// KindBench parses `go test -bench` output: Extract.Bench names the
	// benchmark (sub-benchmarks as "BenchmarkOpenLoop/pagoda") and
	// Extract.Field the column ("ns/op" default, "allocs/op", "B/op").
	KindBench = "bench"
	// KindReport parses pagodabench -format json output (one document or an
	// array): Extract.Exp selects the report by id ("" accepts a single
	// document) and Extract.Key a Values entry.
	KindReport = "report"
	// KindWallclock measures the command's own elapsed wall-clock seconds;
	// its output is ignored.
	KindWallclock = "wallclock"
)

// Suite is one baseline file: a named group of metrics measured together,
// with the provenance of the host that recorded the current baselines.
type Suite struct {
	Suite       string     `json:"suite"`
	Description string     `json:"description"`
	Notes       []string   `json:"notes,omitempty"`
	Provenance  Provenance `json:"provenance"`
	Metrics     []*Metric  `json:"metrics"`
}

// Provenance names the environment that produced the recorded baselines, so
// a drifted verdict can be read against where its reference numbers came
// from. Update (-update) restamps it.
type Provenance struct {
	Host   string `json:"host"`
	Date   string `json:"date"`
	GitRev string `json:"git_rev"`
}

// Metric is one declarative performance pattern: run Command, extract a
// number per Extract, and require it within TolerancePct of Baseline in the
// good Direction.
type Metric struct {
	Name    string  `json:"name"`
	Command string  `json:"command"` // argv split on whitespace; no shell, no quoting
	Extract Extract `json:"extract"`
	// Baseline is the recorded reference value. A zero baseline switches the
	// band to absolute zero-width: any measured value past 0 in the bad
	// direction fails regardless of TolerancePct (what pins 0 allocs/op).
	Baseline     float64 `json:"baseline"`
	TolerancePct float64 `json:"tolerance_pct"`
	Direction    string  `json:"direction"`
	// Quick marks the metric for the -quick subset wired into `make check`;
	// the full set runs under `make perf`.
	Quick bool   `json:"quick,omitempty"`
	Notes string `json:"notes,omitempty"`
}

// Extract declares how the metric's number is pulled from its command; see
// the Kind* constants for the field semantics.
type Extract struct {
	Kind  string `json:"kind"`
	Bench string `json:"bench,omitempty"`
	Field string `json:"field,omitempty"`
	Exp   string `json:"exp,omitempty"`
	Key   string `json:"key,omitempty"`
}

// Validate rejects a malformed suite before any command runs, so a typo'd
// baseline file fails fast instead of mid-sweep.
func (s *Suite) Validate() error {
	if s.Suite == "" {
		return fmt.Errorf("perf: suite has no name")
	}
	if len(s.Metrics) == 0 {
		return fmt.Errorf("perf: suite %q declares no metrics", s.Suite)
	}
	seen := make(map[string]bool, len(s.Metrics))
	for _, m := range s.Metrics {
		if m.Name == "" {
			return fmt.Errorf("perf: suite %q has an unnamed metric", s.Suite)
		}
		if seen[m.Name] {
			return fmt.Errorf("perf: suite %q repeats metric %q", s.Suite, m.Name)
		}
		seen[m.Name] = true
		if m.Command == "" {
			return fmt.Errorf("perf: metric %q has no command", m.Name)
		}
		if m.TolerancePct < 0 {
			return fmt.Errorf("perf: metric %q has negative tolerance %v", m.Name, m.TolerancePct)
		}
		switch m.Direction {
		case Lower, Higher:
		default:
			return fmt.Errorf("perf: metric %q direction %q is not %q or %q", m.Name, m.Direction, Lower, Higher)
		}
		e := m.Extract
		switch e.Kind {
		case KindBench:
			if e.Bench == "" {
				return fmt.Errorf("perf: bench metric %q names no benchmark", m.Name)
			}
			switch e.Field {
			case "", "ns/op", "allocs/op", "B/op":
			default:
				return fmt.Errorf("perf: bench metric %q field %q is not ns/op, allocs/op or B/op", m.Name, e.Field)
			}
		case KindReport:
			if e.Key == "" {
				return fmt.Errorf("perf: report metric %q names no values key", m.Name)
			}
		case KindWallclock:
		default:
			return fmt.Errorf("perf: metric %q extract kind %q is not %q, %q or %q",
				m.Name, e.Kind, KindBench, KindReport, KindWallclock)
		}
	}
	return nil
}

// Load reads and validates a baseline file.
func Load(path string) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Suite
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &s, nil
}

// Save writes the suite back as indented JSON (the -update path). HTML
// escaping is off so prose notes keep literal "->" and ">" instead of
// > entities.
func (s *Suite) Save(path string) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
