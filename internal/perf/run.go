package perf

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Status is a per-metric verdict.
type Status int

const (
	// OK: within the tolerance band of the baseline.
	OK Status = iota
	// Improved: past the band in the good direction — the run beat its
	// baseline by more than the tolerance. Not a failure; it marks a
	// candidate for a -update ratchet.
	Improved
	// Fail: past the band in the bad direction.
	Fail
	// Error: the command failed or the metric could not be extracted.
	Error
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Improved:
		return "ok (better)"
	case Fail:
		return "FAIL"
	default:
		return "ERROR"
	}
}

// Verdict is one metric's outcome: the measured value against its baseline.
type Verdict struct {
	Metric   *Metric
	Measured float64
	DeltaPct float64 // (measured-baseline)/baseline, 0 when baseline is 0
	Status   Status
	Err      error
}

// ExecResult is one command execution: captured stdout plus elapsed
// wall-clock seconds.
type ExecResult struct {
	Stdout  []byte
	Seconds float64
}

// ExecFunc runs one command (argv form, already split) in dir. Tests stub it
// to feed the extractors synthetic output.
type ExecFunc func(dir string, argv []string) (ExecResult, error)

// Runner executes a suite's metrics and compares them against baselines.
type Runner struct {
	// Dir is the working directory the commands run in (the repo root).
	Dir string
	// Quick restricts the run to metrics marked quick — the `make check`
	// subset; the full set is `make perf`.
	Quick bool
	// Exec runs one command; nil means real subprocess execution.
	Exec ExecFunc
	// Log receives one progress line per command as it starts (commands can
	// take tens of seconds); nil discards.
	Log io.Writer
}

// Run measures every selected metric in the suite. Metrics sharing a command
// string share one execution: a single `go test -bench` run feeds all the
// ns/op and allocs/op patterns declared against it. The returned verdicts
// follow the suite's metric order.
func (r *Runner) Run(s *Suite) []Verdict {
	execf := r.Exec
	if execf == nil {
		execf = realExec
	}
	type cached struct {
		res ExecResult
		err error
	}
	cache := map[string]cached{}
	var vs []Verdict
	for _, m := range s.Metrics {
		if r.Quick && !m.Quick {
			continue
		}
		c, ok := cache[m.Command]
		if !ok {
			if r.Log != nil {
				fmt.Fprintf(r.Log, "perf[%s]: running %s\n", s.Suite, m.Command)
			}
			res, err := execf(r.Dir, strings.Fields(m.Command))
			c = cached{res, err}
			cache[m.Command] = c
		}
		v := Verdict{Metric: m}
		if c.err != nil {
			v.Status, v.Err = Error, c.err
			vs = append(vs, v)
			continue
		}
		var err error
		switch m.Extract.Kind {
		case KindBench:
			v.Measured, err = ParseBench(c.res.Stdout, m.Extract.Bench, m.Extract.Field)
		case KindReport:
			v.Measured, err = ExtractReportValue(c.res.Stdout, m.Extract.Exp, m.Extract.Key)
		default: // KindWallclock; Validate rejected everything else
			v.Measured = c.res.Seconds
		}
		if err != nil {
			v.Status, v.Err = Error, err
			vs = append(vs, v)
			continue
		}
		v.Status, v.DeltaPct = compare(m, v.Measured)
		vs = append(vs, v)
	}
	return vs
}

// compare places a measurement against the metric's tolerance band. The band
// is symmetric — baseline ± |baseline|·tol% — and the direction decides which
// side is a failure and which an improvement. A zero baseline degenerates to
// a zero-width band: any move in the bad direction fails (the contract that
// pins 0 allocs/op exactly).
func compare(m *Metric, v float64) (Status, float64) {
	delta := 0.0
	if m.Baseline != 0 {
		delta = (v - m.Baseline) / m.Baseline * 100
	}
	band := math.Abs(m.Baseline) * m.TolerancePct / 100
	lo, hi := m.Baseline-band, m.Baseline+band
	bad, good := v > hi, v < lo // Lower: worse is larger
	if m.Direction == Higher {
		bad, good = v < lo, v > hi
	}
	switch {
	case bad:
		return Fail, delta
	case good:
		return Improved, delta
	default:
		return OK, delta
	}
}

// Failed reports whether any verdict regressed or errored.
func Failed(vs []Verdict) bool {
	for _, v := range vs {
		if v.Status == Fail || v.Status == Error {
			return true
		}
	}
	return false
}

// ApplyUpdate ratchets the suite's baselines to the measured values and
// restamps provenance. Only cleanly measured metrics move; errored ones keep
// their old baseline so a broken command can't zero a reference.
func ApplyUpdate(s *Suite, vs []Verdict, p Provenance) {
	for _, v := range vs {
		if v.Err == nil {
			v.Metric.Baseline = round4(v.Measured)
		}
	}
	s.Provenance = p
}

// round4 trims a measurement to 4 significant decimals so ratcheted baseline
// files stay readable (wall clocks like 12.0327541s become 12.0328).
func round4(v float64) float64 {
	return math.Round(v*1e4) / 1e4
}

// FprintVerdicts renders the per-metric verdict table for one suite.
func FprintVerdicts(w io.Writer, suite string, vs []Verdict) {
	fmt.Fprintf(w, "== perf suite %s ==\n", suite)
	name := len("metric")
	for _, v := range vs {
		if n := len(v.Metric.Name); n > name {
			name = n
		}
	}
	fmt.Fprintf(w, "%-*s  %12s  %12s  %8s  %6s  %s\n", name, "metric", "baseline", "measured", "delta", "tol", "verdict")
	for _, v := range vs {
		m := v.Metric
		if v.Status == Error {
			fmt.Fprintf(w, "%-*s  %12s  %12s  %8s  %5.0f%%  %s: %v\n",
				name, m.Name, fnum(m.Baseline), "-", "-", m.TolerancePct, v.Status, v.Err)
			continue
		}
		fmt.Fprintf(w, "%-*s  %12s  %12s  %+7.1f%%  %5.0f%%  %s\n",
			name, m.Name, fnum(m.Baseline), fnum(v.Measured), v.DeltaPct, m.TolerancePct, v.Status)
	}
}

// fnum renders a metric value compactly: integers without a mantissa, small
// readings with enough decimals to mean something.
func fnum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// realExec runs argv in dir, capturing stdout and wall-clock seconds. Stderr
// is captured separately and surfaced only on failure (go test -bench writes
// its progress there).
func realExec(dir string, argv []string) (ExecResult, error) {
	if len(argv) == 0 {
		return ExecResult{}, fmt.Errorf("perf: empty command")
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	start := time.Now()
	err := cmd.Run()
	elapsed := time.Since(start).Seconds()
	if err != nil {
		return ExecResult{}, fmt.Errorf("perf: %s: %v\n%s", strings.Join(argv, " "), err, errb.Bytes())
	}
	return ExecResult{Stdout: out.Bytes(), Seconds: elapsed}, nil
}

// Stamp gathers the provenance of the current environment for -update: host
// identity, UTC date, and the git revision of dir (best effort — "unknown"
// outside a repo).
func Stamp(dir string) Provenance {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown"
	}
	rev := "unknown"
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = dir
	if out, err := cmd.Output(); err == nil {
		rev = strings.TrimSpace(string(out))
	}
	return Provenance{
		Host:   fmt.Sprintf("%s (%s/%s, %d CPUs)", host, runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Date:   time.Now().UTC().Format("2006-01-02"),
		GitRev: rev,
	}
}
