package perf

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// ParseBench extracts one numeric field from `go test -bench` output for the
// named benchmark. name is the benchmark's base name, sub-benchmarks as
// "BenchmarkOpenLoop/pagoda"; the -N GOMAXPROCS suffix the runtime appends is
// stripped before matching. field is "ns/op", "allocs/op" or "B/op" ("" means
// "ns/op").
func ParseBench(out []byte, name, field string) (float64, error) {
	if field == "" {
		field = "ns/op"
	}
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || benchBase(fields[0]) != name {
			continue
		}
		// fields[1] is the iteration count; the rest alternate value, unit.
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != field {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return 0, fmt.Errorf("perf: benchmark %s %s value %q: %v", name, field, fields[i], err)
			}
			return v, nil
		}
		return 0, fmt.Errorf("perf: benchmark %s has no %s column (run with -benchmem?): %q", name, field, line)
	}
	return 0, fmt.Errorf("perf: benchmark %s not found in output (%d bytes)", name, len(out))
}

// benchBase strips the -N GOMAXPROCS suffix from a benchmark result name
// ("BenchmarkEngineSchedule-8" -> "BenchmarkEngineSchedule"). Names without a
// numeric suffix (GOMAXPROCS=1 hosts print none) pass through unchanged.
func benchBase(s string) string {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s
	}
	if _, err := strconv.Atoi(s[i+1:]); err != nil {
		return s
	}
	return s[:i]
}

// reportDoc is the slice of the harness export schema the gate reads; it must
// stay unmarshalable from harness.Report's WriteJSON/WriteJSONAll output.
type reportDoc struct {
	ID     string             `json:"id"`
	Values map[string]float64 `json:"values"`
}

// ExtractReportValue reads pagodabench -format json output — one report
// document or a multi-experiment array — and returns the Values entry under
// key from the report with the given experiment id. An empty exp accepts a
// single document whatever its id.
func ExtractReportValue(out []byte, exp, key string) (float64, error) {
	var docs []reportDoc
	if err := json.Unmarshal(out, &docs); err != nil {
		var one reportDoc
		if err2 := json.Unmarshal(out, &one); err2 != nil {
			return 0, fmt.Errorf("perf: output is neither a report document nor an array: %v", err2)
		}
		docs = []reportDoc{one}
	}
	for _, d := range docs {
		if exp != "" && d.ID != exp {
			continue
		}
		v, ok := d.Values[key]
		if !ok {
			return 0, fmt.Errorf("perf: report %q has no values key %q", d.ID, key)
		}
		return v, nil
	}
	return 0, fmt.Errorf("perf: no report with id %q in output (%d documents)", exp, len(docs))
}
