package perf

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/harness"
)

// benchOut is a realistic `go test -bench -benchmem` transcript: goos/pkg
// preamble, plain and sub-benchmarks, with and without the -N suffix, and a
// result line lacking alloc columns.
const benchOut = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkEngineSchedule-8    	69235738	        16.4 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineSleep     	51262942	        23.4 ns/op	       8 B/op	       1 allocs/op
BenchmarkOpenLoop/pagoda-8   	       1	109372708 ns/op
PASS
ok  	repro/internal/sim	9.186s
`

func TestParseBench(t *testing.T) {
	cases := []struct {
		name, field string
		want        float64
	}{
		{"BenchmarkEngineSchedule", "", 16.4}, // "" defaults to ns/op
		{"BenchmarkEngineSchedule", "ns/op", 16.4},
		{"BenchmarkEngineSchedule", "allocs/op", 0},
		{"BenchmarkEngineSleep", "ns/op", 23.4}, // no -N suffix (GOMAXPROCS=1)
		{"BenchmarkEngineSleep", "allocs/op", 1},
		{"BenchmarkEngineSleep", "B/op", 8},
		{"BenchmarkOpenLoop/pagoda", "ns/op", 109372708}, // sub-benchmark
	}
	for _, c := range cases {
		got, err := ParseBench([]byte(benchOut), c.name, c.field)
		if err != nil {
			t.Errorf("ParseBench(%s, %s): %v", c.name, c.field, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBench(%s, %s) = %v, want %v", c.name, c.field, got, c.want)
		}
	}
}

func TestParseBenchErrors(t *testing.T) {
	if _, err := ParseBench([]byte(benchOut), "BenchmarkMissing", "ns/op"); err == nil {
		t.Error("missing benchmark: want error")
	}
	// The sub-benchmark line has no -benchmem columns.
	if _, err := ParseBench([]byte(benchOut), "BenchmarkOpenLoop/pagoda", "allocs/op"); err == nil {
		t.Error("missing allocs/op column: want error")
	}
	if _, err := ParseBench([]byte("BenchmarkX-8 10 zz ns/op\n"), "BenchmarkX", "ns/op"); err == nil {
		t.Error("malformed value: want error")
	}
}

// TestReportRoundTrip pins the gate's parsing surface against the harness
// export schema: a Report written by WriteJSON / WriteJSONAll must round-trip
// through ExtractReportValue, and missing keys must be errors, not zeros.
func TestReportRoundTrip(t *testing.T) {
	r := &harness.Report{ID: "figX", Title: "Sample", Header: []string{"k", "v"},
		Values: map[string]float64{"pagoda/8/max-rate": 512000, "zero/value": 0}}
	r2 := &harness.Report{ID: "figY", Title: "Other",
		Values: map[string]float64{"pagoda/8/max-rate": 7}}

	var one bytes.Buffer
	if err := r.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if v, err := ExtractReportValue(one.Bytes(), "", "pagoda/8/max-rate"); err != nil || v != 512000 {
		t.Errorf("single doc, empty exp: got %v, %v", v, err)
	}
	if v, err := ExtractReportValue(one.Bytes(), "figX", "zero/value"); err != nil || v != 0 {
		t.Errorf("recorded zero must extract cleanly: got %v, %v", v, err)
	}
	if _, err := ExtractReportValue(one.Bytes(), "figX", "no/such/key"); err == nil ||
		!strings.Contains(err.Error(), "no/such/key") {
		t.Errorf("missing key must error with the key name, got %v", err)
	}

	var all bytes.Buffer
	if err := harness.WriteJSONAll(&all, []*harness.Report{r, r2}); err != nil {
		t.Fatal(err)
	}
	if v, err := ExtractReportValue(all.Bytes(), "figY", "pagoda/8/max-rate"); err != nil || v != 7 {
		t.Errorf("array, exp selection: got %v, %v", v, err)
	}
	if _, err := ExtractReportValue(all.Bytes(), "figZ", "pagoda/8/max-rate"); err == nil {
		t.Error("unknown experiment id must error")
	}
	if _, err := ExtractReportValue([]byte("not json"), "", "k"); err == nil {
		t.Error("non-JSON output must error")
	}
}
