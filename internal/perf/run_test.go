package perf

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompare(t *testing.T) {
	cases := []struct {
		base, tol float64
		dir       string
		v         float64
		want      Status
	}{
		// lower-is-better: band is baseline ± tol%
		{100, 10, Lower, 100, OK},
		{100, 10, Lower, 110, OK},     // at the edge: inside
		{100, 10, Lower, 110.1, Fail}, // just past
		{100, 10, Lower, 89.9, Improved},
		{100, 10, Lower, 95, OK},
		// higher-is-better mirrors
		{100, 10, Higher, 89.9, Fail},
		{100, 10, Higher, 110.1, Improved},
		{100, 10, Higher, 100, OK},
		// zero tolerance = exact match required
		{512000, 0, Higher, 512000, OK},
		{512000, 0, Higher, 511999, Fail},
		{512000, 0, Higher, 512001, Improved},
		// zero baseline degenerates to a zero-width band (0 allocs/op):
		// tolerance is percentage-of-baseline, so it cannot widen it
		{0, 100, Lower, 0, OK},
		{0, 100, Lower, 1, Fail},
		{0, 100, Higher, 1, Improved},
	}
	for _, c := range cases {
		m := &Metric{Name: "m", Baseline: c.base, TolerancePct: c.tol, Direction: c.dir}
		got, _ := compare(m, c.v)
		if got != c.want {
			t.Errorf("compare(base %v ±%v%% %s, measured %v) = %v, want %v",
				c.base, c.tol, c.dir, c.v, got, c.want)
		}
	}
}

// stubExec returns canned output per command and counts executions.
func stubExec(t *testing.T, outputs map[string]ExecResult, calls map[string]int) ExecFunc {
	return func(dir string, argv []string) (ExecResult, error) {
		cmd := strings.Join(argv, " ")
		calls[cmd]++
		res, ok := outputs[cmd]
		if !ok {
			t.Fatalf("unexpected command %q", cmd)
		}
		return res, nil
	}
}

func testSuite() *Suite {
	return &Suite{
		Suite: "test",
		Metrics: []*Metric{
			{Name: "sched_ns", Command: "go test -bench=X ./internal/sim/",
				Extract:  Extract{Kind: KindBench, Bench: "BenchmarkEngineSchedule", Field: "ns/op"},
				Baseline: 16.4, TolerancePct: 100, Direction: Lower, Quick: true},
			{Name: "sched_allocs", Command: "go test -bench=X ./internal/sim/",
				Extract:  Extract{Kind: KindBench, Bench: "BenchmarkEngineSchedule", Field: "allocs/op"},
				Baseline: 0, TolerancePct: 0, Direction: Lower, Quick: true},
			{Name: "fig5_wallclock", Command: "go run ./cmd/pagodabench -exp fig5",
				Extract:  Extract{Kind: KindWallclock},
				Baseline: 17.2, TolerancePct: 100, Direction: Lower},
			{Name: "capacity", Command: "go run ./cmd/pagodabench -exp cluster_scaling -format json",
				Extract:  Extract{Kind: KindReport, Exp: "cluster_scaling", Key: "pagoda/8/max-rate"},
				Baseline: 512000, TolerancePct: 0, Direction: Higher},
		},
	}
}

const healthyBench = "BenchmarkEngineSchedule-8  100  17.0 ns/op  0 B/op  0 allocs/op\n"

func healthyOutputs() map[string]ExecResult {
	return map[string]ExecResult{
		"go test -bench=X ./internal/sim/":   {Stdout: []byte(healthyBench)},
		"go run ./cmd/pagodabench -exp fig5": {Seconds: 16.9},
		"go run ./cmd/pagodabench -exp cluster_scaling -format json": {Stdout: []byte(
			`{"id":"cluster_scaling","values":{"pagoda/8/max-rate":512000}}`)},
	}
}

// TestRunnerHealthy drives the full pipeline on a clean tree: every metric
// within tolerance, metrics sharing a command sharing one execution.
func TestRunnerHealthy(t *testing.T) {
	s := testSuite()
	calls := map[string]int{}
	r := &Runner{Exec: stubExec(t, healthyOutputs(), calls)}
	vs := r.Run(s)
	if len(vs) != 4 {
		t.Fatalf("verdicts = %d, want 4", len(vs))
	}
	if Failed(vs) {
		t.Fatalf("healthy run failed: %+v", vs)
	}
	if calls["go test -bench=X ./internal/sim/"] != 1 {
		t.Errorf("shared command ran %d times, want 1", calls["go test -bench=X ./internal/sim/"])
	}
}

// TestRunnerQuickSubset pins -quick: only quick-marked metrics run, and
// their commands alone execute.
func TestRunnerQuickSubset(t *testing.T) {
	s := testSuite()
	calls := map[string]int{}
	r := &Runner{Quick: true, Exec: stubExec(t, healthyOutputs(), calls)}
	vs := r.Run(s)
	if len(vs) != 2 {
		t.Fatalf("quick verdicts = %d, want 2", len(vs))
	}
	if len(calls) != 1 {
		t.Errorf("quick run executed %d commands, want 1: %v", len(calls), calls)
	}
}

// TestRunnerInjectedRegression is the synthetic-regression fixture: the same
// suite against outputs where the scheduler benchmark slowed 3x and started
// allocating, and the capacity headline dropped a rung. The gate must fail
// and the verdict table must name every drifted metric.
func TestRunnerInjectedRegression(t *testing.T) {
	s := testSuite()
	outputs := healthyOutputs()
	outputs["go test -bench=X ./internal/sim/"] = ExecResult{
		Stdout: []byte("BenchmarkEngineSchedule-8  100  49.2 ns/op  24 B/op  2 allocs/op\n")}
	outputs["go run ./cmd/pagodabench -exp cluster_scaling -format json"] = ExecResult{
		Stdout: []byte(`{"id":"cluster_scaling","values":{"pagoda/8/max-rate":256000}}`)}
	calls := map[string]int{}
	vs := (&Runner{Exec: stubExec(t, outputs, calls)}).Run(s)
	if !Failed(vs) {
		t.Fatal("injected regression not caught")
	}
	status := map[string]Status{}
	for _, v := range vs {
		status[v.Metric.Name] = v.Status
	}
	for _, want := range []string{"sched_ns", "sched_allocs", "capacity"} {
		if status[want] != Fail {
			t.Errorf("%s = %v, want Fail", want, status[want])
		}
	}
	if status["fig5_wallclock"] != OK {
		t.Errorf("fig5_wallclock = %v, want OK", status["fig5_wallclock"])
	}
	var tbl bytes.Buffer
	FprintVerdicts(&tbl, s.Suite, vs)
	for _, want := range []string{"sched_ns", "sched_allocs", "capacity", "FAIL"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("verdict table missing %q:\n%s", want, tbl.String())
		}
	}
}

// TestRunnerCommandError pins the error path: a failing command errors every
// metric bound to it without touching the others.
func TestRunnerCommandError(t *testing.T) {
	s := testSuite()
	bad := "go test -bench=X ./internal/sim/"
	r := &Runner{Exec: func(dir string, argv []string) (ExecResult, error) {
		cmd := strings.Join(argv, " ")
		if cmd == bad {
			return ExecResult{}, fmt.Errorf("exit status 2")
		}
		return healthyOutputs()[cmd], nil
	}}
	vs := r.Run(s)
	if !Failed(vs) {
		t.Fatal("command failure must fail the run")
	}
	if vs[0].Status != Error || vs[1].Status != Error {
		t.Errorf("bench metrics = %v/%v, want Error/Error", vs[0].Status, vs[1].Status)
	}
	if vs[2].Status != OK && vs[2].Status != Improved {
		t.Errorf("unrelated metric = %v, want ok", vs[2].Status)
	}
}

// TestApplyUpdateAndSave pins the ratchet: measured values become baselines
// (errored metrics keep theirs), provenance is restamped, and the file
// round-trips through Save/Load.
func TestApplyUpdateAndSave(t *testing.T) {
	s := testSuite()
	vs := []Verdict{
		{Metric: s.Metrics[0], Measured: 12.34567891},
		{Metric: s.Metrics[1], Measured: 0},
		{Metric: s.Metrics[2], Err: fmt.Errorf("boom")},
		{Metric: s.Metrics[3], Measured: 512000},
	}
	p := Provenance{Host: "h (linux/amd64, 1 CPUs)", Date: "2026-08-08", GitRev: "abc1234"}
	ApplyUpdate(s, vs, p)
	if s.Metrics[0].Baseline != 12.3457 { // rounded to 4 decimals
		t.Errorf("ratcheted baseline = %v, want 12.3457", s.Metrics[0].Baseline)
	}
	if s.Metrics[2].Baseline != 17.2 {
		t.Errorf("errored metric baseline moved to %v", s.Metrics[2].Baseline)
	}
	if s.Provenance != p {
		t.Errorf("provenance = %+v, want %+v", s.Provenance, p)
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Provenance != p || got.Metrics[0].Baseline != 12.3457 || len(got.Metrics) != 4 {
		t.Errorf("round-trip mismatch: %+v", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Suite{
		{Suite: "", Metrics: []*Metric{{Name: "m", Command: "c", Direction: Lower, Extract: Extract{Kind: KindWallclock}}}},
		{Suite: "s"}, // no metrics
		{Suite: "s", Metrics: []*Metric{{Name: "", Command: "c", Direction: Lower, Extract: Extract{Kind: KindWallclock}}}},
		{Suite: "s", Metrics: []*Metric{ // duplicate names
			{Name: "m", Command: "c", Direction: Lower, Extract: Extract{Kind: KindWallclock}},
			{Name: "m", Command: "c", Direction: Lower, Extract: Extract{Kind: KindWallclock}}}},
		{Suite: "s", Metrics: []*Metric{{Name: "m", Command: "", Direction: Lower, Extract: Extract{Kind: KindWallclock}}}},
		{Suite: "s", Metrics: []*Metric{{Name: "m", Command: "c", Direction: "sideways", Extract: Extract{Kind: KindWallclock}}}},
		{Suite: "s", Metrics: []*Metric{{Name: "m", Command: "c", Direction: Lower, TolerancePct: -1, Extract: Extract{Kind: KindWallclock}}}},
		{Suite: "s", Metrics: []*Metric{{Name: "m", Command: "c", Direction: Lower, Extract: Extract{Kind: "psychic"}}}},
		{Suite: "s", Metrics: []*Metric{{Name: "m", Command: "c", Direction: Lower, Extract: Extract{Kind: KindBench}}}},                                   // no bench name
		{Suite: "s", Metrics: []*Metric{{Name: "m", Command: "c", Direction: Lower, Extract: Extract{Kind: KindBench, Bench: "B", Field: "furlongs/op"}}}}, // bad field
		{Suite: "s", Metrics: []*Metric{{Name: "m", Command: "c", Direction: Lower, Extract: Extract{Kind: KindReport}}}},                                  // no key
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error: %+v", i, s)
		}
	}
	if err := testSuite().Validate(); err != nil {
		t.Errorf("healthy suite rejected: %v", err)
	}
}
