package pcie

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

func TestSingleTransferTime(t *testing.T) {
	eng := sim.New()
	bus := New(eng, Default())
	var done sim.Time
	eng.Spawn("h", func(p *sim.Proc) {
		bus.Transfer(p, HostToDevice, 12000) // 12 KB at 12 B/cycle = 1000 cycles
		done = eng.Now()
	})
	eng.Run()
	approx(t, done, 8000+1000, 1e-6, "transfer time")
	if bus.Transfers[HostToDevice] != 1 || bus.BytesMoved[HostToDevice] != 12000 {
		t.Errorf("accounting: %+v", bus)
	}
}

func TestConcurrentTransfersShareBandwidth(t *testing.T) {
	eng := sim.New()
	bus := New(eng, Config{BytesPerCycle: 10, Latency: 0})
	var t1, t2 sim.Time
	eng.Spawn("a", func(p *sim.Proc) { bus.Transfer(p, HostToDevice, 1000); t1 = eng.Now() })
	eng.Spawn("b", func(p *sim.Proc) { bus.Transfer(p, HostToDevice, 1000); t2 = eng.Now() })
	eng.Run()
	// Two equal flows at 10 B/cycle total: each effectively 5 B/cycle.
	approx(t, t1, 200, 1e-6, "flow 1")
	approx(t, t2, 200, 1e-6, "flow 2")
}

func TestDirectionsIndependent(t *testing.T) {
	eng := sim.New()
	bus := New(eng, Config{BytesPerCycle: 10, Latency: 0})
	var h2d, d2h sim.Time
	eng.Spawn("a", func(p *sim.Proc) { bus.Transfer(p, HostToDevice, 1000); h2d = eng.Now() })
	eng.Spawn("b", func(p *sim.Proc) { bus.Transfer(p, DeviceToHost, 1000); d2h = eng.Now() })
	eng.Run()
	// Full duplex: neither slows the other.
	approx(t, h2d, 100, 1e-6, "H2D")
	approx(t, d2h, 100, 1e-6, "D2H")
}

func TestAggregationBeatsManySmallCopies(t *testing.T) {
	// The property behind lazy aggregate TaskTable updates: one bulk copy of
	// N entries is much cheaper than N per-entry copies, because latency
	// dominates small transactions.
	run := func(copies, bytesEach int) sim.Time {
		eng := sim.New()
		bus := New(eng, Default())
		eng.Spawn("h", func(p *sim.Proc) {
			for i := 0; i < copies; i++ {
				bus.Transfer(p, DeviceToHost, bytesEach)
			}
		})
		return eng.Run()
	}
	many := run(64, 256)
	bulk := run(1, 64*256)
	if bulk*10 > many {
		t.Fatalf("aggregation too weak: bulk=%v many=%v", bulk, many)
	}
}

func TestTransferAsync(t *testing.T) {
	eng := sim.New()
	bus := New(eng, Config{BytesPerCycle: 1, Latency: 100})
	var done sim.Time
	bus.TransferAsync(HostToDevice, 50, func() { done = eng.Now() })
	eng.Run()
	approx(t, done, 150, 1e-6, "async completion")
}

func TestZeroByteTransferLatencyOnly(t *testing.T) {
	eng := sim.New()
	bus := New(eng, Default())
	var done sim.Time
	eng.Spawn("h", func(p *sim.Proc) {
		bus.Transfer(p, HostToDevice, 0)
		done = eng.Now()
	})
	eng.Run()
	approx(t, done, 8000, 1e-6, "latency-only transfer")
}

func TestMinTransferTime(t *testing.T) {
	eng := sim.New()
	bus := New(eng, Default())
	approx(t, bus.MinTransferTime(1200), 8000+100, 1e-9, "analytic bound")
}

func TestNegativeTransferPanics(t *testing.T) {
	eng := sim.New()
	bus := New(eng, Default())
	eng.Spawn("h", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		bus.Transfer(p, HostToDevice, -1)
	})
	eng.Run()
}

// TestStartedVsCompletedCounters: Transfers[d] only counts *completed*
// transactions; Started[d]/BytesRequested[d] tick at admission. Sampling
// mid-flight (e.g. a utilization probe) used to read zero activity while a
// large DMA was in progress.
func TestStartedVsCompletedCounters(t *testing.T) {
	eng := sim.New()
	bus := New(eng, Config{BytesPerCycle: 10, Latency: 0})
	eng.Spawn("h", func(p *sim.Proc) {
		bus.Transfer(p, HostToDevice, 1000) // 100 cycles
	})
	var midStarted, midDone, midInFlight int
	eng.Schedule(50, func() { // sample mid-transfer
		midStarted = bus.Started[HostToDevice]
		midDone = bus.Transfers[HostToDevice]
		midInFlight = bus.InFlight(HostToDevice)
	})
	eng.Run()
	if midStarted != 1 || midDone != 0 || midInFlight != 1 {
		t.Fatalf("mid-flight: Started=%d Transfers=%d InFlight=%d, want 1/0/1",
			midStarted, midDone, midInFlight)
	}
	if bus.Started[HostToDevice] != 1 || bus.Transfers[HostToDevice] != 1 {
		t.Fatalf("after drain: Started=%d Transfers=%d, want 1/1",
			bus.Started[HostToDevice], bus.Transfers[HostToDevice])
	}
	if bus.InFlight(HostToDevice) != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", bus.InFlight(HostToDevice))
	}
	if bus.BytesRequested[HostToDevice] != 1000 || bus.BytesMoved[HostToDevice] != 1000 {
		t.Fatalf("bytes: requested=%d moved=%d, want 1000/1000",
			bus.BytesRequested[HostToDevice], bus.BytesMoved[HostToDevice])
	}
}
