// Package pcie models the PCI Express link between host and device: a fixed
// per-transaction latency plus a shared-bandwidth pipe per direction.
//
// Two properties matter to the Pagoda runtime and are preserved here:
//
//  1. Transactions are expensive (microseconds), so fine-grained CPU-GPU
//     handshaking dominates narrow-task runtimes that do it per task.
//  2. There is no cross-transaction ordering or atomicity guarantee; only
//     the CUDA stream layer above provides FIFO completion per stream.
//
// Bandwidth is shared among in-flight transfers in the same direction
// (processor sharing), so bulk aggregated copies achieve better effective
// bandwidth than many small ones — the property behind the TaskTable's lazy
// aggregate updates (§4.2).
package pcie

import (
	"math"

	"repro/internal/sim"
)

// Dir is a transfer direction.
type Dir int

const (
	HostToDevice Dir = iota
	DeviceToHost
)

func (d Dir) String() string {
	if d == HostToDevice {
		return "H2D"
	}
	return "D2H"
}

// Config describes the link. Defaults model PCIe 3.0 x16 on the paper's
// testbed: ~12 GB/s effective per direction, ~8 µs end-to-end transaction
// latency. Times are in GPU cycles (1 cycle = 1 ns).
type Config struct {
	BytesPerCycle float64 // effective bandwidth per direction (12 B/cycle = 12 GB/s)
	Latency       sim.Time
}

// Default returns the paper-testbed link model.
func Default() Config {
	return Config{BytesPerCycle: 12, Latency: 8000}
}

// Bus is the simulated link. Each direction has an independent
// bandwidth-shared pipe (PCIe is full duplex).
type Bus struct {
	eng  *sim.Engine
	cfg  Config
	pipe [2]*pipe

	// Transfers and BytesMoved count completed transactions (diagnostics and
	// handshake accounting in experiments). Started and BytesRequested count
	// transaction starts, so mid-run sampling sees in-flight traffic too:
	// Started-Transfers is the number of transactions currently on the wire.
	Transfers      [2]int
	BytesMoved     [2]int64
	Started        [2]int
	BytesRequested [2]int64
}

// pipe is a processor-sharing bandwidth resource: n concurrent transfers
// each progress at bandwidth/n.
type pipe struct {
	eng  *sim.Engine
	rate float64 // bytes per cycle when alone
	// reqs holds in-flight transfers by value; completion compacts in place
	// and reuses the backing array, so steady-state transfer never allocates.
	reqs  []xfer
	last  sim.Time
	timer *sim.Timer
}

type xfer struct {
	remaining float64 // bytes
	proc      *sim.Proc
}

func newPipe(eng *sim.Engine, rate float64) *pipe {
	p := &pipe{eng: eng, rate: rate, last: eng.Now()}
	p.timer = sim.NewTimer(eng, p.onTimer)
	return p
}

func (p *pipe) perFlow() float64 {
	if len(p.reqs) == 0 {
		return 0
	}
	return p.rate / float64(len(p.reqs))
}

func (p *pipe) settle() {
	now := p.eng.Now()
	dt := now - p.last
	if dt > 0 {
		r := p.perFlow()
		for i := range p.reqs {
			p.reqs[i].remaining -= dt * r
		}
	}
	p.last = now
}

func (p *pipe) rearm() {
	if len(p.reqs) == 0 {
		p.timer.Stop()
		return
	}
	minRem := math.Inf(1)
	for i := range p.reqs {
		if p.reqs[i].remaining < minRem {
			minRem = p.reqs[i].remaining
		}
	}
	if minRem < 0 {
		minRem = 0
	}
	d := minRem / p.perFlow()
	if now := p.eng.Now(); now+d == now {
		// See gpu.bwResource.rearm: a delay below the clock's current
		// float64 ulp would re-fire at this instant forever without
		// draining; step to the next representable instant so the
		// transfer completes.
		p.timer.ResetAt(math.Nextafter(now, math.Inf(1)))
		return
	}
	p.timer.Reset(d)
}

func (p *pipe) onTimer() {
	p.settle()
	kept := p.reqs[:0]
	for i := range p.reqs {
		if p.reqs[i].remaining <= 1e-6 {
			p.reqs[i].proc.Wakeup()
		} else {
			kept = append(kept, p.reqs[i])
		}
	}
	p.reqs = kept
	p.rearm()
}

func (p *pipe) transfer(proc *sim.Proc, bytes int) {
	if bytes <= 0 {
		return
	}
	p.settle()
	p.reqs = append(p.reqs, xfer{remaining: float64(bytes), proc: proc})
	p.rearm()
	proc.Block()
}

// New creates a bus on the engine.
func New(eng *sim.Engine, cfg Config) *Bus {
	if cfg.BytesPerCycle <= 0 {
		panic("pcie: non-positive bandwidth")
	}
	return &Bus{
		eng:  eng,
		cfg:  cfg,
		pipe: [2]*pipe{newPipe(eng, cfg.BytesPerCycle), newPipe(eng, cfg.BytesPerCycle)},
	}
}

// Config returns the link parameters.
func (b *Bus) Config() Config { return b.cfg }

// Transfer moves `bytes` in direction d, blocking the calling process for
// the transaction latency plus bandwidth-shared transfer time. The start is
// counted before the process blocks and the completion after, so diagnostics
// sampled mid-run (e.g. handshake counts taken before quiesce) see in-flight
// transactions rather than undercounting them.
func (b *Bus) Transfer(p *sim.Proc, d Dir, bytes int) {
	if bytes < 0 {
		panic("pcie: negative transfer size")
	}
	b.Started[d]++
	b.BytesRequested[d] += int64(bytes)
	p.Sleep(b.cfg.Latency)
	b.pipe[d].transfer(p, bytes)
	b.Transfers[d]++
	b.BytesMoved[d] += int64(bytes)
}

// InFlight returns the number of transactions started but not yet completed
// in direction d.
func (b *Bus) InFlight(d Dir) int { return b.Started[d] - b.Transfers[d] }

// TransferAsync starts a transfer and invokes onDone (on the event loop)
// when it completes, without blocking the caller.
func (b *Bus) TransferAsync(d Dir, bytes int, onDone func()) {
	b.eng.Spawn("pcie-xfer", func(p *sim.Proc) {
		b.Transfer(p, d, bytes)
		if onDone != nil {
			onDone()
		}
	})
}

// MinTransferTime returns the uncontended time to move `bytes` (latency +
// bytes/bandwidth) — useful as an analytic lower bound in tests.
func (b *Bus) MinTransferTime(bytes int) sim.Time {
	return b.cfg.Latency + float64(bytes)/b.cfg.BytesPerCycle
}
