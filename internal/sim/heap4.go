package sim

// The event queue is a 4-ary min-heap ordered by (at, seq), stored 0-based in
// Engine.queue. A 4-ary layout halves the tree depth of a binary heap, which
// cuts comparisons on the sift-up path (the common case: most events are
// scheduled near the clock and popped soon after) and keeps sibling keys on
// one cache line. Every entry carries its own position (event.idx), so armed
// timers can be re-keyed or removed in place instead of abandoning stale
// entries in the queue.

const heapArity = 4

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush appends ev and restores heap order.
func (e *Engine) heapPush(ev *event) {
	e.queue = append(e.queue, ev)
	ev.idx = len(e.queue) - 1
	e.siftUp(ev.idx)
}

// heapPopHead removes and returns the earliest event.
func (e *Engine) heapPopHead() *event {
	h := e.queue
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[0].idx = 0
	h[n] = nil
	e.queue = h[:n]
	if n > 0 {
		e.siftDown(0)
	}
	root.idx = -1
	return root
}

// heapRemove deletes the entry at index i (used by Timer.Stop).
func (e *Engine) heapRemove(i int) {
	h := e.queue
	n := len(h) - 1
	removed := h[i]
	if i != n {
		h[i] = h[n]
		h[i].idx = i
	}
	h[n] = nil
	e.queue = h[:n]
	if i < n {
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	removed.idx = -1
}

// heapFix restores order after the key of the entry at index i changed
// (Timer.ResetAt's decrease/increase-key).
func (e *Engine) heapFix(i int) {
	if !e.siftDown(i) {
		e.siftUp(i)
	}
}

func (e *Engine) siftUp(i int) {
	h := e.queue
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := h[parent]
		if !eventLess(ev, p) {
			break
		}
		h[i] = p
		p.idx = i
		i = parent
	}
	h[i] = ev
	ev.idx = i
}

// siftDown restores order below index i and reports whether the entry moved.
func (e *Engine) siftDown(i int) bool {
	h := e.queue
	n := len(h)
	ev := h[i]
	start := i
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(h[c], h[min]) {
				min = c
			}
		}
		if !eventLess(h[min], ev) {
			break
		}
		h[i] = h[min]
		h[i].idx = i
		i = min
	}
	h[i] = ev
	ev.idx = i
	return i != start
}
