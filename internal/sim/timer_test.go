package sim

import "testing"

func TestTimerFires(t *testing.T) {
	e := New()
	fired := Time(-1)
	tm := NewTimer(e, func() { fired = e.Now() })
	tm.Reset(25)
	if !tm.Armed() {
		t.Fatal("timer not armed after Reset")
	}
	e.Run()
	if fired != 25 {
		t.Fatalf("fired at %v, want 25", fired)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	fired := false
	tm := NewTimer(e, func() { fired = true })
	tm.Reset(10)
	tm.Stop()
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerResetSupersedes(t *testing.T) {
	e := New()
	var fires []Time
	tm := NewTimer(e, func() { fires = append(fires, e.Now()) })
	tm.Reset(10)
	tm.Reset(30) // cancels the 10-cycle arming
	e.Run()
	if len(fires) != 1 || fires[0] != 30 {
		t.Fatalf("fires = %v, want [30]", fires)
	}
}

func TestTimerRearmAfterFire(t *testing.T) {
	e := New()
	var fires []Time
	var tm *Timer
	tm = NewTimer(e, func() {
		fires = append(fires, e.Now())
		if len(fires) < 3 {
			tm.Reset(5)
		}
	})
	tm.Reset(5)
	e.Run()
	if len(fires) != 3 || fires[2] != 15 {
		t.Fatalf("fires = %v, want [5 10 15]", fires)
	}
}

func TestTimerDeadline(t *testing.T) {
	e := New()
	tm := NewTimer(e, func() {})
	e.Schedule(7, func() { tm.Reset(13) })
	e.RunUntil(8)
	if tm.Deadline() != 20 {
		t.Fatalf("Deadline = %v, want 20", tm.Deadline())
	}
}
