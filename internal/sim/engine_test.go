package sim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 3) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %v, want 20", e.Now())
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events out of schedule order: %v", got)
		}
	}
}

func TestNestedSchedule(t *testing.T) {
	e := New()
	var times []Time
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(4, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 5 {
		t.Fatalf("times = %v, want [1 5]", times)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestScheduleInPastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestStop(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (Stop should halt the loop)", ran)
	}
	if !e.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
	// Run again resumes with the remaining event.
	e.Run()
	if ran != 2 {
		t.Fatalf("ran = %d after second Run, want 2", ran)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Time{1, 5, 9, 15} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(9)
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want events at 1,5,9", fired)
	}
	if e.Now() != 9 {
		t.Errorf("Now() = %v, want 9", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining event did not fire: %v", fired)
	}
}

func TestRunUntilDeadlineBetweenEvents(t *testing.T) {
	e := New()
	e.Schedule(100, func() {})
	e.RunUntil(50)
	if e.Now() != 50 {
		t.Errorf("Now() = %v, want clock advanced to deadline 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		e := New()
		var order []int
		var rec func(id, depth int)
		rec = func(id, depth int) {
			order = append(order, id)
			if depth < 3 {
				e.Schedule(Time(id%3), func() { rec(id*10, depth+1) })
				e.Schedule(Time(id%2), func() { rec(id*10+1, depth+1) })
			}
		}
		for i := 1; i <= 5; i++ {
			i := i
			e.Schedule(Time(i), func() { rec(i, 0) })
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
