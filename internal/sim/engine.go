// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock measured in abstract time units (this
// repository uses GPU cycles, 1 cycle = 1 ns at 1 GHz) and an event queue.
// Concurrency is expressed with coroutine-style processes (Proc): the engine
// runs exactly one process at a time and hands the execution baton back and
// forth over unbuffered channels, so simulations are fully deterministic and
// free of data races even though every process is a real goroutine.
//
// Events scheduled for the same timestamp fire in the order they were
// scheduled (a monotonically increasing sequence number breaks ties).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is the virtual clock type, in cycles. Fractional cycles arise from the
// processor-sharing compute model in internal/gpu.
type Time = float64

// Infinity is a timestamp later than any event the engine will ever fire.
const Infinity Time = math.MaxFloat64

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }

// Engine is a discrete-event simulator. The zero value is not usable; call
// New.
type Engine struct {
	now     Time
	seq     int64
	queue   eventHeap
	stopped bool
	// current is the process currently holding the execution baton, nil when
	// the engine itself (the event loop) is running.
	current *Proc
	// procs counts live processes, for leak diagnostics.
	procs int
	// live registers every spawned, unfinished process for BlockedProcs.
	live map[*Proc]struct{}
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run at Now()+delay. A negative delay panics.
// fn runs on the engine's event loop; it may resume processes but must not
// block.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute time at, which must not be in
// the past.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule in the past: %v < %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// Stop makes Run return after the currently executing event completes.
// Callable from inside event handlers and processes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Infinity) }

// RunUntil executes events with timestamps <= deadline, stopping earlier if
// the queue drains or Stop is called. The clock is left at the time of the
// last executed event (or at deadline if the deadline was reached with events
// still pending).
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue.peek()
		if ev.at > deadline {
			e.now = deadline
			return e.now
		}
		heap.Pop(&e.queue)
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fn()
	}
	return e.now
}

// Pending returns the number of queued events (diagnostics).
func (e *Engine) Pending() int { return len(e.queue) }

// LiveProcs returns the number of spawned processes that have not finished.
func (e *Engine) LiveProcs() int { return e.procs }

// BlockedProcs returns the names of live processes that have no pending
// wake-up — the ones parked on a Signal or Block. When Run returns with the
// queue drained but BlockedProcs is non-empty, those processes are
// deadlocked; the list is the first thing to print when hunting one.
func (e *Engine) BlockedProcs() []string {
	var out []string
	for p := range e.live {
		if !p.parked || p.dead {
			continue
		}
		out = append(out, p.name)
	}
	sortStrings(out)
	return out
}

// sortStrings is a tiny insertion sort (avoids importing sort for one call
// site on a diagnostics path).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
