// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock measured in abstract time units (this
// repository uses GPU cycles, 1 cycle = 1 ns at 1 GHz) and an event queue.
// Concurrency is expressed with coroutine-style processes (Proc): the engine
// runs exactly one process at a time and hands the execution baton from
// goroutine to goroutine over unbuffered channels, so simulations are fully
// deterministic and free of data races even though every process is a real
// goroutine.
//
// Events scheduled for the same timestamp fire in the order they were
// scheduled (a monotonically increasing sequence number breaks ties).
package sim

import (
	"fmt"
	"math"
)

// Time is the virtual clock type, in cycles. Fractional cycles arise from the
// processor-sharing compute model in internal/gpu.
type Time = float64

// Infinity is a timestamp later than any event the engine will ever fire.
const Infinity Time = math.MaxFloat64

// event is a pooled queue entry. At most one payload field is set: proc (a
// process resume carrying its wake generation), tmr (an armed Timer, which
// owns the entry until it fires or is disarmed), or fn (a plain callback).
// idx is the entry's position in the queue heap, maintained by the sift
// routines so timers can re-key or remove their entry in place.
type event struct {
	at   Time
	seq  int64
	idx  int
	fn   func()
	proc *Proc
	gen  uint64
	tmr  *Timer
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// New.
type Engine struct {
	now   Time
	seq   int64
	queue []*event
	// pool recycles popped event structs; its high-water mark is the maximum
	// number of simultaneously pending events, so it stays small.
	pool []*event
	// stopReq is a pending Stop request; the run loop consumes it (setting
	// stopped) before firing the next event. A request left over from a
	// drained run halts the next RunUntil before its first event.
	stopReq bool
	// stopped latches that the most recent run was halted by Stop.
	stopped bool
	// deadline is the active RunUntil bound, visible to whichever goroutine
	// currently drives the event loop.
	deadline Time
	// done carries the baton back to the goroutine blocked in RunUntil when
	// the run ends on some process's goroutine.
	done chan struct{}
	// current is the process currently holding the execution baton, nil when
	// the event loop is running.
	current *Proc
	// procs counts live processes, for leak diagnostics.
	procs int
	// live registers every spawned, unfinished process for BlockedProcs.
	live map[*Proc]struct{}
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{done: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// newEvent allocates (or recycles) a queue entry at absolute time at and
// assigns the next sequence number. Callers fill in exactly one payload
// field after it returns.
func (e *Engine) newEvent(at Time) *event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule in the past: %v < %v", at, e.now))
	}
	var ev *event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
	} else {
		ev = &event{}
	}
	e.seq++
	ev.at = at
	ev.seq = e.seq
	e.heapPush(ev)
	return ev
}

// maxPool bounds the event free list; draining a huge one-shot queue should
// release the surplus to the GC rather than hold it for the run's lifetime.
const maxPool = 1 << 14

// freeEvent returns a popped or removed entry to the pool.
func (e *Engine) freeEvent(ev *event) {
	if len(e.pool) >= maxPool {
		return
	}
	ev.fn = nil
	ev.proc = nil
	ev.tmr = nil
	ev.gen = 0
	e.pool = append(e.pool, ev)
}

// Schedule arranges for fn to run at Now()+delay. A negative delay panics.
// fn runs on the engine's event loop; it may resume processes but must not
// block.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute time at, which must not be in
// the past.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	e.newEvent(at).fn = fn
}

// scheduleProc queues a resume of p at Now()+delay without allocating a
// closure (the hot Sleep/Wakeup path).
func (e *Engine) scheduleProc(delay Time, p *Proc, gen uint64) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	ev := e.newEvent(e.now + delay)
	ev.proc = p
	ev.gen = gen
}

// Stop makes Run return after the currently executing event completes. A Stop
// issued while no run is active halts the next run before its first event.
// Callable from inside event handlers and processes.
func (e *Engine) Stop() { e.stopReq = true }

// Stopped reports whether Stop has been called and not yet superseded by a
// later run.
func (e *Engine) Stopped() bool { return e.stopped || e.stopReq }

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Infinity) }

// RunUntil executes events with timestamps <= deadline, stopping earlier if
// the queue drains or Stop is called. The clock is left at the time of the
// last executed event (or at deadline if the deadline was reached with events
// still pending). A Stop issued before the run starts (e.g. from a completion
// hook between two RunUntil calls) is honored immediately: no event fires.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.stopReq {
		e.stopReq = false
		e.stopped = true
		return e.now
	}
	e.stopped = false
	e.deadline = deadline
	if e.dispatch(nil) == batonHandedOff {
		// The baton went to a process; the run continues on process
		// goroutines until whichever of them ends it signals done.
		<-e.done
	}
	return e.now
}

// dispatchResult says how a dispatch loop ended.
type dispatchResult int

const (
	// runEnded: queue drained, Stop consumed, or deadline reached. Whoever
	// owns the RunUntil frame must be given the baton back (endRun) unless
	// the dispatcher is that frame itself.
	runEnded dispatchResult = iota
	// batonHandedOff: a process other than the dispatcher was resumed and now
	// drives the loop from its own goroutine.
	batonHandedOff
	// selfResumed: the next runnable event was the dispatcher's own resume —
	// it simply continues, with no channel handoff at all (the common
	// Sleep/rearm ping-pong).
	selfResumed
)

// dispatch drives the event loop on the calling goroutine until the run ends
// or the baton moves. self is the process driving the loop from its yield
// point (nil when called from RunUntil or a finished process's goroutine):
// resuming self short-circuits without touching a channel, and resuming any
// other process costs exactly one channel handoff.
func (e *Engine) dispatch(self *Proc) dispatchResult {
	e.current = nil
	for len(e.queue) > 0 {
		if e.stopReq {
			e.stopReq = false
			e.stopped = true
			return runEnded
		}
		ev := e.queue[0]
		if ev.at > e.deadline {
			e.now = e.deadline
			return runEnded
		}
		e.heapPopHead()
		if ev.at > e.now {
			e.now = ev.at
		}
		switch {
		case ev.proc != nil:
			p, gen := ev.proc, ev.gen
			e.freeEvent(ev)
			if p.dead || gen != p.wakeGen || !p.armed {
				continue // stale wake-up
			}
			p.armed = false
			e.current = p
			if p == self {
				return selfResumed
			}
			p.wake <- struct{}{}
			return batonHandedOff
		case ev.tmr != nil:
			t := ev.tmr
			t.ev = nil
			t.set = false
			e.freeEvent(ev)
			t.fn()
		default:
			fn := ev.fn
			e.freeEvent(ev)
			fn()
		}
	}
	return runEnded
}

// endRun hands the baton back to the goroutine blocked in RunUntil. Called by
// a process goroutine whose dispatch saw the run end.
func (e *Engine) endRun() { e.done <- struct{}{} }

// Pending returns the number of queued events (diagnostics). Disarmed and
// superseded timers do not linger in the queue, so this is O(live events).
func (e *Engine) Pending() int { return len(e.queue) }

// LiveProcs returns the number of spawned processes that have not finished.
func (e *Engine) LiveProcs() int { return e.procs }

// BlockedProcs returns the names of live processes that have no pending
// wake-up — the ones parked on a Signal or Block. When Run returns with the
// queue drained but BlockedProcs is non-empty, those processes are
// deadlocked; the list is the first thing to print when hunting one.
func (e *Engine) BlockedProcs() []string {
	var out []string
	//pagoda:allow maprange diagnostics-only list, sorted below before it is returned
	for p := range e.live {
		if !p.parked || p.dead {
			continue
		}
		out = append(out, p.name)
	}
	sortStrings(out)
	return out
}

// sortStrings is a tiny insertion sort (avoids importing sort for one call
// site on a diagnostics path).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
