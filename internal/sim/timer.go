package sim

// Timer is a cancellable, re-armable one-shot timer. Unlike raw Schedule
// calls, a Timer can be Stopped or re-Reset before it fires. The timer owns a
// single indexed entry in the engine's event heap: ResetAt re-keys that entry
// in place and Stop removes it, so rearm-heavy users (the processor-sharing
// resources in internal/gpu and internal/pcie) leave no stale events behind
// and Engine.Pending stays proportional to live timers, not total Resets.
type Timer struct {
	eng *Engine
	fn  func()
	ev  *event // heap entry while armed, nil otherwise
	at  Time
	set bool
}

// NewTimer returns a timer that invokes fn on the engine's event loop when it
// fires. The timer starts unarmed.
func NewTimer(e *Engine, fn func()) *Timer {
	return &Timer{eng: e, fn: fn}
}

// Reset arms the timer to fire after delay, cancelling any earlier arming.
func (t *Timer) Reset(delay Time) { t.ResetAt(t.eng.now + delay) }

// ResetAt arms the timer to fire at absolute time at, cancelling any earlier
// arming. An armed timer's queue entry is re-keyed in place; re-arming never
// grows the queue. The entry takes a fresh sequence number, so the firing
// order relative to other same-timestamp events is exactly as if it had been
// newly scheduled.
func (t *Timer) ResetAt(at Time) {
	e := t.eng
	t.set = true
	t.at = at
	if t.ev != nil {
		if at < e.now {
			panic("sim: timer reset in the past")
		}
		e.seq++
		t.ev.at = at
		t.ev.seq = e.seq
		e.heapFix(t.ev.idx)
		return
	}
	ev := e.newEvent(at)
	ev.tmr = t
	t.ev = ev
}

// Stop disarms the timer, removing its queue entry. It is safe to call
// whether or not the timer is armed.
func (t *Timer) Stop() {
	t.set = false
	if t.ev != nil {
		ev := t.ev
		t.ev = nil
		t.eng.heapRemove(ev.idx)
		t.eng.freeEvent(ev)
	}
}

// Armed reports whether the timer is set to fire.
func (t *Timer) Armed() bool { return t.set }

// Deadline returns the absolute fire time; meaningful only when Armed.
func (t *Timer) Deadline() Time { return t.at }
