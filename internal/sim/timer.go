package sim

// Timer is a cancellable, re-armable one-shot timer. Unlike raw Schedule
// calls, a Timer can be Stopped or re-Reset before it fires; stale firings
// are suppressed with a generation counter (events in the heap cannot be
// removed, only invalidated).
type Timer struct {
	eng *Engine
	fn  func()
	gen uint64
	at  Time
	set bool
}

// NewTimer returns a timer that invokes fn on the engine's event loop when it
// fires. The timer starts unarmed.
func NewTimer(e *Engine, fn func()) *Timer {
	return &Timer{eng: e, fn: fn}
}

// Reset arms the timer to fire after delay, cancelling any earlier arming.
func (t *Timer) Reset(delay Time) { t.ResetAt(t.eng.now + delay) }

// ResetAt arms the timer to fire at absolute time at, cancelling any earlier
// arming.
func (t *Timer) ResetAt(at Time) {
	t.gen++
	t.set = true
	t.at = at
	gen := t.gen
	t.eng.ScheduleAt(at, func() {
		if gen != t.gen || !t.set {
			return
		}
		t.set = false
		t.fn()
	})
}

// Stop disarms the timer. It is safe to call whether or not the timer is
// armed.
func (t *Timer) Stop() {
	t.gen++
	t.set = false
}

// Armed reports whether the timer is set to fire.
func (t *Timer) Armed() bool { return t.set }

// Deadline returns the absolute fire time; meaningful only when Armed.
func (t *Timer) Deadline() Time { return t.at }
