package sim

import "testing"

// TestPendingBoundedUnderTimerChurn is the regression test for the stale
// timer-event leak: every Timer.Reset used to push a fresh closure into the
// event heap and leave the superseded one behind until its original deadline,
// so Pending() grew O(total Resets). An armed timer now owns exactly one
// indexed heap entry that Reset re-keys in place.
func TestPendingBoundedUnderTimerChurn(t *testing.T) {
	e := New()
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	const resets = 100_000
	for i := 0; i < resets; i++ {
		tm.Reset(Time(1000 + i%97))
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after %d Resets, want 1 (one live timer entry)", got, resets)
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1 (only the last Reset counts)", fired)
	}

	// Churn interleaved with running: a rearm-on-fire pattern (the gpu/pcie
	// processor-sharing resources) must not accumulate entries either.
	e2 := New()
	n := 0
	var tm2 *Timer
	tm2 = NewTimer(e2, func() {
		n++
		if n < 10_000 {
			tm2.Reset(3)
			tm2.Reset(1) // supersede immediately, as settle/rearm does
		}
	})
	tm2.Reset(1)
	e2.Run()
	if n != 10_000 {
		t.Fatalf("rearm chain fired %d times, want 10000", n)
	}
	if got := e2.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
}

// TestTimerStopRemovesEntry checks Stop removes the heap entry outright.
func TestTimerStopRemovesEntry(t *testing.T) {
	e := New()
	timers := make([]*Timer, 64)
	for i := range timers {
		timers[i] = NewTimer(e, func() {})
		timers[i].Reset(Time(10 + i))
	}
	for _, tm := range timers {
		tm.Stop()
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after stopping all timers, want 0", got)
	}
	if end := e.Run(); end != 0 {
		t.Fatalf("Run() advanced to %v over a queue of stopped timers, want 0", end)
	}
}

// TestStopBeforeRunHonored: a Stop issued between runs (e.g. from a
// completion hook after RunUntil returned) must halt the next run before any
// event fires, and be consumed so the run after that proceeds.
func TestStopBeforeRunHonored(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(5, func() { ran++ })
	e.Stop()
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	if end := e.Run(); end != 0 {
		t.Fatalf("Run() = %v after pre-set Stop, want 0 (no event fires)", end)
	}
	if ran != 0 {
		t.Fatalf("event fired despite pre-set Stop")
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after halted run")
	}
	// The stop was consumed: the next run proceeds normally.
	if end := e.Run(); end != 5 {
		t.Fatalf("second Run() = %v, want 5", end)
	}
	if ran != 1 {
		t.Fatalf("ran = %d after second Run, want 1", ran)
	}
}

// BenchmarkEngineSchedule measures the raw Schedule/pop cycle on a small
// steady-state queue (the common case, unlike the giant one-shot queue of
// BenchmarkEngineEventThroughput).
func BenchmarkEngineSchedule(b *testing.B) {
	e := New()
	fired := 0
	var step func()
	step = func() {
		fired++
		if fired < b.N {
			e.Schedule(1, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(0, step)
	e.Run()
	if fired != b.N {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}

// BenchmarkEngineSleep measures the full Sleep round trip: arm, schedule,
// yield, self-resume (no channel handoff on this path).
func BenchmarkEngineSleep(b *testing.B) {
	e := New()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineTimerChurn measures Reset-heavy rearming, the dominant
// operation of the processor-sharing resources in internal/gpu and
// internal/pcie.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := New()
	fired := 0
	var tm *Timer
	tm = NewTimer(e, func() {
		fired++
		if fired < b.N {
			tm.Reset(5)
			tm.Reset(2)
			tm.Reset(7) // three re-keys per fire, as settle/rearm churn does
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	tm.Reset(1)
	e.Run()
	if fired != b.N {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}

// BenchmarkProcSwitchPair measures a two-process ping-pong where every
// switch hands the baton to the *other* process: one channel handoff per
// switch (previously two).
func BenchmarkProcSwitchPair(b *testing.B) {
	e := New()
	for k := 0; k < 2; k++ {
		e.Spawn("pp", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Sleep(1)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}
