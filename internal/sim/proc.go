package sim

import "fmt"

// Proc is a coroutine-style simulation process. A Proc runs on its own
// goroutine but only while it holds the engine's execution baton. When it
// blocks on a simulation primitive (Sleep, Wait, ...) it does not bounce the
// baton through a central loop goroutine: the blocking goroutine itself keeps
// driving the event loop (Engine.dispatch) and hands the baton directly to
// the next process — one channel handoff per switch. Exactly one Proc (or
// one dispatch loop) runs at any instant, which makes all simulation state
// single-threaded.
type Proc struct {
	eng  *Engine
	name string
	wake chan struct{} // dispatcher -> proc: you hold the baton
	dead bool
	// wakeGen guards against double wake-ups: a blocked proc records the
	// generation it is waiting on, and stale resume events are dropped.
	wakeGen uint64
	// armed reports whether some event/signal is due to resume this proc.
	armed bool
	// parked reports the proc is blocked with no scheduled wake-up event
	// (Block/Signal.Wait) — only an explicit Wakeup can resume it.
	parked bool
}

// Spawn creates a process executing body and schedules it to start at the
// current time. The name is used in diagnostics only.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:  e,
		name: name,
		wake: make(chan struct{}),
	}
	e.procs++
	if e.live == nil {
		e.live = make(map[*Proc]struct{})
	}
	e.live[p] = struct{}{}
	go func() {
		<-p.wake // wait for first resume
		body(p)
		p.dead = true
		e.procs--
		delete(e.live, p)
		// The finished process still holds the baton: keep driving the event
		// loop here, then let the goroutine exit once the baton moves on.
		if e.dispatch(nil) == runEnded {
			e.endRun()
		}
	}()
	gen := p.arm()
	e.scheduleProc(0, p, gen)
	return p
}

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// arm marks the proc as having a pending wake-up and returns the generation
// token that the matching resume must present.
func (p *Proc) arm() uint64 {
	if p.armed {
		panic(fmt.Sprintf("sim: proc %q armed twice", p.name))
	}
	p.armed = true
	p.wakeGen++
	return p.wakeGen
}

// yield releases the baton and blocks until resumed. The caller must have
// armed a wake-up beforehand. Rather than handing control to a central loop,
// the yielding goroutine runs the event loop itself until the baton moves to
// another process (or the run ends), then parks on its own wake channel.
func (p *Proc) yield() {
	if !p.armed {
		panic(fmt.Sprintf("sim: proc %q yielding with no pending wake-up", p.name))
	}
	e := p.eng
	switch e.dispatch(p) {
	case selfResumed:
		return // baton came straight back, no handoff needed
	case runEnded:
		e.endRun()
	}
	<-p.wake
}

// Sleep blocks the process for d time units. d == 0 yields the baton and
// resumes after already-queued events at the current time.
func (p *Proc) Sleep(d Time) {
	gen := p.arm()
	p.eng.scheduleProc(d, p, gen)
	p.yield()
}

// Block parks the process indefinitely until another party calls Wakeup.
// Prefer Signal for most uses.
func (p *Proc) Block() {
	p.arm()
	p.parked = true
	p.yield()
	p.parked = false
}

// Wakeup resumes a process parked with Block. It must be called from the
// event loop or another process; the wake-up takes effect via a zero-delay
// event so ordering stays deterministic.
func (p *Proc) Wakeup() {
	if !p.armed || p.dead {
		return
	}
	p.eng.scheduleProc(0, p, p.wakeGen)
}
