package sim

import "fmt"

// Proc is a coroutine-style simulation process. A Proc runs on its own
// goroutine but only while it holds the engine's execution baton; it yields
// the baton whenever it blocks on a simulation primitive (Sleep, Wait, ...).
// Exactly one Proc (or the event loop) runs at any instant, which makes all
// simulation state single-threaded.
type Proc struct {
	eng  *Engine
	name string
	wake chan struct{} // engine -> proc: you hold the baton
	park chan struct{} // proc -> engine: baton returned
	dead bool
	// wakeGen guards against double wake-ups: a blocked proc records the
	// generation it is waiting on, and stale resume events are dropped.
	wakeGen uint64
	// armed reports whether some event/signal is due to resume this proc.
	armed bool
	// parked reports the proc is blocked with no scheduled wake-up event
	// (Block/Signal.Wait) — only an explicit Wakeup can resume it.
	parked bool
}

// Spawn creates a process executing body and schedules it to start at the
// current time. The name is used in diagnostics only.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:  e,
		name: name,
		wake: make(chan struct{}),
		park: make(chan struct{}),
	}
	e.procs++
	if e.live == nil {
		e.live = make(map[*Proc]struct{})
	}
	e.live[p] = struct{}{}
	go func() {
		<-p.wake // wait for first resume
		body(p)
		p.dead = true
		p.eng.procs--
		delete(p.eng.live, p)
		p.park <- struct{}{}
	}()
	gen := p.arm()
	e.Schedule(0, func() { p.resume(gen) })
	return p
}

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// arm marks the proc as having a pending wake-up and returns the generation
// token that the matching resume must present.
func (p *Proc) arm() uint64 {
	if p.armed {
		panic(fmt.Sprintf("sim: proc %q armed twice", p.name))
	}
	p.armed = true
	p.wakeGen++
	return p.wakeGen
}

// resume hands the baton to the proc if gen is still current, and blocks the
// caller (the event loop or another proc's scheduled event) until the proc
// parks again.
func (p *Proc) resume(gen uint64) {
	if p.dead || gen != p.wakeGen || !p.armed {
		return // stale wake-up
	}
	p.armed = false
	prev := p.eng.current
	p.eng.current = p
	p.wake <- struct{}{}
	<-p.park
	p.eng.current = prev
}

// yield returns the baton to the event loop and blocks until resumed. The
// caller must have armed a wake-up beforehand.
func (p *Proc) yield() {
	if !p.armed {
		panic(fmt.Sprintf("sim: proc %q yielding with no pending wake-up", p.name))
	}
	p.park <- struct{}{}
	<-p.wake
}

// Sleep blocks the process for d time units. d == 0 yields the baton and
// resumes after already-queued events at the current time.
func (p *Proc) Sleep(d Time) {
	gen := p.arm()
	p.eng.Schedule(d, func() { p.resume(gen) })
	p.yield()
}

// Block parks the process indefinitely until another party calls Wakeup.
// Prefer Signal for most uses.
func (p *Proc) Block() {
	p.arm()
	p.parked = true
	p.yield()
	p.parked = false
}

// Wakeup resumes a process parked with Block. It must be called from the
// event loop or another process; the wake-up takes effect via a zero-delay
// event so ordering stays deterministic.
func (p *Proc) Wakeup() {
	if !p.armed || p.dead {
		return
	}
	gen := p.wakeGen
	p.eng.Schedule(0, func() { p.resume(gen) })
}
