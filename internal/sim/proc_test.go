package sim

import (
	"testing"
)

func TestProcSleep(t *testing.T) {
	e := New()
	var wakes []Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10)
		wakes = append(wakes, p.Now())
		p.Sleep(5)
		wakes = append(wakes, p.Now())
	})
	e.Run()
	if len(wakes) != 2 || wakes[0] != 10 || wakes[1] != 15 {
		t.Fatalf("wakes = %v, want [10 15]", wakes)
	}
	if e.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := New()
	var trace []string
	mk := func(name string, period Time, n int) {
		e.Spawn(name, func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(period)
				trace = append(trace, name)
			}
		})
	}
	mk("a", 2, 3) // wakes at 2,4,6
	mk("b", 3, 2) // wakes at 3,6
	e.Run()
	// At t=6 both wake; b's wake event was scheduled at t=3, a's at t=4, so
	// FIFO tie-breaking runs b first.
	want := []string{"a", "b", "a", "b", "a"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSleepZeroYields(t *testing.T) {
	e := New()
	var trace []string
	e.Spawn("x", func(p *Proc) {
		trace = append(trace, "x1")
		p.Sleep(0)
		trace = append(trace, "x2")
	})
	e.Spawn("y", func(p *Proc) {
		trace = append(trace, "y1")
	})
	e.Run()
	// x starts first (spawned first), yields at Sleep(0); y (already queued)
	// runs; then x resumes.
	want := []string{"x1", "y1", "x2"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := New()
	var sig Signal
	var woken []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			sig.Wait(p)
			woken = append(woken, name)
		})
	}
	e.Spawn("caster", func(p *Proc) {
		p.Sleep(100)
		sig.Broadcast()
	})
	e.Run()
	if len(woken) != 3 {
		t.Fatalf("woken = %v, want all three waiters", woken)
	}
	// FIFO wake order.
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if woken[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", woken, want)
		}
	}
}

func TestSignalPulse(t *testing.T) {
	e := New()
	var sig Signal
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	e.Spawn("pulser", func(p *Proc) {
		p.Sleep(1)
		if !sig.Pulse() {
			t.Error("Pulse returned false with waiters parked")
		}
		p.Sleep(1)
		sig.Pulse()
	})
	e.Run()
	if woken != 2 {
		t.Fatalf("woken = %d, want 2", woken)
	}
	if sig.Waiting() != 1 {
		t.Fatalf("Waiting() = %d, want 1", sig.Waiting())
	}
}

func TestPulseEmptySignal(t *testing.T) {
	var sig Signal
	if sig.Pulse() {
		t.Fatal("Pulse on empty signal returned true")
	}
}

func TestProducerConsumer(t *testing.T) {
	e := New()
	var (
		queue    []int
		notEmpty Signal
		got      []int
	)
	e.Spawn("consumer", func(p *Proc) {
		for len(got) < 5 {
			for len(queue) == 0 {
				notEmpty.Wait(p)
			}
			got = append(got, queue[0])
			queue = queue[1:]
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			p.Sleep(10)
			queue = append(queue, i)
			notEmpty.Broadcast()
		}
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("got = %v, want 5 items", got)
	}
	for i := range got {
		if got[i] != i+1 {
			t.Fatalf("got = %v, want [1 2 3 4 5]", got)
		}
	}
	if e.Now() != 50 {
		t.Errorf("Now() = %v, want 50", e.Now())
	}
}

func TestBlockWakeup(t *testing.T) {
	e := New()
	var blocked *Proc
	done := false
	blocked = e.Spawn("blocked", func(p *Proc) {
		p.Block()
		done = true
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(42)
		blocked.Wakeup()
	})
	e.Run()
	if !done {
		t.Fatal("blocked proc never woke")
	}
	if e.Now() != 42 {
		t.Errorf("Now() = %v, want 42", e.Now())
	}
}

func TestWakeupOnDeadProcIsNoop(t *testing.T) {
	e := New()
	p := e.Spawn("short", func(p *Proc) {})
	e.Spawn("waker", func(q *Proc) {
		q.Sleep(5)
		p.Wakeup() // must not panic or deadlock
	})
	e.Run()
}

func TestDoubleWakeupSuppressed(t *testing.T) {
	e := New()
	count := 0
	var target *Proc
	target = e.Spawn("t", func(p *Proc) {
		p.Block()
		count++
		p.Sleep(100) // arm a new wake-up; stale wakeups must not hit this
		count++
	})
	e.Spawn("w", func(p *Proc) {
		p.Sleep(1)
		target.Wakeup()
		target.Wakeup() // second wake-up is stale
	})
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if e.Now() < 101 {
		t.Errorf("Now() = %v; stale wakeup appears to have cut the sleep short", e.Now())
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := New()
	var trace []string
	e.Spawn("parent", func(p *Proc) {
		trace = append(trace, "parent")
		p.Engine().Spawn("child", func(c *Proc) {
			c.Sleep(3)
			trace = append(trace, "child")
		})
		p.Sleep(10)
		trace = append(trace, "parent-end")
	})
	e.Run()
	want := []string{"parent", "child", "parent-end"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() []int {
		e := New()
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				p.Sleep(Time(i % 7))
				order = append(order, i)
				p.Sleep(Time(i % 3))
				order = append(order, -i)
			})
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic proc interleaving at %d", i)
		}
	}
}
