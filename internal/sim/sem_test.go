package sim

import "testing"

func TestSemLimitsConcurrency(t *testing.T) {
	e := New()
	s := NewSem(2)
	var inside, maxInside int
	for i := 0; i < 6; i++ {
		e.Spawn("w", func(p *Proc) {
			s.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(10)
			inside--
			s.Release()
		})
	}
	e.Run()
	if maxInside != 2 {
		t.Fatalf("max concurrent holders = %d, want 2", maxInside)
	}
	if s.Available() != 2 {
		t.Fatalf("Available = %d after drain, want 2", s.Available())
	}
}

func TestSemTryAcquire(t *testing.T) {
	s := NewSem(1)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire succeeded on empty sem")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestSemFIFO(t *testing.T) {
	e := New()
	s := NewSem(1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Sleep(Time(i)) // stagger arrivals: 0,1,2,3
			s.Acquire(p)
			order = append(order, i)
			p.Sleep(100)
			s.Release()
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("acquisition order = %v, want FIFO", order)
		}
	}
}

func TestNegativeSemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSem(-1)
}
