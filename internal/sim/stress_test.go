package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestClockMonotonicUnderRandomLoad fuzzes the engine with random process
// graphs and asserts the clock never goes backwards and every proc's wakes
// are properly ordered.
func TestClockMonotonicUnderRandomLoad(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		last := Time(0)
		ok := true
		observe := func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
		}
		var sig Signal
		for i := 0; i < 50; i++ {
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					switch rng.Intn(3) {
					case 0:
						p.Sleep(Time(rng.Intn(100)))
					case 1:
						sig.Broadcast()
						p.Sleep(1)
					case 2:
						if sig.Waiting() < 5 {
							// Bounded waiting so the run drains.
							sig.Broadcast()
						}
						p.Sleep(Time(rng.Intn(10)))
					}
					observe()
				}
			})
		}
		e.Run()
		sig.Broadcast()
		e.Run()
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestNoLostWakeups pairs waiters and wakers at random delays and checks
// every waiter eventually runs.
func TestNoLostWakeups(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		const n = 40
		woken := 0
		ready := make([]bool, n)
		var sigs [n]Signal
		for i := 0; i < n; i++ {
			i := i
			e.Spawn("waiter", func(p *Proc) {
				for !ready[i] {
					sigs[i].Wait(p)
				}
				woken++
			})
			e.Spawn("waker", func(p *Proc) {
				p.Sleep(Time(rng.Intn(500)))
				ready[i] = true
				sigs[i].Broadcast()
			})
		}
		e.Run()
		if woken != n {
			t.Fatalf("seed %d: %d of %d waiters woke", seed, woken, n)
		}
	}
}

// TestLiveProcsAccounting tracks spawn/finish bookkeeping.
func TestLiveProcsAccounting(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		e.Spawn("p", func(p *Proc) { p.Sleep(Time(i)) })
	}
	if e.LiveProcs() != 10 {
		t.Fatalf("LiveProcs = %d before run, want 10", e.LiveProcs())
	}
	e.Run()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after drain, want 0", e.LiveProcs())
	}
}

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := New()
	var fired int
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%97), func() { fired++ })
	}
	b.ResetTimer()
	e.Run()
	if fired != b.N {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}

func BenchmarkProcContextSwitch(b *testing.B) {
	e := New()
	e.Spawn("pingpong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}

func TestBlockedProcsDiagnostics(t *testing.T) {
	e := New()
	var sig Signal
	e.Spawn("stuck-a", func(p *Proc) { sig.Wait(p) })
	e.Spawn("stuck-b", func(p *Proc) { sig.Wait(p) })
	e.Spawn("fine", func(p *Proc) { p.Sleep(5) })
	e.Run()
	blocked := e.BlockedProcs()
	if len(blocked) != 2 || blocked[0] != "stuck-a" || blocked[1] != "stuck-b" {
		t.Fatalf("BlockedProcs = %v, want [stuck-a stuck-b]", blocked)
	}
	// Waking them clears the diagnostics.
	sig.Broadcast()
	e.Run()
	if got := e.BlockedProcs(); len(got) != 0 {
		t.Fatalf("BlockedProcs after wake = %v, want empty", got)
	}
}
