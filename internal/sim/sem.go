package sim

// Sem is a counting semaphore for simulation processes with FIFO fairness.
type Sem struct {
	avail int
	sig   Signal
}

// NewSem returns a semaphore with n initial permits.
func NewSem(n int) *Sem {
	if n < 0 {
		panic("sim: negative semaphore count")
	}
	return &Sem{avail: n}
}

// Acquire blocks p until a permit is available, then takes it.
func (s *Sem) Acquire(p *Proc) {
	for s.avail == 0 {
		s.sig.Wait(p)
	}
	s.avail--
}

// TryAcquire takes a permit without blocking; it reports success.
func (s *Sem) TryAcquire() bool {
	if s.avail == 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns a permit and wakes one waiter.
func (s *Sem) Release() {
	s.avail++
	s.sig.Pulse()
}

// Available returns the current permit count.
func (s *Sem) Available() int { return s.avail }
