package sim

// Signal is a Mesa-style condition variable for simulation processes.
// Waiters must re-check their predicate in a loop:
//
//	for !cond() {
//	    sig.Wait(p)
//	}
//
// Broadcast and Pulse deliver wake-ups through zero-delay events, so the
// relative order of resumed processes follows the order in which they began
// waiting (FIFO) and is deterministic.
type Signal struct {
	waiters []*Proc
}

// Wait parks p until the signal is pulsed or broadcast. Spurious wake-ups do
// not occur, but because other waiters may run first, predicates must be
// re-checked.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.Block()
}

// Broadcast wakes every current waiter. Processes that start waiting after
// the call are not affected.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, p := range ws {
		p.Wakeup()
	}
}

// Pulse wakes the longest-waiting process, if any. It reports whether a
// process was woken.
func (s *Signal) Pulse() bool {
	if len(s.waiters) == 0 {
		return false
	}
	p := s.waiters[0]
	s.waiters = s.waiters[1:]
	p.Wakeup()
	return true
}

// Waiting returns the number of parked processes.
func (s *Signal) Waiting() int { return len(s.waiters) }
