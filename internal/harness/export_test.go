package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"testing"
)

func sampleReport() *Report {
	r := newReport("figX", "Sample", "Benchmark", "Speedup")
	r.addRow("MB", "1.50")
	r.addRow("MM", "1.10")
	r.note("a note")
	r.set("MB/speedup", 1.5)
	r.set("MM/speedup", 1.1)
	return r
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("csv rows = %d, want header + 2", len(recs))
	}
	if recs[0][0] != "Benchmark" || recs[1][0] != "MB" || recs[2][1] != "1.10" {
		t.Fatalf("csv content wrong: %v", recs)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID     string             `json:"id"`
		Rows   [][]string         `json:"rows"`
		Values map[string]float64 `json:"values"`
		Keys   []string           `json:"keys"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "figX" || len(got.Rows) != 2 {
		t.Fatalf("json = %+v", got)
	}
	if got.Values["MB/speedup"] != 1.5 {
		t.Fatalf("values = %v", got.Values)
	}
	if len(got.Keys) != 2 || got.Keys[0] != "MB/speedup" {
		t.Fatalf("keys not sorted: %v", got.Keys)
	}
}
