package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleReport() *Report {
	r := newReport("figX", "Sample", "Benchmark", "Speedup")
	r.addRow("MB", "1.50")
	r.addRow("MM", "1.10")
	r.note("a note")
	r.set("MB/speedup", 1.5)
	r.set("MM/speedup", 1.1)
	return r
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("csv rows = %d, want header + 2", len(recs))
	}
	if recs[0][0] != "Benchmark" || recs[1][0] != "MB" || recs[2][1] != "1.10" {
		t.Fatalf("csv content wrong: %v", recs)
	}
}

func TestWriteCSVAll(t *testing.T) {
	r2 := newReport("figY", "Second", "Benchmark", "Time", "Extra")
	r2.addRow("MB", "0.10", "x")
	var buf bytes.Buffer
	if err := WriteCSVAll(&buf, []*Report{sampleReport(), r2}); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&buf)
	rd.FieldsPerRecord = -1 // column sets differ per experiment
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("multi-report CSV not parseable: %v", err)
	}
	if len(recs) != 5 { // 2 headers + 2 rows + 1 row
		t.Fatalf("csv records = %d, want 5: %v", len(recs), recs)
	}
	if recs[0][0] != "experiment" || recs[1][0] != "figX" || recs[4][0] != "figY" {
		t.Fatalf("experiment column wrong: %v", recs)
	}
	if recs[4][1] != "MB" || recs[4][3] != "x" {
		t.Fatalf("figY row wrong: %v", recs[4])
	}
}

// TestSeedZeroProvenance pins the -seed 0 fix: seededness is tracked
// explicitly, so an experiment seeded with 0 still names its randomness in
// both export formats, while an unseeded report stays clean.
func TestSeedZeroProvenance(t *testing.T) {
	seeded := sampleReport()
	seeded.setSeed(0)
	var buf bytes.Buffer
	if err := seeded.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&buf)
	rd.FieldsPerRecord = -1
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if len(last) != 2 || last[0] != "# seed" || last[1] != "0" {
		t.Errorf("seed-0 CSV trailing row = %v, want [# seed 0]", last)
	}

	buf.Reset()
	if err := seeded.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if v, ok := doc["seed"]; !ok || v != float64(0) {
		t.Errorf("seed-0 JSON seed = %v (present %v), want 0", v, ok)
	}

	buf.Reset()
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc = nil
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["seed"]; ok {
		t.Errorf("unseeded JSON still carries a seed field: %v", doc["seed"])
	}
}

// TestSeedRowMarkerColumnOne pins the comment-row convention in both CSV
// forms: the "#" marker leads the row, so consumers filtering ^# drop seed
// rows from single-report and multi-experiment streams alike.
func TestSeedRowMarkerColumnOne(t *testing.T) {
	r := sampleReport()
	r.setSeed(7)
	r2 := newReport("figY", "Second", "Benchmark")
	r2.addRow("MM")
	r2.setSeed(9)

	var buf bytes.Buffer
	if err := WriteCSVAll(&buf, []*Report{r, r2}); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&buf)
	rd.FieldsPerRecord = -1
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var seedRows [][]string
	for _, rec := range recs {
		if strings.HasPrefix(rec[0], "#") {
			seedRows = append(seedRows, rec)
		}
	}
	if len(seedRows) != 2 {
		t.Fatalf("^#-filterable rows = %d, want 2: %v", len(seedRows), recs)
	}
	want := [][]string{{"# seed", "figX", "7"}, {"# seed", "figY", "9"}}
	for i, rec := range seedRows {
		if len(rec) != 3 || rec[0] != want[i][0] || rec[1] != want[i][1] || rec[2] != want[i][2] {
			t.Errorf("seed row %d = %v, want %v", i, rec, want[i])
		}
	}
	// No data row may be mistaken for a comment: every non-seed row leads
	// with the experiment id.
	for _, rec := range recs {
		if !strings.HasPrefix(rec[0], "#") && rec[0] != "experiment" && rec[0] != "figX" && rec[0] != "figY" {
			t.Errorf("row %v leads with neither id, header nor marker", rec)
		}
	}
}

func TestWriteJSONAll(t *testing.T) {
	r2 := newReport("figY", "Second", "Benchmark")
	r2.addRow("MM")
	var buf bytes.Buffer
	if err := WriteJSONAll(&buf, []*Report{sampleReport(), r2}); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("multi-report JSON is not one parseable document: %v", err)
	}
	if len(got) != 2 || got[0].ID != "figX" || got[1].ID != "figY" {
		t.Fatalf("json array wrong: %+v", got)
	}
	if len(got[0].Rows) != 2 || got[1].Rows[0][0] != "MM" {
		t.Fatalf("rows wrong: %+v", got)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID     string             `json:"id"`
		Rows   [][]string         `json:"rows"`
		Values map[string]float64 `json:"values"`
		Keys   []string           `json:"keys"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "figX" || len(got.Rows) != 2 {
		t.Fatalf("json = %+v", got)
	}
	if got.Values["MB/speedup"] != 1.5 {
		t.Fatalf("values = %v", got.Values)
	}
	if len(got.Keys) != 2 || got.Keys[0] != "MB/speedup" {
		t.Fatalf("keys not sorted: %v", got.Keys)
	}
}
