package harness

import (
	"fmt"

	"repro/internal/runners"
	"repro/internal/sim"
	"repro/internal/tenancy"
	"repro/internal/workloads"
)

// tenantRate is the contracted per-class rate of the tenant_qos experiment
// (tasks/second). The honest aggregate sits comfortably under the device's
// knee; the misbehaving tenant's 10x overshoot is what pushes the system
// into the regime where admission policy decides who pays.
const tenantRate = 192e3

// tenantAdmitLimit bounds the admitted-but-uncompleted backlog for the
// strict and wfq policies (mirrors the queue64 point of serve_latency).
const tenantAdmitLimit = 64

// tenantCounts splits the run's task budget evenly across the classes,
// front-loading the remainder so counts are deterministic in class order.
func tenantCounts(total, classes int) []int {
	counts := make([]int, classes)
	for c := range counts {
		counts[c] = total / classes
		if c < total%classes {
			counts[c]++
		}
	}
	return counts
}

// tenantClasses builds the experiment's class mix for one run: the canonical
// premium/standard/batch tiers, one of them (p.Misbehave) offering 10x its
// contract, with the diurnal period and flash-crowd window scaled to the
// run's expected span.
func tenantClasses(p Params, n int, slo sim.Time) []tenancy.Class {
	perClass := n / p.Tenants
	if perClass < 1 {
		perClass = 1
	}
	horizon := sim.Time(float64(perClass) / tenantRate * 1e9)
	return tenancy.DefaultClasses(p.Tenants, tenantRate, slo, horizon, p.Seed, p.misbehaveIdx())
}

// TenantQoS regenerates the multi-tenant QoS table: the transformer-layer
// inference workload offered by several tenant classes — one misbehaving at
// 10x its contracted rate — under each admission policy (pass-through,
// strict priority, weighted-fair), for every GPU scheme. Each row is one
// class's slice of one run: tail latency against the class's own SLO,
// goodput, SLO violations, and the admission layer's shed/evicted split.
func TenantQoS(p Params) *Report {
	p = p.fill()
	n := serveTaskCount(p)
	slo := p.sloCycles()

	r := newReport("tenant_qos",
		fmt.Sprintf("Multi-tenant QoS (XFMR, %d tasks, %d classes, class %d at 10x contract, premium p99 SLO %.0fus)",
			n, p.Tenants, p.misbehaveIdx(), slo/1e3),
		"Policy", "Scheme", "Class", "p99(us)", "goodput", "viol", "shed", "evict")
	r.setSeed(p.Seed)

	b, _ := workloads.ByName("XFMR")
	cfg := p.runnerCfg()
	classes := tenantClasses(p, n, slo)
	counts := tenantCounts(n, p.Tenants)

	type qosCell struct {
		policy string
		sc     runners.Scheme
		st     *[]tenancy.ClassStats
	}
	s := newSweep(p)
	var cells []qosCell
	for _, policy := range tenancy.Kinds() {
		for _, sc := range p.gpuSchemes() {
			policy, sc := policy, sc
			out := new([]tenancy.ClassStats)
			s.add(func() {
				// Arrivals and the admission layer are rebuilt inside the
				// cell: Merge is pure, and Admission is stateful per run.
				arrivals, classOf := tenancy.Merge(classes, counts)
				tasks := b.Make(workloads.Options{Tasks: len(arrivals), Seed: p.Seed})
				adm := tenancy.NewAdmission(policy, classes, arrivals, classOf,
					tenantAdmitLimit, policy != tenancy.AdmitNone)
				_, recs := sc.RunOpenLoop(tasks, runners.OpenLoop{
					Arrivals:  arrivals,
					AdmitTask: adm.AdmitTask,
				}, cfg)
				*out = tenancy.SummarizeClasses(classes, classOf, recs, adm.Outcomes())
			})
			cells = append(cells, qosCell{policy, sc, out})
		}
	}
	s.run()

	for _, c := range cells {
		for _, st := range *c.st {
			r.addRow(c.policy, c.sc.Display, st.Class,
				us(st.P99), f2(st.Goodput),
				fmt.Sprint(st.Violations), fmt.Sprint(st.Shed), fmt.Sprint(st.Evicted))
			key := fmt.Sprintf("%s/%s/%s", c.policy, st.Class, c.sc.Key)
			r.set(key+"/p99us", st.P99/1e3)
			r.set(key+"/goodput", st.Goodput)
			r.set(key+"/viol", float64(st.Violations))
			r.set(key+"/shed", float64(st.Shed))
			r.set(key+"/evict", float64(st.Evicted))
		}
	}
	r.note("each class is judged against its own p99 SLO (premium %.0fus, each tier below 4x looser); viol = completed tasks over it", slo/1e3)
	r.note("shed = rejected at the door by the class token bucket (contract policing); evict = preempted at the service slot in favor of a higher class")
	r.note("the 'none' policy is the no-isolation baseline: compare the premium rows across policies to see what admission control buys the victim")
	return r
}
