package harness

import (
	"fmt"
	"strings"

	"repro/internal/runners"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// serveTaskCap bounds the open-loop experiments' task count. Serving runs
// measure per-task latency under a fixed offered rate, not throughput at
// scale, so a paper-scale -tasks 32768 would multiply the sweep's wall-clock
// by 64x without changing a single percentile's meaning.
const serveTaskCap = 512

// sloCycles converts Params.SLOUs to engine cycles (1 cycle = 1 ns at
// 1 GHz), defaulting to a 1000us p99 bound.
func (p Params) sloCycles() sim.Time {
	us := p.SLOUs
	if us <= 0 {
		us = 1000
	}
	return sim.Time(us * 1e3)
}

func serveTaskCount(p Params) int {
	if p.Tasks > serveTaskCap {
		return serveTaskCap
	}
	return p.Tasks
}

// serveCell enqueues one open-loop simulation and returns the slot holding
// its summary after run(). The policy is constructed inside the cell so
// stateful policies (the token bucket) stay private to the run, and arrivals
// are regenerated per cell (generators are pure values), keeping cells
// independent at any harness parallelism. Only the GPU schemes are swept:
// the CPU baselines have no spawn path to meter against virtual-time
// arrivals.
func serveCell(s *sweep, b workloads.Benchmark, opt workloads.Options, cfg runners.Config,
	gen serve.Generator, pol func() serve.Policy, sc runners.Scheme, slo sim.Time) *serve.Stats {
	out := new(serve.Stats)
	s.add(func() {
		tasks := b.Make(opt)
		ol := runners.OpenLoop{Arrivals: gen.Times(len(tasks))}
		if pol != nil {
			ol.Admit = pol().Admit
		}
		_, recs := sc.RunOpenLoop(tasks, ol, cfg)
		*out = serve.Summarize(recs, slo)
	})
	return out
}

// servePolicies is the admission-control cross for ServeLatency. The token
// bucket is shaped to half the offered rate (burst 32) so its effect is
// visible at every point of the ladder rather than only past saturation.
func servePolicies(rate float64) []struct {
	label string
	mk    func() serve.Policy
} {
	return []struct {
		label string
		mk    func() serve.Policy
	}{
		{"unbounded", func() serve.Policy { return serve.Unbounded{} }},
		{"queue64", func() serve.Policy { return serve.BoundedQueue{Limit: 64} }},
		{"token", func() serve.Policy { return serve.NewTokenBucket(rate/2, 32) }},
	}
}

// ServeLatency regenerates the open-loop tail-latency table: Poisson
// arrivals at a light and a heavy offered rate, crossed with the admission
// policies, for each GPU scheme. Each row reports the exact
// submit->start->done decomposition (queue wait vs service), the tail
// percentiles, drops, and goodput against the p99 SLO.
func ServeLatency(p Params) *Report {
	p = p.fill()
	n := serveTaskCount(p)
	slo := p.sloCycles()
	rates := []float64{16e3, 256e3}

	r := newReport("serve_latency",
		fmt.Sprintf("Open-loop tail latency (MB, %d tasks, Poisson arrivals, p99 SLO %.0fus)", n, slo/1e3),
		"Rate(/s)", "Policy", "Scheme", "p50(us)", "p90(us)", "p99(us)", "max(us)",
		"wait(us)", "service(us)", "drops", "goodput")
	r.setSeed(p.Seed)

	b, _ := workloads.ByName("MB")
	opt := workloads.Options{Tasks: n, Threads: 128, Seed: p.Seed}
	cfg := p.runnerCfg()

	type latCell struct {
		rate   float64
		policy string
		sc     runners.Scheme
		st     *serve.Stats
	}
	s := newSweep(p)
	var cells []latCell
	for _, rate := range rates {
		gen := serve.Poisson{Rate: rate, Seed: p.Seed}
		for _, pol := range servePolicies(rate) {
			for _, sc := range p.gpuSchemes() {
				cells = append(cells, latCell{rate, pol.label, sc,
					serveCell(s, b, opt, cfg, gen, pol.mk, sc, slo)})
			}
		}
	}
	s.run()

	for _, c := range cells {
		st := *c.st
		r.addRow(fmt.Sprintf("%.0f", c.rate), c.policy, c.sc.Display,
			us(st.P50), us(st.P90), us(st.P99), us(st.Max),
			us(st.MeanWait), us(st.MeanService),
			fmt.Sprint(st.Dropped), f2(st.Goodput))
		key := fmt.Sprintf("%s/%s/%.0f", c.sc.Key, c.policy, c.rate)
		r.set(key+"/p99us", st.P99/1e3)
		r.set(key+"/waitus", st.MeanWait/1e3)
		r.set(key+"/drops", float64(st.Dropped))
		r.set(key+"/goodput", st.Goodput)
	}
	r.note("goodput = tasks completed within the %.0fus p99 SLO / tasks offered: drops and SLO misses both count against it", slo/1e3)
	r.note("wait is submit-to-service-start (queueing), service is start-to-done; the split is also exported as trace spans by the open-loop runners")
	return r
}

// ServeCapacity regenerates the SLO-bounded capacity sweep: it walks the
// offered-load ladder under unbounded admission and reports each scheme's
// max sustainable rate — the highest rate whose whole prefix met the p99 SLO
// with no drops (serve.MaxSustainable). This is the serving-facing headline
// of the paper's thesis: a faster spawn path holds the latency knee at a
// higher offered load.
func ServeCapacity(p Params) *Report {
	p = p.fill()
	n := serveTaskCount(p)
	slo := p.sloCycles()
	rates := serve.DefaultRates()

	header := []string{"Scheme"}
	for _, rate := range rates {
		header = append(header, fmt.Sprintf("%.0f/s", rate))
	}
	header = append(header, "max-rate(/s)")
	r := newReport("serve_capacity",
		fmt.Sprintf("SLO-bounded capacity (MB, %d tasks, Poisson arrivals; p99 us per offered rate, * = %.0fus p99 SLO missed)", n, slo/1e3),
		header...)
	r.setSeed(p.Seed)

	b, _ := workloads.ByName("MB")
	opt := workloads.Options{Tasks: n, Threads: 128, Seed: p.Seed}
	cfg := p.runnerCfg()

	s := newSweep(p)
	schemes := p.gpuSchemes()
	cells := make(map[string][]*serve.Stats)
	for _, sc := range schemes {
		for _, rate := range rates {
			gen := serve.Poisson{Rate: rate, Seed: p.Seed}
			cells[sc.Key] = append(cells[sc.Key], serveCell(s, b, opt, cfg, gen, nil, sc, slo))
		}
	}
	s.run()

	maxRates := make(map[string]float64)
	for _, sc := range schemes {
		row := []string{sc.Display}
		ok := make([]bool, len(rates))
		for i, rate := range rates {
			st := *cells[sc.Key][i]
			ok[i] = st.SLOSatisfied()
			row = append(row, cond(ok[i], us(st.P99), us(st.P99)+"*"))
			r.set(fmt.Sprintf("%s/p99us/%.0f", sc.Key, rate), st.P99/1e3)
			r.set(fmt.Sprintf("%s/goodput/%.0f", sc.Key, rate), st.Goodput)
		}
		max := serve.MaxSustainable(rates, ok)
		maxRates[sc.Key] = max
		r.set(sc.Key+"/max-rate", max)
		row = append(row, cond(max > 0, fmt.Sprintf("%.0f", max), "none"))
		r.addRow(row...)
	}
	r.note("max sustainable rate under the %.0fus p99 SLO: %s (highest ladder rate whose whole prefix met the SLO with no drops)",
		slo/1e3, capacitySummary(schemes, maxRates))
	return r
}

// capacitySummary renders every swept scheme's headline max-rate in sweep
// order. Derived from the scheme list — not a hand-written format string —
// so a newly registered scheme cannot be silently missing from the summary.
func capacitySummary(schemes []runners.Scheme, maxRates map[string]float64) string {
	parts := make([]string, len(schemes))
	for i, sc := range schemes {
		parts[i] = fmt.Sprintf("%s %s", sc.Display, rateStr(maxRates[sc.Key]))
	}
	return strings.Join(parts, ", ")
}

func rateStr(rate float64) string {
	if rate <= 0 {
		return "none"
	}
	return fmt.Sprintf("%.0f/s", rate)
}
