package harness

import (
	"repro/internal/runners"
	"repro/internal/workloads"
)

// A scheme executes one prepared task set under one execution scheme. The
// runners package entry points (RunPagoda, RunHyperQ, ...) satisfy this
// directly; seqScheme adapts the config-free sequential baseline.
type scheme func([]workloads.TaskDef, runners.Config) runners.Result

func seqScheme(tasks []workloads.TaskDef, _ runners.Config) runners.Result {
	return runners.RunSequential(tasks)
}

// A sweep is an experiment's declarative cell enumeration. Each cell is one
// independent simulation — (workload options, scheme) — paired with the
// result slot it fills. Experiments enqueue every cell first, call run()
// once, then assemble rows and Values from the slots in declaration order,
// so the rendered report does not depend on cell execution order.
type sweep struct {
	parallel int
	jobs     []func()
}

func newSweep(p Params) *sweep { return &sweep{parallel: p.Parallel} }

// cell enqueues one (benchmark, options, scheme) simulation and returns the
// slot that holds its result after run().
func (s *sweep) cell(b workloads.Benchmark, opt workloads.Options, cfg runners.Config, run scheme) *runners.Result {
	return s.cellTasks(func() []workloads.TaskDef { return b.Make(opt) }, cfg, run)
}

// cellTasks is cell for sweeps that post-process the generated task set
// (e.g. Fig. 8's launch-geometry reshaping): mk builds the tasks inside the
// cell so generation cost parallelizes with everything else.
func (s *sweep) cellTasks(mk func() []workloads.TaskDef, cfg runners.Config, run scheme) *runners.Result {
	out := new(runners.Result)
	s.add(func() { *out = run(mk(), cfg) })
	return out
}

// add enqueues an arbitrary independent cell; the escape hatch for work that
// does not fit the TaskDef/Config shape (the hostcpu bake-off). The job must
// write only to state it owns.
func (s *sweep) add(job func()) { s.jobs = append(s.jobs, job) }

// run executes every enqueued cell and returns once all result slots are
// filled.
func (s *sweep) run() { runCells(s.parallel, s.jobs) }
