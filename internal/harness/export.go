package harness

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// WriteCSV renders the report as CSV (header row first). Seeded experiments
// append a trailing "# seed,<n>" row so the artifact names the randomness
// that produced it; parse with FieldsPerRecord disabled.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	if r.Seeded {
		if err := cw.Write([]string{"# seed", strconv.FormatInt(r.Seed, 10)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVAll renders several reports as one CSV stream with a leading
// "experiment" column. Each report contributes its own header row (the
// column sets differ per experiment), so parse with FieldsPerRecord
// disabled; rows group by the first column.
func WriteCSVAll(w io.Writer, reps []*Report) error {
	cw := csv.NewWriter(w)
	for _, r := range reps {
		if err := cw.Write(append([]string{"experiment"}, r.Header...)); err != nil {
			return err
		}
		for _, row := range r.Rows {
			if err := cw.Write(append([]string{r.ID}, row...)); err != nil {
				return err
			}
		}
		// The seed row leads with the "#" marker in the multi-experiment
		// stream too (the experiment id moves to column 2): consumers filter
		// comment rows with ^#, and the single-report form already puts the
		// marker first.
		if r.Seeded {
			if err := cw.Write([]string{"# seed", r.ID, strconv.FormatInt(r.Seed, 10)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonReport is the machine-readable schema. Seed is a pointer so the field
// distinguishes "unseeded" (absent) from "seeded with 0" (present): omitempty
// on a plain int64 would silently drop an explicit -seed 0 run's provenance.
type jsonReport struct {
	ID     string             `json:"id"`
	Title  string             `json:"title"`
	Header []string           `json:"header"`
	Rows   [][]string         `json:"rows"`
	Notes  []string           `json:"notes,omitempty"`
	Seed   *int64             `json:"seed,omitempty"`
	Values map[string]float64 `json:"values"`
	Keys   []string           `json:"keys"` // sorted, for stable diffs
}

func (r *Report) jsonDoc() jsonReport {
	keys := make([]string, 0, len(r.Values))
	for k := range r.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var seed *int64
	if r.Seeded {
		s := r.Seed
		seed = &s
	}
	return jsonReport{
		ID:     r.ID,
		Title:  r.Title,
		Header: r.Header,
		Rows:   r.Rows,
		Notes:  r.Notes,
		Seed:   seed,
		Values: r.Values,
		Keys:   keys,
	}
}

// WriteJSON renders the report, including the raw recorded values, as JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.jsonDoc())
}

// WriteJSONAll renders several reports as a single JSON array — one document
// a standard parser accepts, unlike the concatenated-object stream a
// per-report WriteJSON loop produces.
func WriteJSONAll(w io.Writer, reps []*Report) error {
	docs := make([]jsonReport, len(reps))
	for i, r := range reps {
		docs[i] = r.jsonDoc()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(docs)
}
