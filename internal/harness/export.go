package harness

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
)

// WriteCSV renders the report as CSV (header row first).
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonReport is the machine-readable schema.
type jsonReport struct {
	ID     string             `json:"id"`
	Title  string             `json:"title"`
	Header []string           `json:"header"`
	Rows   [][]string         `json:"rows"`
	Notes  []string           `json:"notes,omitempty"`
	Values map[string]float64 `json:"values"`
	Keys   []string           `json:"keys"` // sorted, for stable diffs
}

// WriteJSON renders the report, including the raw recorded values, as JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	keys := make([]string, 0, len(r.Values))
	for k := range r.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{
		ID:     r.ID,
		Title:  r.Title,
		Header: r.Header,
		Rows:   r.Rows,
		Notes:  r.Notes,
		Values: r.Values,
		Keys:   keys,
	})
}
