package harness

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/runners"
)

// tinyParams makes each generator cheap enough to exercise structurally
// (rows present, values recorded); shape assertions live in harness_test.go
// at saturating scales.
func tinyParams() Params { return Params{Tasks: 48, SMMs: 4, Seed: 1} }

func TestFig6Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	r := Fig6(tinyParams())
	want := 5 * len(runners.Schemes()) // 5 benchmarks x registered schemes
	if len(r.Rows) != want {
		t.Fatalf("fig6 rows = %d, want %d", len(r.Rows), want)
	}
	for _, key := range []string{"MB/pagoda/64", "DCT/hyperq/64", "MPE/gemtc/64", "MB/zorua/64"} {
		if r.Get(key) <= 0 {
			t.Errorf("fig6 missing series point %s", key)
		}
	}
}

func TestFig7Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	r := Fig7(tinyParams())
	want := 8 * len(runners.Schemes())
	if len(r.Rows) != want {
		t.Fatalf("fig7 rows = %d, want %d", len(r.Rows), want)
	}
	for _, key := range []string{"geomean128/pagoda-vs-hyperq", "geomean128/pagoda-vs-zorua"} {
		if r.Get(key) <= 0 {
			t.Errorf("fig7 %s not recorded", key)
		}
	}
	// Work per task constant across thread counts: times comparable (same
	// order of magnitude) between 32 and 512 threads for a regular load.
	lo, hi := mustGet(t, r, "CONV/pagoda/32"), mustGet(t, r, "CONV/pagoda/512")
	if lo <= 0 || hi <= 0 {
		t.Fatalf("fig7 CONV series missing: %v %v", lo, hi)
	}
	if lo > hi*50 || hi > lo*50 {
		t.Errorf("fig7 CONV thread sweep wildly inconsistent: 32thr=%v 512thr=%v", lo, hi)
	}
}

func TestFig8Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	r := Fig8(tinyParams())
	// MM and CONV x 4 thread counts.
	if len(r.Rows) != 8 {
		t.Fatalf("fig8 rows = %d, want 8", len(r.Rows))
	}
	for _, key := range []string{"MM/256/16", "CONV/2048/256"} {
		if r.Get(key) <= 0 {
			t.Errorf("fig8 missing point %s", key)
		}
	}
}

func TestFig9Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	r := Fig9(tinyParams())
	if len(r.Rows) != 8 {
		t.Fatalf("fig9 rows = %d, want 8", len(r.Rows))
	}
	if r.Get("geomean/pagoda-vs-fusion") <= 0 {
		t.Error("fig9 geomean not recorded")
	}
	for _, row := range r.Rows {
		name := row[0]
		for _, scheme := range []string{"fusion", "pthreads", "hyperq", "pagoda"} {
			if r.Get(name+"/"+scheme) <= 0 {
				t.Errorf("fig9 %s/%s missing", name, scheme)
			}
		}
	}
}

func TestTable3Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	r := Table3(tinyParams())
	if len(r.Rows) != 8 {
		t.Fatalf("table3 rows = %d, want 8", len(r.Rows))
	}
	for _, row := range r.Rows {
		name := row[0]
		// copyfrac may legitimately be 0 (fully compute-bound), so a missing
		// key is only distinguishable through Lookup.
		f := mustGet(t, r, name+"/copyfrac")
		if f < 0 || f > 1 {
			t.Errorf("table3 %s copy fraction out of range: %v", name, f)
		}
	}
	// Directional check at any scale: DCT is the most copy-bound workload,
	// SLUD and MB the least (Table 3: 81% vs 3%/24%).
	dct, slud, mb := mustGet(t, r, "DCT/copyfrac"), mustGet(t, r, "SLUD/copyfrac"), mustGet(t, r, "MB/copyfrac")
	if dct <= slud {
		t.Errorf("table3: DCT copy share (%v) should exceed SLUD's (%v)", dct, slud)
	}
	if dct <= mb {
		t.Errorf("table3: DCT copy share (%v) should exceed MB's (%v)", dct, mb)
	}
}

func TestCPUSchemesStructure(t *testing.T) {
	// At a few dozen tasks OpenMP's fork-join can tie PThreads (no pool-tail
	// imbalance), so the winner assertion lives in hostcpu's bake-off test
	// at paper-like task counts; here we only check structure.
	p := tinyParams()
	p.Tasks = 1024
	r := CPUSchemes(p)
	if len(r.Rows) != 4 {
		t.Fatalf("cpuschemes rows = %d, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		name := row[0]
		for _, scheme := range []string{"OpenMP", "OS-sched", "Python-pool", "PThreads"} {
			if r.Get(name+"/"+scheme) <= 0 {
				t.Errorf("cpuschemes %s/%s missing", name, scheme)
			}
		}
		if row[len(row)-1] != "PThreads" {
			t.Errorf("%s: best scheme = %s, want PThreads", name, row[len(row)-1])
		}
	}
}

func TestServeLatencyStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	p := tinyParams()
	r := ServeLatency(p)
	// 2 rates x 3 policies x registered schemes.
	want := 2 * 3 * len(p.gpuSchemes())
	if len(r.Rows) != want {
		t.Fatalf("serve_latency rows = %d, want %d", len(r.Rows), want)
	}
	for _, key := range []string{
		"pagoda/unbounded/16000/p99us",
		"hyperq/queue64/256000/goodput",
		"gemtc/token/16000/drops",
		"zorua/unbounded/16000/p99us",
	} {
		if _, ok := r.Lookup(key); !ok {
			t.Errorf("serve_latency missing value %s", key)
		}
	}
	for _, sc := range p.gpuSchemes() {
		for _, rate := range []string{"16000", "256000"} {
			if d := mustGet(t, r, sc.Key+"/unbounded/"+rate+"/drops"); d != 0 {
				t.Errorf("serve_latency %s unbounded@%s dropped %v tasks", sc.Key, rate, d)
			}
			g := mustGet(t, r, sc.Key+"/unbounded/"+rate+"/goodput")
			if g < 0 || g > 1 {
				t.Errorf("serve_latency %s goodput out of range: %v", sc.Key, g)
			}
		}
	}
}

func TestServeCapacityStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	p := tinyParams()
	r := ServeCapacity(p)
	if len(r.Rows) != len(p.gpuSchemes()) {
		t.Fatalf("serve_capacity rows = %d, want %d", len(r.Rows), len(p.gpuSchemes()))
	}
	rates := []string{"4000", "8000", "16000", "32000", "64000", "128000", "256000", "512000"}
	for _, sc := range p.gpuSchemes() {
		for _, rate := range rates {
			if p99 := mustGet(t, r, sc.Key+"/p99us/"+rate); p99 <= 0 {
				t.Errorf("serve_capacity %s p99@%s = %v, want > 0", sc.Key, rate, p99)
			}
			g := mustGet(t, r, sc.Key+"/goodput/"+rate)
			if g < 0 || g > 1 {
				t.Errorf("serve_capacity %s goodput@%s out of range: %v", sc.Key, rate, g)
			}
		}
		// max-rate is 0 (nothing sustainable) or a ladder rate; mustGet also
		// pins that the headline key is recorded at all.
		max := mustGet(t, r, sc.Key+"/max-rate")
		found := max == 0
		for _, rate := range rates {
			if fmt.Sprintf("%.0f", max) == rate {
				found = true
			}
		}
		if !found {
			t.Errorf("serve_capacity %s max-rate %v is not on the ladder", sc.Key, max)
		}
	}
	// Offering more load never shrinks the unbounded-queueing tail: the top
	// of the ladder must be at least as slow as the bottom for every scheme.
	for _, sc := range p.gpuSchemes() {
		lo, hi := mustGet(t, r, sc.Key+"/p99us/4000"), mustGet(t, r, sc.Key+"/p99us/512000")
		if hi < lo {
			t.Errorf("serve_capacity %s p99 fell under load: %v at 4k/s, %v at 512k/s", sc.Key, lo, hi)
		}
	}
	// The capacity-summary note must name every swept scheme — the registry
	// regression for the old hard-coded three-scheme format string.
	var note string
	for _, n := range r.Notes {
		if strings.Contains(n, "max sustainable rate") {
			note = n
		}
	}
	if note == "" {
		t.Fatal("serve_capacity has no max-sustainable-rate note")
	}
	for _, sc := range p.gpuSchemes() {
		if !strings.Contains(note, sc.Display) {
			t.Errorf("capacity summary note omits scheme %s: %q", sc.Display, note)
		}
	}
}

func TestRunDispatchesAllIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	for _, id := range []string{"cpuschemes"} { // cheap one through Run()
		rep, err := Run(id, tinyParams())
		if err != nil || rep == nil || rep.ID != id {
			t.Fatalf("Run(%s) = %v, %v", id, rep, err)
		}
	}
}
