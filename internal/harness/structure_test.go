package harness

import "testing"

// tinyParams makes each generator cheap enough to exercise structurally
// (rows present, values recorded); shape assertions live in harness_test.go
// at saturating scales.
func tinyParams() Params { return Params{Tasks: 48, SMMs: 4, Seed: 1} }

func TestFig6Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	r := Fig6(tinyParams())
	// 5 benchmarks x 3 schemes.
	if len(r.Rows) != 15 {
		t.Fatalf("fig6 rows = %d, want 15", len(r.Rows))
	}
	for _, key := range []string{"MB/pagoda/64", "DCT/hyperq/64", "MPE/gemtc/64"} {
		if r.Get(key) <= 0 {
			t.Errorf("fig6 missing series point %s", key)
		}
	}
}

func TestFig7Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	r := Fig7(tinyParams())
	if len(r.Rows) != 8*3 {
		t.Fatalf("fig7 rows = %d, want 24", len(r.Rows))
	}
	if r.Get("geomean128/pagoda-vs-hyperq") <= 0 {
		t.Error("fig7 geomean not recorded")
	}
	// Work per task constant across thread counts: times comparable (same
	// order of magnitude) between 32 and 512 threads for a regular load.
	lo, hi := mustGet(t, r, "CONV/pagoda/32"), mustGet(t, r, "CONV/pagoda/512")
	if lo <= 0 || hi <= 0 {
		t.Fatalf("fig7 CONV series missing: %v %v", lo, hi)
	}
	if lo > hi*50 || hi > lo*50 {
		t.Errorf("fig7 CONV thread sweep wildly inconsistent: 32thr=%v 512thr=%v", lo, hi)
	}
}

func TestFig8Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	r := Fig8(tinyParams())
	// MM and CONV x 4 thread counts.
	if len(r.Rows) != 8 {
		t.Fatalf("fig8 rows = %d, want 8", len(r.Rows))
	}
	for _, key := range []string{"MM/256/16", "CONV/2048/256"} {
		if r.Get(key) <= 0 {
			t.Errorf("fig8 missing point %s", key)
		}
	}
}

func TestFig9Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	r := Fig9(tinyParams())
	if len(r.Rows) != 8 {
		t.Fatalf("fig9 rows = %d, want 8", len(r.Rows))
	}
	if r.Get("geomean/pagoda-vs-fusion") <= 0 {
		t.Error("fig9 geomean not recorded")
	}
	for _, row := range r.Rows {
		name := row[0]
		for _, scheme := range []string{"fusion", "pthreads", "hyperq", "pagoda"} {
			if r.Get(name+"/"+scheme) <= 0 {
				t.Errorf("fig9 %s/%s missing", name, scheme)
			}
		}
	}
}

func TestTable3Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	r := Table3(tinyParams())
	if len(r.Rows) != 8 {
		t.Fatalf("table3 rows = %d, want 8", len(r.Rows))
	}
	for _, row := range r.Rows {
		name := row[0]
		// copyfrac may legitimately be 0 (fully compute-bound), so a missing
		// key is only distinguishable through Lookup.
		f := mustGet(t, r, name+"/copyfrac")
		if f < 0 || f > 1 {
			t.Errorf("table3 %s copy fraction out of range: %v", name, f)
		}
	}
	// Directional check at any scale: DCT is the most copy-bound workload,
	// SLUD and MB the least (Table 3: 81% vs 3%/24%).
	dct, slud, mb := mustGet(t, r, "DCT/copyfrac"), mustGet(t, r, "SLUD/copyfrac"), mustGet(t, r, "MB/copyfrac")
	if dct <= slud {
		t.Errorf("table3: DCT copy share (%v) should exceed SLUD's (%v)", dct, slud)
	}
	if dct <= mb {
		t.Errorf("table3: DCT copy share (%v) should exceed MB's (%v)", dct, mb)
	}
}

func TestCPUSchemesStructure(t *testing.T) {
	// At a few dozen tasks OpenMP's fork-join can tie PThreads (no pool-tail
	// imbalance), so the winner assertion lives in hostcpu's bake-off test
	// at paper-like task counts; here we only check structure.
	p := tinyParams()
	p.Tasks = 1024
	r := CPUSchemes(p)
	if len(r.Rows) != 4 {
		t.Fatalf("cpuschemes rows = %d, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		name := row[0]
		for _, scheme := range []string{"OpenMP", "OS-sched", "Python-pool", "PThreads"} {
			if r.Get(name+"/"+scheme) <= 0 {
				t.Errorf("cpuschemes %s/%s missing", name, scheme)
			}
		}
		if row[len(row)-1] != "PThreads" {
			t.Errorf("%s: best scheme = %s, want PThreads", name, row[len(row)-1])
		}
	}
}

func TestRunDispatchesAllIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	for _, id := range []string{"cpuschemes"} { // cheap one through Run()
		rep, err := Run(id, tinyParams())
		if err != nil || rep == nil || rep.ID != id {
			t.Fatalf("Run(%s) = %v, %v", id, rep, err)
		}
	}
}
