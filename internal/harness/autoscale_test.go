package harness

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/autoscale"
)

func TestClusterAutoscaleShape(t *testing.T) {
	p := tinyParams()
	r := ClusterAutoscale(p)
	pf := p.fill()
	nPol := len(autoscale.PolicyNames())
	nSch := len(pf.gpuSchemes())
	wantRows := 2*nPol*2*nSch + nPol*nSch // sweep (arrivals x tunings) + trace section
	if len(r.Rows) != wantRows {
		t.Fatalf("cluster_autoscale rows = %d, want %d", len(r.Rows), wantRows)
	}
	if r.Seed != p.Seed {
		t.Errorf("Seed = %d, want %d", r.Seed, p.Seed)
	}
	suffixes := []string{"/p99us", "/goodput", "/drops", "/nodesec", "/nodesec-mtask",
		"/scale-outs", "/scale-ins", "/peak"}
	for _, arr := range []string{"diurnal", "flash"} {
		for _, pol := range autoscale.PolicyNames() {
			for _, tun := range []string{"gentle", "aggressive"} {
				for _, sc := range pf.gpuSchemes() {
					key := fmt.Sprintf("%s/%s/%s/%s", arr, pol, tun, sc.Key)
					for _, suffix := range suffixes {
						if _, ok := r.Lookup(key + suffix); !ok {
							t.Errorf("missing value %s%s", key, suffix)
						}
					}
					if peak := r.Get(key + "/peak"); peak < float64(pf.MinNodes) || peak > float64(pf.MaxNodes) {
						t.Errorf("%s peak %v outside bounds %d..%d", key, peak, pf.MinNodes, pf.MaxNodes)
					}
				}
			}
		}
	}
	for _, pol := range autoscale.PolicyNames() {
		for _, sc := range pf.gpuSchemes() {
			key := fmt.Sprintf("trace/%s/%s", pol, sc.Key)
			for _, suffix := range suffixes {
				if _, ok := r.Lookup(key + suffix); !ok {
					t.Errorf("missing value %s%s", key, suffix)
				}
			}
			if peak := r.Get(key + "/peak"); peak < asTraceMin || peak > asTraceMax {
				t.Errorf("%s peak %v outside trace bounds %d..%d", key, peak, asTraceMin, asTraceMax)
			}
			if ns := r.Get(key + "/nodesec-mtask"); ns <= 0 {
				t.Errorf("%s node-seconds per Mtask %v, want > 0", key, ns)
			}
		}
	}
}

// TestClusterAutoscalePolicyFilter: -autoscale restricts the scaling-policy
// axis the way -schemes restricts the scheme axis.
func TestClusterAutoscalePolicyFilter(t *testing.T) {
	p := tinyParams()
	p.Autoscale = "predictive"
	p.Schemes = []string{"hyperq"}
	r := ClusterAutoscale(p)
	wantRows := 2*1*2*1 + 1 // one policy, one scheme
	if len(r.Rows) != wantRows {
		t.Fatalf("filtered rows = %d, want %d", len(r.Rows), wantRows)
	}
	for _, row := range r.Rows {
		if row[1] != "predictive" {
			t.Errorf("row scaler %q leaked past -autoscale predictive", row[1])
		}
	}
	if _, ok := r.Lookup("trace/reactive/hyperq/nodesec-mtask"); ok {
		t.Error("reactive values present despite -autoscale predictive")
	}
}

func TestClusterAutoscaleRegistered(t *testing.T) {
	ids := strings.Join(Experiments(), " ")
	if !strings.Contains(ids, "cluster_autoscale") {
		t.Error("Experiments() missing cluster_autoscale")
	}
	if _, err := Run("cluster_autoscale", Params{Tasks: 48, SMMs: 4, Seed: 1, Schemes: []string{"gemtc"}, Autoscale: "reactive"}); err != nil {
		t.Fatalf("Run(cluster_autoscale): %v", err)
	}
}
