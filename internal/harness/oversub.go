package harness

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/runners"
	"repro/internal/serve"
	"repro/internal/workloads"
)

// oversubFactors is the zorua oversubscription ladder the sweep walks: 1.0
// is physical admission (no virtualization benefit, no spill risk), and each
// step above it admits more co-resident tasks per physical resource.
var oversubFactors = []float64{1, 1.25, 1.5, 2, 3}

// oversubRates is the offered-load ladder per factor, chosen so the
// shared-memory-bound workload's knee lands inside it on the 2-SMM slice.
var oversubRates = []float64{8e3, 16e3, 32e3, 64e3, 128e3}

// oversubSMMs is the device slice the sweep runs on. Occupancy admission is
// a per-SMM decision, so a narrow slice surfaces it at offered rates a
// 512-task run can actually sustain; the full device would need megahertz
// arrival rates before shared-memory residency ever bound.
const oversubSMMs = 2

// OversubSweep regenerates the zorua oversubscription sweep: the
// shared-memory DCT workload under Poisson arrivals, swept over the
// oversubscription factor crossed with an offered-rate ladder. Low factors
// waste capacity by admitting conservatively; high factors admit more
// resident tasks than the shared memory can back and pay spill traffic on
// every reference — the knee between the two is the factor a deployment
// would pick.
func OversubSweep(p Params) *Report {
	p = p.fill()
	n := serveTaskCount(p)
	slo := p.sloCycles()

	sc, ok := runners.SchemeByKey("zorua")
	if !ok {
		panic("harness: zorua scheme missing from the runners registry")
	}

	header := []string{"Factor"}
	for _, rate := range oversubRates {
		header = append(header, fmt.Sprintf("%.0f/s", rate))
	}
	header = append(header, "max-rate(/s)")
	r := newReport("oversub_sweep",
		fmt.Sprintf("Zorua oversubscription sweep (DCT shared-memory, %d tasks, Poisson arrivals; p99 us per offered rate, * = %.0fus p99 SLO missed)", n, slo/1e3),
		header...)
	r.setSeed(p.Seed)

	// One warp per threadblock against the 16 KB shared tile (InputSize
	// 512): six resident blocks fill an SMM's shared memory but leave its
	// warp slots nearly empty, so physical admission starves the latency-
	// hiding the segmented kernel needs — exactly the regime
	// virtualization targets. Copies are off: this is an occupancy
	// experiment, and the 1 MB/task PCIe traffic would drown it.
	b, _ := workloads.ByName("DCT")
	opt := workloads.Options{Tasks: n, Threads: 32, InputSize: 512, Seed: p.Seed, UseShared: true}

	s := newSweep(p)
	cells := make(map[float64][]*serve.Stats)
	for _, factor := range oversubFactors {
		cfg := p.runnerCfg()
		cfg.SMMs = oversubSMMs
		cfg.CopyData = false
		cfg.Oversub = gpu.UniformOversub(factor)
		for _, rate := range oversubRates {
			gen := serve.Poisson{Rate: rate, Seed: p.Seed}
			cells[factor] = append(cells[factor], serveCell(s, b, opt, cfg, gen, nil, sc, slo))
		}
	}
	s.run()

	for _, factor := range oversubFactors {
		row := []string{fmt.Sprintf("%.2f", factor)}
		ok := make([]bool, len(oversubRates))
		for i, rate := range oversubRates {
			st := *cells[factor][i]
			ok[i] = st.SLOSatisfied()
			row = append(row, cond(ok[i], us(st.P99), us(st.P99)+"*"))
			key := fmt.Sprintf("%.2f", factor)
			r.set(fmt.Sprintf("%s/p99us/%.0f", key, rate), st.P99/1e3)
			r.set(fmt.Sprintf("%s/goodput/%.0f", key, rate), st.Goodput)
		}
		max := serve.MaxSustainable(oversubRates, ok)
		r.set(fmt.Sprintf("%.2f/max-rate", factor), max)
		row = append(row, cond(max > 0, fmt.Sprintf("%.0f", max), "none"))
		r.addRow(row...)
	}
	r.note("factor 1.00 is physical admission; above it zorua admits factor x the physical shared memory/registers/threads/thread-slots and pays spill traffic for the excess")
	r.note("the knee is the largest factor whose max sustainable rate still grows: beyond it spill cost eats the extra concurrency")
	return r
}
