package harness

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/runners"
	"repro/internal/serve"
	"repro/internal/tenancy"
	"repro/internal/workloads"
)

// TestSingleTenantReducesToOpenLoop pins the tenancy layer's zero-cost
// claim: one class at a fixed rate under the pass-through policy produces
// records bit-for-bit identical to driving the runner's open loop directly,
// for every registered scheme. The tenancy path adds a Merge and an
// AdmitTask indirection; neither may perturb a single timestamp.
func TestSingleTenantReducesToOpenLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	n := 96
	b, _ := workloads.ByName("MB")
	opt := workloads.Options{Tasks: n, Threads: 128, Seed: 1}
	cfg := runners.DefaultConfig()
	cfg.SMMs = 4

	gen := serve.FixedRate{Rate: 64e3}
	cl := []tenancy.Class{{Name: "only", Priority: 0, Weight: 1, Rate: 64e3, Burst: 1,
		SLO: 1e6, Gen: gen}}

	for _, sc := range runners.Schemes() {
		arrivals, classOf := tenancy.Merge(cl, []int{n})
		adm := tenancy.NewAdmission(tenancy.AdmitNone, cl, arrivals, classOf, 0, false)
		_, got := sc.RunOpenLoop(b.Make(opt), runners.OpenLoop{
			Arrivals:  arrivals,
			AdmitTask: adm.AdmitTask,
		}, cfg)

		_, want := sc.RunOpenLoop(b.Make(opt), runners.OpenLoop{Arrivals: gen.Times(n)}, cfg)

		if len(got) != len(want) {
			t.Fatalf("%s: %d records via tenancy, %d direct", sc.Key, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: record %d differs via tenancy: %+v vs %+v", sc.Key, i, got[i], want[i])
			}
		}
		for i, o := range adm.Outcomes() {
			if o != tenancy.Served {
				t.Fatalf("%s: pass-through outcome[%d] = %v, want served", sc.Key, i, o)
			}
		}
	}
}

// TestTenancyConservesTasksInRecords runs the policed admission layer
// through every scheme's real open-loop path and checks the books balance
// end to end: every record is either completed or dropped, a dropped record
// is exactly a shed-or-evicted outcome, and offered = served + shed +
// evicted per class.
func TestTenancyConservesTasksInRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	p := Params{Tasks: 96, SMMs: 4, Seed: 1}.fill()
	n := serveTaskCount(p)
	classes := tenantClasses(p, n, p.sloCycles())
	counts := tenantCounts(n, p.Tenants)
	b, _ := workloads.ByName("XFMR")
	cfg := p.runnerCfg()

	for _, kind := range []string{tenancy.AdmitStrict, tenancy.AdmitWFQ} {
		for _, sc := range runners.Schemes() {
			arrivals, classOf := tenancy.Merge(classes, counts)
			adm := tenancy.NewAdmission(kind, classes, arrivals, classOf, tenantAdmitLimit, true)
			_, recs := sc.RunOpenLoop(b.Make(workloads.Options{Tasks: len(arrivals), Seed: p.Seed}),
				runners.OpenLoop{Arrivals: arrivals, AdmitTask: adm.AdmitTask}, cfg)

			outcomes := adm.Outcomes()
			for i, r := range recs {
				if r.Dropped != (outcomes[i] != tenancy.Served) {
					t.Fatalf("%s/%s: record %d dropped=%v but outcome=%v", kind, sc.Key, i, r.Dropped, outcomes[i])
				}
			}
			st := tenancy.SummarizeClasses(classes, classOf, recs, outcomes)
			for _, cs := range st {
				if cs.Offered != cs.Completed+cs.Shed+cs.Evicted {
					t.Fatalf("%s/%s class %s: offered %d != completed %d + shed %d + evicted %d",
						kind, sc.Key, cs.Class, cs.Offered, cs.Completed, cs.Shed, cs.Evicted)
				}
				if cs.Dropped != cs.Shed+cs.Evicted {
					t.Fatalf("%s/%s class %s: dropped %d != shed %d + evicted %d",
						kind, sc.Key, cs.Class, cs.Dropped, cs.Shed, cs.Evicted)
				}
			}
		}
	}
}

func TestTenantQoSShape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	p := testParams()
	r := TenantQoS(p)
	wantRows := len(tenancy.Kinds()) * len(runners.Schemes()) * 3
	if len(r.Rows) != wantRows {
		t.Fatalf("tenant_qos rows = %d, want %d", len(r.Rows), wantRows)
	}
	// The perf gate pins this key; losing it must fail loudly here first.
	mustGet(t, r, "strict/premium/pagoda/p99us")

	for _, sc := range runners.Schemes() {
		for _, class := range []string{"premium", "standard", "batch"} {
			// The pass-through baseline polices nothing.
			if v := mustGet(t, r, fmt.Sprintf("none/%s/%s/shed", class, sc.Key)); v != 0 {
				t.Errorf("none/%s/%s shed %v tasks", class, sc.Key, v)
			}
			if v := mustGet(t, r, fmt.Sprintf("none/%s/%s/evict", class, sc.Key)); v != 0 {
				t.Errorf("none/%s/%s evicted %v tasks", class, sc.Key, v)
			}
		}
		// The misbehaving standard class is policed back to its contract
		// under both real policies.
		for _, kind := range []string{tenancy.AdmitStrict, tenancy.AdmitWFQ} {
			if v := mustGet(t, r, fmt.Sprintf("%s/standard/%s/shed", kind, sc.Key)); v == 0 {
				t.Errorf("%s/%s: misbehaving class was never shed", kind, sc.Key)
			}
			// An honest premium tenant is never shed by its own bucket.
			if v := mustGet(t, r, fmt.Sprintf("%s/premium/%s/shed", kind, sc.Key)); v != 0 {
				t.Errorf("%s/%s: honest premium class shed %v tasks", kind, sc.Key, v)
			}
		}
	}
}

func TestOversubSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	r := OversubSweep(testParams())
	if len(r.Rows) != len(oversubFactors) {
		t.Fatalf("oversub_sweep rows = %d, want %d", len(r.Rows), len(oversubFactors))
	}
	for _, factor := range oversubFactors {
		mustGet(t, r, fmt.Sprintf("%.2f/max-rate", factor))
		for _, rate := range oversubRates {
			mustGet(t, r, fmt.Sprintf("%.2f/p99us/%.0f", factor, rate))
		}
	}
	if !strings.Contains(r.Title, "Zorua") {
		t.Errorf("oversub_sweep title does not name the scheme: %q", r.Title)
	}
}
