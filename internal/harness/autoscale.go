package harness

import (
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/runners"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Sweep-section lifecycle: scaled to the short horizons the capped task
// counts produce, so small runs still exercise warm-up, drain and cooldown.
// The trace-replay section uses the autoscale package defaults instead — the
// production-flavored 1ms warm-up — because its horizon is p.Tasks long.
const (
	asSweepInterval = sim.Time(50_000)  // 50us control loop
	asSweepWarmup   = sim.Time(200_000) // 200us provision-to-dispatchable
	asSweepCooldown = sim.Time(100_000) // 100us between scale events
)

// Trace-replay bounds are fixed at 8..32 nodes independent of -minnodes /
// -maxnodes, so the node-seconds-per-Mtask headline is comparable across
// invocations (and pinnable by pagodaperf).
const (
	asTraceMin = 8
	asTraceMax = 32
)

// elasticOut is one elastic fleet cell's summary: serving stats, the final
// per-node ledgers, the scale outcome, and the run's elapsed virtual time
// (for pricing a scaler-disabled fixed fleet).
type elasticOut struct {
	st      serve.Stats
	views   []cluster.NodeView
	scale   *autoscale.Outcome
	elapsed sim.Time
}

// nodeSeconds prices the cell: the scaler's provision-to-retire ledger, or —
// when scaling was disabled (min = max) and no outcome exists — the fixed
// fleet's size times the run's elapsed time.
func (e elasticOut) nodeSeconds() float64 {
	if e.scale != nil {
		return e.scale.NodeSeconds()
	}
	return float64(len(e.views)) * e.elapsed / 1e9
}

func (e elasticOut) nodeSecPerMTask() float64 {
	if e.st.Completed <= 0 {
		return 0
	}
	return e.nodeSeconds() / (float64(e.st.Completed) / 1e6)
}

func (e elasticOut) outsInsPeak() (int, int, int) {
	if e.scale == nil {
		return 0, 0, len(e.views)
	}
	return e.scale.ScaleOuts, e.scale.ScaleIns, e.scale.Peak
}

// elasticCell enqueues one elastic fleet simulation. Arrivals, the routing
// policy and the scaler config are all constructed inside the cell, keeping
// cells independent at any harness parallelism; conservation across every
// scale-out and drain is checked before any number escapes.
func elasticCell(s *sweep, mk func() []workloads.TaskDef, cfg runners.Config,
	gen serve.Generator, mkScaler func() *autoscale.Config, mkPol func() cluster.Policy,
	admit func() func(sim.Time, int) bool, sc runners.Scheme, slo sim.Time) *elasticOut {
	out := new(elasticOut)
	s.add(func() {
		tasks := mk()
		co := runners.ClusterOpenLoop{
			Arrivals: gen.Times(len(tasks)),
			Admit:    admit,
			Scaler:   mkScaler(),
		}
		if mkPol != nil {
			co.Policy = mkPol()
		}
		res, cr := sc.RunCluster(tasks, co, cfg)
		if err := cr.CheckConservation(); err != nil {
			panic(fmt.Sprintf("harness: elastic fleet leaked tasks: %v", err))
		}
		out.st = serve.Summarize(cr.Recs, slo)
		out.views = cr.Views
		out.scale = cr.Scale
		out.elapsed = res.Elapsed
	})
	return out
}

// scalePolicies resolves the scaling-policy axis: every registered policy,
// or just the one p.Autoscale names (the CLI validates the name; an unknown
// one panics here like an unknown routing policy would).
func (p Params) scalePolicies() []string {
	if p.Autoscale == "" {
		return autoscale.PolicyNames()
	}
	if _, err := autoscale.NewPolicy(p.Autoscale, autoscale.DefaultTuning()); err != nil {
		panic(err)
	}
	return []string{p.Autoscale}
}

// mkScalerFor builds the scaler-config factory for one (policy, tuning)
// sweep point over the [min, max] fleet bounds.
func mkScalerFor(policy string, tu autoscale.Tuning, min, max int,
	interval, warmup, cooldown sim.Time) func() *autoscale.Config {
	return func() *autoscale.Config {
		mk, err := autoscale.NewPolicy(policy, tu)
		if err != nil {
			panic(err)
		}
		return &autoscale.Config{Min: min, Max: max, Policy: mk,
			Interval: interval, Warmup: warmup, Cooldown: cooldown}
	}
}

// ClusterAutoscale regenerates the fleet-elasticity sweep: scaler
// aggressiveness (gentle vs aggressive tuning of the reactive and predictive
// policies) against arrival burstiness (diurnal and flash-crowd generators)
// for every GPU scheme, plus a trace-replay section on fixed 8..32 bounds
// that replays a recorded diurnal trace at full -tasks length — the
// million-task cell — and prices each policy in node-seconds per million
// tasks served. Cost (node-sec, ns/Mtask) versus SLO (p99, goodput) is the
// headline trade: aggressive tunings buy tail latency with node-seconds.
func ClusterAutoscale(p Params) *Report {
	p = p.fill()
	n := clusterTaskCount(p)
	slo := p.sloCycles()
	min, max := p.MinNodes, p.MaxNodes

	// Rates keyed to the cluster_scaling headline (one node sustains 64k
	// tasks/s under the 1000us SLO): the diurnal mean sits mid-band and the
	// flash crowd spikes past the max bound, so both bounds get exercised.
	perNode := 64e3
	meanRate := perNode * float64(min+max) / 2
	arrivalKinds := []struct {
		key string
		gen serve.Generator
	}{
		{"diurnal", serve.Diurnal{MeanRate: meanRate, Swing: 0.8, Period: 400_000, Seed: p.Seed}},
		{"flash", serve.FlashCrowd{BaseRate: perNode * float64(min), SpikeRate: 1.5 * perNode * float64(max),
			SpikeAt: 200_000, SpikeDur: 400_000, Seed: p.Seed}},
	}
	gentle := autoscale.DefaultTuning()
	gentle.SLO = slo
	gentle.PerNodeRate = perNode
	tunings := []struct {
		key string
		tu  autoscale.Tuning
	}{
		{"gentle", gentle},
		{"aggressive", gentle.Aggressive()},
	}

	b, _ := workloads.ByName("MB")
	mk := func() []workloads.TaskDef {
		return b.Make(workloads.Options{Tasks: n, Threads: 128, Seed: p.Seed})
	}
	admit := func() func(sim.Time, int) bool { return serve.BoundedQueue{Limit: 32}.Admit }
	cfg := p.runnerCfg()
	schemes := p.gpuSchemes()
	policies := p.scalePolicies()

	r := newReport("cluster_autoscale",
		fmt.Sprintf("Fleet autoscaling (MB, %d tasks, %d..%d nodes, policy %s, p99 SLO %.0fus; trace section %d tasks on %d..%d nodes)",
			n, min, max, p.Policy, slo/1e3, p.Tasks, asTraceMin, asTraceMax),
		"Arrivals", "Scaler", "Tuning", "Scheme", "p99(us)", "drops", "goodput",
		"node-sec", "ns/Mtask", "outs", "ins", "peak")
	r.setSeed(p.Seed)

	type asCell struct {
		arr, pol, tun string
		sc            runners.Scheme
		out           *elasticOut
	}
	s := newSweep(p)
	var cells []asCell
	for _, ak := range arrivalKinds {
		for _, pol := range policies {
			for _, tn := range tunings {
				mkSc := mkScalerFor(pol, tn.tu, min, max, asSweepInterval, asSweepWarmup, asSweepCooldown)
				for _, sc := range schemes {
					cells = append(cells, asCell{ak.key, pol, tn.key, sc,
						elasticCell(s, mk, cfg, ak.gen, mkSc, p.clusterPolicy(), admit, sc, slo)})
				}
			}
		}
	}

	// Trace-replay section: record a diurnal arrival sequence once, replay it
	// through serve.Trace at the full (uncapped) task count on the fixed
	// 8..32 bounds with the production lifecycle defaults. This is the cell
	// that scales to a million tasks: `pagodabench -exp cluster_autoscale
	// -tasks 1000000 -scheme <key>`.
	traceMean := perNode * float64(asTraceMin+asTraceMax) / 2
	recorded := serve.Diurnal{MeanRate: traceMean, Swing: 0.6, Period: 2_000_000, Seed: p.Seed}.Times(p.Tasks)
	traceGen := serve.Trace{Label: "diurnal-replay", At: recorded}
	traceTu := autoscale.DefaultTuning()
	traceTu.SLO = slo
	traceTu.PerNodeRate = perNode
	mkTrace := func() []workloads.TaskDef {
		return b.Make(workloads.Options{Tasks: p.Tasks, Threads: 128, Seed: p.Seed})
	}
	for _, pol := range policies {
		mkSc := mkScalerFor(pol, traceTu, asTraceMin, asTraceMax, 0, autoscale.DefaultWarmup, 0)
		for _, sc := range schemes {
			cells = append(cells, asCell{"trace", pol, "default", sc,
				elasticCell(s, mkTrace, cfg, traceGen, mkSc, p.clusterPolicy(), admit, sc, slo)})
		}
	}
	s.run()

	for _, c := range cells {
		st := c.out.st
		outs, ins, peak := c.out.outsInsPeak()
		r.addRow(c.arr, c.pol, c.tun, c.sc.Display,
			us(st.P99), fmt.Sprint(st.Dropped), f2(st.Goodput),
			fmt.Sprintf("%.4f", c.out.nodeSeconds()), f2(c.out.nodeSecPerMTask()),
			fmt.Sprint(outs), fmt.Sprint(ins), fmt.Sprint(peak))
		key := c.arr + "/" + c.pol
		if c.arr != "trace" {
			key += "/" + c.tun
		}
		key += "/" + c.sc.Key
		r.set(key+"/p99us", st.P99/1e3)
		r.set(key+"/goodput", st.Goodput)
		r.set(key+"/drops", float64(st.Dropped))
		r.set(key+"/nodesec", c.out.nodeSeconds())
		r.set(key+"/nodesec-mtask", c.out.nodeSecPerMTask())
		r.set(key+"/scale-outs", float64(outs))
		r.set(key+"/scale-ins", float64(ins))
		r.set(key+"/peak", float64(peak))
	}
	r.note("node-sec charges every provisioned cycle from provision to retirement — warm-up (%.0fus sweep, %.0fus trace) and drain included; ns/Mtask = node-sec per million tasks served", asSweepWarmup/1e3, autoscale.DefaultWarmup/1e3)
	r.note("conservation (routed = done + dropped on every node ever provisioned) is asserted inside every cell; scale-event counts are outs/ins, peak is the highest provisioned count")
	r.note("trace rows replay a recorded diurnal trace (%d arrivals) on fixed %d..%d bounds with default lifecycle, so their ns/Mtask is comparable across runs", p.Tasks, asTraceMin, asTraceMax)
	return r
}
