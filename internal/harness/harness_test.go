package harness

import (
	"math"
	"strings"
	"testing"
)

// mustGet returns the recorded value for key, failing the test if the key was
// never set — Get's 0-for-missing would otherwise turn a typo'd key into a
// bogus 0 or NaN ratio.
func mustGet(t *testing.T, r *Report, key string) float64 {
	t.Helper()
	v, ok := r.Lookup(key)
	if !ok {
		t.Fatalf("%s: value %q was never recorded (have %d keys)", r.ID, key, len(r.Values))
	}
	return v
}

// testParams keeps harness runs quick while preserving shapes.
func testParams() Params { return Params{Tasks: 192, SMMs: 8, Seed: 1} }

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean(2,8) = %v, want 4", g)
	}
	// Non-positive inputs and empty series mean a broken run; they must fail
	// loudly instead of silently zeroing a published headline.
	wantPanic(t, "geomean(nil)", func() { geomean(nil) })
	wantPanic(t, "geomean(1,-1)", func() { geomean([]float64{1, -1}) })
	wantPanic(t, "geomean(0)", func() { geomean([]float64{0}) })
	wantPanic(t, "geomean(NaN)", func() { geomean([]float64{math.NaN()}) })
}

func wantPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", testParams()); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestExperimentsListMatchesRun(t *testing.T) {
	ids := Experiments()
	if len(ids) != 17 {
		t.Fatalf("Experiments() = %v, want 17 artifacts", ids)
	}
}

func TestReportRendering(t *testing.T) {
	r := newReport("figX", "Test", "A", "B")
	r.addRow("x", "1.00")
	r.note("hello %d", 7)
	var sb strings.Builder
	r.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"FIGX", "Test", "A", "B", "x", "1.00", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	r := Fig5(testParams())
	if len(r.Rows) != len(fig5Benchmarks) {
		t.Fatalf("fig5 rows = %d, want %d", len(r.Rows), len(fig5Benchmarks))
	}
	if g := mustGet(t, r, "geomean/pagoda-vs-hyperq"); g <= 1.0 {
		t.Errorf("Pagoda vs HyperQ geomean = %.2f, want > 1 (paper: 1.51)", g)
	}
	if g := mustGet(t, r, "geomean/pagoda-vs-pthreads"); g <= 1.0 {
		t.Errorf("Pagoda vs PThreads geomean = %.2f, want > 1 (paper: 5.70)", g)
	}
	if g := mustGet(t, r, "geomean/pagoda-vs-gemtc"); g <= 1.0 {
		t.Errorf("Pagoda vs GeMTC geomean = %.2f, want > 1 (paper: 1.69)", g)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	p := testParams()
	r := Fig10(p)
	// Fused latency grows with task count; Pagoda stays far flatter.
	for _, name := range []string{"3DES", "MM"} {
		lo := mustGet(t, r, "fused-"+name+"/128")
		hi := mustGet(t, r, "fused-"+name+"/512")
		if hi <= lo {
			t.Errorf("%s fused latency flat: %v -> %v", name, lo, hi)
		}
		pgLo := mustGet(t, r, "pagoda-"+name+"/128")
		pgHi := mustGet(t, r, "pagoda-"+name+"/512")
		if pgHi/pgLo > (hi/lo)*0.9 {
			t.Errorf("%s Pagoda latency grew as fast as fusion: pagoda %.1fx vs fused %.1fx",
				name, pgHi/pgLo, hi/lo)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	// Saturating scale: below device saturation the shared-memory benefit
	// is invisible behind spawn costs.
	p := Params{Tasks: 1024, SMMs: 2, Seed: 1}
	r := Table5(p)
	for _, name := range []string{"DCT", "MM"} {
		withSM := mustGet(t, r, name+"/speedup-sm")
		noSM := mustGet(t, r, name+"/speedup-nosm")
		if withSM <= 0 || noSM <= 0 {
			t.Fatalf("%s missing speedups: %v %v", name, withSM, noSM)
		}
		// "The shared memory usage offers considerable benefits."
		if withSM <= noSM {
			t.Errorf("%s: shared-memory version (%.2f) not faster than without (%.2f)", name, withSM, noSM)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	// The paper's batching/continuous-spawning contrast only appears once
	// the task count exceeds the batch size ("once the task count grows
	// beyond 512, Pagoda obtains higher performance", §6.2).
	r := Fig11(Params{Tasks: 1024, SMMs: 8, Seed: 1})
	// Pagoda outperforms GeMTC in all cases (paper).
	for _, row := range r.Rows {
		name := row[0]
		if v := mustGet(t, r, name+"/pagoda"); v <= 1.0 {
			t.Errorf("%s: Pagoda (%.2f) not above GeMTC", name, v)
		}
	}
}
