package harness

import (
	"strings"
	"testing"
)

func TestLookup(t *testing.T) {
	r := newReport("figX", "Test", "A")
	r.set("present", 0) // a recorded zero must be distinguishable from missing
	if v, ok := r.Lookup("present"); !ok || v != 0 {
		t.Errorf("Lookup(present) = %v, %v; want 0, true", v, ok)
	}
	if _, ok := r.Lookup("absent"); ok {
		t.Error("Lookup(absent) reported ok for a key that was never set")
	}
	if v := r.Get("absent"); v != 0 {
		t.Errorf("Get(absent) = %v, want 0", v)
	}
}

// TestFprintAlignsRowsWiderThanHeader pins the column-width fix: rows with
// more cells than the header must still print with every column aligned
// (widths used to be sized only for header-length columns, leaving the
// overflow cells ragged).
func TestFprintAlignsRowsWiderThanHeader(t *testing.T) {
	r := newReport("figX", "Wide", "A", "B")
	r.addRow("x", "1", "short", "9")
	r.addRow("yyyy", "22", "a-much-longer-cell", "10")
	var sb strings.Builder
	r.Fprint(&sb)
	lines := strings.Split(sb.String(), "\n")
	// lines: title, header, separator, row1, row2, blank...
	row1, row2 := lines[3], lines[4]
	if len(row1) != len(row2) {
		t.Fatalf("rows render at different widths:\n%q\n%q", row1, row2)
	}
	// Every cell of row1 must start at the same offset as row2's.
	off1 := strings.Index(row1, "short")
	off2 := strings.Index(row2, "a-much-longer-cell")
	if off1 != off2 {
		t.Errorf("third column misaligned: offset %d vs %d:\n%q\n%q", off1, off2, row1, row2)
	}
	if c1, c2 := strings.Index(row1, "9"), strings.Index(row2, "10"); c1 != c2 {
		t.Errorf("fourth column misaligned: offset %d vs %d:\n%q\n%q", c1, c2, row1, row2)
	}
}

// TestFprintHeaderWidthUnchanged guards the common case: for well-formed
// tables (rows no wider than the header) the rendering is exactly the
// pre-fix output, so EXPERIMENTS.md regenerations stay stable.
func TestFprintHeaderWidthUnchanged(t *testing.T) {
	r := newReport("figX", "Test", "Benchmark", "Speedup")
	r.addRow("MB", "1.50")
	var sb strings.Builder
	r.Fprint(&sb)
	want := "== FIGX: Test ==\n" +
		"Benchmark  Speedup  \n" +
		"---------  -------  \n" +
		"MB         1.50     \n" +
		"\n"
	if sb.String() != want {
		t.Errorf("rendering changed for a well-formed table:\ngot:\n%q\nwant:\n%q", sb.String(), want)
	}
}
