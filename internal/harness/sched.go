package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runCells executes the sweep's cells with the requested parallelism.
//
// Every cell is a whole, self-contained simulation — it builds its own task
// set, engine, device and bus, and writes only to its own result slot — so
// cells may run in any order or concurrently without changing any result.
// parallel <= 0 uses one worker per available CPU; parallel == 1 runs the
// cells in declaration order on the calling goroutine, which is exactly the
// execution order the pre-cell harness used.
//
// Determinism: the scheduler only changes *when* a cell runs, never what it
// computes, and report assembly happens after run() in declaration order, so
// rendered output is byte-identical at every width (asserted by
// TestAllExperimentsDeterministicAndParallelSafe).
func runCells(parallel int, jobs []func()) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(jobs) {
		parallel = len(jobs)
	}
	if parallel <= 1 {
		for _, job := range jobs {
			job()
		}
		return
	}
	// Workers pull the next undone cell index from an atomic cursor. The
	// goroutines here never touch engine state across cells: each cell owns a
	// private sim stack (see internal/runners.newSystem), and the packages
	// under it hold no package-level mutable state (audited for this
	// scheduler; guarded by `make race` over the parallel sweep).
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() { //pagoda:allow rawgo harness cells are independent whole simulations outside any engine's virtual time; the pool joins before assembly
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				jobs[i]()
			}
		}()
	}
	wg.Wait()
}
