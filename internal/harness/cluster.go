package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/runners"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// clusterTaskCap bounds the fleet experiments' task count: each cell
// simulates up to 8 devices on one engine, so paper-scale task counts would
// multiply the sweep's wall-clock without changing any percentile's meaning.
const clusterTaskCap = 256

func clusterTaskCount(p Params) int {
	if p.Tasks > clusterTaskCap {
		return clusterTaskCap
	}
	return p.Tasks
}

// clusterOut is one fleet cell's summary: the latency/goodput stats over the
// whole fleet plus the per-node accounting the imbalance metric reads.
type clusterOut struct {
	st    serve.Stats
	views []cluster.NodeView
}

// imbalance is max routed / ideal share — 1.00 means a perfectly even split,
// 4.00 on a 4-node fleet means one node took everything.
func (c clusterOut) imbalance() float64 {
	total, max := 0, 0
	for _, v := range c.views {
		total += v.Routed
		if v.Routed > max {
			max = v.Routed
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) * float64(len(c.views)) / float64(total)
}

// clusterCell enqueues one fleet simulation. Arrivals are regenerated and
// the routing policy and per-node admission are constructed inside the cell,
// keeping cells independent at any harness parallelism; the conservation
// invariant is checked before any number escapes the cell.
func clusterCell(s *sweep, mk func() []workloads.TaskDef, classes []int, cfg runners.Config,
	gen serve.Generator, nodes int, mkPol func() cluster.Policy,
	admit func() func(sim.Time, int) bool, sc runners.Scheme, slo sim.Time) *clusterOut {
	out := new(clusterOut)
	s.add(func() {
		tasks := mk()
		co := runners.ClusterOpenLoop{
			Arrivals: gen.Times(len(tasks)),
			Classes:  classes,
			Nodes:    nodes,
			Admit:    admit,
		}
		if mkPol != nil {
			co.Policy = mkPol()
		}
		_, cr := sc.RunCluster(tasks, co, cfg)
		if err := cr.CheckConservation(); err != nil {
			panic(fmt.Sprintf("harness: fleet leaked tasks: %v", err))
		}
		out.st = serve.Summarize(cr.Recs, slo)
		out.views = cr.Views
	})
	return out
}

func (p Params) clusterPolicy() func() cluster.Policy {
	mk, err := cluster.NewPolicy(p.Policy, p.Seed)
	if err != nil {
		panic(err)
	}
	return mk
}

// ClusterScaling regenerates the fleet-scaling sweep: p99 and SLO-bounded
// capacity versus node count (1 to 8) for each GPU scheme, offered load
// scaled with the fleet (each ladder rung is a per-node rate; the fleet sees
// rung x nodes). The headline is whether capacity scales linearly with
// nodes — it does when the dispatcher, not a device, is the only shared
// component — and the 1-node column ties the fleet back to the single-device
// serve_capacity numbers.
func ClusterScaling(p Params) *Report {
	p = p.fill()
	n := clusterTaskCount(p)
	slo := p.sloCycles()
	nodeCounts := []int{1, 2, 4, 8}
	perNode := []float64{4e3, 16e3, 64e3}

	header := []string{"Scheme", "Nodes"}
	for _, rate := range perNode {
		header = append(header, fmt.Sprintf("p99@%.0f/s/node(us)", rate))
	}
	header = append(header, "cap(/s)", "cap/node(/s)", "imbalance")
	r := newReport("cluster_scaling",
		fmt.Sprintf("Fleet scaling (MB, %d tasks, Poisson arrivals, policy %s, p99 SLO %.0fus, * = SLO missed)",
			n, p.Policy, slo/1e3),
		header...)
	r.setSeed(p.Seed)

	b, _ := workloads.ByName("MB")
	opt := workloads.Options{Tasks: n, Threads: 128, Seed: p.Seed}
	mk := func() []workloads.TaskDef { return b.Make(opt) }
	cfg := p.runnerCfg()

	type scalingCell struct {
		sc    runners.Scheme
		nodes int
		rate  float64 // per-node offered rate
		out   *clusterOut
	}
	s := newSweep(p)
	schemes := p.gpuSchemes()
	var cells []scalingCell
	for _, sc := range schemes {
		for _, nodes := range nodeCounts {
			for _, rate := range perNode {
				gen := serve.Poisson{Rate: rate * float64(nodes), Seed: p.Seed}
				cells = append(cells, scalingCell{sc, nodes, rate,
					clusterCell(s, mk, nil, cfg, gen, nodes, p.clusterPolicy(), nil, sc, slo)})
			}
		}
	}
	s.run()

	i := 0
	for _, sc := range schemes {
		for _, nodes := range nodeCounts {
			row := []string{sc.Display, fmt.Sprint(nodes)}
			offered := make([]float64, len(perNode))
			ok := make([]bool, len(perNode))
			var top *clusterOut
			for j, rate := range perNode {
				c := cells[i]
				i++
				st := c.out.st
				offered[j] = rate * float64(nodes)
				ok[j] = st.SLOSatisfied()
				row = append(row, cond(ok[j], us(st.P99), us(st.P99)+"*"))
				key := fmt.Sprintf("%s/%d", sc.Key, nodes)
				r.set(fmt.Sprintf("%s/p99us/%.0f", key, rate), st.P99/1e3)
				r.set(fmt.Sprintf("%s/goodput/%.0f", key, rate), st.Goodput)
				top = c.out
			}
			max := serve.MaxSustainable(offered, ok)
			key := fmt.Sprintf("%s/%d", sc.Key, nodes)
			r.set(key+"/max-rate", max)
			r.set(key+"/max-rate-node", max/float64(nodes))
			r.set(key+"/imbalance", top.imbalance())
			row = append(row,
				cond(max > 0, fmt.Sprintf("%.0f", max), "none"),
				cond(max > 0, fmt.Sprintf("%.0f", max/float64(nodes)), "none"),
				f2(top.imbalance()))
			r.addRow(row...)
		}
	}
	r.note("cap is the highest offered rate (per-node rung x nodes) whose whole prefix met the %.0fus p99 SLO with no drops; cap/node flat across fleet sizes = linear scaling", slo/1e3)
	r.note("imbalance = max node share / ideal share at the top rung (1.00 = even split); seed %d threads every arrival stream", p.Seed)
	return r
}

// clusterClassBenches are the task classes of the policy comparison: four
// distinct narrow-task kernels interleaved into one arrival stream, so
// class-affine routing has real structure to exploit.
var clusterClassBenches = []string{"MB", "CONV", "DCT", "3DES"}

// makeMixedTasks interleaves the class benchmarks into one task list; task i
// belongs to class i % len(clusterClassBenches).
func makeMixedTasks(n int, seed int64) []workloads.TaskDef {
	k := len(clusterClassBenches)
	per := make([][]workloads.TaskDef, k)
	for bi, name := range clusterClassBenches {
		b, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		cnt := (n - bi + k - 1) / k // tasks i < n with i % k == bi
		per[bi] = b.Make(workloads.Options{Tasks: cnt, Threads: 128, Seed: seed})
	}
	out := make([]workloads.TaskDef, n)
	idx := make([]int, k)
	for i := range out {
		bi := i % k
		out[i] = per[bi][idx[bi]]
		idx[bi]++
	}
	return out
}

// ClusterPolicy regenerates the dispatch-policy comparison: every routing
// policy crossed with Poisson and bursty arrivals for each GPU scheme, on a
// fixed fleet serving a mixed-class workload under bounded per-node
// admission. Load-aware policies should hold tails and goodput under bursts
// where round-robin cannot see the pile-up; affinity trades balance for
// class locality and the imbalance column prices that trade.
func ClusterPolicy(p Params) *Report {
	p = p.fill()
	n := clusterTaskCount(p)
	slo := p.sloCycles()
	nodes := p.Nodes

	rate := 16e3 * float64(nodes)
	arrivalKinds := []struct {
		key string
		gen serve.Generator
	}{
		{"poisson", serve.Poisson{Rate: rate, Seed: p.Seed}},
		{"bursty", serve.Bursty{PeakRate: 512e3, Burst: 16, Gap: 200_000}},
	}
	classes := make([]int, n)
	for i := range classes {
		classes[i] = i % len(clusterClassBenches)
	}
	mk := func() []workloads.TaskDef { return makeMixedTasks(n, p.Seed) }
	admit := func() func(sim.Time, int) bool { return serve.BoundedQueue{Limit: 32}.Admit }
	cfg := p.runnerCfg()

	r := newReport("cluster_policy",
		fmt.Sprintf("Dispatch policies on a %d-node fleet (mixed %v, %d tasks, queue32/node, p99 SLO %.0fus)",
			nodes, clusterClassBenches, n, slo/1e3),
		"Arrivals", "Policy", "Scheme", "p50(us)", "p99(us)", "max(us)", "drops", "goodput", "imbalance")
	r.setSeed(p.Seed)

	type policyCell struct {
		arr    string
		policy string
		sc     runners.Scheme
		out    *clusterOut
	}
	s := newSweep(p)
	var cells []policyCell
	for _, ak := range arrivalKinds {
		for _, pname := range cluster.PolicyNames() {
			mkPol, err := cluster.NewPolicy(pname, p.Seed)
			if err != nil {
				panic(err)
			}
			for _, sc := range p.gpuSchemes() {
				cells = append(cells, policyCell{ak.key, pname, sc,
					clusterCell(s, mk, classes, cfg, ak.gen, nodes, mkPol, admit, sc, slo)})
			}
		}
	}
	s.run()

	for _, c := range cells {
		st := c.out.st
		r.addRow(c.arr, c.policy, c.sc.Display,
			us(st.P50), us(st.P99), us(st.Max),
			fmt.Sprint(st.Dropped), f2(st.Goodput), f2(c.out.imbalance()))
		key := fmt.Sprintf("%s/%s/%s", c.sc.Key, c.policy, c.arr)
		r.set(key+"/p99us", st.P99/1e3)
		r.set(key+"/drops", float64(st.Dropped))
		r.set(key+"/goodput", st.Goodput)
		r.set(key+"/imbalance", c.out.imbalance())
	}
	r.note("per-node admission is a 32-deep bounded queue: a routing mistake shows up as drops on the overloaded node, not just queueing delay")
	r.note("classes interleave %v; affinity homes class c on node c %% %d and p2c probes two seeded-random nodes", clusterClassBenches, nodes)
	return r
}
