package harness

import (
	"fmt"

	"repro/internal/runners"
	"repro/internal/workloads"
)

// Params scales an experiment. The paper uses Tasks=32768 (SLUD ~273K); the
// default here keeps a full sweep tractable on a laptop while preserving
// every shape — pass -tasks 32768 to pagodabench for paper scale.
type Params struct {
	Tasks int
	SMMs  int
	Seed  int64

	// Parallel is the number of experiment cells (independent simulations)
	// run concurrently: 0 uses one worker per CPU, 1 runs cells sequentially
	// in declaration order. Output is byte-identical at every width; see
	// sched.go.
	Parallel int

	// SLOUs is the p99 latency bound for the serve_* and cluster_*
	// experiments in microseconds; 0 means the 1000us default. Other
	// experiments ignore it.
	SLOUs float64

	// Nodes is the fleet size for the cluster_* experiments; 0 means 4.
	// cluster_scaling sweeps its own node-count axis and ignores it.
	Nodes int

	// Policy names the cluster routing policy (see cluster.PolicyNames);
	// empty means round-robin. cluster_policy sweeps every policy and
	// ignores it.
	Policy string
}

// DefaultParams returns the laptop-scale defaults.
func DefaultParams() Params { return Params{Tasks: 2048, SMMs: 24, Seed: 1} }

func (p Params) fill() Params {
	if p.Tasks <= 0 {
		p.Tasks = 2048
	}
	if p.SMMs <= 0 {
		p.SMMs = 24
	}
	if p.Nodes <= 0 {
		p.Nodes = 4
	}
	if p.Policy == "" {
		p.Policy = "rr"
	}
	return p
}

func (p Params) runnerCfg() runners.Config {
	cfg := runners.DefaultConfig()
	cfg.SMMs = p.SMMs
	return cfg
}

// Experiments lists every regenerable artifact (the paper's tables and
// figures, the §6.2 CPU-scheme bake-off, and the open-loop serving sweeps).
func Experiments() []string {
	return []string{"table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table5", "cpuschemes", "serve_latency", "serve_capacity", "cluster_scaling", "cluster_policy"}
}

// Run regenerates one experiment by ID.
func Run(id string, p Params) (*Report, error) {
	switch id {
	case "fig5":
		return Fig5(p), nil
	case "fig6":
		return Fig6(p), nil
	case "fig7":
		return Fig7(p), nil
	case "fig8":
		return Fig8(p), nil
	case "fig9":
		return Fig9(p), nil
	case "fig10":
		return Fig10(p), nil
	case "fig11":
		return Fig11(p), nil
	case "table3":
		return Table3(p), nil
	case "table5":
		return Table5(p), nil
	case "cpuschemes":
		return CPUSchemes(p), nil
	case "serve_latency":
		return ServeLatency(p), nil
	case "serve_capacity":
		return ServeCapacity(p), nil
	case "cluster_scaling":
		return ClusterScaling(p), nil
	case "cluster_policy":
		return ClusterPolicy(p), nil
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, Experiments())
	}
}

// fig5Benchmarks are the Fig. 5 bars, in paper order (SLUD scaled by the
// same factor the paper uses: 273K/32K ≈ 8.5x the task count).
var fig5Benchmarks = []string{"MB", "FB", "BF", "CONV", "DCT", "MM", "SLUD", "3DES", "MPE"}

func taskCount(p Params, bench string) int {
	if bench == "SLUD" {
		return p.Tasks * 273 / 32
	}
	return p.Tasks
}

// Fig5 regenerates the overall performance comparison: speedup over
// sequential CPU for PThreads(20-core), CUDA-HyperQ, GeMTC and Pagoda, 128
// threads per task, copy+compute time.
func Fig5(p Params) *Report {
	p = p.fill()
	r := newReport("fig5", fmt.Sprintf("Overall performance (speedup over 1-core CPU), %d tasks, 128 threads/task", p.Tasks),
		"Benchmark", "PThreads", "CUDA-HyperQ", "GeMTC", "Pagoda", "Pagoda/HQ", "Pagoda/GeMTC", "Pagoda/PThr", "HQ p99(us)", "Pagoda p99(us)")

	type fig5Cells struct {
		name                string
		seq, pt, pg, hq, gm *runners.Result
	}
	s := newSweep(p)
	var cells []fig5Cells
	for _, name := range fig5Benchmarks {
		b, _ := workloads.ByName(name)
		opt := workloads.Options{Tasks: taskCount(p, name), Threads: 128, Seed: p.Seed, UseShared: b.SupportsShared}
		cfg := p.runnerCfg()
		c := fig5Cells{
			name: name,
			seq:  s.cell(b, opt, cfg, seqScheme),
			pt:   s.cell(b, opt, cfg, runners.RunPThreads),
			pg:   s.cell(b, opt, cfg, runners.RunPagoda),
			hq:   s.cell(b, opt, cfg, runners.RunHyperQ),
		}
		if name != "SLUD" { // "We could not implement SLUD in GeMTC"
			c.gm = s.cell(b, opt, cfg, runners.RunGeMTC)
		}
		cells = append(cells, c)
	}
	s.run()

	var vsPT, vsHQ, vsGM []float64
	for _, c := range cells {
		name := c.name
		seq := *c.seq
		hqS := seq.Elapsed / c.hq.Elapsed
		gmS, gmStr := 0.0, "n/a"
		if c.gm != nil {
			gmS = seq.Elapsed / c.gm.Elapsed
			gmStr = f2(gmS)
		}
		ptS := seq.Elapsed / c.pt.Elapsed
		pgS := seq.Elapsed / c.pg.Elapsed
		r.addRow(name, f2(ptS), f2(hqS), gmStr, f2(pgS),
			f2(pgS/hqS), cond(gmS > 0, f2(pgS/gmS), "n/a"), f2(pgS/ptS),
			us(c.hq.P99Latency), us(c.pg.P99Latency))
		r.set(name+"/pthreads", ptS)
		r.set(name+"/hyperq", hqS)
		if gmS > 0 {
			r.set(name+"/gemtc", gmS)
			r.set(name+"/p99us/gemtc", c.gm.P99Latency/1e3)
		}
		r.set(name+"/pagoda", pgS)
		// Exact per-task tail latency (nearest-rank over the closed-loop run's
		// latency vector) — the narrow-task story the speedup columns hide.
		r.set(name+"/p99us/pthreads", c.pt.P99Latency/1e3)
		r.set(name+"/p99us/hyperq", c.hq.P99Latency/1e3)
		r.set(name+"/p99us/pagoda", c.pg.P99Latency/1e3)
		vsPT = append(vsPT, pgS/ptS)
		vsHQ = append(vsHQ, pgS/hqS)
		if gmS > 0 {
			vsGM = append(vsGM, pgS/gmS)
		}
	}
	r.set("geomean/pagoda-vs-pthreads", geomean(vsPT))
	r.set("geomean/pagoda-vs-hyperq", geomean(vsHQ))
	r.set("geomean/pagoda-vs-gemtc", geomean(vsGM))
	r.note("geomean Pagoda speedup: %.2fx over PThreads (paper: 5.70x), %.2fx over CUDA-HyperQ (paper: 1.51x), %.2fx over GeMTC (paper: 1.69x)",
		geomean(vsPT), geomean(vsHQ), geomean(vsGM))
	return r
}

// Fig6 regenerates weak scaling with the number of tasks for MB, CONV, DCT,
// 3DES and MPE (execution time in ms; 128 threads per task).
func Fig6(p Params) *Report {
	p = p.fill()
	counts := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	var kept []int
	for _, c := range counts {
		if c <= p.Tasks*4 {
			kept = append(kept, c)
		}
	}
	r := newReport("fig6", "Weak scaling with number of tasks (execution time, ms)",
		append([]string{"Benchmark", "Scheme"}, intsToStrings(kept)...)...)
	type fig6Cells struct {
		name       string
		n          int
		hq, gm, pg *runners.Result
	}
	s := newSweep(p)
	var cells []fig6Cells
	for _, name := range []string{"MB", "CONV", "DCT", "3DES", "MPE"} {
		b, _ := workloads.ByName(name)
		cfg := p.runnerCfg()
		for _, n := range kept {
			opt := workloads.Options{Tasks: n, Threads: 128, Seed: p.Seed}
			cells = append(cells, fig6Cells{
				name: name, n: n,
				hq: s.cell(b, opt, cfg, runners.RunHyperQ),
				gm: s.cell(b, opt, cfg, runners.RunGeMTC),
				pg: s.cell(b, opt, cfg, runners.RunPagoda),
			})
		}
	}
	s.run()

	rows := map[string][]string{}
	for _, c := range cells {
		rows["CUDA-HyperQ"] = append(rows["CUDA-HyperQ"], ms(c.hq.Elapsed))
		rows["GeMTC"] = append(rows["GeMTC"], ms(c.gm.Elapsed))
		rows["Pagoda"] = append(rows["Pagoda"], ms(c.pg.Elapsed))
		r.set(fmt.Sprintf("%s/hyperq/%d", c.name, c.n), c.hq.Elapsed)
		r.set(fmt.Sprintf("%s/gemtc/%d", c.name, c.n), c.gm.Elapsed)
		r.set(fmt.Sprintf("%s/pagoda/%d", c.name, c.n), c.pg.Elapsed)
		if len(rows["Pagoda"]) == len(kept) { // benchmark complete: emit its 3 rows
			for _, scheme := range []string{"CUDA-HyperQ", "GeMTC", "Pagoda"} {
				r.addRow(append([]string{c.name, scheme}, rows[scheme]...)...)
			}
			rows = map[string][]string{}
		}
	}
	r.note("paper: Pagoda versions run faster than HyperQ and GeMTC beyond 512 tasks")
	return r
}

// Fig7 regenerates the compute-time comparison across thread counts per
// task (no data copies, no shared memory; work per task constant).
func Fig7(p Params) *Report {
	p = p.fill()
	threadCounts := []int{32, 64, 128, 256, 512}
	r := newReport("fig7", fmt.Sprintf("Compute time vs threads per task (%d tasks; ms)", p.Tasks),
		append([]string{"Benchmark", "Scheme"}, intsToStrings(threadCounts)...)...)
	cfg := p.runnerCfg()
	cfg.CopyData = false

	type fig7Cells struct {
		name       string
		th         int
		hq, gm, pg *runners.Result
	}
	s := newSweep(p)
	var cells []fig7Cells
	for _, name := range []string{"MB", "FB", "BF", "CONV", "DCT", "MM", "3DES", "MPE"} {
		b, _ := workloads.ByName(name)
		for _, th := range threadCounts {
			opt := workloads.Options{Tasks: p.Tasks, Threads: th, Seed: p.Seed}
			cells = append(cells, fig7Cells{
				name: name, th: th,
				hq: s.cell(b, opt, cfg, runners.RunHyperQ),
				gm: s.cell(b, opt, cfg, runners.RunGeMTC),
				pg: s.cell(b, opt, cfg, runners.RunPagoda),
			})
		}
	}
	s.run()

	var vsHQ128, vsGM128, p99vsHQ128 []float64
	rows := map[string][]string{}
	for _, c := range cells {
		rows["CUDA-HyperQ"] = append(rows["CUDA-HyperQ"], ms(c.hq.Elapsed))
		rows["GeMTC"] = append(rows["GeMTC"], ms(c.gm.Elapsed))
		rows["Pagoda"] = append(rows["Pagoda"], ms(c.pg.Elapsed))
		r.set(fmt.Sprintf("%s/hyperq/%d", c.name, c.th), c.hq.Elapsed)
		r.set(fmt.Sprintf("%s/gemtc/%d", c.name, c.th), c.gm.Elapsed)
		r.set(fmt.Sprintf("%s/pagoda/%d", c.name, c.th), c.pg.Elapsed)
		// Exact per-task p99 alongside each makespan point (us; nearest-rank
		// order statistics from the runs' latency vectors).
		r.set(fmt.Sprintf("%s/p99us/hyperq/%d", c.name, c.th), c.hq.P99Latency/1e3)
		r.set(fmt.Sprintf("%s/p99us/gemtc/%d", c.name, c.th), c.gm.P99Latency/1e3)
		r.set(fmt.Sprintf("%s/p99us/pagoda/%d", c.name, c.th), c.pg.P99Latency/1e3)
		if c.th == 128 {
			vsHQ128 = append(vsHQ128, c.hq.Elapsed/c.pg.Elapsed)
			vsGM128 = append(vsGM128, c.gm.Elapsed/c.pg.Elapsed)
			p99vsHQ128 = append(p99vsHQ128, c.hq.P99Latency/c.pg.P99Latency)
		}
		if len(rows["Pagoda"]) == len(threadCounts) { // benchmark complete
			for _, scheme := range []string{"CUDA-HyperQ", "GeMTC", "Pagoda"} {
				r.addRow(append([]string{c.name, scheme}, rows[scheme]...)...)
			}
			rows = map[string][]string{}
		}
	}
	r.set("geomean128/pagoda-vs-hyperq", geomean(vsHQ128))
	r.set("geomean128/pagoda-vs-gemtc", geomean(vsGM128))
	r.set("geomean128/p99/pagoda-vs-hyperq", geomean(p99vsHQ128))
	r.note("geomean at 128 threads: Pagoda %.2fx over HyperQ (paper: 2.29x), %.2fx over GeMTC (paper: 2.26x)",
		geomean(vsHQ128), geomean(vsGM128))
	r.note("geomean p99 latency at 128 threads: HyperQ %.2fx Pagoda's (per-scheme p99 series under <bench>/p99us/<scheme>/<threads>)",
		geomean(p99vsHQ128))
	return r
}

func cond(b bool, t, f string) string {
	if b {
		return t
	}
	return f
}

func intsToStrings(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprint(v)
	}
	return out
}
