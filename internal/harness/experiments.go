package harness

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/runners"
	"repro/internal/workloads"
)

// Params scales an experiment. The paper uses Tasks=32768 (SLUD ~273K); the
// default here keeps a full sweep tractable on a laptop while preserving
// every shape — pass -tasks 32768 to pagodabench for paper scale.
type Params struct {
	Tasks int
	SMMs  int
	Seed  int64

	// Parallel is the number of experiment cells (independent simulations)
	// run concurrently: 0 uses one worker per CPU, 1 runs cells sequentially
	// in declaration order. Output is byte-identical at every width; see
	// sched.go.
	Parallel int

	// SLOUs is the p99 latency bound for the serve_* and cluster_*
	// experiments in microseconds; 0 means the 1000us default. Other
	// experiments ignore it.
	SLOUs float64

	// Nodes is the fleet size for the cluster_* experiments; 0 means 4.
	// cluster_scaling sweeps its own node-count axis and ignores it.
	Nodes int

	// Policy names the cluster routing policy (see cluster.PolicyNames);
	// empty means round-robin. cluster_policy sweeps every policy and
	// ignores it.
	Policy string

	// Schemes restricts the GPU schemes the serve_* and cluster_*
	// experiments sweep (keys from runners.SchemeKeys()); empty means all.
	// The figure experiments have fixed per-scheme columns and ignore it.
	Schemes []string

	// Oversub overrides the zorua scheme's oversubscription factor
	// (uniform across all four resources); 0 means the scheme default,
	// 1 means physical admission. Other schemes ignore it.
	Oversub float64

	// Tenants is the number of tenant classes for tenant_qos; 0 means 3.
	Tenants int

	// MinNodes and MaxNodes bound the elastic fleet in cluster_autoscale
	// (0 means 2 and 8). The trace-replay section pins its own bounds so
	// the node-seconds headline stays comparable across invocations.
	MinNodes int
	MaxNodes int

	// Autoscale restricts cluster_autoscale to one scaling policy (see
	// autoscale.PolicyNames); empty sweeps all of them.
	Autoscale string

	// Misbehave selects which tenant class offers 10x its contracted rate
	// in tenant_qos: 0 (the zero value) means the default — the standard
	// class, index 1 — a negative value disables misbehavior, and any
	// other value is the class index itself.
	Misbehave int
}

// DefaultParams returns the laptop-scale defaults.
func DefaultParams() Params { return Params{Tasks: 2048, SMMs: 24, Seed: 1} }

func (p Params) fill() Params {
	if p.Tasks <= 0 {
		p.Tasks = 2048
	}
	if p.SMMs <= 0 {
		p.SMMs = 24
	}
	if p.Nodes <= 0 {
		p.Nodes = 4
	}
	if p.Policy == "" {
		p.Policy = "rr"
	}
	if p.Tenants <= 0 {
		p.Tenants = 3
	}
	if p.MinNodes <= 0 {
		p.MinNodes = 2
	}
	if p.MaxNodes <= 0 {
		p.MaxNodes = 8
	}
	return p
}

// misbehaveIdx resolves the Misbehave convention to a class index (-1 for
// an all-honest run).
func (p Params) misbehaveIdx() int {
	if p.Misbehave < 0 {
		return -1
	}
	if p.Misbehave == 0 {
		return 1
	}
	return p.Misbehave
}

func (p Params) runnerCfg() runners.Config {
	cfg := runners.DefaultConfig()
	cfg.SMMs = p.SMMs
	if p.Oversub > 0 {
		cfg.Oversub = gpu.UniformOversub(p.Oversub)
	}
	return cfg
}

// gpuSchemes returns the GPU schemes a serving/cluster sweep covers: the
// full runners registry, or the subset named by p.Schemes, in registry
// order. Deriving the list here (instead of hard-coding scheme names per
// experiment) is what lets a newly registered scheme appear in every
// sweep automatically.
func (p Params) gpuSchemes() []runners.Scheme {
	all := runners.Schemes()
	if len(p.Schemes) == 0 {
		return all
	}
	want := make(map[string]bool, len(p.Schemes))
	for _, k := range p.Schemes {
		want[k] = true
	}
	var out []runners.Scheme
	for _, s := range all {
		if want[s.Key] {
			out = append(out, s)
		}
	}
	return out
}

// Experiments lists every regenerable artifact (the paper's tables and
// figures, the §6.2 CPU-scheme bake-off, and the open-loop serving sweeps).
func Experiments() []string {
	return []string{"table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table5", "cpuschemes", "serve_latency", "serve_capacity", "tenant_qos", "oversub_sweep", "cluster_scaling", "cluster_policy", "cluster_autoscale"}
}

// Run regenerates one experiment by ID.
func Run(id string, p Params) (*Report, error) {
	switch id {
	case "fig5":
		return Fig5(p), nil
	case "fig6":
		return Fig6(p), nil
	case "fig7":
		return Fig7(p), nil
	case "fig8":
		return Fig8(p), nil
	case "fig9":
		return Fig9(p), nil
	case "fig10":
		return Fig10(p), nil
	case "fig11":
		return Fig11(p), nil
	case "table3":
		return Table3(p), nil
	case "table5":
		return Table5(p), nil
	case "cpuschemes":
		return CPUSchemes(p), nil
	case "serve_latency":
		return ServeLatency(p), nil
	case "serve_capacity":
		return ServeCapacity(p), nil
	case "tenant_qos":
		return TenantQoS(p), nil
	case "oversub_sweep":
		return OversubSweep(p), nil
	case "cluster_scaling":
		return ClusterScaling(p), nil
	case "cluster_policy":
		return ClusterPolicy(p), nil
	case "cluster_autoscale":
		return ClusterAutoscale(p), nil
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, Experiments())
	}
}

// fig5Benchmarks are the Fig. 5 bars, in paper order (SLUD scaled by the
// same factor the paper uses: 273K/32K ≈ 8.5x the task count).
var fig5Benchmarks = []string{"MB", "FB", "BF", "CONV", "DCT", "MM", "SLUD", "3DES", "MPE"}

func taskCount(p Params, bench string) int {
	if bench == "SLUD" {
		return p.Tasks * 273 / 32
	}
	return p.Tasks
}

// fig5Abbrev shortens a GPU scheme key for the ratio column headers.
var fig5Abbrev = map[string]string{"hyperq": "HQ", "gemtc": "GeMTC", "pagoda": "Pg", "zorua": "Zorua"}

// Fig5 regenerates the overall performance comparison: speedup over
// sequential CPU for PThreads(20-core) and every registered GPU scheme, 128
// threads per task, copy+compute time. The GPU columns are derived from the
// runners scheme registry so a new scheme gets a bar automatically.
func Fig5(p Params) *Report {
	p = p.fill()
	schemes := runners.Schemes()
	header := []string{"Benchmark", "PThreads"}
	for _, sc := range schemes {
		header = append(header, sc.Display)
	}
	for _, sc := range schemes {
		if sc.Key != "pagoda" {
			header = append(header, "Pagoda/"+fig5Abbrev[sc.Key])
		}
	}
	header = append(header, "Pagoda/PThr", "HQ p99(us)", "Pagoda p99(us)")
	r := newReport("fig5", fmt.Sprintf("Overall performance (speedup over 1-core CPU), %d tasks, 128 threads/task", p.Tasks),
		header...)

	type fig5Cells struct {
		name    string
		seq, pt *runners.Result
		gpu     []*runners.Result // parallel to schemes; nil where unsupported
	}
	s := newSweep(p)
	var cells []fig5Cells
	for _, name := range fig5Benchmarks {
		b, _ := workloads.ByName(name)
		opt := workloads.Options{Tasks: taskCount(p, name), Threads: 128, Seed: p.Seed, UseShared: b.SupportsShared}
		cfg := p.runnerCfg()
		c := fig5Cells{
			name: name,
			seq:  s.cell(b, opt, cfg, seqScheme),
			pt:   s.cell(b, opt, cfg, runners.RunPThreads),
		}
		for _, sc := range schemes {
			if name == "SLUD" && sc.Key == "gemtc" { // "We could not implement SLUD in GeMTC"
				c.gpu = append(c.gpu, nil)
				continue
			}
			c.gpu = append(c.gpu, s.cell(b, opt, cfg, sc.Run))
		}
		cells = append(cells, c)
	}
	s.run()

	var vsPT []float64
	vsGPU := make(map[string][]float64) // pagoda speedup ratio series per scheme key
	for _, c := range cells {
		name := c.name
		seq := *c.seq
		ptS := seq.Elapsed / c.pt.Elapsed
		speedup := make(map[string]float64)
		var pg *runners.Result
		for i, sc := range schemes {
			if c.gpu[i] == nil {
				continue
			}
			speedup[sc.Key] = seq.Elapsed / c.gpu[i].Elapsed
			if sc.Key == "pagoda" {
				pg = c.gpu[i]
			}
		}
		pgS := speedup["pagoda"]
		row := []string{name, f2(ptS)}
		for _, sc := range schemes {
			row = append(row, cond(speedup[sc.Key] > 0, f2(speedup[sc.Key]), "n/a"))
		}
		for _, sc := range schemes {
			if sc.Key == "pagoda" {
				continue
			}
			row = append(row, cond(speedup[sc.Key] > 0, f2(pgS/speedup[sc.Key]), "n/a"))
		}
		var hq *runners.Result
		for i, sc := range schemes {
			if sc.Key == "hyperq" {
				hq = c.gpu[i]
			}
		}
		row = append(row, f2(pgS/ptS), us(hq.P99Latency), us(pg.P99Latency))
		r.addRow(row...)

		r.set(name+"/pthreads", ptS)
		// Exact per-task tail latency (nearest-rank over the closed-loop run's
		// latency vector) — the narrow-task story the speedup columns hide.
		r.set(name+"/p99us/pthreads", c.pt.P99Latency/1e3)
		for i, sc := range schemes {
			if c.gpu[i] == nil {
				continue
			}
			r.set(name+"/"+sc.Key, speedup[sc.Key])
			r.set(name+"/p99us/"+sc.Key, c.gpu[i].P99Latency/1e3)
			if sc.Key != "pagoda" {
				vsGPU[sc.Key] = append(vsGPU[sc.Key], pgS/speedup[sc.Key])
			}
		}
		vsPT = append(vsPT, pgS/ptS)
	}
	r.set("geomean/pagoda-vs-pthreads", geomean(vsPT))
	for _, sc := range schemes {
		if sc.Key != "pagoda" {
			r.set("geomean/pagoda-vs-"+sc.Key, geomean(vsGPU[sc.Key]))
		}
	}
	r.note("geomean Pagoda speedup: %.2fx over PThreads (paper: 5.70x), %.2fx over CUDA-HyperQ (paper: 1.51x), %.2fx over GeMTC (paper: 1.69x), %.2fx over Zorua",
		geomean(vsPT), geomean(vsGPU["hyperq"]), geomean(vsGPU["gemtc"]), geomean(vsGPU["zorua"]))
	return r
}

// Fig6 regenerates weak scaling with the number of tasks for MB, CONV, DCT,
// 3DES and MPE (execution time in ms; 128 threads per task).
func Fig6(p Params) *Report {
	p = p.fill()
	counts := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	var kept []int
	for _, c := range counts {
		if c <= p.Tasks*4 {
			kept = append(kept, c)
		}
	}
	r := newReport("fig6", "Weak scaling with number of tasks (execution time, ms)",
		append([]string{"Benchmark", "Scheme"}, intsToStrings(kept)...)...)
	schemes := runners.Schemes()
	type fig6Cells struct {
		name string
		n    int
		by   []*runners.Result // parallel to schemes
	}
	s := newSweep(p)
	var cells []fig6Cells
	for _, name := range []string{"MB", "CONV", "DCT", "3DES", "MPE"} {
		b, _ := workloads.ByName(name)
		cfg := p.runnerCfg()
		for _, n := range kept {
			opt := workloads.Options{Tasks: n, Threads: 128, Seed: p.Seed}
			c := fig6Cells{name: name, n: n}
			for _, sc := range schemes {
				c.by = append(c.by, s.cell(b, opt, cfg, sc.Run))
			}
			cells = append(cells, c)
		}
	}
	s.run()

	rows := map[string][]string{}
	for _, c := range cells {
		for i, sc := range schemes {
			rows[sc.Key] = append(rows[sc.Key], ms(c.by[i].Elapsed))
			r.set(fmt.Sprintf("%s/%s/%d", c.name, sc.Key, c.n), c.by[i].Elapsed)
		}
		if len(rows["pagoda"]) == len(kept) { // benchmark complete: emit its rows
			for _, sc := range schemes {
				r.addRow(append([]string{c.name, sc.Display}, rows[sc.Key]...)...)
			}
			rows = map[string][]string{}
		}
	}
	r.note("paper: Pagoda versions run faster than HyperQ and GeMTC beyond 512 tasks")
	return r
}

// Fig7 regenerates the compute-time comparison across thread counts per
// task (no data copies, no shared memory; work per task constant).
func Fig7(p Params) *Report {
	p = p.fill()
	threadCounts := []int{32, 64, 128, 256, 512}
	r := newReport("fig7", fmt.Sprintf("Compute time vs threads per task (%d tasks; ms)", p.Tasks),
		append([]string{"Benchmark", "Scheme"}, intsToStrings(threadCounts)...)...)
	cfg := p.runnerCfg()
	cfg.CopyData = false
	schemes := runners.Schemes()

	type fig7Cells struct {
		name string
		th   int
		by   []*runners.Result // parallel to schemes
	}
	s := newSweep(p)
	var cells []fig7Cells
	for _, name := range []string{"MB", "FB", "BF", "CONV", "DCT", "MM", "3DES", "MPE"} {
		b, _ := workloads.ByName(name)
		for _, th := range threadCounts {
			opt := workloads.Options{Tasks: p.Tasks, Threads: th, Seed: p.Seed}
			c := fig7Cells{name: name, th: th}
			for _, sc := range schemes {
				c.by = append(c.by, s.cell(b, opt, cfg, sc.Run))
			}
			cells = append(cells, c)
		}
	}
	s.run()

	pgIdx := 0
	for i, sc := range schemes {
		if sc.Key == "pagoda" {
			pgIdx = i
		}
	}
	vs128 := make(map[string][]float64) // pagoda ratio series at 128 threads per scheme key
	var p99vsHQ128 []float64
	rows := map[string][]string{}
	for _, c := range cells {
		pg := c.by[pgIdx]
		for i, sc := range schemes {
			rows[sc.Key] = append(rows[sc.Key], ms(c.by[i].Elapsed))
			r.set(fmt.Sprintf("%s/%s/%d", c.name, sc.Key, c.th), c.by[i].Elapsed)
			// Exact per-task p99 alongside each makespan point (us; nearest-rank
			// order statistics from the runs' latency vectors).
			r.set(fmt.Sprintf("%s/p99us/%s/%d", c.name, sc.Key, c.th), c.by[i].P99Latency/1e3)
			if c.th == 128 && sc.Key != "pagoda" {
				vs128[sc.Key] = append(vs128[sc.Key], c.by[i].Elapsed/pg.Elapsed)
				if sc.Key == "hyperq" {
					p99vsHQ128 = append(p99vsHQ128, c.by[i].P99Latency/pg.P99Latency)
				}
			}
		}
		if len(rows["pagoda"]) == len(threadCounts) { // benchmark complete
			for _, sc := range schemes {
				r.addRow(append([]string{c.name, sc.Display}, rows[sc.Key]...)...)
			}
			rows = map[string][]string{}
		}
	}
	for _, sc := range schemes {
		if sc.Key != "pagoda" {
			r.set("geomean128/pagoda-vs-"+sc.Key, geomean(vs128[sc.Key]))
		}
	}
	r.set("geomean128/p99/pagoda-vs-hyperq", geomean(p99vsHQ128))
	r.note("geomean at 128 threads: Pagoda %.2fx over HyperQ (paper: 2.29x), %.2fx over GeMTC (paper: 2.26x), %.2fx over Zorua",
		geomean(vs128["hyperq"]), geomean(vs128["gemtc"]), geomean(vs128["zorua"]))
	r.note("geomean p99 latency at 128 threads: HyperQ %.2fx Pagoda's (per-scheme p99 series under <bench>/p99us/<scheme>/<threads>)",
		geomean(p99vsHQ128))
	return r
}

func cond(b bool, t, f string) string {
	if b {
		return t
	}
	return f
}

func intsToStrings(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprint(v)
	}
	return out
}
