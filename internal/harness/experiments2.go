package harness

import (
	"fmt"

	"repro/internal/runners"
	"repro/internal/workloads"
)

// Fig8 regenerates the threads-per-task x input-size study on MM and CONV:
// Pagoda's compute-time speedup over CUDA-HyperQ (HyperQ uses 256-thread
// threadblocks; tasks above 992 threads become multi-threadblock tasks).
func Fig8(p Params) *Report {
	p = p.fill()
	// Fig. 8 reports speedup ratios, which converge at a few hundred tasks;
	// the sweep's 40 (benchmark, threads, size) cells with up-to-2048-thread
	// tasks make it by far the most expensive artifact, so cap the per-cell
	// task count.
	if p.Tasks > 512 {
		p.Tasks = 512
	}
	inputSizes := []int{16, 32, 64, 128, 256}
	totalThreads := []int{256, 512, 1024, 2048}
	r := newReport("fig8", fmt.Sprintf("Pagoda speedup over HyperQ vs input size and threads per task (%d tasks/cell)", p.Tasks),
		append([]string{"Benchmark", "Threads"}, intsToStrings(inputSizes)...)...)
	cfg := p.runnerCfg()
	cfg.CopyData = false

	type fig8Cells struct {
		name   string
		tt, is int
		pg, hq *runners.Result
	}
	s := newSweep(p)
	var cells []fig8Cells
	for _, name := range []string{"MM", "CONV"} {
		b, _ := workloads.ByName(name)
		for _, tt := range totalThreads {
			for _, is := range inputSizes {
				opt := workloads.Options{Tasks: p.Tasks, Seed: p.Seed, InputSize: is}
				mk := func() []workloads.TaskDef {
					tasks := b.Make(opt)
					shapeTasks(tasks, tt)
					return tasks
				}
				cells = append(cells, fig8Cells{
					name: name, tt: tt, is: is,
					pg: s.cellTasks(mk, cfg, runners.RunPagoda),
					hq: s.cellTasks(mk, cfg, runners.RunHyperQ),
				})
			}
		}
	}
	s.run()

	var row []string
	for _, c := range cells {
		sp := c.hq.Elapsed / c.pg.Elapsed
		row = append(row, f2(sp))
		r.set(fmt.Sprintf("%s/%d/%d", c.name, c.tt, c.is), sp)
		if len(row) == len(inputSizes) { // (benchmark, threads) row complete
			r.addRow(append([]string{c.name, fmt.Sprint(c.tt)}, row...)...)
			row = nil
		}
	}
	r.note("paper: Pagoda wins at small thread counts for all input sizes; benefits diminish past 512 threads, with warp-level scheduling winning again at very large thread counts")
	return r
}

// shapeTasks rewrites each task's launch geometry to the given total thread
// count, splitting into 256-thread threadblocks above the single-block limit
// (as HyperQ does with 256-thread threadblocks in Fig. 8).
func shapeTasks(tasks []workloads.TaskDef, totalThreads int) {
	for i := range tasks {
		if totalThreads <= 256 {
			tasks[i].Threads = totalThreads
			tasks[i].Blocks = 1
		} else {
			tasks[i].Threads = 256
			tasks[i].Blocks = totalThreads / 256
		}
	}
}

// Fig9 regenerates the irregular-task comparison against static fusion:
// pseudo-random input sizes, dynamic 32-256 thread counts for the runtime
// schemes, fixed 256 for fusion subtasks. Speedup over sequential CPU.
func Fig9(p Params) *Report {
	p = p.fill()
	r := newReport("fig9", fmt.Sprintf("Irregular tasks vs static fusion (speedup over 1-core CPU, %d tasks)", p.Tasks),
		"Benchmark", "StaticFusion", "PThreads", "CUDA-HyperQ", "Pagoda", "Pagoda/Fusion")
	cfg := p.runnerCfg()

	type fig9Cells struct {
		name                string
		seq, fu, pt, hq, pg *runners.Result
	}
	s := newSweep(p)
	var cells []fig9Cells
	for _, name := range []string{"MB", "CONV", "DCT", "FB", "BF", "MM", "3DES", "MPE"} {
		b, _ := workloads.ByName(name)
		opt := workloads.Options{Tasks: p.Tasks, Irregular: true, Seed: p.Seed}
		cells = append(cells, fig9Cells{
			name: name,
			seq:  s.cell(b, opt, cfg, seqScheme),
			fu:   s.cell(b, opt, cfg, runners.RunFusion),
			pt:   s.cell(b, opt, cfg, runners.RunPThreads),
			hq:   s.cell(b, opt, cfg, runners.RunHyperQ),
			pg:   s.cell(b, opt, cfg, runners.RunPagoda),
		})
	}
	s.run()

	var vsFusion []float64
	for _, c := range cells {
		name := c.name
		seq := *c.seq
		fuS := seq.Elapsed / c.fu.Elapsed
		ptS := seq.Elapsed / c.pt.Elapsed
		hqS := seq.Elapsed / c.hq.Elapsed
		pgS := seq.Elapsed / c.pg.Elapsed
		r.addRow(name, f2(fuS), f2(ptS), f2(hqS), f2(pgS), f2(pgS/fuS))
		r.set(name+"/fusion", fuS)
		r.set(name+"/pthreads", ptS)
		r.set(name+"/hyperq", hqS)
		r.set(name+"/pagoda", pgS)
		vsFusion = append(vsFusion, pgS/fuS)
	}
	r.set("geomean/pagoda-vs-fusion", geomean(vsFusion))
	r.note("geomean Pagoda over static fusion: %.2fx (paper: 1.79x)", geomean(vsFusion))
	return r
}

// Fig10 regenerates the average task latency study: 3DES (irregular) and MM
// (regular) under static fusion vs Pagoda as the task count grows.
func Fig10(p Params) *Report {
	p = p.fill()
	counts := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	var kept []int
	for _, c := range counts {
		if c <= p.Tasks*4 {
			kept = append(kept, c)
		}
	}
	r := newReport("fig10", "Average task latency (us) vs number of tasks",
		append([]string{"Series"}, intsToStrings(kept)...)...)
	cfg := p.runnerCfg()

	type fig10Cells struct {
		name   string
		n      int
		fu, pg *runners.Result
	}
	s := newSweep(p)
	var cells []fig10Cells
	for _, name := range []string{"3DES", "MM"} {
		b, _ := workloads.ByName(name)
		for _, n := range kept {
			opt := workloads.Options{Tasks: n, Threads: 128, Seed: p.Seed}
			cells = append(cells, fig10Cells{
				name: name, n: n,
				fu: s.cell(b, opt, cfg, runners.RunFusion),
				pg: s.cell(b, opt, cfg, runners.RunPagoda),
			})
		}
	}
	s.run()

	var fusedRow, pagodaRow []string
	for _, c := range cells {
		fusedRow = append(fusedRow, us(c.fu.AvgLatency))
		pagodaRow = append(pagodaRow, us(c.pg.AvgLatency))
		r.set(fmt.Sprintf("fused-%s/%d", c.name, c.n), c.fu.AvgLatency)
		r.set(fmt.Sprintf("pagoda-%s/%d", c.name, c.n), c.pg.AvgLatency)
		if len(fusedRow) == len(kept) { // benchmark complete
			r.addRow(append([]string{"Fused " + c.name}, fusedRow...)...)
			r.addRow(append([]string{"Pagoda " + c.name}, pagodaRow...)...)
			fusedRow, pagodaRow = nil, nil
		}
	}
	r.note("paper: fused latency grows with task count; Pagoda latency stays flat")
	return r
}

// Fig11 regenerates the continuous-spawning and pipelining ablation: GeMTC
// vs Pagoda-Batching (concurrent scheduling, batched spawning) vs Pagoda.
// Bars are speedups over GeMTC.
func Fig11(p Params) *Report {
	p = p.fill()
	r := newReport("fig11", fmt.Sprintf("Continuous spawning + pipelining ablation (speedup over GeMTC, %d tasks, 128 thr)", p.Tasks),
		"Benchmark", "GeMTC", "Pagoda-Batching", "Pagoda")
	type fig11Cells struct {
		name       string
		gm, pb, pg *runners.Result
	}
	s := newSweep(p)
	var cells []fig11Cells
	for _, name := range []string{"MB", "CONV", "FB", "BF", "3DES", "DCT", "MM", "MPE"} {
		b, _ := workloads.ByName(name)
		opt := workloads.Options{Tasks: p.Tasks, Threads: 128, Seed: p.Seed}
		cfg := p.runnerCfg()
		cfgB := cfg
		cfgB.PagodaBatching = true
		cells = append(cells, fig11Cells{
			name: name,
			gm:   s.cell(b, opt, cfg, runners.RunGeMTC),
			pb:   s.cell(b, opt, cfgB, runners.RunPagoda),
			pg:   s.cell(b, opt, cfg, runners.RunPagoda),
		})
	}
	s.run()

	for _, c := range cells {
		r.addRow(c.name, "1.00", f2(c.gm.Elapsed/c.pb.Elapsed), f2(c.gm.Elapsed/c.pg.Elapsed))
		r.set(c.name+"/batching", c.gm.Elapsed/c.pb.Elapsed)
		r.set(c.name+"/pagoda", c.gm.Elapsed/c.pg.Elapsed)
	}
	r.note("Pagoda-Batching isolates concurrent task scheduling; the Pagoda-vs-Batching gap is the benefit of continuous, pipelined spawning")
	return r
}

// Table3 regenerates the workload-characteristics table: the share of
// CUDA-HyperQ execution time spent in data copies vs compute.
func Table3(p Params) *Report {
	p = p.fill()
	r := newReport("table3", fmt.Sprintf("Workload characteristics under CUDA-HyperQ (%d tasks)", p.Tasks),
		"Benchmark", "%Copy", "%Compute", "Paper %Copy")
	paperCopy := map[string]int{"MB": 24, "FB": 35, "BF": 13, "CONV": 30, "DCT": 81, "MM": 51, "SLUD": 3, "3DES": 74}
	cfg := p.runnerCfg()
	cfgNC := cfg
	cfgNC.CopyData = false
	type table3Cells struct {
		name          string
		with, without *runners.Result
	}
	s := newSweep(p)
	var cells []table3Cells
	for _, name := range []string{"MB", "FB", "BF", "CONV", "DCT", "MM", "SLUD", "3DES"} {
		b, _ := workloads.ByName(name)
		// SLUD stays at base scale for this table (no 273/32 scaling).
		opt := workloads.Options{Tasks: p.Tasks, Threads: 128, Seed: p.Seed}
		cells = append(cells, table3Cells{
			name:    name,
			with:    s.cell(b, opt, cfg, runners.RunHyperQ),
			without: s.cell(b, opt, cfgNC, runners.RunHyperQ),
		})
	}
	s.run()

	for _, c := range cells {
		copyFrac := 1 - c.without.Elapsed/c.with.Elapsed
		if copyFrac < 0 {
			copyFrac = 0
		}
		r.addRow(c.name, fmt.Sprintf("%.0f", copyFrac*100), fmt.Sprintf("%.0f", (1-copyFrac)*100),
			fmt.Sprint(paperCopy[c.name]))
		r.set(c.name+"/copyfrac", copyFrac)
	}
	return r
}

// Table5 regenerates the shared-memory analysis: Pagoda with and without
// software-managed shared memory on DCT (64 threads) and MM (256 threads),
// compute time only, against HyperQ using shared memory.
func Table5(p Params) *Report {
	p = p.fill()
	r := newReport("table5", fmt.Sprintf("Pagoda shared-memory management (%d tasks, compute time)", p.Tasks),
		"Benchmark", "SpeedupWithSM", "OccWithSM", "SpeedupNoSM", "OccNoSM")
	cfg := p.runnerCfg()
	cfg.CopyData = false
	type table5Cells struct {
		name             string
		hq, withSM, noSM *runners.Result
	}
	s := newSweep(p)
	var cells []table5Cells
	for _, tc := range []struct {
		name    string
		threads int
	}{{"DCT", 64}, {"MM", 256}} {
		b, _ := workloads.ByName(tc.name)
		threads := tc.threads
		mk := func(useShared bool) func() []workloads.TaskDef {
			return func() []workloads.TaskDef {
				return b.Make(workloads.Options{Tasks: p.Tasks, Threads: threads, Seed: p.Seed, UseShared: useShared})
			}
		}
		cells = append(cells, table5Cells{
			name:   tc.name,
			hq:     s.cellTasks(mk(true), cfg, runners.RunHyperQ),
			withSM: s.cellTasks(mk(true), cfg, runners.RunPagoda),
			noSM:   s.cellTasks(mk(false), cfg, runners.RunPagoda),
		})
	}
	s.run()

	for _, c := range cells {
		spWith := c.hq.Elapsed / c.withSM.Elapsed
		spNo := c.hq.Elapsed / c.noSM.Elapsed
		r.addRow(c.name, f2(spWith), fmt.Sprintf("%.0f%%", c.withSM.Occupancy*100),
			f2(spNo), fmt.Sprintf("%.0f%%", c.noSM.Occupancy*100))
		r.set(c.name+"/speedup-sm", spWith)
		r.set(c.name+"/speedup-nosm", spNo)
		r.set(c.name+"/occ-sm", c.withSM.Occupancy)
		r.set(c.name+"/occ-nosm", c.noSM.Occupancy)
	}
	r.note("paper: DCT 1.35x/25%% occ with SM vs 1.25x/97%% without; MM 1.51x/97%% vs 1.20x/97%%")
	return r
}
