// Package harness regenerates every table and figure of the paper's
// evaluation (§6): it assembles workloads, runs them under each execution
// scheme via internal/runners, and prints the same rows/series the paper
// reports. See DESIGN.md §3 for the experiment index.
package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	ID     string // "fig5", "table5", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string

	// Seed is the PRNG seed threaded through the experiment's arrival
	// generators and routing policies, recorded so an exported artifact names
	// the randomness that produced it. Seeded says whether the experiment
	// consumed one at all (closed-loop sweeps do not, and their exports omit
	// it): tracking seededness explicitly keeps an explicit -seed 0 run from
	// being mistaken for an unseeded one, which the old Seed != 0 sentinel
	// gating did. Set both through setSeed.
	Seed   int64
	Seeded bool

	// Values holds machine-readable series keyed "row/col" for tests and
	// EXPERIMENTS.md generation.
	Values map[string]float64
}

func newReport(id, title string, header ...string) *Report {
	return &Report{ID: id, Title: title, Header: header, Values: map[string]float64{}}
}

func (r *Report) addRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// setSeed records the seed an experiment consumed. Experiments that use any
// randomness must call it — including with seed 0, which is as valid a seed
// as any other.
func (r *Report) setSeed(seed int64) { r.Seed, r.Seeded = seed, true }

func (r *Report) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *Report) set(key string, v float64) { r.Values[key] = v }

// Get returns a recorded value (0 when missing). Prefer Lookup anywhere a
// missing key must be distinguishable from a recorded zero — a typo'd key
// here silently reads as 0.
func (r *Report) Get(key string) float64 { return r.Values[key] }

// Lookup returns a recorded value and whether the key exists.
func (r *Report) Lookup(key string) (float64, bool) {
	v, ok := r.Values[key]
	return v, ok
}

// Fprint renders the report as an aligned text table.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", strings.ToUpper(r.ID), r.Title)
	// Size columns over the header AND every row: rows may be wider than the
	// header (and would otherwise print misaligned).
	cols := len(r.Header)
	for _, row := range r.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// geomean returns the geometric mean of vs. Every input must be positive and
// finite: a zero, negative, NaN or infinite speedup means some run produced a
// nonsensical time, and the old behavior of returning 0 silently zeroed the
// published headline instead of surfacing the broken cell — so it panics.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		panic("harness: geomean of an empty series (broken sweep)")
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("harness: geomean input %v is not a positive finite speedup (broken run)", v))
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func ms(cycles float64) string { return fmt.Sprintf("%.2f", cycles/1e6) }

func us(cycles float64) string { return fmt.Sprintf("%.1f", cycles/1e3) }
