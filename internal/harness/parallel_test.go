package harness

import (
	"bytes"
	"testing"
)

// renderAll renders a report in every supported encoding; any nondeterminism
// in rows, Values or notes shows up as a byte difference.
func renderAll(t *testing.T, r *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	r.Fprint(&buf)
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAllExperimentsDeterministicAndParallelSafe runs EVERY experiment ID
// three times — twice with the sequential cell order (Parallel=1) and once on
// a 4-wide worker pool — and requires byte-identical rendered output across
// all three. The double run catches state leaking between runs (extending
// runners' TestDoubleRunDeterminism to the whole harness); the parallel run
// is the committed guarantee that the cell scheduler never changes results.
// Under `go test -race` (make check) this is also the data-race probe for
// the parallel sweep path.
func TestAllExperimentsDeterministicAndParallelSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep")
	}
	for _, id := range Experiments() {
		t.Run(id, func(t *testing.T) {
			p := Params{Tasks: 48, SMMs: 4, Seed: 1, Parallel: 1}
			run := func(p Params) []byte {
				rep, err := Run(id, p)
				if err != nil {
					t.Fatal(err)
				}
				return renderAll(t, rep)
			}
			seq1 := run(p)
			seq2 := run(p)
			p.Parallel = 4
			par := run(p)
			if !bytes.Equal(seq1, seq2) {
				t.Errorf("%s: double sequential run differs (state leaks between runs)", id)
			}
			if !bytes.Equal(seq1, par) {
				t.Errorf("%s: parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					id, seq1, par)
			}
		})
	}
}
