package harness

import (
	"fmt"

	"repro/internal/hostcpu"
	"repro/internal/workloads"
)

// CPUSchemes regenerates the paper's §6.2 CPU baseline selection: "we
// implemented OpenMP with data parallelism, OS-based task scheduling,
// Python-based thread pooling, and PThreads-based task parallelism.
// PThreads obtained the best results."
func CPUSchemes(p Params) *Report {
	p = p.fill()
	r := newReport("cpuschemes", fmt.Sprintf("CPU execution schemes (%d tasks; ms; lower is better)", p.Tasks),
		"Benchmark", "OpenMP", "OS-sched", "Python-pool", "PThreads", "Best")
	for _, name := range []string{"MB", "CONV", "MM", "3DES"} {
		b, _ := workloads.ByName(name)
		mk := func() []hostcpu.Task {
			defs := b.Make(workloads.Options{Tasks: p.Tasks, Threads: 128, Seed: p.Seed})
			tasks := make([]hostcpu.Task, len(defs))
			for i := range defs {
				tasks[i] = hostcpu.Task{Cycles: defs[i].CPUCycles}
			}
			return tasks
		}
		results := hostcpu.CompareCPUSchemes(hostcpu.Xeon20(), mk)
		cells := []string{name}
		best := results[0]
		for _, res := range results {
			cells = append(cells, ms(res.Elapsed))
			r.set(name+"/"+res.Scheme, res.Elapsed)
			if res.Elapsed < best.Elapsed {
				best = res
			}
		}
		cells = append(cells, best.Scheme)
		r.addRow(cells...)
	}
	r.note("paper: PThreads obtained the best results (it is the Fig. 5 CPU baseline)")
	return r
}
