package harness

import (
	"fmt"

	"repro/internal/hostcpu"
	"repro/internal/workloads"
)

// CPUSchemes regenerates the paper's §6.2 CPU baseline selection: "we
// implemented OpenMP with data parallelism, OS-based task scheduling,
// Python-based thread pooling, and PThreads-based task parallelism.
// PThreads obtained the best results."
func CPUSchemes(p Params) *Report {
	p = p.fill()
	r := newReport("cpuschemes", fmt.Sprintf("CPU execution schemes (%d tasks; ms; lower is better)", p.Tasks),
		"Benchmark", "OpenMP", "OS-sched", "Python-pool", "PThreads", "Best")
	// The bake-off compares several CPU schemes internally, so each benchmark
	// is one cell (via the sweep's escape hatch) rather than one cell per
	// scheme.
	names := []string{"MB", "CONV", "MM", "3DES"}
	s := newSweep(p)
	results := make([][]hostcpu.SchemeResult, len(names))
	for i, name := range names {
		b, _ := workloads.ByName(name)
		mk := func() []hostcpu.Task {
			defs := b.Make(workloads.Options{Tasks: p.Tasks, Threads: 128, Seed: p.Seed})
			tasks := make([]hostcpu.Task, len(defs))
			for j := range defs {
				tasks[j] = hostcpu.Task{Cycles: defs[j].CPUCycles}
			}
			return tasks
		}
		s.add(func() { results[i] = hostcpu.CompareCPUSchemes(hostcpu.Xeon20(), mk) })
	}
	s.run()

	for i, name := range names {
		cells := []string{name}
		best := results[i][0]
		for _, res := range results[i] {
			cells = append(cells, ms(res.Elapsed))
			r.set(name+"/"+res.Scheme, res.Elapsed)
			if res.Elapsed < best.Elapsed {
				best = res
			}
		}
		cells = append(cells, best.Scheme)
		r.addRow(cells...)
	}
	r.note("paper: PThreads obtained the best results (it is the Fig. 5 CPU baseline)")
	return r
}
