package harness

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestClusterScalingShape(t *testing.T) {
	p := tinyParams()
	r := ClusterScaling(p)
	wantRows := len(p.gpuSchemes()) * 4 // node counts 1, 2, 4, 8
	if len(r.Rows) != wantRows {
		t.Fatalf("cluster_scaling rows = %d, want %d", len(r.Rows), wantRows)
	}
	if r.Seed != p.Seed {
		t.Errorf("Seed = %d, want %d", r.Seed, p.Seed)
	}
	for _, sc := range p.gpuSchemes() {
		for _, nodes := range []int{1, 2, 4, 8} {
			key := fmt.Sprintf("%s/%d", sc.Key, nodes)
			for _, suffix := range []string{"/max-rate", "/max-rate-node", "/imbalance"} {
				if _, ok := r.Lookup(key + suffix); !ok {
					t.Errorf("missing value %s%s", key, suffix)
				}
			}
			if imb := r.Get(key + "/imbalance"); imb < 1 {
				t.Errorf("%s imbalance %v < 1 (max share cannot undercut the mean)", key, imb)
			}
		}
	}
}

func TestClusterPolicyShape(t *testing.T) {
	p := tinyParams()
	r := ClusterPolicy(p)
	wantRows := 2 * len(cluster.PolicyNames()) * len(p.gpuSchemes())
	if len(r.Rows) != wantRows {
		t.Fatalf("cluster_policy rows = %d, want %d", len(r.Rows), wantRows)
	}
	if r.Seed != p.Seed {
		t.Errorf("Seed = %d, want %d", r.Seed, p.Seed)
	}
	for _, arr := range []string{"poisson", "bursty"} {
		for _, pname := range cluster.PolicyNames() {
			for _, sc := range p.gpuSchemes() {
				key := fmt.Sprintf("%s/%s/%s", sc.Key, pname, arr)
				for _, suffix := range []string{"/p99us", "/goodput", "/drops", "/imbalance"} {
					if _, ok := r.Lookup(key + suffix); !ok {
						t.Errorf("missing value %s%s", key, suffix)
					}
				}
			}
		}
	}
	// Round-robin on a uniform stream splits the fleet evenly by construction.
	for _, sc := range p.gpuSchemes() {
		if imb := r.Get(sc.Key + "/rr/poisson/imbalance"); imb > 1.1 {
			t.Errorf("%s rr imbalance %v, want ~1.0", sc.Key, imb)
		}
	}
}

func TestClusterExperimentsRegistered(t *testing.T) {
	ids := strings.Join(Experiments(), " ")
	for _, want := range []string{"cluster_scaling", "cluster_policy"} {
		if !strings.Contains(ids, want) {
			t.Errorf("Experiments() missing %s", want)
		}
	}
}

func TestMakeMixedTasksInterleaves(t *testing.T) {
	const n = 10
	tasks := makeMixedTasks(n, 1)
	if len(tasks) != n {
		t.Fatalf("got %d tasks, want %d", len(tasks), n)
	}
	// Classes cycle through the bench list; spot-check thread widths exist.
	for i, td := range tasks {
		if td.Threads <= 0 {
			t.Errorf("task %d (class %d) has no threads", i, i%len(clusterClassBenches))
		}
	}
}
