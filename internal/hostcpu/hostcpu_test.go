package hostcpu

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestPoolParallelism(t *testing.T) {
	eng := sim.New()
	cfg := Config{Cores: 4, FreqGHz: 1, DispatchCost: 0}
	pool := NewPool(eng, cfg)
	eng.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			pool.Submit(p, Task{Cycles: 100})
		}
		pool.WaitAll(p)
	})
	end := eng.Run()
	// 8 tasks of 100 cycles on 4 cores at 1 GHz: two waves = 200 ns.
	if math.Abs(end-200) > 1e-6 {
		t.Fatalf("end = %v, want 200", end)
	}
	if pool.TasksRun != 8 {
		t.Errorf("TasksRun = %d, want 8", pool.TasksRun)
	}
}

func TestFrequencyScaling(t *testing.T) {
	eng := sim.New()
	pool := NewPool(eng, Config{Cores: 1, FreqGHz: 2.6, DispatchCost: 0})
	eng.Spawn("host", func(p *sim.Proc) {
		pool.Submit(p, Task{Cycles: 2600})
		pool.WaitAll(p)
	})
	end := eng.Run()
	if math.Abs(end-1000) > 1e-6 {
		t.Fatalf("2600 cycles at 2.6GHz = %v ns, want 1000", end)
	}
}

func TestTaskFnRuns(t *testing.T) {
	eng := sim.New()
	pool := NewPool(eng, Xeon20())
	sum := 0
	eng.Spawn("host", func(p *sim.Proc) {
		for i := 1; i <= 5; i++ {
			i := i
			pool.Submit(p, Task{Cycles: 10, Fn: func() { sum += i }})
		}
		pool.WaitAll(p)
	})
	eng.Run()
	if sum != 15 {
		t.Fatalf("sum = %d, want 15", sum)
	}
}

func TestLoadImbalance(t *testing.T) {
	// One long task dominates: makespan = long task, not average.
	eng := sim.New()
	pool := NewPool(eng, Config{Cores: 2, FreqGHz: 1, DispatchCost: 0})
	eng.Spawn("host", func(p *sim.Proc) {
		pool.Submit(p, Task{Cycles: 1000})
		for i := 0; i < 10; i++ {
			pool.Submit(p, Task{Cycles: 10})
		}
		pool.WaitAll(p)
	})
	end := eng.Run()
	if end < 1000 || end > 1100 {
		t.Fatalf("makespan = %v, want ~1000 (long task bound)", end)
	}
}

func TestSequentialTime(t *testing.T) {
	tasks := []Task{{Cycles: 100}, {Cycles: 200}, {Cycles: 300}}
	got := SequentialTime(Config{Cores: 20, FreqGHz: 2}, tasks)
	if math.Abs(got-300) > 1e-9 {
		t.Fatalf("SequentialTime = %v, want 300", got)
	}
}

func TestDispatchCostCharged(t *testing.T) {
	eng := sim.New()
	pool := NewPool(eng, Config{Cores: 1, FreqGHz: 1, DispatchCost: 50})
	var submitted sim.Time
	eng.Spawn("host", func(p *sim.Proc) {
		pool.Submit(p, Task{Cycles: 0})
		submitted = eng.Now()
		pool.WaitAll(p)
	})
	eng.Run()
	if submitted != 50 {
		t.Fatalf("submit returned at %v, want 50 (dispatch cost)", submitted)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(sim.New(), Config{Cores: 0, FreqGHz: 1})
}
