// Package hostcpu models the paper's CPU baseline platform: two
// hyper-threaded Intel Xeon E5-2660 sockets, 20 physical cores at 2.6 GHz,
// running a PThreads-style task pool.
//
// Simulated time is measured in GPU cycles (1 cycle = 1 ns); a task that
// costs N CPU cycles occupies one core for N/FreqGHz nanoseconds.
package hostcpu

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes the host CPU.
type Config struct {
	Cores   int     // physical cores used by the pool
	FreqGHz float64 // core frequency
	// DispatchCost is the per-task pool overhead (enqueue + wakeup), in ns.
	DispatchCost sim.Time
}

// Xeon20 returns the paper's 20-core dual-socket configuration.
func Xeon20() Config {
	return Config{Cores: 20, FreqGHz: 2.6, DispatchCost: 900}
}

// Task is one unit of CPU work.
type Task struct {
	// Cycles is the task's cost in CPU cycles on one core.
	Cycles float64
	// Fn optionally performs the task's real computation (host-side, zero
	// simulated cost beyond Cycles).
	Fn func()
}

// Pool is a PThreads-style fixed worker pool.
type Pool struct {
	eng      *sim.Engine
	cfg      Config
	queue    []Task
	notEmpty sim.Signal
	pending  int // queued + running tasks
	idle     sim.Signal

	// TasksRun counts completed tasks.
	TasksRun int
}

// NewPool starts `cfg.Cores` worker processes.
func NewPool(eng *sim.Engine, cfg Config) *Pool {
	if cfg.Cores <= 0 || cfg.FreqGHz <= 0 {
		panic("hostcpu: invalid config")
	}
	p := &Pool{eng: eng, cfg: cfg}
	for i := 0; i < cfg.Cores; i++ {
		eng.Spawn(fmt.Sprintf("cpu-core%d", i), p.worker)
	}
	return p
}

// Config returns the pool's CPU description.
func (p *Pool) Config() Config { return p.cfg }

func (p *Pool) worker(proc *sim.Proc) {
	for {
		for len(p.queue) == 0 {
			p.notEmpty.Wait(proc)
		}
		t := p.queue[0]
		p.queue = p.queue[1:]
		if t.Fn != nil {
			t.Fn()
		}
		proc.Sleep(t.Cycles / p.cfg.FreqGHz)
		p.TasksRun++
		p.pending--
		if p.pending == 0 {
			p.idle.Broadcast()
		}
	}
}

// Submit enqueues a task from the given host process, charging dispatch
// overhead to the submitter.
func (p *Pool) Submit(host *sim.Proc, t Task) {
	host.Sleep(p.cfg.DispatchCost)
	p.queue = append(p.queue, t)
	p.pending++
	p.notEmpty.Broadcast()
}

// SubmitBulk enqueues many tasks with a single dispatch charge per task but
// without yielding between them beyond the dispatch sleeps.
func (p *Pool) SubmitBulk(host *sim.Proc, tasks []Task) {
	for _, t := range tasks {
		p.Submit(host, t)
	}
}

// WaitAll parks the host until every submitted task has completed.
func (p *Pool) WaitAll(host *sim.Proc) {
	for p.pending > 0 {
		p.idle.Wait(host)
	}
}

// Pending returns queued + running task count.
func (p *Pool) Pending() int { return p.pending }

// SequentialTime returns the time the task set would take on one core with
// no pool overhead — the sequential baseline for speedup computations.
func SequentialTime(cfg Config, tasks []Task) sim.Time {
	var total float64
	for _, t := range tasks {
		total += t.Cycles
	}
	return total / cfg.FreqGHz
}
