package hostcpu

import "testing"

// narrowTasks builds a paper-like narrow task stream: thousands of tasks of
// tens of microseconds each.
func narrowTasks(n int) []Task {
	out := make([]Task, n)
	for i := range out {
		out[i] = Task{Cycles: float64(40_000 + (i%7)*9_000)} // 15-35 us at 2.6 GHz
	}
	return out
}

func TestPThreadsWinsTheCPUBakeOff(t *testing.T) {
	// §6.2: "PThreads obtained the best results" — the property the paper
	// used to select its CPU baseline.
	results := CompareCPUSchemes(Xeon20(), func() []Task { return narrowTasks(2000) })
	if len(results) != 4 {
		t.Fatalf("got %d schemes, want 4", len(results))
	}
	var pthreads, best SchemeResult
	best.Elapsed = -1
	for _, r := range results {
		if r.Elapsed <= 0 {
			t.Fatalf("%s produced no time", r.Scheme)
		}
		if r.Scheme == "PThreads" {
			pthreads = r
		}
		if best.Elapsed < 0 || r.Elapsed < best.Elapsed {
			best = r
		}
	}
	if best.Scheme != "PThreads" {
		t.Fatalf("best CPU scheme = %s (%v); paper says PThreads (%v)",
			best.Scheme, best.Elapsed, pthreads.Elapsed)
	}
}

func TestPythonPoolSerializedByGIL(t *testing.T) {
	// The GIL model must make the Python pool far slower than PThreads.
	results := CompareCPUSchemes(Xeon20(), func() []Task { return narrowTasks(500) })
	byName := map[string]SchemeResult{}
	for _, r := range results {
		byName[r.Scheme] = r
	}
	if byName["Python-pool"].Elapsed < byName["PThreads"].Elapsed*5 {
		t.Fatalf("Python pool (%v) should be many times slower than PThreads (%v)",
			byName["Python-pool"].Elapsed, byName["PThreads"].Elapsed)
	}
}

func TestOSSchedDispatchBound(t *testing.T) {
	// With tiny tasks, OS-level dispatch dominates and loses to the pool.
	tiny := make([]Task, 1000)
	for i := range tiny {
		tiny[i] = Task{Cycles: 5000} // ~2 us of work each
	}
	results := CompareCPUSchemes(Xeon20(), func() []Task {
		out := make([]Task, len(tiny))
		copy(out, tiny)
		return out
	})
	byName := map[string]SchemeResult{}
	for _, r := range results {
		byName[r.Scheme] = r
	}
	if byName["OS-sched"].Elapsed < byName["PThreads"].Elapsed*2 {
		t.Fatalf("OS scheduling (%v) should trail PThreads (%v) on tiny tasks",
			byName["OS-sched"].Elapsed, byName["PThreads"].Elapsed)
	}
}

func TestOpenMPBarrierBound(t *testing.T) {
	// Fork-join per narrow task: the barrier dominates per-task time.
	results := CompareCPUSchemes(Xeon20(), func() []Task { return narrowTasks(500) })
	byName := map[string]SchemeResult{}
	for _, r := range results {
		byName[r.Scheme] = r
	}
	if byName["OpenMP"].Elapsed <= byName["PThreads"].Elapsed {
		t.Fatalf("OpenMP data parallelism (%v) should trail PThreads task parallelism (%v) on narrow tasks",
			byName["OpenMP"].Elapsed, byName["PThreads"].Elapsed)
	}
}
