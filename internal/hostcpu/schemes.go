package hostcpu

import (
	"fmt"

	"repro/internal/sim"
)

// The paper evaluated four CPU execution schemes before picking its baseline
// ("we implemented OpenMP with data parallelism, OS-based task scheduling,
// Python-based thread pooling, and PThreads-based task parallelism. PThreads
// obtained the best results", §6.2). This file models the three rejected
// schemes so that comparison is reproducible.

// SchemeResult is one CPU scheme's makespan for a task set.
type SchemeResult struct {
	Scheme  string
	Elapsed sim.Time
}

// openMPConfig models fork-join data parallelism: every task is spread over
// all cores, paying a fork-join barrier per task. Narrow tasks parallelize
// poorly this way — per-task work / cores is small next to the barrier.
type openMPConfig struct {
	Config
	ForkJoinCost sim.Time // per-task team fork + barrier join
	// Efficiency < 1: cache-line sharing and uneven chunking inside one
	// small task.
	Efficiency float64
}

// RunOpenMP executes each task as a data-parallel loop over the cores.
func RunOpenMP(eng *sim.Engine, cfg Config, tasks []Task) SchemeResult {
	oc := openMPConfig{Config: cfg, ForkJoinCost: 2600, Efficiency: 0.75}
	var end sim.Time
	eng.Spawn("omp-host", func(p *sim.Proc) {
		for i := range tasks {
			t := &tasks[i]
			if t.Fn != nil {
				t.Fn()
			}
			per := t.Cycles / (float64(oc.Cores) * oc.Efficiency)
			p.Sleep(oc.ForkJoinCost + per/oc.FreqGHz)
		}
		end = eng.Now()
	})
	eng.Run()
	return SchemeResult{Scheme: "OpenMP", Elapsed: end}
}

// RunOSSched models scheduling each task as a short-lived OS thread/process:
// full parallelism, but kernel-level dispatch costs (thread creation,
// context switches) per task dwarf the pool's.
func RunOSSched(eng *sim.Engine, cfg Config, tasks []Task) SchemeResult {
	osCfg := cfg
	osCfg.DispatchCost = 12_000 // ~12 us: clone + schedule + reap
	pool := NewPool(eng, osCfg)
	var end sim.Time
	eng.Spawn("os-host", func(p *sim.Proc) {
		for i := range tasks {
			pool.Submit(p, tasks[i])
		}
		pool.WaitAll(p)
		end = eng.Now()
	})
	eng.Run()
	return SchemeResult{Scheme: "OS-sched", Elapsed: end}
}

// RunPythonPool models a CPython thread pool: cheap dispatch, but the GIL
// serializes execution — only a small fraction of each task (native
// extensions releasing the lock) overlaps.
func RunPythonPool(eng *sim.Engine, cfg Config, tasks []Task) SchemeResult {
	const (
		interpreterOverhead = 8.0  // interpreted-loop slowdown on task cycles
		parallelFraction    = 0.15 // work done outside the GIL
	)
	var end sim.Time
	eng.Spawn("py-host", func(p *sim.Proc) {
		var serial, parallel float64
		for i := range tasks {
			t := &tasks[i]
			if t.Fn != nil {
				t.Fn()
			}
			cyc := t.Cycles * interpreterOverhead
			serial += cyc * (1 - parallelFraction)
			parallel += cyc * parallelFraction
		}
		p.Sleep((serial + parallel/float64(cfg.Cores)) / cfg.FreqGHz)
		end = eng.Now()
	})
	eng.Run()
	return SchemeResult{Scheme: "Python-pool", Elapsed: end}
}

// RunPThreadsScheme wraps the Pool baseline in the same result shape.
func RunPThreadsScheme(eng *sim.Engine, cfg Config, tasks []Task) SchemeResult {
	pool := NewPool(eng, cfg)
	var end sim.Time
	eng.Spawn("pt-host", func(p *sim.Proc) {
		for i := range tasks {
			pool.Submit(p, tasks[i])
		}
		pool.WaitAll(p)
		end = eng.Now()
	})
	eng.Run()
	return SchemeResult{Scheme: "PThreads", Elapsed: end}
}

// CompareCPUSchemes runs a task set under all four CPU schemes (each on a
// fresh engine) and returns the results in the paper's order. The caller
// passes a generator so each scheme gets an identical, independent task set.
func CompareCPUSchemes(cfg Config, mkTasks func() []Task) []SchemeResult {
	runs := []func(*sim.Engine, Config, []Task) SchemeResult{
		RunOpenMP, RunOSSched, RunPythonPool, RunPThreadsScheme,
	}
	out := make([]SchemeResult, 0, len(runs))
	for _, run := range runs {
		out = append(out, run(sim.New(), cfg, mkTasks()))
	}
	return out
}

func (r SchemeResult) String() string {
	return fmt.Sprintf("%s: %.2f ms", r.Scheme, r.Elapsed/1e6)
}
