package runners

import (
	"testing"

	"repro/internal/workloads"
)

// TestDeterminismGolden pins the final virtual times of a small fig5/fig6
// matrix to exact bit patterns (hex float literals). The simulation is
// specified to be deterministic (DESIGN.md decision #1): same seed, same
// config, same binary => byte-identical results. Any engine change that
// shifts event ordering — heap arity, timer re-keying, baton handoff — must
// keep these values bit-for-bit; a legitimate *model* change that moves them
// needs these constants re-captured and the shift explained in the PR.
func TestDeterminismGolden(t *testing.T) {
	cfg := DefaultConfig()

	type runnerFn func([]workloads.TaskDef, Config) Result
	runAll := func(name string, tasks int, want map[string]float64, fns map[string]runnerFn) {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatalf("workload %q: %v", name, err)
		}
		opt := workloads.Options{Tasks: tasks, Threads: 128, Seed: 1, UseShared: b.SupportsShared}
		for sys, fn := range fns {
			wantV, pinned := want[sys]
			if !pinned {
				continue
			}
			got := float64(fn(b.Make(opt), cfg).Elapsed)
			if got != wantV {
				t.Errorf("%s/%s tasks=%d: Elapsed = %x (%v), want %x (%v)",
					name, sys, tasks, got, got, wantV, wantV)
			}
		}
	}

	all := map[string]runnerFn{
		"pagoda":   RunPagoda,
		"hyperq":   RunHyperQ,
		"gemtc":    RunGeMTC,
		"pthreads": RunPThreads,
	}
	pgHq := map[string]runnerFn{"pagoda": RunPagoda, "hyperq": RunHyperQ}

	// fig5-style: 128 tasks across all four systems.
	runAll("MB", 128, map[string]float64{
		"pagoda":   0x1.df8d111111111p+18,
		"hyperq":   0x1.12669b4c1aaf2p+19,
		"gemtc":    0x1.92735fa6f984ep+19,
		"pthreads": 0x1.2dca827627628p+22,
	}, all)
	runAll("DCT", 128, map[string]float64{
		"pagoda":   0x1.97eb191919191p+19,
		"hyperq":   0x1.b1a862cace8adp+19,
		"gemtc":    0x1.762fp+20,
		"pthreads": 0x1.c7d2c4ec4ec5p+19,
	}, all)
	runAll("3DES", 128, map[string]float64{
		"pagoda":   0x1.4377196053ddp+18,
		"hyperq":   0x1.2487e8c348d6cp+18,
		"gemtc":    0x1.17bbbd8216a78p+19,
		"pthreads": 0x1.cea3189d89d8ap+21,
	}, all)

	// fig6-style weak scaling: Pagoda vs HyperQ at two task counts.
	runAll("MB", 64, map[string]float64{
		"pagoda": 0x1.2ab841041041p+18,
		"hyperq": 0x1.4a6b580f13e29p+18,
	}, pgHq)
	runAll("CONV", 64, map[string]float64{
		"pagoda": 0x1.f9beep+18,
		"hyperq": 0x1.eb7d378d66156p+18,
	}, pgHq)
	runAll("MB", 256, map[string]float64{
		"pagoda": 0x1.a8ec000000005p+19,
		"hyperq": 0x1.e7ac80ccdb7fp+19,
	}, pgHq)
	runAll("CONV", 256, map[string]float64{
		"pagoda": 0x1.8d0b355555555p+20,
		"hyperq": 0x1.94da41b77bd08p+20,
	}, pgHq)
}
