package runners

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// RunHyperQ executes each task as its own CUDA kernel over 32 streams, the
// paper's CUDA-HyperQ baseline (CUDA_DEVICE_MAX_CONNECTIONS=32). Each task's
// stream carries its input copy, kernel and output copy; kernels from
// different streams overlap up to the HyperQ connection limit, but the
// hardware schedules at threadblock granularity and a narrow task's kernel
// occupies very little of the device.
func RunHyperQ(tasks []workloads.TaskDef, cfg Config) Result {
	return runKernelPerTask(tasks, cfg, gpu.Oversub{})
}

// runKernelPerTask is the shared kernel-per-task closed-loop engine: HyperQ
// runs it on the static device (zero Oversub), zorua on a virtualized one —
// the two schemes differ only in how the device admits threadblocks.
func runKernelPerTask(tasks []workloads.TaskDef, cfg Config, ov gpu.Oversub) Result {
	sys := newSystem(cfg)
	if ov.Enabled() {
		sys.dev.Virtualize(ov)
	}
	const numStreams = 32
	streams := make([]*cuda.Stream, numStreams)
	for i := range streams {
		streams[i] = sys.ctx.NewStream()
	}

	spawners := cfg.Spawners
	if spawners <= 0 {
		spawners = 1
	}
	parts := splitRoundRobin(tasks, spawners)

	lats := make([]sim.Time, 0, len(tasks))
	finishedSpawners := 0
	var endTime sim.Time

	for s := 0; s < spawners; s++ {
		s := s
		sys.eng.Spawn(fmt.Sprintf("hq-host%d", s), func(p *sim.Proc) {
			var handles []*cuda.KernelHandle
			var spawnTimes []sim.Time
			var outs []int
			for _, ti := range parts[s] {
				td := &tasks[ti]
				stream := streams[ti%numStreams]
				spawnTimes = append(spawnTimes, sys.eng.Now())
				if cfg.CopyData && td.InBytes > 0 {
					stream.MemcpyH2D(p, td.InBytes, nil)
				}
				h := stream.Launch(p, hyperqSpec(td))
				if cfg.CopyData && td.OutBytes > 0 {
					stream.MemcpyD2H(p, td.OutBytes, nil)
					outs = append(outs, td.OutBytes)
				}
				handles = append(handles, h)
			}
			for i, h := range handles {
				h.Wait(p)
				lats = append(lats, sys.eng.Now()-spawnTimes[i])
			}
			for _, st := range streams {
				st.Sync(p)
			}
			finishedSpawners++
			if finishedSpawners == spawners {
				endTime = sys.eng.Now()
			}
		})
	}
	sys.eng.Run()

	m := sys.dev.Metrics()
	r := Result{
		Elapsed:   endTime,
		Occupancy: m.AvgOccupancy,
		IssueUtil: m.IssueUtil,
		Tasks:     len(lats),
	}
	r.fillLatencies(lats)
	return r
}

// hyperqSpec builds the per-task kernel launch.
func hyperqSpec(td *workloads.TaskDef) gpu.LaunchSpec {
	var sharedPerTB [][]byte
	if td.SharedMem > 0 {
		sharedPerTB = make([][]byte, td.Blocks)
		for b := range sharedPerTB {
			sharedPerTB[b] = make([]byte, td.SharedMem)
		}
	}
	regs := td.Regs
	if regs <= 0 {
		regs = 32
	}
	return gpu.LaunchSpec{
		Name:          "hq-" + td.Name,
		GridDim:       td.Blocks,
		BlockThreads:  td.Threads,
		SharedPerTB:   td.SharedMem,
		RegsPerThread: regs,
		Fn: func(c *gpu.Ctx) {
			var shared []byte
			if sharedPerTB != nil {
				shared = sharedPerTB[c.BlockIdx]
			}
			td.Kernel(&warpAdapter{
				g:        c,
				threads:  td.Threads,
				blocks:   td.Blocks,
				blockIdx: c.BlockIdx,
				warpInBl: c.WarpInBlock,
				shared:   shared,
			})
		},
	}
}
