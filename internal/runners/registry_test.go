package runners

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/serve"
	"repro/internal/workloads"
)

// TestSchemeRegistryComplete pins the registry's shape: the expected keys in
// canonical order, unique, each with display name and all three entry points.
// Growing the registry without filling the full surface fails here, and every
// cross-scheme gate (olRunners, clusterBackends, TestDoubleRunResultsIdentical,
// TestVerificationMatrix) iterates Schemes() directly, so a registered scheme
// cannot be missing from any gate.
func TestSchemeRegistryComplete(t *testing.T) {
	want := []string{"hyperq", "gemtc", "pagoda", "zorua"}
	ss := Schemes()
	if len(ss) != len(want) {
		t.Fatalf("registry has %d schemes, want %d: %v", len(ss), len(want), SchemeKeys())
	}
	seen := map[string]bool{}
	for i, s := range ss {
		if s.Key != want[i] {
			t.Errorf("scheme %d key = %q, want %q", i, s.Key, want[i])
		}
		if seen[s.Key] {
			t.Errorf("duplicate scheme key %q", s.Key)
		}
		seen[s.Key] = true
		if s.Display == "" {
			t.Errorf("scheme %q has no display name", s.Key)
		}
		if s.Run == nil || s.RunOpenLoop == nil || s.RunCluster == nil {
			t.Errorf("scheme %q is missing an entry point (closed %v, open %v, cluster %v)",
				s.Key, s.Run != nil, s.RunOpenLoop != nil, s.RunCluster != nil)
		}
	}
	if got, ok := SchemeByKey("pagoda"); !ok || got.Display != "Pagoda" {
		t.Errorf("SchemeByKey(pagoda) = %+v, %v", got, ok)
	}
	if _, ok := SchemeByKey("bogus"); ok {
		t.Error("SchemeByKey(bogus) resolved")
	}
}

// TestGateListsCoverEveryScheme asserts the cross-scheme gate helpers expose
// exactly the registered schemes, in order — the belt-and-suspenders form of
// the derivation the helpers do themselves.
func TestGateListsCoverEveryScheme(t *testing.T) {
	keys := SchemeKeys()
	ol := olRunners()
	cb := clusterBackends()
	if len(ol) != len(keys) || len(cb) != len(keys) {
		t.Fatalf("gate lists cover %d/%d schemes, registry has %d", len(ol), len(cb), len(keys))
	}
	for i, key := range keys {
		if ol[i].name != key {
			t.Errorf("olRunners[%d] = %q, want %q", i, ol[i].name, key)
		}
		if cb[i].key != key {
			t.Errorf("clusterBackends[%d] = %q, want %q", i, cb[i].key, key)
		}
	}
}

// TestZoruaAtUnityMatchesHyperQ pins the reduction property end to end: with
// explicit unity oversubscription factors the zorua scheme is bit-for-bit
// the HyperQ baseline — same host path, same (physical) admission.
func TestZoruaAtUnityMatchesHyperQ(t *testing.T) {
	b, err := workloads.ByName("MB")
	if err != nil {
		t.Fatal(err)
	}
	tasks := b.Make(workloads.Options{Tasks: 48, Threads: 128, Seed: 1})
	cfg := DefaultConfig()
	cfg.SMMs = 4

	unity := cfg
	unity.Oversub = gpu.UniformOversub(1.0)
	if rz, rh := RunZorua(tasks, unity), RunHyperQ(tasks, cfg); rz != rh {
		t.Errorf("closed loop diverged at unity:\n zorua  %+v\n hyperq %+v", rz, rh)
	}

	arr := serve.Poisson{Rate: 128e3, Seed: 2}.Times(len(tasks))
	rz, zrecs := RunZoruaOpenLoop(tasks, OpenLoop{Arrivals: arr}, unity)
	rh, hrecs := RunHyperQOpenLoop(tasks, OpenLoop{Arrivals: arr}, cfg)
	if rz != rh {
		t.Errorf("open loop diverged at unity:\n zorua  %+v\n hyperq %+v", rz, rh)
	}
	for i := range zrecs {
		if zrecs[i] != hrecs[i] {
			t.Fatalf("open-loop record %d diverged: %+v vs %+v", i, zrecs[i], hrecs[i])
		}
	}
}

// TestZoruaOversubChangesOutcome is the converse guard: at the scheme's
// default oversubscription a shared-memory-heavy workload must not produce
// the HyperQ result bit-for-bit — the virtualized device really admits
// differently.
func TestZoruaOversubChangesOutcome(t *testing.T) {
	b, err := workloads.ByName("MB")
	if err != nil {
		t.Fatal(err)
	}
	tasks := b.Make(workloads.Options{Tasks: 64, Threads: 64, Seed: 1})
	// Make the tasks shared-memory-bound on a small device (4 TBs per SMM
	// physically): oversubscription then has real headroom to admit past
	// physical capacity.
	for i := range tasks {
		tasks[i].SharedMem = 24 * 1024
	}
	cfg := DefaultConfig()
	cfg.SMMs = 2
	rz := RunZorua(tasks, cfg)
	rh := RunHyperQ(tasks, cfg)
	if rz == rh {
		t.Errorf("default-oversub zorua == hyperq on a shared-heavy workload: %+v", rz)
	}
	if rz.Tasks != len(tasks) || rh.Tasks != len(tasks) {
		t.Errorf("incomplete runs: zorua %d, hyperq %d of %d", rz.Tasks, rh.Tasks, len(tasks))
	}
}
