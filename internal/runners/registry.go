package runners

import (
	"repro/internal/serve"
	"repro/internal/workloads"
)

// Scheme is one GPU execution scheme's complete entry-point surface: the
// closed-loop, open-loop and cluster runners under one stable key. The
// registry is the single source of truth the harness tables, the CLI's
// -scheme filter, the perf baselines and the cross-scheme test gates
// (determinism, conservation, 1-node golden) all derive from — a scheme
// registered here inherits every gate and every report column without
// further wiring.
type Scheme struct {
	Key     string // stable id: flags, Values keys, perf metric names
	Display string // table cell / report name

	Run         func([]workloads.TaskDef, Config) Result
	RunOpenLoop func([]workloads.TaskDef, OpenLoop, Config) (Result, []serve.Record)
	RunCluster  func([]workloads.TaskDef, ClusterOpenLoop, Config) (Result, ClusterRun)
}

// Schemes returns the GPU scheme registry in canonical report order. Only
// GPU schemes appear: the CPU baselines (PThreads, sequential) have no
// open-loop or fleet form to register.
func Schemes() []Scheme {
	return []Scheme{
		{"hyperq", "CUDA-HyperQ", RunHyperQ, RunHyperQOpenLoop, RunHyperQCluster},
		{"gemtc", "GeMTC", RunGeMTC, RunGeMTCOpenLoop, RunGeMTCCluster},
		{"pagoda", "Pagoda", RunPagoda, RunPagodaOpenLoop, RunPagodaCluster},
		{"zorua", "Zorua", RunZorua, RunZoruaOpenLoop, RunZoruaCluster},
	}
}

// SchemeKeys returns the registered keys in canonical order.
func SchemeKeys() []string {
	ss := Schemes()
	keys := make([]string, len(ss))
	for i, s := range ss {
		keys[i] = s.Key
	}
	return keys
}

// SchemeByKey looks a scheme up by its stable key.
func SchemeByKey(key string) (Scheme, bool) {
	for _, s := range Schemes() {
		if s.Key == key {
			return s, true
		}
	}
	return Scheme{}, false
}
