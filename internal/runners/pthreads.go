package runners

import (
	"repro/internal/hostcpu"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// RunPThreads executes the task stream on the simulated 20-core CPU with a
// PThreads-style worker pool — the paper's best-performing CPU scheme
// ("PThreads obtained the best results"). No PCIe copies are involved.
func RunPThreads(tasks []workloads.TaskDef, cfg Config) Result {
	eng := sim.New()
	hcfg := hostcpu.Xeon20()
	if cfg.CPUCores > 0 {
		hcfg.Cores = cfg.CPUCores
	}
	pool := hostcpu.NewPool(eng, hcfg)

	var latSum float64
	var latMax sim.Time
	var endTime sim.Time
	eng.Spawn("pt-host", func(p *sim.Proc) {
		for i := range tasks {
			td := &tasks[i]
			pool.Submit(p, hostcpu.Task{
				Cycles: td.CPUCycles,
				Fn:     td.CPURun,
			})
		}
		pool.WaitAll(p)
		endTime = eng.Now()
		// Mean latency under a work-conserving pool is approximated as half
		// the makespan; the paper's latency figure (Fig. 10) compares only
		// Pagoda and static fusion, so this bound is never plotted.
		for range tasks {
			latSum += endTime / 2
			if endTime > latMax {
				latMax = endTime
			}
		}
	})
	eng.Run()

	r := Result{Elapsed: endTime, MaxLatency: latMax, Tasks: pool.TasksRun}
	if len(tasks) > 0 {
		r.AvgLatency = latSum / float64(len(tasks))
		// The half-makespan approximation has no tail information; report it
		// uniformly so percentile columns stay populated.
		r.P50Latency = r.AvgLatency
		r.P90Latency = r.AvgLatency
		r.P99Latency = r.AvgLatency
	}
	return r
}

// RunSequential executes the tasks one after another on a single core with
// no pool overhead — the base for the paper's speedup axis.
func RunSequential(tasks []workloads.TaskDef) Result {
	var total float64
	cfg := hostcpu.Xeon20()
	for i := range tasks {
		if tasks[i].CPURun != nil {
			tasks[i].CPURun()
		}
		total += tasks[i].CPUCycles
	}
	elapsed := total / cfg.FreqGHz
	return Result{
		Elapsed:    elapsed,
		AvgLatency: elapsed / 2,
		MaxLatency: elapsed,
		Tasks:      len(tasks),
	}
}
