package runners

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// clusterBackend pairs a single-device open-loop runner with its cluster
// generalization for the equivalence pin.
type clusterBackend struct {
	key     string
	single  func([]workloads.TaskDef, OpenLoop, Config) (Result, []serve.Record)
	cluster func([]workloads.TaskDef, ClusterOpenLoop, Config) (Result, ClusterRun)
}

// clusterBackends derives the gate list from the scheme registry, so a newly
// registered scheme is covered by every fleet gate automatically.
func clusterBackends() []clusterBackend {
	var out []clusterBackend
	for _, s := range Schemes() {
		out = append(out, clusterBackend{s.Key, s.RunOpenLoop, s.RunCluster})
	}
	return out
}

func clusterTestTasks(t *testing.T, n int) []workloads.TaskDef {
	t.Helper()
	b, err := workloads.ByName("MB")
	if err != nil {
		t.Fatalf("MB workload missing: %v", err)
	}
	return b.Make(workloads.Options{Tasks: n, Threads: 128, Seed: 1})
}

func clusterTestConfig() Config {
	cfg := DefaultConfig()
	cfg.SMMs = 4
	return cfg
}

// TestClusterOneNodeMatchesOpenLoop is the regression pin from the issue: a
// 1-node fleet under round-robin must reproduce the single-device open-loop
// records exactly — same Submit/Start/Done/Dropped per task — for every
// backend under every admission policy shape serve_latency sweeps.
func TestClusterOneNodeMatchesOpenLoop(t *testing.T) {
	const n = 96
	const rate = 256e3
	tasks := clusterTestTasks(t, n)
	cfg := clusterTestConfig()
	arrivals := serve.Poisson{Rate: rate, Seed: 1}.Times(n)

	admissions := []struct {
		name    string
		single  func() serve.Policy
		cluster func() func(sim.Time, int) bool
	}{
		{"unbounded", nil, nil},
		{"queue8",
			func() serve.Policy { return serve.BoundedQueue{Limit: 8} },
			func() func(sim.Time, int) bool { return serve.BoundedQueue{Limit: 8}.Admit }},
		{"token",
			func() serve.Policy { return serve.NewTokenBucket(rate/2, 4) },
			func() func(sim.Time, int) bool { return serve.NewTokenBucket(rate/2, 4).Admit }},
	}

	for _, be := range clusterBackends() {
		for _, ad := range admissions {
			t.Run(be.key+"/"+ad.name, func(t *testing.T) {
				ol := OpenLoop{Arrivals: arrivals}
				if ad.single != nil {
					ol.Admit = ad.single().Admit
				}
				sres, srecs := be.single(tasks, ol, cfg)

				co := ClusterOpenLoop{Arrivals: arrivals, Nodes: 1, Policy: cluster.NewRoundRobin()}
				if ad.cluster != nil {
					co.Admit = ad.cluster
				}
				cres, cr := be.cluster(tasks, co, cfg)

				if !reflect.DeepEqual(srecs, cr.Recs) {
					for i := range srecs {
						if srecs[i] != cr.Recs[i] {
							t.Fatalf("record %d diverged:\n single  %+v\n cluster %+v", i, srecs[i], cr.Recs[i])
						}
					}
					t.Fatal("records diverged")
				}
				if sres != cres {
					t.Errorf("results diverged:\n single  %+v\n cluster %+v", sres, cres)
				}
				if err := cr.CheckConservation(); err != nil {
					t.Errorf("conservation: %v", err)
				}
			})
		}
	}
}

// TestClusterConservationEveryPolicyBackend asserts the fleet-wide
// conservation invariant — submitted = done + dropped, per node and in total —
// for every routing policy crossed with every backend, under drop-inducing
// admission and bursty arrivals.
func TestClusterConservationEveryPolicyBackend(t *testing.T) {
	const n = 64
	const nodesN = 4
	tasks := clusterTestTasks(t, n)
	cfg := clusterTestConfig()
	arrivals := serve.Bursty{PeakRate: 1e6, Burst: 8, Gap: 50_000}.Times(n)
	classes := make([]int, n)
	for i := range classes {
		classes[i] = i % 5
	}

	for _, be := range clusterBackends() {
		for _, pname := range cluster.PolicyNames() {
			t.Run(be.key+"/"+pname, func(t *testing.T) {
				mk, err := cluster.NewPolicy(pname, 7)
				if err != nil {
					t.Fatal(err)
				}
				co := ClusterOpenLoop{
					Arrivals: arrivals,
					Classes:  classes,
					Nodes:    nodesN,
					Policy:   mk(),
					Admit:    func() func(sim.Time, int) bool { return serve.BoundedQueue{Limit: 4}.Admit },
				}
				_, cr := be.cluster(tasks, co, cfg)

				if err := cr.CheckConservation(); err != nil {
					t.Fatalf("conservation: %v", err)
				}
				for i, v := range cr.Views {
					if !v.Conserved() {
						t.Errorf("node %d not conserved: %+v", i, v)
					}
				}
				routed := make([]int, nodesN)
				for ti, nd := range cr.NodeOf {
					if nd < 0 || nd >= nodesN {
						t.Fatalf("task %d routed out of range: %d", ti, nd)
					}
					routed[nd]++
				}
				for i, v := range cr.Views {
					if routed[i] != v.Routed {
						t.Errorf("node %d: NodeOf says %d tasks, view says %d", i, routed[i], v.Routed)
					}
				}
				dropped := 0
				for _, r := range cr.Recs {
					if r.Dropped {
						dropped++
					}
				}
				if dropped == 0 {
					t.Error("queue4 admission under bursts produced no drops; conservation not exercised")
				}
			})
		}
	}
}

// TestClusterDeterministicRepeat runs the same seeded fleet twice and demands
// bit-identical records, routing, and per-node accounting — the fleet is one
// engine, one clock, zero host-order dependence.
func TestClusterDeterministicRepeat(t *testing.T) {
	const n = 64
	tasks := clusterTestTasks(t, n)
	cfg := clusterTestConfig()
	arrivals := serve.Poisson{Rate: 256e3, Seed: 5}.Times(n)

	for _, be := range clusterBackends() {
		t.Run(be.key, func(t *testing.T) {
			run := func() (Result, ClusterRun) {
				co := ClusterOpenLoop{Arrivals: arrivals, Nodes: 3, Policy: cluster.NewPowerOfTwo(9)}
				return be.cluster(tasks, co, cfg)
			}
			res1, cr1 := run()
			res2, cr2 := run()
			if res1 != res2 {
				t.Errorf("results diverged across identical runs:\n %+v\n %+v", res1, res2)
			}
			if !reflect.DeepEqual(cr1.Recs, cr2.Recs) {
				t.Error("records diverged across identical runs")
			}
			if !reflect.DeepEqual(cr1.NodeOf, cr2.NodeOf) {
				t.Error("routing diverged across identical runs")
			}
			if !reflect.DeepEqual(cr1.Views, cr2.Views) {
				t.Error("node views diverged across identical runs")
			}
		})
	}
}

// TestClusterSpreadsLoadAndCompletes checks the fleet actually behaves like a
// fleet: with round-robin over 4 nodes every node serves a share, everything
// completes under unbounded admission, and NodeRecords partitions the record
// set.
func TestClusterSpreadsLoadAndCompletes(t *testing.T) {
	const n = 64
	const nodesN = 4
	tasks := clusterTestTasks(t, n)
	cfg := clusterTestConfig()
	arrivals := serve.Poisson{Rate: 128e3, Seed: 2}.Times(n)

	for _, be := range clusterBackends() {
		t.Run(be.key, func(t *testing.T) {
			co := ClusterOpenLoop{Arrivals: arrivals, Nodes: nodesN, Policy: cluster.NewRoundRobin()}
			res, cr := be.cluster(tasks, co, cfg)

			if res.Tasks != n {
				t.Errorf("completed %d tasks, want %d", res.Tasks, n)
			}
			total := 0
			for i, v := range cr.Views {
				if v.Routed != n/nodesN {
					t.Errorf("node %d routed %d tasks, want %d", i, v.Routed, n/nodesN)
				}
				if v.Done != v.Routed {
					t.Errorf("node %d done %d of %d routed (unbounded admission)", i, v.Done, v.Routed)
				}
				nr := cr.NodeRecords(i)
				if len(nr) != v.Routed {
					t.Errorf("node %d: NodeRecords %d, view routed %d", i, len(nr), v.Routed)
				}
				total += len(nr)
			}
			if total != n {
				t.Errorf("NodeRecords cover %d tasks, want %d", total, n)
			}
			for ti, r := range cr.Recs {
				if r.Dropped {
					t.Errorf("task %d dropped under unbounded admission", ti)
				}
				if !(r.Submit <= r.Start && r.Start <= r.Done) {
					t.Errorf("task %d out of order: %+v", ti, r)
				}
			}
		})
	}
}
