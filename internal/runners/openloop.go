package runners

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// OpenLoop drives a scheme with timed arrivals instead of a pre-built batch:
// tasks[i] enters the system at Arrivals[i] virtual cycles whether or not
// the scheme is ready for it — the open-loop serving model, where offered
// load is an external fact and the system's only choices are to queue, serve
// or shed. Build Arrivals with a serve.Generator.
type OpenLoop struct {
	// Arrivals holds one nondecreasing virtual-cycle instant per task.
	Arrivals []sim.Time

	// Admit, when non-nil, is consulted at each arrival with the current
	// virtual time and the number of admitted-but-uncompleted tasks; a false
	// return drops the task (serve.Policy.Admit satisfies this signature).
	Admit func(now sim.Time, inFlight int) bool

	// AdmitTask, when non-nil, takes precedence over Admit and additionally
	// receives the task's index, so a class-aware layer (internal/tenancy)
	// can key the decision on which tenant the task belongs to. Runners call
	// it exactly once per task, at the same presentation point where Admit
	// would run; under Pagoda's multi-spawner host path calls are NOT
	// guaranteed to arrive in task-index order, only at nondecreasing
	// per-spawner instants — implementations must key on the index argument,
	// never on call order.
	AdmitTask func(ti int, now sim.Time, inFlight int) bool

	// Trace, when enabled, receives two spans per completed task — cat
	// "wait" (submit to service start) and "service" (start to done) — on a
	// per-scheme track, the open-loop latency decomposition in profiler form.
	Trace *trace.Tracer
}

func (ol OpenLoop) validate(n int) {
	if len(ol.Arrivals) != n {
		panic(fmt.Sprintf("runners: %d arrivals for %d tasks", len(ol.Arrivals), n))
	}
	for i := 1; i < n; i++ {
		if ol.Arrivals[i] < ol.Arrivals[i-1] {
			panic(fmt.Sprintf("runners: arrivals decrease at %d: %v < %v", i, ol.Arrivals[i], ol.Arrivals[i-1]))
		}
	}
}

func (ol OpenLoop) admit(ti int, now sim.Time, inFlight int) bool {
	if ol.AdmitTask != nil {
		return ol.AdmitTask(ti, now, inFlight)
	}
	return ol.Admit == nil || ol.Admit(now, inFlight)
}

// waitUntil sleeps p to the arrival instant and returns the Submit timestamp
// to record: the arrival time, clamped to the clock when the sleep target
// rounds a float ulp past it, so Submit <= service start always holds.
func waitUntil(p *sim.Proc, at sim.Time) sim.Time {
	if at > p.Now() {
		p.Sleep(at - p.Now())
	}
	if p.Now() < at {
		return p.Now()
	}
	return at
}

// addServeSpans exports each completed task's wait/service split as trace
// spans on the given track (deterministic task-index order).
func addServeSpans(tr *trace.Tracer, track string, recs []serve.Record) {
	if !tr.Enabled() {
		return
	}
	for i, r := range recs {
		if r.Dropped {
			continue
		}
		tr.Add(trace.Span{Name: trace.SpanName("wait", int64(i)), Cat: "wait",
			Track: track, Start: r.Submit, End: r.Start})
		tr.Add(trace.Span{Name: trace.SpanName("service", int64(i)), Cat: "service",
			Track: track, Start: r.Start, End: r.Done})
	}
}

// openLoopResult assembles the timing aggregates every open-loop runner
// shares: elapsed plus exact latency statistics over the completed records.
func openLoopResult(end sim.Time, recs []serve.Record) Result {
	lats := make([]sim.Time, 0, len(recs))
	for _, r := range recs {
		if !r.Dropped {
			lats = append(lats, r.Latency())
		}
	}
	res := Result{Elapsed: end, Tasks: len(lats)}
	res.fillLatencies(lats)
	return res
}

// RunPagodaOpenLoop executes tasks on the Pagoda runtime with timed
// arrivals: spawner threads sleep to each task's arrival instant, consult
// admission, and TaskSpawn immediately (continuous spawning under real
// traffic). Per-task Start is the instant the scheduler warp picked the task
// up and Done the device-side completion, both observed through the
// runtime's OnTaskDone hook rather than host polling.
func RunPagodaOpenLoop(tasks []workloads.TaskDef, ol OpenLoop, cfg Config) (Result, []serve.Record) {
	ol.validate(len(tasks))
	sys := newSystem(cfg)
	rt := core.NewRuntime(sys.ctx, core.DefaultConfig())
	recs := make([]serve.Record, len(tasks))

	idxOf := make(map[core.TaskID]int, len(tasks))
	admitted, completed := 0, 0
	rt.OnTaskDone = func(id core.TaskID, _, sched, end sim.Time) {
		i, ok := idxOf[id]
		if !ok {
			return
		}
		delete(idxOf, id)
		recs[i].Start = sched
		recs[i].Done = end
		completed++
	}

	// Output copies chain off host-observed completions exactly as in the
	// closed-loop runner: a collector polls the TaskTable so D2H transfers
	// overlap ongoing compute.
	outBytes := make(map[core.TaskID]int, len(tasks))
	allSpawned := false
	if cfg.CopyData {
		rt.OnHostObservedDone = func(id core.TaskID) {
			if b := outBytes[id]; b > 0 {
				delete(outBytes, id)
				sys.bus.TransferAsync(pcie.DeviceToHost, b, nil)
			}
		}
		sys.eng.Spawn("ol-collector", func(p *sim.Proc) {
			for {
				p.Sleep(64_000) // 64 us polling cadence
				if allSpawned && len(outBytes) == 0 {
					return
				}
				rt.PollCompletions(p)
			}
		})
	}

	spawners := cfg.Spawners
	if spawners <= 0 {
		spawners = 1
	}
	parts := splitRoundRobin(tasks, spawners)
	streams := make([]*cuda.Stream, spawners)
	finished := 0
	for s := 0; s < spawners; s++ {
		s := s
		streams[s] = sys.ctx.NewStream()
		sys.eng.Spawn(fmt.Sprintf("ol-spawner%d", s), func(p *sim.Proc) {
			for _, ti := range parts[s] {
				td := &tasks[ti]
				recs[ti].Submit = waitUntil(p, ol.Arrivals[ti])
				if !ol.admit(ti, p.Now(), admitted-completed) {
					recs[ti].Dropped = true
					continue
				}
				admitted++
				if cfg.CopyData && td.InBytes > 0 {
					streams[s].MemcpyH2DPipelined(p, td.InBytes, nil)
				}
				id := rt.TaskSpawn(p, core.TaskSpec{
					Threads:   td.Threads,
					Blocks:    td.Blocks,
					SharedMem: td.SharedMem,
					Sync:      td.Sync,
					ArgBytes:  td.ArgBytes,
					Kernel:    func(tc *core.TaskCtx) { td.Kernel(tc) },
				})
				idxOf[id] = ti
				if cfg.CopyData && td.OutBytes > 0 {
					outBytes[id] = td.OutBytes
				}
			}
			finished++
			if finished < spawners {
				return
			}
			// The last spawner to finish drains everything.
			allSpawned = true
			rt.WaitAll(p)
			for _, st := range streams {
				st.Sync(p)
			}
			rt.Shutdown(p)
		})
	}
	end := sys.eng.Run()

	res := openLoopResult(end, recs)
	res.Occupancy = rt.TaskWarpOccupancy(end)
	res.IssueUtil = sys.dev.Metrics().IssueUtil
	addServeSpans(ol.Trace, "serve-pagoda", recs)
	return res, recs
}

// RunHyperQOpenLoop executes each admitted task as its own kernel over 32
// streams with timed arrivals. Start is the instant the kernel's
// threadblocks become dispatchable (stream reached it, HyperQ connection
// held, launch overhead paid); Done is the end of the task's output copy —
// the stream-FIFO point where the host could consume the result.
func RunHyperQOpenLoop(tasks []workloads.TaskDef, ol OpenLoop, cfg Config) (Result, []serve.Record) {
	return runKernelPerTaskOpenLoop(tasks, ol, cfg, gpu.Oversub{}, "hyperq")
}

// runKernelPerTaskOpenLoop is the shared kernel-per-task open-loop engine:
// HyperQ runs it on the static device (zero Oversub), zorua on a virtualized
// one. Serve spans land on the "serve-<scheme>" track.
func runKernelPerTaskOpenLoop(tasks []workloads.TaskDef, ol OpenLoop, cfg Config,
	ov gpu.Oversub, scheme string) (Result, []serve.Record) {
	ol.validate(len(tasks))
	sys := newSystem(cfg)
	if ov.Enabled() {
		sys.dev.Virtualize(ov)
	}
	recs := make([]serve.Record, len(tasks))
	const numStreams = 32
	streams := make([]*cuda.Stream, numStreams)
	for i := range streams {
		streams[i] = sys.ctx.NewStream()
	}

	admitted, completed := 0, 0
	var doneSig sim.Signal
	finish := func(i int) {
		recs[i].Done = sys.eng.Now()
		completed++
		doneSig.Broadcast()
	}

	var endTime sim.Time
	sys.eng.Spawn("ol-hq-host", func(p *sim.Proc) {
		for ti := range tasks {
			ti := ti
			td := &tasks[ti]
			recs[ti].Submit = waitUntil(p, ol.Arrivals[ti])
			if !ol.admit(ti, p.Now(), admitted-completed) {
				recs[ti].Dropped = true
				continue
			}
			admitted++
			stream := streams[ti%numStreams]
			if cfg.CopyData && td.InBytes > 0 {
				stream.MemcpyH2D(p, td.InBytes, nil)
			}
			h := stream.LaunchHooked(p, hyperqSpec(td), func() {
				recs[ti].Start = sys.eng.Now()
			})
			if cfg.CopyData && td.OutBytes > 0 {
				// The output copy sits right behind its kernel in the stream
				// FIFO; its delivery is the task's completion.
				stream.MemcpyD2H(p, td.OutBytes, func() { finish(ti) })
			} else {
				// No output copy: completion is the kernel's own end, observed
				// by a waiter process.
				sys.eng.Spawn(fmt.Sprintf("ol-hq-wait%d", ti), func(wp *sim.Proc) {
					h.Wait(wp)
					finish(ti)
				})
			}
		}
		for completed < admitted {
			doneSig.Wait(p)
		}
		for _, st := range streams {
			st.Sync(p)
		}
		endTime = sys.eng.Now()
	})
	sys.eng.Run()

	res := openLoopResult(endTime, recs)
	m := sys.dev.Metrics()
	res.Occupancy = m.AvgOccupancy
	res.IssueUtil = m.IssueUtil
	addServeSpans(ol.Trace, "serve-"+scheme, recs)
	return res, recs
}

// RunGeMTCOpenLoop executes timed arrivals under the GeMTC model: arrivals
// join a host-side FIFO, and a dispatcher launches a SuperKernel over the
// queue's current contents (up to the batch cap) whenever the device is
// free. Batch semantics are preserved from the closed-loop runner: a task's
// Start is its batch's launch and its Done the whole batch's end, so under
// sparse traffic a task pays the batch round-trip alone and under bursts it
// waits for stragglers — the latency property Fig. 10 contrasts with.
func RunGeMTCOpenLoop(tasks []workloads.TaskDef, ol OpenLoop, cfg Config) (Result, []serve.Record) {
	ol.validate(len(tasks))
	sys := newSystem(cfg)
	recs := make([]serve.Record, len(tasks))

	batchCap := cfg.GeMTCBatch
	if batchCap <= 0 {
		batchCap = 1536
	}
	workerThreads := cfg.GeMTCThreads
	if workerThreads <= 0 {
		for i := range tasks {
			if tasks[i].Threads > workerThreads {
				workerThreads = tasks[i].Threads
			}
		}
	}
	if workerThreads == 0 {
		workerThreads = 128
	}
	occ := gpu.TheoreticalOccupancy(sys.dev.Cfg, gpu.LaunchSpec{
		BlockThreads: workerThreads, RegsPerThread: 32,
	})
	workers := occ.TBsPerSMM * sys.dev.Cfg.NumSMMs
	queueSite := gpu.NewAtomicSite(sys.eng, sys.dev.Cfg.AtomicGlobalLatency)

	var pending []int
	var more sim.Signal
	doneSubmitting := false
	admitted, completed := 0, 0

	sys.eng.Spawn("ol-gemtc-submit", func(p *sim.Proc) {
		for ti := range tasks {
			recs[ti].Submit = waitUntil(p, ol.Arrivals[ti])
			if !ol.admit(ti, p.Now(), admitted-completed) {
				recs[ti].Dropped = true
				continue
			}
			admitted++
			pending = append(pending, ti)
			more.Broadcast()
		}
		doneSubmitting = true
		more.Broadcast()
	})

	var endTime sim.Time
	sys.eng.Spawn("ol-gemtc-dispatch", func(p *sim.Proc) {
		stream := sys.ctx.NewStream()
		for {
			for len(pending) == 0 && !doneSubmitting {
				more.Wait(p)
			}
			if len(pending) == 0 {
				break
			}
			n := len(pending)
			if n > batchCap {
				n = batchCap
			}
			batch := append([]int(nil), pending[:n]...)
			pending = pending[n:]
			launchStart := sys.eng.Now()

			desc := 64 * len(batch)
			in := 0
			for _, ti := range batch {
				if cfg.CopyData {
					in += tasks[ti].InBytes
				}
			}
			stream.MemcpyH2D(p, desc+in, nil)

			next := 0                       // single FIFO queue head
			claimed := make([]int, workers) // per-worker claimed batch position
			h := stream.Launch(p, gpu.LaunchSpec{
				Name:          "SuperKernel",
				GridDim:       workers,
				BlockThreads:  workerThreads,
				RegsPerThread: 32,
				Fn: func(c *gpu.Ctx) {
					for {
						if c.WarpInBlock == 0 {
							c.AtomicGlobal(queueSite)
							if next < len(batch) {
								claimed[c.BlockIdx] = next
								next++
							} else {
								claimed[c.BlockIdx] = -1
							}
						}
						c.SyncBlock()
						idx := claimed[c.BlockIdx]
						if idx < 0 {
							return
						}
						td := &tasks[batch[idx]]
						td.Kernel(&warpAdapter{
							g:        c,
							threads:  workerThreads,
							blocks:   1,
							blockIdx: 0,
							warpInBl: c.WarpInBlock,
						})
						c.SyncBlock()
					}
				},
			})
			h.Wait(p)

			out := 0
			for _, ti := range batch {
				if cfg.CopyData {
					out += tasks[ti].OutBytes
				}
			}
			if out > 0 {
				stream.MemcpyD2H(p, out, nil)
				stream.Sync(p)
			}
			batchEnd := sys.eng.Now()
			for _, ti := range batch {
				recs[ti].Start = launchStart
				recs[ti].Done = batchEnd
				completed++
			}
		}
		endTime = sys.eng.Now()
	})
	sys.eng.Run()

	res := openLoopResult(endTime, recs)
	m := sys.dev.Metrics()
	res.Occupancy = m.AvgOccupancy
	res.IssueUtil = m.IssueUtil
	addServeSpans(ol.Trace, "serve-gemtc", recs)
	return res, recs
}
