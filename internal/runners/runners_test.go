package runners

import (
	"testing"

	"repro/internal/workloads"
)

// smallCfg keeps test runs quick: a 4-SMM device, copies on.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.SMMs = 4
	cfg.GeMTCBatch = 128
	return cfg
}

func verifyTasks(t *testing.T, name string, n int) []workloads.TaskDef {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.Make(workloads.Options{Tasks: n, Verify: true, Seed: 5, InputSize: 32})
}

func checkAll(t *testing.T, scheme string, tasks []workloads.TaskDef) {
	t.Helper()
	for i, td := range tasks {
		if err := td.Check(); err != nil {
			t.Fatalf("%s task %d: %v", scheme, i, err)
		}
	}
}

func TestPagodaRunCorrect(t *testing.T) {
	tasks := verifyTasks(t, "CONV", 40)
	r := RunPagoda(tasks, smallCfg())
	if r.Tasks != 40 {
		t.Fatalf("completed %d tasks, want 40", r.Tasks)
	}
	if r.Elapsed <= 0 || r.AvgLatency <= 0 {
		t.Fatalf("degenerate result %+v", r)
	}
	checkAll(t, "pagoda", tasks)
}

func TestHyperQRunCorrect(t *testing.T) {
	tasks := verifyTasks(t, "CONV", 40)
	r := RunHyperQ(tasks, smallCfg())
	if r.Tasks != 40 {
		t.Fatalf("completed %d, want 40", r.Tasks)
	}
	checkAll(t, "hyperq", tasks)
}

func TestGeMTCRunCorrect(t *testing.T) {
	tasks := verifyTasks(t, "CONV", 40)
	r := RunGeMTC(tasks, smallCfg())
	if r.Tasks != 40 {
		t.Fatalf("completed %d, want 40", r.Tasks)
	}
	checkAll(t, "gemtc", tasks)
}

func TestFusionRunCorrect(t *testing.T) {
	tasks := verifyTasks(t, "CONV", 40)
	r := RunFusion(tasks, smallCfg())
	if r.Tasks != 40 {
		t.Fatalf("completed %d, want 40", r.Tasks)
	}
	checkAll(t, "fusion", tasks)
}

func TestPThreadsRunCorrect(t *testing.T) {
	tasks := verifyTasks(t, "CONV", 40)
	r := RunPThreads(tasks, smallCfg())
	if r.Tasks != 40 {
		t.Fatalf("completed %d, want 40", r.Tasks)
	}
	checkAll(t, "pthreads", tasks)
}

func TestSequentialSlowerByCoreCount(t *testing.T) {
	// Tasks large enough that pool dispatch overhead doesn't dominate.
	b, _ := workloads.ByName("CONV")
	tasks := b.Make(workloads.Options{Tasks: 200, Seed: 5})
	seq := RunSequential(tasks)
	par := RunPThreads(tasks, smallCfg())
	speedup := seq.Elapsed / par.Elapsed
	if speedup < 5 || speedup > 21 {
		t.Fatalf("PThreads speedup over sequential = %.1f, want roughly up to 20x", speedup)
	}
}

func TestSyncWorkloadAcrossSchemes(t *testing.T) {
	// FilterBank uses syncBlock; every GPU scheme must still compute
	// correct results.
	for _, run := range []struct {
		name string
		fn   func([]workloads.TaskDef, Config) Result
	}{
		{"pagoda", RunPagoda}, {"hyperq", RunHyperQ}, {"gemtc", RunGeMTC}, {"fusion", RunFusion},
	} {
		b, _ := workloads.ByName("FB")
		tasks := b.Make(workloads.Options{Tasks: 16, Verify: true, Seed: 8, InputSize: 512})
		r := run.fn(tasks, smallCfg())
		if r.Tasks != 16 {
			t.Fatalf("%s completed %d, want 16", run.name, r.Tasks)
		}
		checkAll(t, run.name, tasks)
	}
}

func TestSharedMemoryWorkloadPagodaAndHyperQ(t *testing.T) {
	for _, run := range []struct {
		name string
		fn   func([]workloads.TaskDef, Config) Result
	}{
		{"pagoda", RunPagoda}, {"hyperq", RunHyperQ},
	} {
		b, _ := workloads.ByName("MM")
		tasks := b.Make(workloads.Options{Tasks: 12, Verify: true, Seed: 8, InputSize: 32, UseShared: true})
		r := run.fn(tasks, smallCfg())
		if r.Tasks != 12 {
			t.Fatalf("%s completed %d, want 12", run.name, r.Tasks)
		}
		checkAll(t, run.name, tasks)
	}
}

func TestPagodaBeatsHyperQOnNarrowTasks(t *testing.T) {
	// The headline claim at test scale: many narrow tasks, full device.
	b, _ := workloads.ByName("MB")
	tasks := b.Make(workloads.Options{Tasks: 1024, Threads: 128, Seed: 1})
	cfg := DefaultConfig() // full 24-SMM device
	pg := RunPagoda(tasks, cfg)
	hq := RunHyperQ(tasks, cfg)
	if pg.Tasks != 1024 || hq.Tasks != 1024 {
		t.Fatalf("incomplete runs: pagoda %d, hyperq %d", pg.Tasks, hq.Tasks)
	}
	if pg.Elapsed >= hq.Elapsed {
		t.Fatalf("Pagoda (%.0f) not faster than HyperQ (%.0f) on 1024 narrow tasks", pg.Elapsed, hq.Elapsed)
	}
}

func TestPagodaBeatsGeMTCOnIrregularTasks(t *testing.T) {
	b, _ := workloads.ByName("MB")
	tasks := b.Make(workloads.Options{Tasks: 1024, Threads: 128, Seed: 1})
	cfg := DefaultConfig()
	cfg.GeMTCBatch = 384
	pg := RunPagoda(tasks, cfg)
	gm := RunGeMTC(tasks, cfg)
	if pg.Elapsed >= gm.Elapsed {
		t.Fatalf("Pagoda (%.0f) not faster than GeMTC (%.0f) on irregular tasks", pg.Elapsed, gm.Elapsed)
	}
}

func TestFusionLatencyGrowsWithTaskCount(t *testing.T) {
	b, _ := workloads.ByName("MM")
	cfg := smallCfg()
	small := RunFusion(b.Make(workloads.Options{Tasks: 64, Seed: 2}), cfg)
	big := RunFusion(b.Make(workloads.Options{Tasks: 512, Seed: 2}), cfg)
	if big.AvgLatency < small.AvgLatency*3 {
		t.Fatalf("fused latency should grow ~linearly: 64 tasks %.0f, 512 tasks %.0f",
			small.AvgLatency, big.AvgLatency)
	}
}

func TestPagodaLatencyStaysFlat(t *testing.T) {
	// Fig. 10: "the average latency of each Pagoda task remains the same for
	// any number of launched tasks" — modulo queueing, it must grow far
	// slower than fusion's linear growth.
	b, _ := workloads.ByName("MM")
	cfg := smallCfg()
	small := RunPagoda(b.Make(workloads.Options{Tasks: 64, Seed: 2}), cfg)
	big := RunPagoda(b.Make(workloads.Options{Tasks: 512, Seed: 2}), cfg)
	if big.AvgLatency > small.AvgLatency*4 {
		t.Fatalf("Pagoda latency grew too fast: 64 tasks %.0f, 512 tasks %.0f",
			small.AvgLatency, big.AvgLatency)
	}
}

func TestPagodaBatchingSlower(t *testing.T) {
	// Fig. 11: continuous spawning beats batching on unbalanced tasks.
	b, _ := workloads.ByName("3DES")
	tasks := b.Make(workloads.Options{Tasks: 512, Threads: 128, Seed: 3})
	cfg := DefaultConfig()
	cfg.GeMTCBatch = 256
	cont := RunPagoda(tasks, cfg)
	cfg.PagodaBatching = true
	batch := RunPagoda(tasks, cfg)
	if cont.Elapsed >= batch.Elapsed {
		t.Fatalf("continuous (%.0f) should beat batching (%.0f)", cont.Elapsed, batch.Elapsed)
	}
}

func TestCopyDataAddsTime(t *testing.T) {
	b, _ := workloads.ByName("DCT")
	tasks := b.Make(workloads.Options{Tasks: 128, Seed: 4})
	cfg := smallCfg()
	with := RunHyperQ(tasks, cfg)
	cfg.CopyData = false
	without := RunHyperQ(tasks, cfg)
	if with.Elapsed <= without.Elapsed {
		t.Fatalf("copies add no time: with %.0f, without %.0f", with.Elapsed, without.Elapsed)
	}
	// DCT is copy-bound (Table 3: 81% copy): copies should dominate.
	if with.Elapsed < without.Elapsed*1.5 {
		t.Logf("note: DCT copy share lower than expected (with=%.0f without=%.0f)", with.Elapsed, without.Elapsed)
	}
}

func TestOccupancyOrdering(t *testing.T) {
	// Pagoda's task-warp occupancy should far exceed HyperQ's achieved
	// occupancy on narrow tasks (the §2 motivation). Tasks must be long
	// enough that the device, not the spawn path, is the bottleneck —
	// HyperQ then caps at 32 kernels x 4 warps = 128 of 1536 warps.
	b, _ := workloads.ByName("MB")
	tasks := b.Make(workloads.Options{Tasks: 1024, Threads: 128, Seed: 5, InputSize: 128})
	cfg := DefaultConfig()
	cfg.CopyData = false
	pg := RunPagoda(tasks, cfg)
	hq := RunHyperQ(tasks, cfg)
	if pg.Occupancy <= hq.Occupancy {
		t.Fatalf("Pagoda occupancy %.3f not above HyperQ %.3f", pg.Occupancy, hq.Occupancy)
	}
}

func TestDeterministicRunners(t *testing.T) {
	b, _ := workloads.ByName("FB")
	mk := func() []workloads.TaskDef {
		return b.Make(workloads.Options{Tasks: 96, Seed: 6})
	}
	cfg := smallCfg()
	for name, fn := range map[string]func([]workloads.TaskDef, Config) Result{
		"pagoda": RunPagoda, "hyperq": RunHyperQ, "gemtc": RunGeMTC, "fusion": RunFusion,
	} {
		a, b2 := fn(mk(), cfg), fn(mk(), cfg)
		if a.Elapsed != b2.Elapsed {
			t.Errorf("%s nondeterministic: %v vs %v", name, a.Elapsed, b2.Elapsed)
		}
	}
}

func TestGeMTCBatchBoundary(t *testing.T) {
	// Batch semantics: task i in batch b may only start after every task of
	// batch b-1 finished.
	b, _ := workloads.ByName("MB")
	tasks := b.Make(workloads.Options{Tasks: 64, Seed: 9})
	cfg := smallCfg()
	cfg.GeMTCBatch = 16
	var order []int
	for i := range tasks {
		i := i
		inner := tasks[i].Kernel
		tasks[i].Kernel = func(c workloads.DeviceCtx) {
			if c.WarpInBlock() == 0 {
				order = append(order, i)
			}
			inner(c)
		}
	}
	r := RunGeMTC(tasks, cfg)
	if r.Tasks != 64 {
		t.Fatalf("completed %d", r.Tasks)
	}
	// Batches of 16: every recorded start index must belong to the batch
	// whose predecessors all already started.
	seen := make([]bool, 64)
	started := 0
	for _, i := range order {
		batch := i / 16
		for j := 0; j < batch*16; j++ {
			if !seen[j] {
				t.Fatalf("task %d (batch %d) started before task %d of an earlier batch", i, batch, j)
			}
		}
		if !seen[i] {
			seen[i] = true
			started++
		}
	}
	if started != 64 {
		t.Fatalf("started %d distinct tasks", started)
	}
}
