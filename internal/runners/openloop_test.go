package runners

import (
	"testing"

	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func olTasks(t testing.TB, n int) []workloads.TaskDef {
	t.Helper()
	tasks := workloads.Mandelbrot().Make(workloads.Options{Tasks: n, Seed: 1})
	if len(tasks) != n {
		t.Fatalf("made %d tasks, want %d", len(tasks), n)
	}
	return tasks
}

func olConfig() Config {
	cfg := DefaultConfig()
	cfg.SMMs = 4
	cfg.GeMTCBatch = 64
	return cfg
}

type olRunner struct {
	name string
	run  func([]workloads.TaskDef, OpenLoop, Config) (Result, []serve.Record)
}

// olRunners derives the gate list from the scheme registry, so a newly
// registered scheme is covered by every open-loop gate automatically.
func olRunners() []olRunner {
	var out []olRunner
	for _, s := range Schemes() {
		out = append(out, olRunner{s.Key, s.RunOpenLoop})
	}
	return out
}

// TestOpenLoopDeterministic: two identical open-loop runs must agree bit for
// bit — the Result and every per-task record.
func TestOpenLoopDeterministic(t *testing.T) {
	tasks := olTasks(t, 48)
	arr := serve.Poisson{Rate: 50e3, Seed: 3}.Times(len(tasks))
	for _, r := range olRunners() {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			r1, recs1 := r.run(tasks, OpenLoop{Arrivals: arr}, olConfig())
			r2, recs2 := r.run(tasks, OpenLoop{Arrivals: arr}, olConfig())
			if r1 != r2 {
				t.Errorf("results differ:\n%+v\n%+v", r1, r2)
			}
			for i := range recs1 {
				if recs1[i] != recs2[i] {
					t.Fatalf("record %d differs: %+v vs %+v", i, recs1[i], recs2[i])
				}
			}
		})
	}
}

// TestOpenLoopRecordsWellFormed: with unbounded admission every task
// completes, and each record respects Submit <= Start <= Done with Submit at
// the requested arrival instant.
func TestOpenLoopRecordsWellFormed(t *testing.T) {
	tasks := olTasks(t, 48)
	arr := serve.FixedRate{Rate: 20e3}.Times(len(tasks))
	for _, r := range olRunners() {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			res, recs := r.run(tasks, OpenLoop{Arrivals: arr}, olConfig())
			if res.Tasks != len(tasks) {
				t.Fatalf("completed %d of %d tasks", res.Tasks, len(tasks))
			}
			for i, rec := range recs {
				if rec.Dropped {
					t.Fatalf("record %d dropped under unbounded admission", i)
				}
				if rec.Submit != arr[i] {
					t.Errorf("record %d submit %v, want arrival %v", i, rec.Submit, arr[i])
				}
				if rec.Start < rec.Submit || rec.Done < rec.Start {
					t.Errorf("record %d out of order: %+v", i, rec)
				}
			}
			// Summarize accepts the records (panics on malformed input) and
			// the Result percentiles match an independent computation.
			s := serve.Summarize(recs, 1e6)
			if s.Completed != len(tasks) {
				t.Errorf("summary completed = %d", s.Completed)
			}
			if s.P99 != res.P99Latency || s.Max != res.MaxLatency {
				t.Errorf("summary tail (p99 %v max %v) disagrees with Result (%v, %v)",
					s.P99, s.Max, res.P99Latency, res.MaxLatency)
			}
		})
	}
}

// TestOpenLoopBoundedQueueDrops: a saturating burst against a tiny admission
// bound must shed load, and dropped records must carry no timing.
func TestOpenLoopBoundedQueueDrops(t *testing.T) {
	tasks := olTasks(t, 48)
	arr := serve.FixedRate{Rate: 5e6}.Times(len(tasks)) // way past capacity
	pol := serve.BoundedQueue{Limit: 4}
	for _, r := range olRunners() {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			res, recs := r.run(tasks, OpenLoop{Arrivals: arr, Admit: pol.Admit}, olConfig())
			dropped := 0
			for i, rec := range recs {
				if rec.Dropped {
					dropped++
					if rec.Start != 0 || rec.Done != 0 {
						t.Errorf("dropped record %d has timing: %+v", i, rec)
					}
				}
			}
			if dropped == 0 {
				t.Error("no drops despite 5M tasks/s against a 4-deep bound")
			}
			if res.Tasks+dropped != len(tasks) {
				t.Errorf("completed %d + dropped %d != %d", res.Tasks, dropped, len(tasks))
			}
		})
	}
}

// TestOpenLoopLoadRaisesTail: offering load far past saturation must not
// shrink the p99 — queueing delay accumulates in the open loop.
func TestOpenLoopLoadRaisesTail(t *testing.T) {
	tasks := olTasks(t, 48)
	sparse := serve.FixedRate{Rate: 2e3}.Times(len(tasks))
	flood := serve.FixedRate{Rate: 5e6}.Times(len(tasks))
	for _, r := range olRunners() {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			lo, _ := r.run(tasks, OpenLoop{Arrivals: sparse}, olConfig())
			hi, _ := r.run(tasks, OpenLoop{Arrivals: flood}, olConfig())
			if hi.P99Latency < lo.P99Latency {
				t.Errorf("p99 fell under overload: sparse %v, flood %v", lo.P99Latency, hi.P99Latency)
			}
		})
	}
}

// TestOpenLoopTraceSpans: the wait/service decomposition exports two spans
// per completed task and none for drops.
func TestOpenLoopTraceSpans(t *testing.T) {
	tasks := olTasks(t, 24)
	arr := serve.FixedRate{Rate: 20e3}.Times(len(tasks))
	tr := trace.New()
	res, recs := RunPagodaOpenLoop(tasks, OpenLoop{Arrivals: arr, Trace: tr}, olConfig())
	if want := 2 * res.Tasks; tr.Len() != want {
		t.Fatalf("trace has %d spans, want %d", tr.Len(), want)
	}
	var waitBusy, serviceBusy float64
	for cat, e := range tr.Summary() {
		switch cat {
		case "wait":
			waitBusy = e.Busy
		case "service":
			serviceBusy = e.Busy
		default:
			t.Errorf("unexpected span category %q", cat)
		}
	}
	var wantWait, wantService sim.Time
	for _, rec := range recs {
		wantWait += rec.Wait()
		wantService += rec.Service()
	}
	if waitBusy != wantWait || serviceBusy != wantService {
		t.Errorf("span busy time (wait %v, service %v) disagrees with records (%v, %v)",
			waitBusy, serviceBusy, wantWait, wantService)
	}
}

// TestOpenLoopValidation: arrival/task mismatches are programmer errors.
func TestOpenLoopValidation(t *testing.T) {
	tasks := olTasks(t, 4)
	for _, bad := range []OpenLoop{
		{Arrivals: []sim.Time{1, 2}},         // wrong length
		{Arrivals: []sim.Time{1, 2, 3, 2.5}}, // decreasing
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %v", bad.Arrivals)
				}
			}()
			RunPagodaOpenLoop(tasks, bad, olConfig())
		}()
	}
}
