package runners

import (
	"repro/internal/gpu"
	"repro/internal/workloads"
)

// warpAdapter adapts a raw gpu.Ctx (HyperQ per-task kernels, GeMTC
// SuperKernel workers, fused kernels) to the workloads.DeviceCtx interface.
// The adapter pins the task's logical geometry, which may differ from the
// physical launch (e.g. a fused kernel where each physical threadblock is
// one subtask).
type warpAdapter struct {
	g *gpu.Ctx

	threads  int // logical threads per task threadblock
	blocks   int // logical threadblocks in the task
	blockIdx int // logical block this warp serves
	warpInBl int // logical warp index within the block
	args     any

	shared []byte
	bar    *gpu.Barrier // nil: use the physical block barrier
}

var _ workloads.DeviceCtx = (*warpAdapter)(nil)

func (w *warpAdapter) Threads() int     { return w.threads }
func (w *warpAdapter) Blocks() int      { return w.blocks }
func (w *warpAdapter) BlockIdx() int    { return w.blockIdx }
func (w *warpAdapter) WarpInBlock() int { return w.warpInBl }
func (w *warpAdapter) Args() any        { return w.args }

func (w *warpAdapter) activeLanes() int {
	rem := w.threads - w.warpInBl*32
	if rem >= 32 {
		return 32
	}
	if rem < 0 {
		return 0
	}
	return rem
}

func (w *warpAdapter) ForEachLane(fn func(tid int)) {
	base := w.warpInBl * 32
	for l := 0; l < w.activeLanes(); l++ {
		fn(base + l)
	}
}

func (w *warpAdapter) Compute(c float64) { w.g.Compute(c) }
func (w *warpAdapter) GlobalRead(n int)  { w.g.GlobalRead(n) }
func (w *warpAdapter) GlobalWrite(n int) { w.g.GlobalWrite(n) }
func (w *warpAdapter) SharedRead(n int)  { w.g.SharedRead(n) }
func (w *warpAdapter) SharedWrite(n int) { w.g.SharedWrite(n) }

func (w *warpAdapter) SyncBlock() {
	if w.bar != nil {
		w.g.NamedBarrier(w.bar)
		return
	}
	w.g.SyncBlock()
}

func (w *warpAdapter) HasShared() bool { return len(w.shared) > 0 }
func (w *warpAdapter) Shared() []byte {
	if len(w.shared) == 0 {
		panic("runners: Shared() on a task without shared memory")
	}
	return w.shared
}

// taskWarps returns the physical warp count for a task's threadblock.
func taskWarps(threads int) int { return (threads + 31) / 32 }
