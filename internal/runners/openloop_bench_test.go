package runners

import (
	"testing"

	"repro/internal/serve"
	"repro/internal/workloads"
)

// BenchmarkOpenLoop times one timed-submission run per GPU scheme — the
// capacity sweep's unit of work (256 tasks at a mid-ladder offered rate on
// the full 24-SMM device).
func BenchmarkOpenLoop(b *testing.B) {
	tasks := workloads.Mandelbrot().Make(workloads.Options{Tasks: 256, Threads: 128, Seed: 1})
	cfg := DefaultConfig()
	cfg.SMMs = 24
	arr := serve.Poisson{Rate: 64e3, Seed: 1}.Times(len(tasks))
	for _, r := range olRunners() {
		b.Run(r.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.run(tasks, OpenLoop{Arrivals: arr}, cfg)
			}
		})
	}
}
