package runners

import (
	"testing"

	"repro/internal/workloads"
)

// TestFig6Crossover reproduces §6.2's weak-scaling observation: "For low
// task counts, none of the schemes occupy the entire GPU, and hence HyperQ
// and GeMTC perform fairly well. However, once the task count grows beyond
// 512, Pagoda obtains higher performance" — i.e. Pagoda's advantage over
// HyperQ grows with the task count.
func TestFig6Crossover(t *testing.T) {
	b, _ := workloads.ByName("MB")
	cfg := DefaultConfig()
	ratio := func(n int) float64 {
		pg := RunPagoda(b.Make(workloads.Options{Tasks: n, Threads: 128, Seed: 1}), cfg)
		hq := RunHyperQ(b.Make(workloads.Options{Tasks: n, Threads: 128, Seed: 1}), cfg)
		return hq.Elapsed / pg.Elapsed
	}
	small := ratio(128)
	large := ratio(2048)
	if large <= small {
		t.Fatalf("Pagoda advantage should grow with task count: 128 tasks %.2fx, 2048 tasks %.2fx", small, large)
	}
	if large <= 1.0 {
		t.Fatalf("Pagoda should win beyond 512 tasks: ratio at 2048 = %.2fx", large)
	}
}

// TestFig7ThreadCountTrend reproduces the §6.3 observation: "The performance
// benefits of Pagoda over HyperQ decrease with thread count because the
// underutilization becomes less severe."
func TestFig7ThreadCountTrend(t *testing.T) {
	b, _ := workloads.ByName("CONV")
	cfg := DefaultConfig()
	cfg.CopyData = false
	ratio := func(threads int) float64 {
		pg := RunPagoda(b.Make(workloads.Options{Tasks: 1024, Threads: threads, Seed: 1}), cfg)
		hq := RunHyperQ(b.Make(workloads.Options{Tasks: 1024, Threads: threads, Seed: 1}), cfg)
		return hq.Elapsed / pg.Elapsed
	}
	at32 := ratio(32)
	at512 := ratio(512)
	if at32 <= at512*0.95 {
		t.Fatalf("Pagoda benefit should shrink with threads/task: 32thr %.2fx vs 512thr %.2fx", at32, at512)
	}
}
