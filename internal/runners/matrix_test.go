package runners

import (
	"testing"

	"repro/internal/workloads"
)

// TestVerificationMatrix runs every benchmark's real computation under every
// registered GPU execution scheme plus static fusion and the CPU pool,
// verifying all results — the integration matrix for the whole repository:
// 9 workloads x 6 schemes.
func TestVerificationMatrix(t *testing.T) {
	schemes := []struct {
		name string
		fn   func([]workloads.TaskDef, Config) Result
	}{
		{"fusion", RunFusion},
		{"pthreads", RunPThreads},
	}
	for _, s := range Schemes() {
		schemes = append(schemes, struct {
			name string
			fn   func([]workloads.TaskDef, Config) Result
		}{s.Key, s.Run})
	}
	names := []string{"MB", "FB", "BF", "CONV", "DCT", "MM", "SLUD", "3DES", "MPE"}
	for _, name := range names {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range schemes {
			s, b, name := s, b, name
			t.Run(name+"/"+s.name, func(t *testing.T) {
				opt := workloads.Options{Tasks: 10, Verify: true, Seed: 21, InputSize: 32}
				if name == "FB" || name == "BF" {
					opt.InputSize = 512
				}
				if name == "3DES" || name == "SLUD" || name == "MPE" {
					opt.InputSize = 0 // these size themselves
				}
				// Shared-memory variants only where the scheme supports it.
				if b.SupportsShared && s.name != "gemtc" && s.name != "pthreads" {
					opt.UseShared = true
				}
				tasks := b.Make(opt)
				cfg := smallCfg()
				r := s.fn(tasks, cfg)
				if r.Tasks != len(tasks) {
					t.Fatalf("completed %d of %d", r.Tasks, len(tasks))
				}
				for i, td := range tasks {
					if td.Check == nil {
						t.Fatalf("task %d missing Check", i)
					}
					if err := td.Check(); err != nil {
						t.Fatalf("task %d: %v", i, err)
					}
				}
			})
		}
	}
}

// TestIrregularMatrix repeats the matrix with §6.3-style pseudo-random input
// sizes and dynamic thread counts for the schemes that support them.
func TestIrregularMatrix(t *testing.T) {
	for _, s := range []struct {
		name string
		fn   func([]workloads.TaskDef, Config) Result
	}{
		{"pagoda", RunPagoda},
		{"hyperq", RunHyperQ},
		{"fusion", RunFusion},
	} {
		s := s
		t.Run(s.name, func(t *testing.T) {
			for _, name := range []string{"MB", "CONV", "MM", "3DES"} {
				b, _ := workloads.ByName(name)
				tasks := b.Make(workloads.Options{Tasks: 8, Verify: true, Irregular: true, Seed: 33})
				r := s.fn(tasks, smallCfg())
				if r.Tasks != 8 {
					t.Fatalf("%s: completed %d of 8", name, r.Tasks)
				}
				for i, td := range tasks {
					if err := td.Check(); err != nil {
						t.Fatalf("%s task %d: %v", name, i, err)
					}
				}
			}
		})
	}
}
