package runners

import (
	"repro/internal/gpu"
	"repro/internal/serve"
	"repro/internal/workloads"
)

// The zorua scheme models Zorua-style dynamic resource virtualization
// (Vijaykumar et al., MICRO'16; arXiv 1802.02573 / 1805.02498) as a fourth
// contender beside Pagoda, CUDA-HyperQ and GeMTC: the host side is the
// kernel-per-task HyperQ path unchanged — one kernel per narrow task over 32
// streams — but the device admits threadblocks against oversubscribed
// (virtual) resource budgets and a runtime coordinator spills the overflow
// at a per-KB cycle price (gpu.VirtualOccupancy / Device.Virtualize).
//
// Because zorua and HyperQ share the host path exactly, the zorua-vs-HyperQ
// delta isolates what dynamic resource virtualization alone buys: it helps
// where static occupancy is resource-bound (shared-memory or register-heavy
// kernels) and does nothing for the spawn-path bottleneck Pagoda attacks —
// the design-space point §2 of the paper argues around.

// zoruaOversub resolves the run's oversubscription factors: an unset
// Config.Oversub means the scheme default (1.5x on every virtualized
// resource); an explicit value — including explicit unity factors, which
// make zorua behave exactly like HyperQ — is used as given.
func zoruaOversub(cfg Config) gpu.Oversub {
	if cfg.Oversub == (gpu.Oversub{}) {
		return gpu.DefaultOversub()
	}
	return cfg.Oversub
}

// RunZorua executes each task as its own kernel over 32 streams on a
// virtualized device: the closed-loop zorua scheme.
func RunZorua(tasks []workloads.TaskDef, cfg Config) Result {
	return runKernelPerTask(tasks, cfg, zoruaOversub(cfg))
}

// RunZoruaOpenLoop executes timed arrivals under the zorua scheme. Start and
// Done semantics match RunHyperQOpenLoop (kernel dispatchable / output
// delivered); serve spans land on the "serve-zorua" track.
func RunZoruaOpenLoop(tasks []workloads.TaskDef, ol OpenLoop, cfg Config) (Result, []serve.Record) {
	return runKernelPerTaskOpenLoop(tasks, ol, cfg, zoruaOversub(cfg), "zorua")
}

// RunZoruaCluster executes timed arrivals on a fleet of virtualized devices.
// Routing, admission and Start/Done semantics match RunHyperQCluster.
func RunZoruaCluster(tasks []workloads.TaskDef, co ClusterOpenLoop, cfg Config) (Result, ClusterRun) {
	return runKernelPerTaskCluster(tasks, co, cfg, zoruaOversub(cfg), "zorua")
}
