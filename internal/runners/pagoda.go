package runners

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// RunPagoda executes the task stream on the Pagoda runtime: spawner threads
// copy each task's input asynchronously and call taskSpawn immediately (the
// continuous-spawning model of Fig. 1a); output copies are enqueued as the
// host observes completions through the lazy copy-back protocol; waitAll
// drains the tail.
func RunPagoda(tasks []workloads.TaskDef, cfg Config) Result {
	sys := newSystem(cfg)
	ccfg := core.DefaultConfig()
	if cfg.PagodaBatching {
		ccfg.Batching = true
		if cfg.GeMTCBatch > 0 {
			ccfg.BatchSize = cfg.GeMTCBatch // "same batch size as GeMTC's"
		}
	}
	rt := core.NewRuntime(sys.ctx, ccfg)

	spawners := cfg.Spawners
	if spawners <= 0 {
		spawners = 1
	}
	parts := splitRoundRobin(tasks, spawners)

	// Output copies chain off host-observed completions: when a copy-back
	// reveals a finished task, its D2H output transfer goes on the wire,
	// overlapping with ongoing compute.
	outBytes := make(map[core.TaskID]int, len(tasks))
	if cfg.CopyData {
		rt.OnHostObservedDone = func(id core.TaskID) {
			if b := outBytes[id]; b > 0 {
				delete(outBytes, id)
				sys.bus.TransferAsync(pcie.DeviceToHost, b, nil)
			}
		}
	}

	// A collector thread polls the TaskTable so completions (and therefore
	// output copies) are observed while compute is still in flight — the
	// Fig. 1a pattern of a nested wait()+memcpy task per spawned task.
	allSpawned := false
	if cfg.CopyData {
		sys.eng.Spawn("collector", func(p *sim.Proc) {
			for {
				p.Sleep(64_000) // 64 us polling cadence
				if allSpawned && len(outBytes) == 0 {
					return
				}
				rt.PollCompletions(p)
			}
		})
	}

	streams := make([]*cuda.Stream, spawners)
	finished := 0
	for s := 0; s < spawners; s++ {
		s := s
		streams[s] = sys.ctx.NewStream()
		sys.eng.Spawn(fmt.Sprintf("spawner%d", s), func(p *sim.Proc) {
			for _, ti := range parts[s] {
				td := &tasks[ti]
				if cfg.CopyData && td.InBytes > 0 {
					streams[s].MemcpyH2DPipelined(p, td.InBytes, nil)
				}
				id := rt.TaskSpawn(p, core.TaskSpec{
					Threads:   td.Threads,
					Blocks:    td.Blocks,
					SharedMem: td.SharedMem,
					Sync:      td.Sync,
					ArgBytes:  td.ArgBytes,
					Kernel:    func(tc *core.TaskCtx) { td.Kernel(tc) },
				})
				if cfg.CopyData && td.OutBytes > 0 {
					outBytes[id] = td.OutBytes
				}
			}
			finished++
			if finished < spawners {
				return
			}
			// The last spawner to finish drains everything.
			allSpawned = true
			rt.WaitAll(p)
			for _, st := range streams {
				st.Sync(p)
			}
			rt.Shutdown(p)
		})
	}
	end := sys.eng.Run()

	st := rt.Stats()
	m := sys.dev.Metrics()
	r := Result{
		Elapsed:   end,
		Occupancy: rt.TaskWarpOccupancy(end),
		IssueUtil: m.IssueUtil,
		Tasks:     st.Completed,
	}
	r.fillLatencies(rt.Latencies())
	return r
}
