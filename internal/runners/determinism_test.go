package runners

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// tracedRun executes a small fig5-style Pagoda run with tracing enabled and
// returns the observables a state leak would perturb: the final virtual
// time, the number of trace spans, and the per-category span counts.
func tracedRun(t *testing.T, name string, tasks int) (end sim.Time, spans int, byCat map[string]int) {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	defs := b.Make(workloads.Options{Tasks: tasks, Threads: 128, Seed: 1})

	sys := newSystem(Config{SMMs: 8})
	rt := core.NewRuntime(sys.ctx, core.DefaultConfig())
	tr := trace.New()
	sys.dev.Trace = tr
	rt.Trace = tr

	sys.eng.Spawn("host", func(p *sim.Proc) {
		for i := range defs {
			td := &defs[i]
			rt.TaskSpawn(p, core.TaskSpec{
				Threads:   td.Threads,
				Blocks:    td.Blocks,
				SharedMem: td.SharedMem,
				Sync:      td.Sync,
				ArgBytes:  td.ArgBytes,
				Kernel:    func(tc *core.TaskCtx) { td.Kernel(tc) },
			})
		}
		rt.WaitAll(p)
		rt.Shutdown(p)
	})
	end = sys.eng.Run()

	byCat = map[string]int{}
	for cat, s := range tr.Summary() {
		byCat[cat] = s.Count
	}
	return end, tr.Len(), byCat
}

// TestDoubleRunDeterminism runs the same small fig5 config twice in one
// process and requires bit-identical final virtual times and identical trace
// shapes. The golden test pins run-to-run stability across binaries; this
// one catches state leaking *between* runs — package-level caches, pool
// reuse, sync.Once-style init — which a fresh process would mask and the
// static pagodavet checks cannot see.
func TestDoubleRunDeterminism(t *testing.T) {
	for _, name := range []string{"MB", "DCT"} {
		end1, len1, cat1 := tracedRun(t, name, 64)
		end2, len2, cat2 := tracedRun(t, name, 64)
		if end1 != end2 {
			t.Errorf("%s: final virtual time differs between runs: %x (%v) vs %x (%v)",
				name, end1, end1, end2, end2)
		}
		if len1 != len2 {
			t.Errorf("%s: trace span count differs between runs: %d vs %d", name, len1, len2)
		}
		if len(cat1) != len(cat2) {
			t.Errorf("%s: trace categories differ: %v vs %v", name, cat1, cat2)
		}
		for cat, n := range cat1 {
			if cat2[cat] != n {
				t.Errorf("%s: category %q span count differs: %d vs %d", name, cat, n, cat2[cat])
			}
		}
		if len1 == 0 {
			t.Errorf("%s: traced run produced no spans", name)
		}
	}
}

// TestDoubleRunResultsIdentical runs every registered scheme's closed-loop
// entry point twice and requires every reported metric to match bit-for-bit,
// covering the paths the harness actually sweeps.
func TestDoubleRunResultsIdentical(t *testing.T) {
	b, err := workloads.ByName("MB")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SMMs = 8
	opt := workloads.Options{Tasks: 64, Threads: 128, Seed: 1, UseShared: b.SupportsShared}
	for _, s := range Schemes() {
		r1 := s.Run(b.Make(opt), cfg)
		r2 := s.Run(b.Make(opt), cfg)
		if r1 != r2 {
			t.Errorf("%s: results differ between identical runs:\n  %+v\n  %+v", s.Key, r1, r2)
		}
	}
}
