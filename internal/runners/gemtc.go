package runners

import (
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// RunGeMTC reproduces the GeMTC baseline (Krieder et al., HPDC'14): a
// SuperKernel whose threadblocks act as workers, pulling tasks from a single
// FIFO queue in device memory with global atomics, launched batch by batch.
// The three properties the paper contrasts with are modelled directly:
//
//  1. batch-based launching — no new tasks enter until the whole previous
//     batch (SuperKernel launch) completes, so a batch's makespan is its
//     longest task;
//  2. a single queue — every pop serializes on one global atomic;
//  3. threadblock granularity — each task occupies one worker threadblock
//     for its whole duration, and the SuperKernel's fixed threadblock size
//     limits occupancy.
//
// GeMTC has no shared-memory support ("the GeMTC versions do not use shared
// memory"), so tasks run with HasShared()==false regardless of their spec.
func RunGeMTC(tasks []workloads.TaskDef, cfg Config) Result {
	sys := newSystem(cfg)

	batch := cfg.GeMTCBatch
	if batch <= 0 {
		batch = 1536
	}

	// Worker threadblock width: the evaluation uses the task's thread count
	// (uniform within a benchmark run; for mixes, the maximum).
	workerThreads := cfg.GeMTCThreads
	if workerThreads <= 0 {
		for _, td := range tasks {
			if td.Threads > workerThreads {
				workerThreads = td.Threads
			}
		}
	}
	if workerThreads == 0 {
		workerThreads = 128
	}

	// Worker count: fill the device at this threadblock size.
	occ := gpu.TheoreticalOccupancy(sys.dev.Cfg, gpu.LaunchSpec{
		BlockThreads: workerThreads, RegsPerThread: 32,
	})
	workers := occ.TBsPerSMM * sys.dev.Cfg.NumSMMs

	queueSite := gpu.NewAtomicSite(sys.eng, sys.dev.Cfg.AtomicGlobalLatency)

	lats := make([]sim.Time, 0, len(tasks))

	var endTime sim.Time
	sys.eng.Spawn("gemtc-host", func(p *sim.Proc) {
		stream := sys.ctx.NewStream()
		for lo := 0; lo < len(tasks); lo += batch {
			hi := lo + batch
			if hi > len(tasks) {
				hi = len(tasks)
			}
			cur := tasks[lo:hi]
			spawnTime := sys.eng.Now()

			// Copy the batch's descriptors and inputs, then launch the
			// SuperKernel.
			desc := 64 * len(cur)
			in := 0
			for i := range cur {
				if cfg.CopyData {
					in += cur[i].InBytes
				}
			}
			stream.MemcpyH2D(p, desc+in, nil)

			next := 0                       // single FIFO queue head
			claimed := make([]int, workers) // per-worker claimed task index
			h := stream.Launch(p, gpu.LaunchSpec{
				Name:          "SuperKernel",
				GridDim:       workers,
				BlockThreads:  workerThreads,
				RegsPerThread: 32,
				Fn: func(c *gpu.Ctx) {
					for {
						// Warp 0 of the worker pops from the single FIFO
						// queue (one serialized global atomic per pop); the
						// whole block then runs the claimed task.
						if c.WarpInBlock == 0 {
							c.AtomicGlobal(queueSite)
							if next < len(cur) {
								claimed[c.BlockIdx] = next
								next++
							} else {
								claimed[c.BlockIdx] = -1
							}
						}
						c.SyncBlock()
						idx := claimed[c.BlockIdx]
						if idx < 0 {
							return
						}
						td := &cur[idx]
						// The whole worker threadblock runs the task (the
						// SuperKernel's threadblock width is the task width;
						// under MPE mixes narrow tasks are padded to it).
						td.Kernel(&warpAdapter{
							g:        c,
							threads:  workerThreads,
							blocks:   1,
							blockIdx: 0,
							warpInBl: c.WarpInBlock,
						})
						c.SyncBlock()
					}
				},
			})
			h.Wait(p)

			// Copy the batch's outputs back; only now is the batch over.
			out := 0
			for i := range cur {
				if cfg.CopyData {
					out += cur[i].OutBytes
				}
			}
			if out > 0 {
				stream.MemcpyD2H(p, out, nil)
				stream.Sync(p)
			}
			batchEnd := sys.eng.Now()
			for range cur {
				// Batch semantics: a task is only available to the host when
				// the whole batch is (the latency property of Fig. 10).
				lats = append(lats, batchEnd-spawnTime)
			}
		}
		endTime = sys.eng.Now()
	})
	sys.eng.Run()

	m := sys.dev.Metrics()
	r := Result{
		Elapsed:   endTime,
		Occupancy: m.AvgOccupancy,
		IssueUtil: m.IssueUtil,
		Tasks:     len(lats),
	}
	r.fillLatencies(lats)
	return r
}
