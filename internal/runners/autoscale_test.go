package runners

import (
	"reflect"
	"testing"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/tenancy"
)

// elasticTestScaler is a deliberately twitchy configuration so small test
// runs actually exercise scale-out, warm-up and drain: tight watermarks,
// short control interval, minimal cooldown.
func elasticTestScaler(policy string, min, max int) *autoscale.Config {
	tu := autoscale.DefaultTuning()
	tu.High, tu.Low, tu.Step = 2, 0, 1
	tu.Alpha, tu.PerNodeRate, tu.Headroom = 0.5, 48e3, 1.25
	mk, err := autoscale.NewPolicy(policy, tu)
	if err != nil {
		panic(err)
	}
	return &autoscale.Config{Min: min, Max: max, Policy: mk,
		Interval: 50_000, Warmup: 200_000, Cooldown: 100_000}
}

// TestElasticDisabledMatchesFixedFleet is the acceptance pin from the issue:
// with autoscaling disabled (min = max = N) every scheme's cluster run must
// reproduce the fixed-fleet records, routing, views and aggregates bit for
// bit — the Scaler knob normalizes away instead of perturbing the run.
func TestElasticDisabledMatchesFixedFleet(t *testing.T) {
	const n, nodesN = 64, 3
	tasks := clusterTestTasks(t, n)
	cfg := clusterTestConfig()
	arrivals := serve.Poisson{Rate: 256e3, Seed: 3}.Times(n)

	for _, be := range clusterBackends() {
		t.Run(be.key, func(t *testing.T) {
			fres, fcr := be.cluster(tasks, ClusterOpenLoop{
				Arrivals: arrivals, Nodes: nodesN, Policy: cluster.LeastOutstanding{}}, cfg)
			eres, ecr := be.cluster(tasks, ClusterOpenLoop{
				Arrivals: arrivals, Policy: cluster.LeastOutstanding{},
				Scaler: &autoscale.Config{Min: nodesN, Max: nodesN}}, cfg)

			if fres != eres {
				t.Errorf("results diverged:\n fixed   %+v\n scaler  %+v", fres, eres)
			}
			if !reflect.DeepEqual(fcr.Recs, ecr.Recs) {
				t.Error("records diverged between fixed fleet and disabled scaler")
			}
			if !reflect.DeepEqual(fcr.NodeOf, ecr.NodeOf) {
				t.Error("routing diverged between fixed fleet and disabled scaler")
			}
			if !reflect.DeepEqual(fcr.Views, ecr.Views) {
				t.Error("views diverged between fixed fleet and disabled scaler")
			}
			if ecr.Scale != nil {
				t.Error("disabled scaler still produced a scale outcome")
			}
		})
	}
}

// TestElasticConservationEveryPolicyScheme is the ledger gate across scale
// events: for every scheme x scaling policy, a flash-crowd run that provably
// scales out (and drops under bounded admission) must keep routed = done +
// dropped on every node ever provisioned — including nodes that warmed up
// mid-run and nodes that drained and retired.
func TestElasticConservationEveryPolicyScheme(t *testing.T) {
	const n = 96
	tasks := clusterTestTasks(t, n)
	cfg := clusterTestConfig()
	arrivals := serve.FlashCrowd{BaseRate: 32e3, SpikeRate: 2e6,
		SpikeAt: 500_000, SpikeDur: 1_000_000, Seed: 2}.Times(n)

	for _, be := range clusterBackends() {
		for _, pol := range autoscale.PolicyNames() {
			t.Run(be.key+"/"+pol, func(t *testing.T) {
				co := ClusterOpenLoop{
					Arrivals: arrivals,
					Policy:   cluster.LeastOutstanding{},
					Admit:    func() func(sim.Time, int) bool { return serve.BoundedQueue{Limit: 6}.Admit },
					Scaler:   elasticTestScaler(pol, 1, 4),
				}
				_, cr := be.cluster(tasks, co, cfg)

				if err := cr.CheckConservation(); err != nil {
					t.Fatalf("conservation: %v", err)
				}
				if cr.Scale == nil {
					t.Fatal("elastic run returned no scale outcome")
				}
				if cr.Scale.ScaleOuts == 0 {
					t.Error("flash crowd provoked no scale-out; lifecycle not exercised")
				}
				if cr.Scale.Peak > 4 || len(cr.Views) > 1000 {
					t.Errorf("peak %d outside bounds", cr.Scale.Peak)
				}
				if len(cr.Scale.Nodes) != len(cr.Views) {
					t.Errorf("%d lifecycle spans for %d views", len(cr.Scale.Nodes), len(cr.Views))
				}
				for i, sp := range cr.Scale.Nodes {
					if sp.State != autoscale.Retired {
						t.Errorf("node %d finished in state %v, want retired", i, sp.State)
					}
					if !(sp.ProvisionedAt <= sp.ClosedAt && sp.ClosedAt <= sp.RetiredAt) {
						t.Errorf("node %d span out of order: %+v", i, sp)
					}
					// ActiveAt is 0 only for a node canceled during warm-up,
					// which must then have served nothing.
					if sp.ActiveAt == 0 && i >= 1 && cr.Views[i].Routed != 0 {
						t.Errorf("node %d never active but routed %d tasks", i, cr.Views[i].Routed)
					}
					if sp.ActiveAt != 0 && !(sp.ProvisionedAt <= sp.ActiveAt && sp.ActiveAt <= sp.ClosedAt) {
						t.Errorf("node %d active span out of order: %+v", i, sp)
					}
				}
				dropped := 0
				for _, r := range cr.Recs {
					if r.Dropped {
						dropped++
					}
				}
				if dropped == 0 {
					t.Error("queue6 admission under a flash crowd produced no drops")
				}
			})
		}
	}
}

// TestElasticTenancyConservation runs class-aware fleet-wide admission under
// scaling and checks the tenancy ledger end to end: every task has a final
// outcome, outcome agrees with the record's Dropped bit, and per-class
// offered = served + shed + evicted.
func TestElasticTenancyConservation(t *testing.T) {
	const n, nClasses = 96, 3
	tasks := clusterTestTasks(t, n)
	cfg := clusterTestConfig()
	arrivals := serve.FlashCrowd{BaseRate: 32e3, SpikeRate: 2e6,
		SpikeAt: 500_000, SpikeDur: 1_000_000, Seed: 4}.Times(n)
	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = i % nClasses
	}
	horizon := arrivals[n-1] + 1
	classes := tenancy.DefaultClasses(nClasses, 64e3, 1_000_000, horizon, 11, -1)

	for _, be := range clusterBackends() {
		t.Run(be.key, func(t *testing.T) {
			adm := tenancy.NewAdmission(tenancy.AdmitWFQ, classes, arrivals, classOf, 8, true)
			co := ClusterOpenLoop{
				Arrivals:  arrivals,
				Classes:   classOf,
				Policy:    cluster.LeastOutstanding{},
				AdmitTask: adm.AdmitTask,
				Scaler:    elasticTestScaler("reactive", 1, 4),
			}
			_, cr := be.cluster(tasks, co, cfg)

			if err := cr.CheckConservation(); err != nil {
				t.Fatalf("fleet conservation: %v", err)
			}
			served := make([]int, nClasses)
			shed := make([]int, nClasses)
			evicted := make([]int, nClasses)
			for ti, o := range adm.Outcomes() {
				c := classOf[ti]
				switch o {
				case tenancy.Served:
					served[c]++
				case tenancy.Shed:
					shed[c]++
				case tenancy.Evicted:
					evicted[c]++
				default:
					t.Fatalf("task %d left pending", ti)
				}
				if dropped := o != tenancy.Served; dropped != cr.Recs[ti].Dropped {
					t.Errorf("task %d: outcome %v but record dropped=%v", ti, o, cr.Recs[ti].Dropped)
				}
			}
			for c := 0; c < nClasses; c++ {
				offered := 0
				for _, cc := range classOf {
					if cc == c {
						offered++
					}
				}
				if served[c]+shed[c]+evicted[c] != offered {
					t.Errorf("class %d leaked: offered %d = served %d + shed %d + evicted %d",
						c, offered, served[c], shed[c], evicted[c])
				}
			}
		})
	}
}

// TestElasticDeterministicRepeat: identical elastic runs must agree on
// everything — records, routing, views, and the scale-event log itself.
func TestElasticDeterministicRepeat(t *testing.T) {
	const n = 96
	tasks := clusterTestTasks(t, n)
	cfg := clusterTestConfig()
	arrivals := serve.FlashCrowd{BaseRate: 32e3, SpikeRate: 2e6,
		SpikeAt: 500_000, SpikeDur: 1_000_000, Seed: 6}.Times(n)

	for _, be := range clusterBackends() {
		t.Run(be.key, func(t *testing.T) {
			run := func() (Result, ClusterRun) {
				co := ClusterOpenLoop{Arrivals: arrivals, Policy: cluster.NewRoundRobin(),
					Scaler: elasticTestScaler("predictive", 1, 4)}
				return be.cluster(tasks, co, cfg)
			}
			res1, cr1 := run()
			res2, cr2 := run()
			if res1 != res2 {
				t.Errorf("results diverged:\n %+v\n %+v", res1, res2)
			}
			if !reflect.DeepEqual(cr1.Recs, cr2.Recs) {
				t.Error("records diverged across identical elastic runs")
			}
			if !reflect.DeepEqual(cr1.NodeOf, cr2.NodeOf) {
				t.Error("routing diverged across identical elastic runs")
			}
			if !reflect.DeepEqual(cr1.Views, cr2.Views) {
				t.Error("views diverged across identical elastic runs")
			}
			if !reflect.DeepEqual(cr1.Scale, cr2.Scale) {
				t.Error("scale outcomes diverged across identical elastic runs")
			}
		})
	}
}

// TestElasticWarmupDelaysDispatch: no task may be routed to a node before
// that node's warm-up elapsed — the Submit instant of everything a scale-out
// node served must be at or past its ActiveAt.
func TestElasticWarmupDelaysDispatch(t *testing.T) {
	const n = 96
	tasks := clusterTestTasks(t, n)
	cfg := clusterTestConfig()
	arrivals := serve.FlashCrowd{BaseRate: 32e3, SpikeRate: 2e6,
		SpikeAt: 500_000, SpikeDur: 1_000_000, Seed: 8}.Times(n)

	for _, be := range clusterBackends() {
		t.Run(be.key, func(t *testing.T) {
			co := ClusterOpenLoop{Arrivals: arrivals, Policy: cluster.LeastOutstanding{},
				Scaler: elasticTestScaler("reactive", 1, 4)}
			_, cr := be.cluster(tasks, co, cfg)
			if cr.Scale.ScaleOuts == 0 {
				t.Fatal("no scale-out to check warm-up against")
			}
			for ti, nd := range cr.NodeOf {
				sp := cr.Scale.Nodes[nd]
				if cr.Recs[ti].Submit < sp.ActiveAt {
					t.Errorf("task %d routed to node %d at %v, before its ActiveAt %v",
						ti, nd, cr.Recs[ti].Submit, sp.ActiveAt)
				}
				if sp.ClosedAt > 0 && cr.Recs[ti].Submit > sp.ClosedAt {
					t.Errorf("task %d routed to node %d at %v, after it closed at %v",
						ti, nd, cr.Recs[ti].Submit, sp.ClosedAt)
				}
			}
		})
	}
}
