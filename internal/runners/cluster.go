package runners

import (
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// ClusterOpenLoop generalizes OpenLoop over a fleet: N identical devices
// (each with its own PCIe bus and scheme instance) share one engine and one
// virtual clock, a front-end dispatcher consumes the arrival stream, and a
// cluster.Policy routes each task to a node. Per-node admission reuses the
// serve.Policy shape and is consulted exactly where the single-device runner
// consults it — at the scheme's spawn point for Pagoda/HyperQ, at arrival
// for GeMTC — so a 1-node round-robin fleet reproduces the single-device
// records bit for bit (pinned by TestClusterOneNodeMatchesOpenLoop).
type ClusterOpenLoop struct {
	// Arrivals holds one nondecreasing virtual-cycle instant per task.
	Arrivals []sim.Time

	// Classes optionally assigns each task a workload class for
	// class-affine dispatch; nil means a single class.
	Classes []int

	// Nodes is the fleet size; 0 means 1.
	Nodes int

	// Policy routes arrivals; nil means round-robin. Policies are stateful —
	// hand each run a freshly constructed one.
	Policy cluster.Policy

	// Admit builds one fresh admission policy per node (serve.Policy.Admit
	// satisfies the returned signature); nil admits everything. Fresh-per-
	// node matters for stateful policies like the token bucket.
	Admit func() func(now sim.Time, inFlight int) bool

	// AdmitTask, when non-nil, takes precedence over Admit on every node:
	// one fleet-wide class-aware admission layer (internal/tenancy) shared
	// by all nodes, so per-class contracts and token buckets police the
	// fleet's aggregate intake rather than N independent copies. Nodes call
	// it at their own presentation point with node-local inFlight, exactly
	// where they would consult Admit.
	AdmitTask func(ti int, now sim.Time, inFlight int) bool

	// Scaler, when it asks for elasticity (Max > Min), replaces the fixed
	// Nodes fleet with an autoscale.Fleet: nodes warm up, drain and retire
	// under the configured scaling policy and the run reports an
	// autoscale.Outcome in ClusterRun.Scale. A disabled scaler (nil, or
	// Min == Max) normalizes to the fixed-fleet path — bit-identical to
	// pre-autoscale cluster runs, pinned by test.
	Scaler *autoscale.Config

	// Trace, when enabled, receives each completed task's wait/service spans
	// on a per-node track ("node00/serve-pagoda", ...). Track names are
	// zero-padded so lexicographic track ordering is node ordering.
	Trace *trace.Tracer
}

// normalize folds a disabled scaler into the fixed-fleet shape: Min == Max
// means a fleet that can never scale, which is exactly Nodes = Min on the
// original dispatcher — the delegation that makes "autoscaling off"
// reproduce fixed-fleet records bit for bit.
func (co ClusterOpenLoop) normalize() ClusterOpenLoop {
	if co.Scaler != nil && !co.Scaler.Enabled() {
		co.Nodes = co.Scaler.Min
		co.Scaler = nil
	}
	return co
}

func (co ClusterOpenLoop) nodes() int {
	if co.Nodes <= 0 {
		return 1
	}
	return co.Nodes
}

func (co ClusterOpenLoop) nodeAdmit() func(sim.Time, int) bool {
	if co.Admit == nil {
		return nil
	}
	return co.Admit()
}

// ClusterRun is the fleet-level outcome alongside the aggregate Result: the
// exact per-task records, each task's node assignment, and the per-node
// accounting the conservation invariant is checked against.
type ClusterRun struct {
	Recs   []serve.Record
	NodeOf []int              // node index per task
	Views  []cluster.NodeView // final per-node counters
	Names  []string           // per-node track/display names

	// Scale is the autoscaler's outcome — scale events, node lifecycle
	// spans and the node-seconds cost ledger. Nil for fixed-fleet runs.
	Scale *autoscale.Outcome
}

// CheckConservation verifies submitted = done + dropped per node and
// fleet-wide. Harness cells panic on an error so a leaking fleet can never
// publish numbers.
func (cr ClusterRun) CheckConservation() error {
	return cluster.CheckConservation(cr.Views, len(cr.Recs))
}

// NodeRecords returns the records of the tasks routed to one node, in task
// order — the per-node latency population.
func (cr ClusterRun) NodeRecords(node int) []serve.Record {
	var out []serve.Record
	for ti, n := range cr.NodeOf {
		if n == node {
			out = append(out, cr.Recs[ti])
		}
	}
	return out
}

// nodeTrack names one node's serve-span track; zero-padding keeps
// lexicographic order equal to node order for fleets up to 100 nodes.
func nodeTrack(node int, scheme string) string {
	return fmt.Sprintf("node%02d/serve-%s", node, scheme)
}

// addClusterServeSpans exports one node's wait/service decomposition onto
// its own track, spans named by global task index (deterministic order).
func addClusterServeSpans(tr *trace.Tracer, track string, recs []serve.Record, nodeOf []int, node int) {
	if !tr.Enabled() {
		return
	}
	for ti, r := range recs {
		if nodeOf[ti] != node || r.Dropped {
			continue
		}
		tr.Add(trace.Span{Name: trace.SpanName("wait", int64(ti)), Cat: "wait",
			Track: track, Start: r.Submit, End: r.Start})
		tr.Add(trace.Span{Name: trace.SpanName("service", int64(ti)), Cat: "service",
			Track: track, Start: r.Start, End: r.Done})
	}
}

// elasticNode is the contract a scheme-backed node offers the shared elastic
// fleet engine beyond cluster.Node: access to the embedded ledger base (for
// hooking admission and completion) and its device metrics at the run's end.
type elasticNode interface {
	cluster.Node
	base() *nodeBase
	devMetrics(end sim.Time) (occupancy, issueUtil float64)
}

// runElasticCluster is the shared elastic fleet engine behind every scheme's
// autoscaled cluster path: an autoscale.Fleet manages nodes built on demand
// by mk, an ElasticDispatcher routes each arrival over the currently
// dispatchable subset, and a controller process steps the lifecycle (warm-up
// promotion, drain retirement, scale decisions) at the scaler's interval.
// Scale-out provisions a node whose engine processes spawn mid-run — legal
// on the event engine, same mechanism as HyperQ's waiter procs — and
// scale-in reuses Node.Close, so draining is the scheme's own drain path.
func runElasticCluster(tasks []workloads.TaskDef, co ClusterOpenLoop, cfg Config,
	scheme string, mk func(eng *sim.Engine, name string, recs []serve.Record) elasticNode) (Result, ClusterRun) {
	eng := sim.New()
	recs := make([]serve.Record, len(tasks))
	var elastics []elasticNode
	var fleet *autoscale.Fleet
	fleet, err := autoscale.NewFleet(eng, *co.Scaler, func(id int) cluster.Node {
		n := mk(eng, fmt.Sprintf("node%02d", id), recs)
		b := n.base()
		b.admitTask = co.AdmitTask
		// Completions feed the scaler's rolling-p99 signal; recs[ti] is fully
		// stamped before noteDone fires (the noteDone contract).
		b.onDone = func(ti int) { fleet.NoteLatency(recs[ti].Done - recs[ti].Submit) }
		elastics = append(elastics, n)
		return n
	})
	if err != nil {
		panic(fmt.Sprintf("runners: %v", err))
	}
	eng.Spawn("autoscaler", func(p *sim.Proc) {
		for !fleet.Closed() {
			p.Sleep(fleet.Interval())
			fleet.Step(p.Now())
		}
	})
	nodeOf := make([]int, len(tasks))
	cluster.ElasticDispatcher{Arrivals: co.Arrivals, Classes: co.Classes, Policy: co.Policy, Fleet: fleet}.
		Spawn(eng, recs, nodeOf)
	end := eng.Run()
	fleet.Finish(end)

	res := openLoopResult(end, recs)
	cr := ClusterRun{Recs: recs, NodeOf: nodeOf, Views: fleet.Views(),
		Names: make([]string, len(elastics))}
	var occ, iu float64
	for i, n := range elastics {
		cr.Names[i] = nodeTrack(i, scheme)
		o, u := n.devMetrics(end)
		occ += o
		iu += u
		addClusterServeSpans(co.Trace, cr.Names[i], recs, nodeOf, i)
	}
	res.Occupancy = occ / float64(len(elastics))
	res.IssueUtil = iu / float64(len(elastics))
	out := fleet.Outcome()
	cr.Scale = &out
	return res, cr
}

// nodeBase carries the accounting and admission state every backend shares.
// All fields are touched only under the engine baton.
type nodeBase struct {
	name      string
	view      cluster.NodeView
	admit     func(sim.Time, int) bool
	admitTask func(int, sim.Time, int) bool // fleet-wide, takes precedence
	onDone    func(ti int)                  // completion hook (elastic fleets)
	admitted  int
	completed int
	closed    bool
}

func (n *nodeBase) Name() string           { return n.name }
func (n *nodeBase) View() cluster.NodeView { return n.view }
func (n *nodeBase) base() *nodeBase        { return n }

// admitNow consults the fleet-wide task-aware layer first, then the node's
// own policy — the same precedence OpenLoop.admit applies on one device.
func (n *nodeBase) admitNow(ti int, t sim.Time) bool {
	if n.admitTask != nil {
		return n.admitTask(ti, t, n.admitted-n.completed)
	}
	return n.admit == nil || n.admit(t, n.admitted-n.completed)
}

// noteDone records one task completion in the ledger; the scheme backend
// must have stamped recs[ti].Done first, so the hook sees final records.
func (n *nodeBase) noteDone(ti int) {
	n.completed++
	n.view.Done++
	if n.onDone != nil {
		n.onDone(ti)
	}
}

// ---------------------------------------------------------------------------
// Pagoda backend

// pagodaNode is one Pagoda runtime behind the dispatcher. Its feeder procs
// play the single-device runner's spawner threads: tasks are dealt to
// feeders round-robin in routing order (the fleet analogue of
// splitRoundRobin), each feeder spawns continuously through its own stream,
// and the last feeder to drain shuts the runtime down.
type pagodaNode struct {
	nodeBase
	sys     *system
	rt      *core.Runtime
	recs    []serve.Record
	tasks   []workloads.TaskDef
	cfg     Config
	queues  [][]int      // per-feeder FIFO, dealt by routing order
	more    []sim.Signal // one wake signal per feeder
	streams []*cuda.Stream

	idxOf      map[core.TaskID]int
	outBytes   map[core.TaskID]int
	finished   int
	allSpawned bool
}

func newPagodaNode(eng *sim.Engine, name string, tasks []workloads.TaskDef,
	recs []serve.Record, admit func(sim.Time, int) bool, cfg Config) *pagodaNode {
	n := &pagodaNode{
		nodeBase: nodeBase{name: name, admit: admit},
		sys:      newSystemOn(eng, cfg),
		recs:     recs,
		tasks:    tasks,
		cfg:      cfg,
		idxOf:    map[core.TaskID]int{},
		outBytes: map[core.TaskID]int{},
	}
	n.rt = core.NewRuntime(n.sys.ctx, core.DefaultConfig())
	n.rt.OnTaskDone = func(id core.TaskID, _, sched, end sim.Time) {
		ti, ok := n.idxOf[id]
		if !ok {
			return
		}
		delete(n.idxOf, id)
		n.recs[ti].Start = sched
		n.recs[ti].Done = end
		n.noteDone(ti)
	}

	if cfg.CopyData {
		n.rt.OnHostObservedDone = func(id core.TaskID) {
			if b := n.outBytes[id]; b > 0 {
				delete(n.outBytes, id)
				n.sys.bus.TransferAsync(pcie.DeviceToHost, b, nil)
			}
		}
		eng.Spawn(name+"-collector", func(p *sim.Proc) {
			for {
				p.Sleep(64_000) // 64 us polling cadence, as in the single-device runner
				if n.allSpawned && len(n.outBytes) == 0 {
					return
				}
				n.rt.PollCompletions(p)
			}
		})
	}

	spawners := cfg.Spawners
	if spawners <= 0 {
		spawners = 1
	}
	n.queues = make([][]int, spawners)
	n.more = make([]sim.Signal, spawners)
	n.streams = make([]*cuda.Stream, spawners)
	for f := 0; f < spawners; f++ {
		f := f
		n.streams[f] = n.sys.ctx.NewStream()
		eng.Spawn(fmt.Sprintf("%s-feeder%d", name, f), func(p *sim.Proc) { n.feed(p, f) })
	}
	return n
}

func (n *pagodaNode) Submit(_ *sim.Proc, ti int) {
	f := n.view.Routed % len(n.queues)
	n.view.Routed++
	n.queues[f] = append(n.queues[f], ti)
	n.more[f].Broadcast()
}

func (n *pagodaNode) Close() {
	n.closed = true
	for f := range n.more {
		n.more[f].Broadcast()
	}
}

func (n *pagodaNode) feed(p *sim.Proc, f int) {
	for {
		for len(n.queues[f]) == 0 && !n.closed {
			n.more[f].Wait(p)
		}
		if len(n.queues[f]) == 0 {
			break
		}
		ti := n.queues[f][0]
		n.queues[f] = n.queues[f][1:]
		td := &n.tasks[ti]
		if !n.admitNow(ti, p.Now()) {
			n.recs[ti].Dropped = true
			n.view.Dropped++
			continue
		}
		n.admitted++
		n.view.Started++
		if n.cfg.CopyData && td.InBytes > 0 {
			n.streams[f].MemcpyH2DPipelined(p, td.InBytes, nil)
		}
		id := n.rt.TaskSpawn(p, core.TaskSpec{
			Threads:   td.Threads,
			Blocks:    td.Blocks,
			SharedMem: td.SharedMem,
			Sync:      td.Sync,
			ArgBytes:  td.ArgBytes,
			Kernel:    func(tc *core.TaskCtx) { td.Kernel(tc) },
		})
		n.idxOf[id] = ti
		if n.cfg.CopyData && td.OutBytes > 0 {
			n.outBytes[id] = td.OutBytes
		}
	}
	n.finished++
	if n.finished < len(n.queues) {
		return
	}
	// The last feeder to finish drains the node.
	n.allSpawned = true
	n.rt.WaitAll(p)
	for _, st := range n.streams {
		st.Sync(p)
	}
	n.rt.Shutdown(p)
}

func (n *pagodaNode) devMetrics(end sim.Time) (float64, float64) {
	return n.rt.TaskWarpOccupancy(end), n.sys.dev.Metrics().IssueUtil
}

// RunPagodaCluster executes timed arrivals on a Pagoda fleet. Per-task Start
// is the instant the owning node's scheduler warp picked the task up and
// Done its device-side completion, exactly as in RunPagodaOpenLoop.
func RunPagodaCluster(tasks []workloads.TaskDef, co ClusterOpenLoop, cfg Config) (Result, ClusterRun) {
	co = co.normalize()
	if co.Scaler.Enabled() {
		return runElasticCluster(tasks, co, cfg, "pagoda",
			func(eng *sim.Engine, name string, recs []serve.Record) elasticNode {
				return newPagodaNode(eng, name, tasks, recs, co.nodeAdmit(), cfg)
			})
	}
	eng := sim.New()
	recs := make([]serve.Record, len(tasks))
	nodes := make([]*pagodaNode, co.nodes())
	fleet := make([]cluster.Node, len(nodes))
	for i := range nodes {
		nodes[i] = newPagodaNode(eng, fmt.Sprintf("node%02d", i), tasks, recs, co.nodeAdmit(), cfg)
		nodes[i].admitTask = co.AdmitTask
		fleet[i] = nodes[i]
	}
	nodeOf := make([]int, len(tasks))
	cluster.Dispatcher{Arrivals: co.Arrivals, Classes: co.Classes, Policy: co.Policy, Nodes: fleet}.
		Spawn(eng, recs, nodeOf)
	end := eng.Run()

	res := openLoopResult(end, recs)
	cr := ClusterRun{Recs: recs, NodeOf: nodeOf,
		Views: make([]cluster.NodeView, len(nodes)), Names: make([]string, len(nodes))}
	var occ, iu float64
	for i, n := range nodes {
		cr.Views[i] = n.View()
		cr.Names[i] = nodeTrack(i, "pagoda")
		occ += n.rt.TaskWarpOccupancy(end)
		iu += n.sys.dev.Metrics().IssueUtil
		addClusterServeSpans(co.Trace, cr.Names[i], recs, nodeOf, i)
	}
	res.Occupancy = occ / float64(len(nodes))
	res.IssueUtil = iu / float64(len(nodes))
	return res, cr
}

// ---------------------------------------------------------------------------
// HyperQ backend

// hyperqNode is one 32-stream HyperQ device behind the dispatcher. Its
// single feeder proc plays the single-device runner's host thread: tasks
// launch in routing order, each on the stream picked by its node-local
// sequence number (the fleet analogue of streams[ti%32] — dropped tasks
// still consume a sequence slot, preserving the single-device pattern).
type hyperqNode struct {
	nodeBase
	eng     *sim.Engine
	sys     *system
	recs    []serve.Record
	tasks   []workloads.TaskDef
	cfg     Config
	streams []*cuda.Stream
	queue   []int
	seq     int // node-local arrival sequence, advanced per pop
	more    sim.Signal
	doneSig sim.Signal
	endAt   sim.Time // instant this node drained (streams synced)
}

const hyperqNodeStreams = 32

// newKernelPerTaskNode builds one kernel-per-task node: a static device for
// HyperQ (zero Oversub), a virtualized one for zorua.
func newKernelPerTaskNode(eng *sim.Engine, name string, tasks []workloads.TaskDef,
	recs []serve.Record, admit func(sim.Time, int) bool, cfg Config, ov gpu.Oversub) *hyperqNode {
	n := &hyperqNode{
		nodeBase: nodeBase{name: name, admit: admit},
		eng:      eng,
		recs:     recs,
		tasks:    tasks,
		cfg:      cfg,
		streams:  make([]*cuda.Stream, hyperqNodeStreams),
	}
	n.sys = newSystemOn(eng, cfg)
	if ov.Enabled() {
		n.sys.dev.Virtualize(ov)
	}
	for i := range n.streams {
		n.streams[i] = n.sys.ctx.NewStream()
	}
	eng.Spawn(name+"-host", n.host)
	return n
}

func (n *hyperqNode) Submit(_ *sim.Proc, ti int) {
	n.view.Routed++
	n.queue = append(n.queue, ti)
	n.more.Broadcast()
}

func (n *hyperqNode) Close() {
	n.closed = true
	n.more.Broadcast()
}

func (n *hyperqNode) finish(ti int) {
	n.recs[ti].Done = n.eng.Now()
	n.noteDone(ti)
	n.doneSig.Broadcast()
}

func (n *hyperqNode) host(p *sim.Proc) {
	for {
		for len(n.queue) == 0 && !n.closed {
			n.more.Wait(p)
		}
		if len(n.queue) == 0 {
			break
		}
		ti := n.queue[0]
		n.queue = n.queue[1:]
		seq := n.seq
		n.seq++
		td := &n.tasks[ti]
		if !n.admitNow(ti, p.Now()) {
			n.recs[ti].Dropped = true
			n.view.Dropped++
			continue
		}
		n.admitted++
		n.view.Started++
		stream := n.streams[seq%hyperqNodeStreams]
		if n.cfg.CopyData && td.InBytes > 0 {
			stream.MemcpyH2D(p, td.InBytes, nil)
		}
		h := stream.LaunchHooked(p, hyperqSpec(td), func() {
			n.recs[ti].Start = n.eng.Now()
		})
		if n.cfg.CopyData && td.OutBytes > 0 {
			// The output copy sits right behind its kernel in the stream FIFO;
			// its delivery is the task's completion.
			stream.MemcpyD2H(p, td.OutBytes, func() { n.finish(ti) })
		} else {
			// No output copy: completion is the kernel's own end, observed by
			// a waiter process.
			n.eng.Spawn(fmt.Sprintf("%s-wait%d", n.name, ti), func(wp *sim.Proc) {
				h.Wait(wp)
				n.finish(ti)
			})
		}
	}
	for n.completed < n.admitted {
		n.doneSig.Wait(p)
	}
	for _, st := range n.streams {
		st.Sync(p)
	}
	n.endAt = n.eng.Now()
}

// RunHyperQCluster executes timed arrivals on a HyperQ fleet: each admitted
// task runs as its own kernel over the owning node's 32 streams. Start/Done
// semantics match RunHyperQOpenLoop.
func RunHyperQCluster(tasks []workloads.TaskDef, co ClusterOpenLoop, cfg Config) (Result, ClusterRun) {
	return runKernelPerTaskCluster(tasks, co, cfg, gpu.Oversub{}, "hyperq")
}

func (n *hyperqNode) devMetrics(sim.Time) (float64, float64) {
	m := n.sys.dev.Metrics()
	return m.AvgOccupancy, m.IssueUtil
}

// runKernelPerTaskCluster is the shared kernel-per-task fleet engine behind
// RunHyperQCluster and RunZoruaCluster; scheme names the per-node trace
// tracks ("node00/serve-<scheme>").
func runKernelPerTaskCluster(tasks []workloads.TaskDef, co ClusterOpenLoop, cfg Config,
	ov gpu.Oversub, scheme string) (Result, ClusterRun) {
	co = co.normalize()
	if co.Scaler.Enabled() {
		return runElasticCluster(tasks, co, cfg, scheme,
			func(eng *sim.Engine, name string, recs []serve.Record) elasticNode {
				return newKernelPerTaskNode(eng, name, tasks, recs, co.nodeAdmit(), cfg, ov)
			})
	}
	eng := sim.New()
	recs := make([]serve.Record, len(tasks))
	nodes := make([]*hyperqNode, co.nodes())
	fleet := make([]cluster.Node, len(nodes))
	for i := range nodes {
		nodes[i] = newKernelPerTaskNode(eng, fmt.Sprintf("node%02d", i), tasks, recs, co.nodeAdmit(), cfg, ov)
		nodes[i].admitTask = co.AdmitTask
		fleet[i] = nodes[i]
	}
	nodeOf := make([]int, len(tasks))
	cluster.Dispatcher{Arrivals: co.Arrivals, Classes: co.Classes, Policy: co.Policy, Nodes: fleet}.
		Spawn(eng, recs, nodeOf)
	eng.Run()

	// The fleet's elapsed time is the last node's drain instant, matching the
	// single-device runner's endTime capture.
	var end sim.Time
	for _, n := range nodes {
		if n.endAt > end {
			end = n.endAt
		}
	}
	res := openLoopResult(end, recs)
	cr := ClusterRun{Recs: recs, NodeOf: nodeOf,
		Views: make([]cluster.NodeView, len(nodes)), Names: make([]string, len(nodes))}
	var occ, iu float64
	for i, n := range nodes {
		cr.Views[i] = n.View()
		cr.Names[i] = nodeTrack(i, scheme)
		m := n.sys.dev.Metrics()
		occ += m.AvgOccupancy
		iu += m.IssueUtil
		addClusterServeSpans(co.Trace, cr.Names[i], recs, nodeOf, i)
	}
	res.Occupancy = occ / float64(len(nodes))
	res.IssueUtil = iu / float64(len(nodes))
	return res, cr
}

// ---------------------------------------------------------------------------
// GeMTC backend

// gemtcNode is one GeMTC SuperKernel device behind the dispatcher. Admission
// is consulted at the arrival instant (the single-device submit proc never
// blocks), admitted tasks join the node's host-side FIFO, and a dispatch
// proc launches a SuperKernel over the queue's contents whenever the device
// is free — batch semantics identical to RunGeMTCOpenLoop.
type gemtcNode struct {
	nodeBase
	sys     *system
	recs    []serve.Record
	tasks   []workloads.TaskDef
	cfg     Config
	pending []int
	more    sim.Signal
	endAt   sim.Time // instant this node drained (last batch done)
}

func newGeMTCNode(eng *sim.Engine, name string, tasks []workloads.TaskDef,
	recs []serve.Record, admit func(sim.Time, int) bool, cfg Config) *gemtcNode {
	n := &gemtcNode{
		nodeBase: nodeBase{name: name, admit: admit},
		sys:      newSystemOn(eng, cfg),
		recs:     recs,
		tasks:    tasks,
		cfg:      cfg,
	}
	eng.Spawn(name+"-dispatch", n.dispatch)
	return n
}

func (n *gemtcNode) Submit(p *sim.Proc, ti int) {
	n.view.Routed++
	if !n.admitNow(ti, p.Now()) {
		n.recs[ti].Dropped = true
		n.view.Dropped++
		return
	}
	n.admitted++
	n.pending = append(n.pending, ti)
	n.more.Broadcast()
}

func (n *gemtcNode) Close() {
	n.closed = true
	n.more.Broadcast()
}

func (n *gemtcNode) dispatch(p *sim.Proc) {
	batchCap := n.cfg.GeMTCBatch
	if batchCap <= 0 {
		batchCap = 1536
	}
	workerThreads := n.cfg.GeMTCThreads
	if workerThreads <= 0 {
		for i := range n.tasks {
			if n.tasks[i].Threads > workerThreads {
				workerThreads = n.tasks[i].Threads
			}
		}
	}
	if workerThreads == 0 {
		workerThreads = 128
	}
	occ := gpu.TheoreticalOccupancy(n.sys.dev.Cfg, gpu.LaunchSpec{
		BlockThreads: workerThreads, RegsPerThread: 32,
	})
	workers := occ.TBsPerSMM * n.sys.dev.Cfg.NumSMMs
	queueSite := gpu.NewAtomicSite(n.sys.eng, n.sys.dev.Cfg.AtomicGlobalLatency)

	stream := n.sys.ctx.NewStream()
	for {
		for len(n.pending) == 0 && !n.closed {
			n.more.Wait(p)
		}
		if len(n.pending) == 0 {
			break
		}
		b := len(n.pending)
		if b > batchCap {
			b = batchCap
		}
		batch := append([]int(nil), n.pending[:b]...)
		n.pending = n.pending[b:]
		n.view.Started += len(batch)
		launchStart := n.sys.eng.Now()

		desc := 64 * len(batch)
		in := 0
		for _, ti := range batch {
			if n.cfg.CopyData {
				in += n.tasks[ti].InBytes
			}
		}
		stream.MemcpyH2D(p, desc+in, nil)

		next := 0                       // single FIFO queue head
		claimed := make([]int, workers) // per-worker claimed batch position
		h := stream.Launch(p, gpu.LaunchSpec{
			Name:          "SuperKernel",
			GridDim:       workers,
			BlockThreads:  workerThreads,
			RegsPerThread: 32,
			Fn: func(c *gpu.Ctx) {
				for {
					if c.WarpInBlock == 0 {
						c.AtomicGlobal(queueSite)
						if next < len(batch) {
							claimed[c.BlockIdx] = next
							next++
						} else {
							claimed[c.BlockIdx] = -1
						}
					}
					c.SyncBlock()
					idx := claimed[c.BlockIdx]
					if idx < 0 {
						return
					}
					td := &n.tasks[batch[idx]]
					td.Kernel(&warpAdapter{
						g:        c,
						threads:  workerThreads,
						blocks:   1,
						blockIdx: 0,
						warpInBl: c.WarpInBlock,
					})
					c.SyncBlock()
				}
			},
		})
		h.Wait(p)

		out := 0
		for _, ti := range batch {
			if n.cfg.CopyData {
				out += n.tasks[ti].OutBytes
			}
		}
		if out > 0 {
			stream.MemcpyD2H(p, out, nil)
			stream.Sync(p)
		}
		batchEnd := n.sys.eng.Now()
		for _, ti := range batch {
			n.recs[ti].Start = launchStart
			n.recs[ti].Done = batchEnd
			n.noteDone(ti)
		}
	}
	n.endAt = n.sys.eng.Now()
}

func (n *gemtcNode) devMetrics(sim.Time) (float64, float64) {
	m := n.sys.dev.Metrics()
	return m.AvgOccupancy, m.IssueUtil
}

// RunGeMTCCluster executes timed arrivals on a GeMTC fleet. A task's Start
// is its batch's launch on the owning node and its Done the whole batch's
// end — the Fig. 10 batch property, now per node.
func RunGeMTCCluster(tasks []workloads.TaskDef, co ClusterOpenLoop, cfg Config) (Result, ClusterRun) {
	co = co.normalize()
	if co.Scaler.Enabled() {
		return runElasticCluster(tasks, co, cfg, "gemtc",
			func(eng *sim.Engine, name string, recs []serve.Record) elasticNode {
				return newGeMTCNode(eng, name, tasks, recs, co.nodeAdmit(), cfg)
			})
	}
	eng := sim.New()
	recs := make([]serve.Record, len(tasks))
	nodes := make([]*gemtcNode, co.nodes())
	fleet := make([]cluster.Node, len(nodes))
	for i := range nodes {
		nodes[i] = newGeMTCNode(eng, fmt.Sprintf("node%02d", i), tasks, recs, co.nodeAdmit(), cfg)
		nodes[i].admitTask = co.AdmitTask
		fleet[i] = nodes[i]
	}
	nodeOf := make([]int, len(tasks))
	cluster.Dispatcher{Arrivals: co.Arrivals, Classes: co.Classes, Policy: co.Policy, Nodes: fleet}.
		Spawn(eng, recs, nodeOf)
	eng.Run()

	// The fleet's elapsed time is the last node's drain instant, matching the
	// single-device runner's endTime capture.
	var end sim.Time
	for _, n := range nodes {
		if n.endAt > end {
			end = n.endAt
		}
	}
	res := openLoopResult(end, recs)
	cr := ClusterRun{Recs: recs, NodeOf: nodeOf,
		Views: make([]cluster.NodeView, len(nodes)), Names: make([]string, len(nodes))}
	var occ, iu float64
	for i, n := range nodes {
		cr.Views[i] = n.View()
		cr.Names[i] = nodeTrack(i, "gemtc")
		m := n.sys.dev.Metrics()
		occ += m.AvgOccupancy
		iu += m.IssueUtil
		addClusterServeSpans(co.Trace, cr.Names[i], recs, nodeOf, i)
	}
	res.Occupancy = occ / float64(len(nodes))
	res.IssueUtil = iu / float64(len(nodes))
	return res, cr
}
