package runners

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/workloads"
)

// BenchmarkCluster times one 4-node fleet run per GPU scheme — the
// cluster-scaling sweep's unit of work (256 tasks round-robined across four
// full 24-SMM devices on a single engine).
func BenchmarkCluster(b *testing.B) {
	tasks := workloads.Mandelbrot().Make(workloads.Options{Tasks: 256, Threads: 128, Seed: 1})
	cfg := DefaultConfig()
	cfg.SMMs = 24
	arr := serve.Poisson{Rate: 4 * 64e3, Seed: 1}.Times(len(tasks))
	for _, be := range clusterBackends() {
		be := be
		b.Run(be.key, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				co := ClusterOpenLoop{Arrivals: arr, Nodes: 4, Policy: cluster.NewRoundRobin()}
				_, cr := be.cluster(tasks, co, cfg)
				if err := cr.CheckConservation(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
