package runners

import (
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// RunFusion executes the task set as a single statically fused kernel
// (§6.3): every subtask becomes one threadblock of a monolithic launch with
// a uniform thread count (paper: 256) and uniform resource allocation — the
// shared-memory and register budget of the hungriest subtask ("the resource
// usage in static fusion schemes gets limited by the requirements of the
// most resource-hungry task"). All inputs are copied up front and all
// outputs after the kernel, and every task's latency is the whole kernel's
// makespan — fusion "performs the best if all tasks start and end together".
func RunFusion(tasks []workloads.TaskDef, cfg Config) Result {
	sys := newSystem(cfg)

	fusedThreads := cfg.FusedThreads
	if fusedThreads <= 0 {
		fusedThreads = 256
	}
	// Uniform resources: the hungriest subtask sets the allocation for all.
	maxShared, maxRegs := 0, 32
	for i := range tasks {
		if tasks[i].SharedMem > maxShared {
			maxShared = tasks[i].SharedMem
		}
		if tasks[i].Regs > maxRegs {
			maxRegs = tasks[i].Regs
		}
	}

	var sharedPerTB [][]byte
	if maxShared > 0 {
		sharedPerTB = make([][]byte, len(tasks))
		for b := range sharedPerTB {
			sharedPerTB[b] = make([]byte, maxShared)
		}
	}

	var endTime sim.Time
	var avgLat, maxLat sim.Time
	sys.eng.Spawn("fusion-host", func(p *sim.Proc) {
		stream := sys.ctx.NewStream()
		start := sys.eng.Now()
		in, out := 0, 0
		for i := range tasks {
			if cfg.CopyData {
				in += tasks[i].InBytes
				out += tasks[i].OutBytes
			}
		}
		if in > 0 {
			stream.MemcpyH2D(p, in, nil)
		}
		h := stream.Launch(p, gpu.LaunchSpec{
			Name:          "fused",
			GridDim:       len(tasks),
			BlockThreads:  fusedThreads,
			SharedPerTB:   maxShared,
			RegsPerThread: maxRegs,
			Fn: func(c *gpu.Ctx) {
				td := &tasks[c.BlockIdx]
				var shared []byte
				if sharedPerTB != nil && td.SharedMem > 0 {
					shared = sharedPerTB[c.BlockIdx][:td.SharedMem]
				}
				// The fused kernel gives every subtask the same, fixed
				// thread count regardless of its input size.
				td.Kernel(&warpAdapter{
					g:        c,
					threads:  fusedThreads,
					blocks:   1,
					blockIdx: 0,
					warpInBl: c.WarpInBlock,
					shared:   shared,
				})
			},
		})
		h.Wait(p)
		if out > 0 {
			stream.MemcpyD2H(p, out, nil)
			stream.Sync(p)
		}
		endTime = sys.eng.Now()
		avgLat = endTime - start // every task completes with the kernel
		maxLat = avgLat
	})
	sys.eng.Run()

	m := sys.dev.Metrics()
	return Result{
		Elapsed:    endTime,
		AvgLatency: avgLat,
		MaxLatency: maxLat,
		// Every task completes with the kernel: the distribution is a point
		// mass and all percentiles equal the makespan.
		P50Latency: avgLat,
		P90Latency: avgLat,
		P99Latency: avgLat,
		Occupancy:  m.AvgOccupancy,
		IssueUtil:  m.IssueUtil,
		Tasks:      len(tasks),
	}
}
