// Package runners executes a stream of narrow tasks under each of the
// paper's five execution schemes and reports comparable timing:
//
//   - Pagoda          — the core runtime (continuous spawning, warp-level
//     scheduling); optionally its Fig. 11 "Pagoda-Batching" ablation.
//   - CUDA-HyperQ     — one kernel per task over 32 streams, bounded by the
//     32-connection HyperQ limit.
//   - GeMTC           — a persistent SuperKernel with a single FIFO task
//     queue and batch-based launching (Krieder et al., HPDC'14).
//   - Static fusion   — all tasks fused into one monolithic kernel with
//     uniform per-subtask resources (§6.3).
//   - PThreads        — a 20-core CPU worker pool (plus a sequential mode).
//
// Every run builds its own engine/device/bus, so runs are independent and
// deterministic. Timing covers data copies and compute, as in the paper's
// Fig. 5 ("the measurement of execution time contains both data copy and
// compute times"); Config.CopyData=false reproduces the compute-only
// comparisons of Fig. 7 and Table 5.
package runners

import (
	"sort"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Config parameterizes a run.
type Config struct {
	SMMs     int  // device size (default 24)
	Spawners int  // host threads feeding tasks (paper: 2)
	CopyData bool // include per-task input/output PCIe copies

	// GeMTCBatch is the FIFO batch size (tasks per SuperKernel launch).
	GeMTCBatch int
	// GeMTCThreads is the SuperKernel worker threadblock width; 0 uses each
	// task's own thread count (the paper's "modified" GeMTC).
	GeMTCThreads int

	// FusedThreads is the uniform per-subtask thread count under static
	// fusion (paper: 256).
	FusedThreads int

	// PagodaBatching enables the Fig. 11 ablation.
	PagodaBatching bool

	// Oversub parameterizes the zorua scheme's dynamic resource
	// virtualization (per-resource oversubscription factors and spill
	// price). Only the zorua runners read it; the zero value means the
	// scheme default (gpu.DefaultOversub), while explicit unity factors
	// make zorua admit exactly like the static hardware model.
	Oversub gpu.Oversub

	// CPUCores sizes the PThreads pool (paper: 20).
	CPUCores int
}

// DefaultConfig returns the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		SMMs:         24,
		Spawners:     2,
		CopyData:     true,
		GeMTCBatch:   384, // GeMTC's worker count at 128 threads/TB on 24 SMMs
		FusedThreads: 256,
		CPUCores:     20,
	}
}

// Result reports one run.
type Result struct {
	Elapsed    sim.Time // cycles (1 cycle = 1 ns) from first spawn to all done
	AvgLatency sim.Time // mean per-task spawn-to-completion latency
	MaxLatency sim.Time
	// P50Latency/P90Latency/P99Latency are exact nearest-rank order
	// statistics over the per-task latency vector — the tail the mean hides.
	// Zero for schemes without a per-task latency notion (sequential CPU).
	P50Latency sim.Time
	P90Latency sim.Time
	P99Latency sim.Time
	Occupancy  float64 // mean resident-warp occupancy over the run
	IssueUtil  float64 // fraction of issue slots used
	Tasks      int
}

// fillLatencies computes the latency aggregates — mean, max and the exact
// p50/p90/p99 order statistics — from a per-task latency vector. The input
// is not mutated (a copy is sorted). No-op on an empty vector.
func (r *Result) fillLatencies(lats []sim.Time) {
	if len(lats) == 0 {
		return
	}
	sorted := append([]sim.Time(nil), lats...)
	sort.Float64s(sorted)
	var sum float64
	for _, l := range sorted {
		sum += l
	}
	r.AvgLatency = sum / float64(len(sorted))
	r.P50Latency = serve.Percentile(sorted, 0.50)
	r.P90Latency = serve.Percentile(sorted, 0.90)
	r.P99Latency = serve.Percentile(sorted, 0.99)
	r.MaxLatency = sorted[len(sorted)-1]
}

// Seconds converts the elapsed cycles to seconds.
func (r Result) Seconds() float64 { return r.Elapsed / 1e9 }

// system bundles the per-run simulation stack.
type system struct {
	eng *sim.Engine
	dev *gpu.Device
	bus *pcie.Bus
	ctx *cuda.Context
}

func newSystem(cfg Config) *system { return newSystemOn(sim.New(), cfg) }

// newSystemOn builds one device + bus + context stack on an existing engine.
// Single-device runs own their engine (newSystem); cluster runs place N of
// these stacks on one shared engine so the whole fleet advances under a
// single virtual clock.
func newSystemOn(eng *sim.Engine, cfg Config) *system {
	gcfg := gpu.TitanX()
	if cfg.SMMs > 0 {
		gcfg.NumSMMs = cfg.SMMs
	}
	dev := gpu.NewDevice(eng, gcfg)
	bus := pcie.New(eng, pcie.Default())
	ctx := cuda.NewContext(eng, dev, bus, cuda.DefaultConfig())
	return &system{eng: eng, dev: dev, bus: bus, ctx: ctx}
}

// splitRoundRobin deals tasks to n spawners preserving arrival order within
// each spawner.
func splitRoundRobin(tasks []workloads.TaskDef, n int) [][]int {
	parts := make([][]int, n)
	for i := range tasks {
		parts[i%n] = append(parts[i%n], i)
	}
	return parts
}
