package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDisabledTracerIsNoop(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	nilT.Add(Span{Name: "x"}) // must not panic
	if nilT.Len() != 0 {
		t.Fatal("nil tracer recorded")
	}
	zero := &Tracer{}
	zero.Add(Span{Name: "x"})
	if zero.Len() != 0 {
		t.Fatal("zero tracer recorded")
	}
}

func TestSpansSorted(t *testing.T) {
	tr := New()
	tr.Add(Span{Name: "b", Start: 100, End: 200})
	tr.Add(Span{Name: "a", Start: 10, End: 50})
	s := tr.Spans()
	if s[0].Name != "a" || s[1].Name != "b" {
		t.Fatalf("spans not sorted by start: %+v", s)
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	tr := New()
	tr.Add(Span{Name: "x", Start: 100, End: 50})
	if s := tr.Spans()[0]; s.End != s.Start {
		t.Fatalf("negative duration not clamped: %+v", s)
	}
}

func TestChromeJSONWellFormed(t *testing.T) {
	tr := New()
	tr.Add(Span{Name: "task 1", Cat: "task", Track: "MTB00", Start: 1000, End: 3000,
		Args: map[string]string{"k": "v"}})
	tr.Add(Span{Name: "kernel", Cat: "kernel", Track: "kernels", Start: 0, End: 5000})
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// 2 thread_name metadata + 2 events.
	if len(arr) != 4 {
		t.Fatalf("got %d records, want 4", len(arr))
	}
	if !strings.Contains(buf.String(), `"ph":"X"`) {
		t.Fatal("no complete events emitted")
	}
	// Timestamps are microseconds: the 1000-cycle start becomes 1.
	found := false
	for _, rec := range arr {
		if rec["name"] == "task 1" {
			found = true
			if rec["ts"].(float64) != 1 {
				t.Errorf("ts = %v, want 1 (us)", rec["ts"])
			}
			if rec["dur"].(float64) != 2 {
				t.Errorf("dur = %v, want 2 (us)", rec["dur"])
			}
		}
	}
	if !found {
		t.Fatal("task span missing from JSON")
	}
}

func TestSummary(t *testing.T) {
	tr := New()
	tr.Add(Span{Cat: "task", Start: 0, End: 10})
	tr.Add(Span{Cat: "task", Start: 5, End: 25})
	tr.Add(Span{Cat: "kernel", Start: 0, End: 100})
	sum := tr.Summary()
	if sum["task"].Count != 2 || sum["task"].Busy != 30 {
		t.Fatalf("task summary = %+v", sum["task"])
	}
	if sum["kernel"].Count != 1 || sum["kernel"].Busy != 100 {
		t.Fatalf("kernel summary = %+v", sum["kernel"])
	}
}

func TestSpanName(t *testing.T) {
	if got := SpanName("task", 42); got != "task 42" {
		t.Fatalf("SpanName = %q", got)
	}
}
