// Package trace collects execution timelines from the simulated GPU and the
// Pagoda runtime and exports them in the Chrome trace-event JSON format
// (chrome://tracing, Perfetto), giving the reproduction the profiler-style
// visibility (nvprof/nvvp) the paper's authors used to analyze runs.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Span is one completed interval on a named track.
type Span struct {
	Name  string            // e.g. "task 42", "kernel conv"
	Cat   string            // "task", "kernel", "threadblock", "copy"
	Track string            // e.g. "MTB12", "SMM3", "host0", "PCIe-H2D"
	Start float64           // cycles (ns at 1 GHz)
	End   float64           // cycles
	Args  map[string]string // extra attributes
}

// Tracer accumulates spans; the zero value is a disabled tracer.
type Tracer struct {
	enabled bool
	spans   []Span
}

// New returns an enabled tracer.
func New() *Tracer { return &Tracer{enabled: true} }

// Enabled reports whether the tracer records (nil-safe).
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// Add records a completed span (nil-safe no-op when disabled).
func (t *Tracer) Add(s Span) {
	if !t.Enabled() {
		return
	}
	if s.End < s.Start {
		s.End = s.Start
	}
	t.spans = append(t.spans, s)
}

// Spans returns the recorded spans sorted by start time.
func (t *Tracer) Spans() []Span {
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len returns the recorded span count.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// chromeEvent is the trace-event JSON schema ("X" = complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteChromeJSON renders the trace as a Chrome trace-event array. Tracks
// map to thread lanes; cycle timestamps become microseconds (1 cycle = 1 ns).
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	spans := t.Spans()
	// Assign stable tid per track, ordered by name.
	trackNames := map[string]bool{}
	for _, s := range spans {
		trackNames[s.Track] = true
	}
	ordered := make([]string, 0, len(trackNames))
	for n := range trackNames {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	tids := map[string]int{}
	for i, n := range ordered {
		tids[n] = i + 1
	}

	var out []any
	for name, tid := range tids {
		out = append(out, chromeMeta{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range spans {
		out = append(out, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   s.Start / 1e3,
			Dur:  (s.End - s.Start) / 1e3,
			Pid:  1,
			Tid:  tids[s.Track],
			Args: s.Args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// CatStats aggregates the spans of one category: how many and how much busy
// time (cycles).
type CatStats struct {
	Count int
	Busy  float64
}

// Summary returns per-category span counts and busy time, for quick
// programmatic inspection.
func (t *Tracer) Summary() map[string]CatStats {
	sum := map[string]CatStats{}
	for _, s := range t.spans {
		e := sum[s.Cat]
		e.Count++
		e.Busy += s.End - s.Start
		sum[s.Cat] = e
	}
	return sum
}

// SummaryByTrack returns per-track, per-category aggregates — the grouping a
// merged multi-node trace is read by (tracks are "node00/serve-pagoda", ...,
// so sorting track names groups by node). Use Tracks for the stable order.
func (t *Tracer) SummaryByTrack() map[string]map[string]CatStats {
	sum := map[string]map[string]CatStats{}
	for _, s := range t.spans {
		per := sum[s.Track]
		if per == nil {
			per = map[string]CatStats{}
			sum[s.Track] = per
		}
		e := per[s.Cat]
		e.Count++
		e.Busy += s.End - s.Start
		per[s.Cat] = e
	}
	return sum
}

// Tracks returns the recorded track names sorted lexicographically — the
// same stable order WriteChromeJSON assigns thread lanes in.
func (t *Tracer) Tracks() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range t.spans {
		if !seen[s.Track] {
			seen[s.Track] = true
			out = append(out, s.Track)
		}
	}
	sort.Strings(out)
	return out
}

// SpanName formats a numbered span name.
func SpanName(prefix string, id int64) string { return fmt.Sprintf("%s %d", prefix, id) }
