package core

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Runtime is the Pagoda runtime system: the host-side TaskTable mirror, the
// spawn/wait API of Table 1, and the persistent MasterKernel on the device.
type Runtime struct {
	Eng *sim.Engine
	Ctx *cuda.Context
	Cfg Config

	mtbs         []*MTB
	host         [][]hostEntry // CPU TaskTable mirror [col][row]
	gens         []int64       // per-slot generation counters (TaskID construction)
	totalEntries int

	spawnStream *cuda.Stream // pipelined per-entry parameter copies

	kernel   *gpu.Kernel // the MasterKernel
	shutdown bool

	// Spawning state.
	nextTaskSeq      int64
	lastSpawned      TaskID
	lastFlushed      TaskID
	rrCursor         int // round-robin scan position over flattened entries
	spawned          int
	batchOutstanding int

	// Device-side completion accounting (read by the host only through
	// copy-backs; exposed directly only in Stats, after the run).
	deviceCompleted int
	hostCompleted   int

	latSum, schedDelaySum float64
	latMax                sim.Time
	latCount              int
	latencies             []sim.Time // per-task spawn-to-completion, completion order
	busyWarpIntegral      float64

	// CopyBacks counts forced TaskTable copy-back transactions (lazy
	// aggregate updates diagnostics).
	CopyBacks int

	// Trace, when set, records one span per completed task (track = MTB).
	Trace *trace.Tracer

	// failedTasks counts task kernels that panicked under
	// Config.IsolateKernelPanics.
	failedTasks int

	// OnTaskFault, when set with IsolateKernelPanics, receives each faulting
	// task's ID and panic value.
	OnTaskFault func(TaskID, any)

	// OnHostObservedDone, when set, is invoked (on the host side) the first
	// time a copy-back reveals that the given task finished. Applications
	// use it to chain completion work — e.g. enqueueing the task's output
	// copy — exactly when the CPU actually learns of completion under the
	// lazy-update protocol.
	OnHostObservedDone func(TaskID)

	// OnTaskDone, when set, is invoked the instant the last executor warp of
	// a task finishes, with the device-side truth of its timeline: spawn
	// (TaskSpawn call), sched (scheduler warp picked it up) and end. Unlike
	// OnHostObservedDone it fires at device time regardless of copy-backs —
	// the measurement hook of the open-loop serving layer, where latency is
	// defined by completion, not by when the host happens to poll.
	OnTaskDone func(id TaskID, spawn, sched, end sim.Time)
}

// NewRuntime builds the runtime and launches the MasterKernel, which
// acquires every warp of the device (§4.1). One MTB column of the TaskTable
// is created per MTB.
func NewRuntime(ctx *cuda.Context, cfg Config) *Runtime {
	cfg.validate()
	rt := &Runtime{Eng: ctx.Eng, Ctx: ctx, Cfg: cfg}
	numMTBs := cfg.MTBsPerSMM * ctx.Dev.Cfg.NumSMMs
	rt.totalEntries = numMTBs * cfg.Rows
	rt.mtbs = make([]*MTB, numMTBs)
	rt.host = make([][]hostEntry, numMTBs)
	rt.gens = make([]int64, rt.totalEntries)
	for i := range rt.mtbs {
		rt.mtbs[i] = newMTB(rt, i)
		rt.host[i] = make([]hostEntry, cfg.Rows)
	}
	rt.spawnStream = ctx.NewStream()
	rt.launchMasterKernel()
	return rt
}

// launchMasterKernel starts the daemon kernel: MTBsPerSMM x NumSMMs
// threadblocks of 32 warps each, 32 KB static shared memory, registers
// capped for 100% occupancy.
func (rt *Runtime) launchMasterKernel() {
	cfg := rt.Cfg
	spec := gpu.LaunchSpec{
		Name:          "MasterKernel",
		GridDim:       len(rt.mtbs),
		BlockThreads:  cfg.WarpsPerMTB * rt.Ctx.Dev.Cfg.ThreadsPerWarp,
		SharedPerTB:   cfg.SharedPerMTB,
		RegsPerThread: cfg.RegsPerThread,
		Fn: func(c *gpu.Ctx) {
			m := rt.mtbs[c.BlockIdx]
			if c.WarpInBlock == 0 {
				m.schedulerLoop(c)
			} else {
				m.executorLoop(c, c.WarpInBlock-1)
			}
		},
	}
	occ := gpu.TheoreticalOccupancy(rt.Ctx.Dev.Cfg, spec)
	if occ.TBsPerSMM < cfg.MTBsPerSMM {
		panic(fmt.Sprintf("core: MasterKernel config reaches only %d TBs/SMM, need %d", occ.TBsPerSMM, cfg.MTBsPerSMM))
	}
	rt.kernel = rt.Ctx.LaunchPersistent(spec)
}

// MasterKernel returns the persistent kernel handle.
func (rt *Runtime) MasterKernel() *gpu.Kernel { return rt.kernel }

// NumMTBs returns the MTB (and TaskTable column) count.
func (rt *Runtime) NumMTBs() int { return len(rt.mtbs) }

func (rt *Runtime) entrySize(spec TaskSpec) int {
	ab := spec.ArgBytes
	if ab <= 0 {
		ab = 64
	}
	return rt.Cfg.EntryBytes + ab
}

func (rt *Runtime) validateSpec(spec TaskSpec) {
	warpSize := rt.Ctx.Dev.Cfg.ThreadsPerWarp
	maxThreads := rt.Cfg.ExecutorWarpsPerMTB() * warpSize
	switch {
	case spec.Kernel == nil:
		panic("core: TaskSpawn with nil kernel")
	case spec.Threads <= 0 || spec.Blocks <= 0:
		panic(fmt.Sprintf("core: TaskSpawn with threads=%d blocks=%d", spec.Threads, spec.Blocks))
	case spec.Threads > maxThreads:
		panic(fmt.Sprintf("core: task threadblock of %d threads exceeds the %d executor lanes of an MTB", spec.Threads, maxThreads))
	case spec.SharedMem < 0 || spec.SharedMem > rt.Cfg.SharedPerMTB:
		panic(fmt.Sprintf("core: task shared memory %d exceeds the %d-byte MTB arena", spec.SharedMem, rt.Cfg.SharedPerMTB))
	}
}

// TaskSpawn launches a task onto Pagoda from the CPU (Table 1). It is
// non-blocking with respect to task execution: it returns as soon as the
// entry copy is enqueued, with the TaskID used by Wait/Check.
//
// Protocol (§4.2.2, Fig. 2): find an entry whose CPU-side ready field is 0,
// write the parameters, set ready to -1 for the very first task or to the
// TaskID of the previously spawned task otherwise, clear the sched flag, and
// copy the entry to the GPU in a single transaction.
func (rt *Runtime) TaskSpawn(host *sim.Proc, spec TaskSpec) TaskID {
	rt.validateSpec(spec)
	if rt.Cfg.Batching && rt.batchOutstanding >= rt.Cfg.BatchSize {
		rt.WaitAll(host)
		rt.batchOutstanding = 0
	}

	ref := rt.findFreeEntry(host)
	g := ref.globalIndex(rt.Cfg.Rows)
	id := taskIDFor(rt.gens[g], g, rt.totalEntries)
	rt.gens[g]++

	he := &rt.host[ref.col][ref.row]
	he.id = id
	he.h2dInFlight = true
	if rt.nextTaskSeq == 0 {
		he.ready = readyCopied // the very first task: ready = -1
	} else {
		he.ready = int64(rt.lastSpawned) // pipelining pointer to the previous task
	}
	rt.nextTaskSeq++
	rt.lastSpawned = id
	rt.spawned++
	rt.batchOutstanding++

	readyVal := he.ready
	spawnTime := rt.Eng.Now()
	host.Sleep(200) // host-side work: fill the CPU entry, bump stream

	dst := rt.mtbs[ref.col].entries[ref.row]
	rt.spawnStream.MemcpyH2DPipelined(host, rt.entrySize(spec), func() {
		// The entry materializes in device memory: parameters plus state.
		dst.id = id
		dst.spec = spec
		dst.ready = readyVal
		dst.sched = false
		dst.spawnTime = spawnTime
		dst.doneCtr = 0
		he.h2dInFlight = false
		rt.mtbs[ref.col].activity.Broadcast()
	})
	return id
}

// findFreeEntry scans the CPU mirror round-robin for a free entry, striping
// consecutive spawns across *columns* so the work spreads over all MTBs
// (each column belongs to one MTB; filling a column before moving on would
// leave most of the MasterKernel idle at low task counts). When all CPU-side
// ready fields are non-zero it forces the lazy aggregate copy-back of the
// whole table (§4.2, "Lazy Aggregate TaskTable Updates") and retries,
// sleeping between attempts while the GPU catches up.
func (rt *Runtime) findFreeEntry(host *sim.Proc) entryRef {
	cols := len(rt.mtbs)
	for {
		for i := 0; i < rt.totalEntries; i++ {
			s := (rt.rrCursor + i) % rt.totalEntries
			ref := entryRef{col: s % cols, row: s / cols}
			he := &rt.host[ref.col][ref.row]
			if he.ready == readyFree && !he.h2dInFlight {
				rt.rrCursor = (s + 1) % rt.totalEntries
				return ref
			}
		}
		rt.flushLast(host)
		rt.copyBackAll(host)
		if rt.anyFree() {
			continue
		}
		host.Sleep(rt.Cfg.WaitPollInterval)
	}
}

func (rt *Runtime) anyFree() bool {
	for c := range rt.host {
		for r := range rt.host[c] {
			he := &rt.host[c][r]
			if he.ready == readyFree && !he.h2dInFlight {
				return true
			}
		}
	}
	return false
}

// copyBackAll models one aggregated D2H copy of the entire TaskTable and
// refreshes every CPU-side ready field from the device.
func (rt *Runtime) copyBackAll(host *sim.Proc) {
	rt.Ctx.MemcpyD2HSync(host, rt.totalEntries*rt.Cfg.EntryBytes)
	rt.CopyBacks++
	for c, col := range rt.mtbs {
		for r, de := range col.entries {
			rt.applyCopyBack(c, r, de)
		}
	}
}

// copyBackEntry copies one entry's state back (wait/check paths).
func (rt *Runtime) copyBackEntry(host *sim.Proc, ref entryRef) {
	rt.Ctx.MemcpyD2HSync(host, rt.Cfg.EntryBytes)
	rt.CopyBacks++
	rt.applyCopyBack(ref.col, ref.row, rt.mtbs[ref.col].entries[ref.row])
}

func (rt *Runtime) applyCopyBack(c, r int, de *deviceEntry) {
	he := &rt.host[c][r]
	if he.h2dInFlight {
		return // the spawn copy has not arrived; the device view is stale
	}
	if de.id == he.id {
		if he.ready != readyFree && de.ready == readyFree {
			rt.hostCompleted++
			if rt.OnHostObservedDone != nil {
				rt.OnHostObservedDone(he.id)
			}
		}
		he.ready = de.ready
	}
}

// flushLast implements the spawner-idle rule of §4.2.2: copy back the status
// of the last spawned task and, if it is still (-1, 0), set it to (1, 1) so
// the final task in a burst gets scheduled without a successor.
func (rt *Runtime) flushLast(host *sim.Proc) {
	// Capture the flush target before any yield: the spawner may spawn more
	// tasks while this proc sleeps inside the copies below, and crediting the
	// flush to whatever lastSpawned has become by then would mark a
	// never-flushed task as flushed — wedging it forever when no later spawn
	// arrives to resolve its pipelining pointer (sparse open-loop arrivals).
	target := rt.lastSpawned
	if target < firstTaskID || target == rt.lastFlushed {
		return
	}
	ref := slotForTaskID(target, rt.Cfg.Rows, rt.totalEntries)
	he := &rt.host[ref.col][ref.row]
	if he.h2dInFlight || he.id != target {
		return
	}
	de := rt.mtbs[ref.col].entries[ref.row]
	rt.Ctx.MemcpyD2HSync(host, rt.Cfg.EntryBytes)
	rt.CopyBacks++
	switch {
	case de.id != target:
		// Stale device view; retry on the next flush.
	case de.ready == readyCopied && !de.sched:
		rt.Ctx.MemcpyH2DSync(host, rt.Cfg.EntryBytes)
		if de.ready == readyCopied && !de.sched { // still unscheduled on arrival
			de.ready = readyScheduling
			de.sched = true
			rt.mtbs[ref.col].activity.Broadcast()
		}
		rt.lastFlushed = target
	case de.ready == readyScheduling || de.ready == readyFree:
		// Already scheduling or finished: no flush needed.
		rt.lastFlushed = target
	default:
		// The entry still holds its pipelining pointer (ready = prev TaskID):
		// the GPU scheduler has not resolved it yet. Retry on the next flush.
	}
	rt.applyCopyBack(ref.col, ref.row, de)
}

// taskDone consults only the CPU mirror (the host cannot see device memory
// without a copy).
func (rt *Runtime) taskDone(id TaskID) bool {
	ref := slotForTaskID(id, rt.Cfg.Rows, rt.totalEntries)
	he := &rt.host[ref.col][ref.row]
	if he.id != id {
		return true // the entry was recycled: the task completed long ago
	}
	return he.ready == readyFree && !he.h2dInFlight
}

// PollCompletions forces one aggregated TaskTable copy-back so the host
// observes recent completions (firing OnHostObservedDone). Applications that
// chain work off completions — e.g. per-task output copies — call this
// periodically from a collector thread, paying the copy-back's PCIe cost.
func (rt *Runtime) PollCompletions(host *sim.Proc) {
	rt.flushLast(host)
	rt.copyBackAll(host)
}

// Wait blocks until the given task is over (Table 1's wait). The laziness of
// TaskTable updates would block it forever, so it forces a copy-back of the
// involved entry every WaitPollInterval.
func (rt *Runtime) Wait(host *sim.Proc, id TaskID) {
	for {
		if rt.taskDone(id) {
			return
		}
		rt.flushLast(host)
		ref := slotForTaskID(id, rt.Cfg.Rows, rt.totalEntries)
		rt.copyBackEntry(host, ref)
		if rt.taskDone(id) {
			return
		}
		host.Sleep(rt.Cfg.WaitPollInterval)
	}
}

// Check returns the status of the task (Table 1's check): true if done.
func (rt *Runtime) Check(host *sim.Proc, id TaskID) bool {
	if rt.taskDone(id) {
		return true
	}
	rt.flushLast(host)
	rt.copyBackEntry(host, slotForTaskID(id, rt.Cfg.Rows, rt.totalEntries))
	return rt.taskDone(id)
}

// WaitAll blocks until every task spawned so far is over (Table 1's
// waitAll), using aggregated copy-backs.
func (rt *Runtime) WaitAll(host *sim.Proc) {
	for {
		rt.flushLast(host)
		rt.copyBackAll(host)
		if rt.allIdle() {
			return
		}
		host.Sleep(rt.Cfg.WaitPollInterval)
	}
}

func (rt *Runtime) allIdle() bool {
	for c := range rt.host {
		for r := range rt.host[c] {
			he := &rt.host[c][r]
			if he.ready != readyFree || he.h2dInFlight {
				return false
			}
		}
	}
	return true
}

// taskFinished records completion metrics; called by the last executor warp
// of a task.
func (rt *Runtime) taskFinished(e *deviceEntry) {
	rt.deviceCompleted++
	if rt.Trace.Enabled() {
		rt.Trace.Add(trace.Span{
			Name: trace.SpanName("task", int64(e.id)), Cat: "task",
			Track: fmt.Sprintf("MTB%02d", e.col),
			Start: e.spawnTime, End: e.endTime,
			Args: map[string]string{"sched_delay_ns": fmt.Sprintf("%.0f", e.schedTime-e.spawnTime)},
		})
	}
	lat := e.endTime - e.spawnTime
	rt.latSum += lat
	rt.schedDelaySum += e.schedTime - e.spawnTime
	if lat > rt.latMax {
		rt.latMax = lat
	}
	rt.latCount++
	rt.latencies = append(rt.latencies, lat)
	if rt.OnTaskDone != nil {
		rt.OnTaskDone(e.id, e.spawnTime, e.schedTime, e.endTime)
	}
}

// Latencies returns every completed task's spawn-to-completion latency in
// completion order. The slice is owned by the runtime: callers must not
// mutate it (sort a copy for percentiles).
func (rt *Runtime) Latencies() []sim.Time { return rt.latencies }

// Shutdown terminates the MasterKernel: the host writes a termination flag
// to device memory and waits for the daemon to exit.
func (rt *Runtime) Shutdown(host *sim.Proc) {
	rt.spawnStream.Sync(host)
	rt.Ctx.MemcpyH2DSync(host, 8)
	rt.shutdown = true
	for _, m := range rt.mtbs {
		m.wakeAll()
	}
	rt.kernel.WaitDone(host)
}

// Stats summarizes a run.
type Stats struct {
	Spawned       int
	Completed     int
	Failed        int      // task kernels that panicked (IsolateKernelPanics)
	AvgLatency    sim.Time // mean spawn-to-completion, cycles
	MaxLatency    sim.Time
	AvgSchedDelay sim.Time // mean spawn-to-scheduled
	CopyBacks     int
}

// TaskWarpOccupancy returns the achieved occupancy of *task work*: the mean
// fraction of the device's warp slots occupied by executing task warps over
// the first `elapsed` cycles. (The MasterKernel itself always holds 100% of
// the warps; this metric measures how much of that capacity carried tasks,
// which is what Table 5 reports.)
func (rt *Runtime) TaskWarpOccupancy(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return rt.busyWarpIntegral / (float64(rt.Ctx.Dev.Cfg.TotalWarps()) * elapsed)
}

// Stats returns run statistics. Completed reflects device-side truth and is
// intended for use after WaitAll/Shutdown.
func (rt *Runtime) Stats() Stats {
	s := Stats{
		Spawned:   rt.spawned,
		Completed: rt.deviceCompleted,
		Failed:    rt.failedTasks,
		CopyBacks: rt.CopyBacks,
	}
	if rt.latCount > 0 {
		s.AvgLatency = rt.latSum / float64(rt.latCount)
		s.AvgSchedDelay = rt.schedDelaySum / float64(rt.latCount)
		s.MaxLatency = rt.latMax
	}
	return s
}
