package core

import (
	"fmt"

	"repro/internal/sim"
)

// TaskID identifies a spawned task. IDs start at 2 so that the TaskTable
// ready field can encode the four states of Fig. 2 in one integer:
//
//	 0  — entry free / task done
//	-1  — parameters copied to the table
//	 1  — task is being considered for scheduling
//	>1  — a TaskID: "the task whose parameters were copied in the previous
//	      memcpy transaction" (the pipelining pointer of §4.2.1)
type TaskID int64

const (
	readyFree       int64  = 0
	readyCopied     int64  = -1
	readyScheduling int64  = 1
	firstTaskID     TaskID = 2
)

// TaskKernel is Pagoda device code: a __device__ function executed by each
// executor warp assigned to the task.
type TaskKernel func(tc *TaskCtx)

// TaskSpec mirrors the taskSpawn arguments of Table 1: threads per
// threadblock, threadblock count, shared-memory bytes per threadblock, the
// sync flag, the kernel pointer and its arguments.
type TaskSpec struct {
	Threads   int // threads per threadblock
	Blocks    int // number of threadblocks
	SharedMem int // bytes of shared memory per threadblock (0 = none)
	Sync      bool
	Kernel    TaskKernel
	Args      any
	// ArgBytes sizes the kernel-argument payload for PCIe accounting
	// (defaults to 64 when zero).
	ArgBytes int
}

func (s TaskSpec) warpsPerTB(warpSize int) int {
	return (s.Threads + warpSize - 1) / warpSize
}

func (s TaskSpec) totalWarps(warpSize int) int {
	return s.Blocks * s.warpsPerTB(warpSize)
}

// deviceEntry is the GPU-resident TaskTable entry. The host never reads it
// directly; it learns its state through explicit copy-backs (the mirrors may
// disagree at any instant, exactly as in Fig. 2b).
type deviceEntry struct {
	col, row int

	ready int64
	sched bool
	id    TaskID
	spec  TaskSpec

	doneCtr int // remaining warps; the last one frees the entry

	spawnTime sim.Time
	schedTime sim.Time
	endTime   sim.Time
}

// hostEntry is the CPU-side mirror of one entry.
type hostEntry struct {
	ready       int64
	id          TaskID
	h2dInFlight bool // spawn copy enqueued but not yet delivered
}

// entryRef addresses one TaskTable slot.
type entryRef struct{ col, row int }

// globalIndex returns the flattened entry index.
func (r entryRef) globalIndex(rows int) int { return r.col*rows + r.row }

// taskIDFor builds a TaskID for generation gen of the given slot. The slot
// index is recoverable as (id-2) mod totalEntries, which is how the GPU
// scheduler resolves the pipelining pointer without a side table.
func taskIDFor(gen int64, global, totalEntries int) TaskID {
	return firstTaskID + TaskID(gen*int64(totalEntries)+int64(global))
}

// slotForTaskID inverts taskIDFor.
func slotForTaskID(id TaskID, rows, totalEntries int) entryRef {
	g := int(int64(id-firstTaskID) % int64(totalEntries))
	return entryRef{col: g / rows, row: g % rows}
}

func (e *deviceEntry) String() string {
	return fmt.Sprintf("entry[%d,%d]{id=%d ready=%d sched=%v}", e.col, e.row, e.id, e.ready, e.sched)
}
