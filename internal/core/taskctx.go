package core

import "repro/internal/gpu"

// TaskCtx is the device-side API visible to a Pagoda task kernel (the GPU
// rows of Table 1). A task kernel is invoked once per executor warp assigned
// to it; lane-level code runs through ForEachLane, whose argument is getTid().
type TaskCtx struct {
	gc    *gpu.Ctx
	mtb   *MTB
	entry *deviceEntry

	warpID   int // warp index within the whole task
	barID    int
	smOffset int
	smSize   int
}

// Args returns the kernel arguments passed to TaskSpawn.
func (t *TaskCtx) Args() any { return t.entry.spec.Args }

// Threads returns the threads per threadblock of this task.
func (t *TaskCtx) Threads() int { return t.entry.spec.Threads }

// Blocks returns the task's threadblock count.
func (t *TaskCtx) Blocks() int { return t.entry.spec.Blocks }

// warpsPerTB returns warps per threadblock.
func (t *TaskCtx) warpsPerTB() int { return t.entry.spec.warpsPerTB(t.gc.WarpSize()) }

// BlockIdx returns which of the task's threadblocks this warp belongs to.
func (t *TaskCtx) BlockIdx() int { return t.warpID / t.warpsPerTB() }

// WarpInBlock returns this warp's index within its threadblock.
func (t *TaskCtx) WarpInBlock() int { return t.warpID % t.warpsPerTB() }

// ActiveLanes returns how many lanes of this warp map to threads (the last
// warp of a threadblock may be partial).
func (t *TaskCtx) ActiveLanes() int {
	remaining := t.entry.spec.Threads - t.WarpInBlock()*t.gc.WarpSize()
	if remaining >= t.gc.WarpSize() {
		return t.gc.WarpSize()
	}
	if remaining < 0 {
		return 0
	}
	return remaining
}

// ForEachLane invokes fn once per active lane with that lane's getTid()
// value — the thread ID within the threadblock, as in the paper's kernels.
func (t *TaskCtx) ForEachLane(fn func(tid int)) {
	base := t.WarpInBlock() * t.gc.WarpSize()
	for l := 0; l < t.ActiveLanes(); l++ {
		fn(base + l)
	}
}

// SyncBlock is the Table 1 syncBlock(): a sub-threadblock barrier over this
// task's threadblock, implemented with a PTX named barrier (§5.2). Tasks
// must set TaskSpec.Sync to use it.
func (t *TaskCtx) SyncBlock() {
	if t.warpsPerTB() <= 1 {
		return // a single warp runs in lockstep
	}
	if t.barID < 0 {
		panic("core: SyncBlock on a task spawned without the sync flag")
	}
	t.gc.NamedBarrier(t.mtb.bars[t.barID])
}

// Shared is getSMPtr(): the threadblock's slice of the MTB's shared-memory
// arena ("32-byte aligned char pointer"). It panics when the task requested
// no shared memory.
func (t *TaskCtx) Shared() []byte {
	if t.smSize == 0 {
		panic("core: Shared() on a task spawned without shared memory")
	}
	return t.mtb.arena[t.smOffset : t.smOffset+t.smSize]
}

// HasShared reports whether the task was spawned with shared memory.
func (t *TaskCtx) HasShared() bool { return t.smSize > 0 }

// --- cost-charging pass-throughs to the warp context ---

// Compute charges issue cycles under processor sharing.
func (t *TaskCtx) Compute(cycles float64) { t.gc.Compute(cycles) }

// GlobalRead models a warp-wide coalesced device-memory read of n bytes.
func (t *TaskCtx) GlobalRead(n int) { t.gc.GlobalRead(n) }

// GlobalWrite models a warp-wide coalesced device-memory write of n bytes.
func (t *TaskCtx) GlobalWrite(n int) { t.gc.GlobalWrite(n) }

// SharedRead models a shared-memory read of n bytes.
func (t *TaskCtx) SharedRead(n int) { t.gc.SharedRead(n) }

// SharedWrite models a shared-memory write of n bytes.
func (t *TaskCtx) SharedWrite(n int) { t.gc.SharedWrite(n) }

// WarpCtx exposes the raw warp context (diagnostics, advanced workloads).
func (t *TaskCtx) WarpCtx() *gpu.Ctx { return t.gc }
