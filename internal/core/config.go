// Package core implements Pagoda, the paper's contribution: a GPU runtime
// system that virtualizes GPU resources with a persistent MasterKernel and
// schedules narrow tasks at warp granularity.
//
// The package follows the paper's structure:
//
//   - TaskTable (§4.2): a CPU/GPU-mirrored table that lets the CPU spawn
//     tasks and the GPU schedule them simultaneously with minimal PCIe
//     handshaking, using the ready-field state machine of Fig. 2 and
//     pipelined single-memcpy spawning.
//   - MasterKernel (§4.1): 2 threadblocks (MTBs) of 1024 threads per SMM at
//     32 registers/thread — 100% occupancy. Warp 0 of each MTB is the
//     scheduler warp (Algorithm 1), warps 1..31 are executor warps.
//   - WarpTable (Table 2): per-MTB bookkeeping of executor warps, filled in
//     parallel by pSched (Algorithm 2).
//   - Shared-memory buddy allocator (§5.1) and sub-threadblock named
//     barriers (§5.2).
//
// Host-side API (Table 1): TaskSpawn, Wait, WaitAll, Check. Device-side API:
// TaskCtx.GetTid/ForEachLane, SyncBlock, Shared (getSMPtr).
package core

import (
	"repro/internal/gpu"
	"repro/internal/sim"
)

// Config holds the Pagoda runtime parameters. Defaults reproduce the paper's
// Titan X configuration.
type Config struct {
	// Rows is the number of TaskTable rows per MTB column ("Pagoda uses 32
	// TaskTable rows per MTB").
	Rows int
	// MTBsPerSMM is the number of MasterKernel threadblocks per SMM (2 on
	// the Titan X: 2 x 32 warps = all 64 warps).
	MTBsPerSMM int
	// WarpsPerMTB is the MTB width in warps (32: 1 scheduler + 31 executors).
	WarpsPerMTB int
	// SharedPerMTB is the shared-memory arena each MTB manages (32 KB).
	SharedPerMTB int
	// MinAllocBlock is the buddy allocator granularity (512 B).
	MinAllocBlock int
	// NumBarriers is the PTX named-barrier pool size per MTB (16).
	NumBarriers int
	// RegsPerThread is the MasterKernel register cap (-maxrregcount=32).
	RegsPerThread int

	// EntryBytes is the fixed TaskTable-entry size copied per spawn,
	// excluding kernel arguments.
	EntryBytes int

	// SchedulerWakeDelay models the average delay between device-memory
	// state becoming visible and the polling scheduler warp observing it.
	SchedulerWakeDelay sim.Time
	// ScanCost is the issue cost of one scheduler sweep over its column.
	ScanCost float64
	// WaitPollInterval is the host-side wait()/waitAll() timeout after which
	// a TaskTable copy-back is forced (§4.2, "these functions therefore use
	// a timeout").
	WaitPollInterval sim.Time

	// Batching, when true, disables continuous spawning: TaskSpawn blocks
	// new work until the previous batch of BatchSize tasks has completed.
	// This is the "Pagoda-Batching" ablation of Fig. 11.
	Batching  bool
	BatchSize int

	// IsolateKernelPanics makes a panicking task kernel fail only that task
	// (recorded in Stats.Failed and reported via Runtime.OnTaskFault)
	// instead of crashing the whole runtime. A warp whose kernel faults
	// mid-barrier can still wedge its threadblock, exactly as on real
	// hardware.
	IsolateKernelPanics bool
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Rows:               32,
		MTBsPerSMM:         2,
		WarpsPerMTB:        32,
		SharedPerMTB:       32 * 1024,
		MinAllocBlock:      512,
		NumBarriers:        16,
		RegsPerThread:      32,
		EntryBytes:         128,
		SchedulerWakeDelay: 250,
		ScanCost:           6,
		WaitPollInterval:   20000, // 20 us
		BatchSize:          1536,  // one full TaskTable
	}
}

// DefaultConfigFor adapts the default configuration to a device geometry:
// the MTB shared-memory arena shrinks so that MTBsPerSMM MasterKernel
// threadblocks still fit the SMM with room left for the scheduling
// structures (on a 48 KB/SMX Tesla K40 the arena drops to 16 KB; the Titan X
// keeps the paper's 32 KB).
func DefaultConfigFor(dev gpu.Config) Config {
	cfg := DefaultConfig()
	budget := dev.SharedPerSMM / cfg.MTBsPerSMM
	arena := cfg.SharedPerMTB
	for arena+arena/2 > budget && arena > 2*cfg.MinAllocBlock {
		arena /= 2 // keep ~1/3 of the budget for scheduling structures
	}
	if arena > dev.MaxSharedPerTB {
		arena = dev.MaxSharedPerTB
	}
	cfg.SharedPerMTB = arena
	return cfg
}

// ExecutorWarpsPerMTB returns WarpsPerMTB-1 (warp 0 is the scheduler).
func (c Config) ExecutorWarpsPerMTB() int { return c.WarpsPerMTB - 1 }

func (c Config) validate() {
	switch {
	case c.Rows <= 0, c.MTBsPerSMM <= 0, c.WarpsPerMTB < 2:
		panic("core: invalid Pagoda geometry")
	case c.NumBarriers <= 0:
		panic("core: need at least one named barrier")
	case c.SharedPerMTB < c.MinAllocBlock:
		panic("core: shared arena smaller than allocation granularity")
	}
}
