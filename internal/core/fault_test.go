package core

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/sim"
)

func faultSystem(t *testing.T) (*sim.Engine, *Runtime) {
	t.Helper()
	eng := sim.New()
	gcfg := gpu.TitanX()
	gcfg.NumSMMs = 1
	dev := gpu.NewDevice(eng, gcfg)
	bus := pcie.New(eng, pcie.Default())
	ctx := cuda.NewContext(eng, dev, bus, cuda.DefaultConfig())
	cfg := DefaultConfig()
	cfg.IsolateKernelPanics = true
	return eng, NewRuntime(ctx, cfg)
}

func TestFaultyKernelIsolated(t *testing.T) {
	eng, rt := faultSystem(t)
	var faults []TaskID
	rt.OnTaskFault = func(id TaskID, v any) { faults = append(faults, id) }
	healthy := 0
	var badID TaskID
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			i := i
			id := rt.TaskSpawn(p, TaskSpec{
				Threads: 32, Blocks: 1,
				Kernel: func(tc *TaskCtx) {
					tc.Compute(200)
					if i == 7 {
						panic("injected kernel fault")
					}
					healthy++
				},
			})
			if i == 7 {
				badID = id
			}
		}
		rt.WaitAll(p)
	})
	if healthy != 19 {
		t.Fatalf("healthy kernels ran = %d, want 19", healthy)
	}
	st := rt.Stats()
	if st.Completed != 20 {
		t.Fatalf("Completed = %d; a faulty task must still retire its entry", st.Completed)
	}
	if st.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", st.Failed)
	}
	if len(faults) != 1 || faults[0] != badID {
		t.Fatalf("fault hook got %v, want [%d]", faults, badID)
	}
}

func TestFaultsDoNotLeakResources(t *testing.T) {
	eng, rt := faultSystem(t)
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			rt.TaskSpawn(p, TaskSpec{
				Threads: 32, Blocks: 1, SharedMem: 4096,
				Kernel: func(tc *TaskCtx) {
					_ = tc.Shared()[0]
					panic("always faults")
				},
			})
		}
		rt.WaitAll(p)
	})
	if st := rt.Stats(); st.Failed != 30 || st.Completed != 30 {
		t.Fatalf("stats = %+v, want 30 failed and 30 retired", rt.Stats())
	}
	for _, m := range rt.mtbs {
		m.buddy.DrainPending()
		if m.buddy.Allocated() != 0 {
			t.Fatalf("MTB %d leaked %d bytes after faults", m.index, m.buddy.Allocated())
		}
		for id, used := range m.barInUse {
			if used {
				t.Fatalf("MTB %d leaked barrier %d", m.index, id)
			}
		}
	}
}
