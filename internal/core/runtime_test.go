package core

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// testSystem builds a small but complete Pagoda stack: engine, device, bus,
// CUDA context and runtime.
func testSystem(t *testing.T, smms int) (*sim.Engine, *Runtime) {
	t.Helper()
	eng := sim.New()
	gcfg := gpu.TitanX()
	gcfg.NumSMMs = smms
	dev := gpu.NewDevice(eng, gcfg)
	bus := pcie.New(eng, pcie.Default())
	ctx := cuda.NewContext(eng, dev, bus, cuda.DefaultConfig())
	rt := NewRuntime(ctx, DefaultConfig())
	return eng, rt
}

// runHost executes body as the host process, shuts the runtime down and
// drains the engine.
func runHost(t *testing.T, eng *sim.Engine, rt *Runtime, body func(p *sim.Proc)) sim.Time {
	t.Helper()
	var end sim.Time
	eng.Spawn("host", func(p *sim.Proc) {
		body(p)
		end = eng.Now()
		rt.Shutdown(p)
	})
	eng.Run()
	if !rt.MasterKernel().Finished() {
		t.Fatal("MasterKernel did not terminate after Shutdown")
	}
	return end
}

func TestSpawnAndWaitSingleTask(t *testing.T) {
	eng, rt := testSystem(t, 2)
	ran := 0
	runHost(t, eng, rt, func(p *sim.Proc) {
		id := rt.TaskSpawn(p, TaskSpec{
			Threads: 64, Blocks: 1,
			Kernel: func(tc *TaskCtx) {
				tc.Compute(100)
				tc.ForEachLane(func(tid int) { ran++ })
			},
		})
		rt.Wait(p, id)
	})
	if ran != 64 {
		t.Fatalf("lane executions = %d, want 64", ran)
	}
	s := rt.Stats()
	if s.Spawned != 1 || s.Completed != 1 {
		t.Fatalf("stats = %+v, want 1 spawned, 1 completed", s)
	}
}

func TestGetTidCoversTask(t *testing.T) {
	eng, rt := testSystem(t, 2)
	seen := map[int]int{} // tid -> count per block
	runHost(t, eng, rt, func(p *sim.Proc) {
		id := rt.TaskSpawn(p, TaskSpec{
			Threads: 96, Blocks: 3,
			Kernel: func(tc *TaskCtx) {
				tc.ForEachLane(func(tid int) { seen[tc.BlockIdx()*1000+tid]++ })
			},
		})
		rt.Wait(p, id)
	})
	if len(seen) != 3*96 {
		t.Fatalf("distinct (block,tid) pairs = %d, want %d", len(seen), 3*96)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("tid %d ran %d times", k, n)
		}
	}
}

func TestManyTasksAllComplete(t *testing.T) {
	eng, rt := testSystem(t, 2)
	const tasks = 500
	done := make([]bool, tasks)
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < tasks; i++ {
			i := i
			rt.TaskSpawn(p, TaskSpec{
				Threads: 128, Blocks: 1,
				Kernel: func(tc *TaskCtx) {
					tc.Compute(float64(50 + i%37))
					tc.GlobalRead(512)
					if tc.WarpInBlock() == 0 {
						done[i] = true
					}
				},
			})
		}
		rt.WaitAll(p)
	})
	for i, d := range done {
		if !d {
			t.Fatalf("task %d never ran", i)
		}
	}
	if s := rt.Stats(); s.Completed != tasks {
		t.Fatalf("Completed = %d, want %d", s.Completed, tasks)
	}
}

func TestTaskTableRecycling(t *testing.T) {
	// More tasks than TaskTable entries forces recycling and the lazy
	// aggregate copy-back path.
	eng, rt := testSystem(t, 1) // 2 MTBs x 32 rows = 64 entries
	total := rt.totalEntries * 4
	count := 0
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			rt.TaskSpawn(p, TaskSpec{
				Threads: 32, Blocks: 1,
				Kernel: func(tc *TaskCtx) { tc.Compute(200); count++ },
			})
		}
		rt.WaitAll(p)
	})
	if count != total {
		t.Fatalf("tasks run = %d, want %d", count, total)
	}
	if rt.CopyBacks == 0 {
		t.Error("expected forced copy-backs when the table fills")
	}
}

func TestSharedMemoryTask(t *testing.T) {
	eng, rt := testSystem(t, 2)
	var got []byte
	runHost(t, eng, rt, func(p *sim.Proc) {
		id := rt.TaskSpawn(p, TaskSpec{
			Threads: 32, Blocks: 1, SharedMem: 2048,
			Kernel: func(tc *TaskCtx) {
				sm := tc.Shared()
				if len(sm) != 2048 {
					t.Errorf("Shared() len = %d, want 2048", len(sm))
				}
				tc.SharedWrite(128)
				sm[0], sm[2047] = 0xAB, 0xCD
				tc.SharedRead(128)
				got = []byte{sm[0], sm[2047]}
			},
		})
		rt.Wait(p, id)
	})
	if len(got) != 2 || got[0] != 0xAB || got[1] != 0xCD {
		t.Fatalf("shared memory contents lost: %v", got)
	}
}

func TestSharedMemoryContention(t *testing.T) {
	// Each MTB arena is 32 KB; tasks requesting 16 KB each force blocking
	// allocation and deferred deallocation across many tasks.
	eng, rt := testSystem(t, 1)
	const tasks = 40
	ran := 0
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < tasks; i++ {
			rt.TaskSpawn(p, TaskSpec{
				Threads: 64, Blocks: 1, SharedMem: 16 * 1024,
				Kernel: func(tc *TaskCtx) {
					tc.Compute(300)
					_ = tc.Shared()[0]
					if tc.WarpInBlock() == 0 {
						ran++
					}
				},
			})
		}
		rt.WaitAll(p)
	})
	if ran != tasks {
		t.Fatalf("tasks run = %d, want %d", ran, tasks)
	}
	// All arenas drained after completion.
	for _, m := range rt.mtbs {
		m.buddy.DrainPending()
		if m.buddy.Allocated() != 0 {
			t.Fatalf("MTB %d leaked %d bytes of shared memory", m.index, m.buddy.Allocated())
		}
	}
}

func TestSyncBlockBarrier(t *testing.T) {
	eng, rt := testSystem(t, 2)
	const warps = 4
	phase := 0
	violations := 0
	runHost(t, eng, rt, func(p *sim.Proc) {
		id := rt.TaskSpawn(p, TaskSpec{
			Threads: warps * 32, Blocks: 1, Sync: true,
			Kernel: func(tc *TaskCtx) {
				tc.Compute(float64(20 * (tc.WarpInBlock() + 1)))
				phase++
				tc.SyncBlock()
				if phase != warps {
					violations++
				}
			},
		})
		rt.Wait(p, id)
	})
	if violations != 0 {
		t.Fatalf("%d warps crossed syncBlock early", violations)
	}
}

func TestSyncBlockWithoutFlagPanics(t *testing.T) {
	eng, rt := testSystem(t, 2)
	defer func() { recover() }()
	panicked := false
	runHost(t, eng, rt, func(p *sim.Proc) {
		id := rt.TaskSpawn(p, TaskSpec{
			Threads: 64, Blocks: 1, // Sync: false
			Kernel: func(tc *TaskCtx) {
				defer func() {
					if recover() != nil {
						panicked = true
					}
				}()
				tc.SyncBlock()
			},
		})
		rt.Wait(p, id)
	})
	if !panicked {
		t.Fatal("SyncBlock without sync flag did not panic")
	}
}

func TestBarrierIDRecycling(t *testing.T) {
	// More concurrent sync tasks than the 16 named-barrier IDs per MTB.
	eng, rt := testSystem(t, 1)
	const tasks = 100
	ran := 0
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < tasks; i++ {
			rt.TaskSpawn(p, TaskSpec{
				Threads: 64, Blocks: 1, Sync: true,
				Kernel: func(tc *TaskCtx) {
					tc.Compute(100)
					tc.SyncBlock()
					tc.Compute(50)
					if tc.WarpInBlock() == 0 {
						ran++
					}
				},
			})
		}
		rt.WaitAll(p)
	})
	if ran != tasks {
		t.Fatalf("sync tasks completed = %d, want %d", ran, tasks)
	}
	for _, m := range rt.mtbs {
		for id, used := range m.barInUse {
			if used {
				t.Errorf("MTB %d barrier %d leaked", m.index, id)
			}
		}
	}
}

func TestCheckNonBlocking(t *testing.T) {
	eng, rt := testSystem(t, 2)
	runHost(t, eng, rt, func(p *sim.Proc) {
		id := rt.TaskSpawn(p, TaskSpec{
			Threads: 32, Blocks: 1,
			Kernel: func(tc *TaskCtx) { tc.Compute(2_000_000) }, // 2 ms
		})
		if rt.Check(p, id) {
			t.Error("Check returned done for a 2ms task immediately after spawn")
		}
		rt.Wait(p, id)
		if !rt.Check(p, id) {
			t.Error("Check returned false after Wait")
		}
	})
}

func TestMultiThreadblockTask(t *testing.T) {
	eng, rt := testSystem(t, 2)
	blocks := map[int]int{}
	runHost(t, eng, rt, func(p *sim.Proc) {
		id := rt.TaskSpawn(p, TaskSpec{
			Threads: 64, Blocks: 5, Sync: true,
			Kernel: func(tc *TaskCtx) {
				tc.Compute(50)
				tc.SyncBlock()
				if tc.WarpInBlock() == 0 {
					blocks[tc.BlockIdx()]++
				}
			},
		})
		rt.Wait(p, id)
	})
	if len(blocks) != 5 {
		t.Fatalf("blocks seen = %v, want 5 distinct", blocks)
	}
}

func TestWarpLevelSchedulingOverlapsTasks(t *testing.T) {
	// Two tasks of 8 warps each on a tiny device: Pagoda interleaves their
	// warps in one MTB, so both are in flight concurrently.
	eng, rt := testSystem(t, 1)
	concurrent, maxConcurrent := 0, 0
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			rt.TaskSpawn(p, TaskSpec{
				Threads: 256, Blocks: 1,
				Kernel: func(tc *TaskCtx) {
					if tc.WarpInBlock() == 0 {
						concurrent++
						if concurrent > maxConcurrent {
							maxConcurrent = concurrent
						}
					}
					tc.Compute(5000)
					tc.GlobalRead(1024)
					tc.Compute(5000)
					if tc.WarpInBlock() == 0 {
						concurrent--
					}
				},
			})
		}
		rt.WaitAll(p)
	})
	if maxConcurrent < 2 {
		t.Fatalf("maxConcurrent = %d; warp-level scheduling should overlap tasks", maxConcurrent)
	}
}

func TestLatencyStatsPopulated(t *testing.T) {
	eng, rt := testSystem(t, 2)
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			rt.TaskSpawn(p, TaskSpec{
				Threads: 32, Blocks: 1,
				Kernel: func(tc *TaskCtx) { tc.Compute(1000) },
			})
		}
		rt.WaitAll(p)
	})
	s := rt.Stats()
	if s.AvgLatency <= 1000 {
		t.Fatalf("AvgLatency = %v, must exceed pure compute time", s.AvgLatency)
	}
	if s.MaxLatency < s.AvgLatency {
		t.Fatalf("MaxLatency %v < AvgLatency %v", s.MaxLatency, s.AvgLatency)
	}
	if s.AvgSchedDelay <= 0 {
		t.Fatalf("AvgSchedDelay = %v, want > 0", s.AvgSchedDelay)
	}
}

func TestBatchingModeCompletes(t *testing.T) {
	eng := sim.New()
	gcfg := gpu.TitanX()
	gcfg.NumSMMs = 1
	dev := gpu.NewDevice(eng, gcfg)
	bus := pcie.New(eng, pcie.Default())
	ctx := cuda.NewContext(eng, dev, bus, cuda.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Batching = true
	cfg.BatchSize = 16
	rt := NewRuntime(ctx, cfg)
	count := 0
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			rt.TaskSpawn(p, TaskSpec{
				Threads: 32, Blocks: 1,
				Kernel: func(tc *TaskCtx) { tc.Compute(500); count++ },
			})
		}
		rt.WaitAll(p)
	})
	if count != 50 {
		t.Fatalf("tasks run = %d, want 50", count)
	}
}

func TestBatchingSlowerThanContinuous(t *testing.T) {
	run := func(batching bool) sim.Time {
		eng := sim.New()
		gcfg := gpu.TitanX()
		gcfg.NumSMMs = 2
		dev := gpu.NewDevice(eng, gcfg)
		bus := pcie.New(eng, pcie.Default())
		ctx := cuda.NewContext(eng, dev, bus, cuda.DefaultConfig())
		cfg := DefaultConfig()
		cfg.Batching = batching
		cfg.BatchSize = 32
		rt := NewRuntime(ctx, cfg)
		return runHost(t, eng, rt, func(p *sim.Proc) {
			for i := 0; i < 256; i++ {
				// Irregular durations: batches are held back by stragglers.
				n := 1000.0
				if i%32 == 0 {
					n = 50000
				}
				rt.TaskSpawn(p, TaskSpec{
					Threads: 64, Blocks: 1,
					Kernel: func(tc *TaskCtx) { tc.Compute(n) },
				})
			}
			rt.WaitAll(p)
		})
	}
	cont, batch := run(false), run(true)
	if cont >= batch {
		t.Fatalf("continuous spawning (%v) should beat batching (%v) on irregular tasks", cont, batch)
	}
}

func TestValidateSpecPanics(t *testing.T) {
	eng, rt := testSystem(t, 1)
	specs := []TaskSpec{
		{Threads: 64, Blocks: 1},                                                  // nil kernel
		{Threads: 0, Blocks: 1, Kernel: func(*TaskCtx) {}},                        // no threads
		{Threads: 64, Blocks: 0, Kernel: func(*TaskCtx) {}},                       // no blocks
		{Threads: 2048, Blocks: 1, Kernel: func(*TaskCtx) {}},                     // wider than an MTB
		{Threads: 64, Blocks: 1, SharedMem: 64 * 1024, Kernel: func(*TaskCtx) {}}, // > arena
	}
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i, spec := range specs {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("spec %d did not panic", i)
					}
				}()
				rt.TaskSpawn(p, spec)
			}()
		}
	})
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() sim.Time {
		eng, rt := testSystem(t, 2)
		return runHost(t, eng, rt, func(p *sim.Proc) {
			for i := 0; i < 120; i++ {
				i := i
				sync := i%2 == 0
				rt.TaskSpawn(p, TaskSpec{
					Threads: 32 + (i%4)*32, Blocks: 1,
					SharedMem: (i % 3) * 1024,
					Sync:      sync,
					Kernel: func(tc *TaskCtx) {
						tc.Compute(float64(100 + i*7))
						tc.GlobalRead(256)
						if sync {
							tc.SyncBlock()
						}
					},
				})
			}
			rt.WaitAll(p)
		})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic end-to-end: %v vs %v", a, b)
	}
}
