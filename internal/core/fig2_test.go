package core

import (
	"testing"

	"repro/internal/sim"
)

// TestFig2bStateSequence reproduces the paper's Fig. 2b execution example:
// task TA is spawned first (CPU sets ready=-1), then TB (CPU sets TB.ready =
// taskID(TA)); the scheduler warp of TB's column promotes TA to (1, 1) and
// advances TB to (-1, 0); TA executes and its entry returns to (0, 0).
func TestFig2bStateSequence(t *testing.T) {
	eng, rt := testSystem(t, 1)

	var taID, tbID TaskID
	kernelRan := map[string]sim.Time{}
	eng.Spawn("host", func(p *sim.Proc) {
		taID = rt.TaskSpawn(p, TaskSpec{
			Threads: 32, Blocks: 1,
			Kernel: func(tc *TaskCtx) { tc.Compute(50_000); kernelRan["TA"] = tc.WarpCtx().Now() },
		})
		tbID = rt.TaskSpawn(p, TaskSpec{
			Threads: 32, Blocks: 1,
			Kernel: func(tc *TaskCtx) { tc.Compute(50_000); kernelRan["TB"] = tc.WarpCtx().Now() },
		})
		rt.WaitAll(p)
		rt.Shutdown(p)
	})

	// Step the simulation in small increments, sampling the device-side
	// entry states (the host proc assigns taID/tbID on its first steps).
	var sawTBPointer, sawTAPromoted, sawTBCopied bool
	for eng.Pending() > 0 && !eng.Stopped() {
		eng.RunUntil(eng.Now() + 100)
		if tbID < firstTaskID {
			continue
		}
		taRef := slotForTaskID(taID, rt.Cfg.Rows, rt.totalEntries)
		tbRef := slotForTaskID(tbID, rt.Cfg.Rows, rt.totalEntries)
		ta := rt.mtbs[taRef.col].entries[taRef.row]
		tb := rt.mtbs[tbRef.col].entries[tbRef.row]
		if tb.id == tbID && tb.ready == int64(taID) {
			sawTBPointer = true // TB(TA, 0) on the device
		}
		if ta.id == taID && ta.ready == readyScheduling && ta.sched {
			sawTAPromoted = true // TA(1, 1)
		}
		if sawTBPointer && tb.id == tbID && tb.ready == readyCopied {
			sawTBCopied = true // TB advanced to (-1, 0)
		}
		if eng.Now() > 5e8 {
			t.Fatal("run did not converge")
		}
		if rt.deviceCompleted == 2 && rt.MasterKernel().Finished() {
			break
		}
	}
	eng.Run()

	if taID >= tbID {
		t.Fatalf("taskIDs not increasing: TA=%d TB=%d", taID, tbID)
	}
	if !sawTBPointer {
		t.Error("never observed TB holding the pipelining pointer to TA")
	}
	if !sawTAPromoted {
		t.Error("never observed TA in the (1,1) scheduling state")
	}
	if !sawTBCopied {
		t.Error("never observed TB advanced to (-1,0) after promotion")
	}
	if len(kernelRan) != 2 {
		t.Fatalf("kernels ran: %v, want TA and TB", kernelRan)
	}
	// Final state: both entries free, Fig. 2b's "TA(0,0)".
	taRef := slotForTaskID(taID, rt.Cfg.Rows, rt.totalEntries)
	tbRef := slotForTaskID(tbID, rt.Cfg.Rows, rt.totalEntries)
	ta := rt.mtbs[taRef.col].entries[taRef.row]
	tb := rt.mtbs[tbRef.col].entries[tbRef.row]
	if ta.ready != readyFree || tb.ready != readyFree {
		t.Fatalf("entries not freed: TA.ready=%d TB.ready=%d", ta.ready, tb.ready)
	}
}

// TestLastTaskNeedsFlush verifies the §4.2.2 tail rule: with no successor
// spawn, the last task is only scheduled once the CPU flushes it ("if the
// CPU spawner thread observes no new tasks come in, it copies back the
// status of the last task ... and sets it to (1,1)").
func TestLastTaskNeedsFlush(t *testing.T) {
	eng, rt := testSystem(t, 1)
	ran := false
	eng.Spawn("host", func(p *sim.Proc) {
		rt.TaskSpawn(p, TaskSpec{
			Threads: 32, Blocks: 1,
			Kernel: func(tc *TaskCtx) { tc.Compute(100); ran = true },
		})
		// Without Wait/WaitAll (and hence without a flush), idle for 2 ms.
		p.Sleep(2_000_000)
		if ran {
			t.Error("final task ran without a successor or a flush")
		}
		rt.Wait(p, rt.lastSpawned) // the flush happens here
		if !ran {
			t.Error("task did not run after the flush")
		}
		rt.Shutdown(p)
	})
	eng.Run()
}
