package core

import (
	"fmt"
	"io"
)

// DumpState writes a human-readable snapshot of the runtime: host/device
// TaskTable mirrors (only non-idle entries), WarpTable occupancy, allocator
// and barrier usage per MTB. It reads simulation state directly, so call it
// between Engine.RunUntil steps or after Run returns — it is the tool for
// diagnosing a wedged run (pair with sim.Engine.BlockedProcs).
func (rt *Runtime) DumpState(w io.Writer) {
	fmt.Fprintf(w, "Pagoda runtime @ %.0f cycles: spawned=%d completed=%d failed=%d copybacks=%d\n",
		rt.Eng.Now(), rt.spawned, rt.deviceCompleted, rt.failedTasks, rt.CopyBacks)
	fmt.Fprintf(w, "lastSpawned=%d lastFlushed=%d shutdown=%v\n", rt.lastSpawned, rt.lastFlushed, rt.shutdown)
	for c, m := range rt.mtbs {
		busy := 0
		for _, s := range m.slots {
			if s.exec {
				busy++
			}
		}
		barsUsed := 0
		for _, u := range m.barInUse {
			if u {
				barsUsed++
			}
		}
		active := 0
		for r := range m.entries {
			he := &rt.host[c][r]
			de := m.entries[r]
			if he.ready != readyFree || he.h2dInFlight || de.ready != readyFree || de.sched {
				active++
			}
		}
		if busy == 0 && barsUsed == 0 && active == 0 && m.buddy.Allocated() == 0 {
			continue
		}
		fmt.Fprintf(w, "MTB%02d: warps %d/%d busy, smem %d/%dB (+%d pending frees), barriers %d/%d\n",
			c, busy, len(m.slots), m.buddy.Allocated(), m.buddy.ArenaSize(),
			m.buddy.PendingFrees(), barsUsed, len(m.bars))
		for r := range m.entries {
			he := &rt.host[c][r]
			de := m.entries[r]
			if he.ready == readyFree && !he.h2dInFlight && de.ready == readyFree && !de.sched {
				continue
			}
			fmt.Fprintf(w, "  [%02d,%02d] host{id=%d ready=%d inflight=%v} dev{id=%d ready=%d sched=%v doneCtr=%d}\n",
				c, r, he.id, he.ready, he.h2dInFlight, de.id, de.ready, de.sched, de.doneCtr)
		}
	}
}
