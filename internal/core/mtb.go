package core

import (
	"repro/internal/gpu"
	"repro/internal/sim"
)

// warpSlot is one WarpTable entry (Table 2): bookkeeping for one executor
// warp, stored in the MTB's shared memory.
type warpSlot struct {
	warpID    int // warp ID within the current task (drives getTid)
	eNum      int // TaskTable row being executed
	smNode    int // buddy-allocator handle (0 = no shared memory)
	smOffset  int // shared-memory start for this threadblock (SMindex)
	smSize    int
	barID     int // named-barrier ID, -1 when the task needs no sync
	exec      bool
	execSince sim.Time

	sig sim.Signal // wakes the parked executor warp
}

// MTB is one MasterKernel threadblock: a scheduler warp, 31 executor warps,
// a WarpTable, a 32 KB shared-memory arena with its buddy allocator, and a
// pool of 16 named barriers. Each MTB owns one TaskTable column.
type MTB struct {
	rt    *Runtime
	index int

	entries []*deviceEntry // this MTB's TaskTable column (device side)
	slots   []*warpSlot

	buddy *Buddy
	arena []byte // real backing store for getSMPtr

	bars     []*gpu.Barrier
	barInUse []bool

	activity  sim.Signal // new work for the scheduler warp
	warpFreed sim.Signal // an executor warp became free
	smemFreed sim.Signal // a block was marked for deallocation
	barFreed  sim.Signal // a named barrier was released

	ctrSite *gpu.AtomicSite // shared-memory warp/done counters
}

func newMTB(rt *Runtime, index int) *MTB {
	cfg := rt.Cfg
	m := &MTB{
		rt:       rt,
		index:    index,
		buddy:    NewBuddy(cfg.SharedPerMTB, cfg.MinAllocBlock),
		arena:    make([]byte, cfg.SharedPerMTB),
		bars:     make([]*gpu.Barrier, cfg.NumBarriers),
		barInUse: make([]bool, cfg.NumBarriers),
		ctrSite:  gpu.NewAtomicSite(rt.Eng, rt.Ctx.Dev.Cfg.AtomicSharedLatency),
	}
	m.entries = make([]*deviceEntry, cfg.Rows)
	for r := range m.entries {
		m.entries[r] = &deviceEntry{col: index, row: r}
	}
	m.slots = make([]*warpSlot, cfg.ExecutorWarpsPerMTB())
	for i := range m.slots {
		m.slots[i] = &warpSlot{barID: -1}
	}
	for i := range m.bars {
		m.bars[i] = gpu.NewBarrier(rt.Eng, 1)
	}
	return m
}

// wakeAll releases every parked warp of this MTB (used at shutdown).
func (m *MTB) wakeAll() {
	m.activity.Broadcast()
	m.warpFreed.Broadcast()
	m.smemFreed.Broadcast()
	m.barFreed.Broadcast()
	for _, s := range m.slots {
		s.sig.Broadcast()
	}
}

// ---------------------------------------------------------------------------
// Scheduler warp: Algorithm 1, lines 2-28.
// ---------------------------------------------------------------------------

func (m *MTB) schedulerLoop(c *gpu.Ctx) {
	rt := m.rt
	for {
		if rt.shutdown {
			return
		}
		// One sweep over the column. The 32 scheduler-warp threads scan in
		// parallel; we charge an aggregated scan cost plus one coalesced
		// read of the column's state words.
		c.Compute(rt.Cfg.ScanCost)
		c.GlobalRead(len(m.entries) * 8)
		acted := false
		unresolved := false

		// Phase 1 (lines 5-13): resolve pipelining pointers. An entry whose
		// ready field holds a TaskID proves that task's parameters arrived
		// in an earlier memcpy transaction, so the previous task may now be
		// marked schedulable.
		for _, e := range m.entries {
			if e.ready > 1 {
				if m.resolvePointer(c, e) {
					acted = true
				} else {
					unresolved = true
				}
			}
		}

		// Phase 2 (lines 14-28): schedule entries whose sched flag is set.
		for i, e := range m.entries {
			if rt.shutdown {
				return
			}
			if e.sched {
				m.scheduleTask(c, i, e)
				acted = true
			}
		}

		if !acted {
			if rt.shutdown {
				return
			}
			if unresolved {
				// A pointer is pending on another column's progress (lines
				// 8-10: "threadfence(); continue"): keep polling, as the
				// real scheduler warp does — parking would miss the other
				// column's state change.
				c.Sleep(rt.Cfg.SchedulerWakeDelay)
				continue
			}
			m.activity.Wait(c.Proc())
			// Model the polling gap between state changing in device memory
			// and the scheduler's scan observing it.
			c.Sleep(rt.Cfg.SchedulerWakeDelay)
		}
	}
}

// resolvePointer handles an entry whose ready field is a TaskID. It returns
// true if the entry advanced to the (-1, 0) state.
func (m *MTB) resolvePointer(c *gpu.Ctx, e *deviceEntry) bool {
	rt := m.rt
	prevRef := slotForTaskID(TaskID(e.ready), rt.Cfg.Rows, rt.totalEntries)
	prev := rt.mtbs[prevRef.col].entries[prevRef.row]
	switch {
	case prev.id == TaskID(e.ready) && prev.ready == readyCopied:
		// S2 sets the previous task's state to (1, 1)...
		prev.ready = readyScheduling
		prev.sched = true
		c.GlobalWrite(16)
		c.Threadfence()
		rt.mtbs[prevRef.col].activity.Broadcast()
	case prev.id == TaskID(e.ready) && prev.ready > 1:
		// The previous task has not itself been resolved yet; retry later
		// (lines 8-10: threadfence and continue).
		c.Threadfence()
		return false
	default:
		// The previous task is already scheduling, finished, or its entry
		// was recycled: the pipelining pointer's purpose (proving the
		// previous parameters arrived) is already served.
	}
	// ...and then sets the current task's state to (-1, 0).
	e.ready = readyCopied
	c.GlobalWrite(8)
	return true
}

// scheduleTask performs lines 14-28 for one entry.
func (m *MTB) scheduleTask(c *gpu.Ctx, row int, e *deviceEntry) {
	rt := m.rt
	warpSize := c.WarpSize()
	e.sched = false
	c.GlobalWrite(8)
	e.schedTime = c.Now()
	wpt := e.spec.warpsPerTB(warpSize)
	e.doneCtr = e.spec.totalWarps(warpSize)

	if e.spec.SharedMem > 0 || e.spec.Sync {
		// Schedule warps per threadblock, allocating shared memory and a
		// named barrier for each block.
		for j := 0; j < e.spec.Blocks; j++ {
			if rt.shutdown {
				return
			}
			barID := -1
			if e.spec.Sync && wpt > 1 {
				barID = m.allocBarrier(c, wpt)
				if barID < 0 {
					return // shutdown
				}
			}
			node, off := 0, 0
			if e.spec.SharedMem > 0 {
				var ok bool
				node, off, ok = m.allocSM(c, e.spec.SharedMem)
				if !ok {
					return // shutdown
				}
			}
			m.pSched(c, j*wpt, row, node, off, e.spec.SharedMem, barID, wpt)
		}
	} else {
		// No shared memory or sync: schedule all warps purely on free slots.
		m.pSched(c, 0, row, 0, 0, 0, -1, e.spec.totalWarps(warpSize))
	}
}

// allocBarrier finds a free named-barrier ID and sizes it for wpt warps,
// blocking until one of the 16 IDs is recycled. Returns -1 on shutdown.
func (m *MTB) allocBarrier(c *gpu.Ctx, wpt int) int {
	for {
		if m.rt.shutdown {
			return -1
		}
		c.Compute(2)
		c.SharedRead(16)
		for id, used := range m.barInUse {
			if !used {
				m.barInUse[id] = true
				m.bars[id].Reset(wpt)
				c.SharedWrite(8)
				return id
			}
		}
		m.barFreed.Wait(c.Proc())
	}
}

func (m *MTB) releaseBarrier(c *gpu.Ctx, id int) {
	m.barInUse[id] = false
	c.SharedWrite(8)
	m.barFreed.Pulse()
}

// allocSM implements lines 20-24: drain blocks marked for deallocation, then
// try the buddy allocator, blocking on smemFreed until space appears.
func (m *MTB) allocSM(c *gpu.Ctx, size int) (node, offset int, ok bool) {
	for {
		if m.rt.shutdown {
			return 0, 0, false
		}
		if n := m.buddy.DrainPending(); n > 0 {
			// Parallel unmark by the scheduler warp's threads: ~4 nodes per
			// thread (§5.1).
			c.Compute(float64(4 * n))
			c.SharedWrite(16 * n)
		}
		c.Compute(8) // parallel level scan + subtree marking
		c.SharedWrite(16)
		offset, node, found := m.buddy.Alloc(size)
		if found {
			return node, offset, true
		}
		m.smemFreed.Wait(c.Proc())
	}
}

// pSched is Algorithm 2: the scheduler warp's threads claim free executor
// warps in parallel until `count` warps are scheduled, synchronizing each
// sweep with a warp vote (_all) rather than __syncthreads.
func (m *MTB) pSched(c *gpu.Ctx, baseWarp, eNum, smNode, smOffset, smSize, barID, count int) {
	scheduled := 0
	for scheduled < count {
		if m.rt.shutdown {
			return
		}
		c.Compute(4) // 32 threads scan the 31 slots' exec flags
		for _, s := range m.slots {
			if scheduled == count {
				break
			}
			if s.exec {
				continue
			}
			c.Compute(2) // atomicDec(warpCtr) in shared memory + slot fill
			s.warpID = baseWarp + scheduled
			s.eNum = eNum
			s.smNode, s.smOffset, s.smSize = smNode, smOffset, smSize
			s.barID = barID
			c.ThreadfenceBlock()
			s.exec = true
			s.execSince = c.Now()
			s.sig.Broadcast()
			scheduled++
		}
		c.WarpVoteAll() // synchronize the scheduler warp's threads
		if scheduled < count {
			m.warpFreed.Wait(c.Proc())
		}
	}
}

// runTaskKernel invokes the task kernel, optionally isolating panics: a
// faulty task kernel is recorded and its warps retire normally instead of
// taking down the whole runtime — the software analogue of a kernel fault
// killing one grid, not the GPU context.
func (m *MTB) runTaskKernel(tc *TaskCtx, e *deviceEntry) {
	rt := m.rt
	if !rt.Cfg.IsolateKernelPanics {
		e.spec.Kernel(tc)
		return
	}
	defer func() {
		if r := recover(); r != nil {
			rt.failedTasks++
			if rt.OnTaskFault != nil {
				rt.OnTaskFault(e.id, r)
			}
		}
	}()
	e.spec.Kernel(tc)
}

// ---------------------------------------------------------------------------
// Executor warps: Algorithm 1, lines 29-43.
// ---------------------------------------------------------------------------

func (m *MTB) executorLoop(c *gpu.Ctx, slotIdx int) {
	rt := m.rt
	s := m.slots[slotIdx]
	for {
		for !s.exec {
			if rt.shutdown {
				return
			}
			s.sig.Wait(c.Proc())
		}
		if rt.shutdown {
			return
		}
		c.SharedRead(32) // read the WarpTable slot
		e := m.entries[s.eNum]
		c.GlobalRead(32) // fetch the task's kernel pointer and arguments

		tc := &TaskCtx{
			gc:       c,
			mtb:      m,
			entry:    e,
			warpID:   s.warpID,
			barID:    s.barID,
			smOffset: s.smOffset,
			smSize:   s.smSize,
		}
		m.runTaskKernel(tc, e) // the warp executes the task as a subroutine

		// Epilogue (lines 34-43), performed by one thread per warp.
		wpt := e.spec.warpsPerTB(c.WarpSize())
		lastInBlock := (s.warpID+1)%wpt == 0
		if lastInBlock {
			if s.smNode != 0 {
				m.buddy.MarkForDealloc(s.smNode)
				c.SharedWrite(8)
				m.smemFreed.Pulse()
			}
			if s.barID >= 0 {
				m.releaseBarrier(c, s.barID)
			}
		}
		c.ThreadfenceBlock()
		c.AtomicShared(m.ctrSite) // atomicDec(doneCtr)
		e.doneCtr--
		if e.doneCtr == 0 {
			e.ready = readyFree // free the task entry
			c.GlobalWrite(8)
			e.endTime = c.Now()
			rt.taskFinished(e)
		}
		s.exec = false
		rt.busyWarpIntegral += c.Now() - s.execSince
		m.warpFreed.Pulse()
	}
}
