package core

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/sim"
)

func TestDefaultConfigForGeometries(t *testing.T) {
	titan := DefaultConfigFor(gpu.TitanX())
	if titan.SharedPerMTB != 32*1024 {
		t.Fatalf("Titan X arena = %d, want the paper's 32 KB", titan.SharedPerMTB)
	}
	k40 := DefaultConfigFor(gpu.TeslaK40())
	if k40.SharedPerMTB != 16*1024 {
		t.Fatalf("K40 arena = %d, want 16 KB (48 KB SMX split across 2 MTBs + structures)", k40.SharedPerMTB)
	}
}

// TestPagodaOnTeslaK40 runs the full runtime on the paper's second
// architecture: the MasterKernel must still own every warp and tasks with
// shared memory and barriers must execute correctly.
func TestPagodaOnTeslaK40(t *testing.T) {
	eng := sim.New()
	gcfg := gpu.TeslaK40()
	gcfg.NumSMMs = 3 // small K40 slice for test speed
	dev := gpu.NewDevice(eng, gcfg)
	bus := pcie.New(eng, pcie.Default())
	ctx := cuda.NewContext(eng, dev, bus, cuda.DefaultConfig())
	rt := NewRuntime(ctx, DefaultConfigFor(gcfg))

	// The MasterKernel must reach MTBsPerSMM residency on the K40 too.
	occ := gpu.TheoreticalOccupancy(gcfg, gpu.LaunchSpec{
		BlockThreads: 1024, SharedPerTB: rt.Cfg.SharedPerMTB, RegsPerThread: 32,
	})
	if occ.TBsPerSMM < 2 || occ.Fraction != 1.0 {
		t.Fatalf("K40 MasterKernel occupancy = %+v, want 2 TBs at 100%%", occ)
	}

	ran := 0
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < 80; i++ {
			sm := 0
			if i%3 == 0 {
				sm = 4096
			}
			rt.TaskSpawn(p, TaskSpec{
				Threads: 96, Blocks: 1, SharedMem: sm, Sync: i%2 == 0,
				Kernel: func(tc *TaskCtx) {
					tc.Compute(500)
					tc.GlobalRead(1024)
					if tc.HasShared() {
						s := tc.Shared()
						s[0] = 1
						tc.SharedWrite(64)
					}
					if tc.entry.spec.Sync {
						tc.SyncBlock()
					}
					if tc.WarpInBlock() == 0 {
						ran++
					}
				},
			})
		}
		rt.WaitAll(p)
	})
	if ran != 80 {
		t.Fatalf("K40 completed %d of 80 tasks", ran)
	}
}

// TestK40ArenaRejectsOversizeTask checks validation against the smaller
// arena.
func TestK40ArenaRejectsOversizeTask(t *testing.T) {
	eng := sim.New()
	gcfg := gpu.TeslaK40()
	gcfg.NumSMMs = 1
	dev := gpu.NewDevice(eng, gcfg)
	bus := pcie.New(eng, pcie.Default())
	ctx := cuda.NewContext(eng, dev, bus, cuda.DefaultConfig())
	rt := NewRuntime(ctx, DefaultConfigFor(gcfg))
	runHost(t, eng, rt, func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("24KB shared-memory task accepted on a 16KB-arena K40")
			}
		}()
		rt.TaskSpawn(p, TaskSpec{Threads: 32, Blocks: 1, SharedMem: 24 * 1024,
			Kernel: func(tc *TaskCtx) {}})
	})
}
