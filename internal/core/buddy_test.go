package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuddyPaperGeometry(t *testing.T) {
	b := NewBuddy(32*1024, 512)
	// "the total number of nodes in the tree is 128" (127 nodes + unused
	// slot 0 in the 1-based array).
	if b.NumNodes() != 128 {
		t.Fatalf("NumNodes = %d, want 128", b.NumNodes())
	}
}

func TestBuddyAllocFig3(t *testing.T) {
	// Fig. 3: allocating 8K from a free 32K tree.
	b := NewBuddy(32*1024, 512)
	off, node, ok := b.Alloc(8 * 1024)
	if !ok || off != 0 {
		t.Fatalf("Alloc(8K) = (%d,%d,%v), want offset 0", off, node, ok)
	}
	if !b.invariantOK() {
		t.Fatal("marked-parent invariant violated after alloc")
	}
	// A second 8K lands in the buddy block.
	off2, _, ok := b.Alloc(8 * 1024)
	if !ok || off2 != 8*1024 {
		t.Fatalf("second Alloc(8K) offset = %d, want 8192", off2)
	}
	// A 16K allocation must skip the half holding the two 8Ks.
	off3, _, ok := b.Alloc(16 * 1024)
	if !ok || off3 != 16*1024 {
		t.Fatalf("Alloc(16K) offset = %d, want 16384", off3)
	}
	// Arena now full.
	if _, _, ok := b.Alloc(512); ok {
		t.Fatal("allocation succeeded on a full arena")
	}
}

func TestBuddyFreeFig4(t *testing.T) {
	// Fig. 4: ancestors are freed only while the sibling is free.
	b := NewBuddy(32*1024, 512)
	_, n1, _ := b.Alloc(4 * 1024)
	_, n2, _ := b.Alloc(4 * 1024)
	b.Free(n1)
	if !b.invariantOK() {
		t.Fatal("invariant violated after free")
	}
	// n2 still allocated: its parent must remain marked, so a fresh 8K must
	// not overlap [0, 8K).
	off, n8, ok := b.Alloc(8 * 1024)
	if !ok || off < 8*1024 {
		t.Fatalf("Alloc(8K) after partial free landed at %d, overlapping live 4K block", off)
	}
	b.Free(n8)
	b.Free(n2)
	// Now the whole first half coalesces: a 16K alloc fits at offset 0.
	off16, _, ok := b.Alloc(16 * 1024)
	if !ok || off16 != 0 {
		t.Fatalf("coalescing failed: Alloc(16K) = (%d, %v), want offset 0", off16, ok)
	}
}

func TestBuddyRoundsUpToBlockSize(t *testing.T) {
	b := NewBuddy(32*1024, 512)
	_, _, ok := b.Alloc(513) // rounds to 1K
	if !ok {
		t.Fatal("alloc failed")
	}
	if b.Allocated() != 1024 {
		t.Fatalf("Allocated = %d, want 1024 (rounded)", b.Allocated())
	}
}

func TestBuddyOversizeFails(t *testing.T) {
	b := NewBuddy(32*1024, 512)
	if _, _, ok := b.Alloc(64 * 1024); ok {
		t.Fatal("alloc larger than arena succeeded")
	}
}

func TestBuddyDeferredDealloc(t *testing.T) {
	b := NewBuddy(32*1024, 512)
	var nodes []int
	for i := 0; i < 64; i++ { // fill the arena with 512B blocks
		_, n, ok := b.Alloc(512)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		nodes = append(nodes, n)
	}
	if _, _, ok := b.Alloc(512); ok {
		t.Fatal("arena should be full")
	}
	for _, n := range nodes {
		b.MarkForDealloc(n)
	}
	if b.PendingFrees() != 64 {
		t.Fatalf("PendingFrees = %d, want 64", b.PendingFrees())
	}
	// Nothing is actually free until the scheduler warp drains.
	if _, _, ok := b.Alloc(512); ok {
		t.Fatal("marked blocks freed too early")
	}
	if n := b.DrainPending(); n != 64 {
		t.Fatalf("DrainPending = %d, want 64", n)
	}
	if _, _, ok := b.Alloc(32 * 1024); !ok {
		t.Fatal("full arena not reusable after drain")
	}
}

func TestBuddyNoOverlapProperty(t *testing.T) {
	// Property: live allocations never overlap, and the tree invariant holds
	// through arbitrary alloc/free sequences.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuddy(32*1024, 512)
		type alloc struct{ off, size, node int }
		var live []alloc
		for step := 0; step < 300; step++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				size := 512 << rng.Intn(5) // 512..8K
				off, node, ok := b.Alloc(size)
				if ok {
					for _, a := range live {
						if off < a.off+a.size && a.off < off+size {
							t.Logf("overlap: [%d,%d) vs [%d,%d)", off, off+size, a.off, a.off+a.size)
							return false
						}
					}
					live = append(live, alloc{off, size, node})
				}
			} else {
				i := rng.Intn(len(live))
				b.Free(live[i].node)
				live = append(live[:i], live[i+1:]...)
			}
			if !b.invariantOK() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyFullDrainRestoresEmptyState(t *testing.T) {
	// Property: allocating then freeing everything returns to a state where
	// a full-arena allocation succeeds.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuddy(16*1024, 512)
		var nodes []int
		for i := 0; i < 40; i++ {
			if _, n, ok := b.Alloc(512 << rng.Intn(4)); ok {
				nodes = append(nodes, n)
			}
		}
		for _, n := range nodes {
			b.Free(n)
		}
		if b.Allocated() != 0 {
			return false
		}
		_, _, ok := b.Alloc(16 * 1024)
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyInvalidFreePanics(t *testing.T) {
	b := NewBuddy(32*1024, 512)
	for _, n := range []int{0, -1, 5, 500} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Free(%d) did not panic", n)
				}
			}()
			b.Free(n)
		}()
	}
}

func TestBuddyInvalidGeometryPanics(t *testing.T) {
	for _, tc := range [][2]int{{0, 512}, {1000, 512}, {4096, 3}, {256, 512}} {
		tc := tc
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBuddy(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			NewBuddy(tc[0], tc[1])
		}()
	}
}
