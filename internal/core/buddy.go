package core

// Buddy is the software shared-memory allocator of §5.1: memory blocks form
// a complete binary tree laid out as an array ("arranged as an array in the
// shared memory itself"). The leaves are MinBlock-byte blocks; each parent
// represents a block twice as large. A marked node is allocated.
//
// Invariant (as stated in the paper): if a node is marked, its parent is
// marked. Allocation therefore only needs to find an *unmarked* node at the
// right level — an unmarked node implies a fully free subtree — then mark the
// node plus all of its ancestors and descendants. Deallocation unmarks the
// descendants and walks up unmarking ancestors while the sibling is free.
//
// With the paper's parameters (32 KB arena, 512 B granularity) the tree has
// 64 leaves and 127 nodes, stored 1-based in a 128-element array — "the total
// number of nodes in the tree is 128, small enough to fit in the shared
// memory".
//
// Only the MTB's scheduler warp allocates and deallocates, so no locking is
// needed; executor warps merely mark blocks for deferred deallocation
// (deallocMarkedSM in Algorithm 1).
type Buddy struct {
	arena    int // total bytes
	minBlock int
	levels   int // tree depth; level 0 is the root
	marked   []bool
	// gen counts allocation-state changes per node (bumped on Alloc and
	// Free). A pending entry is only honoured if the node's generation still
	// matches the one captured at MarkForDealloc time, so duplicate marks,
	// mark-then-explicit-Free, and free-then-realloc races all become benign
	// stale entries instead of panics in the scheduler warp path.
	gen     []uint32
	pending []pendingFree // nodes marked for deferred deallocation
	// inPending/pendingGen dedup MarkForDealloc calls per (node, generation)
	// between drains: a mark after the node was freed and reallocated is a new
	// generation, not a duplicate.
	inPending  []bool
	pendingGen []uint32
	// allocated tracks currently allocated bytes (diagnostics/tests).
	allocated int
	// staleDeallocs counts pending entries skipped as stale (diagnostics).
	staleDeallocs int
}

// pendingFree is one deferred deallocation: the node plus the allocation
// generation it belongs to.
type pendingFree struct {
	node int
	gen  uint32
}

// NewBuddy builds an allocator over an arena of the given size. arena and
// minBlock must be powers of two with arena >= minBlock.
func NewBuddy(arena, minBlock int) *Buddy {
	if arena <= 0 || minBlock <= 0 || arena&(arena-1) != 0 || minBlock&(minBlock-1) != 0 || arena < minBlock {
		panic("core: buddy arena and min block must be powers of two, arena >= minBlock")
	}
	levels := 0
	for s := arena; s > minBlock; s >>= 1 {
		levels++
	}
	nodes := 1 << (levels + 1) // 1-based array; index 0 unused
	return &Buddy{
		arena: arena, minBlock: minBlock, levels: levels,
		marked:     make([]bool, nodes),
		gen:        make([]uint32, nodes),
		inPending:  make([]bool, nodes),
		pendingGen: make([]uint32, nodes),
	}
}

// ArenaSize returns the managed bytes.
func (b *Buddy) ArenaSize() int { return b.arena }

// Allocated returns currently allocated bytes (not counting pending frees).
func (b *Buddy) Allocated() int { return b.allocated }

// PendingFrees returns the number of blocks awaiting DrainPending.
func (b *Buddy) PendingFrees() int { return len(b.pending) }

// levelFor returns the tree level whose block size is the smallest >= size,
// or -1 if size exceeds the arena.
func (b *Buddy) levelFor(size int) int {
	if size > b.arena {
		return -1
	}
	lvl := b.levels
	block := b.minBlock
	for block < size {
		block <<= 1
		lvl--
	}
	return lvl
}

// nodeSize returns the block size of a node at the given level.
func (b *Buddy) nodeSize(level int) int { return b.arena >> level }

// nodeOffset returns the arena byte offset of node n.
func (b *Buddy) nodeOffset(n int) int {
	level := 0
	for (1 << (level + 1)) <= n {
		level++
	}
	first := 1 << level
	return (n - first) * b.nodeSize(level)
}

// Alloc reserves a block of at least `size` bytes. It returns the arena
// offset and the node handle to pass to Free/MarkForDealloc. ok is false when
// no block of the required size is free (the caller retries after draining
// pending frees, per Algorithm 1 line 22).
func (b *Buddy) Alloc(size int) (offset, node int, ok bool) {
	if size <= 0 {
		panic("core: non-positive allocation")
	}
	lvl := b.levelFor(size)
	if lvl < 0 {
		return 0, 0, false
	}
	first := 1 << lvl
	for n := first; n < first*2; n++ {
		if !b.marked[n] {
			b.markSubtree(n)
			b.markAncestors(n)
			b.allocated += b.nodeSize(lvl)
			b.gen[n]++
			return b.nodeOffset(n), n, true
		}
	}
	return 0, 0, false
}

func (b *Buddy) markSubtree(n int) {
	if n >= len(b.marked) {
		return
	}
	b.marked[n] = true
	b.markSubtree(2 * n)
	b.markSubtree(2*n + 1)
}

func (b *Buddy) markAncestors(n int) {
	for n > 1 {
		n /= 2
		b.marked[n] = true
	}
}

// Free releases a node returned by Alloc: unmark the subtree, then walk up
// unmarking each ancestor whose other child is free.
func (b *Buddy) Free(node int) {
	if node <= 0 || node >= len(b.marked) || !b.marked[node] {
		panic("core: Free of invalid or unallocated node")
	}
	level := 0
	for (1 << (level + 1)) <= node {
		level++
	}
	b.allocated -= b.nodeSize(level)
	b.gen[node]++
	b.unmarkSubtree(node)
	for n := node; n > 1; {
		sibling := n ^ 1
		if b.marked[sibling] {
			break
		}
		n /= 2
		b.marked[n] = false
	}
}

func (b *Buddy) unmarkSubtree(n int) {
	if n >= len(b.marked) {
		return
	}
	b.marked[n] = false
	b.unmarkSubtree(2 * n)
	b.unmarkSubtree(2*n + 1)
}

// MarkForDealloc records a block for deferred deallocation. Executor warps
// call this when a threadblock finishes; the scheduler warp later drains the
// list. (Immediate freeing by executors could race with the scheduler's
// allocations — §4.3.) Marking the same node twice before a drain is a
// no-op; marking an unallocated node records a stale entry that the drain
// skips and counts rather than panicking on.
func (b *Buddy) MarkForDealloc(node int) {
	if node <= 0 || node >= len(b.marked) {
		b.staleDeallocs++
		return
	}
	if b.inPending[node] && b.pendingGen[node] == b.gen[node] {
		b.staleDeallocs++
		return // duplicate mark of the same allocation before drain
	}
	b.inPending[node] = true
	b.pendingGen[node] = b.gen[node]
	b.pending = append(b.pending, pendingFree{node: node, gen: b.gen[node]})
}

// DrainPending frees every block marked for deallocation and reports how
// many were freed (deallocMarkedSM in Algorithm 1). Entries whose node was
// explicitly freed (or freed and reallocated) since being marked are counted
// as stale and skipped instead of crashing the scheduler warp path; see
// StaleDeallocs.
func (b *Buddy) DrainPending() int {
	freed := 0
	for _, pf := range b.pending {
		b.inPending[pf.node] = false
		if pf.gen != b.gen[pf.node] || !b.marked[pf.node] {
			b.staleDeallocs++
			continue
		}
		b.Free(pf.node)
		freed++
	}
	b.pending = b.pending[:0]
	return freed
}

// StaleDeallocs returns how many deferred deallocations were dropped as
// duplicates or superseded by an explicit Free (diagnostics).
func (b *Buddy) StaleDeallocs() int { return b.staleDeallocs }

// NumNodes returns the size of the node array including the unused slot 0
// (128 for the paper's 32 KB / 512 B configuration).
func (b *Buddy) NumNodes() int { return len(b.marked) }

// invariantOK verifies "marked node implies marked parent" (used by property
// tests).
func (b *Buddy) invariantOK() bool {
	for n := 2; n < len(b.marked); n++ {
		if b.marked[n] && !b.marked[n/2] {
			return false
		}
	}
	return true
}
