package core

// Buddy is the software shared-memory allocator of §5.1: memory blocks form
// a complete binary tree laid out as an array ("arranged as an array in the
// shared memory itself"). The leaves are MinBlock-byte blocks; each parent
// represents a block twice as large. A marked node is allocated.
//
// Invariant (as stated in the paper): if a node is marked, its parent is
// marked. Allocation therefore only needs to find an *unmarked* node at the
// right level — an unmarked node implies a fully free subtree — then mark the
// node plus all of its ancestors and descendants. Deallocation unmarks the
// descendants and walks up unmarking ancestors while the sibling is free.
//
// With the paper's parameters (32 KB arena, 512 B granularity) the tree has
// 64 leaves and 127 nodes, stored 1-based in a 128-element array — "the total
// number of nodes in the tree is 128, small enough to fit in the shared
// memory".
//
// Only the MTB's scheduler warp allocates and deallocates, so no locking is
// needed; executor warps merely mark blocks for deferred deallocation
// (deallocMarkedSM in Algorithm 1).
type Buddy struct {
	arena    int // total bytes
	minBlock int
	levels   int // tree depth; level 0 is the root
	marked   []bool
	pending  []int // nodes marked for deferred deallocation
	// allocated tracks currently allocated bytes (diagnostics/tests).
	allocated int
}

// NewBuddy builds an allocator over an arena of the given size. arena and
// minBlock must be powers of two with arena >= minBlock.
func NewBuddy(arena, minBlock int) *Buddy {
	if arena <= 0 || minBlock <= 0 || arena&(arena-1) != 0 || minBlock&(minBlock-1) != 0 || arena < minBlock {
		panic("core: buddy arena and min block must be powers of two, arena >= minBlock")
	}
	levels := 0
	for s := arena; s > minBlock; s >>= 1 {
		levels++
	}
	nodes := 1 << (levels + 1) // 1-based array; index 0 unused
	return &Buddy{arena: arena, minBlock: minBlock, levels: levels, marked: make([]bool, nodes)}
}

// ArenaSize returns the managed bytes.
func (b *Buddy) ArenaSize() int { return b.arena }

// Allocated returns currently allocated bytes (not counting pending frees).
func (b *Buddy) Allocated() int { return b.allocated }

// PendingFrees returns the number of blocks awaiting DrainPending.
func (b *Buddy) PendingFrees() int { return len(b.pending) }

// levelFor returns the tree level whose block size is the smallest >= size,
// or -1 if size exceeds the arena.
func (b *Buddy) levelFor(size int) int {
	if size > b.arena {
		return -1
	}
	lvl := b.levels
	block := b.minBlock
	for block < size {
		block <<= 1
		lvl--
	}
	return lvl
}

// nodeSize returns the block size of a node at the given level.
func (b *Buddy) nodeSize(level int) int { return b.arena >> level }

// nodeOffset returns the arena byte offset of node n.
func (b *Buddy) nodeOffset(n int) int {
	level := 0
	for (1 << (level + 1)) <= n {
		level++
	}
	first := 1 << level
	return (n - first) * b.nodeSize(level)
}

// Alloc reserves a block of at least `size` bytes. It returns the arena
// offset and the node handle to pass to Free/MarkForDealloc. ok is false when
// no block of the required size is free (the caller retries after draining
// pending frees, per Algorithm 1 line 22).
func (b *Buddy) Alloc(size int) (offset, node int, ok bool) {
	if size <= 0 {
		panic("core: non-positive allocation")
	}
	lvl := b.levelFor(size)
	if lvl < 0 {
		return 0, 0, false
	}
	first := 1 << lvl
	for n := first; n < first*2; n++ {
		if !b.marked[n] {
			b.markSubtree(n)
			b.markAncestors(n)
			b.allocated += b.nodeSize(lvl)
			return b.nodeOffset(n), n, true
		}
	}
	return 0, 0, false
}

func (b *Buddy) markSubtree(n int) {
	if n >= len(b.marked) {
		return
	}
	b.marked[n] = true
	b.markSubtree(2 * n)
	b.markSubtree(2*n + 1)
}

func (b *Buddy) markAncestors(n int) {
	for n > 1 {
		n /= 2
		b.marked[n] = true
	}
}

// Free releases a node returned by Alloc: unmark the subtree, then walk up
// unmarking each ancestor whose other child is free.
func (b *Buddy) Free(node int) {
	if node <= 0 || node >= len(b.marked) || !b.marked[node] {
		panic("core: Free of invalid or unallocated node")
	}
	level := 0
	for (1 << (level + 1)) <= node {
		level++
	}
	b.allocated -= b.nodeSize(level)
	b.unmarkSubtree(node)
	for n := node; n > 1; {
		sibling := n ^ 1
		if b.marked[sibling] {
			break
		}
		n /= 2
		b.marked[n] = false
	}
}

func (b *Buddy) unmarkSubtree(n int) {
	if n >= len(b.marked) {
		return
	}
	b.marked[n] = false
	b.unmarkSubtree(2 * n)
	b.unmarkSubtree(2*n + 1)
}

// MarkForDealloc records a block for deferred deallocation. Executor warps
// call this when a threadblock finishes; the scheduler warp later drains the
// list. (Immediate freeing by executors could race with the scheduler's
// allocations — §4.3.)
func (b *Buddy) MarkForDealloc(node int) {
	b.pending = append(b.pending, node)
}

// DrainPending frees every block marked for deallocation and reports how
// many were freed (deallocMarkedSM in Algorithm 1).
func (b *Buddy) DrainPending() int {
	n := len(b.pending)
	for _, node := range b.pending {
		b.Free(node)
	}
	b.pending = b.pending[:0]
	return n
}

// NumNodes returns the size of the node array including the unused slot 0
// (128 for the paper's 32 KB / 512 B configuration).
func (b *Buddy) NumNodes() int { return len(b.marked) }

// invariantOK verifies "marked node implies marked parent" (used by property
// tests).
func (b *Buddy) invariantOK() bool {
	for n := 2; n < len(b.marked); n++ {
		if b.marked[n] && !b.marked[n/2] {
			return false
		}
	}
	return true
}
