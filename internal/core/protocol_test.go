package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestTaskIDSlotRoundTrip checks the TaskID <-> slot encoding over random
// generations and slots.
func TestTaskIDSlotRoundTrip(t *testing.T) {
	const rows, cols = 32, 48
	total := rows * cols
	check := func(gen uint16, slot uint16) bool {
		g := int(slot) % total
		id := taskIDFor(int64(gen), g, total)
		if id < firstTaskID {
			return false
		}
		ref := slotForTaskID(id, rows, total)
		return ref.globalIndex(rows) == g
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestReadyFieldStatesDistinct ensures the four protocol states cannot
// collide: TaskIDs are always > 1.
func TestReadyFieldStatesDistinct(t *testing.T) {
	states := map[int64]bool{readyFree: true, readyCopied: true, readyScheduling: true}
	if len(states) != 3 {
		t.Fatal("protocol states collide")
	}
	for gen := int64(0); gen < 4; gen++ {
		for g := 0; g < 10; g++ {
			id := int64(taskIDFor(gen, g, 1536))
			if states[id] {
				t.Fatalf("TaskID %d collides with a protocol state", id)
			}
		}
	}
}

// TestProtocolInvariantUnderRandomLoad drives the full runtime with random
// task shapes and checks, at every host observation point, the Fig. 2a
// contract: the CPU only touches entries whose CPU-side ready field is 0,
// the GPU only entries with non-zero ready — which manifests as: the host
// never hands out an entry whose device side still holds an unfinished task.
func TestProtocolInvariantUnderRandomLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eng, rt := testSystem(t, 1)

	violations := 0
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			spec := TaskSpec{
				Threads: 32 * (1 + rng.Intn(8)),
				Blocks:  1,
				Sync:    rng.Intn(2) == 0,
				Kernel: func(tc *TaskCtx) {
					tc.Compute(float64(100 + rng.Intn(2000)))
					if rng.Intn(3) == 0 {
						tc.GlobalRead(512)
					}
				},
			}
			if rng.Intn(4) == 0 {
				spec.SharedMem = 512 << rng.Intn(4)
			}
			ref := rt.findFreeEntry(p)
			// Invariant: the entry the CPU chose is not running on the GPU.
			de := rt.mtbs[ref.col].entries[ref.row]
			he := rt.host[ref.col][ref.row]
			if he.id != 0 && de.id == he.id && de.ready != readyFree {
				violations++
			}
			// findFreeEntry advanced the cursor; rewind so TaskSpawn picks
			// the same entry.
			rt.rrCursor = (ref.row*len(rt.mtbs) + ref.col)
			rt.TaskSpawn(p, spec)
			if rng.Intn(16) == 0 {
				rt.WaitAll(p)
			}
		}
		rt.WaitAll(p)
	})
	if violations != 0 {
		t.Fatalf("%d protocol violations: CPU reused an entry the GPU still owned", violations)
	}
	if got := rt.Stats(); got.Completed != 300 {
		t.Fatalf("Completed = %d, want 300", got.Completed)
	}
}

// TestPollCompletionsFiresHook exercises the OnHostObservedDone path.
func TestPollCompletionsFiresHook(t *testing.T) {
	eng, rt := testSystem(t, 1)
	var observed []TaskID
	rt.OnHostObservedDone = func(id TaskID) { observed = append(observed, id) }
	var ids []TaskID
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			ids = append(ids, rt.TaskSpawn(p, TaskSpec{
				Threads: 32, Blocks: 1,
				Kernel: func(tc *TaskCtx) { tc.Compute(500) },
			}))
		}
		for len(observed) < 10 {
			p.Sleep(20_000)
			rt.PollCompletions(p)
		}
	})
	seen := map[TaskID]bool{}
	for _, id := range observed {
		if seen[id] {
			t.Fatalf("task %d observed done twice", id)
		}
		seen[id] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("task %d never observed", id)
		}
	}
}

// TestStatsSchedDelayOrdering checks metric sanity: sched delay <= latency.
func TestStatsSchedDelayOrdering(t *testing.T) {
	eng, rt := testSystem(t, 1)
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			rt.TaskSpawn(p, TaskSpec{Threads: 64, Blocks: 1,
				Kernel: func(tc *TaskCtx) { tc.Compute(1000) }})
		}
		rt.WaitAll(p)
	})
	s := rt.Stats()
	if s.AvgSchedDelay <= 0 || s.AvgSchedDelay >= s.AvgLatency {
		t.Fatalf("AvgSchedDelay = %v, AvgLatency = %v; want 0 < delay < latency",
			s.AvgSchedDelay, s.AvgLatency)
	}
}

// TestTraceRecordsTasks verifies runtime tracing integration.
func TestTraceRecordsTasks(t *testing.T) {
	eng, rt := testSystem(t, 1)
	tr := trace.New()
	rt.Trace = tr
	runHost(t, eng, rt, func(p *sim.Proc) {
		for i := 0; i < 7; i++ {
			rt.TaskSpawn(p, TaskSpec{Threads: 32, Blocks: 1,
				Kernel: func(tc *TaskCtx) { tc.Compute(400) }})
		}
		rt.WaitAll(p)
	})
	if tr.Len() != 7 {
		t.Fatalf("trace spans = %d, want 7", tr.Len())
	}
}

func TestDumpState(t *testing.T) {
	eng, rt := testSystem(t, 1)
	var mid, final strings.Builder
	eng.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			rt.TaskSpawn(p, TaskSpec{Threads: 64, Blocks: 1, SharedMem: 1024,
				Kernel: func(tc *TaskCtx) { tc.Compute(200_000) }})
		}
		rt.WaitAll(p)
		rt.Shutdown(p)
	})
	eng.RunUntil(150_000) // mid-flight
	rt.DumpState(&mid)
	eng.Run()
	rt.DumpState(&final)
	for _, want := range []string{"Pagoda runtime", "MTB", "dev{id="} {
		if !strings.Contains(mid.String(), want) {
			t.Fatalf("mid-flight dump missing %q:\n%s", want, mid.String())
		}
	}
	if !strings.Contains(final.String(), "spawned=5 completed=5") {
		t.Fatalf("final dump wrong:\n%s", final.String())
	}
	if strings.Contains(final.String(), "dev{") {
		t.Fatalf("final dump should list no active entries:\n%s", final.String())
	}
}
