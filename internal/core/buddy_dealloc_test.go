package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBuddyDoubleMarkDeduped: marking the same node twice before a drain
// frees it once (duplicate marks used to make DrainPending double-Free and
// panic the scheduler warp path).
func TestBuddyDoubleMarkDeduped(t *testing.T) {
	b := NewBuddy(32*1024, 512)
	_, n, ok := b.Alloc(1024)
	if !ok {
		t.Fatal("alloc failed")
	}
	b.MarkForDealloc(n)
	b.MarkForDealloc(n)
	if b.PendingFrees() != 1 {
		t.Fatalf("PendingFrees = %d after duplicate marks, want 1", b.PendingFrees())
	}
	if freed := b.DrainPending(); freed != 1 {
		t.Fatalf("DrainPending = %d, want 1", freed)
	}
	if b.Allocated() != 0 {
		t.Fatalf("Allocated = %d after drain, want 0", b.Allocated())
	}
	if b.StaleDeallocs() != 1 {
		t.Fatalf("StaleDeallocs = %d, want 1 (the duplicate mark)", b.StaleDeallocs())
	}
}

// TestBuddyMarkThenExplicitFree: an explicit Free supersedes a pending mark;
// the drain skips the stale entry instead of panicking — including when the
// node was reallocated in between (the entry must not free the new owner).
func TestBuddyMarkThenExplicitFree(t *testing.T) {
	b := NewBuddy(32*1024, 512)
	_, n, _ := b.Alloc(1024)
	b.MarkForDealloc(n)
	b.Free(n)
	if freed := b.DrainPending(); freed != 0 {
		t.Fatalf("DrainPending = %d, want 0 (mark superseded by Free)", freed)
	}

	// Mark, free, then reallocate the same node before draining: the stale
	// entry must not free the new allocation out from under its owner.
	_, n2, _ := b.Alloc(1024)
	b.MarkForDealloc(n2)
	b.Free(n2)
	_, n3, _ := b.Alloc(1024)
	if n3 != n2 {
		t.Fatalf("expected node reuse, got %d then %d", n2, n3)
	}
	if freed := b.DrainPending(); freed != 0 {
		t.Fatalf("DrainPending = %d, want 0 (entry belongs to the old generation)", freed)
	}
	if b.Allocated() != 1024 {
		t.Fatalf("Allocated = %d, want 1024 (realloc must survive the drain)", b.Allocated())
	}
}

// TestBuddyMarkInvalidNode: out-of-range and never-allocated nodes are
// recorded as stale, not crashes.
func TestBuddyMarkInvalidNode(t *testing.T) {
	b := NewBuddy(32*1024, 512)
	b.MarkForDealloc(-1)
	b.MarkForDealloc(0)
	b.MarkForDealloc(b.NumNodes() + 5)
	b.MarkForDealloc(3) // in range but unallocated
	if freed := b.DrainPending(); freed != 0 {
		t.Fatalf("DrainPending = %d, want 0", freed)
	}
	if b.StaleDeallocs() < 4 {
		t.Fatalf("StaleDeallocs = %d, want >= 4", b.StaleDeallocs())
	}
}

// TestBuddyDeallocChurnProperty drives random interleavings of Alloc,
// MarkForDealloc (with deliberate duplicates), explicit Free, and
// DrainPending, asserting the allocator never panics, never corrupts
// accounting, and keeps the marked-parent invariant.
func TestBuddyDeallocChurnProperty(t *testing.T) {
	check := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: panic: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		b := NewBuddy(32*1024, 512)
		type liveBlock struct{ node, size int }
		var live []liveBlock
		for step := 0; step < 500; step++ {
			switch rng.Intn(5) {
			case 0, 1: // alloc
				size := 512 << rng.Intn(5)
				if _, n, ok := b.Alloc(size); ok {
					live = append(live, liveBlock{n, size})
				}
			case 2: // mark a random live block, sometimes twice
				if len(live) > 0 {
					i := rng.Intn(len(live))
					b.MarkForDealloc(live[i].node)
					if rng.Intn(3) == 0 {
						b.MarkForDealloc(live[i].node) // duplicate
					}
					live = append(live[:i], live[i+1:]...)
				}
			case 3: // explicitly free a live block, occasionally one already marked
				if len(live) > 0 {
					i := rng.Intn(len(live))
					b.MarkForDealloc(live[i].node) // mark AND free: drain must skip
					b.Free(live[i].node)
					live = append(live[:i], live[i+1:]...)
				}
			case 4:
				b.DrainPending()
			}
			if !b.invariantOK() {
				t.Logf("seed %d step %d: marked-parent invariant violated", seed, step)
				return false
			}
		}
		b.DrainPending()
		// After draining everything marked, exactly the still-live blocks
		// remain allocated.
		want := 0
		for _, lb := range live {
			want += lb.size
		}
		if b.Allocated() != want {
			t.Logf("seed %d: Allocated = %d, want %d", seed, b.Allocated(), want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
