package core

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// ablationRun executes a fixed narrow-task workload under a given Pagoda
// configuration and returns the makespan.
func ablationRun(b *testing.B, cfg Config, smms int) sim.Time {
	b.Helper()
	eng := sim.New()
	gcfg := gpu.TitanX()
	gcfg.NumSMMs = smms
	dev := gpu.NewDevice(eng, gcfg)
	bus := pcie.New(eng, pcie.Default())
	ctx := cuda.NewContext(eng, dev, bus, cuda.DefaultConfig())
	rt := NewRuntime(ctx, cfg)
	eng.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 512; i++ {
			sm := 0
			if i%4 == 0 {
				sm = 2048
			}
			rt.TaskSpawn(p, TaskSpec{
				Threads: 128, Blocks: 1, SharedMem: sm, Sync: i%2 == 0,
				Kernel: func(tc *TaskCtx) {
					for s := 0; s < 8; s++ {
						tc.GlobalRead(512)
						tc.Compute(400)
					}
					if tc.Threads() > 32 && tc.entry.spec.Sync {
						tc.SyncBlock()
					}
				},
			})
		}
		rt.WaitAll(p)
		rt.Shutdown(p)
	})
	end := eng.Run()
	if rt.Stats().Completed != 512 {
		b.Fatalf("incomplete ablation run: %d/512", rt.Stats().Completed)
	}
	return end
}

// BenchmarkAblationTaskTableRows sweeps the TaskTable depth (the paper uses
// 32 rows per MTB; fewer rows force more handshaking, more rows cost scan
// time).
func BenchmarkAblationTaskTableRows(b *testing.B) {
	for _, rows := range []int{4, 8, 16, 32, 64} {
		rows := rows
		b.Run(benchName("rows", rows), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Rows = rows
			var end sim.Time
			for i := 0; i < b.N; i++ {
				end = ablationRun(b, cfg, 4)
			}
			b.ReportMetric(end/1e3, "sim_us")
		})
	}
}

// BenchmarkAblationMTBsPerSMM sweeps the MasterKernel threadblock split (the
// paper uses 2 x 32 warps; 1 x 32 leaves half the SMM empty).
func BenchmarkAblationMTBsPerSMM(b *testing.B) {
	for _, mtbs := range []int{1, 2} {
		mtbs := mtbs
		b.Run(benchName("mtbs", mtbs), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.MTBsPerSMM = mtbs
			var end sim.Time
			for i := 0; i < b.N; i++ {
				end = ablationRun(b, cfg, 4)
			}
			b.ReportMetric(end/1e3, "sim_us")
		})
	}
}

// BenchmarkAblationSchedulerWakeDelay sweeps the modelled scheduler polling
// gap.
func BenchmarkAblationSchedulerWakeDelay(b *testing.B) {
	for _, delay := range []sim.Time{50, 250, 1000, 4000} {
		delay := delay
		b.Run(benchName("wake_ns", int(delay)), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.SchedulerWakeDelay = delay
			var end sim.Time
			for i := 0; i < b.N; i++ {
				end = ablationRun(b, cfg, 4)
			}
			b.ReportMetric(end/1e3, "sim_us")
		})
	}
}

// BenchmarkBuddyAllocator measures the §5.1 allocator's alloc/free cycle.
func BenchmarkBuddyAllocator(b *testing.B) {
	bd := NewBuddy(32*1024, 512)
	sizes := []int{512, 2048, 8192, 1024}
	var nodes []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, n, ok := bd.Alloc(sizes[i%len(sizes)])
		if ok {
			nodes = append(nodes, n)
		}
		if len(nodes) > 6 || !ok {
			for _, m := range nodes {
				bd.MarkForDealloc(m)
			}
			nodes = nodes[:0]
			bd.DrainPending()
		}
	}
}

// BenchmarkBumpAllocatorBaseline contrasts the buddy system against a naive
// reset-only bump allocator (what a scheme without per-block free would do:
// it can only recycle when *everything* is free).
func BenchmarkBumpAllocatorBaseline(b *testing.B) {
	const arena = 32 * 1024
	off := 0
	live := 0
	sizes := []int{512, 2048, 8192, 1024}
	for i := 0; i < b.N; i++ {
		sz := sizes[i%len(sizes)]
		if off+sz > arena {
			if live > 0 {
				live = 0 // wait for all to finish, then wholesale reset
			}
			off = 0
		}
		off += sz
		live++
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
