package serve

import (
	"sort"
	"testing"

	"repro/internal/sim"
)

// randomRecords builds n completed records with seeded-random submit, wait and
// service intervals (plus a sprinkling of drops), the raw material for the
// percentile property sweeps below.
func randomRecords(n int, seed int64, dropEvery int) []Record {
	rng := newRand(seed)
	recs := make([]Record, n)
	var clock sim.Time
	for i := range recs {
		clock += sim.Time(rng.float01() * 10_000)
		recs[i].Submit = clock
		if dropEvery > 0 && i%dropEvery == dropEvery-1 {
			recs[i].Dropped = true
			continue
		}
		recs[i].Start = clock + sim.Time(rng.float01()*50_000)
		recs[i].Done = recs[i].Start + sim.Time(1+rng.float01()*100_000)
	}
	return recs
}

// TestPercentileInvariants sweeps randomized record sets of many sizes and
// asserts the order-statistic laws every Summarize result must satisfy:
// p50 <= p90 <= p99 <= max, every quantile is an observed latency, and the
// bookkeeping (offered = completed + dropped) balances.
func TestPercentileInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 17, 100, 999} {
		for seed := int64(1); seed <= 5; seed++ {
			recs := randomRecords(n, seed, 7)
			st := Summarize(recs, 25_000)
			if st.Offered != n || st.Completed+st.Dropped != n {
				t.Fatalf("n=%d seed=%d: offered %d != completed %d + dropped %d",
					n, seed, st.Offered, st.Completed, st.Dropped)
			}
			if st.Completed == 0 {
				continue
			}
			if !(st.P50 <= st.P90 && st.P90 <= st.P99 && st.P99 <= st.Max) {
				t.Errorf("n=%d seed=%d: quantiles out of order: p50=%v p90=%v p99=%v max=%v",
					n, seed, st.P50, st.P90, st.P99, st.Max)
			}
			lats := map[sim.Time]bool{}
			var maxLat sim.Time
			for _, r := range recs {
				if !r.Dropped {
					lats[r.Latency()] = true
					if r.Latency() > maxLat {
						maxLat = r.Latency()
					}
				}
			}
			for _, q := range []sim.Time{st.P50, st.P90, st.P99, st.Max} {
				if !lats[q] {
					t.Errorf("n=%d seed=%d: quantile %v is not an observed latency", n, seed, q)
				}
			}
			if st.Max != maxLat {
				t.Errorf("n=%d seed=%d: Max=%v, want true maximum %v", n, seed, st.Max, maxLat)
			}
		}
	}
}

// TestPercentileNearestRankExact pins the nearest-rank definition on vectors
// small enough to enumerate by hand: the q-quantile of n sorted values is the
// ceil(q*n)-th smallest, so tiny n snaps to specific elements rather than
// interpolating between them.
func TestPercentileNearestRankExact(t *testing.T) {
	cases := []struct {
		sorted              []sim.Time
		p50, p90, p99, p100 sim.Time
	}{
		{[]sim.Time{42}, 42, 42, 42, 42},
		{[]sim.Time{10, 20}, 10, 20, 20, 20},             // ceil(.5*2)=1st, ceil(.9*2)=2nd
		{[]sim.Time{10, 20, 30}, 20, 30, 30, 30},         // ceil(.5*3)=2nd
		{[]sim.Time{1, 2, 3, 4}, 2, 4, 4, 4},             // ceil(.9*4)=4th
		{[]sim.Time{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 5, 9, 10, 10}, // ceil(.99*10)=10th
	}
	for _, c := range cases {
		if got := Percentile(c.sorted, 0.50); got != c.p50 {
			t.Errorf("p50(%v) = %v, want %v", c.sorted, got, c.p50)
		}
		if got := Percentile(c.sorted, 0.90); got != c.p90 {
			t.Errorf("p90(%v) = %v, want %v", c.sorted, got, c.p90)
		}
		if got := Percentile(c.sorted, 0.99); got != c.p99 {
			t.Errorf("p99(%v) = %v, want %v", c.sorted, got, c.p99)
		}
		if got := Percentile(c.sorted, 1.0); got != c.p100 {
			t.Errorf("p100(%v) = %v, want %v", c.sorted, got, c.p100)
		}
	}
}

// TestPercentileMatchesSortRank cross-checks Percentile against a brute-force
// re-derivation on randomized vectors: sort, index, compare.
func TestPercentileMatchesSortRank(t *testing.T) {
	rng := newRand(11)
	for n := 1; n <= 64; n++ {
		v := make([]sim.Time, n)
		for i := range v {
			v[i] = sim.Time(rng.float01() * 1e6)
		}
		sort.Float64s(v)
		for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
			idx := int(float64(n) * q)
			if float64(idx) < float64(n)*q {
				idx++
			}
			if idx < 1 {
				idx = 1
			}
			if got, want := Percentile(v, q), v[idx-1]; got != want {
				t.Fatalf("n=%d q=%v: Percentile=%v, want rank %d value %v", n, q, got, idx, want)
			}
		}
	}
}

// TestMaxSustainableMonotoneInSLO: loosening the SLO can only widen the set of
// sustainable rates, so the reported capacity is non-decreasing in the SLO.
// The verdict vectors are derived from one randomized latency curve per seed —
// monotone-noisy p99s judged against an ascending ladder of SLO bounds.
func TestMaxSustainableMonotoneInSLO(t *testing.T) {
	rates := DefaultRates()
	for seed := int64(1); seed <= 20; seed++ {
		rng := newRand(seed)
		// A latency curve that drifts upward with load, with noise: realistic
		// enough to produce mixed verdict prefixes across the SLO ladder.
		p99 := make([]float64, len(rates))
		base := 5_000 + rng.float01()*20_000
		for i := range p99 {
			base += rng.float01() * 30_000
			p99[i] = base
		}
		slos := []float64{10_000, 25_000, 50_000, 100_000, 200_000, 1e9}
		prev := -1.0
		for _, slo := range slos {
			ok := make([]bool, len(rates))
			for i := range rates {
				ok[i] = p99[i] <= slo
			}
			cap := MaxSustainable(rates, ok)
			if cap < prev {
				t.Fatalf("seed=%d: capacity fell from %v to %v when SLO loosened to %v",
					seed, prev, cap, slo)
			}
			prev = cap
		}
	}
}

// TestSummarizeSLOAccounting: goodput counts only completions within the SLO
// against everything offered, so SLOSatisfied and Goodput must agree with a
// direct recount.
func TestSummarizeSLOAccounting(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		recs := randomRecords(200, seed, 9)
		slo := sim.Time(60_000)
		st := Summarize(recs, slo)
		met := 0
		for _, r := range recs {
			if !r.Dropped && r.Latency() <= slo {
				met++
			}
		}
		if st.SLOMet != met {
			t.Errorf("seed=%d: SLOMet=%d, want %d", seed, st.SLOMet, met)
		}
		if want := float64(met) / float64(len(recs)); st.Goodput != want {
			t.Errorf("seed=%d: Goodput=%v, want %v", seed, st.Goodput, want)
		}
		if st.SLOSatisfied() != (st.Completed > 0 && st.Dropped == 0 && st.P99 <= slo) {
			t.Errorf("seed=%d: SLOSatisfied inconsistent with its definition", seed)
		}
	}
}
