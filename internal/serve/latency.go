package serve

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Stats summarizes the per-task Records of one open-loop run against a tail
// SLO. All quantiles are exact order statistics over the completed tasks'
// latency vector (sorted, nearest-rank) — never an approximation sketch — so
// reports are bit-deterministic.
type Stats struct {
	Offered   int // arrivals presented to the system
	Dropped   int // rejected by admission control
	Completed int // admitted tasks that finished

	Mean sim.Time // mean submit-to-complete latency, cycles
	P50  sim.Time
	P90  sim.Time
	P99  sim.Time
	Max  sim.Time

	MeanWait    sim.Time // mean submit-to-service-start (queueing)
	MeanService sim.Time // mean service-start-to-complete

	SLO     sim.Time // the p99 bound the run was judged against
	SLOMet  int      // completed tasks within SLO
	Goodput float64  // SLOMet / Offered: drops and SLO misses both count against it
}

// SLOSatisfied reports whether the run's p99 latency met the SLO with no
// drops — the "sustainable" predicate of the capacity sweep.
func (s Stats) SLOSatisfied() bool {
	return s.Completed > 0 && s.Dropped == 0 && s.P99 <= s.SLO
}

// Summarize folds one run's records into Stats. Records with Dropped set
// count as offered-but-rejected; everything else must have Done >= Start >=
// Submit (a runner bug otherwise, and worth a loud panic since silent
// negative latencies would corrupt every percentile above it).
func Summarize(recs []Record, slo sim.Time) Stats {
	s := Stats{Offered: len(recs), SLO: slo}
	lats := make([]sim.Time, 0, len(recs))
	var waitSum, svcSum float64
	for i, r := range recs {
		if r.Dropped {
			s.Dropped++
			continue
		}
		if r.Start < r.Submit || r.Done < r.Start {
			panic(fmt.Sprintf("serve: record %d is out of order: submit=%v start=%v done=%v", i, r.Submit, r.Start, r.Done))
		}
		lats = append(lats, r.Latency())
		waitSum += r.Wait()
		svcSum += r.Service()
		if r.Latency() <= slo {
			s.SLOMet++
		}
	}
	s.Completed = len(lats)
	if s.Completed == 0 {
		return s
	}
	sort.Float64s(lats)
	var sum float64
	for _, l := range lats {
		sum += l
	}
	n := float64(s.Completed)
	s.Mean = sum / n
	s.P50 = Percentile(lats, 0.50)
	s.P90 = Percentile(lats, 0.90)
	s.P99 = Percentile(lats, 0.99)
	s.Max = lats[len(lats)-1]
	s.MeanWait = waitSum / n
	s.MeanService = svcSum / n
	if s.Offered > 0 {
		s.Goodput = float64(s.SLOMet) / float64(s.Offered)
	}
	return s
}

// Percentile returns the exact nearest-rank q-quantile (0 < q <= 1) of an
// ascending-sorted vector: the ceil(q*n)-th smallest element. It is the one
// quantile definition that is always an actually observed latency.
func Percentile(sorted []sim.Time, q float64) sim.Time {
	if len(sorted) == 0 {
		panic("serve: percentile of an empty vector")
	}
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("serve: percentile quantile %v outside (0,1]", q))
	}
	idx := int(math.Ceil(q * float64(len(sorted))))
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}
