// Package serve is the open-loop serving layer over the discrete-event
// stack: it generates timed task arrivals, accounts per-task latency exactly
// (sorted order statistics, never sketches — results stay bit-deterministic),
// applies admission control, and locates each execution scheme's maximum
// sustainable task rate under a tail-latency SLO.
//
// The package deliberately sits *above* the runners: it knows nothing about
// Pagoda, HyperQ or GeMTC. Generators produce arrival timestamps in virtual
// cycles, policies decide admission from (virtual time, in-flight count), and
// Summarize folds the per-task Records a timed runner returns into tail
// statistics. internal/runners provides the timed-submission paths
// (RunPagodaOpenLoop, ...) that consume arrivals and produce Records;
// internal/harness wires both into the serve_latency and serve_capacity
// experiments.
//
// Everything here is deterministic by construction: pseudo-randomness comes
// only from an explicitly seeded xorshift PRNG (the randsource rule), and no
// wall-clock, map iteration or goroutines are involved.
package serve

import "repro/internal/sim"

// Record is one task's life under open-loop serving, in virtual cycles.
// Submit is the arrival instant of the open-loop process (work arrives
// whether or not the system is ready); Start is when the scheme actually
// began serving the task (Pagoda: scheduled onto a warp; HyperQ: kernel
// dispatched; GeMTC: SuperKernel batch launched); Done is completion as the
// scheme defines it (GeMTC: the whole batch's end, its Fig. 10 property).
// A Dropped record was rejected by admission control and has zero
// Start/Done.
type Record struct {
	Submit  sim.Time
	Start   sim.Time
	Done    sim.Time
	Dropped bool
}

// Wait returns the queueing delay: arrival to service start.
func (r Record) Wait() sim.Time { return r.Start - r.Submit }

// Service returns the in-service time: start to completion.
func (r Record) Service() sim.Time { return r.Done - r.Start }

// Latency returns the full submit-to-complete latency.
func (r Record) Latency() sim.Time { return r.Done - r.Submit }

// xorshift is the package's seeded deterministic PRNG (the same generator
// workloads uses for input-size draws), so arrival sequences are identical
// across Go versions and runs.
type xorshift uint64

func newRand(seed int64) *xorshift {
	x := xorshift(uint64(seed)*2685821657736338717 + 0x9E3779B97F4A7C15)
	if x == 0 {
		x = 0x2545F4914F6CDD1D
	}
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// float01 returns a float in [0,1).
func (x *xorshift) float01() float64 { return float64(x.next()>>11) / (1 << 53) }
