package serve

import (
	"fmt"

	"repro/internal/sim"
)

// A Policy decides, at a task's arrival instant, whether to admit it.
// inFlight is the number of admitted tasks not yet completed (the system's
// current backlog as the submitter knows it). Policies may keep state (the
// token bucket does); a fresh policy must be constructed per run.
//
// Without admission control an open-loop system past saturation queues
// without bound and every latency percentile diverges; these policies are
// how overload degrades into bounded latency plus explicit drops instead.
type Policy interface {
	Name() string
	Admit(now sim.Time, inFlight int) bool
}

// Unbounded admits everything — the pure open-loop measurement mode, where
// past-saturation behavior shows up as unbounded queueing delay.
type Unbounded struct{}

// Name implements Policy.
func (Unbounded) Name() string { return "unbounded" }

// Admit implements Policy.
func (Unbounded) Admit(sim.Time, int) bool { return true }

// BoundedQueue admits a task only while fewer than Limit admitted tasks are
// in flight; beyond that arrivals are rejected (load shedding at the door).
type BoundedQueue struct {
	Limit int
}

// Name implements Policy.
func (p BoundedQueue) Name() string { return fmt.Sprintf("queue%d", p.Limit) }

// Admit implements Policy.
func (p BoundedQueue) Admit(_ sim.Time, inFlight int) bool { return inFlight < p.Limit }

// TokenBucket admits at a sustained Rate (tokens/second) with burst capacity
// Burst: each admission spends a token, tokens refill continuously in
// virtual time. It shapes offered load to a contract independent of the
// backlog signal BoundedQueue uses.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   sim.Time
}

// NewTokenBucket returns a full bucket. rate must be positive; burst is
// clamped to at least one token so a drained system can always admit.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	checkRate(rate)
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Name implements Policy.
func (p *TokenBucket) Name() string { return fmt.Sprintf("token%g/s+%g", p.rate, p.burst) }

// Admit implements Policy.
func (p *TokenBucket) Admit(now sim.Time, _ int) bool {
	p.tokens += (now - p.last) * p.rate / cyclesPerSecond
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
	p.last = now
	if p.tokens < 1 {
		return false
	}
	p.tokens--
	return true
}
