package serve

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

// These are the regression tests for the generator-parameter fix: every
// arrival generator must reject non-positive (or non-finite) rates and
// durations with a descriptive error from Validate, and Times must panic
// with the same message instead of looping forever in a rejection sampler
// or silently emitting a degenerate schedule.

func TestGeneratorValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		g    Generator
		want string // substring the error must carry
	}{
		{FixedRate{Rate: 0}, "fixed-rate arrival rate"},
		{FixedRate{Rate: -5}, "fixed-rate arrival rate"},
		{FixedRate{Rate: math.Inf(1)}, "fixed-rate arrival rate"},
		{Poisson{Rate: 0, Seed: 1}, "poisson arrival rate"},
		{Poisson{Rate: math.NaN(), Seed: 1}, "poisson arrival rate"},
		{Bursty{PeakRate: 0, Burst: 4, Gap: 10}, "bursty peak rate"},
		{Bursty{PeakRate: 1e3, Burst: 0, Gap: 10}, "burst size"},
		{Bursty{PeakRate: 1e3, Burst: 4, Gap: -1}, "inter-burst gap"},
		{Bursty{PeakRate: 1e3, Burst: 4, Gap: math.Inf(1)}, "inter-burst gap"},
		{Diurnal{MeanRate: 0, Swing: 0.5, Period: 1e6, Seed: 1}, "diurnal mean rate"},
		{Diurnal{MeanRate: 1e3, Swing: -0.1, Period: 1e6, Seed: 1}, "swing"},
		{Diurnal{MeanRate: 1e3, Swing: 1.5, Period: 1e6, Seed: 1}, "swing"},
		{Diurnal{MeanRate: 1e3, Swing: 0.5, Period: 0, Seed: 1}, "diurnal period"},
		{Diurnal{MeanRate: 1e3, Swing: 0.5, Period: -1e6, Seed: 1}, "diurnal period"},
		{FlashCrowd{BaseRate: 0, SpikeRate: 1e4, SpikeAt: 0, SpikeDur: 1e6}, "base rate"},
		{FlashCrowd{BaseRate: 1e3, SpikeRate: -1, SpikeAt: 0, SpikeDur: 1e6}, "spike rate"},
		{FlashCrowd{BaseRate: 1e3, SpikeRate: 1e4, SpikeAt: -5, SpikeDur: 1e6}, "onset"},
		{FlashCrowd{BaseRate: 1e3, SpikeRate: 1e4, SpikeAt: 0, SpikeDur: 0}, "spike duration"},
		{Trace{At: []sim.Time{5, 3}}, "decrease"},
		{Trace{At: []sim.Time{-1, 3}}, "finite non-negative"},
	}
	for _, c := range cases {
		err := c.g.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted bad parameters", c.g.Name())
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.g.Name(), err, c.want)
		}
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: Times did not panic on invalid parameters", c.g.Name())
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, c.want) {
					t.Errorf("%s: Times panic %v does not carry the Validate message %q", c.g.Name(), r, c.want)
				}
			}()
			c.g.Times(4)
		}()
	}
}

func TestGeneratorValidateAcceptsGoodParams(t *testing.T) {
	good := []Generator{
		FixedRate{Rate: 16e3},
		Poisson{Rate: 16e3, Seed: 1},
		Bursty{PeakRate: 64e3, Burst: 8, Gap: 1e6},
		Diurnal{MeanRate: 16e3, Swing: 0.6, Period: 50e6, Seed: 1},
		FlashCrowd{BaseRate: 8e3, SpikeRate: 64e3, SpikeAt: 1e6, SpikeDur: 4e6, Seed: 1},
		Trace{At: []sim.Time{1, 2, 3, 4}},
	}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: Validate rejected good parameters: %v", g.Name(), err)
			continue
		}
		n := 4
		ts := g.Times(n)
		if len(ts) != n {
			t.Errorf("%s: Times(%d) returned %d arrivals", g.Name(), n, len(ts))
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				t.Errorf("%s: arrivals decrease at %d: %v < %v", g.Name(), i, ts[i], ts[i-1])
			}
		}
	}
}

// TestDiurnalRateVaries checks the curve actually shapes traffic: over the
// first period, the half-day around the sine peak must collect visibly more
// arrivals than the half-day around the trough.
func TestDiurnalRateVaries(t *testing.T) {
	g := Diurnal{MeanRate: 50e3, Swing: 0.8, Period: 20e6, Seed: 7}
	ts := g.Times(2000)
	var peak, trough int
	for _, at := range ts {
		phase := math.Mod(at, g.Period) / g.Period
		switch {
		case phase < 0.5:
			peak++ // sin > 0: above-mean half of the day
		default:
			trough++
		}
	}
	if peak <= trough*2 {
		t.Fatalf("diurnal curve too flat: %d arrivals in the peak half vs %d in the trough half", peak, trough)
	}
}

// TestFlashCrowdSpikeDensity checks the spike window's arrival density is a
// multiple of the background's.
func TestFlashCrowdSpikeDensity(t *testing.T) {
	g := FlashCrowd{BaseRate: 4e3, SpikeRate: 64e3, SpikeAt: 10e6, SpikeDur: 10e6, Seed: 3}
	ts := g.Times(1500)
	inSpike := 0
	for _, at := range ts {
		if at >= g.SpikeAt && at < g.SpikeAt+g.SpikeDur {
			inSpike++
		}
	}
	// 10ms at 64k/s expects ~640 arrivals; the same window at the base rate
	// would expect ~40.
	if inSpike < 300 {
		t.Fatalf("flash crowd too weak: %d arrivals inside the spike window", inSpike)
	}
}

// TestThinnedDeterministic pins that the NHPP shapes are pure values like
// every other generator.
func TestThinnedDeterministic(t *testing.T) {
	gens := []Generator{
		Diurnal{MeanRate: 20e3, Swing: 0.5, Period: 30e6, Seed: 11},
		FlashCrowd{BaseRate: 5e3, SpikeRate: 40e3, SpikeAt: 2e6, SpikeDur: 8e6, Seed: 11},
	}
	for _, g := range gens {
		a := g.Times(512)
		b := g.Times(512)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs across identical calls: %v != %v", g.Name(), i, a[i], b[i])
			}
		}
	}
}
