package serve

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// cyclesPerSecond converts task rates (tasks/second) to the engine's clock
// (1 cycle = 1 ns at 1 GHz).
const cyclesPerSecond = 1e9

// A Generator produces the arrival timestamp sequence of an open-loop
// workload: Times(n) returns n nondecreasing virtual-cycle instants at which
// tasks 0..n-1 enter the system. Generators are pure values — the same
// generator produces the same sequence every call, so experiment cells can
// regenerate arrivals independently and byte-identically at any harness
// parallelism.
//
// Validate reports a descriptive error when the generator's parameters can
// produce no usable sequence (non-positive or non-finite rates, durations or
// amplitudes). Times panics with the same message: a bad rate would otherwise
// loop forever in the rejection samplers or silently emit a zero/Inf arrival
// schedule, and CLI layers should have called Validate first.
type Generator interface {
	Name() string
	Times(n int) []sim.Time
	Validate() error
}

// mustValidate is the Times-side guard: generators are plain values, so a
// misparameterized one reaching Times is a programming error worth a panic
// carrying the same descriptive message Validate returns. It takes the error
// rather than the Generator so the concrete value is not boxed into the
// interface on the hot path (the arrivals benchmarks pin 1 alloc/op).
func mustValidate(err error) {
	if err != nil {
		panic(err.Error())
	}
}

// rateErr rejects rates that are not positive finite tasks/second.
func rateErr(what string, rate float64) error {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("serve: %s %v is not a positive finite tasks/second", what, rate)
	}
	return nil
}

// durErr rejects durations that are not positive finite cycles.
func durErr(what string, d sim.Time) error {
	if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return fmt.Errorf("serve: %s %v is not a positive finite cycle count", what, d)
	}
	return nil
}

// FixedRate spaces arrivals exactly 1/Rate seconds apart — the deterministic
// baseline process (a perfectly paced load generator).
type FixedRate struct {
	Rate float64 // tasks per second
}

// Name implements Generator.
func (g FixedRate) Name() string { return fmt.Sprintf("fixed@%g/s", g.Rate) }

// Validate implements Generator.
func (g FixedRate) Validate() error { return rateErr("fixed-rate arrival rate", g.Rate) }

// Times implements Generator. The first arrival lands one interval in, so a
// zero-time submission burst never occurs.
func (g FixedRate) Times(n int) []sim.Time {
	mustValidate(g.Validate())
	gap := cyclesPerSecond / g.Rate
	out := make([]sim.Time, n)
	for i := range out {
		out[i] = sim.Time(i+1) * gap
	}
	return out
}

// Poisson draws exponential inter-arrival gaps with mean 1/Rate from a
// seeded PRNG — the memoryless arrival process of classic open-loop serving
// studies. Identical (Rate, Seed) pairs produce identical sequences.
type Poisson struct {
	Rate float64 // tasks per second
	Seed int64
}

// Name implements Generator.
func (g Poisson) Name() string { return fmt.Sprintf("poisson@%g/s", g.Rate) }

// Validate implements Generator.
func (g Poisson) Validate() error { return rateErr("poisson arrival rate", g.Rate) }

// Times implements Generator via inverse-CDF sampling: gap = -ln(1-u)/rate.
func (g Poisson) Times(n int) []sim.Time {
	mustValidate(g.Validate())
	r := newRand(g.Seed)
	gap := cyclesPerSecond / g.Rate
	out := make([]sim.Time, n)
	t := sim.Time(0)
	for i := range out {
		t += -math.Log(1-r.float01()) * gap
		out[i] = t
	}
	return out
}

// Bursty emits on-off traffic: bursts of Burst arrivals spaced at PeakRate,
// separated by Gap idle cycles — the antagonistic pattern for schemes whose
// spawn path amortizes poorly (batch launchers see either a full batch or a
// straggler).
type Bursty struct {
	PeakRate float64  // tasks per second within a burst
	Burst    int      // arrivals per burst
	Gap      sim.Time // idle cycles between bursts
}

// Name implements Generator.
func (g Bursty) Name() string {
	return fmt.Sprintf("bursty@%g/s x%d +%gns", g.PeakRate, g.Burst, g.Gap)
}

// Validate implements Generator.
func (g Bursty) Validate() error {
	if err := rateErr("bursty peak rate", g.PeakRate); err != nil {
		return err
	}
	if g.Burst <= 0 {
		return fmt.Errorf("serve: bursty burst size %d is not positive", g.Burst)
	}
	if g.Gap < 0 || math.IsNaN(g.Gap) || math.IsInf(g.Gap, 0) {
		return fmt.Errorf("serve: bursty inter-burst gap %v is not a finite non-negative cycle count", g.Gap)
	}
	return nil
}

// Times implements Generator.
func (g Bursty) Times(n int) []sim.Time {
	mustValidate(g.Validate())
	peakGap := cyclesPerSecond / g.PeakRate
	out := make([]sim.Time, n)
	t := sim.Time(0)
	for i := range out {
		if i > 0 && i%g.Burst == 0 {
			t += g.Gap
		}
		t += peakGap
		out[i] = t
	}
	return out
}

// Diurnal draws arrivals from a nonhomogeneous Poisson process whose rate
// follows a sinusoidal daily curve: rate(t) = MeanRate * (1 + Swing *
// sin(2*pi*t/Period)) — the production traffic shape where load doubles at
// the peak of the day and drains overnight. Swing is the relative amplitude
// in [0, 1]: 0 degenerates to plain Poisson, 1 makes the trough go idle.
// Sampling is by thinning against the peak rate, so the sequence is exact
// and deterministic per (MeanRate, Swing, Period, Seed).
type Diurnal struct {
	MeanRate float64  // tasks per second averaged over a full period
	Swing    float64  // relative amplitude in [0, 1]
	Period   sim.Time // cycles per simulated "day"
	Seed     int64
}

// Name implements Generator.
func (g Diurnal) Name() string {
	return fmt.Sprintf("diurnal@%g/s~%g per%gns", g.MeanRate, g.Swing, g.Period)
}

// Validate implements Generator.
func (g Diurnal) Validate() error {
	if err := rateErr("diurnal mean rate", g.MeanRate); err != nil {
		return err
	}
	if g.Swing < 0 || g.Swing > 1 || math.IsNaN(g.Swing) {
		return fmt.Errorf("serve: diurnal swing %v outside [0, 1]", g.Swing)
	}
	return durErr("diurnal period", g.Period)
}

// rate returns the instantaneous arrival rate at t, tasks/second.
func (g Diurnal) rate(t sim.Time) float64 {
	return g.MeanRate * (1 + g.Swing*math.Sin(2*math.Pi*t/g.Period))
}

// Times implements Generator.
func (g Diurnal) Times(n int) []sim.Time {
	mustValidate(g.Validate())
	return thinned(n, g.Seed, g.MeanRate*(1+g.Swing), g.rate)
}

// FlashCrowd overlays a flash-crowd spike on steady Poisson traffic: the
// rate is BaseRate everywhere except [SpikeAt, SpikeAt+SpikeDur), where it
// jumps to SpikeRate — the viral-moment shape that stresses admission
// control far harder than stationary overload, because the system enters
// the spike with a drained queue and no warning.
type FlashCrowd struct {
	BaseRate  float64  // steady background rate, tasks per second
	SpikeRate float64  // rate while the crowd lasts
	SpikeAt   sim.Time // spike onset, cycles
	SpikeDur  sim.Time // spike duration, cycles
	Seed      int64
}

// Name implements Generator.
func (g FlashCrowd) Name() string {
	return fmt.Sprintf("flash@%g/s^%g/s@%gns+%gns", g.BaseRate, g.SpikeRate, g.SpikeAt, g.SpikeDur)
}

// Validate implements Generator.
func (g FlashCrowd) Validate() error {
	if err := rateErr("flash-crowd base rate", g.BaseRate); err != nil {
		return err
	}
	if err := rateErr("flash-crowd spike rate", g.SpikeRate); err != nil {
		return err
	}
	if g.SpikeAt < 0 || math.IsNaN(g.SpikeAt) || math.IsInf(g.SpikeAt, 0) {
		return fmt.Errorf("serve: flash-crowd onset %v is not a finite non-negative instant", g.SpikeAt)
	}
	return durErr("flash-crowd spike duration", g.SpikeDur)
}

// rate returns the instantaneous arrival rate at t, tasks/second.
func (g FlashCrowd) rate(t sim.Time) float64 {
	if t >= g.SpikeAt && t < g.SpikeAt+g.SpikeDur {
		return g.SpikeRate
	}
	return g.BaseRate
}

// Times implements Generator.
func (g FlashCrowd) Times(n int) []sim.Time {
	mustValidate(g.Validate())
	return thinned(n, g.Seed, math.Max(g.BaseRate, g.SpikeRate), g.rate)
}

// thinned samples n arrivals from a nonhomogeneous Poisson process with
// instantaneous rate rate(t) <= peak by Lewis–Shedler thinning: candidates
// are drawn at the peak rate and accepted with probability rate(t)/peak.
// Each candidate consumes exactly two PRNG draws, so the sequence is a pure
// function of (n, seed, peak, rate). The candidate clock strictly advances
// every iteration (peak is validated positive finite by the callers), so
// the loop always terminates.
func thinned(n int, seed int64, peak float64, rate func(sim.Time) float64) []sim.Time {
	r := newRand(seed)
	gap := cyclesPerSecond / peak
	out := make([]sim.Time, 0, n)
	t := sim.Time(0)
	for len(out) < n {
		t += -math.Log(1-r.float01()) * gap
		if r.float01()*peak < rate(t) {
			out = append(out, t)
		}
	}
	return out
}

// Trace replays a recorded arrival sequence (e.g. captured from a production
// log, or the Times of another generator dumped to disk). The sequence must
// be nondecreasing.
type Trace struct {
	Label string
	At    []sim.Time
}

// Name implements Generator.
func (g Trace) Name() string {
	if g.Label != "" {
		return "trace:" + g.Label
	}
	return fmt.Sprintf("trace[%d]", len(g.At))
}

// Validate implements Generator: the recorded instants must be finite,
// non-negative and nondecreasing. Length-vs-n is checked by Times, which
// knows how many arrivals the run wants.
func (g Trace) Validate() error {
	for i, at := range g.At {
		if at < 0 || math.IsNaN(at) || math.IsInf(at, 0) {
			return fmt.Errorf("serve: trace arrival %d (%v) is not a finite non-negative instant", i, at)
		}
		if i > 0 && at < g.At[i-1] {
			return fmt.Errorf("serve: trace arrivals decrease at %d: %v < %v", i, at, g.At[i-1])
		}
	}
	return nil
}

// Times implements Generator; it returns a copy of the first n recorded
// instants and panics if the trace is shorter than n or not sorted.
func (g Trace) Times(n int) []sim.Time {
	mustValidate(g.Validate())
	if len(g.At) < n {
		panic(fmt.Sprintf("serve: trace has %d arrivals, need %d", len(g.At), n))
	}
	out := make([]sim.Time, n)
	copy(out, g.At[:n])
	return out
}

func checkRate(rate float64) {
	if err := rateErr("arrival rate", rate); err != nil {
		panic(err.Error())
	}
}
