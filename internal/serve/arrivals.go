package serve

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// cyclesPerSecond converts task rates (tasks/second) to the engine's clock
// (1 cycle = 1 ns at 1 GHz).
const cyclesPerSecond = 1e9

// A Generator produces the arrival timestamp sequence of an open-loop
// workload: Times(n) returns n nondecreasing virtual-cycle instants at which
// tasks 0..n-1 enter the system. Generators are pure values — the same
// generator produces the same sequence every call, so experiment cells can
// regenerate arrivals independently and byte-identically at any harness
// parallelism.
type Generator interface {
	Name() string
	Times(n int) []sim.Time
}

// FixedRate spaces arrivals exactly 1/Rate seconds apart — the deterministic
// baseline process (a perfectly paced load generator).
type FixedRate struct {
	Rate float64 // tasks per second
}

// Name implements Generator.
func (g FixedRate) Name() string { return fmt.Sprintf("fixed@%g/s", g.Rate) }

// Times implements Generator. The first arrival lands one interval in, so a
// zero-time submission burst never occurs.
func (g FixedRate) Times(n int) []sim.Time {
	checkRate(g.Rate)
	gap := cyclesPerSecond / g.Rate
	out := make([]sim.Time, n)
	for i := range out {
		out[i] = sim.Time(i+1) * gap
	}
	return out
}

// Poisson draws exponential inter-arrival gaps with mean 1/Rate from a
// seeded PRNG — the memoryless arrival process of classic open-loop serving
// studies. Identical (Rate, Seed) pairs produce identical sequences.
type Poisson struct {
	Rate float64 // tasks per second
	Seed int64
}

// Name implements Generator.
func (g Poisson) Name() string { return fmt.Sprintf("poisson@%g/s", g.Rate) }

// Times implements Generator via inverse-CDF sampling: gap = -ln(1-u)/rate.
func (g Poisson) Times(n int) []sim.Time {
	checkRate(g.Rate)
	r := newRand(g.Seed)
	gap := cyclesPerSecond / g.Rate
	out := make([]sim.Time, n)
	t := sim.Time(0)
	for i := range out {
		t += -math.Log(1-r.float01()) * gap
		out[i] = t
	}
	return out
}

// Bursty emits on-off traffic: bursts of Burst arrivals spaced at PeakRate,
// separated by Gap idle cycles — the antagonistic pattern for schemes whose
// spawn path amortizes poorly (batch launchers see either a full batch or a
// straggler).
type Bursty struct {
	PeakRate float64  // tasks per second within a burst
	Burst    int      // arrivals per burst
	Gap      sim.Time // idle cycles between bursts
}

// Name implements Generator.
func (g Bursty) Name() string {
	return fmt.Sprintf("bursty@%g/s x%d +%gns", g.PeakRate, g.Burst, g.Gap)
}

// Times implements Generator.
func (g Bursty) Times(n int) []sim.Time {
	checkRate(g.PeakRate)
	if g.Burst <= 0 {
		panic(fmt.Sprintf("serve: bursty generator with burst size %d", g.Burst))
	}
	if g.Gap < 0 {
		panic(fmt.Sprintf("serve: bursty generator with negative gap %v", g.Gap))
	}
	peakGap := cyclesPerSecond / g.PeakRate
	out := make([]sim.Time, n)
	t := sim.Time(0)
	for i := range out {
		if i > 0 && i%g.Burst == 0 {
			t += g.Gap
		}
		t += peakGap
		out[i] = t
	}
	return out
}

// Trace replays a recorded arrival sequence (e.g. captured from a production
// log, or the Times of another generator dumped to disk). The sequence must
// be nondecreasing.
type Trace struct {
	Label string
	At    []sim.Time
}

// Name implements Generator.
func (g Trace) Name() string {
	if g.Label != "" {
		return "trace:" + g.Label
	}
	return fmt.Sprintf("trace[%d]", len(g.At))
}

// Times implements Generator; it returns a copy of the first n recorded
// instants and panics if the trace is shorter than n or not sorted.
func (g Trace) Times(n int) []sim.Time {
	if len(g.At) < n {
		panic(fmt.Sprintf("serve: trace has %d arrivals, need %d", len(g.At), n))
	}
	out := make([]sim.Time, n)
	copy(out, g.At[:n])
	for i := 1; i < n; i++ {
		if out[i] < out[i-1] {
			panic(fmt.Sprintf("serve: trace arrivals decrease at %d: %v < %v", i, out[i], out[i-1]))
		}
	}
	return out
}

func checkRate(rate float64) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("serve: arrival rate %v is not a positive finite tasks/second", rate))
	}
}
