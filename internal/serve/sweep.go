package serve

import "fmt"

// DefaultRates is the capacity sweep's offered-load ladder (tasks/second),
// geometric so one grid straddles saturation from a 4-SMM test device to the
// full 24-SMM Titan X.
func DefaultRates() []float64 {
	return []float64{4e3, 8e3, 16e3, 32e3, 64e3, 128e3, 256e3, 512e3}
}

// MaxSustainable walks an ascending rate ladder and returns the highest rate
// whose run satisfied the SLO with every lower rate also satisfying it — the
// knee of the latency-vs-load curve. Requiring a clean prefix means a single
// lucky cell past saturation cannot inflate the reported capacity. It
// returns 0 when even the lowest rate misses the SLO.
func MaxSustainable(rates []float64, ok []bool) float64 {
	if len(rates) != len(ok) {
		panic(fmt.Sprintf("serve: %d rates vs %d verdicts", len(rates), len(ok)))
	}
	max := 0.0
	for i, r := range rates {
		if i > 0 && r <= rates[i-1] {
			panic(fmt.Sprintf("serve: rate ladder not ascending at %d: %v after %v", i, r, rates[i-1]))
		}
		if !ok[i] {
			break
		}
		max = r
	}
	return max
}
