package serve

import (
	"testing"

	"repro/internal/sim"
)

// TestGeneratorsDeterministic: the committed guarantee of the arrival layer —
// same parameters, same sequence, bit for bit, across repeated calls.
func TestGeneratorsDeterministic(t *testing.T) {
	gens := []Generator{
		FixedRate{Rate: 50e3},
		Poisson{Rate: 50e3, Seed: 1},
		Poisson{Rate: 50e3, Seed: 7},
		Bursty{PeakRate: 200e3, Burst: 16, Gap: 100_000},
	}
	for _, g := range gens {
		a := g.Times(512)
		b := g.Times(512)
		if len(a) != 512 || len(b) != 512 {
			t.Fatalf("%s: wrong length %d/%d", g.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs between calls: %x vs %x", g.Name(), i, a[i], b[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Fatalf("%s: arrivals decrease at %d: %v < %v", g.Name(), i, a[i], a[i-1])
			}
		}
		if a[0] <= 0 {
			t.Errorf("%s: first arrival %v not strictly positive", g.Name(), a[0])
		}
	}
}

// TestPoissonSeedAndRate: different seeds give different sequences; the
// empirical mean gap tracks 1/rate within a loose statistical bound.
func TestPoissonSeedAndRate(t *testing.T) {
	a := Poisson{Rate: 50e3, Seed: 1}.Times(4096)
	b := Poisson{Rate: 50e3, Seed: 2}.Times(4096)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/100 {
		t.Errorf("different seeds share %d/%d arrival instants", same, len(a))
	}
	meanGap := a[len(a)-1] / float64(len(a))
	want := cyclesPerSecond / 50e3
	if meanGap < want*0.9 || meanGap > want*1.1 {
		t.Errorf("poisson mean gap %v cycles, want within 10%% of %v", meanGap, want)
	}
}

// TestFixedRateSpacing pins the deterministic generator exactly.
func TestFixedRateSpacing(t *testing.T) {
	a := FixedRate{Rate: 1e6}.Times(4) // 1 task/us => 1000-cycle gaps
	for i, want := range []sim.Time{1000, 2000, 3000, 4000} {
		if a[i] != want {
			t.Errorf("arrival %d = %v, want %v", i, a[i], want)
		}
	}
}

// TestBurstyShape: bursts are tightly spaced, gaps separate them, and the
// whole sequence is reproducible.
func TestBurstyShape(t *testing.T) {
	g := Bursty{PeakRate: 1e6, Burst: 4, Gap: 50_000}
	a := g.Times(8)
	if d := a[3] - a[0]; d != 3000 {
		t.Errorf("intra-burst span = %v, want 3000", d)
	}
	if d := a[4] - a[3]; d != 51_000 {
		t.Errorf("inter-burst gap = %v, want 51000 (gap + peak spacing)", d)
	}
}

// TestTraceReplay: replay returns the recorded prefix and rejects
// out-of-order traces.
func TestTraceReplay(t *testing.T) {
	tr := Trace{Label: "prod", At: []sim.Time{10, 20, 20, 40}}
	a := tr.Times(3)
	if a[0] != 10 || a[1] != 20 || a[2] != 20 {
		t.Errorf("trace replay = %v", a)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unsorted trace did not panic")
			}
		}()
		Trace{At: []sim.Time{10, 5}}.Times(2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short trace did not panic")
			}
		}()
		tr.Times(5)
	}()
}

// TestPercentileExact pins the nearest-rank definition on a tiny vector.
func TestPercentileExact(t *testing.T) {
	v := []sim.Time{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want sim.Time
	}{{0.50, 5}, {0.90, 9}, {0.99, 10}, {1.0, 10}, {0.01, 1}}
	for _, c := range cases {
		if got := Percentile(v, c.q); got != c.want {
			t.Errorf("p%v = %v, want %v", c.q*100, got, c.want)
		}
	}
}

// TestSummarize covers the latency decomposition, SLO accounting and drops.
func TestSummarize(t *testing.T) {
	recs := []Record{
		{Submit: 0, Start: 10, Done: 110},     // wait 10, service 100, latency 110
		{Submit: 0, Start: 50, Done: 250},     // latency 250
		{Submit: 100, Start: 100, Done: 1100}, // latency 1000
		{Dropped: true},
	}
	s := Summarize(recs, 500)
	if s.Offered != 4 || s.Dropped != 1 || s.Completed != 3 {
		t.Fatalf("counts = %+v", s)
	}
	if s.P50 != 250 || s.P99 != 1000 || s.Max != 1000 {
		t.Errorf("percentiles: p50=%v p99=%v max=%v", s.P50, s.P99, s.Max)
	}
	wantMean := sim.Time((110 + 250 + 1000) / 3.0)
	if s.Mean != wantMean {
		t.Errorf("mean = %v, want %v", s.Mean, wantMean)
	}
	if s.MeanWait != sim.Time(10+50+0)/3 {
		t.Errorf("mean wait = %v", s.MeanWait)
	}
	if s.MeanService != sim.Time(100+200+1000)/3 {
		t.Errorf("mean service = %v", s.MeanService)
	}
	if s.SLOMet != 2 {
		t.Errorf("SLOMet = %d, want 2", s.SLOMet)
	}
	if s.Goodput != 0.5 {
		t.Errorf("goodput = %v, want 0.5 (2 of 4 offered within SLO)", s.Goodput)
	}
	if s.SLOSatisfied() {
		t.Error("run with p99 > SLO and drops reported as sustainable")
	}
}

// TestSummarizeEmptyAndAllDropped: degenerate runs must not divide by zero.
func TestSummarizeEmptyAndAllDropped(t *testing.T) {
	if s := Summarize(nil, 100); s.Completed != 0 || s.Goodput != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]Record{{Dropped: true}, {Dropped: true}}, 100)
	if s.Completed != 0 || s.Dropped != 2 || s.SLOSatisfied() {
		t.Errorf("all-dropped summary = %+v", s)
	}
}

// TestAdmissionPolicies exercises each policy's decision rule directly.
func TestAdmissionPolicies(t *testing.T) {
	if !(Unbounded{}).Admit(0, 1<<30) {
		t.Error("unbounded rejected")
	}

	q := BoundedQueue{Limit: 2}
	if !q.Admit(0, 0) || !q.Admit(0, 1) || q.Admit(0, 2) {
		t.Error("bounded queue decisions wrong")
	}

	// Token bucket at 1000 tokens/s, burst 2: two immediate admits, then a
	// reject, then a refill after 1 ms of virtual time.
	tb := NewTokenBucket(1000, 2)
	if !tb.Admit(0, 0) || !tb.Admit(0, 0) {
		t.Error("token bucket rejected within burst")
	}
	if tb.Admit(0, 0) {
		t.Error("token bucket admitted past burst with no refill")
	}
	if !tb.Admit(1e6, 0) { // 1 ms later: 1 token refilled
		t.Error("token bucket did not refill over virtual time")
	}
	if tb.Admit(1e6, 0) {
		t.Error("token bucket over-refilled")
	}
}

// TestMaxSustainable pins the prefix rule of the capacity sweep.
func TestMaxSustainable(t *testing.T) {
	rates := []float64{1, 2, 4, 8}
	cases := []struct {
		ok   []bool
		want float64
	}{
		{[]bool{true, true, true, true}, 8},
		{[]bool{true, true, false, true}, 2}, // lucky cell past saturation ignored
		{[]bool{false, true, true, true}, 0},
		{[]bool{true, false, false, false}, 1},
	}
	for _, c := range cases {
		if got := MaxSustainable(rates, c.ok); got != c.want {
			t.Errorf("MaxSustainable(%v) = %v, want %v", c.ok, got, c.want)
		}
	}
}

// TestMaxSustainableEmptyLadder pins the degenerate sweep: an empty rate
// ladder has no sustainable rate and must report 0, not panic — the
// pagodaperf gate feeds capacity sweeps through here and an empty ladder is
// a legal (if useless) configuration.
func TestMaxSustainableEmptyLadder(t *testing.T) {
	if got := MaxSustainable(nil, nil); got != 0 {
		t.Errorf("MaxSustainable(nil, nil) = %v, want 0", got)
	}
	if got := MaxSustainable([]float64{}, []bool{}); got != 0 {
		t.Errorf("MaxSustainable(empty) = %v, want 0", got)
	}
}
