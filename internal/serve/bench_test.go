package serve

import (
	"testing"

	"repro/internal/sim"
)

// The serve hot paths are arrival generation (one call per experiment cell,
// O(tasks)) and percentile assembly (one sort per cell). `make bench-serve`
// runs these plus the capacity-sweep wall-clock macro recorded in
// BENCH_serve.json.

func BenchmarkArrivalsFixedRate(b *testing.B) {
	g := FixedRate{Rate: 100e3}
	for i := 0; i < b.N; i++ {
		if got := g.Times(100_000); len(got) != 100_000 {
			b.Fatal("short sequence")
		}
	}
}

func BenchmarkArrivalsPoisson(b *testing.B) {
	g := Poisson{Rate: 100e3, Seed: 1}
	for i := 0; i < b.N; i++ {
		if got := g.Times(100_000); len(got) != 100_000 {
			b.Fatal("short sequence")
		}
	}
}

func BenchmarkSummarize(b *testing.B) {
	// 100k records in a worst-case (reverse-sorted latency) order.
	recs := make([]Record, 100_000)
	for i := range recs {
		at := sim.Time(i) * 10
		recs[i] = Record{Submit: at, Start: at + 5, Done: at + 5 + sim.Time(len(recs)-i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := Summarize(recs, 50_000)
		if s.Completed != len(recs) {
			b.Fatal("lost records")
		}
	}
}
