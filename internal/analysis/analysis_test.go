package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseOne parses src as a single-file pass for suppression tests.
func parseOne(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Pass{
		Analyzer: &Analyzer{Name: "demo"},
		Fset:     fset,
		Files:    []*ast.File{f},
		Src:      map[string][]byte{"fix.go": []byte(src)},
	}
}

func findingAt(line int, check string) Finding {
	return Finding{Pos: token.Position{Filename: "fix.go", Line: line}, Check: check, Msg: "m"}
}

func TestTrailingSuppressionCoversItsOwnLine(t *testing.T) {
	p := parseOne(t, "package p\n\nvar x = 1 //pagoda:allow demo trailing form\n")
	kept, sup := ApplySuppressions(p, []Finding{findingAt(3, "demo")})
	if len(kept) != 0 || len(sup) != 1 {
		t.Fatalf("kept=%v suppressed=%v, want 0 kept / 1 suppressed", kept, sup)
	}
}

func TestStandaloneSuppressionCoversNextLine(t *testing.T) {
	p := parseOne(t, "package p\n\n//pagoda:allow demo standalone form\nvar x = 1\n")
	kept, sup := ApplySuppressions(p, []Finding{findingAt(4, "demo")})
	if len(kept) != 0 || len(sup) != 1 {
		t.Fatalf("kept=%v suppressed=%v, want 0 kept / 1 suppressed", kept, sup)
	}
	// ... and not its own line.
	kept, sup = ApplySuppressions(p, []Finding{findingAt(3, "demo")})
	if len(kept) != 1 || len(sup) != 0 {
		t.Fatalf("kept=%v suppressed=%v, want 1 kept / 0 suppressed", kept, sup)
	}
}

func TestSuppressionIsCheckSpecific(t *testing.T) {
	p := parseOne(t, "package p\n\nvar x = 1 //pagoda:allow other justified elsewhere\n")
	kept, sup := ApplySuppressions(p, []Finding{findingAt(3, "demo")})
	if len(kept) != 1 || len(sup) != 0 {
		t.Fatalf("kept=%v suppressed=%v, want 1 kept / 0 suppressed", kept, sup)
	}
}

func TestMalformedSuppressionIsItselfAFinding(t *testing.T) {
	for _, src := range []string{
		"package p\n\nvar x = 1 //pagoda:allow\n",      // no check, no reason
		"package p\n\nvar x = 1 //pagoda:allow demo\n", // no reason
	} {
		p := parseOne(t, src)
		kept, _ := ApplySuppressions(p, nil)
		if len(kept) != 1 || kept[0].Check != "pagoda" ||
			!strings.Contains(kept[0].Msg, "malformed suppression") {
			t.Errorf("src %q: kept = %v, want one [pagoda] malformed-suppression finding", src, kept)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Pos: token.Position{Filename: "a/b.go", Line: 7}, Check: "wallclock", Msg: "no"}
	if got, want := f.String(), "a/b.go:7: [wallclock] no"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestLoadSelf exercises the loader end to end on this package's own
// directory: module discovery, parsing, and type checking with the source
// importer, all offline.
func TestLoadSelf(t *testing.T) {
	pkgs, err := Load(".", []string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(.) = %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "repro/internal/analysis" || p.RelPath != "internal/analysis" {
		t.Errorf("Path=%q RelPath=%q", p.Path, p.RelPath)
	}
	if p.Types == nil || p.Types.Name() != "analysis" {
		t.Errorf("type-checked package missing or misnamed: %v", p.Types)
	}
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("loader picked up test file %s", name)
		}
	}
}
