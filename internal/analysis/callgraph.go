package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the interprocedural substrate for whole-module analyzers: a
// stable cross-package function identity (FuncID), static callee resolution
// (CalleeOf), and a call graph over every function declared in the load set.
//
// Identity matters more than it looks: each package in the load set is
// type-checked independently with the source importer, so the *types.Func
// for repro/internal/sim.(*Engine).Schedule seen from internal/harness is a
// DIFFERENT object than the one produced by type-checking internal/sim
// itself. Object pointers therefore cannot key cross-package maps; FuncID
// strings can.

// A FuncID names a function or method unambiguously across the module:
// "pkgpath.Name" for package-level functions, "pkgpath.Recv.Name" for
// methods (pointer and value receivers collapse to one ID — the analysis
// does not distinguish them).
type FuncID string

// IDOf derives the FuncID of a resolved function object, or "" for objects
// it cannot name (builtins, interface methods without a package).
func IDOf(fn *types.Func) FuncID {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	id := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			id += named.Obj().Name() + "."
		}
	}
	return FuncID(id + fn.Name())
}

// CalleeOf resolves the statically known callee of a call expression using
// the package's type info: a plain identifier (local or dot-imported
// function), or a selector (package function, method on any receiver
// expression). Calls through function-typed values, method values and
// builtins resolve to nil — interprocedural checks treat those
// conservatively at the call site.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// A FuncDeclInfo is one function declaration in the load set, bundled with
// the package whose type info resolves names inside its body.
type FuncDeclInfo struct {
	ID   FuncID
	Decl *ast.FuncDecl
	Pkg  *Package
}

// A CallGraph indexes every declared-with-body function in the load set and
// the static call edges between them. Edges to functions outside the load
// set (stdlib, unloaded packages) are not stored — callers resolve those
// per call site with CalleeOf.
type CallGraph struct {
	// Decls maps each function declared in the load set to its body and
	// home package, in deterministic declaration order per package.
	Decls map[FuncID]*FuncDeclInfo
	// Order lists Decls keys in load order (package order, then file order,
	// then declaration order), so fixpoint iterations are deterministic.
	Order []FuncID
	// Callees lists, for each declared function, the IDs of declared
	// functions it statically calls (duplicates preserved, call order).
	Callees map[FuncID][]FuncID
}

// BuildCallGraph walks every package in the load set and assembles the
// module call graph.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Decls:   map[FuncID]*FuncDeclInfo{},
		Callees: map[FuncID][]FuncID{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				id := IDOf(obj)
				if id == "" {
					continue
				}
				if _, dup := g.Decls[id]; !dup {
					g.Decls[id] = &FuncDeclInfo{ID: id, Decl: fd, Pkg: pkg}
					g.Order = append(g.Order, id)
				}
			}
		}
	}
	for _, id := range g.Order {
		d := g.Decls[id]
		ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := IDOf(CalleeOf(d.Pkg.Info, call))
			if callee == "" {
				return true
			}
			if _, declared := g.Decls[callee]; declared {
				g.Callees[id] = append(g.Callees[id], callee)
			}
			return true
		})
	}
	return g
}
