// Package analysistest runs one analyzer over a fixture directory and checks
// its findings against `// want` comments, the same convention as
// golang.org/x/tools but implemented on the standard library alone.
//
// A fixture line expecting a finding carries a trailing comment
//
//	x := time.Now() // want `time\.Now reads the wall clock`
//
// whose backquoted payload is a regexp matched against "[check] message".
// Lines without a want comment must produce no finding; in particular a line
// carrying //pagoda:allow and no want demonstrates suppression.
//
// Run exercises a per-package analyzer on a single fixture package (every
// .go file directly in the fixture dir). RunModule exercises a whole-module
// analyzer on a fixture *module*: the fixture dir's root files form package
// "fixture", and each subdirectory forms a package importable as
// "fixture/<subdir>", so fixtures can demonstrate flows that cross package
// boundaries.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// Run loads the fixture package in dir, applies the per-package analyzer a,
// applies suppressions, and diffs the surviving findings against the
// fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pass, err := loadFixture(a, dir)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(pass)
	kept, _ := analysis.ApplySuppressions(pass, pass.Findings())
	diffWants(t, kept, pass.Src)
}

// RunModule loads the fixture module in dir (root files plus one package
// per subdirectory), applies the whole-module analyzer a, applies
// suppressions across every fixture file, and diffs the surviving findings
// against the want comments of all files.
func RunModule(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgs, err := LoadFixtureModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	mp := analysis.NewModulePass(a, pkgs)
	a.RunModule(mp)

	var sups []analysis.Suppression
	var kept []analysis.Finding
	src := map[string][]byte{}
	for _, pkg := range pkgs {
		s, malformed := analysis.PackageSuppressions(pkg)
		sups = append(sups, s...)
		kept = append(kept, malformed...)
		for name, data := range pkg.Src {
			src[name] = data
		}
	}
	k, _ := analysis.Partition(mp.Findings(), sups, nil)
	kept = append(kept, k...)
	diffWants(t, kept, src)
}

// diffWants matches kept findings against the want comments in src.
func diffWants(t *testing.T, kept []analysis.Finding, src map[string][]byte) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key]*regexp.Regexp{}
	matched := map[key]bool{}
	for name, data := range src {
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", name, i+1, err)
			}
			wants[key{name, i + 1}] = re
		}
	}

	for _, f := range kept {
		k := key{f.Pos.Filename, f.Pos.Line}
		re, ok := wants[k]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if got := fmt.Sprintf("[%s] %s", f.Check, f.Msg); !re.MatchString(got) {
			t.Errorf("%s:%d: finding %q does not match want `%s`", f.Pos.Filename, f.Pos.Line, got, re)
		}
		matched[k] = true
	}
	for k, re := range wants {
		if !matched[k] {
			t.Errorf("%s:%d: no finding matched want `%s`", k.file, k.line, re)
		}
	}
}

// loadFixture parses and type-checks every .go file in dir as one package.
// Fixtures import only the standard library, which the source importer
// resolves offline.
func loadFixture(a *analysis.Analyzer, dir string) (*analysis.Pass, error) {
	fset := token.NewFileSet()
	files, src, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: no fixture files in %s", dir)
	}
	imp := &fixtureImporter{std: importer.ForCompiler(fset, "source", nil), pkgs: map[string]*types.Package{}}
	tpkg, info, err := check("fixture", fset, files, imp)
	if err != nil {
		return nil, fmt.Errorf("analysistest: type-checking %s: %v", dir, err)
	}
	return &analysis.Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Src:      src,
		Pkg:      tpkg,
		Info:     info,
		RelPath:  "fixture",
	}, nil
}

// LoadFixtureModule loads a fixture directory as a miniature module: the
// root's .go files become package "fixture", each subdirectory's files
// become package "fixture/<subdir>", and fixture packages may import each
// other by those paths (resolved in dependency order). All packages share
// one FileSet, mirroring analysis.Load.
func LoadFixtureModule(dir string) ([]*analysis.Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type rawPkg struct {
		path  string
		dir   string
		files []*ast.File
		src   map[string][]byte
	}
	fset := token.NewFileSet()
	var raws []*rawPkg
	addDir := func(path, d string) error {
		files, src, err := parseDir(fset, d)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			raws = append(raws, &rawPkg{path: path, dir: d, files: files, src: src})
		}
		return nil
	}
	if err := addDir("fixture", dir); err != nil {
		return nil, err
	}
	var subs []string
	for _, e := range ents {
		if e.IsDir() {
			subs = append(subs, e.Name())
		}
	}
	sort.Strings(subs)
	for _, s := range subs {
		if err := addDir("fixture/"+s, filepath.Join(dir, s)); err != nil {
			return nil, err
		}
	}
	if len(raws) == 0 {
		return nil, fmt.Errorf("analysistest: no fixture files under %s", dir)
	}

	imp := &fixtureImporter{std: importer.ForCompiler(fset, "source", nil), pkgs: map[string]*types.Package{}}
	var pkgs []*analysis.Package
	remaining := raws
	for len(remaining) > 0 {
		var next []*rawPkg
		var lastErr error
		for _, r := range remaining {
			tpkg, info, err := check(r.path, fset, r.files, imp)
			if err != nil {
				// Likely an import of a fixture package not yet checked;
				// retry next round.
				lastErr = err
				next = append(next, r)
				continue
			}
			imp.pkgs[r.path] = tpkg
			pkgs = append(pkgs, &analysis.Package{
				Path: r.path, RelPath: r.path, Dir: r.dir, Fset: fset,
				Files: r.files, Src: r.src, Types: tpkg, Info: info,
			})
		}
		if len(next) == len(remaining) {
			return nil, fmt.Errorf("analysistest: type-checking fixture module %s: %v", dir, lastErr)
		}
		remaining = next
	}
	return pkgs, nil
}

// fixtureImporter resolves "fixture/..." paths from already-checked fixture
// packages and everything else through the standard source importer.
type fixtureImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.pkgs[path]; ok {
		return p, nil
	}
	if path == "fixture" || strings.HasPrefix(path, "fixture/") {
		return nil, fmt.Errorf("fixture package %q not yet loaded", path)
	}
	return i.std.Import(path)
}

// parseDir parses every non-test .go file directly in dir.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, map[string][]byte, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	src := map[string][]byte{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(fset, path, data, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		src[path] = data
	}
	return files, src, nil
}

// check type-checks one fixture package.
func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}
