// Package analysistest runs one analyzer over a fixture directory and checks
// its findings against `// want` comments, the same convention as
// golang.org/x/tools but implemented on the standard library alone.
//
// A fixture line expecting a finding carries a trailing comment
//
//	x := time.Now() // want `time\.Now reads the wall clock`
//
// whose backquoted payload is a regexp matched against "[check] message".
// Lines without a want comment must produce no finding; in particular a line
// carrying //pagoda:allow and no want demonstrates suppression.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// Run loads the fixture package in dir, applies a, applies suppressions, and
// diffs the surviving findings against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pass, err := loadFixture(a, dir)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(pass)
	kept, _ := analysis.ApplySuppressions(pass, pass.Findings())

	type key struct {
		file string
		line int
	}
	wants := map[key]*regexp.Regexp{}
	matched := map[key]bool{}
	for name, src := range pass.Src {
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", name, i+1, err)
			}
			wants[key{name, i + 1}] = re
		}
	}

	for _, f := range kept {
		k := key{f.Pos.Filename, f.Pos.Line}
		re, ok := wants[k]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if got := fmt.Sprintf("[%s] %s", f.Check, f.Msg); !re.MatchString(got) {
			t.Errorf("%s:%d: finding %q does not match want `%s`", f.Pos.Filename, f.Pos.Line, got, re)
		}
		matched[k] = true
	}
	for k, re := range wants {
		if !matched[k] {
			t.Errorf("%s:%d: no finding matched want `%s`", k.file, k.line, re)
		}
	}
}

// loadFixture parses and type-checks every .go file in dir as one package.
// Fixtures import only the standard library, which the source importer
// resolves offline.
func loadFixture(a *analysis.Analyzer, dir string) (*analysis.Pass, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	src := map[string][]byte{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, data, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		src[path] = data
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: no fixture files in %s", dir)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("fixture", fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysistest: type-checking %s: %v", dir, err)
	}
	return &analysis.Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Src:      src,
		Pkg:      tpkg,
		Info:     info,
		RelPath:  "fixture",
	}, nil
}
