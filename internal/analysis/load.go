package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked non-test package, ready for
// analyzers.
type Package struct {
	Path    string // full import path, e.g. repro/internal/sim
	RelPath string // module-relative, e.g. internal/sim ("" for the root)
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Src     map[string][]byte
	Types   *types.Package
	Info    *types.Info
}

// Load parses and type-checks the packages matched by patterns, rooted at the
// module containing dir. Patterns follow the go tool's shape: "./..." for the
// whole module, "./internal/sim" for one directory, "./internal/..." for a
// subtree. Only non-test files are loaded — the determinism rules apply to
// simulation code, and tests legitimately use wall clocks and math/rand.
//
// Type checking uses the stdlib source importer, so Load needs no compiled
// export data and works offline on a clean checkout.
func Load(dir string, patterns []string) ([]*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}

	dirSet := map[string]bool{}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "." || base == "" {
			base = dir
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(dir, base)
		}
		if !recursive {
			dirSet[filepath.Clean(base)] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			dirSet[filepath.Clean(p)] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := loadDir(fset, imp, root, modPath, d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(pkgs) == 0 {
		// A sweep that silently matches nothing would report "clean" for a
		// typo'd pattern; make it a load error so drivers exit 2, not 0.
		return nil, fmt.Errorf("analysis: no Go packages match %v", patterns)
	}
	return pkgs, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the module
// root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if p, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(p), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		d = parent
	}
}

// loadDir parses and type-checks the non-test package in one directory, or
// returns nil if the directory holds no non-test Go files.
func loadDir(fset *token.FileSet, imp types.Importer, root, modPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	src := map[string][]byte{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, data, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
		src[path] = data
	}
	if len(files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	importPath := modPath
	if rel != "" {
		importPath = modPath + "/" + rel
	}

	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: imp}
	var typeErrs []error
	conf.Error = func(err error) { typeErrs = append(typeErrs, err) }
	tpkg, _ := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, typeErrs[0])
	}
	return &Package{
		Path:    importPath,
		RelPath: rel,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Src:     src,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// NewPass binds an analyzer to a loaded package.
func NewPass(a *Analyzer, pkg *Package) *Pass {
	return &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Src:      pkg.Src,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		RelPath:  pkg.RelPath,
	}
}
