// Package analysis is a tiny stdlib-only static-analysis framework for the
// repository's determinism rules. It mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer + Pass + reported findings — but
// depends only on go/ast, go/token and go/types so the module stays
// dependency-free and buildable offline.
//
// Findings can be suppressed line-by-line with
//
//	//pagoda:allow <check> <reason>
//
// placed either at the end of the offending line or on a comment line
// directly above it. The reason is mandatory: every intentional exception to
// a determinism rule must say why it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A Finding is one rule violation at a source position.
type Finding struct {
	Pos   token.Position
	Check string // analyzer name, printed as [check]
	Msg   string
}

// String formats the finding the way cmd/pagodavet prints it.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo reports whether the check runs on the package with the given
	// module-relative import path ("internal/sim", "cmd/gpuinfo", "" for the
	// module root). Fixture tests bypass this and call Run directly.
	AppliesTo func(relPath string) bool
	Run       func(*Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Src      map[string][]byte // filename -> source, for suppression placement
	Pkg      *types.Package
	Info     *types.Info
	RelPath  string // module-relative import path

	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:   p.Fset.Position(pos),
		Check: p.Analyzer.Name,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// Findings returns everything reported so far, suppressions not yet applied.
func (p *Pass) Findings() []Finding { return p.findings }

// allowPrefix introduces a suppression comment. The directive form (no space
// after //) matches Go convention for machine-readable comments.
const allowPrefix = "pagoda:allow"

// suppression is one parsed //pagoda:allow directive.
type suppression struct {
	file   string
	line   int // line the directive covers (its own, or the next for a standalone comment)
	check  string
	reason string
}

// parseSuppressions extracts every //pagoda:allow directive from a file. A
// directive with code before it on its line covers that line; a standalone
// comment covers the line below it. Malformed directives (missing check or
// reason) are reported as findings under the "pagoda" pseudo-check so they
// fail the build instead of silently suppressing nothing.
func parseSuppressions(fset *token.FileSet, f *ast.File, src []byte, report func(Finding)) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			pos := fset.Position(c.Slash)
			rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
			check, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if check == "" || reason == "" {
				report(Finding{Pos: pos, Check: "pagoda",
					Msg: "malformed suppression: want //pagoda:allow <check> <reason>"})
				continue
			}
			line := pos.Line
			if standaloneComment(src, pos) {
				line++ // whole-line comment suppresses the line below
			}
			out = append(out, suppression{file: pos.Filename, line: line, check: check, reason: reason})
		}
	}
	return out
}

// standaloneComment reports whether only whitespace precedes the comment on
// its line, i.e. it is not a trailing comment after code.
func standaloneComment(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	for i := pos.Offset - pos.Column + 1; i < pos.Offset && i < len(src); i++ {
		if src[i] != ' ' && src[i] != '\t' {
			return false
		}
	}
	return true
}

// ApplySuppressions partitions findings into kept and suppressed according to
// the //pagoda:allow directives in the pass's files. Malformed directives are
// appended to kept as "pagoda" findings.
func ApplySuppressions(p *Pass, findings []Finding) (kept, suppressed []Finding) {
	type key struct {
		file  string
		line  int
		check string
	}
	allowed := map[key]bool{}
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		for _, s := range parseSuppressions(p.Fset, f, p.Src[name], func(f Finding) {
			kept = append(kept, f)
		}) {
			allowed[key{s.file, s.line, s.check}] = true
		}
	}
	for _, f := range findings {
		if allowed[key{f.Pos.Filename, f.Pos.Line, f.Check}] {
			suppressed = append(suppressed, f)
		} else {
			kept = append(kept, f)
		}
	}
	return kept, suppressed
}

// TypeOf is a nil-tolerant shorthand for Pass.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// UsedPackage resolves an identifier to the package it names (via an import),
// or nil if it does not name one. Used to detect selector expressions like
// time.Now without being fooled by local variables named "time".
func (p *Pass) UsedPackage(id *ast.Ident) *types.Package {
	if p.Info == nil {
		return nil
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported()
	}
	return nil
}
