// Package analysis is a tiny stdlib-only static-analysis framework for the
// repository's determinism rules. It mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer + Pass + reported findings — but
// depends only on go/ast, go/token and go/types so the module stays
// dependency-free and buildable offline.
//
// Findings can be suppressed line-by-line with
//
//	//pagoda:allow <check> <reason>
//
// placed either at the end of the offending line or on a comment line
// directly above it. The reason is mandatory: every intentional exception to
// a determinism rule must say why it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// A Finding is one rule violation at a source position.
type Finding struct {
	Pos   token.Position
	Check string // analyzer name, printed as [check]
	Msg   string
	// Path, when non-nil, is the interprocedural chain that produced the
	// finding (source → call hops → sink), one human-readable step per
	// element. Per-file checks leave it nil.
	Path []string
}

// String formats the finding the way cmd/pagodavet prints it. An
// interprocedural path is appended inline so one grep-able line carries the
// whole source→sink chain.
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
	if len(f.Path) > 0 {
		s += " [" + strings.Join(f.Path, " -> ") + "]"
	}
	return s
}

// An Analyzer is one named check. Per-package analyzers set Run and are
// invoked once per loaded package; whole-module analyzers set RunModule and
// are invoked once over the entire load set, which is what lets them follow
// dataflow across package boundaries. Exactly one of Run/RunModule is set.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo reports whether the check runs on the package with the given
	// module-relative import path ("internal/sim", "cmd/gpuinfo", "" for the
	// module root). Fixture tests bypass this and call Run directly. Module
	// analyzers leave it nil and scope themselves internally.
	AppliesTo func(relPath string) bool
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Src      map[string][]byte // filename -> source, for suppression placement
	Pkg      *types.Package
	Info     *types.Info
	RelPath  string // module-relative import path

	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:   p.Fset.Position(pos),
		Check: p.Analyzer.Name,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// Findings returns everything reported so far, suppressions not yet applied.
func (p *Pass) Findings() []Finding { return p.findings }

// A ModulePass carries every loaded package through one whole-module
// analyzer. Module analyzers see the full load set at once, so they can
// resolve call edges that cross package boundaries.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	findings []Finding
}

// NewModulePass binds a module analyzer to the full load set. All packages
// share one FileSet (Load guarantees this).
func NewModulePass(a *Analyzer, pkgs []*Package) *ModulePass {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	return &ModulePass{Analyzer: a, Fset: fset, Pkgs: pkgs}
}

// Reportf records a finding at pos with no interprocedural path.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportPath(pos, nil, format, args...)
}

// ReportPath records a finding at pos carrying the source→sink chain that
// produced it.
func (p *ModulePass) ReportPath(pos token.Pos, path []string, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:   p.Fset.Position(pos),
		Check: p.Analyzer.Name,
		Msg:   fmt.Sprintf(format, args...),
		Path:  path,
	})
}

// Findings returns everything reported so far, suppressions not yet applied.
func (p *ModulePass) Findings() []Finding { return p.findings }

// allowPrefix introduces a suppression comment. The directive form (no space
// after //) matches Go convention for machine-readable comments.
const allowPrefix = "pagoda:allow"

// A Suppression is one parsed //pagoda:allow directive.
type Suppression struct {
	File   string
	Line   int // line the directive covers (its own, or the next for a standalone comment)
	Check  string
	Reason string
	Pos    token.Position // where the directive itself sits, for stale reporting
}

// Key identifies the finding coordinates a suppression covers.
func (s Suppression) Key() SupKey { return SupKey{s.File, s.Line, s.Check} }

// A SupKey is the (file, line, check) coordinate a suppression binds to.
type SupKey struct {
	File  string
	Line  int
	Check string
}

// parseSuppressions extracts every //pagoda:allow directive from a file. A
// directive with code before it on its line covers that line; a standalone
// comment covers the line below it. Malformed directives (missing check or
// reason) are reported as findings under the "pagoda" pseudo-check so they
// fail the build instead of silently suppressing nothing.
func parseSuppressions(fset *token.FileSet, f *ast.File, src []byte, report func(Finding)) []Suppression {
	var out []Suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			pos := fset.Position(c.Slash)
			rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
			check, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if check == "" || reason == "" {
				report(Finding{Pos: pos, Check: "pagoda",
					Msg: "malformed suppression: want //pagoda:allow <check> <reason>"})
				continue
			}
			line := pos.Line
			if standaloneComment(src, pos) {
				line++ // whole-line comment suppresses the line below
			}
			out = append(out, Suppression{File: pos.Filename, Line: line, Check: check, Reason: reason, Pos: pos})
		}
	}
	return out
}

// PackageSuppressions parses every //pagoda:allow directive in pkg once,
// returning the well-formed directives and the malformed ones as "pagoda"
// findings. Drivers call this once per package (not once per analyzer) so a
// malformed directive is reported exactly once.
func PackageSuppressions(pkg *Package) (sups []Suppression, malformed []Finding) {
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		sups = append(sups, parseSuppressions(pkg.Fset, f, pkg.Src[name], func(f Finding) {
			malformed = append(malformed, f)
		})...)
	}
	return sups, malformed
}

// Partition splits findings into kept and suppressed according to sups,
// recording every suppression that actually fired in used (keyed by
// Suppression.Key). Drivers thread one used map through every partition so
// stale directives — suppressions that fired for no analyzer — can be
// reported afterwards via StaleFindings.
func Partition(findings []Finding, sups []Suppression, used map[SupKey]bool) (kept, suppressed []Finding) {
	allowed := map[SupKey]bool{}
	for _, s := range sups {
		allowed[s.Key()] = true
	}
	for _, f := range findings {
		k := SupKey{f.Pos.Filename, f.Pos.Line, f.Check}
		if allowed[k] {
			suppressed = append(suppressed, f)
			if used != nil {
				used[k] = true
			}
		} else {
			kept = append(kept, f)
		}
	}
	return kept, suppressed
}

// StaleFindings reports every suppression that fired for no finding as a
// finding of its own, under the "suppression" pseudo-check. A //pagoda:allow
// that suppresses nothing is rot: either the offending code moved (so the
// directive now covers the wrong line) or the exception no longer exists (so
// the annotation is dead weight that would silently swallow a future real
// finding on that line). Stale findings are not themselves suppressible.
func StaleFindings(sups []Suppression, used map[SupKey]bool) []Finding {
	var out []Finding
	for _, s := range sups {
		if used[s.Key()] {
			continue
		}
		// The position prefix already names the directive's file; repeat only
		// the base name for the covered line (which differs for a standalone
		// comment: the line below the directive).
		out = append(out, Finding{Pos: s.Pos, Check: "suppression",
			Msg: fmt.Sprintf("stale //pagoda:allow %s: no %s finding on %s:%d; remove the directive or move it back onto the offending line",
				s.Check, s.Check, filepath.Base(s.File), s.Line)})
	}
	return out
}

// standaloneComment reports whether only whitespace precedes the comment on
// its line, i.e. it is not a trailing comment after code.
func standaloneComment(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	for i := pos.Offset - pos.Column + 1; i < pos.Offset && i < len(src); i++ {
		if src[i] != ' ' && src[i] != '\t' {
			return false
		}
	}
	return true
}

// ApplySuppressions partitions findings into kept and suppressed according to
// the //pagoda:allow directives in the pass's files. Malformed directives are
// appended to kept as "pagoda" findings. This is the single-pass convenience
// used by fixture tests; cmd/pagodavet parses suppressions once per package
// with PackageSuppressions and partitions with Partition so it can also
// report stale directives.
func ApplySuppressions(p *Pass, findings []Finding) (kept, suppressed []Finding) {
	var sups []Suppression
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		sups = append(sups, parseSuppressions(p.Fset, f, p.Src[name], func(f Finding) {
			kept = append(kept, f)
		})...)
	}
	k, suppressed := Partition(findings, sups, nil)
	kept = append(kept, k...)
	return kept, suppressed
}

// TypeOf is a nil-tolerant shorthand for Pass.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// UsedPackage resolves an identifier to the package it names (via an import),
// or nil if it does not name one. Used to detect selector expressions like
// time.Now without being fooled by local variables named "time".
func (p *Pass) UsedPackage(id *ast.Ident) *types.Package {
	if p.Info == nil {
		return nil
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported()
	}
	return nil
}
