package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkSnippet type-checks one in-memory file as package path "snip" and
// returns it in Package form.
func checkSnippet(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snip.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("snip", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		Path: "snip", RelPath: "snip", Fset: fset,
		Files: []*ast.File{f}, Src: map[string][]byte{"snip.go": []byte(src)},
		Types: tpkg, Info: info,
	}
}

const cgSrc = `package snip

type T struct{}

func (t *T) M() { helper() }

func helper() int { return leaf() + leaf() }

func leaf() int { return 1 }

func viaValue() {
	f := leaf
	f() // dynamic: not an edge
}
`

func TestBuildCallGraph(t *testing.T) {
	g := BuildCallGraph([]*Package{checkSnippet(t, cgSrc)})

	for _, id := range []FuncID{"snip.T.M", "snip.helper", "snip.leaf", "snip.viaValue"} {
		if g.Decls[id] == nil {
			t.Errorf("Decls missing %q (have %v)", id, g.Order)
		}
	}
	if got := g.Callees["snip.T.M"]; len(got) != 1 || got[0] != "snip.helper" {
		t.Errorf("Callees(T.M) = %v, want [snip.helper]", got)
	}
	// helper calls leaf twice; duplicates are preserved in call order.
	if got := g.Callees["snip.helper"]; len(got) != 2 || got[0] != "snip.leaf" || got[1] != "snip.leaf" {
		t.Errorf("Callees(helper) = %v, want [snip.leaf snip.leaf]", got)
	}
	// A call through a function-typed value resolves no static callee.
	if got := g.Callees["snip.viaValue"]; len(got) != 0 {
		t.Errorf("Callees(viaValue) = %v, want none", got)
	}
}

// TestIDOfMethodCollapsesPointerReceiver pins that *T and T methods share an
// ID, and that cross-package identity is by path string, not object pointer.
func TestIDOfMethodIdentity(t *testing.T) {
	pkg := checkSnippet(t, cgSrc)
	var viaDef, viaUse FuncID
	ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Name.Name == "M" {
				viaDef = IDOf(pkg.Info.Defs[n.Name].(*types.Func))
			}
		}
		return true
	})
	// Resolve the same method through the method set of the named type.
	obj, _, _ := types.LookupFieldOrMethod(pkg.Types.Scope().Lookup("T").Type(), true, pkg.Types, "M")
	viaUse = IDOf(obj.(*types.Func))
	if viaDef != "snip.T.M" || viaUse != "snip.T.M" {
		t.Errorf("IDOf(M) def=%q use=%q, want snip.T.M for both", viaDef, viaUse)
	}
}
