package checks

import (
	"go/ast"

	"repro/internal/analysis"
)

// wallclockBanned are the package-time functions that read or wait on the
// host's wall clock. Pure-value helpers (time.Duration arithmetic,
// time.Unix construction from constants) stay legal: they do not observe
// real time.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
}

// Wallclock flags wall-clock reads and waits in simulation packages. Virtual
// time must come from the sim engine (Engine.Now, Proc.Sleep, sim.Timer):
// a single time.Now in a hot path makes golden runs irreproducible.
var Wallclock = &analysis.Analyzer{
	Name:      "wallclock",
	Doc:       "forbid time.Now/Since/Sleep/timers in simulation code; use the sim engine's virtual clock",
	AppliesTo: inSimScope,
	Run: func(pass *analysis.Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkg := pass.UsedPackage(id)
				if pkg == nil || pkg.Path() != "time" || !wallclockBanned[sel.Sel.Name] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock; simulated time must come from the sim engine (Engine.Now / Proc.Sleep / sim.Timer)",
					sel.Sel.Name)
				return true
			})
		}
	},
}
