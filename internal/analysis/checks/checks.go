// Package checks holds the project-specific determinism analyzers run by
// cmd/pagodavet. Each analyzer enforces one rule from DESIGN.md's
// "Determinism rules" section; fixtures under testdata/ demonstrate the
// true positives and the //pagoda:allow suppression syntax.
package checks

import (
	"strings"

	"repro/internal/analysis"
)

// All lists every analyzer in the order pagodavet runs them. Per-package
// analyzers (Run set) execute once per loaded package; the interprocedural
// ones (RunModule set, currently taintflow) execute once over the whole
// load set, after the per-package sweep.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Wallclock,
		Randsource,
		Maprange,
		Floatorder,
		Rawgo,
		Syncprim,
		Goroutine,
		Taintflow,
	}
}

// simScoped are the module-relative package paths that hold simulation state
// or run under the sim engine's virtual clock. The determinism rules bind
// here; cmd/, examples/ and reporting packages (harness, trace) may touch the
// wall clock for user-facing progress output.
var simScoped = []string{
	"internal/sim",
	"internal/gpu",
	"internal/cuda",
	"internal/pcie",
	"internal/core",
	"internal/runners",
	"internal/workloads",
	"internal/hostcpu",
	"internal/cluster",
	"internal/tenancy",
	"internal/autoscale",
}

// inSimScope reports whether relPath is one of the simulation packages (or a
// future subpackage of one).
func inSimScope(relPath string) bool {
	for _, s := range simScoped {
		if relPath == s || strings.HasPrefix(relPath, s+"/") {
			return true
		}
	}
	return false
}
