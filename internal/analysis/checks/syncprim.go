package checks

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
)

// syncprimBanned are the sync primitives that block on OS-scheduler order
// rather than virtual-time order. (sync/atomic and sync.Pool are left alone:
// they do not impose a wake-up ordering of their own.)
var syncprimBanned = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Cond":      true,
}

// Syncprim flags OS-level synchronization — sync.Mutex/RWMutex/WaitGroup/
// Cond and raw channel operations — in simulation packages outside
// internal/sim. Proc code paths must block on the engine's primitives
// (sim.Sem, sim.Signal, sim.Timer): those wake in deterministic virtual-time
// order, whereas a mutex or channel wakes in whatever order the Go runtime
// picks. internal/sim itself is exempt — the baton handoff is built from one
// unbuffered channel per proc, and that is exactly where such code belongs.
var Syncprim = &analysis.Analyzer{
	Name: "syncprim",
	Doc:  "forbid sync primitives and raw channel ops outside internal/sim; block on sim.Sem/sim.Signal/sim.Timer",
	AppliesTo: func(relPath string) bool {
		return inSimScope(relPath) &&
			relPath != "internal/sim" && !strings.HasPrefix(relPath, "internal/sim/")
	},
	Run: func(pass *analysis.Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					id, ok := n.X.(*ast.Ident)
					if !ok {
						return true
					}
					if pkg := pass.UsedPackage(id); pkg != nil && pkg.Path() == "sync" && syncprimBanned[n.Sel.Name] {
						pass.Reportf(n.Pos(),
							"sync.%s blocks in OS-scheduler order; proc code must use the engine's primitives (sim.Sem / sim.Signal / sim.Timer)",
							n.Sel.Name)
					}
				case *ast.SendStmt:
					pass.Reportf(n.Pos(),
						"raw channel send bypasses the event loop; signal procs with sim.Signal or sim.Sem")
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						pass.Reportf(n.Pos(),
							"raw channel receive blocks outside virtual time; wait on sim.Signal / sim.Sem instead")
					}
				case *ast.ChanType:
					pass.Reportf(n.Pos(),
						"channel type in proc code; hand data over under the baton and signal with sim primitives")
					return false // the banned node is the chan type itself; don't descend
				case *ast.SelectStmt:
					pass.Reportf(n.Pos(),
						"select races its cases in runtime order; model alternatives with sim events or sim.Signal")
				}
				return true
			})
		}
	},
}
