package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Floatorder flags non-associative floating-point accumulation whose
// iteration order is not fixed. (a+b)+c != a+(b+c) in float64, so a sum
// folded in map-range order, channel-arrival order, or goroutine
// interleaving order produces different bits run to run even when the
// multiset of addends is identical — the one class of nondeterminism that
// survives a fully deterministic event order, and the first thing that
// would break bit-for-bit golden times the moment the engine is sharded
// across workers (ROADMAP open item 2). Three shapes are flagged:
//
//   - a float compound assignment (+=, -=, *=, /=, or x = x op ...) inside
//     a range over a map
//   - the same inside a range over a channel (arrival order is whatever the
//     senders raced to)
//   - a float accumulation into a variable captured from outside a
//     goroutine's function literal (merged partial sums ordered by the OS
//     scheduler)
//
// The fix is always the same: accumulate into an indexed slot (per-key,
// per-worker) and fold in a sorted, fixed order afterwards — or justify
// with //pagoda:allow floatorder <reason> when the fold is provably
// order-insensitive (e.g. integral values below 2^53).
var Floatorder = &analysis.Analyzer{
	Name: "floatorder",
	Doc:  "forbid order-unstable float accumulation (map/channel range, goroutine-merged sums); fold in a fixed order",
	AppliesTo: func(relPath string) bool {
		switch relPath {
		case "internal/serve", "internal/harness", "internal/trace":
			return true
		}
		return inSimScope(relPath)
	},
	Run: func(pass *analysis.Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					t := pass.TypeOf(n.X)
					if t == nil {
						return true
					}
					switch t.Underlying().(type) {
					case *types.Map:
						reportFloatAccum(pass, n.Body, "range over map iterates in randomized order")
					case *types.Chan:
						reportFloatAccum(pass, n.Body, "range over channel folds in arrival order")
					}
				case *ast.GoStmt:
					if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
						reportCapturedFloatAccum(pass, lit)
					}
				}
				return true
			})
		}
	},
}

// floatAccumTarget returns the accumulated-into identifier if stmt is a
// floating-point accumulation (x op= y, or x = x op ... mentioning x on the
// right), else nil.
func floatAccumTarget(pass *analysis.Pass, stmt *ast.AssignStmt) *ast.Ident {
	if len(stmt.Lhs) != 1 {
		return nil
	}
	id, ok := stmt.Lhs[0].(*ast.Ident)
	if !ok || !isFloat(pass.TypeOf(id)) {
		return nil
	}
	switch stmt.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return id
	case token.ASSIGN:
		// x = x + ...: the target appears inside the RHS expression.
		obj := pass.Info.Uses[id]
		if obj == nil {
			return nil
		}
		found := false
		ast.Inspect(stmt.Rhs[0], func(n ast.Node) bool {
			if r, ok := n.(*ast.Ident); ok && pass.Info.Uses[r] == obj {
				found = true
			}
			return !found
		})
		if found {
			return id
		}
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// reportFloatAccum flags every float accumulation directly inside body
// (nested range statements run their own check, so their bodies are skipped
// to avoid double reports).
func reportFloatAccum(pass *analysis.Pass, body *ast.BlockStmt, why string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			return false
		case *ast.AssignStmt:
			if id := floatAccumTarget(pass, n); id != nil {
				pass.Reportf(n.Pos(),
					"float accumulation into %s under unordered iteration (%s); (a+b)+c != a+(b+c) in float64 — accumulate per key/worker and fold in sorted order",
					id.Name, why)
			}
		}
		return true
	})
}

// reportCapturedFloatAccum flags float accumulation inside a goroutine body
// when the target is declared outside the function literal — a shared
// partial-sum merged in scheduler order.
func reportCapturedFloatAccum(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		id := floatAccumTarget(pass, assign)
		if id == nil {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || (obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()) {
			return true // declared inside the goroutine: private accumulator
		}
		pass.Reportf(assign.Pos(),
			"float accumulation into captured %s inside a goroutine; partial sums merge in scheduler order — give each worker its own slot and fold deterministically",
			id.Name)
		return true
	})
}
