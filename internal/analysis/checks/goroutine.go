package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Goroutine flags fire-and-forget goroutines: a go statement whose enclosing
// function never joins a sync.WaitGroup. Rawgo already bans goroutines from
// simulation code outside internal/sim; this check covers the rest of the
// tree (harness, cmd, analysis), where worker pools ARE allowed — but only
// the joined kind. A pool that WaitGroup-joins before returning (the harness
// cell scheduler, a future cluster sweep pool) passes naturally; a goroutine
// nobody waits for outlives its function, keeps running across test
// boundaries, and turns deterministic drivers into racy ones. Joins that
// happen in a caller need an explicit //pagoda:allow goroutine <reason>.
var Goroutine = &analysis.Analyzer{
	Name: "goroutine",
	Doc:  "forbid unjoined go statements outside internal/sim; worker pools must WaitGroup-join in the spawning function",
	AppliesTo: func(relPath string) bool {
		return relPath != "internal/sim" && !strings.HasPrefix(relPath, "internal/sim/")
	},
	Run: func(pass *analysis.Pass) {
		for _, f := range pass.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if fn := enclosingFunc(stack[:len(stack)-1]); fn == nil || !joinsWaitGroup(pass, fn) {
					pass.Reportf(g.Pos(),
						"goroutine is never joined in this function; pool spawns must sync.WaitGroup.Wait before returning (or justify with //pagoda:allow goroutine)")
				}
				return true
			})
		}
	},
}

// enclosingFunc returns the innermost FuncDecl or FuncLit body on the node
// path, or nil for a go statement outside any function.
func enclosingFunc(path []ast.Node) *ast.BlockStmt {
	for i := len(path) - 1; i >= 0; i-- {
		switch fn := path[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// joinsWaitGroup reports whether body contains a call to Wait on a
// sync.WaitGroup (by value or pointer), anywhere in its subtree.
func joinsWaitGroup(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		if isWaitGroup(pass.TypeOf(sel.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
