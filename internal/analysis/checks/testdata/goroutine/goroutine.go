// Fixture for the goroutine analyzer: go statements are fine only when the
// spawning function WaitGroup-joins before returning.
package fixture

import "sync"

func fireAndForget(work []func()) {
	for _, w := range work {
		go w() // want `\[goroutine\] goroutine is never joined in this function`
	}
}

func joinedPool(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func() { // a joined pool passes without any suppression
			defer wg.Done()
			w()
		}()
	}
	wg.Wait()
}

func joinedPoolPointer(work []func(), wg *sync.WaitGroup) {
	for _, w := range work {
		wg.Add(1)
		go w()
	}
	wg.Wait()
}

func joinElsewhere(wg *sync.WaitGroup, w func()) {
	wg.Add(1)
	// The join happens in the caller, invisible to this function.
	go w() // want `\[goroutine\] goroutine is never joined in this function`
}

func joinElsewhereAllowed(wg *sync.WaitGroup, w func()) {
	wg.Add(1)
	go w() //pagoda:allow goroutine caller joins this group before the sweep assembles
}

type notSync struct{}

func (notSync) Wait() {}

func lookalikeWaitDoesNotCount(w func()) {
	var n notSync
	go w() // want `\[goroutine\] goroutine is never joined in this function`
	n.Wait()
}

func sequentialIsFine(work []func()) {
	for _, w := range work {
		w()
	}
}
