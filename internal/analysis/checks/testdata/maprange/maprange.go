// Fixture for the maprange analyzer: ranging over a map is fine only while
// the body's effect is independent of iteration order.
package fixture

type scheduler struct{}

func (scheduler) Schedule(delay float64, fn func()) {}
func (scheduler) Wakeup()                           {}

func appendsUnderMapRange(live map[string]int) []string {
	var out []string
	for name := range live { // want `\[maprange\] range over map with order-dependent body \(append\)`
		out = append(out, name)
	}
	return out
}

func schedulesUnderMapRange(pending map[int]func(), s scheduler) {
	for _, fn := range pending { // want `\[maprange\] range over map with order-dependent body \(call to Schedule\)`
		s.Schedule(0, fn)
	}
}

func sendsUnderMapRange(m map[int]int, ch chan<- int) {
	for _, v := range m { // want `\[maprange\] range over map with order-dependent body \(channel send\)`
		ch <- v
	}
}

func commutativeBodyIsFine(m map[string]int) int {
	// Summing is order-independent; no finding.
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func sliceRangeIsFine(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v) // slices iterate in order; no finding
	}
	return out
}

func sortedAfterwards(live map[string]int) []string {
	var out []string
	//pagoda:allow maprange result is sorted by the caller before use
	for name := range live {
		out = append(out, name)
	}
	return out
}
