// Fixture for the wallclock analyzer: wall-clock reads and waits are flagged,
// pure time.Duration arithmetic is not, and //pagoda:allow suppresses.
package fixture

import (
	"fmt"
	"time"
)

func bad() {
	start := time.Now()   // want `\[wallclock\] time\.Now reads the wall clock`
	_ = time.Since(start) // want `\[wallclock\] time\.Since reads the wall clock`
	t := time.NewTimer(0) // want `\[wallclock\] time\.NewTimer reads the wall clock`
	<-t.C
	fmt.Println(<-time.After(0)) // want `\[wallclock\] time\.After reads the wall clock`
}

func sleepIsBadToo() {
	time.Sleep(0) // want `\[wallclock\] time\.Sleep reads the wall clock`
}

func valueReference() {
	// Passing the function as a value is just as nondeterministic as calling it.
	f := time.Now // want `\[wallclock\] time\.Now reads the wall clock`
	_ = f
}

func fine() time.Duration {
	// Duration arithmetic and construction never observe real time.
	d := 3 * time.Second
	return d + time.Millisecond
}

func allowed() {
	t0 := time.Now() //pagoda:allow wallclock fixture demonstrates a justified wall-clock read
	_ = t0
	//pagoda:allow wallclock standalone comment covers the next line
	time.Sleep(0)
}

type shadow struct{ Now func() int }

func notThePackage(time shadow) int {
	// A local named "time" is not the time package; no finding.
	return time.Now()
}
