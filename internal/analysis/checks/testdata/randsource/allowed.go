// Suppressed half of the randsource fixture: a justified import stays quiet.
package fixture

import (
	crand "crypto/rand" //pagoda:allow randsource fixture demonstrates a justified nondeterministic import
)

func entropy(p []byte) { _, _ = crand.Read(p) }
