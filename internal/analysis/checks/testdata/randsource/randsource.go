// Fixture for the randsource analyzer: the finding sits on the import line.
package fixture

import (
	"math/rand" // want `\[randsource\] import of math/rand in simulation code`
)

func draw() int { return rand.Int() }
