package fixture

import "sync"

// Map-range accumulation: (a+b)+c != a+(b+c) in float64 and map order is
// randomized, so the sum's bits differ run to run.
func meanLatency(byTask map[int]float64) float64 {
	var sum float64
	for _, v := range byTask {
		sum += v // want `\[floatorder\] float accumulation into sum under unordered iteration`
	}
	return sum / float64(len(byTask))
}

// Integer accumulation commutes exactly: clean.
func countTasks(byTask map[int]int) int {
	n := 0
	for _, v := range byTask {
		n += v
	}
	return n
}

// Slice iteration has a fixed order: clean.
func totalSorted(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum
}

// Channel fold in arrival order, written as x = x + v: flagged.
func mergeFromWorkers(ch chan float64) float64 {
	var sum float64
	for v := range ch {
		sum = sum + v // want `\[floatorder\] float accumulation into sum under unordered iteration`
	}
	return sum
}

// Goroutine-captured partial sum merged in scheduler order: flagged.
func parallelSum(parts [][]float64) float64 {
	var wg sync.WaitGroup
	var sum float64
	for _, p := range parts {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range p {
				sum += v // want `\[floatorder\] float accumulation into captured sum`
			}
		}()
	}
	wg.Wait()
	return sum
}

// Per-worker slots folded in index order afterwards: clean — the goroutine
// accumulates into its own local and writes one indexed slot.
func parallelSumDeterministic(parts [][]float64) float64 {
	var wg sync.WaitGroup
	partial := make([]float64, len(parts))
	for i, p := range parts {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s float64
			for _, v := range p {
				s += v
			}
			partial[i] = s
		}()
	}
	wg.Wait()
	var sum float64
	for _, s := range partial {
		sum += s
	}
	return sum
}

// Annotated exception: integral addends below 2^53 fold exactly in any
// order, so the suppression is justified.
func allowedSum(byTask map[int]float64) float64 {
	var sum float64
	for _, v := range byTask {
		sum += v //pagoda:allow floatorder addends are integral counts below 2^53; the fold is exact in any order
	}
	return sum
}
