// Fixture for the rawgo analyzer: any go statement is flagged (the analyzer
// is only applied outside internal/sim).
package fixture

func fansOut(work []func()) {
	for _, w := range work {
		go w() // want `\[rawgo\] go statement outside internal/sim`
	}
}

func anonymous() {
	go func() {}() // want `\[rawgo\] go statement outside internal/sim`
}

func sequentialIsFine(work []func()) {
	for _, w := range work {
		w()
	}
}

func allowed(w func()) {
	go w() //pagoda:allow rawgo fixture demonstrates a justified goroutine
}
