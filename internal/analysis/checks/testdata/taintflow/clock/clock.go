// Package clock hides a wall-clock read one package away from any sink: no
// per-file check on the sink package can see the time.Now in here.
package clock

import "time"

// Stamp returns the wall-clock nanosecond count.
func Stamp() int64 { return time.Now().UnixNano() }
