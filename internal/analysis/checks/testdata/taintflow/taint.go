// The root fixture package holds the sink sites. Deliberately, NO banned
// call appears in this file — every nondeterminism source is at least one
// function (and usually one package) away, which is exactly the gap the
// per-file checks cannot see and taintflow must.
package fixture

import (
	"fmt"
	"os"
	"strconv"
	"sync"

	"fixture/clock"
	"fixture/sim"
)

// mkDelay wraps the cross-package wall-clock read: hop 2 of the chain
// time.Now -> clock.Stamp -> mkDelay -> Engine.Schedule.
func mkDelay() sim.Time { return sim.Time(clock.Stamp()) }

// scale passes its parameter through arithmetic to its return value.
func scale(d sim.Time) sim.Time { return d * 2 }

func scheduleNow(e *sim.Engine) {
	e.Schedule(mkDelay(), nil) // want `\[taintflow\] nondeterministic value reaches a sim-time sink: .*wall clock`
}

func scheduleScaled(e *sim.Engine) {
	e.Schedule(scale(mkDelay()), nil) // want `\[taintflow\] nondeterministic value reaches a sim-time sink: .*wall clock`
}

// post forwards its argument into the event heap; drain feeds it map-range
// values. Neither function alone is a finding for the syntactic checks (a
// plain identifier call is not a maprange sink), but the two-hop flow is
// order-dependent.
func post(e *sim.Engine, v int64) {
	e.Schedule(sim.Time(v), nil)
}

func drain(e *sim.Engine, m map[int]int64) {
	for _, v := range m {
		post(e, v) // want `\[taintflow\] nondeterministic value reaches a sim-time sink: .*map iteration order`
	}
}

// rearm re-keys a timer from map-range values: the Timer.Reset sink.
func rearm(t *sim.Timer, jitter map[int]sim.Time) {
	for _, j := range jitter {
		t.Reset(j) // want `\[taintflow\] nondeterministic value reaches a sim-time sink: .*map iteration order`
	}
}

// fromEnv launders the host environment through strconv.
func fromEnv(e *sim.Engine) {
	n, _ := strconv.ParseInt(os.Getenv("PAGODA_DELAY"), 10, 64)
	e.Schedule(sim.Time(n), nil) // want `\[taintflow\] nondeterministic value reaches a sim-time sink: .*host environment`
}

// fromPtr derives a delay from a pointer's identity.
func fromPtr(e *sim.Engine, x *int) {
	key, _ := strconv.ParseInt(fmt.Sprintf("%p", x)[2:], 16, 64)
	e.Schedule(sim.Time(key), nil) // want `\[taintflow\] nondeterministic value reaches a sim-time sink: .*pointer identity`
}

// fromSyncMap schedules inside a sync.Map.Range callback: the callback's
// values arrive in randomized order, like a map range.
func fromSyncMap(e *sim.Engine, m *sync.Map) {
	m.Range(func(k, v any) bool {
		d, ok := v.(sim.Time)
		if ok {
			e.Schedule(d, nil) // want `\[taintflow\] nondeterministic value reaches a sim-time sink: .*sync.Map iteration order`
		}
		return true
	})
}

// Configure is clean: a parameter of an entry point is an input, not a
// source — determinism means "same inputs, same bits".
func Configure(e *sim.Engine, d sim.Time) { e.Schedule(d, nil) }

// drainSorted is clean: slice iteration order is the slice's order.
func drainSorted(e *sim.Engine, ds []sim.Time) {
	for _, d := range ds {
		e.Schedule(d, nil)
	}
}

// drainAllowed demonstrates suppression of a multi-hop finding at the point
// where the taint meets the sink-reaching call.
func drainAllowed(e *sim.Engine, m map[int]int64) {
	for _, v := range m {
		postAllowed(e, v) //pagoda:allow taintflow every value in m is the same constant, so order cannot matter
	}
}

func postAllowed(e *sim.Engine, v int64) { e.Schedule(sim.Time(v), nil) }
