// Package sim is a miniature stand-in for repro/internal/sim: same type and
// method names, so the taintflow base-sink table (matched by package base
// name "sim" plus receiver and method) binds to it exactly as it binds to
// the real engine.
package sim

// Time is simulated time, like the real engine's.
type Time int64

// Engine mirrors the real event loop's scheduling surface.
type Engine struct{ now Time }

func (e *Engine) Schedule(d Time, fn func())    {}
func (e *Engine) ScheduleAt(at Time, fn func()) {}
func (e *Engine) RunUntil(deadline Time) Time   { return e.now }

// Timer mirrors the re-armable one-shot timer.
type Timer struct{ at Time }

func (t *Timer) Reset(d Time)    { t.at = d }
func (t *Timer) ResetAt(at Time) { t.at = at }

// Proc mirrors the engine process handle.
type Proc struct{}

func (p *Proc) Sleep(d Time) {}
