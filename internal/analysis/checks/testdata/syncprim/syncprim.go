// Fixture for the syncprim analyzer: OS-level blocking primitives are
// flagged, sim-style state machines are not.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex // want `\[syncprim\] sync\.Mutex blocks in OS-scheduler order`
	n  int
}

func waits(wg *sync.WaitGroup) { // want `\[syncprim\] sync\.WaitGroup blocks in OS-scheduler order`
	wg.Wait()
}

func makesChannel() {
	ch := make(chan int, 1) // want `\[syncprim\] channel type in proc code`
	ch <- 1                 // want `\[syncprim\] raw channel send bypasses the event loop`
	<-ch                    // want `\[syncprim\] raw channel receive blocks outside virtual time`
}

func selects(a, b <-chan int) int { // want `\[syncprim\] channel type in proc code`
	select { // want `\[syncprim\] select races its cases in runtime order`
	case v := <-a: // want `\[syncprim\] raw channel receive blocks outside virtual time`
		return v
	case v := <-b: // want `\[syncprim\] raw channel receive blocks outside virtual time`
		return v
	}
}

func plainStateIsFine() {
	// Counters and flags mutated under the engine baton need no locking.
	g := guardedFree{}
	g.n++
}

type guardedFree struct{ n int }

func allowedPool() {
	//pagoda:allow syncprim fixture demonstrates a justified channel
	ch := make(chan struct{})
	close(ch)
}
