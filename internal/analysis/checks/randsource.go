package checks

import (
	"strconv"

	"repro/internal/analysis"
)

// randsourceBanned are the RNG packages whose default sources are either
// auto-seeded (math/rand since Go 1.20, math/rand/v2 always) or genuinely
// nondeterministic (crypto/rand). Simulation inputs must come from an
// explicitly seeded PRNG owned by the workload, like workloads.xorshift.
var randsourceBanned = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// Randsource flags imports of nondeterministic or globally seeded RNG
// packages in simulation code. The finding sits on the import line, so a
// suppression there covers every use in the file.
var Randsource = &analysis.Analyzer{
	Name:      "randsource",
	Doc:       "forbid math/rand and crypto/rand in simulation code; use a seeded deterministic PRNG (workloads.xorshift)",
	AppliesTo: inSimScope,
	Run: func(pass *analysis.Pass) {
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !randsourceBanned[path] {
					continue
				}
				pass.Reportf(imp.Pos(),
					"import of %s in simulation code; draw inputs from an explicitly seeded deterministic PRNG (e.g. workloads.xorshift)",
					path)
			}
		}
	},
}
