package checks_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/checks"
)

// Each fixture demonstrates at least one true positive (a `// want` line) and
// one suppressed finding (a //pagoda:allow line with no want), so these tests
// pin both halves of every analyzer's contract.

func TestWallclock(t *testing.T)  { analysistest.Run(t, checks.Wallclock, "testdata/wallclock") }
func TestRandsource(t *testing.T) { analysistest.Run(t, checks.Randsource, "testdata/randsource") }
func TestMaprange(t *testing.T)   { analysistest.Run(t, checks.Maprange, "testdata/maprange") }
func TestFloatorder(t *testing.T) { analysistest.Run(t, checks.Floatorder, "testdata/floatorder") }
func TestRawgo(t *testing.T)      { analysistest.Run(t, checks.Rawgo, "testdata/rawgo") }
func TestSyncprim(t *testing.T)   { analysistest.Run(t, checks.Syncprim, "testdata/syncprim") }
func TestGoroutine(t *testing.T)  { analysistest.Run(t, checks.Goroutine, "testdata/goroutine") }

// TestTaintflow runs the interprocedural check over a multi-package fixture
// module: sources live one function and one package away from every sink.
func TestTaintflow(t *testing.T) { analysistest.RunModule(t, checks.Taintflow, "testdata/taintflow") }

// TestTaintflowBeyondSyntacticChecks pins the tentpole claim: the per-file
// analyzers find NOTHING in the taintflow fixture's sink package (no banned
// call appears in that file), while the interprocedural check reports every
// multi-hop flow with a source→sink path at least three steps long.
func TestTaintflowBeyondSyntacticChecks(t *testing.T) {
	pkgs, err := analysistest.LoadFixtureModule("testdata/taintflow")
	if err != nil {
		t.Fatal(err)
	}
	var root *analysis.Package
	for _, p := range pkgs {
		if p.Path == "fixture" {
			root = p
		}
	}
	if root == nil {
		t.Fatal("fixture root package not loaded")
	}
	for _, a := range []*analysis.Analyzer{checks.Wallclock, checks.Randsource, checks.Maprange} {
		pass := analysis.NewPass(a, root)
		a.Run(pass)
		if fs := pass.Findings(); len(fs) != 0 {
			t.Errorf("syntactic check %s unexpectedly catches the sink package: %v", a.Name, fs)
		}
	}

	mp := analysis.NewModulePass(checks.Taintflow, pkgs)
	checks.Taintflow.RunModule(mp)
	findings := mp.Findings()
	if len(findings) < 5 {
		t.Fatalf("taintflow reported %d findings on the fixture module, want >= 5:\n%v",
			len(findings), findings)
	}
	multiHop := 0
	for _, f := range findings {
		if len(f.Path) < 2 {
			t.Errorf("finding %s has path %v, want at least source and sink", f, f.Path)
		}
		if len(f.Path) >= 4 {
			multiHop++ // source, >=2 call hops, sink
		}
	}
	if multiHop < 3 {
		t.Errorf("only %d findings carry a multi-hop (>=4 step) path, want >= 3", multiHop)
	}
}

// TestScopes pins which packages each analyzer binds to: the wall-clock,
// RNG and map-order rules cover the eleven simulation packages (including
// internal/cluster, internal/tenancy and internal/autoscale); rawgo and goroutine cover everything except
// internal/sim; syncprim covers the simulation packages minus internal/sim
// itself.
func TestScopes(t *testing.T) {
	cases := []struct {
		rel                                                                     string
		wallclock, randsource, maprange, floatorder, rawgo, syncprim, goroutine bool
	}{
		{"internal/sim", true, true, true, true, false, false, false},
		{"internal/sim/subpkg", true, true, true, true, false, false, false},
		{"internal/gpu", true, true, true, true, true, true, true},
		{"internal/core", true, true, true, true, true, true, true},
		{"internal/runners", true, true, true, true, true, true, true},
		{"internal/cluster", true, true, true, true, true, true, true},
		{"internal/tenancy", true, true, true, true, true, true, true},
		{"internal/autoscale", true, true, true, true, true, true, true},
		{"internal/serve", false, false, false, true, true, false, true},
		{"internal/harness", false, false, false, true, true, false, true},
		{"internal/trace", false, false, false, true, true, false, true},
		{"cmd/pagodabench", false, false, false, false, true, false, true},
		{"", false, false, false, false, true, false, true}, // module root (pagoda.go)
	}
	for _, c := range cases {
		got := map[string]bool{
			"wallclock":  checks.Wallclock.AppliesTo(c.rel),
			"randsource": checks.Randsource.AppliesTo(c.rel),
			"maprange":   checks.Maprange.AppliesTo(c.rel),
			"floatorder": checks.Floatorder.AppliesTo(c.rel),
			"rawgo":      checks.Rawgo.AppliesTo(c.rel),
			"syncprim":   checks.Syncprim.AppliesTo(c.rel),
			"goroutine":  checks.Goroutine.AppliesTo(c.rel),
		}
		want := map[string]bool{
			"wallclock": c.wallclock, "randsource": c.randsource,
			"maprange": c.maprange, "floatorder": c.floatorder,
			"rawgo": c.rawgo, "syncprim": c.syncprim,
			"goroutine": c.goroutine,
		}
		for name := range want {
			if got[name] != want[name] {
				t.Errorf("%s.AppliesTo(%q) = %v, want %v", name, c.rel, got[name], want[name])
			}
		}
	}
}

// TestAllRegistered guards the registry against an analyzer being written but
// never wired into the driver. Per-package analyzers carry Run + AppliesTo;
// module analyzers carry RunModule; nothing carries both or neither.
func TestAllRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range checks.All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %q missing name or doc", a.Name)
		}
		switch {
		case a.Run != nil && a.RunModule != nil:
			t.Errorf("analyzer %q sets both Run and RunModule", a.Name)
		case a.Run == nil && a.RunModule == nil:
			t.Errorf("analyzer %q sets neither Run nor RunModule", a.Name)
		case a.Run != nil && a.AppliesTo == nil:
			t.Errorf("per-package analyzer %q missing AppliesTo", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"wallclock", "randsource", "maprange", "floatorder", "rawgo", "syncprim", "goroutine", "taintflow"} {
		if !names[want] {
			t.Errorf("analyzer %q missing from All()", want)
		}
	}
}
