package checks_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/checks"
)

// Each fixture demonstrates at least one true positive (a `// want` line) and
// one suppressed finding (a //pagoda:allow line with no want), so these tests
// pin both halves of every analyzer's contract.

func TestWallclock(t *testing.T)  { analysistest.Run(t, checks.Wallclock, "testdata/wallclock") }
func TestRandsource(t *testing.T) { analysistest.Run(t, checks.Randsource, "testdata/randsource") }
func TestMaprange(t *testing.T)   { analysistest.Run(t, checks.Maprange, "testdata/maprange") }
func TestRawgo(t *testing.T)      { analysistest.Run(t, checks.Rawgo, "testdata/rawgo") }
func TestSyncprim(t *testing.T)   { analysistest.Run(t, checks.Syncprim, "testdata/syncprim") }
func TestGoroutine(t *testing.T)  { analysistest.Run(t, checks.Goroutine, "testdata/goroutine") }

// TestScopes pins which packages each analyzer binds to: the wall-clock,
// RNG and map-order rules cover the nine simulation packages (including
// internal/cluster); rawgo and goroutine cover everything except
// internal/sim; syncprim covers the simulation packages minus internal/sim
// itself.
func TestScopes(t *testing.T) {
	cases := []struct {
		rel                                                         string
		wallclock, randsource, maprange, rawgo, syncprim, goroutine bool
	}{
		{"internal/sim", true, true, true, false, false, false},
		{"internal/sim/subpkg", true, true, true, false, false, false},
		{"internal/gpu", true, true, true, true, true, true},
		{"internal/core", true, true, true, true, true, true},
		{"internal/runners", true, true, true, true, true, true},
		{"internal/cluster", true, true, true, true, true, true},
		{"internal/harness", false, false, false, true, false, true},
		{"internal/trace", false, false, false, true, false, true},
		{"cmd/pagodabench", false, false, false, true, false, true},
		{"", false, false, false, true, false, true}, // module root (pagoda.go)
	}
	for _, c := range cases {
		got := map[string]bool{
			"wallclock":  checks.Wallclock.AppliesTo(c.rel),
			"randsource": checks.Randsource.AppliesTo(c.rel),
			"maprange":   checks.Maprange.AppliesTo(c.rel),
			"rawgo":      checks.Rawgo.AppliesTo(c.rel),
			"syncprim":   checks.Syncprim.AppliesTo(c.rel),
			"goroutine":  checks.Goroutine.AppliesTo(c.rel),
		}
		want := map[string]bool{
			"wallclock": c.wallclock, "randsource": c.randsource,
			"maprange": c.maprange, "rawgo": c.rawgo, "syncprim": c.syncprim,
			"goroutine": c.goroutine,
		}
		for name := range want {
			if got[name] != want[name] {
				t.Errorf("%s.AppliesTo(%q) = %v, want %v", name, c.rel, got[name], want[name])
			}
		}
	}
}

// TestAllRegistered guards the registry against an analyzer being written but
// never wired into the driver.
func TestAllRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range checks.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil || a.AppliesTo == nil {
			t.Errorf("analyzer %+v incompletely defined", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"wallclock", "randsource", "maprange", "rawgo", "syncprim", "goroutine"} {
		if !names[want] {
			t.Errorf("analyzer %q missing from All()", want)
		}
	}
}
