package checks

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Rawgo flags `go` statements anywhere outside internal/sim. The engine's
// baton-passing design (one runnable goroutine at a time, handoff over
// unbuffered channels) is what makes the simulator deterministic; a raw
// goroutine runs outside the baton and races the event loop. Concurrency in
// simulation and driver code must be expressed as engine processes
// (sim.Engine.Spawn).
var Rawgo = &analysis.Analyzer{
	Name: "rawgo",
	Doc:  "forbid go statements outside internal/sim; concurrency routes through sim.Engine.Spawn",
	AppliesTo: func(relPath string) bool {
		return relPath != "internal/sim" && !strings.HasPrefix(relPath, "internal/sim/")
	},
	Run: func(pass *analysis.Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(),
						"go statement outside internal/sim races the engine's execution baton; express concurrency as a sim process (Engine.Spawn)")
				}
				return true
			})
		}
	},
}
