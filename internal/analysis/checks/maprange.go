package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// orderSinkPrefixes name calls whose effect depends on invocation order:
// scheduling events, spawning processes, or pushing onto ordered containers.
// A map iteration feeding any of these inherits Go's randomized iteration
// order — the classic golden-test killer.
var orderSinkPrefixes = []string{
	"Schedule", "Spawn", "Enqueue", "Push", "Emit", "Post", "Wakeup", "Send", "Add",
}

// Maprange flags `range` over a map whose body performs order-dependent
// writes: appending to a slice, sending on a channel, or calling a
// scheduling/queueing method. Iterating a sorted slice of keys (or sorting
// the result afterwards, with a //pagoda:allow) keeps runs bit-for-bit
// reproducible.
var Maprange = &analysis.Analyzer{
	Name:      "maprange",
	Doc:       "forbid order-dependent bodies under range-over-map in simulation code",
	AppliesTo: inSimScope,
	Run: func(pass *analysis.Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if sink := orderDependentSink(rs.Body); sink != "" {
					pass.Reportf(rs.Pos(),
						"range over map with order-dependent body (%s): map iteration order is randomized; iterate a sorted slice of keys instead",
						sink)
				}
				return true
			})
		}
	},
}

// orderDependentSink scans a range body for the first order-dependent effect
// and describes it, or returns "" if the body looks commutative.
func orderDependentSink(body *ast.BlockStmt) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "channel send"
			return false
		case *ast.CallExpr:
			switch fn := n.Fun.(type) {
			case *ast.Ident:
				if fn.Name == "append" {
					sink = "append"
					return false
				}
			case *ast.SelectorExpr:
				for _, p := range orderSinkPrefixes {
					if strings.HasPrefix(fn.Sel.Name, p) {
						sink = "call to " + fn.Sel.Name
						return false
					}
				}
			}
		}
		return true
	})
	return sink
}
