package checks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Taintflow is the whole-module interprocedural determinism check. The
// per-file analyzers (wallclock, randsource, maprange) catch a source used
// at the point it is read; they are blind to a nondeterministic value that
// is produced in one function — or one package — and handed through any
// number of calls before it re-keys the event heap. Taintflow closes that
// gap: it builds the module call graph, summarizes every function
// (does it return tainted data? which parameters flow to a sim-time sink?),
// propagates the summaries to a fixpoint, and reports each place a tainted
// expression meets a sink argument, with the full source→hop→sink chain in
// the diagnostic.
//
// Sources (inherently nondeterministic values):
//   - time.Now / time.Since / time.Until (wall clock)
//   - package-level math/rand and math/rand/v2 calls (auto-seeded global
//     RNG; methods on an explicitly seeded *rand.Rand are not sources)
//   - anything in crypto/rand
//   - os.Getenv / os.LookupEnv / os.Environ (host environment)
//   - fmt verbs formatting pointer identity (a literal format containing %p)
//   - the key/value of a range over a map (iteration order randomized)
//   - the callback arguments of sync.Map.Range (same)
//
// Sinks (where a value starts steering simulated time, and therefore every
// published number derived from it): the delay/deadline arguments of
// sim.Engine.Schedule/ScheduleAt, sim.Timer.Reset/ResetAt and
// sim.Proc.Sleep. Every golden virtual time, latency percentile and
// capacity headline is a pure function of the times entering the event
// heap, so these entry points are the chokepoint for "feeds published
// output". Matching is by package base name ("sim"), receiver and method,
// so fixture mini-sims exercise the same table the real engine binds to.
//
// Command-line flags deliberately are NOT sources: determinism means "same
// inputs, same bits", and flags are inputs. The environment is treated as a
// source because nothing records it alongside the artifacts.
var Taintflow = &analysis.Analyzer{
	Name: "taintflow",
	Doc:  "trace nondeterminism sources through the call graph into sim-time sinks (Engine.Schedule, Timer.Reset, Proc.Sleep)",
	RunModule: func(mp *analysis.ModulePass) {
		st := &tfState{
			graph: analysis.BuildCallGraph(mp.Pkgs),
			sums:  map[analysis.FuncID]*tfSummary{},
		}
		for _, id := range st.graph.Order {
			st.sums[id] = &tfSummary{paramToReturn: map[int]bool{}, sinkParams: map[int][]string{}}
		}
		// Propagate summaries to a fixpoint. Every quantity is monotone and
		// bounded (one return path per function, at most nparams entries in
		// each param map), so this terminates; the round cap is a guard
		// against bugs, not a correctness device.
		for round := 0; round < 64; round++ {
			changed := false
			for _, id := range st.graph.Order {
				if st.analyzeFunc(st.graph.Decls[id], nil) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		// Reporting pass over stable summaries.
		for _, id := range st.graph.Order {
			st.analyzeFunc(st.graph.Decls[id], mp)
		}
	},
}

// A tfSummary is what one function exposes to its callers.
type tfSummary struct {
	returnPath    []string         // non-nil: some return value is intrinsically tainted; the chain says why
	paramToReturn map[int]bool     // parameter indices that can flow to a return value
	sinkParams    map[int][]string // parameter index -> continuation chain down to a base sink
}

type tfState struct {
	graph *analysis.CallGraph
	sums  map[analysis.FuncID]*tfSummary
}

// A taint describes how an expression's value may be nondeterministic:
// intrinsically (path traces back to a source) and/or derived from the
// enclosing function's parameters (params holds their indices).
type taint struct {
	path   []string
	params map[int]bool
}

func (t taint) empty() bool { return t.path == nil && len(t.params) == 0 }

func mergeTaint(a, b taint) taint {
	out := taint{path: a.path}
	if out.path == nil {
		out.path = b.path
	}
	if len(a.params)+len(b.params) > 0 {
		out.params = map[int]bool{}
		for p := range a.params {
			out.params[p] = true
		}
		for p := range b.params {
			out.params[p] = true
		}
	}
	return out
}

// hop appends a call-chain step to an intrinsic taint path.
func hop(t taint, step string) taint {
	if t.path == nil {
		return t
	}
	out := taint{params: t.params}
	out.path = append(append([]string{}, t.path...), step)
	return out
}

// baseSinks are the sim-time entry points, matched against methods of a
// package whose import path ends in "sim" (the real repro/internal/sim and
// fixture mini-sims alike).
var baseSinks = []struct {
	recv, name string
	arg        int
	desc       string
}{
	{"Engine", "Schedule", 0, "sim.Engine.Schedule delay"},
	{"Engine", "ScheduleAt", 0, "sim.Engine.ScheduleAt deadline"},
	{"Engine", "RunUntil", 0, "sim.Engine.RunUntil deadline"},
	{"Timer", "Reset", 0, "sim.Timer.Reset delay"},
	{"Timer", "ResetAt", 0, "sim.Timer.ResetAt deadline"},
	{"Proc", "Sleep", 0, "sim.Proc.Sleep duration"},
}

// baseSinkOf matches a resolved callee against the sink table.
func baseSinkOf(fn *types.Func) (arg int, desc string, ok bool) {
	if fn == nil || fn.Pkg() == nil || path.Base(fn.Pkg().Path()) != "sim" {
		return 0, "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return 0, "", false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return 0, "", false
	}
	for _, s := range baseSinks {
		if named.Obj().Name() == s.recv && fn.Name() == s.name {
			return s.arg, s.desc, true
		}
	}
	return 0, "", false
}

// shortID compresses "repro/internal/sim.Engine.Schedule" to
// "sim.Engine.Schedule" for path steps.
func shortID(id analysis.FuncID) string {
	s := string(id)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// analyzeFunc runs the intra-procedural dataflow for one declared function.
// With mp == nil it only grows the function's summary and reports whether it
// changed; with mp set it re-evaluates against the (now stable) summaries
// and emits findings where taint meets a sink argument.
func (st *tfState) analyzeFunc(d *analysis.FuncDeclInfo, mp *analysis.ModulePass) bool {
	sum := st.sums[d.ID]
	info := d.Pkg.Info
	fset := d.Pkg.Fset

	at := func(pos token.Pos) string {
		p := fset.Position(pos)
		return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
	}

	paramIdx := map[types.Object]int{}
	i := 0
	for _, field := range d.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if o := info.Defs[name]; o != nil {
				paramIdx[o] = i
			}
			i++
		}
	}

	locals := map[types.Object]taint{}
	changed := false
	localChanged := true
	reporting := false // true only on the final walk, so findings aren't duplicated per pass

	objectOf := func(e ast.Expr) types.Object {
		id, ok := astUnparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if o := info.Defs[id]; o != nil {
			return o
		}
		return info.Uses[id]
	}

	mergeLocal := func(obj types.Object, t taint) {
		if obj == nil || t.empty() {
			return
		}
		old := locals[obj]
		merged := mergeTaint(old, t)
		if merged.path != nil && old.path == nil || len(merged.params) != len(old.params) {
			locals[obj] = merged
			localChanged = true
		}
	}

	var eval func(e ast.Expr) taint
	eval = func(e ast.Expr) taint {
		switch e := e.(type) {
		case *ast.Ident:
			var out taint
			o := objectOf(e)
			if t, ok := locals[o]; ok {
				out = mergeTaint(out, t)
			}
			if p, ok := paramIdx[o]; ok {
				out = mergeTaint(out, taint{params: map[int]bool{p: true}})
			}
			return out
		case *ast.CallExpr:
			return st.evalCall(d, e, info, eval, at)
		case *ast.ParenExpr:
			return eval(e.X)
		case *ast.UnaryExpr:
			return eval(e.X)
		case *ast.StarExpr:
			return eval(e.X)
		case *ast.BinaryExpr:
			return mergeTaint(eval(e.X), eval(e.Y))
		case *ast.SelectorExpr:
			// Field read off a tainted value (or qualified name: the package
			// ident evaluates clean).
			return eval(e.X)
		case *ast.IndexExpr:
			return mergeTaint(eval(e.X), eval(e.Index))
		case *ast.SliceExpr:
			return eval(e.X)
		case *ast.TypeAssertExpr:
			return eval(e.X)
		case *ast.KeyValueExpr:
			return mergeTaint(eval(e.Key), eval(e.Value))
		case *ast.CompositeLit:
			var out taint
			for _, el := range e.Elts {
				out = mergeTaint(out, eval(el))
			}
			return out
		}
		return taint{}
	}

	// assign taints the written-to object: plain idents directly, and for
	// writes through a field/index/deref, the base container object (a
	// struct holding one tainted field is a tainted value).
	assign := func(lhs ast.Expr, t taint) {
		for {
			switch l := astUnparen(lhs).(type) {
			case *ast.SelectorExpr:
				lhs = l.X
				continue
			case *ast.IndexExpr:
				lhs = l.X
				continue
			case *ast.StarExpr:
				lhs = l.X
				continue
			}
			break
		}
		mergeLocal(objectOf(lhs), t)
	}

	handleCallSinks := func(call *ast.CallExpr) {
		callee := analysis.CalleeOf(info, call)
		if callee == nil {
			return
		}
		// sinkArgs: argument index -> continuation chain from that argument
		// down to a base sink.
		sinkArgs := map[int][]string{}
		if arg, desc, ok := baseSinkOf(callee); ok {
			sinkArgs[arg] = []string{fmt.Sprintf("sink %s (%s)", desc, at(call.Pos()))}
		} else if cs := st.sums[analysis.IDOf(callee)]; cs != nil {
			for p, cont := range cs.sinkParams {
				step := fmt.Sprintf("passed to %s (%s)", shortID(analysis.IDOf(callee)), at(call.Pos()))
				sinkArgs[p] = append([]string{step}, cont...)
			}
		}
		for argI, cont := range sinkArgs {
			if argI >= len(call.Args) {
				continue
			}
			t := eval(call.Args[argI])
			if t.path != nil && reporting {
				full := append(append([]string{}, t.path...), cont...)
				mp.ReportPath(call.Args[argI].Pos(), full,
					"nondeterministic value reaches a sim-time sink: %s -> %s",
					t.path[0], full[len(full)-1])
			}
			for p := range t.params {
				if sum.sinkParams[p] == nil {
					step := fmt.Sprintf("via param %d of %s", p, shortID(d.ID))
					sum.sinkParams[p] = append([]string{step}, cont...)
					changed = true
				}
			}
		}
	}

	walk := func() {
		ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					t := eval(n.Rhs[0])
					for _, lhs := range n.Lhs {
						assign(lhs, t)
					}
					break
				}
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					assign(lhs, eval(n.Rhs[i]))
				}
			case *ast.ValueSpec:
				if len(n.Values) == 1 && len(n.Names) > 1 {
					t := eval(n.Values[0])
					for _, name := range n.Names {
						mergeLocal(info.Defs[name], t)
					}
					break
				}
				for i, name := range n.Names {
					if i >= len(n.Values) {
						break
					}
					mergeLocal(info.Defs[name], eval(n.Values[i]))
				}
			case *ast.RangeStmt:
				xt := eval(n.X)
				if t := info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						mt := mergeTaint(xt, taint{path: []string{
							fmt.Sprintf("map iteration order (range at %s)", at(n.Pos())),
						}})
						if n.Key != nil {
							assign(n.Key, mt)
						}
						if n.Value != nil {
							assign(n.Value, mt)
						}
						break
					}
				}
				// Ordered collection: elements of a tainted slice/string/
				// channel are tainted; the index is not.
				if n.Value != nil && !xt.empty() {
					assign(n.Value, xt)
				}
			case *ast.CallExpr:
				// sync.Map.Range hands its callback key/value in randomized
				// order, exactly like a map range.
				if fn := analysis.CalleeOf(info, n); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "sync" && fn.Name() == "Range" && len(n.Args) == 1 {
					if lit, ok := astUnparen(n.Args[0]).(*ast.FuncLit); ok {
						mt := taint{path: []string{
							fmt.Sprintf("sync.Map iteration order (Range at %s)", at(n.Pos())),
						}}
						for _, field := range lit.Type.Params.List {
							for _, name := range field.Names {
								mergeLocal(info.Defs[name], mt)
							}
						}
					}
				}
				handleCallSinks(n)
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					t := eval(r)
					if t.path != nil && sum.returnPath == nil {
						sum.returnPath = append(append([]string{}, t.path...),
							fmt.Sprintf("returned by %s (%s)", shortID(d.ID), at(n.Pos())))
						changed = true
					}
					for p := range t.params {
						if !sum.paramToReturn[p] {
							sum.paramToReturn[p] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	// Intra-procedural fixpoint: loop-carried assignments (a value tainted
	// late in a loop body, read early on the next iteration) need a second
	// pass; the cap bounds pathological chains.
	for pass := 0; pass < 8 && localChanged; pass++ {
		localChanged = false
		walk()
	}
	if mp != nil {
		reporting = true
		walk()
	}
	return changed
}

// evalCall computes the taint of a call expression's result.
func (st *tfState) evalCall(d *analysis.FuncDeclInfo, call *ast.CallExpr,
	info *types.Info, eval func(ast.Expr) taint, at func(token.Pos) string) taint {

	// Type conversion: taint passes straight through.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return eval(call.Args[0])
		}
		return taint{}
	}

	if desc := sourceOf(info, call); desc != "" {
		return taint{path: []string{fmt.Sprintf("%s (%s)", desc, at(call.Pos()))}}
	}

	callee := analysis.CalleeOf(info, call)
	passThrough := func(label string) taint {
		var out taint
		for _, a := range call.Args {
			out = mergeTaint(out, eval(a))
		}
		// A method invoked on a tainted value yields tainted data
		// (r.Latency() on a tainted record).
		if sel, ok := astUnparen(call.Fun).(*ast.SelectorExpr); ok {
			out = mergeTaint(out, eval(sel.X))
		}
		return hop(out, fmt.Sprintf("through %s (%s)", label, at(call.Pos())))
	}

	if callee == nil {
		// Builtin or call through a function value. Constructors make no
		// data of their own; everything else conservatively passes taint
		// through from its arguments.
		if id, ok := astUnparen(call.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make", "new", "cap", "panic", "recover", "print", "println", "delete", "clear", "close":
				return taint{}
			}
			return passThrough(id.Name)
		}
		return passThrough("a dynamic call")
	}

	if cs := st.sums[analysis.IDOf(callee)]; cs != nil {
		// Declared in the load set: the summary is authoritative.
		var out taint
		if cs.returnPath != nil {
			out.path = append(append([]string{}, cs.returnPath...),
				fmt.Sprintf("called from %s (%s)", shortID(d.ID), at(call.Pos())))
		}
		for p := range cs.paramToReturn {
			if p < len(call.Args) {
				out = mergeTaint(out, hop(eval(call.Args[p]),
					fmt.Sprintf("through %s (%s)", shortID(analysis.IDOf(callee)), at(call.Pos()))))
			}
		}
		return out
	}
	// Known function outside the load set (stdlib): treat as a pure
	// transformer — tainted arguments taint the result.
	return passThrough(shortID(analysis.IDOf(callee)))
}

// sourceOf reports whether call is an intrinsic nondeterminism source, with
// a human-readable description, or "".
func sourceOf(info *types.Info, call *ast.CallExpr) string {
	fn := analysis.CalleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	pkgPath, name := fn.Pkg().Path(), fn.Name()
	switch pkgPath {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return "time." + name + " (wall clock)"
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the auto-seeded global source;
		// methods on an explicitly seeded *rand.Rand are deterministic.
		if sig != nil && sig.Recv() == nil {
			return pkgPath + "." + name + " (auto-seeded global RNG)"
		}
	case "crypto/rand":
		return "crypto/rand." + name + " (nondeterministic RNG)"
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			return "os." + name + " (host environment)"
		}
	case "fmt":
		if idx, ok := fmtFormatArg[name]; ok && idx < len(call.Args) {
			if tv, ok := info.Types[call.Args[idx]]; ok && tv.Value != nil &&
				strings.Contains(tv.Value.String(), "%p") {
				return "fmt." + name + " %p (pointer identity)"
			}
		}
	}
	return ""
}

// fmtFormatArg maps fmt formatting functions to the index of their format
// string, for %p pointer-identity detection.
var fmtFormatArg = map[string]int{
	"Sprintf": 0, "Errorf": 0, "Appendf": 1, "Fprintf": 1, "Printf": 0,
}

// astUnparen strips parens (local copy; the analysis package keeps its own
// unexported).
func astUnparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
