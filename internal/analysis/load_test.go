package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scratchModule builds a throwaway module root with the given files
// (paths relative to the root) and returns its directory.
func scratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadUnparseableSource(t *testing.T) {
	dir := scratchModule(t, map[string]string{
		"broken/broken.go": "package broken\n\nfunc {\n",
	})
	_, err := Load(dir, []string{"./broken"})
	if err == nil || !strings.Contains(err.Error(), "expected") {
		t.Fatalf("Load of unparseable source = %v, want a parse error", err)
	}
}

func TestLoadNoPackagesMatched(t *testing.T) {
	dir := scratchModule(t, map[string]string{
		"empty/README.txt": "no go files here\n",
	})
	for _, pat := range [][]string{{"./empty"}, {"./empty/..."}} {
		_, err := Load(dir, pat)
		if err == nil || !strings.Contains(err.Error(), "no Go packages match") {
			t.Errorf("Load(%v) = %v, want a no-packages error", pat, err)
		}
	}
}

func TestLoadNonexistentDir(t *testing.T) {
	dir := scratchModule(t, map[string]string{})
	if _, err := Load(dir, []string{"./nope"}); err == nil {
		t.Fatal("Load of a nonexistent directory succeeded, want an error")
	}
	if _, err := Load(dir, []string{"./nope/..."}); err == nil {
		t.Fatal("Load of a nonexistent recursive pattern succeeded, want an error")
	}
}

func TestLoadTypeCheckFailure(t *testing.T) {
	dir := scratchModule(t, map[string]string{
		"bad/bad.go": "package bad\n\nfunc f() int { return undefinedSymbol }\n",
	})
	_, err := Load(dir, []string{"./..."})
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("Load of ill-typed package = %v, want a type-checking error", err)
	}
}

func TestLoadNoModule(t *testing.T) {
	dir := t.TempDir() // no go.mod anywhere above (t.TempDir is outside the repo)
	if _, err := Load(dir, []string{"."}); err == nil ||
		!strings.Contains(err.Error(), "no go.mod") {
		t.Fatalf("Load outside any module = %v, want a no-go.mod error", err)
	}
}
