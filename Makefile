GO ?= go

.PHONY: check lint test vet race bench-engine

# check is the pre-merge gate: the determinism analyzers (pagodavet), go vet,
# race detection across the internal tree, and one pass of the engine
# benchmarks to catch gross perf regressions. lint runs first so a wall-clock
# read or stray goroutine fails the build before anything expensive starts.
check: lint vet race bench-engine

# lint runs the project's determinism & sim-safety analyzers. Any
# unsuppressed finding (e.g. a time.Now injected into internal/sim) exits
# nonzero and fails the gate; intentional exceptions are annotated in the
# source with //pagoda:allow <check> <reason>.
lint:
	$(GO) run ./cmd/pagodavet ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

bench-engine:
	$(GO) test -bench=BenchmarkEngine -benchtime=1x -run='^$$' ./internal/sim/ .
