GO ?= go

.PHONY: check test vet race bench-engine

# check is the pre-merge gate: static analysis, race detection on the
# packages with goroutine handoff (the sim engine and its gpu consumers),
# and one pass of the engine benchmarks to catch gross perf regressions.
check: vet race bench-engine

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/gpu/...

bench-engine:
	$(GO) test -bench=BenchmarkEngine -benchtime=1x -run='^$$' ./internal/sim/ .
