GO ?= go

.PHONY: check lint test vet race race-harness perf perf-quick perf-update bench-engine bench-serve bench-cluster

# check is the pre-merge gate, in order: the determinism analyzers
# (pagodavet), go vet, the full test suite, race detection across the
# internal tree, and the quick tier of the perf-regression gate (pagodaperf
# against the BENCH_*.json baselines). lint runs first so a wall-clock read
# or stray goroutine fails the build before anything expensive starts.
check: lint vet test race perf-quick

# lint runs the project's determinism & sim-safety analyzers: the per-file
# checks plus the interprocedural taintflow pass (call-graph taint tracking
# from nondeterminism sources into sim-time sinks) and floatorder
# (order-unstable float accumulation). Any unsuppressed finding (e.g. a
# time.Now laundered through helper functions into Engine.Schedule) exits
# nonzero and fails the gate; intentional exceptions are annotated in the
# source with //pagoda:allow <check> <reason>, and a suppression that
# suppresses nothing is itself a finding. `pagodavet -json` emits the same
# findings machine-readably for CI annotation.
lint:
	$(GO) run ./cmd/pagodavet ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race covers the whole internal tree, including the parallel experiment
# sweep (harness's TestAllExperimentsDeterministicAndParallelSafe runs every
# experiment on a 4-wide cell pool under the race detector). The explicit
# timeout keeps the harness package — >10 minutes under the race detector on
# a small box — from tripping go test's 10-minute default.
race:
	$(GO) test -race -timeout 30m ./internal/...

# race-harness is the focused version of the above for quick iteration on
# the cell scheduler.
race-harness:
	$(GO) test -race -run 'TestAllExperimentsDeterministicAndParallelSafe' ./internal/harness/

# perf is the machine-verified performance-regression gate (cmd/pagodaperf):
# it re-runs every bench command recorded in BENCH_{sim,serve,cluster}.json,
# extracts the declared metrics, and fails on drift past each tolerance band.
# perf-quick runs only the metrics marked quick (the hot-path micro
# benchmarks) and is part of `make check`; the full set re-runs the
# experiment sweeps and takes minutes. perf-update re-measures everything and
# ratchets the baselines with host/date/git-rev provenance — run it (on a
# quiet machine) after an intentional perf change, and commit the diff.
perf:
	$(GO) run ./cmd/pagodaperf

perf-quick:
	$(GO) run ./cmd/pagodaperf -quick

perf-update:
	$(GO) run ./cmd/pagodaperf -update

bench-engine:
	$(GO) test -bench=BenchmarkEngine -benchtime=1x -run='^$$' ./internal/sim/ .

# bench-serve covers the open-loop serving hot paths: arrival generation and
# percentile assembly (internal/serve) plus one timed-submission run per GPU
# scheme (internal/runners). BENCH_serve.json records the capacity-sweep
# wall-clock trajectory.
bench-serve:
	$(GO) test -bench='BenchmarkArrivals|BenchmarkSummarize' -benchmem -run='^$$' ./internal/serve/
	$(GO) test -bench=BenchmarkOpenLoop -benchtime=1x -run='^$$' ./internal/runners/

# bench-cluster covers the multi-GPU fleet path: one 4-node timed-submission
# run per scheme on a single engine (internal/runners). BENCH_cluster.json
# records the cluster_scaling sweep's wall clock and headline capacity.
# internal/cluster itself rides the standard gate: lint, test and race all
# glob ./internal/..., so `make check` covers it with no extra target.
bench-cluster:
	$(GO) test -bench=BenchmarkCluster -benchtime=1x -run='^$$' ./internal/runners/
