// imagepipeline: the paper's surveillance motivation — image streams from
// many cameras, where each frame spawns two narrow tasks: a 5x5 blur
// (convolution) followed by an 8x8 DCT for compression. The DCT stage uses
// Pagoda's software-managed shared memory and sub-threadblock barriers, and
// the host chains the stages with wait(): the DCT of a frame is spawned only
// after its convolution finishes, while other cameras' frames keep the GPU
// busy.
package main

import (
	"fmt"
	"log"

	"repro/internal/workloads"

	"repro"
)

func main() {
	const (
		cameras      = 16
		framesPerCam = 8
		frames       = cameras * framesPerCam
	)

	conv, _ := workloads.ByName("CONV")
	dct, _ := workloads.ByName("DCT")
	convTasks := conv.Make(workloads.Options{Tasks: frames, Verify: true, Seed: 7, InputSize: 64})
	dctTasks := dct.Make(workloads.Options{Tasks: frames, Verify: true, Seed: 7, InputSize: 64, UseShared: true})

	sys := pagoda.New(pagoda.DefaultConfig())
	endNs := sys.Run(func(h *pagoda.Host) {
		// One host thread per camera, all spawning concurrently (the mixed
		// task/data parallelism the paper's introduction describes).
		done := 0
		for cam := 0; cam < cameras; cam++ {
			cam := cam
			h.Go(fmt.Sprintf("camera%d", cam), func(ch *pagoda.Host) {
				for f := 0; f < framesPerCam; f++ {
					idx := cam*framesPerCam + f
					ct, dt := &convTasks[idx], &dctTasks[idx]

					ch.CopyToDevice(ct.InBytes)
					id := ch.Spawn(pagoda.Task{
						Threads:  ct.Threads,
						ArgBytes: ct.ArgBytes,
						Kernel:   func(tc *pagoda.TaskCtx) { ct.Kernel(tc) },
					})
					ch.Wait(id) // blur must land before compressing

					id = ch.Spawn(pagoda.Task{
						Threads:   dt.Threads,
						SharedMem: dt.SharedMem,
						Sync:      true,
						ArgBytes:  dt.ArgBytes,
						Kernel:    func(tc *pagoda.TaskCtx) { dt.Kernel(tc) },
					})
					ch.Wait(id)
					ch.CopyFromDevice(dt.OutBytes)
				}
				done++
			})
		}
		// The main host thread waits for all cameras, then for the runtime.
		for done < cameras {
			h.Sleep(50_000)
		}
		h.WaitAll()
	})

	for i := range convTasks {
		if err := convTasks[i].Check(); err != nil {
			log.Fatalf("frame %d blur: %v", i, err)
		}
		if err := dctTasks[i].Check(); err != nil {
			log.Fatalf("frame %d dct: %v", i, err)
		}
	}
	fmt.Printf("processed %d frames from %d cameras in %.2f ms simulated\n", frames, cameras, endNs/1e6)
	fmt.Println(sys.Stats())
	fmt.Println("all frames verified (blur + DCT)")
}
