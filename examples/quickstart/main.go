// Quickstart: spawn a few hundred narrow vector-scale tasks onto Pagoda,
// wait for them, and verify the results — the smallest end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		numTasks = 400
		elems    = 1024 // per task: a narrow task of 128 threads
	)

	// One input/output vector per task; the kernels do the real math.
	inputs := make([][]float32, numTasks)
	outputs := make([][]float32, numTasks)
	for i := range inputs {
		inputs[i] = make([]float32, elems)
		outputs[i] = make([]float32, elems)
		for j := range inputs[i] {
			inputs[i][j] = float32(i + j)
		}
	}

	sys := pagoda.New(pagoda.DefaultConfig())
	endNs := sys.Run(func(h *pagoda.Host) {
		ids := make([]pagoda.TaskID, numTasks)
		for i := 0; i < numTasks; i++ {
			i := i
			h.CopyToDevice(elems * 4) // stage the input over PCIe
			ids[i] = h.Spawn(pagoda.Task{
				Threads: 128,
				Kernel: func(tc *pagoda.TaskCtx) {
					// y = 2x + 1, split across the task's threads.
					tc.ForEachLane(func(tid int) {
						for j := tid; j < elems; j += tc.Threads() {
							outputs[i][j] = 2*inputs[i][j] + 1
						}
					})
					tc.Compute(float64(elems) / 32 * 2) // 2 cycles per element per lane
					tc.GlobalRead(elems * 4)
					tc.GlobalWrite(elems * 4)
				},
			})
		}
		// Poll one task with check(), then wait for everything.
		fmt.Printf("task %d done yet? %v\n", ids[0], h.Check(ids[0]))
		h.WaitAll()
		for range ids {
			h.CopyFromDevice(elems * 4)
		}
	})

	for i := range outputs {
		for j := range outputs[i] {
			if want := 2*inputs[i][j] + 1; outputs[i][j] != want {
				log.Fatalf("task %d element %d: got %v, want %v", i, j, outputs[i][j], want)
			}
		}
	}
	st := sys.Stats()
	fmt.Printf("ran %d narrow tasks in %.2f ms of simulated GPU time\n", numTasks, endNs/1e6)
	fmt.Println(st)
	fmt.Println("all results verified")
}
