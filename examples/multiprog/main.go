// multiprog: the paper's Multi-Programmed Environment (MPE) — four
// applications with different resource appetites (3DES: irregular compute;
// Mandelbrot: irregular compute; FilterBank: threadblock synchronization;
// MatrixMul: shared memory) co-executing on one GPU, each spawning tasks
// from its own host thread. Pagoda's warp-level virtualization lets their
// narrow tasks interleave freely on the same SMMs.
package main

import (
	"fmt"
	"log"

	"repro/internal/runners"
	"repro/internal/workloads"

	"repro"
)

func main() {
	const perApp = 120

	apps := []string{"3DES", "MB", "FB", "MM"}
	taskSets := make([][]workloads.TaskDef, len(apps))
	for i, name := range apps {
		b, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		opt := workloads.Options{Tasks: perApp, Verify: true, Seed: int64(10 + i), InputSize: 32}
		if b.SupportsShared {
			opt.UseShared = true
		}
		taskSets[i] = b.Make(opt)
	}

	sys := pagoda.New(pagoda.DefaultConfig())
	endNs := sys.Run(func(h *pagoda.Host) {
		finished := 0
		for a := range apps {
			a := a
			h.Go(apps[a], func(ah *pagoda.Host) {
				for i := range taskSets[a] {
					td := &taskSets[a][i]
					ah.CopyToDevice(td.InBytes)
					ah.Spawn(pagoda.Task{
						Threads:   td.Threads,
						Blocks:    td.Blocks,
						SharedMem: td.SharedMem,
						Sync:      td.Sync,
						ArgBytes:  td.ArgBytes,
						Kernel:    func(tc *pagoda.TaskCtx) { td.Kernel(tc) },
					})
				}
				finished++
			})
		}
		for finished < len(apps) {
			h.Sleep(50_000)
		}
		h.WaitAll()
	})

	for a := range apps {
		for i := range taskSets[a] {
			if err := taskSets[a][i].Check(); err != nil {
				log.Fatalf("%s task %d: %v", apps[a], i, err)
			}
		}
	}
	fmt.Printf("co-executed %d apps x %d tasks in %.2f ms simulated\n", len(apps), perApp, endNs/1e6)
	fmt.Println(sys.Stats())

	// Compare the mix under all three GPU runtimes (timing-only).
	mpe, _ := workloads.ByName("MPE")
	mk := func() []workloads.TaskDef {
		return mpe.Make(workloads.Options{Tasks: 4 * perApp, Threads: 128, Seed: 99})
	}
	cfg := runners.DefaultConfig()
	pg := runners.RunPagoda(mk(), cfg)
	hq := runners.RunHyperQ(mk(), cfg)
	gm := runners.RunGeMTC(mk(), cfg)
	fmt.Printf("MPE mix: Pagoda %.2f ms, HyperQ %.2f ms (%.2fx), GeMTC %.2f ms (%.2fx)\n",
		pg.Elapsed/1e6, hq.Elapsed/1e6, hq.Elapsed/pg.Elapsed, gm.Elapsed/1e6, gm.Elapsed/pg.Elapsed)
	fmt.Println("all tasks verified")
}
