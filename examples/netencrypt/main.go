// netencrypt: a network-router scenario after the paper's 3DES benchmark —
// packets of 2K-64K bytes arrive continuously and each is encrypted with
// Triple-DES as one narrow task. Encryption is real (FIPS 46-3 EDE3) and the
// example decrypts a sample of packets afterwards to prove round-trip
// correctness. It also contrasts Pagoda against the CUDA-HyperQ baseline on
// the same packet trace.
package main

import (
	"fmt"
	"log"

	"repro/internal/runners"
	"repro/internal/workloads"

	"repro"
)

func main() {
	const packets = 600

	bench, err := workloads.ByName("3DES")
	if err != nil {
		log.Fatal(err)
	}

	// Pagoda run through the public API, with real encryption.
	tasks := bench.Make(workloads.Options{Tasks: packets, Verify: true, Seed: 42})
	sys := pagoda.New(pagoda.DefaultConfig())
	endNs := sys.Run(func(h *pagoda.Host) {
		for i := range tasks {
			td := &tasks[i]
			h.CopyToDevice(td.InBytes)
			h.Spawn(pagoda.Task{
				Threads:  td.Threads,
				ArgBytes: td.ArgBytes,
				Kernel:   func(tc *pagoda.TaskCtx) { td.Kernel(tc) },
			})
		}
		h.WaitAll()
	})
	for i := range tasks {
		if err := tasks[i].Check(); err != nil {
			log.Fatalf("packet %d failed verification: %v", i, err)
		}
	}
	fmt.Printf("encrypted %d packets in %.2f ms simulated; %v\n", packets, endNs/1e6, sys.Stats())

	// The same trace under CUDA-HyperQ (timing-only), for comparison.
	mk := func() []workloads.TaskDef {
		return bench.Make(workloads.Options{Tasks: packets, Seed: 42})
	}
	cfg := runners.DefaultConfig()
	pg := runners.RunPagoda(mk(), cfg)
	hq := runners.RunHyperQ(mk(), cfg)
	fmt.Printf("router throughput: Pagoda %.2f ms vs CUDA-HyperQ %.2f ms (%.2fx)\n",
		pg.Elapsed/1e6, hq.Elapsed/1e6, hq.Elapsed/pg.Elapsed)
	fmt.Printf("per-packet latency: Pagoda %.1f us avg vs HyperQ %.1f us avg\n",
		pg.AvgLatency/1e3, hq.AvgLatency/1e3)
}
