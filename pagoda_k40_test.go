package pagoda

import "testing"

func TestK40ConfigRuns(t *testing.T) {
	cfg := K40Config()
	cfg.GPU.NumSMMs = 2
	sys := New(cfg)
	ran := 0
	sys.Run(func(h *Host) {
		for i := 0; i < 30; i++ {
			h.Spawn(Task{Threads: 64, SharedMem: 2048, Sync: true,
				Kernel: func(tc *TaskCtx) {
					tc.Compute(300)
					_ = tc.Shared()[0]
					tc.SyncBlock()
					if tc.WarpInBlock() == 0 {
						ran++
					}
				}})
		}
		h.WaitAll()
	})
	if ran != 30 {
		t.Fatalf("K40 ran %d of 30 tasks", ran)
	}
	if sys.Runtime.Cfg.SharedPerMTB != 16*1024 {
		t.Fatalf("K40 arena = %d, want 16KB", sys.Runtime.Cfg.SharedPerMTB)
	}
}

func TestFaultIsolationThroughFacade(t *testing.T) {
	cfg := smallConfig()
	cfg.Pagoda.IsolateKernelPanics = true
	sys := New(cfg)
	sys.Run(func(h *Host) {
		h.Spawn(Task{Threads: 32, Kernel: func(tc *TaskCtx) { panic("bad kernel") }})
		h.Spawn(Task{Threads: 32, Kernel: func(tc *TaskCtx) { tc.Compute(100) }})
		h.WaitAll()
	})
	st := sys.Stats()
	if st.Failed != 1 || st.Completed != 2 {
		t.Fatalf("stats = %+v, want 1 failed of 2 retired", st)
	}
}
