// Package-level benchmarks: one per table and figure of the paper's
// evaluation (regenerated at reduced scale through the harness — run
// cmd/pagodabench for full-scale sweeps and EXPERIMENTS.md for recorded
// results), plus microbenchmarks of the runtime's hot paths.
package pagoda

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/runners"
	"repro/internal/workloads"
)

// benchParams keeps one harness regeneration per benchmark iteration small
// enough for testing.B. Shapes (who wins, crossovers) are preserved.
func benchParams() harness.Params {
	return harness.Params{Tasks: 96, SMMs: 8, Seed: 1}
}

func benchmarkExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := harness.Run(id, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable3 regenerates the workload-characteristics table (HyperQ
// copy/compute split).
func BenchmarkTable3(b *testing.B) { benchmarkExperiment(b, "table3") }

// BenchmarkFig5 regenerates the overall performance comparison.
func BenchmarkFig5(b *testing.B) { benchmarkExperiment(b, "fig5") }

// BenchmarkFig6 regenerates the weak-scaling study.
func BenchmarkFig6(b *testing.B) { benchmarkExperiment(b, "fig6") }

// BenchmarkFig7 regenerates the threads-per-task compute-time study.
func BenchmarkFig7(b *testing.B) { benchmarkExperiment(b, "fig7") }

// BenchmarkFig8 regenerates the input-size x thread-count study.
func BenchmarkFig8(b *testing.B) { benchmarkExperiment(b, "fig8") }

// BenchmarkFig9 regenerates the irregular-task static-fusion comparison.
func BenchmarkFig9(b *testing.B) { benchmarkExperiment(b, "fig9") }

// BenchmarkFig10 regenerates the average-task-latency study.
func BenchmarkFig10(b *testing.B) { benchmarkExperiment(b, "fig10") }

// BenchmarkFig11 regenerates the continuous-spawning/pipelining ablation.
func BenchmarkFig11(b *testing.B) { benchmarkExperiment(b, "fig11") }

// BenchmarkTable5 regenerates the shared-memory management analysis.
func BenchmarkTable5(b *testing.B) { benchmarkExperiment(b, "table5") }

// --- scheme-level benchmarks: one full run per iteration ---

func benchScheme(b *testing.B, fn func([]workloads.TaskDef, runners.Config) runners.Result) {
	bench, _ := workloads.ByName("MB")
	cfg := runners.DefaultConfig()
	cfg.SMMs = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tasks := bench.Make(workloads.Options{Tasks: 256, Threads: 128, Seed: 1})
		r := fn(tasks, cfg)
		if r.Tasks != 256 {
			b.Fatalf("incomplete run: %d tasks", r.Tasks)
		}
	}
}

// BenchmarkSchemePagoda measures a 256-task Pagoda run end to end.
func BenchmarkSchemePagoda(b *testing.B) { benchScheme(b, runners.RunPagoda) }

// BenchmarkSchemeHyperQ measures the CUDA-HyperQ baseline.
func BenchmarkSchemeHyperQ(b *testing.B) { benchScheme(b, runners.RunHyperQ) }

// BenchmarkSchemeGeMTC measures the GeMTC baseline.
func BenchmarkSchemeGeMTC(b *testing.B) { benchScheme(b, runners.RunGeMTC) }

// BenchmarkSchemeFusion measures the static-fusion baseline.
func BenchmarkSchemeFusion(b *testing.B) { benchScheme(b, runners.RunFusion) }

// BenchmarkTaskSpawnThroughput measures the Pagoda spawn+execute round trip
// for minimal tasks (the TaskTable hot path).
func BenchmarkTaskSpawnThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := New(DefaultConfig())
		sys.Run(func(h *Host) {
			for j := 0; j < 512; j++ {
				h.Spawn(Task{Threads: 32, Kernel: func(tc *TaskCtx) { tc.Compute(100) }})
			}
			h.WaitAll()
		})
		if sys.Stats().Completed != 512 {
			b.Fatal("incomplete")
		}
	}
	b.ReportMetric(float64(b.N*512), "tasks")
}

// BenchmarkEngineFig5Macro is the macro benchmark behind the engine hot-path
// work: one full fig5 regeneration per iteration, dominated by event-queue
// churn, timer re-keying and proc switches in internal/sim. Compare against
// BENCH_sim.json; run with -benchtime=3x or higher for stable numbers.
func BenchmarkEngineFig5Macro(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := harness.Run("fig5", harness.Params{Tasks: 256, SMMs: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("fig5 produced no rows")
		}
	}
}
