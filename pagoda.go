// Package pagoda is the public facade of the Pagoda reproduction: a GPU
// runtime system that virtualizes GPU resources with a persistent
// MasterKernel and schedules narrow tasks (< 500 threads) at warp
// granularity, after "Pagoda: Fine-Grained GPU Resource Virtualization for
// Narrow Tasks" (PPoPP 2017).
//
// The GPU itself is a deterministic discrete-event simulator with the
// Maxwell Titan X geometry (see DESIGN.md for the substitution rationale).
// A System bundles the full stack — simulation engine, device, PCIe bus,
// CUDA-like runtime and the Pagoda core — behind the paper's Table 1 API:
//
//	sys := pagoda.New(pagoda.DefaultConfig())
//	sys.Run(func(h *pagoda.Host) {
//	    id := h.Spawn(pagoda.Task{
//	        Threads: 128,
//	        Kernel: func(tc *pagoda.TaskCtx) {
//	            tc.ForEachLane(func(tid int) { /* per-thread work */ })
//	            tc.Compute(500)
//	        },
//	    })
//	    h.Wait(id)
//	})
//	fmt.Println(sys.Stats())
package pagoda

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// TaskCtx is the device-side API handed to task kernels (getTid, syncBlock,
// getSMPtr and the cost-charging operations).
type TaskCtx = core.TaskCtx

// TaskID identifies a spawned task.
type TaskID = core.TaskID

// Kernel is Pagoda device code, invoked once per executor warp.
type Kernel = core.TaskKernel

// Task describes one narrow task (the taskSpawn arguments of Table 1).
type Task struct {
	Threads   int // threads per threadblock (default 128)
	Blocks    int // threadblocks (default 1)
	SharedMem int // bytes of shared memory per threadblock
	Sync      bool
	ArgBytes  int
	Args      any
	Kernel    Kernel
}

// Config assembles the stack's tunables.
type Config struct {
	GPU    gpu.Config  // device geometry (default: Maxwell Titan X)
	Bus    pcie.Config // PCIe model
	CUDA   cuda.Config // streams / HyperQ / launch overhead
	Pagoda core.Config // TaskTable, MTB and allocator parameters
}

// DefaultConfig returns the paper's full configuration (Maxwell Titan X).
func DefaultConfig() Config {
	return Config{
		GPU:    gpu.TitanX(),
		Bus:    pcie.Default(),
		CUDA:   cuda.DefaultConfig(),
		Pagoda: core.DefaultConfig(),
	}
}

// K40Config returns the stack configured for the paper's second validation
// platform, the Kepler Tesla K40 (smaller shared memory per SMX, so the MTB
// arenas shrink to 16 KB).
func K40Config() Config {
	g := gpu.TeslaK40()
	return Config{
		GPU:    g,
		Bus:    pcie.Default(),
		CUDA:   cuda.DefaultConfig(),
		Pagoda: core.DefaultConfigFor(g),
	}
}

// System is an assembled simulation stack with a running MasterKernel.
type System struct {
	Engine  *sim.Engine
	Device  *gpu.Device
	Bus     *pcie.Bus
	CUDA    *cuda.Context
	Runtime *core.Runtime
}

// New builds a system and launches the MasterKernel.
func New(cfg Config) *System {
	eng := sim.New()
	dev := gpu.NewDevice(eng, cfg.GPU)
	bus := pcie.New(eng, cfg.Bus)
	ctx := cuda.NewContext(eng, dev, bus, cfg.CUDA)
	rt := core.NewRuntime(ctx, cfg.Pagoda)
	return &System{Engine: eng, Device: dev, Bus: bus, CUDA: ctx, Runtime: rt}
}

// Host is a CPU thread inside the simulation: the receiver for the paper's
// CPU-side API.
type Host struct {
	sys  *System
	proc *sim.Proc
}

// Spawn launches a task onto Pagoda (taskSpawn). Non-blocking; returns the
// TaskID used by Wait and Check.
func (h *Host) Spawn(t Task) TaskID {
	if t.Threads == 0 {
		t.Threads = 128
	}
	if t.Blocks == 0 {
		t.Blocks = 1
	}
	return h.sys.Runtime.TaskSpawn(h.proc, core.TaskSpec{
		Threads:   t.Threads,
		Blocks:    t.Blocks,
		SharedMem: t.SharedMem,
		Sync:      t.Sync,
		ArgBytes:  t.ArgBytes,
		Args:      t.Args,
		Kernel:    t.Kernel,
	})
}

// Wait blocks until the task is over (wait).
func (h *Host) Wait(id TaskID) { h.sys.Runtime.Wait(h.proc, id) }

// Check returns true if the task is done (check).
func (h *Host) Check(id TaskID) bool { return h.sys.Runtime.Check(h.proc, id) }

// WaitAll blocks until every spawned task is over (waitAll).
func (h *Host) WaitAll() { h.sys.Runtime.WaitAll(h.proc) }

// CopyToDevice models a host-to-device input copy of n bytes (synchronous).
func (h *Host) CopyToDevice(n int) { h.sys.CUDA.MemcpyH2DSync(h.proc, n) }

// CopyFromDevice models a device-to-host output copy of n bytes.
func (h *Host) CopyFromDevice(n int) { h.sys.CUDA.MemcpyD2HSync(h.proc, n) }

// Sleep advances this host thread's clock (ns of simulated time).
func (h *Host) Sleep(ns float64) { h.proc.Sleep(ns) }

// Now returns the simulated time in nanoseconds.
func (h *Host) Now() float64 { return h.proc.Now() }

// Go starts another host thread running body concurrently (the paper's
// multi-threaded spawner pattern, Fig. 1a).
func (h *Host) Go(name string, body func(*Host)) {
	h.sys.Engine.Spawn(name, func(p *sim.Proc) {
		body(&Host{sys: h.sys, proc: p})
	})
}

// Run executes body as the main host thread, shuts the runtime down when it
// returns, and drains the simulation. It returns the final simulated time in
// nanoseconds.
func (s *System) Run(body func(*Host)) float64 {
	s.Engine.Spawn("host-main", func(p *sim.Proc) {
		body(&Host{sys: s, proc: p})
		s.Runtime.Shutdown(p)
	})
	return s.Engine.Run()
}

// Stats summarizes the run.
type Stats struct {
	Spawned      int
	Completed    int
	Failed       int // kernels that panicked (Config.Pagoda.IsolateKernelPanics)
	AvgLatencyNs float64
	MaxLatencyNs float64
	Occupancy    float64 // task-warp occupancy over the run
	IssueUtil    float64
}

// Stats gathers runtime and device statistics.
func (s *System) Stats() Stats {
	st := s.Runtime.Stats()
	m := s.Device.Metrics()
	return Stats{
		Spawned:      st.Spawned,
		Completed:    st.Completed,
		Failed:       st.Failed,
		AvgLatencyNs: st.AvgLatency,
		MaxLatencyNs: st.MaxLatency,
		Occupancy:    s.Runtime.TaskWarpOccupancy(s.Engine.Now()),
		IssueUtil:    m.IssueUtil,
	}
}

func (st Stats) String() string {
	return fmt.Sprintf("tasks %d/%d done, avg latency %.1fus (max %.1fus), task-warp occupancy %.1f%%, issue util %.1f%%",
		st.Completed, st.Spawned, st.AvgLatencyNs/1e3, st.MaxLatencyNs/1e3, st.Occupancy*100, st.IssueUtil*100)
}
