// Command pagodavet enforces the repository's determinism rules (DESIGN.md
// "Determinism rules"): no wall-clock reads, unseeded randomness,
// order-dependent map iteration, raw goroutines, or OS synchronization in
// simulation code. It type-checks the requested packages with the standard
// library's source importer — no external dependencies, works offline — and
// exits nonzero on any unsuppressed finding, which is how `make check` fails
// the build.
//
// Usage:
//
//	pagodavet [-v] [packages]
//
// Packages default to ./... and follow the go tool's pattern shape. Findings
// print as
//
//	file:line: [check] message
//
// Intentional exceptions are annotated in the source:
//
//	//pagoda:allow <check> <reason>
//
// either trailing the offending line or on the line above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/checks"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("pagodavet", flag.ContinueOnError)
	fs.SetOutput(errw)
	verbose := fs.Bool("v", false, "also report suppressed findings and per-check totals")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "pagodavet:", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(errw, "pagodavet:", err)
		return 2
	}

	var kept, suppressed []analysis.Finding
	for _, pkg := range pkgs {
		for _, a := range checks.All() {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.RelPath) {
				continue
			}
			pass := analysis.NewPass(a, pkg)
			a.Run(pass)
			k, s := analysis.ApplySuppressions(pass, pass.Findings())
			kept = append(kept, k...)
			suppressed = append(suppressed, s...)
		}
	}

	sortFindings(kept)
	sortFindings(suppressed)
	for _, f := range kept {
		fmt.Fprintln(out, relFinding(cwd, f))
	}
	if *verbose {
		for _, f := range suppressed {
			fmt.Fprintf(out, "%s (suppressed)\n", relFinding(cwd, f))
		}
		fmt.Fprintf(out, "pagodavet: %d package(s), %d finding(s), %d suppressed\n",
			len(pkgs), len(kept), len(suppressed))
	}
	if len(kept) > 0 {
		return 1
	}
	return 0
}

func sortFindings(fs []analysis.Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
}

// relFinding prints the finding with a cwd-relative path, the shape editors
// and CI logs expect.
func relFinding(cwd string, f analysis.Finding) string {
	if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil {
		f.Pos.Filename = rel
	}
	return f.String()
}
