// Command pagodavet enforces the repository's determinism rules (DESIGN.md
// "Determinism rules"): no wall-clock reads, unseeded randomness,
// order-dependent map iteration, order-unstable float accumulation, raw
// goroutines, or OS synchronization in simulation code — plus the
// interprocedural taintflow check, which traces nondeterminism sources
// through the whole-module call graph into sim-time sinks. It type-checks
// the requested packages with the standard library's source importer — no
// external dependencies, works offline — and exits nonzero on any
// unsuppressed finding, which is how `make check` fails the build.
//
// Usage:
//
//	pagodavet [-v] [-json] [packages]
//
// Packages default to ./... and follow the go tool's pattern shape. Findings
// print as
//
//	file:line: [check] message
//
// with the full source→sink call path appended for interprocedural findings.
// -json instead emits a machine-readable array of
// {file, line, check, msg, path, suppressed} objects for CI annotation.
//
// Exit codes follow cmd/pagodaperf's convention: 0 clean, 1 findings
// reported, 2 load/parse/flag error (including a pattern matching no
// packages — a typo'd path must not report "clean").
//
// Intentional exceptions are annotated in the source:
//
//	//pagoda:allow <check> <reason>
//
// either trailing the offending line or on the line above it. A suppression
// that suppresses nothing is itself reported (check "suppression"), so
// annotations cannot rot in place as code moves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/checks"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("pagodavet", flag.ContinueOnError)
	fs.SetOutput(errw)
	verbose := fs.Bool("v", false, "also report suppressed findings and per-check totals")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array (suppressed ones included with -v)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "pagodavet:", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(errw, "pagodavet:", err)
		return 2
	}

	var perPkg, module []*analysis.Analyzer
	for _, a := range checks.All() {
		if a.RunModule != nil {
			module = append(module, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	// Suppressions are parsed once per package (so malformed directives are
	// reported exactly once) and threaded through every partition, so that
	// directives no analyzer consumed can be flagged as stale afterwards.
	var kept, suppressed []analysis.Finding
	var allSups []analysis.Suppression
	supsByPkg := map[*analysis.Package][]analysis.Suppression{}
	used := map[analysis.SupKey]bool{}
	for _, pkg := range pkgs {
		sups, malformed := analysis.PackageSuppressions(pkg)
		supsByPkg[pkg] = sups
		allSups = append(allSups, sups...)
		kept = append(kept, malformed...)
	}

	for _, pkg := range pkgs {
		for _, a := range perPkg {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.RelPath) {
				continue
			}
			pass := analysis.NewPass(a, pkg)
			a.Run(pass)
			k, s := analysis.Partition(pass.Findings(), supsByPkg[pkg], used)
			kept = append(kept, k...)
			suppressed = append(suppressed, s...)
		}
	}
	for _, a := range module {
		mp := analysis.NewModulePass(a, pkgs)
		a.RunModule(mp)
		k, s := analysis.Partition(dedupe(mp.Findings()), allSups, used)
		kept = append(kept, k...)
		suppressed = append(suppressed, s...)
	}
	kept = append(kept, analysis.StaleFindings(allSups, used)...)

	sortFindings(kept)
	sortFindings(suppressed)
	if *asJSON {
		if err := emitJSON(out, cwd, kept, suppressed, *verbose); err != nil {
			fmt.Fprintln(errw, "pagodavet:", err)
			return 2
		}
	} else {
		for _, f := range kept {
			fmt.Fprintln(out, relFinding(cwd, f))
		}
		if *verbose {
			for _, f := range suppressed {
				fmt.Fprintf(out, "%s (suppressed)\n", relFinding(cwd, f))
			}
			fmt.Fprintf(out, "pagodavet: %d package(s), %d finding(s), %d suppressed\n",
				len(pkgs), len(kept), len(suppressed))
		}
	}
	if len(kept) > 0 {
		return 1
	}
	return 0
}

// jsonFinding is the -json wire shape, mirroring pagodabench's JSON export
// discipline: stable lowercase keys, machine-parseable, append-only.
type jsonFinding struct {
	File       string   `json:"file"`
	Line       int      `json:"line"`
	Check      string   `json:"check"`
	Msg        string   `json:"msg"`
	Path       []string `json:"path,omitempty"`
	Suppressed bool     `json:"suppressed,omitempty"`
}

func emitJSON(out io.Writer, cwd string, kept, suppressed []analysis.Finding, verbose bool) error {
	rows := make([]jsonFinding, 0, len(kept)+len(suppressed))
	add := func(f analysis.Finding, sup bool) {
		file := f.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil {
			file = rel
		}
		rows = append(rows, jsonFinding{
			File: file, Line: f.Pos.Line, Check: f.Check, Msg: f.Msg,
			Path: f.Path, Suppressed: sup,
		})
	}
	for _, f := range kept {
		add(f, false)
	}
	if verbose {
		for _, f := range suppressed {
			add(f, true)
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// dedupe drops repeated (position, check, msg) findings — an interprocedural
// analyzer can rediscover the same flow through two summary routes.
func dedupe(fs []analysis.Finding) []analysis.Finding {
	type key struct {
		file  string
		line  int
		check string
		msg   string
	}
	seen := map[key]bool{}
	out := fs[:0]
	for _, f := range fs {
		k := key{f.Pos.Filename, f.Pos.Line, f.Check, f.Msg}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

func sortFindings(fs []analysis.Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
}

// relFinding prints the finding with a cwd-relative path, the shape editors
// and CI logs expect.
func relFinding(cwd string, f analysis.Finding) string {
	if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil {
		f.Pos.Filename = rel
	}
	return f.String()
}
