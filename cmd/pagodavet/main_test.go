package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves the test into dir and restores the old cwd on cleanup.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// scratch builds a throwaway module from root-relative file paths and chdirs
// into it.
func scratch(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	chdir(t, dir)
}

// TestSweepCleanTree runs the full determinism sweep over this repository —
// the same invocation `make lint` uses — and requires it to pass: the tree
// must stay clean, with every intentional exception carrying a
// //pagoda:allow annotation.
func TestSweepCleanTree(t *testing.T) {
	chdir(t, filepath.Join("..", ".."))
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"./..."}); code != 0 {
		t.Fatalf("pagodavet ./... = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
}

// TestCatchesInjectedWallclock pins the gate's teeth: a time.Now smuggled
// into a simulation package must turn the sweep red. It builds a scratch
// module whose internal/sim contains the injection and sweeps it.
func TestCatchesInjectedWallclock(t *testing.T) {
	dir := t.TempDir()
	simDir := filepath.Join(dir, "internal", "sim")
	if err := os.MkdirAll(simDir, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module scratch\n\ngo 1.22\n",
		filepath.Join(simDir, "sim.go"): `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for path, src := range files {
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	chdir(t, dir)

	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"./..."}); code != 1 {
		t.Fatalf("sweep of injected tree = %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "[wallclock] time.Now") {
		t.Errorf("expected a wallclock finding, got:\n%s", out.String())
	}
}

// TestVerboseReportsSuppressions checks -v surfaces the tree's annotated
// exceptions instead of hiding them.
func TestVerboseReportsSuppressions(t *testing.T) {
	chdir(t, filepath.Join("..", ".."))
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-v", "./internal/sim"}); code != 0 {
		t.Fatalf("pagodavet -v ./internal/sim = %d\nstderr:\n%s", code, errw.String())
	}
	if !strings.Contains(out.String(), "(suppressed)") {
		t.Errorf("-v output missing suppressed findings:\n%s", out.String())
	}
}

// multiHopModule is a scratch tree where the nondeterminism source lives in
// internal/harness — a package the syntactic wallclock check deliberately
// does not cover — and reaches internal/sim's event heap only through two
// call hops across packages. Only the interprocedural check can see it.
func multiHopModule(t *testing.T) {
	t.Helper()
	scratch(t, map[string]string{
		"internal/sim/sim.go": `package sim

type Time int64

type Engine struct{ now Time }

func (e *Engine) Schedule(at Time, fn func()) { _, _ = at, fn }
`,
		"internal/harness/clock.go": `package harness

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
		"internal/core/core.go": `package core

import (
	"scratch/internal/harness"
	"scratch/internal/sim"
)

func delay() sim.Time { return sim.Time(harness.Stamp()) }

func Kick(e *sim.Engine) { e.Schedule(delay(), nil) }
`,
	})
}

// TestCatchesMultiHopTaint pins the tentpole: a wall-clock read hidden two
// calls and two packages away from the sink, invisible to every per-file
// check, still fails the gate — and the diagnostic carries the full
// source→sink path.
func TestCatchesMultiHopTaint(t *testing.T) {
	multiHopModule(t)
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"./..."}); code != 1 {
		t.Fatalf("sweep of multi-hop tainted tree = %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	got := out.String()
	if !strings.Contains(got, "[taintflow]") {
		t.Fatalf("expected a taintflow finding, got:\n%s", got)
	}
	if strings.Contains(got, "[wallclock]") {
		t.Errorf("wallclock should not fire (source is outside its scope):\n%s", got)
	}
	for _, hop := range []string{"time.Now", "harness.Stamp", "core.delay", "sim.Engine.Schedule"} {
		if !strings.Contains(got, hop) {
			t.Errorf("diagnostic path missing hop %q:\n%s", hop, got)
		}
	}
}

// TestJSONOutput checks -json emits a parseable array with the documented
// fields, including the interprocedural path.
func TestJSONOutput(t *testing.T) {
	multiHopModule(t)
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-json", "./..."}); code != 1 {
		t.Fatalf("pagodavet -json = %d, want 1\nstderr:\n%s", code, errw.String())
	}
	var rows []struct {
		File  string   `json:"file"`
		Line  int      `json:"line"`
		Check string   `json:"check"`
		Msg   string   `json:"msg"`
		Path  []string `json:"path"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rows); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rows) == 0 {
		t.Fatal("-json emitted an empty array for a tainted tree")
	}
	found := false
	for _, r := range rows {
		if r.Check != "taintflow" {
			continue
		}
		found = true
		if r.File != filepath.Join("internal", "core", "core.go") || r.Line == 0 {
			t.Errorf("taintflow row has file=%q line=%d, want internal/core/core.go with a line", r.File, r.Line)
		}
		if r.Msg == "" || len(r.Path) < 4 {
			t.Errorf("taintflow row missing msg or full path: %+v", r)
		}
	}
	if !found {
		t.Errorf("no taintflow row in -json output:\n%s", out.String())
	}
}

// TestStaleSuppressionFailsGate: an //pagoda:allow that suppresses nothing is
// itself a finding, so annotations cannot silently outlive the code they
// excused.
func TestStaleSuppressionFailsGate(t *testing.T) {
	scratch(t, map[string]string{
		"internal/sim/sim.go": `package sim

//pagoda:allow wallclock historical exemption that no longer matches anything
func Now() int64 { return 42 }
`,
	})
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"./..."}); code != 1 {
		t.Fatalf("sweep with stale suppression = %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "[suppression] stale //pagoda:allow wallclock") {
		t.Errorf("expected a stale-suppression finding, got:\n%s", out.String())
	}
}

// TestExitCodeLoadError pins exit code 2 for trees pagodavet cannot analyze:
// unparseable source, and patterns that match no packages (a typo'd path must
// not report "clean").
func TestExitCodeLoadError(t *testing.T) {
	scratch(t, map[string]string{
		"broken/broken.go": "package broken\n\nfunc {\n",
		"empty/notes.txt":  "no Go files here\n",
	})
	cases := []struct {
		name string
		args []string
	}{
		{"unparseable", []string{"./broken"}},
		{"no packages", []string{"./empty"}},
		{"nonexistent", []string{"./nope/..."}},
	}
	for _, c := range cases {
		var out, errw strings.Builder
		if code := run(&out, &errw, c.args); code != 2 {
			t.Errorf("%s: pagodavet %v = %d, want 2\nstdout:\n%s\nstderr:\n%s",
				c.name, c.args, code, out.String(), errw.String())
		} else if !strings.Contains(errw.String(), "pagodavet:") {
			t.Errorf("%s: no diagnostic on stderr", c.name)
		}
	}
}

// TestExitCodeClean pins exit 0 for a module with nothing to report.
func TestExitCodeClean(t *testing.T) {
	scratch(t, map[string]string{
		"internal/sim/sim.go": "package sim\n\ntype Time int64\n",
	})
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"./..."}); code != 0 {
		t.Fatalf("sweep of clean tree = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
}
