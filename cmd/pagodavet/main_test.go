package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves the test into dir and restores the old cwd on cleanup.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// TestSweepCleanTree runs the full determinism sweep over this repository —
// the same invocation `make lint` uses — and requires it to pass: the tree
// must stay clean, with every intentional exception carrying a
// //pagoda:allow annotation.
func TestSweepCleanTree(t *testing.T) {
	chdir(t, filepath.Join("..", ".."))
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"./..."}); code != 0 {
		t.Fatalf("pagodavet ./... = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
}

// TestCatchesInjectedWallclock pins the gate's teeth: a time.Now smuggled
// into a simulation package must turn the sweep red. It builds a scratch
// module whose internal/sim contains the injection and sweeps it.
func TestCatchesInjectedWallclock(t *testing.T) {
	dir := t.TempDir()
	simDir := filepath.Join(dir, "internal", "sim")
	if err := os.MkdirAll(simDir, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module scratch\n\ngo 1.22\n",
		filepath.Join(simDir, "sim.go"): `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for path, src := range files {
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	chdir(t, dir)

	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"./..."}); code != 1 {
		t.Fatalf("sweep of injected tree = %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "[wallclock] time.Now") {
		t.Errorf("expected a wallclock finding, got:\n%s", out.String())
	}
}

// TestVerboseReportsSuppressions checks -v surfaces the tree's annotated
// exceptions instead of hiding them.
func TestVerboseReportsSuppressions(t *testing.T) {
	chdir(t, filepath.Join("..", ".."))
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-v", "./internal/sim"}); code != 0 {
		t.Fatalf("pagodavet -v ./internal/sim = %d\nstderr:\n%s", code, errw.String())
	}
	if !strings.Contains(out.String(), "(suppressed)") {
		t.Errorf("-v output missing suppressed findings:\n%s", out.String())
	}
}
