package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the command end to end on a small Mandelbrot config
// and checks the written file is a non-empty Chrome trace-event array.
func TestRunSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	var sb strings.Builder
	if err := run(&sb, []string{"-bench", "MB", "-tasks", "16", "-smms", "4", "-o", out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ran 16 MB tasks") {
		t.Errorf("summary missing task count: %q", sb.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
}

// TestRunRejectsUnknownBench pins the error path.
func TestRunRejectsUnknownBench(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-bench", "NOPE", "-o", filepath.Join(t.TempDir(), "t.json")}); err == nil {
		t.Fatal("run accepted an unknown workload")
	}
}
