package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runners"
)

// TestRunSmoke drives the command end to end on a small Mandelbrot config
// and checks the written file is a non-empty Chrome trace-event array.
func TestRunSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	var sb strings.Builder
	if err := run(&sb, []string{"-bench", "MB", "-tasks", "16", "-smms", "4", "-o", out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ran 16 MB tasks") {
		t.Errorf("summary missing task count: %q", sb.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
}

// TestRunRejectsUnknownBench pins the error path.
func TestRunRejectsUnknownBench(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-bench", "NOPE", "-o", filepath.Join(t.TempDir(), "t.json")}); err == nil {
		t.Fatal("run accepted an unknown workload")
	}
}

// TestClusterTraceSmoke drives cluster mode end to end: a 2-node fleet must
// write one wait/service track per node (stable "node%02d/" prefixes) and
// print a summary grouped by node.
func TestClusterTraceSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.json")
	var sb strings.Builder
	err := run(&sb, []string{"-bench", "MB", "-tasks", "16", "-smms", "4",
		"-nodes", "2", "-policy", "rr", "-scheme", "pagoda", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 pagoda nodes", "node00/serve-pagoda", "node01/serve-pagoda", "routed 8"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sb.String())
		}
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("cluster trace is not a JSON array: %v", err)
	}
	names := map[string]bool{}
	for _, e := range events {
		if e["ph"] == "M" {
			if args, ok := e["args"].(map[string]any); ok {
				names[args["name"].(string)] = true
			}
		}
	}
	for _, want := range []string{"node00/serve-pagoda", "node01/serve-pagoda"} {
		if !names[want] {
			t.Errorf("trace missing track %q (have %v)", want, names)
		}
	}
}

// TestClusterTraceEverySchemeAccepted pins cluster mode to the scheme
// registry: a scheme registered in runners.Schemes() must trace without any
// pagodatrace change (the old hand-written switch silently excluded new
// schemes — zorua was the one that flushed it out).
func TestClusterTraceEverySchemeAccepted(t *testing.T) {
	for _, key := range runners.SchemeKeys() {
		out := filepath.Join(t.TempDir(), key+".json")
		var sb strings.Builder
		err := run(&sb, []string{"-bench", "MB", "-tasks", "8", "-smms", "4",
			"-nodes", "2", "-scheme", key, "-o", out})
		if err != nil {
			t.Errorf("scheme %q: %v", key, err)
			continue
		}
		if !strings.Contains(sb.String(), "node00/serve-"+key) {
			t.Errorf("scheme %q summary missing its node track:\n%s", key, sb.String())
		}
	}
}

// TestTenantTraceSmoke drives tenant mode end to end: three tenant classes
// must write one wait/service track per tenant and print a per-tenant
// outcome summary with the offered/served/shed split.
func TestTenantTraceSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tenants.json")
	var sb strings.Builder
	err := run(&sb, []string{"-bench", "XFMR", "-tasks", "96", "-smms", "4",
		"-tenants", "3", "-admit", "strict", "-scheme", "pagoda", "-rate", "192e3", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"3 tenants", "strict admission",
		"tenant-premium/serve-pagoda", "tenant-standard/serve-pagoda", "tenant-batch/serve-pagoda",
		"offered 32"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sb.String())
		}
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("tenant trace is not a JSON array: %v", err)
	}
	names := map[string]bool{}
	for _, e := range events {
		if e["ph"] == "M" {
			if args, ok := e["args"].(map[string]any); ok {
				names[args["name"].(string)] = true
			}
		}
	}
	for _, want := range []string{"tenant-premium/serve-pagoda", "tenant-standard/serve-pagoda"} {
		if !names[want] {
			t.Errorf("trace missing track %q (have %v)", want, names)
		}
	}
}

// TestTenantTraceRejectsBadFlags pins tenant-mode validation: the two stream
// modes are mutually exclusive and an unknown admission policy fails fast.
func TestTenantTraceRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	tmp := filepath.Join(t.TempDir(), "t.json")
	if err := run(&sb, []string{"-nodes", "2", "-tenants", "2", "-o", tmp}); err == nil {
		t.Error("run accepted -nodes together with -tenants")
	}
	if err := run(&sb, []string{"-tenants", "2", "-admit", "nope", "-o", tmp}); err == nil {
		t.Error("run accepted an unknown admission policy")
	}
	if err := run(&sb, []string{"-tenants", "2", "-scheme", "nope", "-o", tmp}); err == nil {
		t.Error("tenant mode accepted an unknown scheme")
	}
}

// TestClusterTraceRejectsUnknownSchemeAndPolicy pins cluster-mode validation.
func TestClusterTraceRejectsUnknownSchemeAndPolicy(t *testing.T) {
	var sb strings.Builder
	tmp := filepath.Join(t.TempDir(), "t.json")
	if err := run(&sb, []string{"-nodes", "2", "-scheme", "nope", "-o", tmp}); err == nil {
		t.Error("run accepted an unknown scheme")
	}
	if err := run(&sb, []string{"-nodes", "2", "-policy", "nope", "-o", tmp}); err == nil {
		t.Error("run accepted an unknown policy")
	}
}

// TestAutoscaleTraceSmoke drives elastic mode end to end: the written trace
// must carry the per-node serve tracks plus a "fleet/scale" track whose
// warmup/active/drain spans show each node's lifecycle, and the summary must
// report the scale-event and node-seconds ledger.
func TestAutoscaleTraceSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "elastic.json")
	var sb strings.Builder
	err := run(&sb, []string{"-bench", "MB", "-tasks", "128", "-smms", "4",
		"-autoscale", "reactive", "-minnodes", "1", "-maxnodes", "4", "-scheme", "pagoda", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"elastic 1..4 pagoda fleet", "reactive scaling",
		"fleet/scale:", "scale-outs", "node-seconds", "node00/serve-pagoda"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sb.String())
		}
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("elastic trace is not a JSON array: %v", err)
	}
	cats := map[string]int{}
	tracks := map[string]bool{}
	for _, e := range events {
		if c, ok := e["cat"].(string); ok {
			cats[c]++
		}
		if e["ph"] == "M" {
			if args, ok := e["args"].(map[string]any); ok {
				tracks[args["name"].(string)] = true
			}
		}
	}
	if !tracks["fleet/scale"] {
		t.Errorf("trace missing the fleet/scale track (have %v)", tracks)
	}
	if cats["active"] == 0 {
		t.Errorf("fleet/scale track has no active spans: %v", cats)
	}
	if cats["warmup"] == 0 {
		t.Errorf("no warm-up span despite a 1..4 elastic run: %v", cats)
	}
}

// TestAutoscaleTraceRejectsBadFlags pins elastic-mode validation: -autoscale
// is exclusive with -tenants, bounds must form a range, and unknown scaling
// policies fail fast.
func TestAutoscaleTraceRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	tmp := filepath.Join(t.TempDir(), "t.json")
	if err := run(&sb, []string{"-autoscale", "reactive", "-tenants", "2", "-o", tmp}); err == nil {
		t.Error("run accepted -autoscale together with -tenants")
	}
	if err := run(&sb, []string{"-autoscale", "reactive", "-minnodes", "5", "-maxnodes", "2", "-o", tmp}); err == nil {
		t.Error("run accepted inverted fleet bounds")
	}
	if err := run(&sb, []string{"-autoscale", "nope", "-o", tmp}); err == nil {
		t.Error("run accepted an unknown scaling policy")
	}
}
