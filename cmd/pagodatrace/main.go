// Command pagodatrace runs a narrow-task workload on Pagoda with execution
// tracing enabled and writes a Chrome trace-event JSON timeline (load it in
// chrome://tracing or https://ui.perfetto.dev) showing every task span per
// MTB — the reproduction's answer to profiling a MasterKernel run with
// nvprof.
//
// Usage:
//
//	pagodatrace -bench MB -tasks 256 -o trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// run executes the traced simulation; split from main so the smoke test can
// drive the command with small flags and inspect the written trace.
func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("pagodatrace", flag.ContinueOnError)
	benchName := fs.String("bench", "MB", "workload: MB, FB, BF, CONV, DCT, MM, SLUD, 3DES, MPE")
	tasks := fs.Int("tasks", 256, "number of tasks")
	threads := fs.Int("threads", 128, "threads per task")
	smms := fs.Int("smms", 8, "simulated SMMs")
	out := fs.String("o", "trace.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	b, err := workloads.ByName(*benchName)
	if err != nil {
		return err
	}
	defs := b.Make(workloads.Options{Tasks: *tasks, Threads: *threads, Seed: 1})

	eng := sim.New()
	gcfg := gpu.TitanX()
	gcfg.NumSMMs = *smms
	dev := gpu.NewDevice(eng, gcfg)
	bus := pcie.New(eng, pcie.Default())
	ctx := cuda.NewContext(eng, dev, bus, cuda.DefaultConfig())
	rt := core.NewRuntime(ctx, core.DefaultConfig())

	tr := trace.New()
	dev.Trace = tr
	rt.Trace = tr

	eng.Spawn("host", func(p *sim.Proc) {
		for i := range defs {
			td := &defs[i]
			rt.TaskSpawn(p, core.TaskSpec{
				Threads:   td.Threads,
				Blocks:    td.Blocks,
				SharedMem: td.SharedMem,
				Sync:      td.Sync,
				ArgBytes:  td.ArgBytes,
				Kernel:    func(tc *core.TaskCtx) { td.Kernel(tc) },
			})
		}
		rt.WaitAll(p)
		rt.Shutdown(p)
	})
	end := eng.Run()

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteChromeJSON(f); err != nil {
		return err
	}

	st := rt.Stats()
	fmt.Fprintf(w, "ran %d %s tasks in %.2f ms simulated; wrote %d spans to %s\n",
		st.Completed, *benchName, end/1e6, tr.Len(), *out)
	summary := tr.Summary()
	cats := make([]string, 0, len(summary))
	for cat := range summary {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		s := summary[cat]
		fmt.Fprintf(w, "  %-12s %6d spans, %10.1f us total\n", cat, s.Count, s.Busy/1e3)
	}
	return nil
}
