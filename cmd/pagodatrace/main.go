// Command pagodatrace runs a narrow-task workload on Pagoda with execution
// tracing enabled and writes a Chrome trace-event JSON timeline (load it in
// chrome://tracing or https://ui.perfetto.dev) showing every task span per
// MTB — the reproduction's answer to profiling a MasterKernel run with
// nvprof.
//
// Usage:
//
//	pagodatrace -bench MB -tasks 256 -o trace.json
//	pagodatrace -nodes 4 -policy p2c -scheme pagoda -o fleet.json
//
// With -nodes N > 0 the command switches to cluster mode: it runs an
// open-loop arrival stream on an N-node fleet (one engine, one clock) and
// writes a merged trace with one wait/service track per node
// ("node00/serve-pagoda", ...). Track order is stable — lexicographic, which
// is node order — and the printed summary groups by node, then category.
//
// With -tenants N > 0 the command switches to tenant mode instead: the
// open-loop stream is the merge of N tenant classes (premium/standard/batch
// tiers, one misbehaving at 10x its contract) through the class-aware
// admission layer, and the trace carries one wait/service track per tenant
// ("tenant-premium/serve-pagoda", ...) with a per-tenant outcome summary.
//
// With -autoscale <policy> the fleet is elastic instead of fixed: a diurnal
// arrival wave drives the named scaling policy between -minnodes and
// -maxnodes, and the trace gains a "fleet/scale" track whose warmup, active
// and drain spans show each node's lifecycle alongside the per-node serve
// tracks. Mutually exclusive with -tenants.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/runners"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/tenancy"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// run executes the traced simulation; split from main so the smoke test can
// drive the command with small flags and inspect the written trace.
func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("pagodatrace", flag.ContinueOnError)
	benchName := fs.String("bench", "MB", "workload: MB, FB, BF, CONV, DCT, MM, SLUD, 3DES, MPE")
	tasks := fs.Int("tasks", 256, "number of tasks")
	threads := fs.Int("threads", 128, "threads per task")
	smms := fs.Int("smms", 8, "simulated SMMs")
	seed := fs.Int64("seed", 1, "workload and arrival-stream seed")
	nodes := fs.Int("nodes", 0, "cluster mode: fleet size (0 = single-device closed-loop trace)")
	autoPol := fs.String("autoscale", "", "elastic cluster mode: scaling policy (empty = fixed fleet): "+strings.Join(autoscale.PolicyNames(), ", "))
	minNodes := fs.Int("minnodes", 2, "elastic mode lower fleet bound")
	maxNodes := fs.Int("maxnodes", 8, "elastic mode upper fleet bound")
	policy := fs.String("policy", "rr", "cluster mode routing policy: "+fmt.Sprint(cluster.PolicyNames()))
	scheme := fs.String("scheme", "pagoda", "cluster/tenant mode execution scheme: "+strings.Join(runners.SchemeKeys(), ", "))
	rate := fs.Float64("rate", 64e3, "cluster/tenant mode offered arrival rate (per node / contracted per class), tasks/s")
	tenants := fs.Int("tenants", 0, "tenant mode: tenant classes (0 = off); one wait/service track per tenant")
	admit := fs.String("admit", tenancy.AdmitStrict, "tenant mode admission policy: "+strings.Join(tenancy.Kinds(), ", "))
	out := fs.String("o", "trace.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes > 0 && *tenants > 0 {
		return fmt.Errorf("pagodatrace: -nodes and -tenants are mutually exclusive modes")
	}
	if *autoPol != "" && *tenants > 0 {
		return fmt.Errorf("pagodatrace: -autoscale and -tenants are mutually exclusive modes")
	}
	if *minNodes < 1 || *minNodes > *maxNodes {
		return fmt.Errorf("pagodatrace: fleet bounds %d..%d are not a valid range", *minNodes, *maxNodes)
	}

	b, err := workloads.ByName(*benchName)
	if err != nil {
		return err
	}
	defs := b.Make(workloads.Options{Tasks: *tasks, Threads: *threads, Seed: *seed})

	if *autoPol != "" {
		return runAutoscale(w, defs, *benchName, *smms, *seed, *minNodes, *maxNodes, *autoPol, *policy, *scheme, *rate, *out)
	}
	if *nodes > 0 {
		return runCluster(w, defs, *benchName, *smms, *seed, *nodes, *policy, *scheme, *rate, *out)
	}
	if *tenants > 0 {
		return runTenants(w, b, *benchName, *tasks, *threads, *smms, *seed, *tenants, *admit, *scheme, *rate, *out)
	}

	eng := sim.New()
	gcfg := gpu.TitanX()
	gcfg.NumSMMs = *smms
	dev := gpu.NewDevice(eng, gcfg)
	bus := pcie.New(eng, pcie.Default())
	ctx := cuda.NewContext(eng, dev, bus, cuda.DefaultConfig())
	rt := core.NewRuntime(ctx, core.DefaultConfig())

	tr := trace.New()
	dev.Trace = tr
	rt.Trace = tr

	eng.Spawn("host", func(p *sim.Proc) {
		for i := range defs {
			td := &defs[i]
			rt.TaskSpawn(p, core.TaskSpec{
				Threads:   td.Threads,
				Blocks:    td.Blocks,
				SharedMem: td.SharedMem,
				Sync:      td.Sync,
				ArgBytes:  td.ArgBytes,
				Kernel:    func(tc *core.TaskCtx) { td.Kernel(tc) },
			})
		}
		rt.WaitAll(p)
		rt.Shutdown(p)
	})
	end := eng.Run()

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteChromeJSON(f); err != nil {
		return err
	}

	st := rt.Stats()
	fmt.Fprintf(w, "ran %d %s tasks in %.2f ms simulated; wrote %d spans to %s\n",
		st.Completed, *benchName, end/1e6, tr.Len(), *out)
	summary := tr.Summary()
	cats := make([]string, 0, len(summary))
	for cat := range summary {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		s := summary[cat]
		fmt.Fprintf(w, "  %-12s %6d spans, %10.1f us total\n", cat, s.Count, s.Busy/1e3)
	}
	return nil
}

// runTenants runs the multi-tenant open loop on one device and writes a
// trace with one wait/service track per tenant class, plus a per-tenant
// outcome summary (served/shed/evicted and span totals).
func runTenants(w io.Writer, b workloads.Benchmark, benchName string,
	tasks, threads, smms int, seed int64, tenants int, admit, scheme string, rate float64, out string) error {
	sc, ok := runners.SchemeByKey(scheme)
	if !ok {
		return fmt.Errorf("pagodatrace: unknown scheme %q (valid: %s)", scheme, strings.Join(runners.SchemeKeys(), ", "))
	}
	okKind := false
	for _, k := range tenancy.Kinds() {
		okKind = okKind || k == admit
	}
	if !okKind {
		return fmt.Errorf("pagodatrace: unknown admission policy %q (valid: %s)", admit, strings.Join(tenancy.Kinds(), ", "))
	}

	const slo = sim.Time(1000e3) // 1000us premium p99 bound
	horizon := sim.Time(float64(tasks) / float64(tenants) / rate * 1e9)
	classes := tenancy.DefaultClasses(tenants, rate, slo, horizon, seed, 1)
	counts := make([]int, tenants)
	for c := range counts {
		counts[c] = tasks / tenants
		if c < tasks%tenants {
			counts[c]++
		}
	}
	arrivals, classOf := tenancy.Merge(classes, counts)
	defs := b.Make(workloads.Options{Tasks: len(arrivals), Threads: threads, Seed: seed})
	adm := tenancy.NewAdmission(admit, classes, arrivals, classOf, 64, admit != tenancy.AdmitNone)

	cfg := runners.DefaultConfig()
	cfg.SMMs = smms
	_, recs := sc.RunOpenLoop(defs, runners.OpenLoop{Arrivals: arrivals, AdmitTask: adm.AdmitTask}, cfg)

	// One wait/service track per tenant, built directly from the records so
	// each tenant's queueing story reads as its own timeline row.
	tr := trace.New()
	tracks := make([]string, tenants)
	for c, cl := range classes {
		tracks[c] = fmt.Sprintf("tenant-%s/serve-%s", cl.Name, scheme)
	}
	for i, r := range recs {
		if r.Dropped {
			continue
		}
		tr.Add(trace.Span{Name: trace.SpanName("wait", int64(i)), Cat: "wait",
			Track: tracks[classOf[i]], Start: r.Submit, End: r.Start})
		tr.Add(trace.Span{Name: trace.SpanName("service", int64(i)), Cat: "service",
			Track: tracks[classOf[i]], Start: r.Start, End: r.Done})
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteChromeJSON(f); err != nil {
		return err
	}

	st := tenancy.SummarizeClasses(classes, classOf, recs, adm.Outcomes())
	fmt.Fprintf(w, "ran %d %s tasks for %d tenants (%s admission, %s scheme); wrote %d spans to %s\n",
		len(recs), benchName, tenants, admit, scheme, tr.Len(), out)
	byTrack := tr.SummaryByTrack()
	for c := range classes {
		s := st[c]
		fmt.Fprintf(w, "  %s: offered %d, served %d, shed %d, evicted %d, p99 %.1f us\n",
			tracks[c], s.Offered, s.Completed, s.Shed, s.Evicted, s.P99/1e3)
		per := byTrack[tracks[c]]
		cats := make([]string, 0, len(per))
		for cat := range per {
			cats = append(cats, cat)
		}
		sort.Strings(cats)
		for _, cat := range cats {
			sum := per[cat]
			fmt.Fprintf(w, "    %-10s %6d spans, %10.1f us total\n", cat, sum.Count, sum.Busy/1e3)
		}
	}
	return nil
}

// runAutoscale runs an elastic fleet under a diurnal arrival wave and writes
// the merged trace: the usual per-node serve tracks plus a "fleet/scale"
// track carrying each node's warmup/active/drain lifecycle spans, so the
// timeline shows capacity following load.
func runAutoscale(w io.Writer, defs []workloads.TaskDef, benchName string,
	smms int, seed int64, minN, maxN int, autoPol, policy, scheme string, rate float64, out string) error {
	mk, err := cluster.NewPolicy(policy, seed)
	if err != nil {
		return err
	}
	sc, ok := runners.SchemeByKey(scheme)
	if !ok {
		return fmt.Errorf("pagodatrace: unknown scheme %q (valid: %s)", scheme, strings.Join(runners.SchemeKeys(), ", "))
	}
	tu := autoscale.DefaultTuning()
	tu.PerNodeRate = rate
	mkPol, err := autoscale.NewPolicy(autoPol, tu)
	if err != nil {
		return fmt.Errorf("pagodatrace: %v (valid: %s)", err, strings.Join(autoscale.PolicyNames(), ", "))
	}
	cfg := runners.DefaultConfig()
	cfg.SMMs = smms

	// A diurnal wave whose mean sits mid-band, with a short control loop and
	// warm-up so even small -tasks runs show scale events on the timeline.
	tr := trace.New()
	mean := rate * float64(minN+maxN) / 2
	co := runners.ClusterOpenLoop{
		Arrivals: serve.Diurnal{MeanRate: mean, Swing: 0.8, Period: 400_000, Seed: seed}.Times(len(defs)),
		Policy:   mk(),
		Scaler: &autoscale.Config{Min: minN, Max: maxN, Policy: mkPol,
			Interval: 50_000, Warmup: 200_000, Cooldown: 100_000},
		Trace: tr,
	}
	res, cr := sc.RunCluster(defs, co, cfg)
	if err := cr.CheckConservation(); err != nil {
		return err
	}

	// Lifecycle spans: one "fleet/scale" track, one span per phase per node.
	// A node canceled during warm-up (ActiveAt 0 despite a post-start
	// provision) reads as warmup for its whole open extent, then drain; the
	// initial nodes are active from t=0 with no warm-up.
	for i, sp := range cr.Scale.Nodes {
		activeFrom := sp.ActiveAt
		if sp.ActiveAt == 0 && sp.ProvisionedAt > 0 {
			activeFrom = sp.ClosedAt // never promoted
		}
		if activeFrom > sp.ProvisionedAt {
			tr.Add(trace.Span{Name: trace.SpanName("warmup", int64(i)), Cat: "warmup",
				Track: "fleet/scale", Start: sp.ProvisionedAt, End: activeFrom})
		}
		if sp.ClosedAt > activeFrom {
			tr.Add(trace.Span{Name: trace.SpanName("active", int64(i)), Cat: "active",
				Track: "fleet/scale", Start: activeFrom, End: sp.ClosedAt})
		}
		if sp.RetiredAt > sp.ClosedAt {
			tr.Add(trace.Span{Name: trace.SpanName("drain", int64(i)), Cat: "drain",
				Track: "fleet/scale", Start: sp.ClosedAt, End: sp.RetiredAt})
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteChromeJSON(f); err != nil {
		return err
	}

	o := cr.Scale
	fmt.Fprintf(w, "ran %d %s tasks on an elastic %d..%d %s fleet (%s scaling, policy %s) in %.2f ms simulated; wrote %d spans to %s\n",
		len(defs), benchName, minN, maxN, scheme, autoPol, policy, res.Elapsed/1e6, tr.Len(), out)
	fmt.Fprintf(w, "  fleet/scale: %d scale-outs, %d scale-ins, peak %d nodes, %.4f node-seconds\n",
		o.ScaleOuts, o.ScaleIns, o.Peak, o.NodeSeconds())
	for i, track := range cr.Names {
		v := cr.Views[i]
		sp := o.Nodes[i]
		fmt.Fprintf(w, "  %s: routed %d, done %d, dropped %d (provisioned %.1f us, retired %.1f us)\n",
			track, v.Routed, v.Done, v.Dropped, sp.ProvisionedAt/1e3, sp.RetiredAt/1e3)
	}
	return nil
}

// runCluster runs the open-loop fleet and writes the merged per-node trace.
func runCluster(w io.Writer, defs []workloads.TaskDef, benchName string,
	smms int, seed int64, nodes int, policy, scheme string, rate float64, out string) error {
	mk, err := cluster.NewPolicy(policy, seed)
	if err != nil {
		return err
	}
	sc, ok := runners.SchemeByKey(scheme)
	if !ok {
		return fmt.Errorf("pagodatrace: unknown scheme %q (valid: %s)", scheme, strings.Join(runners.SchemeKeys(), ", "))
	}
	run := sc.RunCluster
	cfg := runners.DefaultConfig()
	cfg.SMMs = smms

	tr := trace.New()
	co := runners.ClusterOpenLoop{
		Arrivals: serve.Poisson{Rate: rate * float64(nodes), Seed: seed}.Times(len(defs)),
		Nodes:    nodes,
		Policy:   mk(),
		Trace:    tr,
	}
	res, cr := run(defs, co, cfg)
	if err := cr.CheckConservation(); err != nil {
		return err
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteChromeJSON(f); err != nil {
		return err
	}

	fmt.Fprintf(w, "ran %d %s tasks on %d %s nodes (policy %s) in %.2f ms simulated; wrote %d spans to %s\n",
		len(defs), benchName, nodes, scheme, policy, res.Elapsed/1e6, tr.Len(), out)
	byTrack := tr.SummaryByTrack()
	for i, track := range cr.Names { // "node%02d/..." names: index order = lexicographic order
		v := cr.Views[i]
		fmt.Fprintf(w, "  %s: routed %d, done %d, dropped %d\n", track, v.Routed, v.Done, v.Dropped)
		per := byTrack[track]
		cats := make([]string, 0, len(per))
		for cat := range per {
			cats = append(cats, cat)
		}
		sort.Strings(cats)
		for _, cat := range cats {
			s := per[cat]
			fmt.Fprintf(w, "    %-10s %6d spans, %10.1f us total\n", cat, s.Count, s.Busy/1e3)
		}
	}
	return nil
}
