// Command gpuinfo prints the simulated device geometry and the occupancy
// arithmetic of the paper's §2 (the motivation for Pagoda), plus the
// MasterKernel's occupancy analysis.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/gpu"
)

func main() {
	render(os.Stdout)
}

// render writes the full report; split from main so the smoke test can run
// the command end to end without capturing the process's stdout.
func render(w io.Writer) {
	cfg := gpu.TitanX()
	fmt.Fprintln(w, "Simulated device: NVIDIA Maxwell Titan X")
	fmt.Fprintf(w, "  SMMs:                 %d\n", cfg.NumSMMs)
	fmt.Fprintf(w, "  CUDA cores:           %d (%d per SMM)\n",
		cfg.NumSMMs*int(cfg.IssueWidth)*cfg.ThreadsPerWarp, int(cfg.IssueWidth)*cfg.ThreadsPerWarp)
	fmt.Fprintf(w, "  Warps per SMM:        %d (%d threads)\n", cfg.WarpsPerSMM, cfg.MaxResidentThreads())
	fmt.Fprintf(w, "  Shared mem per SMM:   %d KB\n", cfg.SharedPerSMM/1024)
	fmt.Fprintf(w, "  Registers per SMM:    %dK x 32-bit\n", cfg.RegsPerSMM/1024)
	fmt.Fprintf(w, "  Max TBs per SMM:      %d\n", cfg.MaxTBsPerSMM)
	fmt.Fprintf(w, "  Device warp capacity: %d\n\n", cfg.TotalWarps())

	fmt.Fprintln(w, "Narrow-task occupancy (256-thread task = 8 warps), per §2:")
	one := gpu.NarrowTaskOccupancy(cfg, 256, 1)
	hq := gpu.NarrowTaskOccupancy(cfg, 256, 32)
	fmt.Fprintf(w, "  1 task at a time:       %5.2f%%  (paper: 0.52%%)\n", one*100)
	fmt.Fprintf(w, "  32 tasks under HyperQ:  %5.2f%%  (paper: 16.67%%)\n\n", hq*100)

	fmt.Fprintln(w, "MasterKernel launch analysis (2 MTBs/SMM x 1024 threads, 32KB smem, 32 regs):")
	occ := gpu.TheoreticalOccupancy(cfg, gpu.LaunchSpec{
		BlockThreads: 1024, SharedPerTB: 32 * 1024, RegsPerThread: 32,
	})
	fmt.Fprintf(w, "  Resident TBs/SMM: %d, warps/SMM: %d, occupancy: %.0f%% (limited by %s)\n",
		occ.TBsPerSMM, occ.WarpsPerSMM, occ.Fraction*100, occ.LimitedBy)
}
