// Command gpuinfo prints the simulated device geometry and the occupancy
// arithmetic of the paper's §2 (the motivation for Pagoda), plus the
// MasterKernel's occupancy analysis.
package main

import (
	"fmt"

	"repro/internal/gpu"
)

func main() {
	cfg := gpu.TitanX()
	fmt.Println("Simulated device: NVIDIA Maxwell Titan X")
	fmt.Printf("  SMMs:                 %d\n", cfg.NumSMMs)
	fmt.Printf("  CUDA cores:           %d (%d per SMM)\n",
		cfg.NumSMMs*int(cfg.IssueWidth)*cfg.ThreadsPerWarp, int(cfg.IssueWidth)*cfg.ThreadsPerWarp)
	fmt.Printf("  Warps per SMM:        %d (%d threads)\n", cfg.WarpsPerSMM, cfg.MaxResidentThreads())
	fmt.Printf("  Shared mem per SMM:   %d KB\n", cfg.SharedPerSMM/1024)
	fmt.Printf("  Registers per SMM:    %dK x 32-bit\n", cfg.RegsPerSMM/1024)
	fmt.Printf("  Max TBs per SMM:      %d\n", cfg.MaxTBsPerSMM)
	fmt.Printf("  Device warp capacity: %d\n\n", cfg.TotalWarps())

	fmt.Println("Narrow-task occupancy (256-thread task = 8 warps), per §2:")
	one := gpu.NarrowTaskOccupancy(cfg, 256, 1)
	hq := gpu.NarrowTaskOccupancy(cfg, 256, 32)
	fmt.Printf("  1 task at a time:       %5.2f%%  (paper: 0.52%%)\n", one*100)
	fmt.Printf("  32 tasks under HyperQ:  %5.2f%%  (paper: 16.67%%)\n\n", hq*100)

	fmt.Println("MasterKernel launch analysis (2 MTBs/SMM x 1024 threads, 32KB smem, 32 regs):")
	occ := gpu.TheoreticalOccupancy(cfg, gpu.LaunchSpec{
		BlockThreads: 1024, SharedPerTB: 32 * 1024, RegsPerThread: 32,
	})
	fmt.Printf("  Resident TBs/SMM: %d, warps/SMM: %d, occupancy: %.0f%% (limited by %s)\n",
		occ.TBsPerSMM, occ.WarpsPerSMM, occ.Fraction*100, occ.LimitedBy)
}
