package main

import (
	"strings"
	"testing"
)

// TestRenderSmoke runs the whole report and pins the §2 numbers it exists to
// show: the Titan X geometry and the two occupancy motivators.
func TestRenderSmoke(t *testing.T) {
	var sb strings.Builder
	render(&sb)
	out := sb.String()
	for _, want := range []string{
		"Simulated device: NVIDIA Maxwell Titan X",
		"0.52%",           // paper's single-narrow-task occupancy
		"16.67%",          // paper's 32-task HyperQ occupancy
		"occupancy: 100%", // MasterKernel launch fills the device
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q; got:\n%s", want, out)
		}
	}
}
