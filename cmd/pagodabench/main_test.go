package main

import (
	"strings"
	"testing"
)

// TestListSmoke pins the experiment registry the CLI advertises.
func TestListSmoke(t *testing.T) {
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-list"}); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errw.String())
	}
	for _, id := range []string{"table3", "fig5", "cpuschemes"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %q:\n%s", id, out.String())
		}
	}
}

// TestRunSmoke regenerates the cheapest experiment at a tiny scale and
// checks a recognizable report comes out in each format.
func TestRunSmoke(t *testing.T) {
	for _, format := range []string{"text", "csv"} {
		var out, errw strings.Builder
		code := run(&out, &errw, []string{"-exp", "cpuschemes", "-tasks", "64", "-format", format})
		if code != 0 {
			t.Fatalf("run(cpuschemes, %s) = %d, stderr %q", format, code, errw.String())
		}
		if !strings.Contains(out.String(), "OpenMP") {
			t.Errorf("%s report missing the OpenMP scheme:\n%s", format, out.String())
		}
	}
}

// TestRunRejectsUnknownExperiment pins the error path and exit code.
func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-exp", "fig99"}); code != 2 {
		t.Fatalf("run(fig99) = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown experiment") {
		t.Errorf("stderr = %q, want unknown-experiment error", errw.String())
	}
}
