package main

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

// TestListSmoke pins the experiment registry the CLI advertises.
func TestListSmoke(t *testing.T) {
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-list"}); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errw.String())
	}
	for _, id := range []string{"table3", "fig5", "cpuschemes"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %q:\n%s", id, out.String())
		}
	}
}

// TestRunSmoke regenerates the cheapest experiment at a tiny scale and
// checks a recognizable report comes out in each format.
func TestRunSmoke(t *testing.T) {
	for _, format := range []string{"text", "csv"} {
		var out, errw strings.Builder
		code := run(&out, &errw, []string{"-exp", "cpuschemes", "-tasks", "64", "-format", format})
		if code != 0 {
			t.Fatalf("run(cpuschemes, %s) = %d, stderr %q", format, code, errw.String())
		}
		if !strings.Contains(out.String(), "OpenMP") {
			t.Errorf("%s report missing the OpenMP scheme:\n%s", format, out.String())
		}
	}
}

// TestMultiExperimentJSONIsOneDocument pins the -format json fix: a
// multi-experiment run must emit a single JSON array, not a concatenation of
// documents no standard parser accepts.
func TestMultiExperimentJSONIsOneDocument(t *testing.T) {
	var out, errw strings.Builder
	code := run(&out, &errw, []string{"-exp", "table3,cpuschemes", "-tasks", "48", "-smms", "4", "-format", "json"})
	if code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errw.String())
	}
	var reps []struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out.String()), &reps); err != nil {
		t.Fatalf("multi-experiment JSON is not one parseable document: %v", err)
	}
	if len(reps) != 2 || reps[0].ID != "table3" || reps[1].ID != "cpuschemes" {
		t.Fatalf("json array = %+v, want table3 then cpuschemes", reps)
	}
	if len(reps[0].Rows) == 0 || len(reps[1].Rows) == 0 {
		t.Fatalf("empty rows in %+v", reps)
	}
}

// TestMultiExperimentCSVIsOneStream pins the -format csv companion fix: one
// stream with a leading "experiment" column, parseable end to end.
func TestMultiExperimentCSVIsOneStream(t *testing.T) {
	var out, errw strings.Builder
	code := run(&out, &errw, []string{"-exp", "table3,cpuschemes", "-tasks", "48", "-smms", "4", "-format", "csv"})
	if code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errw.String())
	}
	rd := csv.NewReader(strings.NewReader(out.String()))
	rd.FieldsPerRecord = -1 // column sets differ per experiment
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("multi-experiment CSV not parseable: %v", err)
	}
	ids := map[string]bool{}
	for _, rec := range recs {
		ids[rec[0]] = true
	}
	for _, want := range []string{"experiment", "table3", "cpuschemes"} {
		if !ids[want] {
			t.Errorf("csv stream missing %q in its experiment column: %v", want, ids)
		}
	}
}

// TestParallelFlagOutputIdentical drives the CLI end to end: -parallel 4
// must produce byte-identical output to -parallel 1 (csv format, which has
// no wall-clock timing line).
func TestParallelFlagOutputIdentical(t *testing.T) {
	outs := make([]string, 2)
	for i, par := range []string{"1", "4"} {
		var out, errw strings.Builder
		code := run(&out, &errw, []string{"-exp", "table3,cpuschemes", "-tasks", "48", "-smms", "4",
			"-format", "csv", "-parallel", par})
		if code != 0 {
			t.Fatalf("run(-parallel %s) = %d, stderr %q", par, code, errw.String())
		}
		outs[i] = out.String()
	}
	if outs[0] != outs[1] {
		t.Errorf("-parallel 4 output differs from -parallel 1:\n--- 1 ---\n%s\n--- 4 ---\n%s", outs[0], outs[1])
	}
}

// TestExpListCleanup pins the -exp list fixes: trailing commas, surrounding
// whitespace and duplicate ids must all resolve to one clean run.
func TestExpListCleanup(t *testing.T) {
	cases := []struct {
		name, expr string
	}{
		{"trailing comma", "cpuschemes,"},
		{"whitespace", " cpuschemes , table3 "},
		{"duplicates", "cpuschemes,cpuschemes,table3,cpuschemes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errw strings.Builder
			code := run(&out, &errw, []string{"-exp", c.expr, "-tasks", "48", "-smms", "4", "-format", "csv"})
			if code != 0 {
				t.Fatalf("run(-exp %q) = %d, stderr %q", c.expr, code, errw.String())
			}
			if !strings.Contains(out.String(), "OpenMP") {
				t.Errorf("cleaned run missing cpuschemes output:\n%s", out.String())
			}
		})
	}
	// Dedup must mean exactly one run: a doubled id emits its header once.
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-exp", "cpuschemes,cpuschemes", "-tasks", "48", "-smms", "4", "-format", "csv"}); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errw.String())
	}
	if n := strings.Count(out.String(), "Benchmark,OpenMP"); n != 1 {
		t.Errorf("duplicate id ran %d times, want 1:\n%s", n, out.String())
	}
}

// TestExpListErrors pins the empty-list and unknown-id error paths; the
// unknown-id message must teach the valid set.
func TestExpListErrors(t *testing.T) {
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-exp", ",,"}); code != 2 {
		t.Fatalf("run(-exp ,,) = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "names no experiments") {
		t.Errorf("stderr = %q, want empty-list error", errw.String())
	}
	errw.Reset()
	if code := run(&out, &errw, []string{"-exp", "fig5,bogus"}); code != 2 {
		t.Fatalf("run(-exp fig5,bogus) = %d, want 2", code)
	}
	for _, want := range []string{"unknown experiment", `"bogus"`, "fig5", "cpuschemes", "all"} {
		if !strings.Contains(errw.String(), want) {
			t.Errorf("unknown-id error %q missing %q", errw.String(), want)
		}
	}
}

// TestTextStdoutByteIdentical pins the stdout-purity fix: text mode was the
// one format whose output varied run to run, because the timing footer
// interpolated wall clock into stdout. The footer now goes to stderr, so two
// identical invocations must produce identical stdout.
func TestTextStdoutByteIdentical(t *testing.T) {
	outs := make([]string, 2)
	for i := range outs {
		var out, errw strings.Builder
		code := run(&out, &errw, []string{"-exp", "table3,cpuschemes", "-tasks", "48", "-smms", "4"})
		if code != 0 {
			t.Fatalf("run = %d, stderr %q", code, errw.String())
		}
		if !strings.Contains(errw.String(), "regenerated in") {
			t.Errorf("timing footer missing from stderr: %q", errw.String())
		}
		if strings.Contains(out.String(), "regenerated in") {
			t.Errorf("timing footer leaked into stdout:\n%s", out.String())
		}
		outs[i] = out.String()
	}
	if outs[0] != outs[1] {
		t.Errorf("text stdout differs between runs:\n--- 1 ---\n%s\n--- 2 ---\n%s", outs[0], outs[1])
	}
}

// TestRunRejectsUnknownExperiment pins the error path and exit code.
func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-exp", "fig99"}); code != 2 {
		t.Fatalf("run(fig99) = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown experiment") {
		t.Errorf("stderr = %q, want unknown-experiment error", errw.String())
	}
}

// TestClusterFlagsAndSeedExport drives the cluster experiment through the
// CLI: -nodes/-policy select the fleet, and the JSON export names the seed
// that produced the arrival streams.
func TestClusterFlagsAndSeedExport(t *testing.T) {
	var out, errw strings.Builder
	code := run(&out, &errw, []string{"-exp", "cluster_policy", "-tasks", "48", "-smms", "4",
		"-nodes", "2", "-policy", "p2c", "-seed", "7", "-format", "json"})
	if code != 0 {
		t.Fatalf("run(cluster_policy) = %d, stderr %q", code, errw.String())
	}
	var rep struct {
		ID   string     `json:"id"`
		Seed int64      `json:"seed"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("cluster JSON not parseable: %v", err)
	}
	if rep.ID != "cluster_policy" || rep.Seed != 7 || len(rep.Rows) == 0 {
		t.Fatalf("report = id %q seed %d rows %d, want cluster_policy/7/>0", rep.ID, rep.Seed, len(rep.Rows))
	}
}

// TestClusterCSVCarriesSeedRow pins the CSV side of the seed export: seeded
// experiments end with a "# seed,<n>" row.
func TestClusterCSVCarriesSeedRow(t *testing.T) {
	var out, errw strings.Builder
	code := run(&out, &errw, []string{"-exp", "cluster_scaling", "-tasks", "48", "-smms", "4",
		"-seed", "9", "-format", "csv"})
	if code != 0 {
		t.Fatalf("run(cluster_scaling) = %d, stderr %q", code, errw.String())
	}
	rd := csv.NewReader(strings.NewReader(out.String()))
	rd.FieldsPerRecord = -1
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("cluster CSV not parseable: %v", err)
	}
	last := recs[len(recs)-1]
	if len(last) != 2 || last[0] != "# seed" || last[1] != "9" {
		t.Errorf("last CSV row = %v, want [# seed 9]", last)
	}
}

// TestSeedZeroExported pins the -seed 0 provenance fix through the CLI: an
// explicit zero seed is still a seed, and the artifact must name it.
func TestSeedZeroExported(t *testing.T) {
	var out, errw strings.Builder
	code := run(&out, &errw, []string{"-exp", "cluster_scaling", "-tasks", "48", "-smms", "4",
		"-seed", "0", "-format", "csv"})
	if code != 0 {
		t.Fatalf("run(-seed 0) = %d, stderr %q", code, errw.String())
	}
	rd := csv.NewReader(strings.NewReader(out.String()))
	rd.FieldsPerRecord = -1
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if len(last) != 2 || last[0] != "# seed" || last[1] != "0" {
		t.Errorf("last CSV row = %v, want [# seed 0]", last)
	}
}

// TestRejectsUnknownPolicy pins the -policy validation path.
func TestRejectsUnknownPolicy(t *testing.T) {
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-exp", "cluster_policy", "-policy", "bogus"}); code != 2 {
		t.Fatalf("run(-policy bogus) = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "bogus") {
		t.Errorf("stderr = %q, want unknown-policy error", errw.String())
	}
}

// TestRejectsUnknownScheme pins the -scheme validation path: an unknown
// scheme name fails before any simulation runs, exit 2, and the error
// teaches the valid set.
func TestRejectsUnknownScheme(t *testing.T) {
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-exp", "serve_capacity", "-scheme", "pagoda,bogus"}); code != 2 {
		t.Fatalf("run(-scheme pagoda,bogus) = %d, want 2", code)
	}
	for _, want := range []string{"unknown scheme", `"bogus"`, "hyperq", "gemtc", "pagoda", "zorua"} {
		if !strings.Contains(errw.String(), want) {
			t.Errorf("unknown-scheme error %q missing %q", errw.String(), want)
		}
	}
	errw.Reset()
	if code := run(&out, &errw, []string{"-exp", "serve_capacity", "-scheme", ",,"}); code != 2 {
		t.Fatalf("run(-scheme ,,) = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "names no schemes") {
		t.Errorf("stderr = %q, want empty-list error", errw.String())
	}
}

// TestSchemeFilterRestrictsSweep drives -scheme end to end: a filtered
// serve_capacity run reports exactly the named schemes, in registry order.
func TestSchemeFilterRestrictsSweep(t *testing.T) {
	var out, errw strings.Builder
	code := run(&out, &errw, []string{"-exp", "serve_capacity", "-tasks", "32", "-smms", "4",
		"-scheme", "zorua,pagoda", "-format", "csv"})
	if code != 0 {
		t.Fatalf("run(-scheme zorua,pagoda) = %d, stderr %q", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"Pagoda", "Zorua"} {
		if !strings.Contains(got, want) {
			t.Errorf("filtered sweep missing %s:\n%s", want, got)
		}
	}
	for _, banned := range []string{"CUDA-HyperQ", "GeMTC"} {
		if strings.Contains(got, banned) {
			t.Errorf("filtered sweep still ran %s:\n%s", banned, got)
		}
	}
}

// TestRejectsBadFleetFlags pins the flag-validation satellite: impossible
// fleet shapes fail before any simulation runs, exit 2, with a message that
// names the offending value.
func TestRejectsBadFleetFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"nodes zero", []string{"-exp", "cluster_policy", "-nodes", "0"}, "at least one node"},
		{"nodes negative", []string{"-exp", "cluster_policy", "-nodes", "-3"}, "at least one node"},
		{"oversub below one", []string{"-exp", "oversub_sweep", "-oversub", "0.5"}, "under-provision"},
		{"minnodes zero", []string{"-exp", "cluster_autoscale", "-minnodes", "0"}, "lower bound"},
		{"inverted bounds", []string{"-exp", "cluster_autoscale", "-minnodes", "8", "-maxnodes", "2"}, "inverted"},
		{"unknown autoscale policy", []string{"-exp", "cluster_autoscale", "-autoscale", "bogus"}, "reactive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errw strings.Builder
			if code := run(&out, &errw, c.args); code != 2 {
				t.Fatalf("run(%v) = %d, want 2 (stderr %q)", c.args, code, errw.String())
			}
			if !strings.Contains(errw.String(), c.want) {
				t.Errorf("stderr = %q, want mention of %q", errw.String(), c.want)
			}
		})
	}
	// The boundary values stay legal: -oversub 1 is physical admission and
	// -minnodes equal to -maxnodes is a fixed fleet.
	var out, errw strings.Builder
	code := run(&out, &errw, []string{"-exp", "cluster_autoscale", "-tasks", "48", "-smms", "4",
		"-minnodes", "2", "-maxnodes", "2", "-scheme", "gemtc", "-autoscale", "reactive", "-format", "csv"})
	if code != 0 {
		t.Fatalf("run(minnodes=maxnodes) = %d, stderr %q", code, errw.String())
	}
}

// TestAutoscaleFlagsReachExperiment drives -minnodes/-maxnodes/-autoscale end
// to end: the report header names the bounds and only the chosen policy runs.
func TestAutoscaleFlagsReachExperiment(t *testing.T) {
	var out, errw strings.Builder
	code := run(&out, &errw, []string{"-exp", "cluster_autoscale", "-tasks", "48", "-smms", "4",
		"-minnodes", "1", "-maxnodes", "3", "-autoscale", "predictive", "-scheme", "hyperq", "-format", "csv"})
	if code != 0 {
		t.Fatalf("run(cluster_autoscale) = %d, stderr %q", code, errw.String())
	}
	got := out.String()
	if !strings.Contains(got, "predictive") {
		t.Errorf("filtered run missing the predictive policy:\n%s", got)
	}
	if strings.Contains(got, "reactive") {
		t.Errorf("-autoscale predictive still ran reactive:\n%s", got)
	}
}
