// Command pagodabench regenerates the tables and figures of the Pagoda
// paper's evaluation (§6) on the simulated Titan X.
//
// Usage:
//
//	pagodabench -exp fig5            # one experiment
//	pagodabench -exp all -tasks 8192 # the full evaluation at a given scale
//
// The paper's runs use -tasks 32768; the default 2048 preserves every shape
// at laptop runtimes. Output is aligned text, one block per table/figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: all, "+fmt.Sprint(harness.Experiments()))
	tasks := flag.Int("tasks", 2048, "tasks per benchmark (paper: 32768)")
	smms := flag.Int("smms", 24, "simulated SMM count (Titan X: 24)")
	seed := flag.Int64("seed", 1, "workload generation seed")
	format := flag.String("format", "text", "output format: text, csv, json")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range harness.Experiments() {
			fmt.Println(id)
		}
		return
	}

	p := harness.Params{Tasks: *tasks, SMMs: *smms, Seed: *seed}

	ids := []string{*exp}
	if *exp == "all" {
		ids = harness.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := harness.Run(id, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		switch *format {
		case "csv":
			if err := rep.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		case "json":
			if err := rep.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		default:
			rep.Fprint(os.Stdout)
			fmt.Printf("(%s regenerated in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}
}
