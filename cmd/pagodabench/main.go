// Command pagodabench regenerates the tables and figures of the Pagoda
// paper's evaluation (§6) on the simulated Titan X.
//
// Usage:
//
//	pagodabench -exp fig5            # one experiment
//	pagodabench -exp all -tasks 8192 # the full evaluation at a given scale
//
// The paper's runs use -tasks 32768; the default 2048 preserves every shape
// at laptop runtimes. Output is aligned text, one block per table/figure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// run executes the requested experiments; split from main so the smoke test
// can drive the command without spawning a process.
func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("pagodabench", flag.ContinueOnError)
	fs.SetOutput(errw)
	exp := fs.String("exp", "all", "experiment id: all, "+fmt.Sprint(harness.Experiments()))
	tasks := fs.Int("tasks", 2048, "tasks per benchmark (paper: 32768)")
	smms := fs.Int("smms", 24, "simulated SMM count (Titan X: 24)")
	seed := fs.Int64("seed", 1, "workload generation seed")
	format := fs.String("format", "text", "output format: text, csv, json")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, id := range harness.Experiments() {
			fmt.Fprintln(out, id)
		}
		return 0
	}

	p := harness.Params{Tasks: *tasks, SMMs: *smms, Seed: *seed}

	ids := []string{*exp}
	if *exp == "all" {
		ids = harness.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := harness.Run(id, p)
		if err != nil {
			fmt.Fprintln(errw, err)
			return 2
		}
		switch *format {
		case "csv":
			if err := rep.WriteCSV(out); err != nil {
				fmt.Fprintln(errw, err)
				return 1
			}
		case "json":
			if err := rep.WriteJSON(out); err != nil {
				fmt.Fprintln(errw, err)
				return 1
			}
		default:
			rep.Fprint(out)
			fmt.Fprintf(out, "(%s regenerated in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}
	return 0
}
