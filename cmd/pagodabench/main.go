// Command pagodabench regenerates the tables and figures of the Pagoda
// paper's evaluation (§6) on the simulated Titan X.
//
// Usage:
//
//	pagodabench -exp fig5             # one experiment
//	pagodabench -exp fig5,fig6        # a chosen subset
//	pagodabench -exp all -tasks 8192  # the full evaluation at a given scale
//
// The paper's runs use -tasks 32768; the default 2048 preserves every shape
// at laptop runtimes. Experiment cells (independent simulations) run on a
// worker pool sized by -parallel; output is byte-identical at every width.
//
// Output is aligned text, one block per table/figure. With -format json a
// single experiment emits one JSON document and a multi-experiment run emits
// one JSON array; with -format csv a multi-experiment run emits a single
// stream with a leading "experiment" column.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/runners"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// run executes the requested experiments; split from main so the smoke test
// can drive the command without spawning a process.
func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("pagodabench", flag.ContinueOnError)
	fs.SetOutput(errw)
	exp := fs.String("exp", "all", "experiment id(s), comma-separated: all, "+fmt.Sprint(harness.Experiments()))
	tasks := fs.Int("tasks", 2048, "tasks per benchmark (paper: 32768)")
	smms := fs.Int("smms", 24, "simulated SMM count (Titan X: 24)")
	seed := fs.Int64("seed", 1, "workload generation and arrival-stream seed (recorded in JSON/CSV exports)")
	parallel := fs.Int("parallel", 0, "experiment cells run concurrently (0 = all CPUs, 1 = sequential)")
	slo := fs.Float64("slo", 1000, "p99 latency SLO for the serve_* and cluster_* experiments, microseconds")
	nodes := fs.Int("nodes", 4, "fleet size for the cluster_* experiments")
	minNodes := fs.Int("minnodes", 2, "cluster_autoscale lower fleet bound")
	maxNodes := fs.Int("maxnodes", 8, "cluster_autoscale upper fleet bound (equal to -minnodes disables scaling)")
	autoPol := fs.String("autoscale", "", "cluster_autoscale scaling policy (default all): "+strings.Join(autoscale.PolicyNames(), ", "))
	policy := fs.String("policy", "rr", "cluster routing policy: "+strings.Join(cluster.PolicyNames(), ", "))
	scheme := fs.String("scheme", "", "GPU scheme(s) the serve_*/cluster_* experiments sweep, comma-separated (default all): "+strings.Join(runners.SchemeKeys(), ", "))
	oversub := fs.Float64("oversub", 0, "zorua oversubscription factor (0 = scheme default 1.5, 1 = physical admission)")
	tenants := fs.Int("tenants", 3, "tenant classes for the tenant_qos experiment")
	misbehave := fs.Int("misbehave", 1, "tenant_qos class index offering 10x its contracted rate (-1 = all honest)")
	format := fs.String("format", "text", "output format: text, csv, json")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, id := range harness.Experiments() {
			fmt.Fprintln(out, id)
		}
		return 0
	}

	if _, err := cluster.NewPolicy(*policy, *seed); err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	if *nodes < 1 {
		fmt.Fprintf(errw, "-nodes %d: a cluster needs at least one node\n", *nodes)
		return 2
	}
	if *oversub != 0 && *oversub < 1.0 {
		fmt.Fprintf(errw, "-oversub %g: factor below 1.0 would under-provision physical resources (use 1 for physical admission, 0 for the scheme default)\n", *oversub)
		return 2
	}
	if *minNodes < 1 {
		fmt.Fprintf(errw, "-minnodes %d: the elastic fleet's lower bound must be at least one node\n", *minNodes)
		return 2
	}
	if *minNodes > *maxNodes {
		fmt.Fprintf(errw, "-minnodes %d exceeds -maxnodes %d: the elastic fleet bounds are inverted\n", *minNodes, *maxNodes)
		return 2
	}
	if *autoPol != "" {
		if _, err := autoscale.NewPolicy(*autoPol, autoscale.DefaultTuning()); err != nil {
			fmt.Fprintf(errw, "-autoscale %q: %s\n", *autoPol, err)
			return 2
		}
	}
	schemes, err := expandSchemes(*scheme)
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	if *tenants < 1 {
		fmt.Fprintf(errw, "-tenants %d: need at least one tenant class\n", *tenants)
		return 2
	}
	p := harness.Params{Tasks: *tasks, SMMs: *smms, Seed: *seed, Parallel: *parallel,
		SLOUs: *slo, Nodes: *nodes, Policy: *policy, Schemes: schemes, Oversub: *oversub,
		Tenants: *tenants, Misbehave: *misbehave,
		MinNodes: *minNodes, MaxNodes: *maxNodes, Autoscale: *autoPol}

	ids, err := expandExpIDs(*exp)
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	multi := len(ids) > 1

	var reps []*harness.Report
	for _, id := range ids {
		start := time.Now()
		rep, err := harness.Run(id, p)
		if err != nil {
			fmt.Fprintln(errw, err)
			return 2
		}
		switch *format {
		case "csv", "json":
			// Multi-experiment runs must emit ONE parseable stream, so the
			// reports are collected and rendered together after the loop.
			reps = append(reps, rep)
		default:
			rep.Fprint(out)
			// The timing footer goes to stderr: it is the one line that varies
			// between runs, and keeping it off stdout keeps text output
			// byte-identical across repeats, like the csv/json formats.
			fmt.Fprintf(errw, "(%s regenerated in %.1fs)\n", id, time.Since(start).Seconds())
		}
	}

	switch {
	case *format == "csv" && multi:
		err = harness.WriteCSVAll(out, reps)
	case *format == "csv":
		err = reps[0].WriteCSV(out)
	case *format == "json" && multi:
		err = harness.WriteJSONAll(out, reps)
	case *format == "json":
		err = reps[0].WriteJSON(out)
	}
	if err != nil {
		fmt.Fprintln(errw, err)
		return 1
	}
	return 0
}

// expandSchemes resolves the -scheme flag against the runners scheme
// registry the same way -exp resolves experiment ids: empty means every
// scheme, entries are trimmed/deduped, and an unknown name fails up front
// with the valid set.
func expandSchemes(expr string) ([]string, error) {
	if strings.TrimSpace(expr) == "" {
		return nil, nil
	}
	valid := runners.SchemeKeys()
	known := make(map[string]bool, len(valid))
	for _, k := range valid {
		known[k] = true
	}
	seen := make(map[string]bool)
	var keys []string
	for _, k := range strings.Split(expr, ",") {
		k = strings.TrimSpace(k)
		if k == "" || seen[k] {
			continue
		}
		if !known[k] {
			return nil, fmt.Errorf("unknown scheme %q (valid: %s)", k, strings.Join(valid, ", "))
		}
		seen[k] = true
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("-scheme %q names no schemes (valid: %s)", expr, strings.Join(valid, ", "))
	}
	return keys, nil
}

// expandExpIDs resolves the -exp flag into experiment ids: "all" means every
// experiment; otherwise the comma-separated list is cleaned up the way a
// shell-assembled flag needs — surrounding whitespace trimmed, empty entries
// (trailing or doubled commas) dropped, repeats deduped keeping first
// position. Unknown ids fail up front with the valid set, before any
// experiment burns minutes of simulation.
func expandExpIDs(expr string) ([]string, error) {
	valid := harness.Experiments()
	if strings.TrimSpace(expr) == "all" {
		return valid, nil
	}
	known := make(map[string]bool, len(valid))
	for _, id := range valid {
		known[id] = true
	}
	seen := make(map[string]bool)
	var ids []string
	for _, id := range strings.Split(expr, ",") {
		id = strings.TrimSpace(id)
		if id == "" || seen[id] {
			continue
		}
		if !known[id] {
			return nil, fmt.Errorf("unknown experiment %q (valid: all, %s)", id, strings.Join(valid, ", "))
		}
		seen[id] = true
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("-exp %q names no experiments (valid: all, %s)", expr, strings.Join(valid, ", "))
	}
	return ids, nil
}
