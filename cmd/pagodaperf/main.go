// Command pagodaperf is the machine-verified performance-regression gate:
// it re-runs the bench commands recorded in the BENCH_*.json baseline files,
// extracts each declared metric (go-bench ns/op and allocs/op columns,
// pagodabench report values, command wall clock), and fails with a
// per-metric verdict table when anything drifts past its tolerance band.
//
// Usage:
//
//	pagodaperf                    # full gate over the default baseline files
//	pagodaperf -quick             # the cheap subset wired into `make check`
//	pagodaperf -update            # re-measure and ratchet the baselines,
//	                              # restamping host/date/git-rev provenance
//	pagodaperf BENCH_sim.json     # specific file(s)
//
// Exit status: 0 all metrics within tolerance, 1 regression or broken
// command, 2 usage error. Baselines are host-relative — after `-update` on a
// new machine the tolerance bands do the cross-host absorbing; see DESIGN.md
// §9 for the schema and the band-width rationale.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/perf"
)

// defaultFiles are the baseline suites at the repo root, gated together.
var defaultFiles = []string{"BENCH_sim.json", "BENCH_serve.json", "BENCH_cluster.json"}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// run executes the gate; split from main so the smoke test can drive the
// command without spawning a process.
func run(out, errw io.Writer, args []string) int {
	fs := flag.NewFlagSet("pagodaperf", flag.ContinueOnError)
	fs.SetOutput(errw)
	quick := fs.Bool("quick", false, "run only the metrics marked quick (the make-check subset)")
	update := fs.Bool("update", false, "re-measure every metric and rewrite the baselines with fresh provenance")
	dir := fs.String("C", ".", "directory to run the recorded commands in (the repo root)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *quick && *update {
		fmt.Fprintln(errw, "pagodaperf: -update must measure the full metric set; drop -quick")
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		files = defaultFiles
	}

	failed := false
	for _, path := range files {
		s, err := perf.Load(path)
		if err != nil {
			fmt.Fprintln(errw, err)
			return 2
		}
		r := &perf.Runner{Dir: *dir, Quick: *quick, Log: errw}
		vs := r.Run(s)
		perf.FprintVerdicts(out, s.Suite, vs)
		fmt.Fprintln(out)
		if perf.Failed(vs) {
			failed = true
		}
		if *update {
			perf.ApplyUpdate(s, vs, perf.Stamp(*dir))
			if err := s.Save(path); err != nil {
				fmt.Fprintln(errw, err)
				return 1
			}
			fmt.Fprintf(out, "pagodaperf: ratcheted %s (rev %s)\n", path, s.Provenance.GitRev)
		}
	}
	if failed && !*update {
		fmt.Fprintf(errw, "pagodaperf: performance regression past tolerance (baselines: %s); "+
			"if intentional, ratchet with -update\n", strings.Join(files, ", "))
		return 1
	}
	return 0
}
