package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perf"
)

// writeSuite drops a one-metric wallclock suite to disk. The command is `go
// env GOOS` — cheap, dependency-free, and present wherever the tests run —
// so these smoke tests exercise the real subprocess path end to end.
func writeSuite(t *testing.T, name string, m perf.Metric) string {
	t.Helper()
	s := &perf.Suite{Suite: name, Description: "test fixture", Metrics: []*perf.Metric{&m}}
	path := filepath.Join(t.TempDir(), "BENCH_"+name+".json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePasses(t *testing.T) {
	path := writeSuite(t, "pass", perf.Metric{
		Name: "noop_wallclock", Command: "go env GOOS",
		Extract:  perf.Extract{Kind: perf.KindWallclock},
		Baseline: 3600, TolerancePct: 100, Direction: perf.Lower,
	})
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{path}); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errw.String())
	}
	if !strings.Contains(out.String(), "noop_wallclock") || !strings.Contains(out.String(), "ok") {
		t.Errorf("verdict table missing metric/verdict:\n%s", out.String())
	}
}

// TestGateFailsOnInjectedRegression drives the CLI against a baseline the
// host cannot possibly meet (an hour of sustained wall clock, higher-is-
// better): the gate must exit nonzero and name the metric in the table.
func TestGateFailsOnInjectedRegression(t *testing.T) {
	path := writeSuite(t, "regress", perf.Metric{
		Name: "injected_regression_metric", Command: "go env GOOS",
		Extract:  perf.Extract{Kind: perf.KindWallclock},
		Baseline: 3600, TolerancePct: 0, Direction: perf.Higher,
	})
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{path}); code != 1 {
		t.Fatalf("run = %d, want 1; stderr %q", code, errw.String())
	}
	if !strings.Contains(out.String(), "injected_regression_metric") || !strings.Contains(out.String(), "FAIL") {
		t.Errorf("verdict table must name the failed metric:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "regression") {
		t.Errorf("stderr = %q, want regression summary", errw.String())
	}
}

// TestUpdateRatchetsBaselineWithProvenance pins -update: the measured value
// becomes the baseline and host/date/git-rev provenance is stamped.
func TestUpdateRatchetsBaselineWithProvenance(t *testing.T) {
	path := writeSuite(t, "update", perf.Metric{
		Name: "noop_wallclock", Command: "go env GOOS",
		Extract:  perf.Extract{Kind: perf.KindWallclock},
		Baseline: 3600, TolerancePct: 100, Direction: perf.Lower,
	})
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-update", path}); code != 0 {
		t.Fatalf("run(-update) = %d, stderr %q", code, errw.String())
	}
	s, err := perf.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if b := s.Metrics[0].Baseline; b <= 0 || b >= 600 {
		t.Errorf("ratcheted baseline = %v, want the measured wall clock", b)
	}
	p := s.Provenance
	if p.Host == "" || p.Date == "" || p.GitRev == "" {
		t.Errorf("provenance not stamped: %+v", p)
	}
	if !strings.Contains(p.Date, "20") {
		t.Errorf("date %q does not look like a date", p.Date)
	}
	// The tests run inside the repo, so the rev must be a real short hash,
	// not the out-of-repo fallback.
	if p.GitRev == "unknown" {
		t.Errorf("git rev not resolved: %+v", p)
	}
}

func TestQuickUpdateConflict(t *testing.T) {
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{"-quick", "-update"}); code != 2 {
		t.Fatalf("run(-quick -update) = %d, want 2", code)
	}
}

func TestUnreadableBaselineFile(t *testing.T) {
	var out, errw strings.Builder
	if code := run(&out, &errw, []string{filepath.Join(t.TempDir(), "missing.json")}); code != 2 {
		t.Fatalf("run(missing file) = %d, want 2", code)
	}
}

// TestDefaultFilesExist pins the contract between the command and the repo
// root: the default baseline files it gates must exist and validate.
func TestDefaultFilesExist(t *testing.T) {
	for _, f := range defaultFiles {
		path := filepath.Join("..", "..", f)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("default baseline file missing: %v", err)
		}
		if _, err := perf.Load(path); err != nil {
			t.Errorf("default baseline file invalid: %v", err)
		}
	}
}
